// Package repro holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§IV), plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// The per-figure benchmarks run the experiment generators at test scale so
// `go test -bench=.` finishes in minutes; `cmd/figures -scale quick|full`
// regenerates the real artifacts. Domain results (front sizes, speedups,
// valid-configuration counts) are attached to the benchmark output via
// b.ReportMetric so the numbers land in bench logs.
package repro

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/forest"
	"repro/internal/pareto"
	"repro/internal/slambench"
)

func benchOpts(seed int64) experiments.Options {
	return experiments.Options{Scale: experiments.ScaleTest, Seed: seed}
}

// BenchmarkFig1ResponseSurface regenerates the Figure 1 µ × icp-threshold
// runtime response surface.
func BenchmarkFig1ResponseSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.IsNonTrivial() {
			b.Fatal("flat response surface")
		}
	}
}

// BenchmarkFig3aKFusionODROID regenerates the Figure 3a exploration
// (KFusion, ODROID-XU3): random sampling vs active learning.
func BenchmarkFig3aKFusionODROID(b *testing.B) {
	var last *experiments.DSEResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchOpts(int64(i+1)), "ODROID-XU3")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportDSE(b, last)
}

// BenchmarkFig3bKFusionASUS regenerates the Figure 3b exploration
// (KFusion, ASUS T200TA).
func BenchmarkFig3bKFusionASUS(b *testing.B) {
	var last *experiments.DSEResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchOpts(int64(i+1)), "ASUS-T200TA")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportDSE(b, last)
}

// BenchmarkFig4ElasticFusionGTX regenerates the Figure 4 exploration
// (ElasticFusion, GTX 780 Ti).
func BenchmarkFig4ElasticFusionGTX(b *testing.B) {
	var last *experiments.DSEResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportDSE(b, last)
}

// BenchmarkFig5Crowdsourcing regenerates the Figure 5 crowd-sourcing
// speedup distribution (best Pareto config vs default across market
// devices).
func BenchmarkFig5Crowdsourcing(b *testing.B) {
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOpts(int64(i+1)), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.MinSpeedup, "min-speedup-x")
		b.ReportMetric(last.MedianSpeedup, "median-speedup-x")
		b.ReportMetric(last.MaxSpeedup, "max-speedup-x")
		b.ReportMetric(last.SpearmanToODROID, "spearman")
	}
}

// BenchmarkTable1ElasticFusionPareto regenerates Table I.
func BenchmarkTable1ElasticFusionPareto(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOpts(int64(i+1)), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.SpeedupBestSpeed, "best-speed-x")
		b.ReportMetric(last.AccuracyGain, "accuracy-gain-x")
		b.ReportMetric(float64(len(last.Rows)), "rows")
	}
}

func reportDSE(b *testing.B, res *experiments.DSEResult) {
	if res == nil {
		return
	}
	b.ReportMetric(float64(res.FrontSize), "front-points")
	b.ReportMetric(float64(res.ValidRandom), "valid-random")
	b.ReportMetric(float64(res.ValidAL), "valid-al")
	if res.SpeedupVsDefault > 0 {
		b.ReportMetric(res.SpeedupVsDefault, "speedup-x")
	}
	// Optimizer-side vs evaluation wall-clock of the last run, so the bench
	// logs track where exploration time goes.
	b.ReportMetric(res.FitTime.Seconds()*1e3, "fit-ms")
	b.ReportMetric((res.EncodeTime+res.PredictTime).Seconds()*1e3, "predict-ms")
	b.ReportMetric(res.EvalTime.Seconds()*1e3, "eval-ms")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationRandomOnlyVsActiveLearning compares the hypervolume of
// random-only exploration against the full loop at equal evaluation
// budgets — the paper's central comparison, as an ablation.
func BenchmarkAblationRandomOnlyVsActiveLearning(b *testing.B) {
	bench := slambench.NewKFusionBench(slambench.CachedDataset("test"))
	dev := device.ODROIDXU3()
	eval := slambench.Evaluator(bench, dev, slambench.RuntimeAccuracy)
	ref := [2]float64{1, 1}
	var hvRandom, hvAL float64
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		// 24 evaluations spent entirely on random sampling…
		randOnly, err := core.Run(bench.Space(), eval, core.Options{
			Objectives: 2, RandomSamples: 24, MaxIterations: 1, MaxBatch: 0,
			PoolCap: 2000, Seed: seed,
			Forest: forest.Options{Trees: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		// …vs 16 random + up to 8 model-chosen.
		al, err := core.Run(bench.Space(), eval, core.Options{
			Objectives: 2, RandomSamples: 16, MaxIterations: 1, MaxBatch: 8,
			PoolCap: 2000, Seed: seed,
			Forest: forest.Options{Trees: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		hvRandom = pareto.Hypervolume2D(randOnly.RandomFront, ref)
		hvAL = pareto.Hypervolume2D(al.Front, ref)
	}
	b.ReportMetric(hvRandom, "hv-random")
	b.ReportMetric(hvAL, "hv-active-learning")
}

// BenchmarkAblationForestSize sweeps the per-objective forest size.
func BenchmarkAblationForestSize(b *testing.B) {
	bench := slambench.NewKFusionBench(slambench.CachedDataset("test"))
	eval := slambench.Evaluator(bench, device.ODROIDXU3(), slambench.RuntimeAccuracy)
	for _, trees := range []int{8, 32} {
		b.Run(sizeName(trees), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(bench.Space(), eval, core.Options{
					Objectives: 2, RandomSamples: 16, MaxIterations: 1,
					MaxBatch: 8, PoolCap: 2000, Seed: int64(i + 1),
					Forest: forest.Options{Trees: trees},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n < 10 {
		return "trees-small"
	}
	return "trees-large"
}

// BenchmarkAblationThreeObjectives exercises the runtime × accuracy ×
// power mode (the PACT'16 predecessor's setting).
func BenchmarkAblationThreeObjectives(b *testing.B) {
	bench := slambench.NewKFusionBench(slambench.CachedDataset("test"))
	eval := slambench.Evaluator(bench, device.ODROIDXU3(), slambench.RuntimeAccuracyPower)
	var frontSize int
	for i := 0; i < b.N; i++ {
		res, err := core.Run(bench.Space(), eval, core.Options{
			Objectives: 3, RandomSamples: 16, MaxIterations: 1,
			MaxBatch: 8, PoolCap: 2000, Seed: int64(i + 1),
			Forest: forest.Options{Trees: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		frontSize = len(res.Front)
	}
	b.ReportMetric(float64(frontSize), "front-points")
}

// BenchmarkAblationPoolCap compares exhaustive prediction pools against
// subsampled ones (the scalability knob for the 1.8M-point space).
func BenchmarkAblationPoolCap(b *testing.B) {
	bench := slambench.NewKFusionBench(slambench.CachedDataset("test"))
	eval := slambench.Evaluator(bench, device.ODROIDXU3(), slambench.RuntimeAccuracy)
	for _, cap := range []int{1000, 50000} {
		name := "pool-small"
		if cap > 1000 {
			name = "pool-large"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(bench.Space(), eval, core.Options{
					Objectives: 2, RandomSamples: 16, MaxIterations: 1,
					MaxBatch: 8, PoolCap: cap, Seed: int64(i + 1),
					Forest: forest.Options{Trees: 8},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var _ io.Writer // reserved for future rendering hooks
