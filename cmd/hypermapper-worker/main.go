// Command hypermapper-worker is the evaluation worker daemon: it registers
// the standard problem catalog (the same one hypermapperd serves) and
// measures configuration batches on behalf of a coordinator over the
// worker HTTP protocol (docs/WORKER_PROTOCOL.md).
//
// Usage:
//
//	hypermapper-worker -addr :9090
//	curl -s localhost:9090/healthz
//	curl -s localhost:9090/problems
//	curl -s -X POST localhost:9090/evaluate \
//	    -d '{"problem":"synthetic","configs":[[0,0,1],[4,4,3]]}'
//
// Point a coordinator at a fleet of these with
// `hypermapperd -workers http://host1:9090,http://host2:9090`.
//
// Spec-defined problems (docs/SCENARIOS.md) register the same way they do
// on the coordinator: -problems <dir> loads a spec directory at startup,
// POST /problems registers one at runtime (the coordinator and every
// worker must be given the same spec so their spaces agree), and
// -validate checks the catalog and exits.
//
// Resilience knobs: -shed-after N sheds /evaluate load with 503 +
// Retry-After once N requests are already in flight, and a signal first
// flips GET /readyz to 503 for -drain-grace before the listener closes,
// so rolling restarts stop receiving work before they stop serving it.
// The -chaos-* flags inject seeded faults into /evaluate (and only
// /evaluate — health endpoints stay truthful) for fleet-resilience
// testing; see docs/WORKER_PROTOCOL.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/worker"
)

func main() {
	var (
		addr  = flag.String("addr", ":9090", "listen address")
		scale = flag.String("dataset", "dse", "dataset scale: full, dse, or test")
		power = flag.Bool("power", false, "add power as a third objective")
		evals = flag.Int("eval-workers", 0,
			"concurrent evaluations per request batch (0 = GOMAXPROCS)")

		problemsDir = flag.String("problems", "",
			"directory of declarative problem specs (*.json, docs/SCENARIOS.md) to load at startup")
		validate = flag.Bool("validate", false,
			"build the problem catalog (builtins plus -problems specs), print it, and exit without serving")
		quiet = flag.Bool("quiet", false,
			"suppress informational output and bridge-evaluator failure chatter (fatal errors still print)")

		shedAfter = flag.Int("shed-after", 0,
			"shed /evaluate requests with 503 + Retry-After once this many are in flight (0 = never shed)")
		drainGrace = flag.Duration("drain-grace", 2*time.Second,
			"on shutdown, fail GET /readyz for this long before closing the listener")

		chaosDrop = flag.Float64("chaos-drop", 0,
			"probability of dropping an /evaluate connection mid-request")
		chaosDelay = flag.Float64("chaos-delay", 0,
			"probability of stalling an /evaluate request")
		chaosDelayMax = flag.Duration("chaos-delay-max", 100*time.Millisecond,
			"upper bound of an injected stall")
		chaos500 = flag.Float64("chaos-500", 0,
			"probability of answering /evaluate with an injected 500")
		chaosGarbage = flag.Float64("chaos-garbage", 0,
			"probability of answering /evaluate with a 200 and a non-JSON body")
		chaosCrashAfter = flag.Int64("chaos-crash-after", 0,
			"exit(3) on the Nth+1 /evaluate request (0 = never crash)")
		chaosSeed = flag.Int64("chaos-seed", 1,
			"seed for the chaos fault schedule")
	)
	flag.Parse()

	infof := func(format string, args ...any) {
		fmt.Printf("hypermapper-worker: "+format+"\n", args...)
	}
	if *quiet {
		infof = func(string, ...any) {}
	}

	// Bridge evaluators (exec:/http: spec bindings) report measurement
	// failures through this logger. -quiet and -validate silence them (nil);
	// normal serving prefixes them onto stderr instead of leaking the
	// process-global log.Printf default.
	var bridgeLogf func(format string, args ...any)
	if !*quiet && !*validate {
		bridgeLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hypermapper-worker: "+format+"\n", args...)
		}
	}

	reg := catalog.NewRegistry()
	reg.SetLogf(bridgeLogf)
	if err := reg.RegisterBuiltins(*scale, *power); err != nil {
		fatalf("registering builtin problems: %v", err)
	}
	if *problemsDir != "" {
		n, err := reg.LoadDir(*problemsDir)
		if err != nil {
			fatalf("loading problem specs: %v", err)
		}
		infof("loaded %d problem specs from %s", n, *problemsDir)
	}
	if *validate {
		for _, p := range reg.Problems() {
			fmt.Printf("  %-28s %d params, %d objectives, size %d\n",
				p.Name, p.Space.Dim(), len(p.Objectives), p.Space.Size())
		}
		fmt.Printf("hypermapper-worker: catalog valid (%d problems)\n", reg.Len())
		return
	}

	ws := worker.NewServer(*evals)
	ws.SetSpecLoader(func(data []byte) (worker.Problem, error) {
		p, err := catalog.FromSpecDataLogf(data, bridgeLogf)
		if err != nil {
			return worker.Problem{}, err
		}
		return toWorkerProblem(p), nil
	})
	for _, p := range reg.Problems() {
		if err := ws.Register(toWorkerProblem(p)); err != nil {
			fatalf("registering %s: %v", p.Name, err)
		}
	}

	ws.SetShedLimit(*shedAfter)

	handler := ws.Handler()
	chaosOpts := worker.ChaosOptions{
		Drop:       *chaosDrop,
		Delay:      *chaosDelay,
		DelayMax:   *chaosDelayMax,
		Err500:     *chaos500,
		Garbage:    *chaosGarbage,
		CrashAfter: *chaosCrashAfter,
		Seed:       *chaosSeed,
	}
	if chaosOpts.Enabled() {
		infof("chaos injection armed: drop=%.2g delay=%.2g err500=%.2g garbage=%.2g crash-after=%d seed=%d",
			chaosOpts.Drop, chaosOpts.Delay, chaosOpts.Err500, chaosOpts.Garbage,
			chaosOpts.CrashAfter, chaosOpts.Seed)
		handler = worker.WithChaos(handler, chaosOpts)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	infof("listening on %s (%d problems)", *addr, len(ws.Problems()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop()
		// Fail readiness first so load balancers and coordinators stop
		// routing new batches here, then give them a moment to notice.
		ws.SetDraining(true)
		infof("draining for %s before shutdown", *drainGrace)
		time.Sleep(*drainGrace)
	case err := <-errc:
		fatalf("%v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hypermapper-worker: http shutdown: %v\n", err)
	}
}

func toWorkerProblem(p catalog.Problem) worker.Problem {
	return worker.Problem{
		Name:       p.Name,
		Space:      p.Space,
		Eval:       p.Eval,
		Objectives: len(p.Objectives),
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hypermapper-worker: "+format+"\n", args...)
	os.Exit(1)
}
