// Command hypermapper-worker is the evaluation worker daemon: it registers
// the standard problem catalog (the same one hypermapperd serves) and
// measures configuration batches on behalf of a coordinator over the
// worker HTTP protocol (docs/WORKER_PROTOCOL.md).
//
// Usage:
//
//	hypermapper-worker -addr :9090
//	curl -s localhost:9090/healthz
//	curl -s localhost:9090/problems
//	curl -s -X POST localhost:9090/evaluate \
//	    -d '{"problem":"synthetic","configs":[[0,0,1],[4,4,3]]}'
//
// Point a coordinator at a fleet of these with
// `hypermapperd -workers http://host1:9090,http://host2:9090`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/worker"
)

func main() {
	var (
		addr  = flag.String("addr", ":9090", "listen address")
		scale = flag.String("dataset", "dse", "dataset scale: full, dse, or test")
		power = flag.Bool("power", false, "add power as a third objective")
		evals = flag.Int("eval-workers", 0,
			"concurrent evaluations per request batch (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ws := worker.NewServer(*evals)
	for _, p := range catalog.Problems(*scale, *power) {
		if err := ws.Register(worker.Problem{
			Name:       p.Name,
			Space:      p.Space,
			Eval:       p.Eval,
			Objectives: len(p.Objectives),
		}); err != nil {
			fatalf("registering %s: %v", p.Name, err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: ws.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("hypermapper-worker: listening on %s (%d problems)\n", *addr, len(ws.Problems()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop()
		fmt.Println("hypermapper-worker: shutting down")
	case err := <-errc:
		fatalf("%v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hypermapper-worker: http shutdown: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hypermapper-worker: "+format+"\n", args...)
	os.Exit(1)
}
