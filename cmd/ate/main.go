// Command ate evaluates an estimated trajectory against ground truth in
// the TUM RGB-D format (the evaluation the SLAMBench ATE metric descends
// from): absolute trajectory error plus relative pose error.
//
// Usage:
//
//	ate -est estimated.txt -ref groundtruth.txt [-maxdt 0.02] [-delta 30]
//
// With -demo it generates a synthetic run (KFusion on the test dataset),
// writes both trajectories to the given directory and scores them —
// useful to see the format end-to-end.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/journal"
	"repro/internal/kfusion"
	"repro/internal/slambench"
	"repro/internal/traj"
)

func main() {
	var (
		estPath = flag.String("est", "", "estimated trajectory (TUM format)")
		refPath = flag.String("ref", "", "ground-truth trajectory (TUM format)")
		maxDt   = flag.Float64("maxdt", 0.02, "max timestamp difference for association (s)")
		delta   = flag.Int("delta", 30, "RPE frame delta")
		demo    = flag.String("demo", "", "write a demo est/ref pair into this directory and score it")
	)
	flag.Parse()

	if *demo != "" {
		runDemo(*demo)
		return
	}
	if *estPath == "" || *refPath == "" {
		fmt.Fprintln(os.Stderr, "ate: need -est and -ref (or -demo DIR)")
		os.Exit(1)
	}
	est := mustRead(*estPath)
	ref := mustRead(*refPath)
	score(est, ref, *maxDt, *delta)
}

func mustRead(path string) traj.Trajectory {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ate: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	t, err := traj.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ate: %s: %v\n", path, err)
		os.Exit(1)
	}
	return t
}

func score(est, ref traj.Trajectory, maxDt float64, delta int) {
	e, r := traj.Associate(est, ref, maxDt)
	if len(e) == 0 {
		fmt.Fprintln(os.Stderr, "ate: no associated pose pairs (check timestamps / -maxdt)")
		os.Exit(1)
	}
	ate, err := traj.ATE(e, r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pairs:        %d / %d estimated poses\n", ate.Pairs, len(est))
	fmt.Printf("ATE mean:     %.4f m\n", ate.Mean)
	fmt.Printf("ATE median:   %.4f m\n", ate.Median)
	fmt.Printf("ATE rmse:     %.4f m\n", ate.RMSE)
	fmt.Printf("ATE max:      %.4f m   (valid under SLAMBench limit %.2f m: %v)\n",
		ate.Max, slambench.AccuracyLimit, ate.Max < slambench.AccuracyLimit)
	if delta < len(e) {
		rpe, err := traj.RPE(e, r, delta)
		if err == nil {
			fmt.Printf("RPE(%d) trans: %.4f m (rmse %.4f), rot %.3f°\n",
				delta, rpe.TransMean, rpe.TransRMSE, rpe.RotMeanDeg)
		}
	}
}

func runDemo(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ate: %v\n", err)
		os.Exit(1)
	}
	ds := slambench.CachedDataset("test")
	cfg := kfusion.DefaultConfig()
	cfg.VolumeResolution = 128
	res, err := kfusion.Run(ds, cfg, kfusion.SimOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ate: %v\n", err)
		os.Exit(1)
	}
	estPath := filepath.Join(dir, "estimated.txt")
	refPath := filepath.Join(dir, "groundtruth.txt")
	writeTraj(estPath, traj.FromPoses(res.Trajectory, 30))
	writeTraj(refPath, traj.FromPoses(ds.GroundTruth, 30))
	fmt.Printf("wrote %s and %s\n\n", estPath, refPath)
	score(mustRead(estPath), mustRead(refPath), 0.02, 10)
}

func writeTraj(path string, t traj.Trajectory) {
	err := journal.WriteFileAtomic(path, func(f io.Writer) error {
		return traj.Write(f, t)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ate: %v\n", err)
		os.Exit(1)
	}
}
