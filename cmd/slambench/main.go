// Command slambench runs a single configuration of one of the two SLAM
// benchmarks on a chosen platform model and prints its metrics — the
// stand-in for the SLAMBench CLI the paper measures with.
//
// Usage:
//
//	slambench -benchmark kfusion -platform ODROID-XU3 [-set name=value ...]
//	slambench -benchmark elasticfusion -platform GTX-780Ti -set icp-rgb-weight=5 -set fast-odom=1
//
// Without -set flags the expert default configuration runs. -list prints
// the design space of the chosen benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/device"
	"repro/internal/slambench"
)

type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }

func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		benchName = flag.String("benchmark", "kfusion", "benchmark: kfusion or elasticfusion")
		platform  = flag.String("platform", "ODROID-XU3", "platform model (see -platforms)")
		scale     = flag.String("dataset", "full", "dataset scale: full or test")
		list      = flag.Bool("list", false, "print the design space and exit")
		platforms = flag.Bool("platforms", false, "print the platform models and exit")
		sets      setFlags
	)
	flag.Var(&sets, "set", "override parameter, name=value (repeatable)")
	flag.Parse()

	if *platforms {
		for _, m := range device.Platforms() {
			fmt.Printf("%-14s %s\n", m.Name, m.Class)
		}
		return
	}

	var bench slambench.Benchmark
	switch *benchName {
	case "kfusion":
		bench = slambench.NewKFusionBench(slambench.CachedDataset(*scale))
	case "elasticfusion":
		bench = slambench.NewElasticFusionBench(slambench.CachedDataset(*scale))
	default:
		fatalf("unknown benchmark %q (kfusion|elasticfusion)", *benchName)
	}

	if *list {
		fmt.Printf("design space of %s (%d configurations):\n", bench.Name(), bench.Space().Size())
		for _, p := range bench.Space().Params() {
			fmt.Printf("  %-22s %-12s %v\n", p.Name, p.Kind, p.Values)
		}
		return
	}

	dev, ok := device.ByName(*platform)
	if !ok {
		fatalf("unknown platform %q (try -platforms)", *platform)
	}

	cfg := bench.DefaultConfig()
	space := bench.Space()
	for _, kv := range sets {
		name, val, found := strings.Cut(kv, "=")
		if !found {
			fatalf("bad -set %q, want name=value", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatalf("bad value in -set %q: %v", kv, err)
		}
		if space.IndexOfName(name) < 0 {
			fatalf("unknown parameter %q (try -list)", name)
		}
		cfg[space.IndexOfName(name)] = f
	}

	fmt.Printf("benchmark: %s on %s\nconfig: %s\n", bench.Name(), dev, space.FormatConfig(cfg))
	m, err := bench.Evaluate(cfg, dev)
	if err != nil {
		fatalf("evaluation failed: %v", err)
	}
	fmt.Printf("frames:          %d\n", m.Frames)
	fmt.Printf("mean ATE:        %.4f m\n", m.MeanATE)
	fmt.Printf("max ATE:         %.4f m  (accuracy limit %.2f m: valid=%v)\n",
		m.MaxATE, slambench.AccuracyLimit, m.MaxATE < slambench.AccuracyLimit)
	fmt.Printf("runtime:         %.1f ms/frame  (%.2f FPS)\n", m.SecPerFrame*1e3, m.FPS)
	fmt.Printf("sequence total:  %.1f s over %d frames\n", m.TotalSeconds, slambench.NominalFrames)
	fmt.Printf("modeled power:   %.2f W\n", m.PowerW)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "slambench: "+format+"\n", args...)
	os.Exit(1)
}
