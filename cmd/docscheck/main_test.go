package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, root, name, content string) {
	t.Helper()
	p := filepath.Join(root, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsBrokenReferences(t *testing.T) {
	root := t.TempDir()
	writeFile(t, root, "internal/core/core.go", "package core")
	writeFile(t, root, "docs/GOOD.md",
		"See `internal/core/core.go` and the `internal/core` package, plus [cmd/tool](cmd/tool).")
	writeFile(t, root, "cmd/tool/main.go", "package main")

	if problems := check(root, []string{"docs/GOOD.md"}); len(problems) != 0 {
		t.Fatalf("clean doc reported problems: %v", problems)
	}

	writeFile(t, root, "docs/BAD.md",
		"Points at `internal/core/gone.go`, specs/nope.json, and internal/missing twice: internal/missing.")
	problems := check(root, []string{"docs/BAD.md"})
	if len(problems) != 3 {
		t.Fatalf("problems = %v, want 3 (deduplicated)", problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "docs/BAD.md references") {
			t.Fatalf("problem does not name the doc: %q", p)
		}
	}
}

func TestCheckTrailingPunctuationAndPossessives(t *testing.T) {
	root := t.TempDir()
	writeFile(t, root, "internal/worker/client.go", "package worker")
	// Trailing ')', '.', ',' and possessive "'s" must not be treated as
	// part of the path.
	writeFile(t, root, "docs/D.md",
		"(internal/worker/client.go), internal/worker's pool, end internal/worker.")
	if problems := check(root, []string{"docs/D.md"}); len(problems) != 0 {
		t.Fatalf("punctuation handling broke: %v", problems)
	}
}

func TestCheckMissingDocFile(t *testing.T) {
	root := t.TempDir()
	problems := check(root, []string{"docs/NOPE.md"})
	if len(problems) != 1 || !strings.Contains(problems[0], "docs/NOPE.md") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCheckAgainstThisRepository(t *testing.T) {
	// The real docs must be clean against the real tree — the same
	// invocation CI runs.
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("not running from the repository tree")
	}
	files := []string{"README.md", "docs/ARCHITECTURE.md", "docs/WORKER_PROTOCOL.md", "docs/SCENARIOS.md"}
	if problems := check(root, files); len(problems) != 0 {
		t.Fatalf("repository docs have broken references:\n%s", strings.Join(problems, "\n"))
	}
}
