// Command docscheck keeps the documentation's file references honest: it
// scans markdown files for repository paths (internal/..., cmd/...,
// examples/..., docs/..., specs/...) and fails if any referenced file or
// directory no longer exists. CI runs it in the docs job, so renaming or deleting a
// file that ARCHITECTURE.md points at breaks the build until the docs are
// updated.
//
// Usage:
//
//	docscheck [-root .] README.md docs/ARCHITECTURE.md docs/WORKER_PROTOCOL.md
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"slices"
)

// pathRef matches repository-relative path references in prose or code
// blocks: a known top-level directory followed by path segments. The
// character class excludes quotes and punctuation so trailing ")", "'s",
// or "." end the match cleanly; a trailing dot is only consumed when it
// starts a file extension.
var pathRef = regexp.MustCompile(`\b(?:internal|cmd|examples|docs|specs)/[A-Za-z0-9_\-./]*[A-Za-z0-9_\-]`)

// check scans the given markdown files under root and returns one message
// per broken reference (missing doc file, or a referenced path that does
// not exist), sorted and deduplicated.
func check(root string, files []string) []string {
	seen := make(map[string]bool)
	var problems []string
	addProblem := func(msg string) {
		if !seen[msg] {
			seen[msg] = true
			problems = append(problems, msg)
		}
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(root, f))
		if err != nil {
			addProblem(fmt.Sprintf("%s: %v", f, err))
			continue
		}
		for _, ref := range pathRef.FindAllString(string(data), -1) {
			if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
				addProblem(fmt.Sprintf("%s references %s, which does not exist", f, ref))
			}
		}
	}
	slices.Sort(problems)
	return problems
}

func main() {
	root := flag.String("root", ".", "repository root the references resolve against")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		files = []string{"README.md", "docs/ARCHITECTURE.md", "docs/WORKER_PROTOCOL.md", "docs/SCENARIOS.md"}
	}
	problems := check(*root, files)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "docscheck: "+p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d files clean\n", len(files))
}
