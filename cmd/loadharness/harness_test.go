package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrowdSmoke runs a small crowd end-to-end against an embedded daemon:
// real HTTP, real scheduler, real engine runs. It asserts the same
// properties the full harness does, scaled down to CI time.
func TestCrowdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crowd smoke needs a few seconds of wall clock")
	}
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	cfg := config{
		Clients:          400,
		Tenants:          3,
		Duration:         4 * time.Second,
		Grace:            10 * time.Second,
		Seed:             1,
		Problem:          "synthetic",
		MaxRunning:       8,
		TenantMaxRunning: 4,
		TenantMaxQueued:  64,
		RunSeeds:         4,
		P99BoundMS:       30_000,
		RSSBoundMB:       0, // the test binary shares RSS with the test runner
		RequireCoalesce:  true,
		Out:              out,
	}
	var buf bytes.Buffer
	rep, err := run(cfg, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("assertions failed: %v\n%s", rep.Failures, buf.String())
	}
	if rep.Completed == 0 {
		t.Fatal("no runs completed")
	}
	for i, n := range rep.ByTenant {
		if n == 0 {
			t.Errorf("tenant-%d starved: 0 completions", i)
		}
	}
	if rep.CoalesceHits == 0 {
		t.Error("duplicate-seed crowd produced no coalesce hits")
	}
	if !strings.Contains(buf.String(), "LOAD: PASS") {
		t.Errorf("missing PASS line in output:\n%s", buf.String())
	}

	// The artifact must parse in benchjson's Baseline shape with the
	// metrics CI publishes.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(base.Results) != 1 || base.Results[0].Name != "LoadHarness/crowd" {
		t.Fatalf("unexpected artifact shape: %+v", base)
	}
	for _, key := range []string{"runs/s", "admit-wait-p99-ms", "max-queue-depth", "peak-rss-mb", "coalesce-rate"} {
		if _, ok := base.Results[0].Metrics[key]; !ok {
			t.Errorf("artifact missing metric %q", key)
		}
	}
}

// TestQuantile pins the quantile helper's edge cases.
func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	xs := []float64{5, 1, 3, 2, 4}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Fatalf("p100 = %v, want 5", q)
	}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("p50 = %v, want 3", q)
	}
}
