package main

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/sched"
	"repro/internal/server"
)

// config is the harness configuration; see main.go for the flag docs.
type config struct {
	Addr             string
	Clients          int
	Tenants          int
	Duration         time.Duration
	Grace            time.Duration
	Seed             int64
	Problem          string
	Executors        int
	MaxRunning       int
	TenantMaxRunning int
	TenantMaxQueued  int
	CoalesceWindow   time.Duration
	RunSeeds         int
	P99BoundMS       float64
	RSSBoundMB       float64
	RequireCoalesce  bool
	Out              string
	Verbose          bool
}

func (c config) executors() int {
	if c.Executors > 0 {
		return c.Executors
	}
	return min(256, 32*runtime.NumCPU())
}

// thinkBase scales the crowd's think-time distribution to the run length so
// short smoke crowds and long soak crowds both cycle every tenant through
// multiple submissions.
func (c config) thinkBase() time.Duration {
	return max(20*time.Millisecond, c.Duration/100)
}

// report is the harness outcome: the metrics that go into BENCH_load.json
// plus the assertion failures (empty on success).
type report struct {
	Clients     int
	Completed   int64
	Cancelled   int64
	Rejected429 int64
	HTTPErrors  int64
	ByTenant    []int64 // completed runs per tenant

	PostP50MS, PostP99MS float64 // client-observed POST /runs latency
	WaitP50MS, WaitP99MS float64 // scheduler submit→dispatch wait

	MaxQueueDepth   int
	QuotaViolations int64
	PeakRSSMB       float64
	CoalesceRate    float64
	CacheHits       int64
	CacheMisses     int64
	CoalesceHits    int64 // singleflight waits + batch-merge dedups
	Elapsed         time.Duration

	Failures []string
}

// client is one synthetic crowd member. The struct stays small on purpose:
// 10^5..10^6 of them must fit comfortably in memory (the harness is
// event-driven, not goroutine-per-client — 10^5 goroutine stacks alone
// would dwarf the daemon under test).
type client struct {
	id     int
	tenant int
	rng    *rand.Rand
	speed  float64 // device RelativeSpeed, heavy-tailed across the market
	state  int
	runID  string
}

const (
	stSubmit = iota
	stPoll
)

// event is one scheduled client wake-up.
type event struct {
	at time.Time
	c  *client
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() time.Time    { return h[0].at }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// harness drives one crowd run.
type harness struct {
	cfg  config
	base string
	hc   *http.Client
	out  io.Writer

	deadline time.Time
	hardStop time.Time

	mu     sync.Mutex
	events eventHeap
	wake   chan struct{}
	live   int // clients still in the simulation

	submitted   atomic.Int64
	completed   atomic.Int64
	cancelled   atomic.Int64
	rejected429 atomic.Int64
	httpErrors  atomic.Int64
	byTenant    []atomic.Int64

	latMu   sync.Mutex
	postLat []float64 // ms

	statMu          sync.Mutex
	maxQueueDepth   int
	quotaViolations int64
	lastStats       statsResp
}

// statsResp mirrors the subset of GET /stats the harness asserts on.
type statsResp struct {
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheCoalesceHits int64 `json:"cache_coalesce_hits"`
	Sched             *struct {
		MaxRunning    int     `json:"max_running"`
		Running       int     `json:"running"`
		Queued        int     `json:"queued"`
		MaxQueueDepth int     `json:"max_queue_depth"`
		WaitP50MS     float64 `json:"wait_p50_ms"`
		WaitP99MS     float64 `json:"wait_p99_ms"`
		Tenants       []struct {
			Tenant  string `json:"tenant"`
			Running int    `json:"running"`
		} `json:"tenants"`
	} `json:"sched"`
	Coalesce *struct {
		Deduped int64 `json:"deduped"`
	} `json:"coalesce"`
}

// run executes the whole harness: embed (or attach to) a daemon, release
// the crowd, drain it, poll stats throughout, then assert and report.
func run(cfg config, out io.Writer) (*report, error) {
	if cfg.Tenants < 1 || cfg.Clients < 1 {
		return nil, errors.New("need at least one tenant and one client")
	}
	if cfg.RunSeeds < 1 {
		cfg.RunSeeds = 1
	}
	base := cfg.Addr
	var shutdown func()
	if base == "" {
		var err error
		base, shutdown, err = startEmbedded(cfg)
		if err != nil {
			return nil, fmt.Errorf("starting embedded daemon: %w", err)
		}
		defer shutdown()
	}
	h := &harness{
		cfg:  cfg,
		base: strings.TrimRight(base, "/"),
		out:  out,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.executors() + 8,
				MaxIdleConnsPerHost: cfg.executors() + 8,
			},
		},
		wake:     make(chan struct{}, 1),
		byTenant: make([]atomic.Int64, cfg.Tenants),
	}

	start := time.Now()
	h.deadline = start.Add(cfg.Duration)
	h.hardStop = h.deadline.Add(cfg.Grace)

	h.seedCrowd()
	statsDone := make(chan struct{})
	go h.watchStats(statsDone)
	h.loop()
	close(statsDone)
	h.pollStats() // final snapshot after the crowd drained

	rep := h.buildReport(time.Since(start))
	h.printReport(rep)
	if cfg.Out != "" {
		if err := writeBench(cfg, rep); err != nil {
			return rep, fmt.Errorf("writing %s: %w", cfg.Out, err)
		}
	}
	return rep, nil
}

// startEmbedded boots a real daemon — manager, scheduler, HTTP server — on
// a loopback port, serving the dataset-free synthetic problem.
func startEmbedded(cfg config) (base string, shutdown func(), err error) {
	p := catalog.Synthetic()
	mgr := server.NewManagerConfig(server.Config{
		Shards:          64,
		MaxSessions:     20_000,
		SessionTTL:      time.Minute,
		JanitorInterval: 2 * time.Second,
		Sched: &sched.Config{
			MaxRunning: cfg.MaxRunning,
			Quota: sched.TenantQuota{
				MaxRunning: cfg.TenantMaxRunning,
				MaxQueued:  cfg.TenantMaxQueued,
			},
			CoalesceWindow: cfg.CoalesceWindow,
		},
	}, server.Problem{
		Name:        p.Name,
		Description: p.Description,
		Space:       p.Space,
		Eval:        p.Eval,
		Objectives:  p.Objectives,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mgr.Handler()}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// seedCrowd builds the client population over the device market and
// schedules every join, staggered across the first part of the window. The
// first 2×MaxRunning clients are duplicate-seed "primers" that join
// immediately: their identical runs dispatch together into the idle fleet,
// deliberately overlapping in flight so the memo-cache singleflight (and
// the batch coalescer) dedupe across runs from the very start.
func (h *harness) seedCrowd() {
	devices := device.MarketDevices(min(h.cfg.Clients, 1024), h.cfg.Seed)
	ramp := h.cfg.Duration / 2
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = make(eventHeap, 0, h.cfg.Clients)
	primers := min(h.cfg.Clients, 2*max(h.cfg.MaxRunning, 1))
	for i := 0; i < h.cfg.Clients; i++ {
		c := &client{
			id:     i,
			tenant: i % h.cfg.Tenants,
			rng:    rand.New(rand.NewSource(h.cfg.Seed*1_000_003 + int64(i))),
			speed:  devices[i%len(devices)].RelativeSpeed(),
			state:  stSubmit,
		}
		at := now
		if i >= primers {
			at = now.Add(time.Duration(c.rng.Float64() * float64(ramp)))
		}
		h.events.pushEvent(event{at: at, c: c})
		h.live++
	}
}

// loop is the event dispatcher: it feeds due clients to a bounded executor
// pool and sleeps until the next wake-up. This is what lets one process
// simulate 10^5+ clients — concurrency is bounded by the executor count,
// not the crowd size.
func (h *harness) loop() {
	work := make(chan *client)
	var wg sync.WaitGroup
	for i := 0; i < h.cfg.executors(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				h.step(c)
			}
		}()
	}
	for {
		now := time.Now()
		var due []*client
		h.mu.Lock()
		for len(h.events) > 0 && !h.events.peek().After(now) {
			due = append(due, h.events.popEvent().c)
		}
		var next time.Duration = 50 * time.Millisecond
		if len(h.events) > 0 {
			next = min(next, time.Until(h.events.peek()))
		}
		live := h.live
		h.mu.Unlock()
		for _, c := range due {
			work <- c
		}
		if live == 0 || now.After(h.hardStop) {
			break
		}
		if next > 0 {
			select {
			case <-h.wake:
			case <-time.After(next):
			}
		}
	}
	close(work)
	wg.Wait()
}

// schedule re-enqueues a client.
func (h *harness) schedule(c *client, at time.Time) {
	h.mu.Lock()
	h.events.pushEvent(event{at: at, c: c})
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// done retires a client from the simulation (churn leave, deadline, or
// hard-stop).
func (h *harness) done(c *client) {
	h.mu.Lock()
	h.live--
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// step advances one client's state machine by a single HTTP interaction.
func (h *harness) step(c *client) {
	now := time.Now()
	if now.After(h.hardStop) {
		h.done(c)
		return
	}
	switch c.state {
	case stSubmit:
		if now.After(h.deadline) {
			h.done(c)
			return
		}
		h.submit(c)
	case stPoll:
		h.poll(c)
	}
}

// submit POSTs one run. Seeds are drawn from a small set shared across
// tenants, so the crowd deliberately re-explores duplicate configurations —
// the workload cross-run coalescing exists for.
func (h *harness) submit(c *client) {
	seed := int64(c.rng.Intn(h.cfg.RunSeeds)) + 1
	body := fmt.Sprintf(
		`{"problem":%q,"seed":%d,"random_samples":12,"max_iterations":1,"max_batch":8,"pool_cap":2000,"trees":4,"tenant":"tenant-%d","priority":%d}`,
		h.cfg.Problem, seed, c.tenant, c.rng.Intn(3))
	t0 := time.Now()
	resp, err := h.hc.Post(h.base+"/runs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		h.httpErrors.Add(1)
		h.schedule(c, time.Now().Add(500*time.Millisecond))
		return
	}
	lat := time.Since(t0)
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusCreated:
		h.recordPost(lat)
		var st struct {
			ID string `json:"id"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) != nil || st.ID == "" {
			h.httpErrors.Add(1)
			h.schedule(c, time.Now().Add(h.think(c)))
			return
		}
		h.submitted.Add(1)
		c.runID = st.ID
		c.state = stPoll
		h.schedule(c, time.Now().Add(h.pollDelay(c)))
	case http.StatusTooManyRequests:
		// Backpressure: honor Retry-After with jitter, like a well-behaved
		// crowd client.
		h.rejected429.Add(1)
		retry := time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			retry = time.Duration(s) * time.Second
		}
		jitter := time.Duration(c.rng.Float64() * float64(retry))
		h.schedule(c, time.Now().Add(retry/2+jitter))
	case http.StatusServiceUnavailable:
		h.done(c) // daemon shutting down
	default:
		h.httpErrors.Add(1)
		h.schedule(c, time.Now().Add(h.think(c)))
	}
}

// poll checks the client's run, churns (cancel mid-run), and on completion
// either leaves or thinks and resubmits.
func (h *harness) poll(c *client) {
	resp, err := h.hc.Get(h.base + "/runs/" + c.runID)
	if err != nil {
		h.httpErrors.Add(1)
		h.schedule(c, time.Now().Add(500*time.Millisecond))
		return
	}
	var st struct {
		State string `json:"state"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		// Evicted between polls. Eviction only ever takes terminal
		// sessions, so the run finished; count it.
		h.finishRun(c, "done")
	case resp.StatusCode != http.StatusOK || decErr != nil:
		h.httpErrors.Add(1)
		h.schedule(c, time.Now().Add(500*time.Millisecond))
	case st.State == "done" || st.State == "cancelled" || st.State == "failed":
		h.finishRun(c, st.State)
	case c.rng.Float64() < 0.02:
		// Churn: this client abandons the run mid-flight.
		req, _ := http.NewRequest(http.MethodDelete, h.base+"/runs/"+c.runID, nil)
		if resp, err := h.hc.Do(req); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		h.cancelled.Add(1)
		h.afterRun(c)
	default:
		h.schedule(c, time.Now().Add(h.pollDelay(c)))
	}
}

// finishRun accounts a terminal run and moves the client on.
func (h *harness) finishRun(c *client, state string) {
	if state == "cancelled" {
		h.cancelled.Add(1)
	} else {
		h.completed.Add(1)
		h.byTenant[c.tenant].Add(1)
	}
	h.afterRun(c)
}

// afterRun is the churn decision after a run ends: leave the crowd, or
// think and come back for another run.
func (h *harness) afterRun(c *client) {
	c.runID = ""
	c.state = stSubmit
	if c.rng.Float64() < 0.25 {
		h.done(c) // leave
		return
	}
	h.schedule(c, time.Now().Add(h.think(c)))
}

// think draws a heavy-tailed (lognormal) think time, scaled by the
// client's device speed and its tenant's aggression: tenant-0 thinks ~9×
// faster than tenant-2, which is the skewed offered load the fair-share
// assertions run against.
func (h *harness) think(c *client) time.Duration {
	skew := math.Pow(3, float64(c.tenant%3))
	speed := min(max(c.speed, 0.4), 4)
	d := float64(h.cfg.thinkBase()) * skew * speed * math.Exp(c.rng.NormFloat64()*0.75)
	return time.Duration(d)
}

// pollDelay draws the client's next status-poll latency (network + device),
// heavy-tailed around tens of milliseconds.
func (h *harness) pollDelay(c *client) time.Duration {
	speed := min(max(c.speed, 0.4), 4)
	d := 30 * float64(time.Millisecond) * speed * math.Exp(c.rng.NormFloat64()*0.5)
	return max(time.Duration(d), 5*time.Millisecond)
}

func (h *harness) recordPost(d time.Duration) {
	h.latMu.Lock()
	if len(h.postLat) < 1<<20 {
		h.postLat = append(h.postLat, float64(d)/float64(time.Millisecond))
	}
	h.latMu.Unlock()
}

// watchStats polls GET /stats for the run's duration, accumulating the
// quota-violation and queue-depth evidence the assertions need.
func (h *harness) watchStats(done <-chan struct{}) {
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			h.pollStats()
		}
	}
}

func (h *harness) pollStats() {
	resp, err := h.hc.Get(h.base + "/stats")
	if err != nil {
		return
	}
	var st statsResp
	err = json.NewDecoder(resp.Body).Decode(&st)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return
	}
	h.statMu.Lock()
	defer h.statMu.Unlock()
	h.lastStats = st
	if st.Sched == nil {
		return
	}
	if st.Sched.MaxQueueDepth > h.maxQueueDepth {
		h.maxQueueDepth = st.Sched.MaxQueueDepth
	}
	if st.Sched.Running > st.Sched.MaxRunning {
		h.quotaViolations++
	}
	if h.cfg.TenantMaxRunning > 0 {
		for _, t := range st.Sched.Tenants {
			if t.Running > h.cfg.TenantMaxRunning {
				h.quotaViolations++
			}
		}
	}
}

// quantile returns the q-quantile of xs (sorted in place); 0 when empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	slices.Sort(xs)
	return xs[int(q*float64(len(xs)-1))]
}

func (h *harness) buildReport(elapsed time.Duration) *report {
	rep := &report{
		Clients:     h.cfg.Clients,
		Completed:   h.completed.Load(),
		Cancelled:   h.cancelled.Load(),
		Rejected429: h.rejected429.Load(),
		HTTPErrors:  h.httpErrors.Load(),
		ByTenant:    make([]int64, h.cfg.Tenants),
		Elapsed:     elapsed,
		PeakRSSMB:   peakRSSMB(),
	}
	for i := range h.byTenant {
		rep.ByTenant[i] = h.byTenant[i].Load()
	}
	h.latMu.Lock()
	rep.PostP50MS = quantile(h.postLat, 0.50)
	rep.PostP99MS = quantile(h.postLat, 0.99)
	h.latMu.Unlock()

	h.statMu.Lock()
	st := h.lastStats
	rep.MaxQueueDepth = h.maxQueueDepth
	rep.QuotaViolations = h.quotaViolations
	h.statMu.Unlock()
	if st.Sched != nil {
		rep.WaitP50MS = st.Sched.WaitP50MS
		rep.WaitP99MS = st.Sched.WaitP99MS
		if st.Sched.MaxQueueDepth > rep.MaxQueueDepth {
			rep.MaxQueueDepth = st.Sched.MaxQueueDepth
		}
	}
	rep.CacheHits = st.CacheHits
	rep.CacheMisses = st.CacheMisses
	rep.CoalesceHits = st.CacheCoalesceHits
	if st.Coalesce != nil {
		rep.CoalesceHits += st.Coalesce.Deduped
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		rep.CoalesceRate = float64(rep.CoalesceHits) / float64(lookups)
	}

	// Assertions.
	if rep.Completed == 0 {
		rep.Failures = append(rep.Failures, "no run completed at all")
	}
	for i, n := range rep.ByTenant {
		if n == 0 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("starvation: tenant-%d completed no runs", i))
		}
	}
	if rep.QuotaViolations > 0 {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("quota enforcement: %d polled /stats snapshots exceeded a concurrency bound", rep.QuotaViolations))
	}
	if h.cfg.P99BoundMS > 0 && rep.WaitP99MS > h.cfg.P99BoundMS {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("admission p99 %.1fms exceeds bound %.1fms", rep.WaitP99MS, h.cfg.P99BoundMS))
	}
	if h.cfg.RSSBoundMB > 0 && rep.PeakRSSMB > h.cfg.RSSBoundMB {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("peak RSS %.1fMiB exceeds bound %.1fMiB", rep.PeakRSSMB, h.cfg.RSSBoundMB))
	}
	if h.cfg.RequireCoalesce && rep.CoalesceHits == 0 {
		rep.Failures = append(rep.Failures,
			"coalescing: duplicate-seed tenants produced zero coalesce hits")
	}
	return rep
}

// printReport emits the "LOAD:"-prefixed summary CI greps into the job
// summary, plus any assertion failures.
func (h *harness) printReport(rep *report) {
	tenants := make([]string, len(rep.ByTenant))
	for i, n := range rep.ByTenant {
		tenants[i] = fmt.Sprintf("tenant-%d=%d", i, n)
	}
	fmt.Fprintf(h.out, "LOAD: clients=%d tenants=%d elapsed=%.1fs completed=%d cancelled=%d rejected_429=%d http_errors=%d\n",
		rep.Clients, len(rep.ByTenant), rep.Elapsed.Seconds(), rep.Completed, rep.Cancelled, rep.Rejected429, rep.HTTPErrors)
	fmt.Fprintf(h.out, "LOAD: runs_per_s=%.1f post_p50_ms=%.2f post_p99_ms=%.2f admit_wait_p50_ms=%.2f admit_wait_p99_ms=%.2f\n",
		float64(rep.Completed)/rep.Elapsed.Seconds(), rep.PostP50MS, rep.PostP99MS, rep.WaitP50MS, rep.WaitP99MS)
	fmt.Fprintf(h.out, "LOAD: max_queue_depth=%d quota_violations=%d peak_rss_mb=%.1f coalesce_hits=%d coalesce_rate=%.4f cache_hits=%d cache_misses=%d\n",
		rep.MaxQueueDepth, rep.QuotaViolations, rep.PeakRSSMB, rep.CoalesceHits, rep.CoalesceRate, rep.CacheHits, rep.CacheMisses)
	fmt.Fprintf(h.out, "LOAD: completions by tenant: %s\n", strings.Join(tenants, " "))
	for _, f := range rep.Failures {
		fmt.Fprintf(h.out, "LOAD: FAIL %s\n", f)
	}
	if len(rep.Failures) == 0 {
		fmt.Fprintf(h.out, "LOAD: PASS all assertions held\n")
	}
}

// benchResult / benchBaseline mirror cmd/benchjson's artifact shape so
// BENCH_load.json sits next to BENCH_fit.json with identical structure
// (benchjson is package main, so the structs are mirrored, not imported).
type benchResult struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchBaseline struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []benchResult `json:"results"`
}

// writeBench writes the BENCH_load.json artifact.
func writeBench(cfg config, rep *report) error {
	base := benchBaseline{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Results: []benchResult{{
			Name:       "LoadHarness/crowd",
			Package:    "repro/cmd/loadharness",
			Procs:      runtime.GOMAXPROCS(0),
			Iterations: rep.Completed,
			Metrics: map[string]float64{
				"clients":           float64(rep.Clients),
				"runs/s":            float64(rep.Completed) / rep.Elapsed.Seconds(),
				"post-p50-ms":       rep.PostP50MS,
				"post-p99-ms":       rep.PostP99MS,
				"admit-wait-p50-ms": rep.WaitP50MS,
				"admit-wait-p99-ms": rep.WaitP99MS,
				"max-queue-depth":   float64(rep.MaxQueueDepth),
				"rejected-429":      float64(rep.Rejected429),
				"cancelled":         float64(rep.Cancelled),
				"peak-rss-mb":       rep.PeakRSSMB,
				"coalesce-hits":     float64(rep.CoalesceHits),
				"coalesce-rate":     rep.CoalesceRate,
				"cache-hits":        float64(rep.CacheHits),
				"cache-misses":      float64(rep.CacheMisses),
			},
		}},
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.Out, append(data, '\n'), 0o644)
}

// peakRSSMB reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux), which disables the
// RSS assertion rather than failing it.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
