// Command loadharness is a deterministic, seeded crowd simulator that
// drives a hypermapperd coordinator the way the paper's crowd-sourcing
// experiment (Fig. 5) implies at production scale: tens of thousands to
// hundreds of thousands of synthetic clients — each bound to a device
// profile from internal/device's platform market, with heavy-tailed
// think-time and poll-latency distributions and churn (join, leave, cancel
// mid-run) — submitting small exploration runs across several tenants with
// skewed offered load.
//
// By default the harness embeds its own daemon (a real net/http server over
// server.NewManagerConfig with the multi-tenant scheduler enabled) so one
// process proves the whole stack; -addr points it at an external
// hypermapperd instead.
//
// The harness is a test that happens to be a binary: after the crowd
// drains, it asserts
//
//   - starvation-freedom: every tenant completed at least one run;
//   - quota enforcement: the polled /stats never showed the fleet or any
//     tenant above its concurrency bound;
//   - bounded admission latency: the scheduler's p99 submit→dispatch wait
//     stays under -p99-bound;
//   - bounded memory: the process's peak RSS stays under -rss-bound-mb;
//   - cross-run coalescing: duplicate-seed tenants produced a non-zero
//     coalesce hit rate (memo-cache singleflight plus batch-merge dedup).
//
// and exits non-zero (printing "LOAD: FAIL ..." lines) when any of them
// does not hold. Results are written to -out as a BENCH_load.json artifact
// in the same Baseline shape cmd/benchjson emits, and a "LOAD:" summary is
// printed for CI job summaries:
//
//	go run ./cmd/loadharness -clients 100000 -duration 30s -out BENCH_load.json
//	go run ./cmd/loadharness -addr http://localhost:8089 -clients 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.Addr, "addr", "", "base URL of an external hypermapperd (empty = embed a daemon in-process)")
	flag.IntVar(&cfg.Clients, "clients", 100_000, "synthetic crowd size")
	flag.IntVar(&cfg.Tenants, "tenants", 3, "tenant count; offered load is skewed across them (tenant-0 most aggressive)")
	flag.DurationVar(&cfg.Duration, "duration", 30*time.Second, "submission window; polling drains for up to -grace afterwards")
	flag.DurationVar(&cfg.Grace, "grace", 10*time.Second, "post-deadline drain budget for in-flight runs")
	flag.Int64Var(&cfg.Seed, "seed", 1, "crowd seed: device market, per-client RNGs, think times, churn")
	flag.StringVar(&cfg.Problem, "problem", "synthetic", "problem the crowd explores")
	flag.IntVar(&cfg.Executors, "executors", 0, "concurrent HTTP executors (0 selects a CPU-derived default)")
	flag.IntVar(&cfg.MaxRunning, "max-concurrent-runs", 16, "embedded daemon: fleet-wide run slots")
	flag.IntVar(&cfg.TenantMaxRunning, "tenant-max-running", 8, "embedded daemon: per-tenant concurrent-run quota")
	flag.IntVar(&cfg.TenantMaxQueued, "tenant-max-queued", 256, "embedded daemon: per-tenant admission-queue bound")
	flag.DurationVar(&cfg.CoalesceWindow, "coalesce-window", 0, "embedded daemon: evaluation-batch merge window (0 = default)")
	flag.IntVar(&cfg.RunSeeds, "run-seeds", 8, "distinct run-request seeds shared across tenants; small values force duplicate configurations")
	flag.Float64Var(&cfg.P99BoundMS, "p99-bound", 10_000, "assertion bound on the scheduler's p99 admission wait, in ms")
	flag.Float64Var(&cfg.RSSBoundMB, "rss-bound-mb", 2048, "assertion bound on the process's peak RSS, in MiB (0 disables)")
	flag.BoolVar(&cfg.RequireCoalesce, "require-coalesce", true, "fail unless the coalesce hit rate is > 0")
	flag.StringVar(&cfg.Out, "out", "BENCH_load.json", "benchjson-shaped result artifact path (empty disables)")
	flag.BoolVar(&cfg.Verbose, "v", false, "per-phase progress output")
	flag.Parse()

	rep, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadharness: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}
