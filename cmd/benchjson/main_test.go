package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/forest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkForestFit/presorted/n=200-8   360   6239555 ns/op   399676 B/op   320 allocs/op
BenchmarkALIteration/incremental-8     10    1.5e+08 ns/op   2.25 fit-ms
PASS
ok  	repro/internal/forest	18.812s
`
	base, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if base.Goos != "linux" || base.Goarch != "amd64" || base.CPU == "" {
		t.Fatalf("header not parsed: %+v", base)
	}
	if len(base.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(base.Results))
	}
	r := base.Results[0]
	if r.Name != "BenchmarkForestFit/presorted/n=200" || r.Procs != 8 || r.Package != "repro/internal/forest" {
		t.Fatalf("first result: %+v", r)
	}
	if r.Iterations != 360 || r.Metrics["ns/op"] != 6239555 || r.Metrics["allocs/op"] != 320 {
		t.Fatalf("first result metrics: %+v", r)
	}
	if got := base.Results[1].Metrics["fit-ms"]; got != 2.25 {
		t.Fatalf("custom metric = %v, want 2.25", got)
	}
}

func TestParseIgnoresNonResultBenchmarkLines(t *testing.T) {
	// `-benchtime 1x` failures or log lines starting with Benchmark must not
	// corrupt the artifact.
	base, err := parse(strings.NewReader("BenchmarkBroken failed\nBenchmarkOdd 1 2 ns/op extra\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != 0 {
		t.Fatalf("parsed %d results from junk, want 0", len(base.Results))
	}
}
