// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON baseline artifact. CI pipes the fit-path
// benchmarks through it to publish BENCH_fit.json next to the raw text, so
// the performance trajectory (ns/op, allocs/op, and custom metrics like
// fit-ms) can be tracked and diffed across PRs without re-parsing logs; the
// raw text stays benchstat-compatible, the JSON feeds dashboards.
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the benchmark name (with any sub-benchmark
// path and the trailing -GOMAXPROCS suffix stripped into Procs), the
// iteration count, and every reported metric keyed by its unit.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the whole artifact: the bench environment header plus every
// parsed benchmark line, in input order.
type Baseline struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	base, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Baseline, error) {
	base := &Baseline{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			base.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue // a Benchmark… line that is not a result row
			}
			res.Package = pkg
			base.Results = append(base.Results, res)
		}
	}
	return base, sc.Err()
}

// parseBenchLine parses one result row:
//
//	BenchmarkFit/presorted/n=200-8  360  6239555 ns/op  399676 B/op  320 allocs/op  1.5 fit-ms
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = procs
			res.Name = res.Name[:i]
		}
	}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
