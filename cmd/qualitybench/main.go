// Command qualitybench sweeps evaluation budgets over the shipped
// declarative problem specs and publishes hypervolume-vs-budget curves per
// search strategy (internal/quality) as BENCH_quality.json — the
// optimization-quality counterpart of the performance bench artifacts.
//
// It enforces two quality gates:
//
//   - Strategy gate (-gate): on the named problem, the
//     feasibility+acquisition pipeline must reach at least the default
//     pipeline's hypervolume at every measured budget.
//   - Regression gate (-check): the default pipeline's curves must reach
//     the committed baseline report at every (problem, budget) point.
//     Sweeps are seeded and deterministic, so a drift means the engine's
//     search behavior changed.
//
// Usage:
//
//	qualitybench -specs specs -out BENCH_quality.json
//	qualitybench -specs specs -check results/BENCH_quality_baseline.json
//	qualitybench -specs specs -budgets 25,50,100,200 -seeds 1,2,3 -gate constrained-synthetic
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/quality"
	"repro/internal/spec"
)

func main() {
	var (
		specsDir = flag.String("specs", "specs",
			"directory of declarative problem specs (*.json) to sweep")
		budgets = flag.String("budgets", "25,50,100,200",
			"comma-separated evaluation budgets")
		seeds = flag.String("seeds", "2,5,6,8",
			"comma-separated seeds; curves average over them")
		out = flag.String("out", "",
			"write the report JSON here ('-' or empty = stdout)")
		check = flag.String("check", "",
			"committed baseline report to compare the default strategy against (empty = skip)")
		tolerance = flag.Float64("tolerance", 0.02,
			"relative hypervolume tolerance for both gates")
		gate = flag.String("gate", "constrained-synthetic",
			"problem on which feasibility+acquisition must reach the default strategy's hypervolume at every budget (empty = skip)")
	)
	flag.Parse()

	budgetVals, err := parseInts(*budgets)
	if err != nil {
		fatalf("parsing -budgets: %v", err)
	}
	seedVals, err := parseInt64s(*seeds)
	if err != nil {
		fatalf("parsing -seeds: %v", err)
	}
	problems, err := loadProblems(*specsDir)
	if err != nil {
		fatalf("%v", err)
	}

	strategies := []quality.Strategy{
		{Name: "default"},
		{Name: "acquisition", Selector: "acquisition"},
		{Name: "feasibility+acquisition", Feasibility: true, Selector: "acquisition"},
	}
	rep, err := quality.Sweep(context.Background(), problems, strategies, budgetVals, seedVals)
	if err != nil {
		fatalf("%v", err)
	}

	if err := writeReport(rep, *out); err != nil {
		fatalf("writing report: %v", err)
	}
	if *gate != "" {
		if err := rep.Gate(*gate, "feasibility+acquisition", "default", *tolerance); err != nil {
			fatalf("strategy gate failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "qualitybench: strategy gate passed on %s\n", *gate)
	}
	if *check != "" {
		base, err := readReport(*check)
		if err != nil {
			fatalf("reading baseline: %v", err)
		}
		if err := quality.Check(rep, base, "default", *tolerance); err != nil {
			fatalf("regression gate failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "qualitybench: regression gate passed against %s\n", *check)
	}
}

// loadProblems materializes every spec in dir into a sweepable problem.
// Shipped specs bind analytic builtin models, so the sweep stays cheap and
// deterministic.
func loadProblems(dir string) ([]quality.Problem, error) {
	specs, err := spec.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]quality.Problem, 0, len(specs))
	for _, sp := range specs {
		p, err := catalog.FromSpec(sp)
		if err != nil {
			return nil, err
		}
		out = append(out, quality.Problem{
			Name:       p.Name,
			Space:      p.Space,
			Eval:       p.Eval,
			Objectives: len(p.Objectives),
		})
	}
	return out, nil
}

func writeReport(rep *quality.Report, path string) error {
	w := os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func readReport(path string) (*quality.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep quality.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qualitybench: "+format+"\n", args...)
	os.Exit(1)
}
