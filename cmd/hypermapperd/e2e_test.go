package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
)

// This file is the crash-recovery end-to-end harness: it builds the real
// hypermapperd binary, SIGKILLs it at a randomized point mid-run — no
// graceful checkpoint, no flushing, exactly what a power loss or OOM kill
// looks like — restarts it with -resume, and asserts the resumed run
// finishes with a Pareto front byte-identical to an uninterrupted
// reference run of the same seed, with the journal recording the same
// evaluation sequence.

// e2eReq is the seeded run both daemons execute.
var e2eReq = map[string]any{
	"problem": "synthetic", "seed": 42,
	"random_samples": 25, "max_iterations": 3, "max_batch": 12,
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hypermapperd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hypermapperd: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// daemon is one running hypermapperd process under test.
type daemon struct {
	cmd *exec.Cmd
	url string
	out *bytes.Buffer
}

func startDaemon(t *testing.T, bin string, extra ...string) *daemon {
	t.Helper()
	addr := freeAddr(t)
	args := append([]string{"-addr", addr, "-dataset", "test", "-session-ttl", "0"}, extra...)
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	d := &daemon{cmd: cmd, url: "http://" + addr, out: &out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("daemon %s output:\n%s", addr, out.String())
		}
	})
	// The daemon is up once /healthz answers.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(d.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never became healthy\n%s", addr, out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sigkill terminates the daemon the hard way and reaps it.
func (d *daemon) sigkill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// stop shuts the daemon down gracefully (SIGTERM) and waits for exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signalling daemon: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

func (d *daemon) postRun(t *testing.T, req map[string]any) server.RunStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(d.url+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, data)
	}
	var st server.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (d *daemon) status(t *testing.T, id string) (server.RunStatus, bool) {
	t.Helper()
	resp, err := http.Get(d.url + "/runs/" + id)
	if err != nil {
		return server.RunStatus{}, false // daemon may be mid-kill
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.RunStatus{}, false
	}
	var st server.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.RunStatus{}, false
	}
	return st, true
}

func (d *daemon) waitDone(t *testing.T, id string) server.RunStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := d.status(t, id); ok && st.State.Terminal() {
			if st.State != server.StateDone {
				t.Fatalf("run %s: %s (%s)", id, st.State, st.Error)
			}
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s never finished\n%s", id, d.out.String())
	return server.RunStatus{}
}

func (d *daemon) front(t *testing.T, id string) string {
	t.Helper()
	resp, err := http.Get(d.url + "/runs/" + id + "/front")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET front = %d: %s", resp.StatusCode, data)
	}
	return string(data)
}

func (d *daemon) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never became ready\n%s", d.out.String())
}

// journalIndices flattens a run journal into its measured design-space
// index sequence, in journal order.
func journalIndices(t *testing.T, dataDir, id string) []int64 {
	t.Helper()
	rec, err := journal.Recover(filepath.Join(dataDir, "runs", id, "journal.jsonl"))
	if err != nil {
		t.Fatalf("recovering journal of %s: %v", id, err)
	}
	var out []int64
	for _, b := range rec.Batches {
		for _, s := range b.Samples {
			out = append(out, s.Index)
		}
	}
	return out
}

// TestKillResumeByteIdentical is the acceptance test of the durability
// layer: SIGKILL the daemon at a randomized evaluation count, restart with
// -resume, and the run must complete byte-identical to an uninterrupted
// reference — same front JSON, same journaled evaluation sequence.
func TestKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemon processes")
	}
	bin := buildDaemon(t)

	// Uninterrupted reference run, journaled for the sequence comparison.
	refDir := t.TempDir()
	ref := startDaemon(t, bin, "-data-dir", refDir)
	refSt := ref.postRun(t, e2eReq)
	ref.waitDone(t, refSt.ID)
	refFront := ref.front(t, refSt.ID)
	ref.stop(t)
	refIdx := journalIndices(t, refDir, refSt.ID)
	if len(refIdx) == 0 {
		t.Fatal("reference journal is empty")
	}

	// The victim: slowed evaluations so the SIGKILL lands mid-run, at a
	// randomized point so repeated CI runs cut at different batches.
	dataDir := t.TempDir()
	victim := startDaemon(t, bin, "-data-dir", dataDir, "-resume", "-eval-delay", "5ms")
	st := victim.postRun(t, e2eReq)
	threshold := 1 + rand.Intn(40)
	t.Logf("killing daemon once >= %d evaluations are journaled", threshold)
	killDeadline := time.Now().Add(120 * time.Second)
	for {
		if cur, ok := victim.status(t, st.ID); ok {
			if cur.State.Terminal() {
				t.Fatalf("run finished before the kill (state %s); raise -eval-delay", cur.State)
			}
			if cur.Samples >= threshold {
				break
			}
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("run never reached %d samples\n%s", threshold, victim.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.sigkill()

	// Restart over the same data directory: the run must resume and finish
	// identically to the reference.
	revived := startDaemon(t, bin, "-data-dir", dataDir, "-resume")
	revived.waitReady(t)
	final := revived.waitDone(t, st.ID)
	if got := revived.front(t, st.ID); got != refFront {
		t.Errorf("resumed front differs from uninterrupted reference\nresumed:   %s\nreference: %s", got, refFront)
	}
	if final.Samples != len(refIdx) {
		t.Errorf("resumed run measured %d samples, reference %d", final.Samples, len(refIdx))
	}
	gotIdx := journalIndices(t, dataDir, st.ID)
	if len(gotIdx) != len(refIdx) {
		t.Fatalf("journal has %d samples, reference %d", len(gotIdx), len(refIdx))
	}
	for i := range refIdx {
		if gotIdx[i] != refIdx[i] {
			t.Fatalf("journal diverges at sample %d: index %d vs reference %d", i, gotIdx[i], refIdx[i])
		}
	}

	// The restarted daemon must also keep serving the finished run after
	// one more restart — result.json, not the journal, is now the source.
	revived.stop(t)
	third := startDaemon(t, bin, "-data-dir", dataDir, "-resume")
	third.waitReady(t)
	if got := third.front(t, st.ID); got != refFront {
		t.Error("front changed after a post-completion restart")
	}
	third.stop(t)
}

// TestGracefulShutdownResume covers the orderly half: SIGTERM mid-run
// journals a shutdown checkpoint and leaves the run resumable, and a
// -resume restart finishes it byte-identical to the reference.
func TestGracefulShutdownResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals real daemon processes")
	}
	bin := buildDaemon(t)

	refDir := t.TempDir()
	ref := startDaemon(t, bin, "-data-dir", refDir)
	refSt := ref.postRun(t, e2eReq)
	ref.waitDone(t, refSt.ID)
	refFront := ref.front(t, refSt.ID)
	ref.stop(t)

	dataDir := t.TempDir()
	victim := startDaemon(t, bin, "-data-dir", dataDir, "-resume", "-eval-delay", "5ms")
	st := victim.postRun(t, e2eReq)
	deadline := time.Now().Add(120 * time.Second)
	for {
		if cur, ok := victim.status(t, st.ID); ok && cur.Samples > 0 && !cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never journaled its bootstrap\n%s", victim.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.stop(t) // SIGTERM: graceful — checkpoint, then exit

	rec, err := journal.Recover(filepath.Join(dataDir, "runs", st.ID, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Checkpoints) == 0 || rec.Checkpoints[len(rec.Checkpoints)-1].Reason != "shutdown" {
		t.Fatalf("no shutdown checkpoint in journal: %+v", rec.Checkpoints)
	}

	revived := startDaemon(t, bin, "-data-dir", dataDir, "-resume")
	revived.waitReady(t)
	revived.waitDone(t, st.ID)
	if got := revived.front(t, st.ID); got != refFront {
		t.Errorf("front after graceful-shutdown resume differs\nresumed:   %s\nreference: %s", got, refFront)
	}
	revived.stop(t)
}
