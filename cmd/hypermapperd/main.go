// Command hypermapperd is the HyperMapper coordinator daemon: it serves
// concurrent design-space-exploration sessions over a JSON REST API, one
// problem per benchmark × platform pair, with a shared evaluation
// memo-cache per problem. See internal/server for the endpoint list and
// docs/ARCHITECTURE.md for how the pieces fit.
//
// Usage:
//
//	hypermapperd -addr :8089
//	curl -s localhost:8089/problems
//	curl -s -X POST localhost:8089/runs -d '{"problem":"kfusion/ODROID-XU3","seed":1,"random_samples":60,"max_iterations":2}'
//	curl -s -X POST localhost:8089/runs -d '{"problem":"constrained-synthetic","seed":1,"strategy":{"feasibility":true,"selector":"acquisition"}}'
//	curl -s localhost:8089/runs/run-000001
//	curl -s localhost:8089/runs/run-000001/events     # NDJSON progress stream
//	curl -s localhost:8089/runs/run-000001/front
//	curl -s -X DELETE localhost:8089/runs/run-000001  # cancel
//
// With -workers the daemon stops evaluating in-process and fans every
// evaluation batch out to a fleet of hypermapper-worker daemons
// (docs/WORKER_PROTOCOL.md), with retries and hedged straggler
// re-dispatch:
//
//	hypermapperd -addr :8089 -workers http://w1:9090,http://w2:9090 -hedge-after 500ms
//
// The fleet is resilient by default: failed chunks retry with capped
// exponential backoff and full jitter (-retry-backoff), repeatedly
// failing workers trip a per-worker circuit breaker (-breaker-threshold)
// and are health-probed back in (-probe-interval), 503 + Retry-After
// responses from shedding workers are honored as backpressure, and
// -max-unmeasured lets runs tolerate a bounded fraction of unmeasured
// configurations per batch instead of failing outright. GET /stats
// exposes per-worker breaker state and trip counts.
//
// With -max-concurrent-runs the daemon becomes an explicitly multi-tenant
// coordinator: runs are admitted through a fair-share scheduler
// (internal/sched) that bounds fleet concurrency, enforces per-tenant
// quotas, queues overflow per tenant (state "queued"), rejects past the
// queue bound with 429 + Retry-After, and merges concurrent runs'
// evaluation batches onto the shared backend. Tenants identify themselves
// via the request body's "tenant" field or the X-Tenant / X-API-Key
// headers:
//
//	hypermapperd -addr :8089 -max-concurrent-runs 8 -tenant-max-running 4 -tenant-max-queued 16
//	curl -s -X POST localhost:8089/runs -H 'X-Tenant: alice' -d '{"problem":"synthetic","seed":1,"priority":5}'
//
// Beyond the builtin catalog, declarative problem specs (docs/SCENARIOS.md)
// extend what the daemon serves: -problems <dir> loads every *.json spec at
// startup, POST /problems registers one at runtime, and -validate checks a
// spec directory and exits — the CI gate for shipped catalogs:
//
//	hypermapperd -problems specs
//	hypermapperd -validate -problems specs
//	curl -s -X POST localhost:8089/problems --data-binary @specs/dbms_knobs.json
//
// With -data-dir the daemon is durable: every run keeps an fsync'd
// evaluation journal, finished runs persist their status and front, the
// evaluation memo-cache spills to disk, and sessions survive restarts.
// Adding -resume replays interrupted runs' journals on startup and
// continues them from the first unmeasured configuration (seeded runs
// finish byte-identical to an uninterrupted run). GET /healthz reports
// liveness, GET /readyz readiness (503 while journal recovery runs):
//
//	hypermapperd -addr :8089 -data-dir /var/lib/hypermapper -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/param"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/worker"
)

func main() {
	var (
		addr  = flag.String("addr", ":8089", "listen address")
		scale = flag.String("dataset", "dse", "dataset scale: full, dse, or test")
		power = flag.Bool("power", false, "add power as a third objective")

		sessionTTL = flag.Duration("session-ttl", time.Hour,
			"evict a finished session this long after it reaches a terminal state (0 retains forever)")
		maxSessions = flag.Int("max-sessions", 10000,
			"retained-session cap; finished sessions are evicted oldest-first past it (0 = unbounded)")
		shards = flag.Int("shards", 0,
			"session-store shard count (0 selects the default)")

		workers = flag.String("workers", "",
			"comma-separated hypermapper-worker base URLs; when set, evaluation batches are fanned out to this fleet instead of running in-process")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"straggler threshold: re-dispatch a worker request outstanding this long to a second worker (0 = adaptive from the observed latency quantile, negative disables hedging)")
		chunkSize = flag.Int("chunk-size", 0,
			"max configurations per worker request (0 selects the default)")
		retries = flag.Int("retries", 0,
			"extra attempts per failed worker chunk, each on a different worker (0 selects the default)")
		retryBackoff = flag.Duration("retry-backoff", 0,
			"base delay before a worker retry; successive attempts back off exponentially with full jitter (0 selects the default)")
		breakerThreshold = flag.Int("breaker-threshold", 0,
			"consecutive failures that trip a worker's circuit breaker (0 selects the default, negative disables breakers)")
		probeInterval = flag.Duration("probe-interval", 0,
			"how often tripped workers are health-probed for readmission (0 selects the default)")
		maxUnmeasured = flag.Float64("max-unmeasured", 0,
			"default per-batch fraction of configurations a run may leave unmeasured before failing, 0..1 (requests can override)")

		maxConcurrentRuns = flag.Int("max-concurrent-runs", 0,
			"fleet-wide cap on concurrently running sessions; setting it enables the multi-tenant fair-share scheduler (0 = no scheduler: every accepted run starts immediately)")
		tenantMaxRunning = flag.Int("tenant-max-running", 0,
			"per-tenant concurrent-run quota under the scheduler (0 = bounded only by -max-concurrent-runs)")
		tenantMaxQueued = flag.Int("tenant-max-queued", 0,
			"per-tenant admission-queue depth; submissions past it are rejected with 429 + Retry-After (0 selects the default)")
		retryAfter = flag.Duration("retry-after", 0,
			"backoff hint attached to 429 queue-full rejections (0 selects the default)")
		coalesceWindow = flag.Duration("coalesce-window", 0,
			"under the scheduler, how long a run's evaluation batch waits to merge with concurrent runs' batches before dispatch (0 selects the default, negative disables merging)")

		problemsDir = flag.String("problems", "",
			"directory of declarative problem specs (*.json, docs/SCENARIOS.md) to load at startup")
		validate = flag.Bool("validate", false,
			"build the problem catalog (builtins plus -problems specs), print it, and exit without serving")

		dataDir = flag.String("data-dir", "",
			"durable state directory: per-run evaluation journals, persisted results, and memo-cache spill live here and survive restarts (empty = in-memory only)")
		resume = flag.Bool("resume", false,
			"with -data-dir, replay interrupted runs' journals on startup and continue them; without it they are restored as failed (their journals stay on disk)")
		evalDelay = flag.Duration("eval-delay", 0,
			"artificial per-evaluation delay added to every in-process evaluator — a fault-injection aid that widens the window for kill/restart testing")
		quiet = flag.Bool("quiet", false,
			"suppress informational output and bridge-evaluator failure chatter (fatal errors still print)")
	)
	flag.Parse()

	infof := func(format string, args ...any) {
		fmt.Printf("hypermapperd: "+format+"\n", args...)
	}
	if *quiet {
		infof = func(string, ...any) {}
	}

	// Bridge evaluators (exec:/http: spec bindings) report measurement
	// failures through this logger. -quiet and -validate silence them (nil);
	// normal serving prefixes them onto stderr instead of leaking the
	// process-global log.Printf default.
	var bridgeLogf func(format string, args ...any)
	if !*quiet && !*validate {
		bridgeLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hypermapperd: "+format+"\n", args...)
		}
	}

	reg := catalog.NewRegistry()
	reg.SetLogf(bridgeLogf)
	if err := reg.RegisterBuiltins(*scale, *power); err != nil {
		fatalf("registering builtin problems: %v", err)
	}
	if *problemsDir != "" {
		n, err := reg.LoadDir(*problemsDir)
		if err != nil {
			fatalf("loading problem specs: %v", err)
		}
		infof("loaded %d problem specs from %s", n, *problemsDir)
	}
	if *validate {
		for _, p := range reg.Problems() {
			fmt.Printf("  %-28s %d params, %d objectives, size %d\n",
				p.Name, p.Space.Dim(), len(p.Objectives), p.Space.Size())
		}
		fmt.Printf("hypermapperd: catalog valid (%d problems)\n", reg.Len())
		return
	}

	cfg := server.Config{
		SessionTTL:  *sessionTTL,
		MaxSessions: *maxSessions,
		Shards:      *shards,
		DataDir:     *dataDir,
		Resume:      *resume,
		SpecLoader: func(data []byte) (server.Problem, error) {
			p, err := catalog.FromSpecDataLogf(data, bridgeLogf)
			if err != nil {
				return server.Problem{}, err
			}
			return toServerProblem(p), nil
		},
	}
	if *dataDir != "" && !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf("hypermapperd: "+format+"\n", args...)
		}
	}
	if *resume && *dataDir == "" {
		fatalf("-resume requires -data-dir")
	}
	if f := *maxUnmeasured; f < 0 || f > 1 {
		fatalf("-max-unmeasured %g must be in [0, 1]", f)
	}
	cfg.MaxUnmeasuredFraction = *maxUnmeasured
	if *maxConcurrentRuns > 0 {
		cfg.Sched = &sched.Config{
			MaxRunning: *maxConcurrentRuns,
			Quota: sched.TenantQuota{
				MaxRunning: *tenantMaxRunning,
				MaxQueued:  *tenantMaxQueued,
			},
			RetryAfter:     *retryAfter,
			CoalesceWindow: *coalesceWindow,
		}
	} else if *tenantMaxRunning > 0 || *tenantMaxQueued > 0 || *coalesceWindow != 0 {
		fatalf("-tenant-max-running, -tenant-max-queued, and -coalesce-window require -max-concurrent-runs")
	}
	if *workers != "" {
		urls := strings.Split(*workers, ",")
		pool, err := worker.NewPool(urls, worker.Options{
			HedgeAfter:       *hedgeAfter,
			ChunkSize:        *chunkSize,
			Retries:          *retries,
			RetryBackoff:     *retryBackoff,
			BreakerThreshold: *breakerThreshold,
			ProbeInterval:    *probeInterval,
		})
		if err != nil {
			fatalf("building worker pool: %v", err)
		}
		defer pool.Close()
		cfg.EvalPool = pool
	}

	problems := buildProblems(reg)
	if *evalDelay > 0 {
		for i := range problems {
			problems[i].Eval = delayEval{inner: problems[i].Eval, d: *evalDelay}
		}
	}
	mgr := server.NewManagerConfig(cfg, problems...)

	srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	mode := "in-process evaluation"
	if cfg.EvalPool != nil {
		mode = fmt.Sprintf("%d evaluation workers", cfg.EvalPool.Size())
	}
	if *dataDir != "" {
		mode += ", durable state in " + *dataDir
	}
	if cfg.Sched != nil {
		mode += fmt.Sprintf(", scheduler: %d run slots", cfg.Sched.MaxRunning)
	}
	infof("listening on %s (%d problems, %s)", *addr, len(mgr.Problems()), mode)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Release the handler so a second signal kills the process
		// instead of being swallowed during the drain below.
		stop()
		infof("shutting down")
	case err := <-errc:
		fatalf("%v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Cancel sessions first: open /events streams only close when their
	// session reaches a terminal state, so draining HTTP before the
	// manager would stall on any connected progress stream.
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hypermapperd: sessions still draining: %v\n", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hypermapperd: http shutdown: %v\n", err)
	}
}

// buildProblems maps the shared catalog registry onto the server's problem
// type.
func buildProblems(reg *catalog.Registry) []server.Problem {
	var out []server.Problem
	for _, p := range reg.Problems() {
		out = append(out, toServerProblem(p))
	}
	return out
}

func toServerProblem(p catalog.Problem) server.Problem {
	return server.Problem{
		Name:        p.Name,
		Description: p.Description,
		Space:       p.Space,
		Eval:        p.Eval,
		Objectives:  p.Objectives,
	}
}

// delayEval adds a fixed sleep before every evaluation (-eval-delay): the
// builtin lookup problems answer in microseconds, far too fast for a
// kill/restart harness to land a signal mid-run.
type delayEval struct {
	inner core.Evaluator
	d     time.Duration
}

// Evaluate implements core.Evaluator.
func (e delayEval) Evaluate(cfg param.Config) []float64 {
	time.Sleep(e.d)
	return e.inner.Evaluate(cfg)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hypermapperd: "+format+"\n", args...)
	os.Exit(1)
}
