// Command hypermapperd is the HyperMapper daemon: it serves concurrent
// design-space-exploration sessions over a JSON REST API, one problem per
// benchmark × platform pair, with a shared evaluation memo-cache per
// problem. See internal/server for the endpoint list.
//
// Usage:
//
//	hypermapperd -addr :8089
//	curl -s localhost:8089/problems
//	curl -s -X POST localhost:8089/runs -d '{"problem":"kfusion/ODROID-XU3","seed":1,"random_samples":60,"max_iterations":2}'
//	curl -s localhost:8089/runs/run-000001
//	curl -s localhost:8089/runs/run-000001/events     # NDJSON progress stream
//	curl -s localhost:8089/runs/run-000001/front
//	curl -s -X DELETE localhost:8089/runs/run-000001  # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/param"
	"repro/internal/server"
	"repro/internal/slambench"
)

func main() {
	var (
		addr  = flag.String("addr", ":8089", "listen address")
		scale = flag.String("dataset", "dse", "dataset scale: full, dse, or test")
		power = flag.Bool("power", false, "add power as a third objective")

		sessionTTL = flag.Duration("session-ttl", time.Hour,
			"evict a finished session this long after it reaches a terminal state (0 retains forever)")
		maxSessions = flag.Int("max-sessions", 10000,
			"retained-session cap; finished sessions are evicted oldest-first past it (0 = unbounded)")
		shards = flag.Int("shards", 0,
			"session-store shard count (0 selects the default)")
	)
	flag.Parse()

	mgr := server.NewManagerConfig(server.Config{
		SessionTTL:  *sessionTTL,
		MaxSessions: *maxSessions,
		Shards:      *shards,
	}, buildProblems(*scale, *power)...)

	srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("hypermapperd: listening on %s (%d problems)\n", *addr, len(mgr.Problems()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Release the handler so a second signal kills the process
		// instead of being swallowed during the drain below.
		stop()
		fmt.Println("hypermapperd: shutting down")
	case err := <-errc:
		fatalf("%v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Cancel sessions first: open /events streams only close when their
	// session reaches a terminal state, so draining HTTP before the
	// manager would stall on any connected progress stream.
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hypermapperd: sessions still draining: %v\n", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hypermapperd: http shutdown: %v\n", err)
	}
}

// buildProblems registers one problem per benchmark × platform pair plus a
// cheap synthetic problem for smoke-testing a deployment.
func buildProblems(scale string, power bool) []server.Problem {
	objs, names := slambench.RuntimeAccuracy, []string{"runtime_s_per_frame", "accuracy_ate_m"}
	if power {
		objs, names = slambench.RuntimeAccuracyPower, append(names, "power_w")
	}
	ds := slambench.CachedDataset(scale)
	benches := []slambench.Benchmark{
		slambench.NewKFusionBench(ds),
		slambench.NewElasticFusionBench(ds),
	}
	var out []server.Problem
	for _, b := range benches {
		for _, dev := range device.Platforms() {
			out = append(out, server.Problem{
				Name:        b.Name() + "/" + dev.Name,
				Description: fmt.Sprintf("%s on %s (%s dataset)", b.Name(), dev.Name, scale),
				Space:       b.Space(),
				Eval:        slambench.Evaluator(b, dev, objs),
				Objectives:  names,
			})
		}
	}
	out = append(out, syntheticProblem())
	return out
}

// syntheticProblem is a dataset-free two-objective toy space, useful for
// exercising the service without paying for SLAM evaluations.
func syntheticProblem() server.Problem {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3),
	)
	eval := core.EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b, c := cfg[0], cfg[1], cfg[2]
		return []float64{
			a + 0.5*math.Sin(3*b) + 0.05*c + 1.5,
			b + 0.5*math.Cos(2*a) + 1.5,
		}
	})
	return server.Problem{
		Name:        "synthetic",
		Description: "dataset-free two-objective toy space for smoke tests",
		Space:       space,
		Eval:        eval,
		Objectives:  []string{"f0", "f1"},
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hypermapperd: "+format+"\n", args...)
	os.Exit(1)
}
