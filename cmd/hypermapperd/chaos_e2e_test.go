package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// This file is the fleet-resilience end-to-end harness: a seeded run is
// fanned out to three real hypermapper-worker processes with chaos
// injection armed — one dropping connections and injecting 500s, one
// stalling and answering garbage, one crashing mid-run and restarting —
// and the run must still complete with a Pareto front byte-identical to
// an undisturbed in-process reference. Retries, backoff, hedging,
// circuit breakers, and health probing are what make that hold.

func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hypermapper-worker")
	cmd := exec.Command("go", "build", "-o", bin, "../hypermapper-worker")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hypermapper-worker: %v\n%s", err, out)
	}
	return bin
}

// chaosWorker is one running hypermapper-worker process under test.
// exited is closed once the process has been reaped, so any number of
// waiters (the crash assertion, the cleanup) can observe it.
type chaosWorker struct {
	cmd    *exec.Cmd
	addr   string
	url    string
	out    *bytes.Buffer
	exited chan struct{}
}

func startWorker(t *testing.T, bin, addr string, extra ...string) *chaosWorker {
	t.Helper()
	args := append([]string{"-addr", addr, "-dataset", "test"}, extra...)
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	w := &chaosWorker{cmd: cmd, addr: addr, url: "http://" + addr, out: &out,
		exited: make(chan struct{})}
	go func() { cmd.Wait(); close(w.exited) }()
	t.Cleanup(func() {
		select {
		case <-w.exited:
		default:
			cmd.Process.Kill()
			<-w.exited
		}
		if t.Failed() {
			t.Logf("worker %s output:\n%s", addr, out.String())
		}
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(w.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return w
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker on %s never became healthy\n%s", addr, out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitExit blocks until the worker process exits on its own (the
// chaos-crash-after path) and reports its exit code.
func (w *chaosWorker) waitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	select {
	case <-w.exited:
		return w.cmd.ProcessState.ExitCode()
	case <-time.After(timeout):
		t.Fatalf("worker %s never crashed\n%s", w.addr, w.out.String())
		return 0
	}
}

func coordinatorStats(t *testing.T, d *daemon) server.Stats {
	t.Helper()
	resp, err := http.Get(d.url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosFleetByteIdentical is the acceptance test of the resilience
// layer: a 3-worker fleet under seeded fault injection — drops, injected
// 500s, stalls, garbage bodies, and one mid-run crash with a restart —
// must complete a seeded run byte-identical to an undisturbed in-process
// reference, with zero run failures, and the crashed worker's circuit
// breaker must trip and be readmitted by health probing.
func TestChaosFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes real daemon processes")
	}
	coordBin := buildDaemon(t)
	workerBin := buildWorker(t)

	// Undisturbed in-process reference run.
	ref := startDaemon(t, coordBin)
	refSt := ref.postRun(t, e2eReq)
	ref.waitDone(t, refSt.ID)
	refFront := ref.front(t, refSt.ID)
	ref.stop(t)

	// The fleet. Worker A drops connections and injects 500s, worker B
	// stalls and answers garbage, worker C serves cleanly until it crashes
	// mid-run. All schedules are seeded, so the fault pattern is stable.
	addrA, addrB, addrC := freeAddr(t), freeAddr(t), freeAddr(t)
	startWorker(t, workerBin, addrA,
		"-chaos-drop", "0.15", "-chaos-500", "0.15", "-chaos-seed", "101")
	startWorker(t, workerBin, addrB,
		"-chaos-delay", "0.3", "-chaos-delay-max", "20ms",
		"-chaos-garbage", "0.15", "-chaos-seed", "202")
	workerC := startWorker(t, workerBin, addrC,
		"-chaos-crash-after", "2", "-chaos-seed", "303")

	urls := strings.Join([]string{"http://" + addrA, "http://" + addrB, "http://" + addrC}, ",")
	coord := startDaemon(t, coordBin,
		"-workers", urls,
		"-chunk-size", "4",
		"-retries", "8",
		"-retry-backoff", "5ms",
		"-breaker-threshold", "2",
		"-probe-interval", "30ms",
	)

	st := coord.postRun(t, e2eReq)
	final := coord.waitDone(t, st.ID)

	// Worker C's crash is deterministic (3rd /evaluate request) and the
	// run dispatches far more chunks than that, so it must have died.
	if code := workerC.waitExit(t, 60*time.Second); code != 3 {
		t.Fatalf("crashed worker exited %d, want 3", code)
	}

	if got := coord.front(t, st.ID); got != refFront {
		t.Errorf("chaos-fleet front differs from in-process reference\nchaos:     %s\nreference: %s", got, refFront)
	}
	if final.Unmeasured != 0 {
		t.Errorf("chaos run left %d configurations unmeasured; retries should have recovered all", final.Unmeasured)
	}

	// The dead worker's breaker must have tripped; restart it on the same
	// address and the probe loop must readmit it.
	stats := coordinatorStats(t, coord)
	var tripsBefore int64
	for _, w := range stats.Workers {
		if w.URL == "http://"+addrC {
			tripsBefore = w.Trips
		}
	}
	if tripsBefore == 0 {
		t.Fatalf("crashed worker never tripped its breaker: %+v", stats.Workers)
	}
	startWorker(t, workerBin, addrC)
	deadline := time.Now().Add(60 * time.Second)
	readmitted := false
	for time.Now().Before(deadline) && !readmitted {
		for _, w := range coordinatorStats(t, coord).Workers {
			if w.URL == "http://"+addrC && w.Breaker == "closed" {
				readmitted = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !readmitted {
		t.Fatalf("restarted worker was never readmitted: %+v", coordinatorStats(t, coord).Workers)
	}

	// Counters for the CI job summary (grepped out of the -v test log).
	var totalReq, totalFail, totalHedge, totalTrips int64
	for _, w := range coordinatorStats(t, coord).Workers {
		totalReq += w.Requests
		totalFail += w.Failures
		totalHedge += w.Hedges
		totalTrips += w.Trips
	}
	fmt.Printf("CHAOS: requests=%d failures=%d hedges=%d breaker_trips=%d unmeasured=%d front_identical=%v\n",
		totalReq, totalFail, totalHedge, totalTrips, final.Unmeasured, coord.front(t, st.ID) == refFront)
	if totalFail == 0 {
		t.Error("chaos injection produced zero observed failures; the scenario is not exercised")
	}
	coord.stop(t)
}
