// Command figures regenerates the paper's evaluation artifacts — Figures
// 1, 3a, 3b, 4, 5 and Table I — writing CSVs to -out and rendering ASCII
// previews to the terminal.
//
// Usage:
//
//	figures                 # everything at quick scale into results/
//	figures -only 3a,5      # a subset
//	figures -scale full     # paper-scale sample budgets (hours)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		scale = flag.String("scale", "quick", "experiment scale: test, quick or full")
		out   = flag.String("out", "results", "output directory for CSVs")
		only  = flag.String("only", "", "comma-separated subset of 1,3a,3b,4,5,t1 (default all)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"1", "3a", "3b", "4", "5", "t1"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	opts := experiments.Options{
		Scale:  experiments.Scale(*scale),
		OutDir: *out,
		Seed:   *seed,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
		// Share evaluation memo-caches across the generators, so e.g.
		// running figure 5 without figure 3a does not re-measure the
		// ODROID exploration from scratch.
		Caches: map[string]*core.EvalCache{},
	}

	start := time.Now()
	var fig3a *experiments.DSEResult
	var fig4 *experiments.DSEResult

	if want["1"] {
		step("Figure 1 — KFusion response surface")
		res, err := experiments.Fig1(opts)
		exitOn(err)
		res.Render(os.Stdout)
	}
	if want["3a"] || want["5"] {
		step("Figure 3a — KFusion DSE on ODROID-XU3")
		var err error
		fig3a, err = experiments.Fig3(opts, "ODROID-XU3")
		exitOn(err)
		fig3a.Render(os.Stdout)
	}
	if want["3b"] {
		step("Figure 3b — KFusion DSE on ASUS T200TA")
		res, err := experiments.Fig3(opts, "ASUS-T200TA")
		exitOn(err)
		res.Render(os.Stdout)
	}
	if want["4"] || want["t1"] {
		step("Figure 4 — ElasticFusion DSE on GTX 780 Ti")
		var err error
		fig4, err = experiments.Fig4(opts)
		exitOn(err)
		fig4.Render(os.Stdout)
	}
	if want["5"] {
		step("Figure 5 — crowd-sourcing across 83 market devices")
		res, err := experiments.Fig5(opts, fig3a)
		exitOn(err)
		res.Render(os.Stdout)
	}
	if want["t1"] {
		step("Table I — ElasticFusion Pareto points")
		res, err := experiments.Table1(opts, fig4)
		exitOn(err)
		res.Render(os.Stdout)
	}
	fmt.Printf("\nall done in %s; CSVs in %s/\n", time.Since(start).Round(time.Second), *out)
}

func step(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}
