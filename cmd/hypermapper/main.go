// Command hypermapper runs the full multi-objective design-space
// exploration of the paper (Algorithm 1) on one benchmark × platform and
// reports the Pareto front.
//
// Usage:
//
//	hypermapper -benchmark kfusion -platform ODROID-XU3 -random 120 -iterations 3
//	hypermapper -benchmark elasticfusion -platform GTX-780Ti -power -out results/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forest"
	"repro/internal/journal"
	"repro/internal/pareto"
	"repro/internal/plot"
	"repro/internal/slambench"
)

func main() {
	var (
		benchName  = flag.String("benchmark", "kfusion", "benchmark: kfusion or elasticfusion")
		platform   = flag.String("platform", "ODROID-XU3", "platform model")
		scale      = flag.String("dataset", "full", "dataset scale: full or test")
		randomN    = flag.Int("random", 120, "random bootstrap samples (rs of Algorithm 1)")
		iterations = flag.Int("iterations", 3, "active learning iterations")
		batch      = flag.Int("batch", 100, "max evaluations per AL iteration")
		pool       = flag.Int("pool", 60000, "prediction pool cap")
		trees      = flag.Int("trees", 24, "trees per objective forest")
		seed       = flag.Int64("seed", 1, "random seed")
		power      = flag.Bool("power", false, "add power as a third objective")
		out        = flag.String("out", "", "directory for CSV outputs")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	// Install the interrupt handler before the (potentially slow) dataset
	// and benchmark construction so Ctrl-C cancels cooperatively from the
	// very start instead of killing the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bench slambench.Benchmark
	switch *benchName {
	case "kfusion":
		bench = slambench.NewKFusionBench(slambench.CachedDataset(*scale))
	case "elasticfusion":
		bench = slambench.NewElasticFusionBench(slambench.CachedDataset(*scale))
	default:
		fatalf("unknown benchmark %q", *benchName)
	}
	dev, ok := device.ByName(*platform)
	if !ok {
		fatalf("unknown platform %q", *platform)
	}

	objs := slambench.RuntimeAccuracy
	if *power {
		objs = slambench.RuntimeAccuracyPower
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	logf("exploring %s (%d configurations) on %s", bench.Name(), bench.Space().Size(), dev)

	// Ctrl-C cancels the exploration cooperatively: the engine stops at the
	// next phase boundary and we still report the partial front.
	res, err := core.RunContext(ctx, bench.Space(), slambench.Evaluator(bench, dev, objs), core.Options{
		Objectives:    objs.Count(),
		RandomSamples: *randomN,
		MaxIterations: *iterations,
		MaxBatch:      *batch,
		PoolCap:       *pool,
		Forest:        forest.Options{Trees: *trees},
		Seed:          *seed,
		Logf:          logf,
	})
	// Release the signal handler: a second Ctrl-C during the reporting
	// phase should kill the process, not be swallowed.
	stop()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hypermapper: interrupted — reporting partial results")
	} else if err != nil {
		fatalf("%v", err)
	}

	nAL := len(res.ActiveSamples())
	fmt.Printf("\nsamples: %d (%d random + %d active learning), front: %d points, converged: %v\n",
		len(res.Samples), len(res.Samples)-nAL, nAL, len(res.Front), res.Converged)
	for _, it := range res.Iterations {
		fmt.Printf("  iteration %d: predicted front %d, new samples %d, measured front %d\n",
			it.Iteration, it.PredictedFrontSize, it.NewSamples, it.FrontSize)
	}

	if objs == slambench.RuntimeAccuracy {
		renderFront(bench, res)
	}

	fmt.Println("\npareto front (sorted by runtime):")
	for _, s := range core.FrontSamples(res) {
		fmt.Printf("  %8.4fs/frame  ATE %.4fm   %s\n",
			s.Objs[0], s.Objs[1], bench.Space().FormatConfig(s.Config))
	}
	if best, ok := pareto.BestUnderConstraint(res.Front, 0, 1, slambench.AccuracyLimit); ok {
		fmt.Printf("\nbest valid (ATE < %.2gm): %.4fs/frame (%.1f FPS)\n",
			slambench.AccuracyLimit, best.Objs[0], 1/best.Objs[0])
	}

	// Feature importance of the final forests: which parameters drive each
	// metric (the paper's §IV-C correlation analysis, via the model).
	if len(res.Forests) > 0 {
		objNames := []string{"runtime", "accuracy", "power"}
		fmt.Println("\nparameter importance per objective (impurity decrease):")
		names := bench.Space().Names()
		for k, f := range res.Forests {
			fmt.Printf("  %-9s", objNames[k])
			imp := f.FeatureImportance()
			for i, name := range names {
				fmt.Printf(" %s=%.2f", name, imp[i])
			}
			fmt.Println()
		}
	}

	if *out != "" {
		if err := writeCSV(*out, bench, res); err != nil {
			fatalf("writing results: %v", err)
		}
		fmt.Printf("results written to %s\n", *out)
	}
}

func renderFront(bench slambench.Benchmark, res *core.Result) {
	var rx, ry, ax, ay []float64
	for _, s := range res.Samples {
		if s.Objs[1] > 2*slambench.AccuracyLimit {
			continue
		}
		if s.ActiveLearning {
			ax = append(ax, s.Objs[0])
			ay = append(ay, s.Objs[1])
		} else {
			rx = append(rx, s.Objs[0])
			ry = append(ry, s.Objs[1])
		}
	}
	plot.Scatter(os.Stdout, "exploration ("+bench.Name()+")", []plot.Series{
		{Name: "random", Marker: 'r', X: rx, Y: ry},
		{Name: "active learning", Marker: 'a', X: ax, Y: ay},
	}, 68, 18, "runtime (s/frame)", "ATE (m)")
}

func writeCSV(dir string, bench slambench.Benchmark, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return journal.WriteFileAtomic(filepath.Join(dir, bench.Name()+"_samples.csv"), func(f io.Writer) error {
		names := strings.Join(bench.Space().Names(), ",")
		fmt.Fprintf(f, "index,phase,%s,objectives...\n", names)
		for _, s := range res.Samples {
			phase := "random"
			if s.ActiveLearning {
				phase = "al"
			}
			vals := make([]string, 0, len(s.Config)+len(s.Objs))
			for _, v := range s.Config {
				vals = append(vals, fmt.Sprintf("%g", v))
			}
			for _, v := range s.Objs {
				vals = append(vals, fmt.Sprintf("%g", v))
			}
			if _, err := fmt.Fprintf(f, "%d,%s,%s\n", s.Index, phase, strings.Join(vals, ",")); err != nil {
				return err
			}
		}
		return nil
	})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hypermapper: "+format+"\n", args...)
	os.Exit(1)
}
