// Command render writes depth and intensity previews of the synthetic
// dataset as PGM images, for visual inspection of the simulated sensor.
//
// Usage:
//
//	render -trajectory lr-kt2 -frames 5 -out previews/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/imgproc"
	"repro/internal/journal"
	"repro/internal/sensor"
)

func main() {
	var (
		traj   = flag.String("trajectory", "lr-kt2", "sequence: lr-kt0, lr-kt1, lr-kt2, lr-kt3")
		frames = flag.Int("frames", 3, "number of frames to render")
		width  = flag.Int("width", 320, "image width")
		height = flag.Int("height", 240, "image height")
		noise  = flag.Float64("noise", 1, "Kinect noise amplification (0 = clean)")
		out    = flag.String("out", "previews", "output directory")
	)
	flag.Parse()

	gen, ok := sensor.Trajectories()[*traj]
	if !ok {
		fmt.Fprintf(os.Stderr, "render: unknown trajectory %q\n", *traj)
		os.Exit(1)
	}
	nm := sensor.KinectNoise(*noise)
	if *noise == 0 {
		nm = sensor.NoiseModel{MaxRange: 4.5, Seed: 1}
	}
	ds := sensor.Generate(sensor.Options{
		Width: *width, Height: *height, Frames: *frames,
		Noise:      nm,
		Trajectory: sensor.TrajectorySlice(gen, 100),
		Name:       *traj,
	})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "render: %v\n", err)
		os.Exit(1)
	}
	for i, f := range ds.Frames {
		dp := filepath.Join(*out, fmt.Sprintf("%s_%03d_depth.pgm", *traj, i))
		ip := filepath.Join(*out, fmt.Sprintf("%s_%03d_intensity.pgm", *traj, i))
		if err := writePGM(dp, f.Depth, 4.5); err != nil {
			fmt.Fprintf(os.Stderr, "render: %v\n", err)
			os.Exit(1)
		}
		if err := writePGM(ip, f.Intensity, 1.0); err != nil {
			fmt.Fprintf(os.Stderr, "render: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("frame %d -> %s, %s\n", i, dp, ip)
	}
}

// writePGM encodes a float map as an 8-bit binary PGM, scaling [0, max] to
// [0, 255]. Invalid (zero) pixels render black. The write is atomic, so an
// interrupted render never leaves a truncated frame for tooling to choke on.
func writePGM(path string, m *imgproc.Map, max float32) error {
	return journal.WriteFileAtomic(path, func(f io.Writer) error {
		if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", m.W, m.H); err != nil {
			return err
		}
		buf := make([]byte, len(m.Pix))
		for i, v := range m.Pix {
			if v <= 0 {
				continue
			}
			s := v / max * 255
			if s > 255 {
				s = 255
			}
			buf[i] = byte(s)
		}
		_, err := f.Write(buf)
		return err
	})
}
