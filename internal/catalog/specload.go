package catalog

import (
	"fmt"

	"repro/internal/spec"
	"repro/internal/worker"
)

// FromSpec materializes a declarative problem spec into a registrable
// Problem: the space is built with its constraints compiled in, and the
// evaluator binding resolves to a builtin model, an exec bridge, or an
// HTTP bridge (internal/worker). Exec and HTTP evaluators are constructed
// lazily enough to be safe here — no subprocess is started and no request
// is sent until the first evaluation. Bridge failure reports go to the
// process-global logger; use FromSpecLogf to route or silence them.
func FromSpec(sp *spec.Spec) (Problem, error) {
	return fromSpec(sp, nil, false)
}

// FromSpecLogf is FromSpec with the bridge evaluators' failure log routed
// to logf — nil silences it, which is what a daemon's -validate pass or
// -quiet mode wants instead of bridge chatter on stderr. Builtin
// evaluators have no bridge log and are unaffected.
func FromSpecLogf(sp *spec.Spec, logf func(format string, args ...any)) (Problem, error) {
	return fromSpec(sp, logf, true)
}

func fromSpec(sp *spec.Spec, logf func(format string, args ...any), routeLog bool) (Problem, error) {
	if err := sp.Validate(); err != nil {
		return Problem{}, err
	}
	space, err := sp.Space()
	if err != nil {
		return Problem{}, err
	}
	binding, err := spec.ParseBinding(sp.Evaluator)
	if err != nil {
		return Problem{}, fmt.Errorf("spec %q: %w", sp.Name, err)
	}
	p := Problem{
		Name:        sp.Name,
		Description: sp.Description,
		Space:       space,
		Objectives:  append([]string(nil), sp.Objectives...),
	}
	switch binding.Kind {
	case "builtin":
		ctor, ok := models[binding.Target]
		if !ok {
			return Problem{}, fmt.Errorf("spec %q: no builtin model %q (have %v)",
				sp.Name, binding.Target, BuiltinModels())
		}
		p.Eval, err = ctor(space, sp.Objectives)
		if err != nil {
			return Problem{}, fmt.Errorf("spec %q: %w", sp.Name, err)
		}
	case "exec":
		ex, err := worker.NewExecEvaluator(binding.Target, space, len(sp.Objectives))
		if err != nil {
			return Problem{}, fmt.Errorf("spec %q: %w", sp.Name, err)
		}
		if routeLog {
			ex.SetLogf(logf)
		}
		p.Eval = ex
	case "http":
		he := worker.NewHTTPEvaluator(binding.Target, space, len(sp.Objectives))
		if routeLog {
			he.SetLogf(logf)
		}
		p.Eval = he
	default:
		return Problem{}, fmt.Errorf("spec %q: unknown binding kind %q", sp.Name, binding.Kind)
	}
	return p, nil
}

// FromSpecData parses raw spec JSON and materializes it — the loader shape
// both daemons plug into their POST /problems endpoints.
func FromSpecData(data []byte) (Problem, error) {
	sp, err := spec.Parse(data)
	if err != nil {
		return Problem{}, err
	}
	return FromSpec(sp)
}

// FromSpecDataLogf is FromSpecData with the bridge log routed to logf (nil
// silences it), mirroring FromSpecLogf.
func FromSpecDataLogf(data []byte, logf func(format string, args ...any)) (Problem, error) {
	sp, err := spec.Parse(data)
	if err != nil {
		return Problem{}, err
	}
	return FromSpecLogf(sp, logf)
}

// AddSpec materializes and registers one spec, with the registry's bridge
// logger applied (see SetLogf).
func (r *Registry) AddSpec(sp *spec.Spec) error {
	logf, routeLog := r.bridgeLogf()
	p, err := fromSpec(sp, logf, routeLog)
	if err != nil {
		return err
	}
	return r.Register(p)
}

// AddSpecData parses, materializes, and registers raw spec JSON, with the
// registry's bridge logger applied (see SetLogf).
func (r *Registry) AddSpecData(data []byte) error {
	sp, err := spec.Parse(data)
	if err != nil {
		return err
	}
	return r.AddSpec(sp)
}

// LoadDir registers every *.json spec in dir (sorted by name; later files
// win name collisions) and reports how many were loaded.
func (r *Registry) LoadDir(dir string) (int, error) {
	specs, err := spec.LoadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, sp := range specs {
		if err := r.AddSpec(sp); err != nil {
			return 0, err
		}
	}
	return len(specs), nil
}
