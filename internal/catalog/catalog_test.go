package catalog

import (
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Synthetic()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Problem{Name: ""}); err == nil {
		t.Fatal("registered a nameless problem")
	}
	if err := r.Register(Problem{Name: "x"}); err == nil {
		t.Fatal("registered a problem without a space")
	}
	p, ok := r.Get("synthetic")
	if !ok || p.Name != "synthetic" {
		t.Fatalf("Get = %+v, %v", p, ok)
	}

	// Later registration wins — a spec can override a builtin.
	override := Synthetic()
	override.Description = "replaced"
	if err := r.Register(override); err != nil {
		t.Fatal(err)
	}
	if p, _ := r.Get("synthetic"); p.Description != "replaced" {
		t.Fatal("re-registration did not replace")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRegisterBuiltins(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterBuiltins("test", false); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, r.Len())
	for _, p := range r.Problems() {
		names = append(names, p.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Problems() not sorted: %v", names)
		}
	}
	if _, ok := r.Get("synthetic"); !ok {
		t.Fatalf("builtins missing synthetic: %v", names)
	}
	if _, ok := r.Get("kfusion/ODROID-XU3"); !ok {
		t.Fatalf("builtins missing kfusion/ODROID-XU3: %v", names)
	}
}

// specsDir points at the shipped catalogs relative to this package.
func specsDir() string { return filepath.Join("..", "..", "specs") }

func TestShippedSpecsLoadAndRegister(t *testing.T) {
	r := NewRegistry()
	n, err := r.LoadDir(specsDir())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d shipped specs, want 3", n)
	}
	for _, name := range []string{"compiler-flags", "dbms-knobs", "constrained-synthetic"} {
		p, ok := r.Get(name)
		if !ok {
			t.Fatalf("shipped spec %q did not register", name)
		}
		if p.Eval == nil || p.Space == nil || len(p.Objectives) != 2 {
			t.Fatalf("%q materialized incompletely: %+v", name, p)
		}
	}
}

func TestShippedSpecsRoundTripByteIdentical(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(specsDir(), "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("globbing shipped specs: %v (%d files)", err, len(paths))
	}
	for _, path := range paths {
		s, err := spec.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := spec.Parse(m1)
		if err != nil {
			t.Fatalf("%s: re-parsing marshaled spec: %v", path, err)
		}
		m2, err := s2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(m1) != string(m2) {
			t.Fatalf("%s: load→marshal→load is not byte-stable", path)
		}
	}
}

func TestConstrainedSyntheticSamplingStaysFeasible(t *testing.T) {
	s, err := spec.Load(filepath.Join(specsDir(), "constrained_synthetic.json"))
	if err != nil {
		t.Fatal(err)
	}
	space, err := s.Space()
	if err != nil {
		t.Fatal(err)
	}
	if !space.Constrained() {
		t.Fatal("constrained_synthetic lost its constraints")
	}
	feasible := space.FeasibleIndices()
	if frac := float64(len(feasible)) / float64(space.Size()); frac > 0.02 {
		t.Fatalf("feasible fraction %.3f — the spec is meant to be constraint-heavy", frac)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		for _, idx := range space.SampleIndices(rng, 100) {
			if !space.Feasible(space.AtIndex(idx)) {
				t.Fatalf("round %d sampled infeasible index %d", round, idx)
			}
		}
	}
}

func TestBuiltinModelsProduceFiniteObjectives(t *testing.T) {
	r := NewRegistry()
	if _, err := r.LoadDir(specsDir()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, p := range r.Problems() {
		for _, idx := range p.Space.SampleIndices(rng, 50) {
			objs := p.Eval.Evaluate(p.Space.AtIndex(idx))
			if len(objs) != len(p.Objectives) {
				t.Fatalf("%s: %d objectives, want %d", p.Name, len(objs), len(p.Objectives))
			}
			for j, v := range objs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: objective %d = %v at index %d", p.Name, j, v, idx)
				}
			}
		}
	}
}

func TestBuiltinModelsAreDeterministic(t *testing.T) {
	r := NewRegistry()
	if _, err := r.LoadDir(specsDir()); err != nil {
		t.Fatal(err)
	}
	p, _ := r.Get("dbms-knobs")
	cfg := p.Space.AtIndex(12345)
	a, b := p.Eval.Evaluate(cfg), p.Eval.Evaluate(cfg)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("model not deterministic: %v vs %v", a, b)
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	base := func() *spec.Spec {
		return &spec.Spec{
			Version:    spec.Version,
			Name:       "t",
			Parameters: []spec.ParamSpec{{Name: "x", Kind: "bool"}},
			Objectives: []string{"f"},
		}
	}

	s := base()
	s.Evaluator = "builtin:no-such-model"
	if _, err := FromSpec(s); err == nil || !strings.Contains(err.Error(), "no builtin model") {
		t.Fatalf("err = %v", err)
	}

	// A model bound to a space missing its parameters must fail at
	// materialization, not at first evaluation.
	s = base()
	s.Objectives = []string{"f0", "f1"}
	s.Evaluator = "builtin:dbms-model"
	if _, err := FromSpec(s); err == nil || !strings.Contains(err.Error(), "needs parameter") {
		t.Fatalf("err = %v", err)
	}

	// Wrong objective count for a fixed-output model.
	s = base()
	s.Evaluator = "builtin:constrained-model"
	if _, err := FromSpec(s); err == nil || !strings.Contains(err.Error(), "objectives") {
		t.Fatalf("err = %v", err)
	}
}

func TestFromSpecExecAndHTTPBindings(t *testing.T) {
	s := &spec.Spec{
		Version:    spec.Version,
		Name:       "bridge",
		Parameters: []spec.ParamSpec{{Name: "x", Kind: "ordinal", Values: []float64{1, 2}}},
		Objectives: []string{"f"},
		Evaluator:  "exec:/does/not/run --yet",
	}
	p, err := FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eval == nil {
		t.Fatal("exec binding produced no evaluator")
	}

	s.Evaluator = "http://localhost:1/eval"
	if p, err = FromSpec(s); err != nil || p.Eval == nil {
		t.Fatalf("http binding: %v", err)
	}
}

func TestFromSpecDataParses(t *testing.T) {
	doc := `{"version":1,"name":"d","parameters":[{"name":"x","kind":"bool"}],` +
		`"objectives":["f"],"evaluator":"http://h/e"}`
	p, err := FromSpecData([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "d" || p.Space.Dim() != 1 {
		t.Fatalf("materialized %+v", p)
	}
	if _, err := FromSpecData([]byte(`{`)); err == nil {
		t.Fatal("FromSpecData accepted malformed JSON")
	}
}

func TestBuiltinModelsListed(t *testing.T) {
	names := BuiltinModels()
	want := []string{"compiler-model", "constrained-model", "dbms-model"}
	if len(names) != len(want) {
		t.Fatalf("BuiltinModels = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BuiltinModels = %v, want %v", names, want)
		}
	}
}
