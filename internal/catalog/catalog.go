// Package catalog is the problem registry shared by the coordinator daemon
// (cmd/hypermapperd) and the worker daemon (cmd/hypermapper-worker):
// builtin problems register into it at startup and declarative spec files
// (internal/spec) load into it, either from a -problems directory or at
// runtime via POST /problems. Keeping registration in one place guarantees
// that a coordinator and its workers agree on problem names, spaces, and
// evaluator semantics — the worker protocol identifies evaluators by name
// only, so both sides must build them identically.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/param"
)

// Problem is one named optimization target, daemon-agnostic: hypermapperd
// maps it onto server.Problem, hypermapper-worker registers it as a
// worker.Problem.
type Problem struct {
	Name        string
	Description string
	Space       *param.Space
	Eval        core.Evaluator
	// Objectives names the evaluator's outputs, in order; its length is
	// the objective count.
	Objectives []string
}

// Registry is a named problem collection with deterministic iteration
// order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	problems map[string]Problem
	logf     func(format string, args ...any)
	logfSet  bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{problems: make(map[string]Problem)}
}

// SetLogf routes the failure log of every bridge evaluator materialized by
// this registry from now on (AddSpec, AddSpecData, LoadDir) to logf; nil
// silences them. Daemons call it once at startup so -quiet and -validate
// modes do not leak bridge chatter through the process-global logger.
// Already-registered problems are unaffected.
func (r *Registry) SetLogf(logf func(format string, args ...any)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.logf = logf
	r.logfSet = true
}

// bridgeLogf returns the configured bridge logger and whether SetLogf was
// ever called (false = keep the bridges' process-global default).
func (r *Registry) bridgeLogf() (func(format string, args ...any), bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.logf, r.logfSet
}

// Register validates and adds a problem, replacing any existing problem of
// the same name (later wins, so a spec file can override a builtin).
func (r *Registry) Register(p Problem) error {
	if p.Name == "" {
		return fmt.Errorf("catalog: problem with an empty name")
	}
	if p.Space == nil {
		return fmt.Errorf("catalog: problem %q has no space", p.Name)
	}
	if p.Eval == nil {
		return fmt.Errorf("catalog: problem %q has no evaluator", p.Name)
	}
	if len(p.Objectives) == 0 {
		return fmt.Errorf("catalog: problem %q has no objectives", p.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.problems[p.Name] = p
	return nil
}

// Get returns the named problem.
func (r *Registry) Get(name string) (Problem, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.problems[name]
	return p, ok
}

// Problems returns every registered problem, sorted by name.
func (r *Registry) Problems() []Problem {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Problem, 0, len(r.problems))
	for _, p := range r.problems {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered problems.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.problems)
}
