// Package catalog builds the standard problem set served by the
// coordinator daemon (cmd/hypermapperd) and the worker daemon
// (cmd/hypermapper-worker): one problem per benchmark × platform pair plus
// a cheap synthetic smoke-test space. Keeping the construction in one
// place guarantees that a coordinator and its workers agree on problem
// names, spaces, and evaluator semantics — the worker protocol identifies
// evaluators by name only, so both sides must build them identically.
package catalog

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/param"
	"repro/internal/slambench"
)

// Problem is one named optimization target, daemon-agnostic: hypermapperd
// maps it onto server.Problem, hypermapper-worker registers it as a
// worker.Problem.
type Problem struct {
	Name        string
	Description string
	Space       *param.Space
	Eval        core.Evaluator
	// Objectives names the evaluator's outputs, in order; its length is
	// the objective count.
	Objectives []string
}

// Problems returns the full standard set for the given dataset scale
// ("full", "dse", or "test"), with power as a third objective when
// requested: every benchmark × platform pair plus Synthetic.
func Problems(scale string, power bool) []Problem {
	objs, names := slambench.RuntimeAccuracy, []string{"runtime_s_per_frame", "accuracy_ate_m"}
	if power {
		objs, names = slambench.RuntimeAccuracyPower, append(names, "power_w")
	}
	ds := slambench.CachedDataset(scale)
	benches := []slambench.Benchmark{
		slambench.NewKFusionBench(ds),
		slambench.NewElasticFusionBench(ds),
	}
	var out []Problem
	for _, b := range benches {
		for _, dev := range device.Platforms() {
			out = append(out, Problem{
				Name:        b.Name() + "/" + dev.Name,
				Description: fmt.Sprintf("%s on %s (%s dataset)", b.Name(), dev.Name, scale),
				Space:       b.Space(),
				Eval:        slambench.Evaluator(b, dev, objs),
				Objectives:  names,
			})
		}
	}
	out = append(out, Synthetic())
	return out
}

// Synthetic is a dataset-free two-objective toy space, useful for
// exercising a deployment without paying for SLAM evaluations.
func Synthetic() Problem {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3),
	)
	eval := core.EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b, c := cfg[0], cfg[1], cfg[2]
		return []float64{
			a + 0.5*math.Sin(3*b) + 0.05*c + 1.5,
			b + 0.5*math.Cos(2*a) + 1.5,
		}
	})
	return Problem{
		Name:        "synthetic",
		Description: "dataset-free two-objective toy space for smoke tests",
		Space:       space,
		Eval:        eval,
		Objectives:  []string{"f0", "f1"},
	}
}
