package catalog

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/param"
	"repro/internal/slambench"
)

// RegisterBuiltins registers the standard problem set for the given dataset
// scale ("full", "dse", or "test"), with power as a third objective when
// requested: every benchmark × platform pair plus Synthetic.
func (r *Registry) RegisterBuiltins(scale string, power bool) error {
	for _, p := range Problems(scale, power) {
		if err := r.Register(p); err != nil {
			return err
		}
	}
	return nil
}

// Problems builds the standard builtin set. Most callers want a Registry
// (RegisterBuiltins); this constructor remains for tests and tools that
// need the raw slice.
func Problems(scale string, power bool) []Problem {
	objs, names := slambench.RuntimeAccuracy, []string{"runtime_s_per_frame", "accuracy_ate_m"}
	if power {
		objs, names = slambench.RuntimeAccuracyPower, append(names, "power_w")
	}
	ds := slambench.CachedDataset(scale)
	benches := []slambench.Benchmark{
		slambench.NewKFusionBench(ds),
		slambench.NewElasticFusionBench(ds),
	}
	var out []Problem
	for _, b := range benches {
		for _, dev := range device.Platforms() {
			out = append(out, Problem{
				Name:        b.Name() + "/" + dev.Name,
				Description: fmt.Sprintf("%s on %s (%s dataset)", b.Name(), dev.Name, scale),
				Space:       b.Space(),
				Eval:        slambench.Evaluator(b, dev, objs),
				Objectives:  names,
			})
		}
	}
	out = append(out, Synthetic())
	return out
}

// Synthetic is a dataset-free two-objective toy space, useful for
// exercising a deployment without paying for SLAM evaluations.
func Synthetic() Problem {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3),
	)
	eval := core.EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b, c := cfg[0], cfg[1], cfg[2]
		return []float64{
			a + 0.5*math.Sin(3*b) + 0.05*c + 1.5,
			b + 0.5*math.Cos(2*a) + 1.5,
		}
	})
	return Problem{
		Name:        "synthetic",
		Description: "dataset-free two-objective toy space for smoke tests",
		Space:       space,
		Eval:        eval,
		Objectives:  []string{"f0", "f1"},
	}
}

// ModelCtor builds a builtin evaluator model over a spec-declared space.
// The objectives slice is the spec's objective names; a model that computes
// a fixed-length vector must reject a spec declaring a different count.
type ModelCtor func(space *param.Space, objectives []string) (core.Evaluator, error)

// models are the builtin evaluator models a spec can bind with
// "builtin:<name>". They are deterministic analytic surrogates — cost
// models, not measurements — so spec-defined catalogs run (and reproduce
// byte-identically) anywhere.
var models = map[string]ModelCtor{
	"compiler-model":    compilerModel,
	"dbms-model":        dbmsModel,
	"constrained-model": constrainedModel,
}

// BuiltinModels lists the model names specs may bind, for error messages
// and docs.
func BuiltinModels() []string {
	out := make([]string, 0, len(models))
	for name := range models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup resolves the named parameters to config indices, failing on any
// name the space does not declare — a spec bound to a builtin model must
// provide exactly the dimensions the model reads.
func lookup(space *param.Space, names ...string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := space.IndexOfName(n)
		if j < 0 {
			return nil, fmt.Errorf("catalog: model needs parameter %q, spec does not declare it", n)
		}
		idx[i] = j
	}
	return idx, nil
}

func wantObjectives(objectives []string, n int) error {
	if len(objectives) != n {
		return fmt.Errorf("catalog: model computes %d objectives, spec declares %d", n, len(objectives))
	}
	return nil
}

// compilerModel is an analytic cost surrogate for a compiler-flag space:
// runtime improves with optimization, unrolling, vectorization, and
// inlining (with diminishing or reversing returns), while binary size pays
// for exactly those choices. Parameters: opt-level, unroll, unroll-factor,
// vectorize, inline-threshold, codegen-units, lto. Objectives: 2.
func compilerModel(space *param.Space, objectives []string) (core.Evaluator, error) {
	if err := wantObjectives(objectives, 2); err != nil {
		return nil, err
	}
	idx, err := lookup(space, "opt-level", "unroll", "unroll-factor", "vectorize",
		"inline-threshold", "codegen-units", "lto")
	if err != nil {
		return nil, err
	}
	return core.EvaluatorFunc(func(cfg param.Config) []float64 {
		opt := cfg[idx[0]]
		unroll := cfg[idx[1]] * cfg[idx[2]]
		vec := cfg[idx[3]]
		inl := math.Log2(cfg[idx[4]])
		cgu := cfg[idx[5]]
		lto := cfg[idx[6]]
		runtime := 10.0 * math.Exp(-0.45*opt) *
			(1 - 0.06*math.Min(unroll, 4) + 0.01*math.Max(unroll-4, 0)) *
			(1 - 0.18*vec) * (1 - 0.02*(inl-4)) * (1 - 0.08*lto) *
			(1 + 0.015*cgu)
		size := 180 * (1 + 0.10*opt) * (1 + 0.03*unroll) * (1 + 0.05*vec) *
			(1 + 0.04*(inl-4)) * (1 - 0.10*lto)
		return []float64{runtime, size}
	}), nil
}

// dbmsModel is an analytic latency/memory surrogate for a DBMS knob space.
// Parameters: buffer-pool-mb, wal-buffer-mb, max-connections,
// checkpoint-interval-s, compression, async-commit, worker-threads.
// Objectives: 2.
func dbmsModel(space *param.Space, objectives []string) (core.Evaluator, error) {
	if err := wantObjectives(objectives, 2); err != nil {
		return nil, err
	}
	idx, err := lookup(space, "buffer-pool-mb", "wal-buffer-mb", "max-connections",
		"checkpoint-interval-s", "compression", "async-commit", "worker-threads")
	if err != nil {
		return nil, err
	}
	return core.EvaluatorFunc(func(cfg param.Config) []float64 {
		pool := cfg[idx[0]]
		wal := cfg[idx[1]]
		conns := cfg[idx[2]]
		ckpt := cfg[idx[3]]
		compress := cfg[idx[4]]
		async := cfg[idx[5]]
		threads := cfg[idx[6]]
		// Bigger caches cut misses; checkpoints and compression trade
		// latency for durability and space; threads help until contention.
		miss := 40 / math.Log2(pool)
		latency := 2.0 + miss + 80/wal + 300/ckpt +
			1.5*compress - 2.5*async +
			0.004*conns + 12/threads + 0.12*threads
		memory := pool + wal + 0.6*conns + 14*threads + (1-0.3*compress)*256
		return []float64{latency, memory}
	}), nil
}

// constrainedModel is the objective for the constraint-heavy synthetic
// space: a shifted sphere against a spread reward, interesting only on the
// feasible chain x0 < x1 < x2 < x3. Parameters: x0..x3, gate.
// Objectives: 2.
func constrainedModel(space *param.Space, objectives []string) (core.Evaluator, error) {
	if err := wantObjectives(objectives, 2); err != nil {
		return nil, err
	}
	idx, err := lookup(space, "x0", "x1", "x2", "x3", "gate")
	if err != nil {
		return nil, err
	}
	return core.EvaluatorFunc(func(cfg param.Config) []float64 {
		x0, x1, x2, x3 := cfg[idx[0]], cfg[idx[1]], cfg[idx[2]], cfg[idx[3]]
		gate := cfg[idx[4]]
		sphere := (x0-1)*(x0-1) + (x1-2)*(x1-2) + (x2-3)*(x2-3) + (x3-4)*(x3-4)
		spread := 16 - (x3-x0)*(x3-x0) + 0.5*gate
		return []float64{sphere, spread}
	}), nil
}
