package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestScatterRendersMarkers(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "title", []Series{
		{Name: "a", Marker: 'x', X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Name: "b", Marker: 'o', X: []float64{0.5}, Y: []float64{2}},
	}, 30, 10, "xs", "ys")
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "xs") || !strings.Contains(out, "ys") {
		t.Fatalf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "o") {
		t.Fatalf("missing markers:\n%s", out)
	}
	if !strings.Contains(out, "a (3 pts)") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestScatterEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "empty", nil, 20, 8, "x", "y")
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty scatter should say so")
	}
	buf.Reset()
	// Single point (degenerate ranges) must not panic or divide by zero.
	Scatter(&buf, "one", []Series{{Name: "s", Marker: '*', X: []float64{1}, Y: []float64{1}}}, 20, 8, "x", "y")
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not rendered")
	}
	buf.Reset()
	Scatter(&buf, "nan", []Series{{Name: "s", Marker: '*',
		X: []float64{math.NaN(), 1}, Y: []float64{1, math.Inf(1)}}}, 20, 8, "x", "y")
	// All points invalid -> no data.
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("NaN/Inf points should be skipped")
	}
}

func TestScatterMinimumSize(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "t", []Series{{Name: "s", Marker: '*', X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1, "x", "y")
	if len(strings.Split(buf.String(), "\n")) < 8 {
		t.Fatal("minimum dimensions not enforced")
	}
}

func TestBar(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "speedups", []string{"dev1", "dev2"}, []float64{2, 12}, 24)
	out := buf.String()
	if !strings.Contains(out, "dev1") || !strings.Contains(out, "dev2") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// dev2 bar must be longer than dev1 bar.
	lines := strings.Split(out, "\n")
	var l1, l2 int
	for _, l := range lines {
		if strings.Contains(l, "dev1") {
			l1 = strings.Count(l, "#")
		}
		if strings.Contains(l, "dev2") {
			l2 = strings.Count(l, "#")
		}
	}
	if l2 <= l1 {
		t.Fatalf("bar lengths wrong: %d vs %d", l1, l2)
	}
}

func TestBarNoData(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "t", nil, nil, 20)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty bar should say so")
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "h", 0, 10, []int{1, 5, 2}, 20)
	out := buf.String()
	if strings.Count(out, "|") != 3 {
		t.Fatalf("expected 3 buckets:\n%s", out)
	}
	buf.Reset()
	Histogram(&buf, "h", 0, 1, []int{0, 0}, 20)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("all-zero histogram should say so")
	}
}
