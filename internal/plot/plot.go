// Package plot renders small ASCII scatter and bar charts so the figure
// harness can show Pareto fronts and speedup distributions directly in the
// terminal (the CSV outputs carry the precise data).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one scatter series.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Scatter renders the series into an ASCII grid of the given size. Axis
// ranges are the union of all series (plus a small margin); NaN/Inf points
// are skipped.
func Scatter(w io.Writer, title string, series []Series, width, height int, xlabel, ylabel string) {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5% margins.
	xm := (xmax - xmin) * 0.05
	ym := (ymax - ymin) * 0.05
	xmin, xmax = xmin-xm, xmax+xm
	ymin, ymax = ymin-ym, ymax+ym

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			cx := int((x - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = s.Marker
			}
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %s\n", ylabel)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.4g", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.4g", ymin)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%9s+%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%9s%-*.4g%*.4g  (%s)\n", "", width/2, xmin, width-width/2, xmax, xlabel)
	for _, s := range series {
		fmt.Fprintf(w, "%9s%c = %s (%d pts)\n", "", s.Marker, s.Name, len(s.X))
	}
}

// Bar renders a horizontal bar chart of values with the given labels.
func Bar(w io.Writer, title string, labels []string, values []float64, width int) {
	if width < 10 {
		width = 10
	}
	max := 0.0
	for _, v := range values {
		if finite(v) && v > max {
			max = v
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if max <= 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if finite(v) {
			n = int(v / max * float64(width))
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(w, "  %-*s %8.2f |%s\n", labelW, label, v, strings.Repeat("#", n))
	}
}

// Histogram renders counts as a vertical profile with bucket ranges.
func Histogram(w io.Writer, title string, lo, hi float64, counts []int, width int) {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if max == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	step := (hi - lo) / float64(len(counts))
	for i, c := range counts {
		n := c * width / max
		fmt.Fprintf(w, "  [%6.2f, %6.2f) %4d |%s\n",
			lo+float64(i)*step, lo+float64(i+1)*step, c, strings.Repeat("#", n))
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
