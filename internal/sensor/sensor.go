// Package sensor synthesizes the RGB-D dataset the benchmarks run on: a
// pinhole depth+intensity camera flying a smooth ground-truth trajectory
// through the procedural living room, with a Kinect-style noise model
// (quadratic-in-depth Gaussian noise, disparity quantization, grazing-angle
// dropout). It is the stand-in for the ICL-NUIM living room trajectory 2
// sequence (see DESIGN.md §1).
package sensor

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/par"
	"repro/internal/scene"
)

// Frame is one synchronized depth + intensity capture.
type Frame struct {
	Depth     *imgproc.Map // meters; 0 = invalid
	Intensity *imgproc.Map // [0, 1]
}

// Dataset is a rendered sequence with ground-truth camera poses
// (camera-to-world).
type Dataset struct {
	Name        string
	Intrinsics  imgproc.Intrinsics
	Frames      []Frame
	GroundTruth []geom.Pose
	Scene       *scene.Scene
}

// NumFrames returns the sequence length.
func (d *Dataset) NumFrames() int { return len(d.Frames) }

// NoiseModel parameterizes the depth sensor error sources.
type NoiseModel struct {
	// Sigma0 is the depth-independent noise floor (meters).
	Sigma0 float64
	// Sigma2 scales the quadratic depth-noise term: σ(z) = Sigma0 + Sigma2·z².
	Sigma2 float64
	// DisparityStep quantizes inverse depth in steps of this size (1/m);
	// 0 disables quantization.
	DisparityStep float64
	// DropoutGrazing is the dropout probability at fully grazing incidence;
	// dropout scales with (1 − |n·v|).
	DropoutGrazing float64
	// MaxRange invalidates returns beyond this distance (meters).
	MaxRange float64
	// Seed drives the per-dataset noise stream.
	Seed int64
}

// KinectNoise returns the default noise model, scaled by amplify (1 = a
// plausible Kinect; the DSE calibration uses values slightly above 1 so the
// ATE response lands in the paper's 3–6 cm band).
func KinectNoise(amplify float64) NoiseModel {
	return NoiseModel{
		Sigma0:         0.0015 * amplify,
		Sigma2:         0.0019 * amplify,
		DisparityStep:  0.0006 * amplify,
		DropoutGrazing: 0.65,
		MaxRange:       4.5,
		Seed:           1,
	}
}

// Options configures dataset generation.
type Options struct {
	Width, Height int
	Frames        int
	Noise         NoiseModel
	// Trajectory selects the camera path; nil uses LivingRoomTrajectory2.
	Trajectory func(n int) []geom.Pose
	// Scene selects the world; nil uses scene.LivingRoom.
	Scene *scene.Scene
	Name  string
}

// LivingRoomTrajectory2 returns n camera-to-world poses of a smooth orbit
// through the living room: the camera circles the room center at varying
// radius and height while aiming at a slowly moving target, mimicking the
// hand-held sweep of the ICL-NUIM "lr kt2" sequence. Inter-frame motion is
// small (≈1–2 cm, <1°) so ICP-based trackers are well-conditioned.
func LivingRoomTrajectory2(n int) []geom.Pose {
	poses := make([]geom.Pose, n)
	for i := range poses {
		t := float64(i) / float64(max(n-1, 1)) // 0 … 1
		ang := 2 * math.Pi * (0.05 + 0.55*t)   // ~200° sweep
		radius := 1.05 + 0.25*math.Sin(2*math.Pi*t*1.3)
		height := 1.25 + 0.18*math.Sin(2*math.Pi*t*0.9+1.0)
		pos := geom.V3(radius*math.Cos(ang), height, radius*math.Sin(ang))
		target := geom.V3(
			0.45*math.Cos(ang+2.6),
			0.7+0.25*math.Sin(2*math.Pi*t*0.7),
			0.45*math.Sin(ang+2.6),
		)
		poses[i] = LookAt(pos, target, geom.V3(0, 1, 0))
	}
	return poses
}

// TrajectorySlice adapts a trajectory generator so that a short dataset of
// n frames covers only the first n poses of a nominal total-frame sequence,
// keeping per-frame motion realistic (tests use 20-frame datasets with the
// inter-frame motion of the full 100-frame sweep).
func TrajectorySlice(base func(int) []geom.Pose, total int) func(int) []geom.Pose {
	return func(n int) []geom.Pose {
		if n > total {
			total = n
		}
		return base(total)[:n]
	}
}

// LookAt builds a camera-to-world pose at eye looking toward target, using
// the camera convention x-right, y-down, z-forward.
func LookAt(eye, target, up geom.Vec3) geom.Pose {
	fwd := target.Sub(eye).Normalized()
	right := fwd.Cross(up).Normalized()
	if right.Norm() < 1e-9 {
		right = geom.V3(1, 0, 0)
	}
	down := fwd.Cross(right).Normalized()
	// Columns of R are the camera axes expressed in world coordinates.
	r := geom.Mat3{
		right.X, down.X, fwd.X,
		right.Y, down.Y, fwd.Y,
		right.Z, down.Z, fwd.Z,
	}
	return geom.Pose{R: r, T: eye}
}

// Generate renders the dataset described by opts.
func Generate(opts Options) *Dataset {
	if opts.Width <= 0 {
		opts.Width = 160
	}
	if opts.Height <= 0 {
		opts.Height = 120
	}
	if opts.Frames <= 0 {
		opts.Frames = 100
	}
	if opts.Scene == nil {
		opts.Scene = scene.LivingRoom()
	}
	if opts.Trajectory == nil {
		opts.Trajectory = LivingRoomTrajectory2
	}
	if opts.Name == "" {
		opts.Name = "synthetic-living-room-traj2"
	}

	intr := imgproc.StandardIntrinsics(opts.Width, opts.Height)
	gt := opts.Trajectory(opts.Frames)
	ds := &Dataset{
		Name:        opts.Name,
		Intrinsics:  intr,
		Frames:      make([]Frame, opts.Frames),
		GroundTruth: gt,
		Scene:       opts.Scene,
	}
	for i := 0; i < opts.Frames; i++ {
		// Per-frame deterministic noise stream (independent of render
		// parallelism: noise RNG is applied row-wise with row seeds).
		ds.Frames[i] = renderFrame(opts.Scene, intr, gt[i], opts.Noise, opts.Noise.Seed+int64(i)*7919)
	}
	return ds
}

// renderFrame sphere-traces one depth+intensity frame and applies the noise
// model.
func renderFrame(sc *scene.Scene, intr imgproc.Intrinsics, pose geom.Pose, nm NoiseModel, seed int64) Frame {
	depth := imgproc.NewMap(intr.W, intr.H)
	intensity := imgproc.NewMap(intr.W, intr.H)
	maxRange := nm.MaxRange
	if maxRange <= 0 {
		maxRange = 8
	}

	par.ForChunked(intr.H, func(loY, hiY int) {
		for y := loY; y < hiY; y++ {
			rng := rand.New(rand.NewSource(seed + int64(y)*104729))
			for x := 0; x < intr.W; x++ {
				dirCam := intr.Unproject(x, y)
				invZ := 1 / dirCam.Norm() // cos of the ray-to-axis angle
				dirWorld := pose.Rotate(dirCam).Normalized()

				hit, z, albedo, normal := trace(sc, pose.T, dirWorld, maxRange/invZ)
				if !hit {
					continue
				}
				// Convert ray length to projective depth (camera z).
				zDepth := z * invZ
				// Shading: headlight diffuse plus ambient.
				view := dirWorld.Scale(-1)
				diffuse := math.Max(normal.Dot(view), 0)
				intensity.Set(x, y, float32(clamp01(albedo*(0.25+0.75*diffuse))))

				// Noise model.
				zn := applyNoise(zDepth, normal, view, nm, rng)
				if zn <= 0 || zn > maxRange {
					continue
				}
				depth.Set(x, y, float32(zn))
			}
		}
	})
	return Frame{Depth: depth, Intensity: intensity}
}

// trace sphere-traces from origin along dir and returns the hit state, ray
// length, surface albedo and normal.
func trace(sc *scene.Scene, origin, dir geom.Vec3, tMax float64) (bool, float64, float64, geom.Vec3) {
	const eps = 1.5e-3
	t := 0.15
	for step := 0; step < 192 && t < tMax; step++ {
		p := origin.Add(dir.Scale(t))
		d, albedo := sc.DistAlbedo(p)
		if d < eps {
			return true, t, albedo, sc.Normal(p)
		}
		// Conservative advance: SDF unions are exact here, full step is safe.
		t += d
	}
	return false, 0, 0, geom.Vec3{}
}

func applyNoise(z float64, normal, view geom.Vec3, nm NoiseModel, rng *rand.Rand) float64 {
	// Grazing-incidence dropout.
	cosI := math.Abs(normal.Dot(view))
	if nm.DropoutGrazing > 0 {
		if rng.Float64() < nm.DropoutGrazing*math.Pow(1-cosI, 3) {
			return 0
		}
	}
	// Gaussian depth noise growing quadratically with distance.
	sigma := nm.Sigma0 + nm.Sigma2*z*z
	zn := z + rng.NormFloat64()*sigma
	// Disparity quantization.
	if nm.DisparityStep > 0 && zn > 0.05 {
		d := 1 / zn
		d = math.Round(d/nm.DisparityStep) * nm.DisparityStep
		if d > 1e-6 {
			zn = 1 / d
		}
	}
	return zn
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
