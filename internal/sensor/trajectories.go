package sensor

import (
	"math"

	"repro/internal/geom"
)

// Additional camera paths standing in for the other ICL-NUIM living-room
// trajectories (the paper's future work calls for "more SLAM input
// data-sets … providing more breadth in terms of trajectories"). Each
// keeps inter-frame motion in the ICP-friendly 1–3 cm band at n = 100.

// LivingRoomTrajectory0 is a gentle side-to-side sweep at near-constant
// height — the easiest sequence (small rotations, central viewpoints).
func LivingRoomTrajectory0(n int) []geom.Pose {
	poses := make([]geom.Pose, n)
	for i := range poses {
		t := float64(i) / float64(maxInt(n-1, 1))
		pos := geom.V3(
			-1.2+2.4*smoothstep(t),
			1.3+0.05*math.Sin(2*math.Pi*t),
			0.9,
		)
		target := geom.V3(0.3*math.Sin(2*math.Pi*t*0.5), 0.9, -0.6)
		poses[i] = LookAt(pos, target, geom.V3(0, 1, 0))
	}
	return poses
}

// LivingRoomTrajectory1 is a dolly-forward-and-turn path: the camera
// approaches the table then pans toward the sofa, stressing scale changes.
func LivingRoomTrajectory1(n int) []geom.Pose {
	poses := make([]geom.Pose, n)
	for i := range poses {
		t := float64(i) / float64(maxInt(n-1, 1))
		pos := geom.V3(
			1.6-1.1*smoothstep(t),
			1.35-0.15*t,
			1.3-0.9*smoothstep(t),
		)
		ang := -0.4 - 1.6*t
		target := geom.V3(pos.X+math.Cos(ang), 0.8, pos.Z+math.Sin(ang))
		poses[i] = LookAt(pos, target, geom.V3(0, 1, 0))
	}
	return poses
}

// LivingRoomTrajectory3 is a figure-eight with height oscillation — the
// hardest path: frequent direction reversals and grazing wall views.
func LivingRoomTrajectory3(n int) []geom.Pose {
	poses := make([]geom.Pose, n)
	for i := range poses {
		t := float64(i) / float64(maxInt(n-1, 1))
		u := 2 * math.Pi * t * 0.55
		pos := geom.V3(
			1.1*math.Sin(u),
			1.25+0.18*math.Sin(2*math.Pi*t*1.1+0.6),
			0.55*math.Sin(2*u),
		)
		// The aim point sits outside the figure-eight so heading changes
		// stay in the trackable band even at the crossings.
		target := geom.V3(
			1.3,
			0.85+0.15*math.Cos(2*math.Pi*t*0.6),
			-1.1,
		)
		poses[i] = LookAt(pos, target, geom.V3(0, 1, 0))
	}
	return poses
}

// Trajectories maps sequence names to their generators.
func Trajectories() map[string]func(int) []geom.Pose {
	return map[string]func(int) []geom.Pose{
		"lr-kt0": LivingRoomTrajectory0,
		"lr-kt1": LivingRoomTrajectory1,
		"lr-kt2": LivingRoomTrajectory2,
		"lr-kt3": LivingRoomTrajectory3,
	}
}

// smoothstep is the C¹ ease-in/ease-out ramp on [0, 1].
func smoothstep(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
