package sensor

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// smallDataset renders a tiny sequence once for the whole test file.
var smallDataset = Generate(Options{
	Width: 48, Height: 36, Frames: 8,
	Noise: KinectNoise(1),
})

func TestGenerateShape(t *testing.T) {
	ds := smallDataset
	if ds.NumFrames() != 8 {
		t.Fatalf("frames = %d", ds.NumFrames())
	}
	if len(ds.GroundTruth) != 8 {
		t.Fatalf("gt poses = %d", len(ds.GroundTruth))
	}
	if ds.Intrinsics.W != 48 || ds.Intrinsics.H != 36 {
		t.Fatal("intrinsics mismatch")
	}
	for i, f := range ds.Frames {
		if f.Depth.W != 48 || f.Depth.H != 36 || f.Intensity.W != 48 {
			t.Fatalf("frame %d wrong size", i)
		}
	}
}

func TestDepthPlausible(t *testing.T) {
	// Most pixels should see surfaces between 0.3m and 4.5m; the large
	// majority must be valid.
	f := smallDataset.Frames[0]
	valid, total := 0, 0
	for _, d := range f.Depth.Pix {
		total++
		if d > 0 {
			valid++
			if d < 0.15 || d > 4.6 {
				t.Fatalf("depth %v out of plausible range", d)
			}
		}
	}
	if float64(valid)/float64(total) < 0.7 {
		t.Fatalf("only %d/%d pixels valid", valid, total)
	}
}

func TestIntensityRange(t *testing.T) {
	for _, f := range smallDataset.Frames {
		for _, v := range f.Intensity.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("intensity %v out of [0,1]", v)
			}
		}
	}
}

func TestIntensityHasGradients(t *testing.T) {
	// The photometric tracker needs texture: intensity variance must be
	// clearly non-zero.
	f := smallDataset.Frames[0]
	mean := 0.0
	for _, v := range f.Intensity.Pix {
		mean += float64(v)
	}
	mean /= float64(len(f.Intensity.Pix))
	variance := 0.0
	for _, v := range f.Intensity.Pix {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= float64(len(f.Intensity.Pix))
	if variance < 1e-3 {
		t.Fatalf("intensity variance %v too low for photometric tracking", variance)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(Options{Width: 32, Height: 24, Frames: 2, Noise: KinectNoise(1)})
	b := Generate(Options{Width: 32, Height: 24, Frames: 2, Noise: KinectNoise(1)})
	for i := range a.Frames {
		for j := range a.Frames[i].Depth.Pix {
			if a.Frames[i].Depth.Pix[j] != b.Frames[i].Depth.Pix[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestNoiseIncreasesWithAmplify(t *testing.T) {
	clean := Generate(Options{Width: 32, Height: 24, Frames: 1,
		Noise: NoiseModel{MaxRange: 4.5, Seed: 1}}) // zero noise terms
	noisy := Generate(Options{Width: 32, Height: 24, Frames: 1, Noise: KinectNoise(3)})
	// Compare against clean depth: noisy must deviate more.
	dev := 0.0
	n := 0
	for i := range clean.Frames[0].Depth.Pix {
		c := clean.Frames[0].Depth.Pix[i]
		m := noisy.Frames[0].Depth.Pix[i]
		if c > 0 && m > 0 {
			dev += math.Abs(float64(c - m))
			n++
		}
	}
	if n == 0 {
		t.Fatal("no overlapping valid pixels")
	}
	if dev/float64(n) < 1e-4 {
		t.Fatalf("amplified noise deviation %v too small", dev/float64(n))
	}
}

func TestCleanDatasetNoiseFree(t *testing.T) {
	a := Generate(Options{Width: 32, Height: 24, Frames: 1,
		Noise: NoiseModel{MaxRange: 4.5, Seed: 1}})
	b := Generate(Options{Width: 32, Height: 24, Frames: 1,
		Noise: NoiseModel{MaxRange: 4.5, Seed: 99}}) // different seed, no noise
	for i := range a.Frames[0].Depth.Pix {
		if a.Frames[0].Depth.Pix[i] != b.Frames[0].Depth.Pix[i] {
			t.Fatal("zero noise model must be seed-independent")
		}
	}
}

func TestTrajectorySmoothness(t *testing.T) {
	poses := LivingRoomTrajectory2(100)
	for i := 1; i < len(poses); i++ {
		dt := geom.Distance(poses[i-1], poses[i])
		dr := geom.RotationAngle(poses[i-1], poses[i])
		if dt > 0.05 {
			t.Fatalf("frame %d translation step %v too large for ICP", i, dt)
		}
		if dr > 0.06 {
			t.Fatalf("frame %d rotation step %v rad too large", i, dr)
		}
	}
}

func TestTrajectoryInsideRoom(t *testing.T) {
	for _, p := range LivingRoomTrajectory2(60) {
		pos := p.Translation()
		if math.Abs(pos.X) > 2.3 || math.Abs(pos.Z) > 1.8 || pos.Y < 0.5 || pos.Y > 2.2 {
			t.Fatalf("camera leaves the safe region: %v", pos)
		}
	}
}

func TestLookAt(t *testing.T) {
	eye := geom.V3(0, 1, 0)
	target := geom.V3(0, 1, 2)
	p := LookAt(eye, target, geom.V3(0, 1, 0))
	// Camera z (forward) maps to world +z here.
	fwd := p.Rotate(geom.V3(0, 0, 1))
	if fwd.Sub(geom.V3(0, 0, 1)).Norm() > 1e-9 {
		t.Fatalf("forward = %v", fwd)
	}
	// R must be a rotation.
	if math.Abs(p.R.Det()-1) > 1e-9 {
		t.Fatalf("det = %v", p.R.Det())
	}
	if p.Translation() != eye {
		t.Fatal("translation must be the eye position")
	}
}

func TestDepthConsistentWithGroundTruth(t *testing.T) {
	// Unproject a valid noiseless depth pixel into world space: the scene
	// SDF there must be ≈ 0.
	ds := Generate(Options{Width: 48, Height: 36, Frames: 1,
		Noise: NoiseModel{MaxRange: 4.5, Seed: 1}})
	f := ds.Frames[0]
	pose := ds.GroundTruth[0]
	checked := 0
	for y := 4; y < 32 && checked < 30; y += 3 {
		for x := 4; x < 44 && checked < 30; x += 5 {
			d := float64(f.Depth.At(x, y))
			if d <= 0 {
				continue
			}
			pCam := ds.Intrinsics.Unproject(x, y).Scale(d)
			pWorld := pose.Apply(pCam)
			if sd := math.Abs(ds.Scene.Dist(pWorld)); sd > 0.02 {
				t.Fatalf("pixel (%d,%d): surface distance %v", x, y, sd)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatal("too few valid pixels checked")
	}
}

func TestDefaultOptions(t *testing.T) {
	ds := Generate(Options{Frames: 1, Noise: KinectNoise(1)})
	if ds.Intrinsics.W != 160 || ds.Intrinsics.H != 120 {
		t.Fatalf("default resolution = %dx%d", ds.Intrinsics.W, ds.Intrinsics.H)
	}
	if ds.Name == "" {
		t.Fatal("default name empty")
	}
}

func BenchmarkRenderFrame64x48(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(Options{Width: 64, Height: 48, Frames: 1, Noise: KinectNoise(1)})
	}
}
