package sensor

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/scene"
)

func TestAllTrajectoriesSmooth(t *testing.T) {
	for name, gen := range Trajectories() {
		poses := gen(100)
		if len(poses) != 100 {
			t.Fatalf("%s: %d poses", name, len(poses))
		}
		for i := 1; i < len(poses); i++ {
			if d := geom.Distance(poses[i-1], poses[i]); d > 0.06 {
				t.Fatalf("%s: frame %d translation step %.3f m too large", name, i, d)
			}
			if r := geom.RotationAngle(poses[i-1], poses[i]); r > 0.08 {
				t.Fatalf("%s: frame %d rotation step %.3f rad too large", name, i, r)
			}
		}
	}
}

func TestAllTrajectoriesStayInFreeSpace(t *testing.T) {
	room := scene.LivingRoom()
	for name, gen := range Trajectories() {
		for i, p := range gen(50) {
			pos := p.Translation()
			if d := room.Dist(pos); d < 0.05 {
				t.Fatalf("%s: frame %d camera at %v only %.3f m from geometry", name, i, pos, d)
			}
		}
	}
}

func TestAllTrajectoriesValidRotations(t *testing.T) {
	for name, gen := range Trajectories() {
		for i, p := range gen(20) {
			if math.Abs(p.R.Det()-1) > 1e-9 {
				t.Fatalf("%s: frame %d det(R) = %v", name, i, p.R.Det())
			}
		}
	}
}

func TestTrajectoriesAreDistinct(t *testing.T) {
	gens := Trajectories()
	p0 := gens["lr-kt0"](30)
	p3 := gens["lr-kt3"](30)
	diff := 0.0
	for i := range p0 {
		diff += geom.Distance(p0[i], p3[i])
	}
	if diff < 1 {
		t.Fatalf("trajectories nearly identical (total diff %.3f m)", diff)
	}
}

func TestSmoothstep(t *testing.T) {
	if smoothstep(-1) != 0 || smoothstep(2) != 1 {
		t.Fatal("clamping broken")
	}
	if smoothstep(0.5) != 0.5 {
		t.Fatalf("midpoint = %v", smoothstep(0.5))
	}
	if smoothstep(0.25) >= 0.25 {
		t.Fatal("ease-in should undershoot the line before the midpoint")
	}
}

// TestAlternateTrajectoryTracksEndToEnd: a short dataset on lr-kt1 must be
// trackable by KFusion-style pipelines (verified here at the sensor level:
// depth and texture coverage comparable to the main sequence).
func TestAlternateTrajectoryDatasets(t *testing.T) {
	for _, name := range []string{"lr-kt0", "lr-kt1", "lr-kt3"} {
		gen := Trajectories()[name]
		ds := Generate(Options{
			Width: 48, Height: 36, Frames: 4,
			Noise:      KinectNoise(1),
			Trajectory: TrajectorySlice(gen, 100),
			Name:       name,
		})
		valid := 0
		for _, d := range ds.Frames[0].Depth.Pix {
			if d > 0 {
				valid++
			}
		}
		if frac := float64(valid) / float64(len(ds.Frames[0].Depth.Pix)); frac < 0.6 {
			t.Fatalf("%s: only %.0f%% valid depth", name, frac*100)
		}
	}
}
