package geom

import "math"

// Quat is a unit quaternion w + xi + yj + zk representing a rotation.
type Quat struct{ W, X, Y, Z float64 }

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the quaternion rotating by angle (radians) about
// the given axis (need not be normalized).
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalized()
	s, c := math.Sin(angle/2), math.Cos(angle/2)
	return Quat{c, a.X * s, a.Y * s, a.Z * s}
}

// Mul returns the Hamilton product q·r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns |q|.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q/|q| (identity if |q| ≈ 0).
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n < 1e-15 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	p := Quat{0, v.X, v.Y, v.Z}
	r := q.Mul(p).Mul(q.Conj())
	return Vec3{r.X, r.Y, r.Z}
}

// Mat returns the rotation-matrix form of q (q must be unit).
func (q Quat) Mat() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// QuatFromMat converts a rotation matrix to a unit quaternion (Shepperd's
// method).
func QuatFromMat(m Mat3) Quat {
	tr := m.Trace()
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{s / 4, (m[7] - m[5]) / s, (m[2] - m[6]) / s, (m[3] - m[1]) / s}
	case m[0] > m[4] && m[0] > m[8]:
		s := math.Sqrt(1+m[0]-m[4]-m[8]) * 2
		q = Quat{(m[7] - m[5]) / s, s / 4, (m[1] + m[3]) / s, (m[2] + m[6]) / s}
	case m[4] > m[8]:
		s := math.Sqrt(1+m[4]-m[0]-m[8]) * 2
		q = Quat{(m[2] - m[6]) / s, (m[1] + m[3]) / s, s / 4, (m[5] + m[7]) / s}
	default:
		s := math.Sqrt(1+m[8]-m[0]-m[4]) * 2
		q = Quat{(m[3] - m[1]) / s, (m[2] + m[6]) / s, (m[5] + m[7]) / s, s / 4}
	}
	return q.Normalized()
}

// Slerp spherically interpolates between unit quaternions a and b for
// t ∈ [0, 1], taking the shorter arc.
func Slerp(a, b Quat, t float64) Quat {
	dot := a.W*b.W + a.X*b.X + a.Y*b.Y + a.Z*b.Z
	if dot < 0 {
		b = Quat{-b.W, -b.X, -b.Y, -b.Z}
		dot = -dot
	}
	if dot > 0.9995 {
		// Nearly parallel: linear interpolation avoids division by ~0.
		return Quat{
			a.W + t*(b.W-a.W),
			a.X + t*(b.X-a.X),
			a.Y + t*(b.Y-a.Y),
			a.Z + t*(b.Z-a.Z),
		}.Normalized()
	}
	theta := math.Acos(dot)
	sa := math.Sin((1 - t) * theta)
	sb := math.Sin(t * theta)
	s := math.Sin(theta)
	return Quat{
		(a.W*sa + b.W*sb) / s,
		(a.X*sa + b.X*sb) / s,
		(a.Y*sa + b.Y*sb) / s,
		(a.Z*sa + b.Z*sb) / s,
	}.Normalized()
}
