package geom

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system cannot be solved because the
// coefficient matrix is (numerically) singular.
var ErrSingular = errors.New("geom: singular system")

// Solve6 solves the symmetric positive-semidefinite 6×6 system A·x = b via
// Cholesky decomposition with a small diagonal damping term (Levenberg
// style) for robustness. a is row-major 6×6, b has length 6. It is the
// workhorse of the point-to-plane ICP and photometric Gauss-Newton steps.
func Solve6(a *[36]float64, b *[6]float64) ([6]float64, error) {
	const n = 6
	var l [36]float64
	// Scale damping with the largest diagonal entry so the regularization is
	// meaningful across kernels with very different residual magnitudes.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i*n+i]); d > maxDiag {
			maxDiag = d
		}
	}
	damp := 1e-9 * maxDiag
	if damp == 0 {
		return [6]float64{}, ErrSingular
	}

	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			if i == j {
				sum += damp
			}
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return [6]float64{}, ErrSingular
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}

	// Forward substitution: L·y = b.
	var y [6]float64
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ·x = y.
	var x [6]float64
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return [6]float64{}, ErrSingular
		}
	}
	return x, nil
}

// Solve3 solves the 3×3 system A·x = b by Gaussian elimination with partial
// pivoting (used by the SO(3)-only pre-alignment step).
func Solve3(a *[9]float64, b *[3]float64) ([3]float64, error) {
	var m [9]float64
	copy(m[:], a[:])
	var rhs [3]float64
	copy(rhs[:], b[:])

	for col := 0; col < 3; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r*3+col]) > math.Abs(m[piv*3+col]) {
				piv = r
			}
		}
		if math.Abs(m[piv*3+col]) < 1e-14 {
			return [3]float64{}, ErrSingular
		}
		if piv != col {
			for c := 0; c < 3; c++ {
				m[piv*3+c], m[col*3+c] = m[col*3+c], m[piv*3+c]
			}
			rhs[piv], rhs[col] = rhs[col], rhs[piv]
		}
		inv := 1 / m[col*3+col]
		for r := col + 1; r < 3; r++ {
			f := m[r*3+col] * inv
			for c := col; c < 3; c++ {
				m[r*3+c] -= f * m[col*3+c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	var x [3]float64
	for i := 2; i >= 0; i-- {
		sum := rhs[i]
		for c := i + 1; c < 3; c++ {
			sum -= m[i*3+c] * x[c]
		}
		x[i] = sum / m[i*3+i]
	}
	return x, nil
}
