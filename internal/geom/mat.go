package geom

import "math"

// Mat3 is a row-major 3×3 matrix.
type Mat3 [9]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// At returns the element at row r, column c.
func (m Mat3) At(r, c int) float64 { return m[3*r+c] }

// MulVec returns m · v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Mul returns m · n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*r+k] * n[3*k+c]
			}
			out[3*r+c] = s
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Scale returns s·m.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] * s
	}
	return out
}

// AddMat returns m + n.
func (m Mat3) AddMat(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] + n[i]
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Trace returns the trace of m.
func (m Mat3) Trace() float64 { return m[0] + m[4] + m[8] }

// Skew returns the skew-symmetric matrix [v]× such that [v]× w = v × w.
func Skew(v Vec3) Mat3 {
	return Mat3{
		0, -v.Z, v.Y,
		v.Z, 0, -v.X,
		-v.Y, v.X, 0,
	}
}

// RotX returns the rotation matrix about the X axis by angle a (radians).
func RotX(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{
		1, 0, 0,
		0, c, -s,
		0, s, c,
	}
}

// RotY returns the rotation matrix about the Y axis by angle a (radians).
func RotY(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{
		c, 0, s,
		0, 1, 0,
		-s, 0, c,
	}
}

// RotZ returns the rotation matrix about the Z axis by angle a (radians).
func RotZ(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{
		c, -s, 0,
		s, c, 0,
		0, 0, 1,
	}
}

// ExpSO3 returns the rotation matrix exp([w]×) via the Rodrigues formula.
func ExpSO3(w Vec3) Mat3 {
	theta := w.Norm()
	if theta < 1e-12 {
		// First-order expansion: I + [w]×.
		return Identity3().AddMat(Skew(w))
	}
	k := w.Scale(1 / theta)
	kx := Skew(k)
	s, c := math.Sin(theta), math.Cos(theta)
	return Identity3().
		AddMat(kx.Scale(s)).
		AddMat(kx.Mul(kx).Scale(1 - c))
}

// LogSO3 returns w such that ExpSO3(w) = R, for a valid rotation matrix R.
func LogSO3(r Mat3) Vec3 {
	cosTheta := (r.Trace() - 1) / 2
	if cosTheta > 1 {
		cosTheta = 1
	}
	if cosTheta < -1 {
		cosTheta = -1
	}
	theta := math.Acos(cosTheta)
	if theta < 1e-9 {
		// Near identity: w ≈ vee(R - Rᵀ)/2.
		return Vec3{
			(r[7] - r[5]) / 2,
			(r[2] - r[6]) / 2,
			(r[3] - r[1]) / 2,
		}
	}
	if math.Pi-theta < 1e-6 {
		// Near π: extract axis from R + I.
		b := r.AddMat(Identity3())
		axis := Vec3{b[0], b[3], b[6]}
		if axis.Norm() < 1e-9 {
			axis = Vec3{b[1], b[4], b[7]}
		}
		if axis.Norm() < 1e-9 {
			axis = Vec3{b[2], b[5], b[8]}
		}
		return axis.Normalized().Scale(theta)
	}
	f := theta / (2 * math.Sin(theta))
	return Vec3{
		(r[7] - r[5]) * f,
		(r[2] - r[6]) * f,
		(r[3] - r[1]) * f,
	}
}
