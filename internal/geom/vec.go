// Package geom provides the 3-D linear algebra used by the SLAM pipelines:
// vectors, 3×3 matrices, rigid-body SE(3) transforms, quaternions, the
// so(3)/se(3) exponential and logarithm maps, and the small dense solver for
// the 6×6 ICP normal equations.
package geom

import "math"

// Vec3 is a 3-component vector of float64.
type Vec3 struct{ X, Y, Z float64 }

// V3 is shorthand for Vec3{x, y, z}.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product a · b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a × b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Norm2 returns |a|².
func (a Vec3) Norm2() float64 { return a.Dot(a) }

// Normalized returns a/|a|, or the zero vector if |a| is (near) zero.
func (a Vec3) Normalized() Vec3 {
	n := a.Norm()
	if n < 1e-12 {
		return Vec3{}
	}
	return a.Scale(1 / n)
}

// Mul returns the component-wise product of a and b.
func (a Vec3) Mul(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Abs returns the component-wise absolute value of a.
func (a Vec3) Abs() Vec3 {
	return Vec3{math.Abs(a.X), math.Abs(a.Y), math.Abs(a.Z)}
}

// MaxComponent returns the largest component of a.
func (a Vec3) MaxComponent() float64 {
	return math.Max(a.X, math.Max(a.Y, a.Z))
}

// Lerp returns a + t*(b-a).
func Lerp(a, b Vec3, t float64) Vec3 { return a.Add(b.Sub(a).Scale(t)) }

// Clamp returns v with each component clamped into [lo, hi].
func Clamp(v Vec3, lo, hi float64) Vec3 {
	c := func(x float64) float64 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	return Vec3{c(v.X), c(v.Y), c(v.Z)}
}
