package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func vecAlmostEqual(a, b Vec3, eps float64) bool {
	return a.Sub(b).Norm() <= eps
}

func matAlmostEqual(a, b Mat3, eps float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func randVec(rng *rand.Rand, scale float64) Vec3 {
	return Vec3{
		(rng.Float64()*2 - 1) * scale,
		(rng.Float64()*2 - 1) * scale,
		(rng.Float64()*2 - 1) * scale,
	}
}

func randRot(rng *rand.Rand) Mat3 {
	return ExpSO3(randVec(rng, 2.5))
}

func TestVecBasics(t *testing.T) {
	a, b := V3(1, 2, 3), V3(4, 5, 6)
	if got := a.Add(b); got != V3(5, 7, 9) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != V3(3, 3, 3) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Cross(b); got != V3(-3, 6, -3) {
		t.Fatalf("Cross = %v", got)
	}
	if got := V3(3, 4, 0).Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
}

// boundedUnit maps an arbitrary float64 into [-1, 1] so property tests stay
// in a numerically sane range.
func boundedUnit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1.0)
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(boundedUnit(ax), boundedUnit(ay), boundedUnit(az))
		b := V3(boundedUnit(bx), boundedUnit(by), boundedUnit(bz))
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-9 && math.Abs(c.Dot(b)) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedZeroVector(t *testing.T) {
	if got := (Vec3{}).Normalized(); got != (Vec3{}) {
		t.Fatalf("Normalized(0) = %v", got)
	}
}

func TestClampAndLerp(t *testing.T) {
	if got := Clamp(V3(-2, 0.5, 3), 0, 1); got != V3(0, 0.5, 1) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := Lerp(V3(0, 0, 0), V3(2, 4, 6), 0.5); got != V3(1, 2, 3) {
		t.Fatalf("Lerp = %v", got)
	}
}

func TestMat3MulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randRot(rng)
	if !matAlmostEqual(m.Mul(Identity3()), m, tol) {
		t.Fatal("M·I != M")
	}
	if !matAlmostEqual(Identity3().Mul(m), m, tol) {
		t.Fatal("I·M != M")
	}
}

func TestRotationOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		r := randRot(rng)
		if !matAlmostEqual(r.Mul(r.Transpose()), Identity3(), 1e-9) {
			t.Fatalf("R·Rᵀ != I for %v", r)
		}
		if math.Abs(r.Det()-1) > 1e-9 {
			t.Fatalf("det(R) = %v", r.Det())
		}
	}
}

func TestSkewCrossEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		v, w := randVec(rng, 3), randVec(rng, 3)
		if !vecAlmostEqual(Skew(v).MulVec(w), v.Cross(w), tol) {
			t.Fatal("Skew(v)·w != v × w")
		}
	}
}

func TestExpLogSO3Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		w := randVec(rng, 3.0) // |w| < 3·√3 but LogSO3 returns principal value
		if w.Norm() > math.Pi-0.05 {
			w = w.Normalized().Scale(rng.Float64() * (math.Pi - 0.05))
		}
		r := ExpSO3(w)
		got := LogSO3(r)
		if !vecAlmostEqual(got, w, 1e-6) {
			t.Fatalf("LogSO3(ExpSO3(%v)) = %v", w, got)
		}
	}
}

func TestLogSO3Identity(t *testing.T) {
	if got := LogSO3(Identity3()); got.Norm() > tol {
		t.Fatalf("LogSO3(I) = %v", got)
	}
}

func TestLogSO3NearPi(t *testing.T) {
	w := V3(0, 0, math.Pi-1e-8)
	r := ExpSO3(w)
	got := LogSO3(r)
	if math.Abs(got.Norm()-w.Norm()) > 1e-5 {
		t.Fatalf("near-π log norm = %v, want %v", got.Norm(), w.Norm())
	}
}

func TestRotXYZ(t *testing.T) {
	if !vecAlmostEqual(RotZ(math.Pi/2).MulVec(V3(1, 0, 0)), V3(0, 1, 0), tol) {
		t.Fatal("RotZ(90°)·x != y")
	}
	if !vecAlmostEqual(RotX(math.Pi/2).MulVec(V3(0, 1, 0)), V3(0, 0, 1), tol) {
		t.Fatal("RotX(90°)·y != z")
	}
	if !vecAlmostEqual(RotY(math.Pi/2).MulVec(V3(0, 0, 1)), V3(1, 0, 0), tol) {
		t.Fatal("RotY(90°)·z != x")
	}
}

func TestPoseComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p := Pose{R: randRot(rng), T: randVec(rng, 5)}
		q := p.Mul(p.Inverse())
		if !matAlmostEqual(q.R, Identity3(), 1e-9) || q.T.Norm() > 1e-9 {
			t.Fatalf("P·P⁻¹ != I: %+v", q)
		}
	}
}

func TestPoseApplyComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a := Pose{R: randRot(rng), T: randVec(rng, 2)}
		b := Pose{R: randRot(rng), T: randVec(rng, 2)}
		p := randVec(rng, 4)
		if !vecAlmostEqual(a.Mul(b).Apply(p), a.Apply(b.Apply(p)), 1e-9) {
			t.Fatal("(a∘b)(p) != a(b(p))")
		}
	}
}

func TestExpLogSE3Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		v := randVec(rng, 2)
		w := randVec(rng, 2)
		if w.Norm() > math.Pi-0.05 {
			w = w.Normalized().Scale(rng.Float64() * (math.Pi - 0.05))
		}
		p := ExpSE3(v, w)
		gv, gw := LogSE3(p)
		if !vecAlmostEqual(gv, v, 1e-6) || !vecAlmostEqual(gw, w, 1e-6) {
			t.Fatalf("LogSE3(ExpSE3(%v,%v)) = (%v,%v)", v, w, gv, gw)
		}
	}
}

func TestExpSE3SmallAngle(t *testing.T) {
	p := ExpSE3(V3(1e-14, 0, 0), V3(0, 1e-14, 0))
	if !matAlmostEqual(p.R, Identity3(), 1e-10) {
		t.Fatal("tiny twist should be ≈ identity rotation")
	}
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := randRot(rng)
	// Perturb the rotation slightly.
	for i := range r {
		r[i] += 1e-4 * (rng.Float64() - 0.5)
	}
	p := Pose{R: r, T: V3(1, 2, 3)}.Orthonormalize()
	if !matAlmostEqual(p.R.Mul(p.R.Transpose()), Identity3(), 1e-12) {
		t.Fatal("orthonormalized R not orthogonal")
	}
	if math.Abs(p.R.Det()-1) > 1e-12 {
		t.Fatalf("det = %v", p.R.Det())
	}
}

func TestDistanceAndRotationAngle(t *testing.T) {
	a := IdentityPose()
	b := Pose{R: RotZ(0.5), T: V3(3, 4, 0)}
	if got := Distance(a, b); got != 5 {
		t.Fatalf("Distance = %v", got)
	}
	if got := RotationAngle(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("RotationAngle = %v", got)
	}
}

func TestQuatMatRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		r := randRot(rng)
		q := QuatFromMat(r)
		if !matAlmostEqual(q.Mat(), r, 1e-9) {
			t.Fatalf("Quat↔Mat roundtrip failed for %v", r)
		}
	}
}

func TestQuatRotateMatchesMat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		q := QuatFromAxisAngle(randVec(rng, 1), rng.Float64()*3)
		v := randVec(rng, 2)
		if !vecAlmostEqual(q.Rotate(v), q.Mat().MulVec(v), 1e-9) {
			t.Fatal("Quat.Rotate != Quat.Mat()·v")
		}
	}
}

func TestQuatNormPreserved(t *testing.T) {
	f := func(ax, ay, az, angle float64) bool {
		axis := V3(boundedUnit(ax), boundedUnit(ay), boundedUnit(az))
		q := QuatFromAxisAngle(axis, boundedUnit(angle)*math.Pi)
		return math.Abs(q.Norm()-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSlerpEndpoints(t *testing.T) {
	a := QuatFromAxisAngle(V3(0, 0, 1), 0.3)
	b := QuatFromAxisAngle(V3(0, 1, 0), 1.2)
	if got := Slerp(a, b, 0); !matAlmostEqual(got.Mat(), a.Mat(), 1e-9) {
		t.Fatal("Slerp(0) != a")
	}
	if got := Slerp(a, b, 1); !matAlmostEqual(got.Mat(), b.Mat(), 1e-9) {
		t.Fatal("Slerp(1) != b")
	}
}

func TestSlerpShortestArc(t *testing.T) {
	a := QuatFromAxisAngle(V3(0, 0, 1), 0.1)
	b := QuatFromAxisAngle(V3(0, 0, 1), 0.5)
	mid := Slerp(a, b, 0.5)
	want := QuatFromAxisAngle(V3(0, 0, 1), 0.3)
	if !matAlmostEqual(mid.Mat(), want.Mat(), 1e-9) {
		t.Fatal("Slerp midpoint wrong")
	}
}

func TestSolve6RecoversSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		// Build SPD A = JᵀJ from a random 12×6 Jacobian.
		var j [12][6]float64
		for r := range j {
			for c := range j[r] {
				j[r][c] = rng.NormFloat64()
			}
		}
		var a [36]float64
		for r := 0; r < 6; r++ {
			for c := 0; c < 6; c++ {
				s := 0.0
				for k := range j {
					s += j[k][r] * j[k][c]
				}
				a[r*6+c] = s
			}
		}
		var x [6]float64
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var b [6]float64
		for r := 0; r < 6; r++ {
			for c := 0; c < 6; c++ {
				b[r] += a[r*6+c] * x[c]
			}
		}
		got, err := Solve6(&a, &b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				t.Fatalf("Solve6: got %v want %v", got, x)
			}
		}
	}
}

func TestSolve6SingularDetected(t *testing.T) {
	var a [36]float64 // all zeros
	var b [6]float64
	b[0] = 1
	if _, err := Solve6(&a, &b); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolve3(t *testing.T) {
	a := [9]float64{2, 1, 0, 1, 3, 1, 0, 1, 2}
	want := [3]float64{1, -2, 3}
	var b [3]float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			b[r] += a[r*3+c] * want[c]
		}
	}
	got, err := Solve3(&a, &b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Solve3 = %v, want %v", got, want)
		}
	}
}

func TestSolve3Singular(t *testing.T) {
	a := [9]float64{1, 2, 3, 2, 4, 6, 0, 0, 1} // rank 2
	b := [3]float64{1, 2, 3}
	if _, err := Solve3(&a, &b); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient system")
	}
}

func BenchmarkExpSO3(b *testing.B) {
	w := V3(0.1, 0.2, 0.3)
	for i := 0; i < b.N; i++ {
		_ = ExpSO3(w)
	}
}

func BenchmarkSolve6(b *testing.B) {
	var a [36]float64
	for i := 0; i < 6; i++ {
		a[i*6+i] = 4
		if i > 0 {
			a[i*6+i-1] = 1
			a[(i-1)*6+i] = 1
		}
	}
	bb := [6]float64{1, 2, 3, 4, 5, 6}
	for i := 0; i < b.N; i++ {
		if _, err := Solve6(&a, &bb); err != nil {
			b.Fatal(err)
		}
	}
}
