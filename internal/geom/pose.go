package geom

import "math"

// Pose is a rigid-body transform in SE(3): p ↦ R·p + T.
// The zero value is not a valid pose; use IdentityPose.
type Pose struct {
	R Mat3
	T Vec3
}

// IdentityPose returns the identity transform.
func IdentityPose() Pose { return Pose{R: Identity3()} }

// Apply transforms point p by the pose.
func (a Pose) Apply(p Vec3) Vec3 { return a.R.MulVec(p).Add(a.T) }

// Rotate applies only the rotational part (for directions/normals).
func (a Pose) Rotate(v Vec3) Vec3 { return a.R.MulVec(v) }

// Mul returns the composition a ∘ b (apply b first, then a).
func (a Pose) Mul(b Pose) Pose {
	return Pose{
		R: a.R.Mul(b.R),
		T: a.R.MulVec(b.T).Add(a.T),
	}
}

// Inverse returns the inverse transform.
func (a Pose) Inverse() Pose {
	rt := a.R.Transpose()
	return Pose{R: rt, T: rt.MulVec(a.T).Scale(-1)}
}

// Translation returns the translation component (the camera position when
// the pose is camera-to-world).
func (a Pose) Translation() Vec3 { return a.T }

// ExpSE3 maps a twist ξ = (v, w) ∈ se(3) to a rigid transform. v is the
// translational velocity, w the rotational velocity (axis-angle).
func ExpSE3(v, w Vec3) Pose {
	theta := w.Norm()
	r := ExpSO3(w)
	if theta < 1e-12 {
		return Pose{R: r, T: v}
	}
	k := w.Scale(1 / theta)
	kx := Skew(k)
	s, c := math.Sin(theta), math.Cos(theta)
	// Left Jacobian of SO(3): V = I + ((1-cos θ)/θ) K + ((θ-sin θ)/θ) K².
	vmat := Identity3().
		AddMat(kx.Scale((1 - c) / theta)).
		AddMat(kx.Mul(kx).Scale((theta - s) / theta))
	return Pose{R: r, T: vmat.MulVec(v)}
}

// LogSE3 maps a rigid transform to its twist (v, w) such that
// ExpSE3(v, w) == p (up to numerical precision).
func LogSE3(p Pose) (v, w Vec3) {
	w = LogSO3(p.R)
	theta := w.Norm()
	if theta < 1e-12 {
		return p.T, w
	}
	k := w.Scale(1 / theta)
	kx := Skew(k)
	s, c := math.Sin(theta), math.Cos(theta)
	vmat := Identity3().
		AddMat(kx.Scale((1 - c) / theta)).
		AddMat(kx.Mul(kx).Scale((theta - s) / theta))
	vinv := invert3(vmat)
	return vinv.MulVec(p.T), w
}

// invert3 inverts a 3×3 matrix by cofactor expansion. It panics on singular
// input; the left Jacobian of SO(3) is always invertible for θ < 2π.
func invert3(m Mat3) Mat3 {
	det := m.Det()
	if math.Abs(det) < 1e-15 {
		panic("geom: singular 3×3 matrix")
	}
	inv := Mat3{
		m[4]*m[8] - m[5]*m[7], m[2]*m[7] - m[1]*m[8], m[1]*m[5] - m[2]*m[4],
		m[5]*m[6] - m[3]*m[8], m[0]*m[8] - m[2]*m[6], m[2]*m[3] - m[0]*m[5],
		m[3]*m[7] - m[4]*m[6], m[1]*m[6] - m[0]*m[7], m[0]*m[4] - m[1]*m[3],
	}
	return inv.Scale(1 / det)
}

// Distance returns the Euclidean distance between the translations of a and
// b — the trajectory-error building block.
func Distance(a, b Pose) float64 { return a.T.Sub(b.T).Norm() }

// RotationAngle returns the relative rotation angle between a and b in
// radians.
func RotationAngle(a, b Pose) float64 {
	return LogSO3(a.R.Transpose().Mul(b.R)).Norm()
}

// Orthonormalize re-projects the rotation part of p onto SO(3) using
// Gram-Schmidt; useful after long chains of composed increments.
func (a Pose) Orthonormalize() Pose {
	r0 := Vec3{a.R[0], a.R[1], a.R[2]}
	r1 := Vec3{a.R[3], a.R[4], a.R[5]}
	x := r0.Normalized()
	y := r1.Sub(x.Scale(x.Dot(r1))).Normalized()
	z := x.Cross(y)
	return Pose{
		R: Mat3{
			x.X, x.Y, x.Z,
			y.X, y.Y, y.Z,
			z.X, z.Y, z.Z,
		},
		T: a.T,
	}
}
