package elasticfusion

import (
	"errors"
	"math"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// ErrTrackingLost indicates the joint tracker could not estimate a pose.
var ErrTrackingLost = errors.New("elasticfusion: tracking lost")

// frameData bundles the per-level inputs of the tracker for one frame.
type frameData struct {
	depth     []*imgproc.Map
	intensity []*imgproc.Map
	vertex    []*imgproc.VecMap
	normal    []*imgproc.VecMap
	gradX     []*imgproc.Map
	gradY     []*imgproc.Map
	intr      []imgproc.Intrinsics
}

// buildFrameData constructs the pyramid (levels deep) for a frame and
// returns the pyramid operation count.
func buildFrameData(depth, intensity *imgproc.Map, intr imgproc.Intrinsics, levels int) (*frameData, int64) {
	fd := &frameData{
		depth:     make([]*imgproc.Map, levels),
		intensity: make([]*imgproc.Map, levels),
		vertex:    make([]*imgproc.VecMap, levels),
		normal:    make([]*imgproc.VecMap, levels),
		gradX:     make([]*imgproc.Map, levels),
		gradY:     make([]*imgproc.Map, levels),
		intr:      make([]imgproc.Intrinsics, levels),
	}
	var ops int64
	fd.depth[0] = depth
	fd.intensity[0] = intensity
	fd.intr[0] = intr
	for l := 1; l < levels; l++ {
		var o int64
		fd.depth[l], o = imgproc.HalfSampleDepth(fd.depth[l-1], 0.05)
		ops += o
		fd.intensity[l], o = imgproc.HalfSampleIntensity(fd.intensity[l-1])
		ops += o
		fd.intr[l] = fd.intr[l-1].Halved()
	}
	for l := 0; l < levels; l++ {
		fd.vertex[l] = imgproc.DepthToVertex(fd.depth[l], fd.intr[l])
		fd.normal[l] = imgproc.VertexToNormal(fd.vertex[l])
		fd.gradX[l], fd.gradY[l] = imgproc.Gradient(fd.intensity[l])
		ops += int64(fd.depth[l].W * fd.depth[l].H * 3)
	}
	return fd, ops
}

// so3PreAlign estimates a rotation-only increment aligning the previous
// intensity image to the current one at the coarsest pyramid level
// (ElasticFusion's SO(3) pre-alignment, used to bootstrap the joint
// optimization under fast rotation). It returns the rotation increment in
// the camera frame and the operation count.
func so3PreAlign(cur, prev *frameData) (geom.Mat3, int64) {
	l := len(cur.intensity) - 1
	ic, ip := cur.intensity[l], prev.intensity[l]
	gx, gy := cur.gradX[l], cur.gradY[l]
	intr := cur.intr[l]
	rot := geom.Identity3()
	var ops int64

	for iter := 0; iter < 5; iter++ {
		var h [9]float64
		var b [3]float64
		matches := 0
		for y := 1; y < ip.H-1; y++ {
			for x := 1; x < ip.W-1; x++ {
				ops++
				// Rotate the unit ray of the previous pixel and re-project.
				ray := rot.MulVec(intr.Unproject(x, y))
				if ray.Z <= 1e-6 {
					continue
				}
				u := ray.X/ray.Z*intr.Fx + intr.Cx
				v := ray.Y/ray.Z*intr.Fy + intr.Cy
				ivp, ok := imgproc.SampleBilinear(ic, u, v)
				if !ok {
					continue
				}
				r := float64(ivp - ip.At(x, y))
				gxv, _ := imgproc.SampleBilinear(gx, u, v)
				gyv, _ := imgproc.SampleBilinear(gy, u, v)
				// Jacobian of intensity wrt rotation (w) via the image
				// gradient and the projective derivative.
				z := ray.Z
				jx := float64(gxv) * intr.Fx
				jy := float64(gyv) * intr.Fy
				ju := geom.V3(jx/z, jy/z, -(jx*ray.X+jy*ray.Y)/(z*z))
				// rot ← exp(dw)·rot perturbs ray by dw×ray, so
				// ∇_dw r = (−[ray]×)ᵀ·ju = ray × ju.
				jw := ray.Cross(ju)
				j := [3]float64{jw.X, jw.Y, jw.Z}
				for a := 0; a < 3; a++ {
					b[a] -= j[a] * r
					for c := 0; c < 3; c++ {
						h[a*3+c] += j[a] * j[c]
					}
				}
				matches++
			}
		}
		if matches < 30 {
			break
		}
		x, err := geom.Solve3(&h, &b)
		if err != nil {
			break
		}
		dw := geom.V3(x[0], x[1], x[2])
		if dw.Norm() > 0.3 {
			break // diverging; keep what we have
		}
		rot = geom.ExpSO3(dw).Mul(rot)
		if dw.Norm() < 1e-4 {
			break
		}
	}
	return rot, ops
}

// jointTrack runs the combined geometric (point-to-plane ICP against the
// model prediction) and photometric (intensity against the reference image)
// Gauss-Newton pose estimation.
//
// icpWeight is the paper's "ICP/RGB weight": the relative weight of the
// geometric term. refIntensity/refVertexWorld supply the photometric
// reference (the model prediction, or the previous frame in frame-to-frame
// RGB mode): an intensity image with per-pixel world-space geometry, taken
// from refPose's viewpoint at full resolution. iterations is per level,
// finest first; levels lists which pyramid levels run (fast odometry uses
// only the finest).
func jointTrack(
	cur *frameData,
	model *renderMaps,
	refIntensity *imgproc.Map,
	refVertexWorld *imgproc.VecMap,
	refPose geom.Pose,
	refIntr imgproc.Intrinsics,
	initial geom.Pose,
	icpWeight float64,
	levels []int,
	iterations []int,
) (geom.Pose, int64, int64, error) {
	const (
		distThreshold   = 0.12
		normalThreshold = 0.7
	)
	pose := initial
	refInv := refPose.Inverse()
	var icpOps, rgbOps int64
	tracked := false

	for li := len(levels) - 1; li >= 0; li-- {
		l := levels[li]
		iters := iterations[li]
		vtx, nrm := cur.vertex[l], cur.normal[l]
		for it := 0; it < iters; it++ {
			var h [36]float64
			var b [6]float64
			icpMatches := 0
			valid := 0

			// --- Geometric term (point-to-plane vs model prediction) ---
			for y := 0; y < vtx.H; y++ {
				for x := 0; x < vtx.W; x++ {
					if !vtx.ValidAt(x, y) || !nrm.ValidAt(x, y) {
						continue
					}
					valid++
					icpOps++
					vWorld := pose.Apply(vtx.At(x, y))
					pRef := refInv.Apply(vWorld)
					u, vv, ok := refIntr.Project(pRef)
					if !ok {
						continue
					}
					if !model.vertex.ValidAt(u, vv) || !model.normal.ValidAt(u, vv) {
						continue
					}
					mV := model.vertex.At(u, vv)
					mN := model.normal.At(u, vv)
					diff := vWorld.Sub(mV)
					if diff.Norm() > distThreshold {
						continue
					}
					nW := pose.Rotate(nrm.At(x, y))
					if nW.Dot(mN) < normalThreshold {
						continue
					}
					icpMatches++
					r := mN.Dot(diff)
					jv := mN
					jw := vWorld.Cross(mN)
					j := [6]float64{jv.X, jv.Y, jv.Z, jw.X, jw.Y, jw.Z}
					for a := 0; a < 6; a++ {
						b[a] -= icpWeight * j[a] * r
						for c := a; c < 6; c++ {
							h[a*6+c] += icpWeight * j[a] * j[c]
						}
					}
				}
			}

			// --- Photometric term (reference intensity vs current) ---
			// Residuals are formed over the reference image: each reference
			// pixel with geometry is warped into the current frame.
			ic := cur.intensity[l]
			gx, gy := cur.gradX[l], cur.gradY[l]
			curIntr := cur.intr[l]
			curInv := pose.Inverse()
			step := 1 << l // reference is full-res; sample sparsely at coarse levels
			for y := 0; y < refVertexWorld.H; y += step {
				for x := 0; x < refVertexWorld.W; x += step {
					if !refVertexWorld.ValidAt(x, y) {
						continue
					}
					rgbOps++
					pWorld := refVertexWorld.At(x, y)
					pCur := curInv.Apply(pWorld)
					if pCur.Z <= 0.05 {
						continue
					}
					u := pCur.X/pCur.Z*curIntr.Fx + curIntr.Cx
					v := pCur.Y/pCur.Z*curIntr.Fy + curIntr.Cy
					icv, ok := imgproc.SampleBilinear(ic, u, v)
					if !ok {
						continue
					}
					r := float64(icv - refIntensity.At(x, y))
					if math.Abs(r) > 0.35 {
						continue // occlusion / gross outlier
					}
					gxv, _ := imgproc.SampleBilinear(gx, u, v)
					gyv, _ := imgproc.SampleBilinear(gy, u, v)
					jx := float64(gxv) * curIntr.Fx
					jy := float64(gyv) * curIntr.Fy
					z := pCur.Z
					// Gradient of the residual wrt pCur (camera frame).
					ju := geom.V3(jx/z, jy/z, -(jx*pCur.X+jy*pCur.Y)/(z*z))
					// pCur = Rᵀ(pWorld − t). Under pose ← Exp(ξ)·pose:
					// pCur ≈ pCur₀ − Rᵀ(v + w×pWorld), hence
					// ∇_v r = −R·ju and ∇_w r = (R·ju) × pWorld.
					juW := pose.R.MulVec(ju)
					jv := juW.Scale(-1)
					jw := juW.Cross(pWorld)
					j := [6]float64{jv.X, jv.Y, jv.Z, jw.X, jw.Y, jw.Z}
					for a := 0; a < 6; a++ {
						b[a] -= j[a] * r
						for c := a; c < 6; c++ {
							h[a*6+c] += j[a] * j[c]
						}
					}
				}
			}

			if valid == 0 || icpMatches < valid/10 {
				break
			}
			for a := 1; a < 6; a++ {
				for c := 0; c < a; c++ {
					h[a*6+c] = h[c*6+a]
				}
			}
			x, err := geom.Solve6(&h, &b)
			if err != nil {
				break
			}
			dv := geom.V3(x[0], x[1], x[2])
			dw := geom.V3(x[3], x[4], x[5])
			if dv.Norm() > 0.5 || dw.Norm() > 0.5 {
				break // implausible jump
			}
			pose = geom.ExpSE3(dv, dw).Mul(pose).Orthonormalize()
			tracked = true
			if dv.Norm()+dw.Norm() < 1e-6 {
				break
			}
		}
	}
	if !tracked {
		return initial, icpOps, rgbOps, ErrTrackingLost
	}
	return pose, icpOps, rgbOps, nil
}
