package elasticfusion

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/sensor"
)

// TestRunAllInvalidDepth: frames with no depth must not crash; tracking
// never succeeds and no map is built.
func TestRunAllInvalidDepth(t *testing.T) {
	ds := *testDataset
	ds.Frames = nil
	for range testDataset.Frames {
		ds.Frames = append(ds.Frames, sensor.Frame{
			Depth:     imgproc.NewMap(ds.Intrinsics.W, ds.Intrinsics.H),
			Intensity: imgproc.NewMap(ds.Intrinsics.W, ds.Intrinsics.H),
		})
	}
	res, err := Run(&ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TrackedFrames != 0 {
		t.Fatalf("tracked %d frames of nothing", res.Counters.TrackedFrames)
	}
	if res.Counters.SurfelsFinal != 0 {
		t.Fatalf("map built from invalid depth: %d surfels", res.Counters.SurfelsFinal)
	}
}

// TestRunTinyDepthCutoff: a cutoff below the nearest scene surface leaves
// no usable depth — tracking must degrade, not crash.
func TestRunTinyDepthCutoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DepthCutoff = 0.05
	res, err := Run(testDataset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SurfelsFinal > 100 {
		t.Fatalf("cutoff 5cm built %d surfels", res.Counters.SurfelsFinal)
	}
}

// TestSensorBlackoutRecovery: a few completely blank frames in the middle
// of the sequence (sensor dropout) must register as tracking failures, and
// the tracker must re-lock once data returns.
func TestSensorBlackoutRecovery(t *testing.T) {
	ds := *testDataset
	ds.Frames = append([]sensor.Frame(nil), testDataset.Frames...)
	for i := 14; i < 17; i++ {
		ds.Frames[i] = sensor.Frame{
			Depth:     imgproc.NewMap(ds.Intrinsics.W, ds.Intrinsics.H),
			Intensity: imgproc.NewMap(ds.Intrinsics.W, ds.Intrinsics.H),
		}
	}
	res, err := Run(&ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TrackFailures < 3 {
		t.Fatalf("blackout frames not detected: %d failures", res.Counters.TrackFailures)
	}
	// After the blackout the camera has moved only ~4 frames of motion;
	// the tracker must recover and finish with a sane trajectory.
	last := len(res.Trajectory) - 1
	if d := geom.Distance(res.Trajectory[last], ds.GroundTruth[last]); d > 0.25 {
		t.Fatalf("no recovery after blackout: final error %.3f m", d)
	}
}
