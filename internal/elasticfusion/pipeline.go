// Package elasticfusion implements a surfel-based dense SLAM system after
// ElasticFusion (Whelan et al., RSS 2015), the second benchmark of the
// paper: joint geometric+photometric tracking with optional SO(3)
// pre-alignment, surfel fusion with a confidence threshold, local loop
// closure against the inactive model, and randomized-fern relocalisation.
// All eight algorithmic parameters/flags of the paper's design space
// (§III-C, Table I) are exposed, and per-kernel work counters feed the
// device runtime models.
//
// Deviation from the original (documented in DESIGN.md): map deformation on
// loop closure is simplified to a rigid pose correction — the paper's DSE
// observes only trajectory error and runtime, which the simplification
// preserves.
package elasticfusion

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/sensor"
)

// Config holds the paper's ElasticFusion design space (§III-C): three
// continuous parameters and five flags.
type Config struct {
	// ICPWeight is the relative ICP/RGB tracking weight (Table I "ICP").
	ICPWeight float64
	// DepthCutoff discards raw depth beyond this distance in meters
	// (Table I "Depth").
	DepthCutoff float64
	// Confidence is the surfel confidence threshold gating which surfels
	// count as stable model (Table I "Confidence").
	Confidence float64
	// SO3 enables the rotational pre-alignment step (Table I "SO3";
	// the paper's flag *disables* it, the default has it on).
	SO3 bool
	// OpenLoop disables local loop closure (Table I "Close-Loops"
	// reports loop closures; open loop = no local loop closure code).
	OpenLoop bool
	// Reloc enables fern-based relocalisation after tracking loss.
	Reloc bool
	// FastOdom uses a single pyramid level for odometry.
	FastOdom bool
	// FrameToFrameRGB uses the previous frame instead of the model
	// prediction as the photometric reference.
	FrameToFrameRGB bool
}

// DefaultConfig returns the configuration the ElasticFusion authors ship
// (the paper's Table I "Default" row: ICP 10, depth 3, confidence 10,
// SO3 on, loop closure on, relocalisation on, fast odometry off, frame-to-
// frame RGB off).
func DefaultConfig() Config {
	return Config{
		ICPWeight:   10,
		DepthCutoff: 3,
		Confidence:  10,
		SO3:         true,
		OpenLoop:    false,
		Reloc:       true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ICPWeight < 0:
		return errors.New("elasticfusion: negative ICP weight")
	case c.DepthCutoff <= 0:
		return errors.New("elasticfusion: depth cutoff must be positive")
	case c.Confidence < 0:
		return errors.New("elasticfusion: negative confidence threshold")
	}
	return nil
}

// Counters accumulates per-kernel work for the runtime model.
type Counters struct {
	PreprocessOps  int64 // depth cutoff + bilateral
	PyramidOps     int64
	SO3Ops         int64
	ICPOps         int64
	RGBOps         int64
	RenderOps      int64 // surfel projections (model prediction)
	FuseOps        int64
	LoopOps        int64 // local loop closure ICP
	FernOps        int64
	Frames         int64
	TrackedFrames  int64
	TrackFailures  int64
	LoopClosures   int64
	Relocalization int64
	SurfelsFinal   int64
	SurfelsMerged  int64
	SurfelsAdded   int64
}

// Result is the output of one ElasticFusion run.
type Result struct {
	Trajectory []geom.Pose
	Counters   Counters
}

// internal pipeline constants (not part of the paper's space).
const (
	pyramidLevels  = 3
	unstableWindow = 25  // frames an unconfirmed surfel may live
	inactiveWindow = 40  // frames after which surfels count as inactive
	loopEvery      = 5   // local loop closure attempt period
	fernEvery      = 8   // fern keyframe period
	fernProbes     = 32  // probes per fern code
	fernReloc      = 0.3 // max dissimilarity for a relocalisation match
)

// Run executes the full pipeline over the dataset.
func Run(ds *sensor.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds == nil || ds.NumFrames() == 0 {
		return nil, errors.New("elasticfusion: empty dataset")
	}
	intr := ds.Intrinsics
	if intr.W < 16 || intr.H < 16 {
		return nil, fmt.Errorf("elasticfusion: image %dx%d too small", intr.W, intr.H)
	}

	res := &Result{Trajectory: make([]geom.Pose, ds.NumFrames())}
	c := &res.Counters
	smap := &SurfelMap{}
	ferns := newFernDB(fernProbes, 16, 12, 1)
	confTh := float32(cfg.Confidence)

	iterations := []int{10, 5, 4}
	levels := []int{0, 1, 2}
	if cfg.FastOdom {
		iterations = []int{10}
		levels = []int{0}
	}

	pose := ds.GroundTruth[0]
	var prev *frameData
	var prevPose geom.Pose
	var prevVertexWorld *imgproc.VecMap

	for i := 0; i < ds.NumFrames(); i++ {
		c.Frames++
		frame := int32(i)

		// --- Preprocessing: depth cutoff + light bilateral filter ---
		depth := ds.Frames[i].Depth.Clone()
		for pi, d := range depth.Pix {
			if float64(d) > cfg.DepthCutoff {
				depth.Pix[pi] = 0
			}
		}
		c.PreprocessOps += int64(len(depth.Pix))
		filtered, bops := imgproc.BilateralFilter(depth, 1, 1.0, 0.08)
		c.PreprocessOps += bops

		cur, pops := buildFrameData(filtered, ds.Frames[i].Intensity, intr, pyramidLevels)
		c.PyramidOps += pops

		if i == 0 {
			res.Trajectory[i] = pose
			bootstrapFrame(smap, cur, intr, pose, frame, confTh, c)
			code, fops := ferns.encode(filtered, ds.Frames[i].Intensity)
			c.FernOps += fops
			ferns.add(code, pose, frame)
			prev, prevPose = cur, pose
			prevVertexWorld = vertexToWorld(cur.vertex[0], pose)
			continue
		}

		// --- Model prediction from the previous pose ---
		// Stable surfels form the primary prediction; unstable-but-recent
		// surfels fill the holes (the confidence threshold still governs
		// which geometry dominates — low thresholds admit noisy surfels,
		// "creating a noisy map" as the paper puts it).
		stable := func(s *Surfel) bool {
			return s.Conf >= confTh && frame-s.LastSeen <= inactiveWindow
		}
		unstableRecent := func(s *Surfel) bool {
			return s.Conf < confTh && frame-s.LastSeen <= 2
		}
		model, rops := smap.RenderWithFallback(intr, prevPose, stable, unstableRecent)
		c.RenderOps += rops

		// --- SO(3) pre-alignment ---
		guess := pose
		if cfg.SO3 {
			rot, sops := so3PreAlign(cur, prev)
			c.SO3Ops += sops
			// Apply the increment in the camera frame: world rotation of
			// the new frame is prevR · rotᵀ (rot maps prev rays onto cur).
			guess = geom.Pose{R: prevPose.R.Mul(rot.Transpose()), T: prevPose.T}.Orthonormalize()
		}

		// --- Photometric reference selection ---
		refIntensity := model.intensity
		refVertexWorld := model.vertex
		refPose := prevPose
		if cfg.FrameToFrameRGB {
			refIntensity = prev.intensity[0]
			refVertexWorld = prevVertexWorld
		}

		// --- Joint tracking ---
		newPose, icpOps, rgbOps, err := jointTrack(
			cur, model, refIntensity, refVertexWorld, refPose, intr,
			guess, cfg.ICPWeight, levels, iterations,
		)
		c.ICPOps += icpOps
		c.RGBOps += rgbOps
		if err != nil {
			c.TrackFailures++
			if cfg.Reloc {
				// Fern relocalisation: reset to the most similar keyframe.
				code, fops := ferns.encode(filtered, ds.Frames[i].Intensity)
				c.FernOps += fops
				if e, score, ok := ferns.best(code, frame-1); ok && score < fernReloc {
					pose = e.pose
					c.Relocalization++
				}
			}
		} else {
			pose = newPose
			c.TrackedFrames++
		}

		// --- Local loop closure against the inactive model ---
		if !cfg.OpenLoop && i%loopEvery == 0 {
			inactive := func(s *Surfel) bool {
				return s.Conf >= confTh && frame-s.LastSeen > inactiveWindow
			}
			old, lrops := smap.Render(intr, pose, inactive)
			c.RenderOps += lrops
			corrected, lopsICP, lopsRGB, lerr := jointTrack(
				cur, old, old.intensity, old.vertex, pose, intr,
				pose, cfg.ICPWeight, []int{0}, []int{4},
			)
			c.LoopOps += lopsICP + lopsRGB
			if lerr == nil {
				// Rigid section-blend correction (simplified deformation):
				// move halfway toward the re-registered pose.
				dv, dw := geom.LogSE3(corrected.Mul(pose.Inverse()))
				if dv.Norm() < 0.25 && dw.Norm() < 0.25 && (dv.Norm() > 1e-4 || dw.Norm() > 1e-4) {
					pose = geom.ExpSE3(dv.Scale(0.5), dw.Scale(0.5)).Mul(pose).Orthonormalize()
					c.LoopClosures++
				}
			}
		}

		res.Trajectory[i] = pose

		// --- Fusion ---
		assoc, arops := smap.Render(intr, pose, nil)
		c.RenderOps += arops
		st := smap.Fuse(cur.vertex[0], cur.normal[0], cur.intensity[0], intr,
			pose, assoc, frame, confTh, unstableWindow)
		c.FuseOps += st.ops
		c.SurfelsMerged += st.merged
		c.SurfelsAdded += st.added

		// --- Fern keyframes ---
		if i%fernEvery == 0 {
			code, fops := ferns.encode(filtered, ds.Frames[i].Intensity)
			c.FernOps += fops
			ferns.add(code, pose, frame)
		}

		prev, prevPose = cur, pose
		prevVertexWorld = vertexToWorld(cur.vertex[0], pose)
	}
	c.SurfelsFinal = int64(smap.Len())
	return res, nil
}

// bootstrapFrame seeds the map from the first frame.
func bootstrapFrame(smap *SurfelMap, cur *frameData, intr imgproc.Intrinsics, pose geom.Pose, frame int32, confTh float32, c *Counters) {
	empty := newRenderMaps(intr.W, intr.H)
	st := smap.Fuse(cur.vertex[0], cur.normal[0], cur.intensity[0], intr,
		pose, empty, frame, confTh, 0)
	c.FuseOps += st.ops
	c.SurfelsAdded += st.added
}

// vertexToWorld transforms a camera-frame vertex map to world space.
func vertexToWorld(v *imgproc.VecMap, pose geom.Pose) *imgproc.VecMap {
	out := imgproc.NewVecMap(v.W, v.H)
	for i, p := range v.Pix {
		if p.X != 0 || p.Y != 0 || p.Z != 0 {
			out.Pix[i] = pose.Apply(p)
		}
	}
	return out
}
