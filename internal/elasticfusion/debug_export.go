package elasticfusion

// This file exports a small alignment harness for debugging and tests: it
// aligns frame b of a dataset against the map built from frame a, starting
// from frame a's ground-truth pose, and reports pose errors before/after.

import (
	"repro/internal/geom"
	"repro/internal/sensor"
)

// DebugAlignResult reports a two-frame alignment experiment.
type DebugAlignResult struct {
	StartErr float64 // |pose_a - gt_b| translation error before alignment
	EndErr   float64 // after alignment
	Err      error
}

// DebugAlign builds a single-frame map from dataset frame a (at its ground
// truth pose), then aligns frame b starting from a's pose with the given
// ICP/RGB weight. Used by tests to check both tracking terms in isolation.
func DebugAlign(ds *sensor.Dataset, a, b int, icpWeight float64) DebugAlignResult {
	intr := ds.Intrinsics
	poseA := ds.GroundTruth[a]
	gtB := ds.GroundTruth[b]

	curA, _ := buildFrameData(ds.Frames[a].Depth, ds.Frames[a].Intensity, intr, pyramidLevels)
	curB, _ := buildFrameData(ds.Frames[b].Depth, ds.Frames[b].Intensity, intr, pyramidLevels)

	smap := &SurfelMap{}
	empty := newRenderMaps(intr.W, intr.H)
	smap.Fuse(curA.vertex[0], curA.normal[0], curA.intensity[0], intr, poseA, empty, 0, 1, 0)

	model, _ := smap.Render(intr, poseA, nil)
	aligned, _, _, err := jointTrack(
		curB, model, model.intensity, model.vertex, poseA, intr,
		poseA, icpWeight, []int{0, 1, 2}, []int{10, 5, 4},
	)
	return DebugAlignResult{
		StartErr: geom.Distance(poseA, gtB),
		EndErr:   geom.Distance(aligned, gtB),
		Err:      err,
	}
}
