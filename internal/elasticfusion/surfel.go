package elasticfusion

import (
	"repro/internal/geom"
	"repro/internal/imgproc"
)

// Surfel is one disc-shaped map element: position, normal, radius, color
// (intensity), a fusion confidence and bookkeeping timestamps.
type Surfel struct {
	Pos       geom.Vec3
	Normal    geom.Vec3
	Color     float32
	Radius    float32
	Conf      float32
	LastSeen  int32
	CreatedAt int32
}

// SurfelMap is the global surfel model.
type SurfelMap struct {
	Surfels []Surfel
}

// Len returns the number of surfels in the map.
func (m *SurfelMap) Len() int { return len(m.Surfels) }

// CountStable returns how many surfels pass the confidence threshold.
func (m *SurfelMap) CountStable(confThreshold float32) int {
	n := 0
	for i := range m.Surfels {
		if m.Surfels[i].Conf >= confThreshold {
			n++
		}
	}
	return n
}

// renderMaps holds the model prediction rendered from a viewpoint: world
// vertices/normals, intensity, and the index of the source surfel per pixel
// (-1 when empty).
type renderMaps struct {
	vertex    *imgproc.VecMap
	normal    *imgproc.VecMap
	intensity *imgproc.Map
	index     []int32
	depth     []float32 // z-buffer
}

func newRenderMaps(w, h int) *renderMaps {
	r := &renderMaps{
		vertex:    imgproc.NewVecMap(w, h),
		normal:    imgproc.NewVecMap(w, h),
		intensity: imgproc.NewMap(w, h),
		index:     make([]int32, w*h),
		depth:     make([]float32, w*h),
	}
	for i := range r.index {
		r.index[i] = -1
	}
	return r
}

// surfelFilter selects which surfels participate in a render pass.
type surfelFilter func(s *Surfel) bool

// Render projects the selected surfels into the view defined by pose
// (camera-to-world) and intr, keeping the nearest surfel per pixel, and
// splatting into a small neighborhood so the prediction is dense enough for
// projective data association. It returns the maps and the number of
// surfels processed (the render work counter).
func (m *SurfelMap) Render(intr imgproc.Intrinsics, pose geom.Pose, keep surfelFilter) (*renderMaps, int64) {
	r := newRenderMaps(intr.W, intr.H)
	ops := m.renderPass(r, intr, pose, keep, false)
	return r, ops
}

// RenderWithFallback renders the primary surfels and then fills pixels the
// primary pass left empty from the fallback set — ElasticFusion's predictor
// backs the stable model with unstable surfels so tracking survives the
// confidence warm-up and freshly explored regions.
func (m *SurfelMap) RenderWithFallback(intr imgproc.Intrinsics, pose geom.Pose, primary, fallback surfelFilter) (*renderMaps, int64) {
	r := newRenderMaps(intr.W, intr.H)
	ops := m.renderPass(r, intr, pose, primary, false)
	ops += m.renderPass(r, intr, pose, fallback, true)
	return r, ops
}

// renderPass splats one filtered subset into r. With fillOnly, occupied
// pixels are left untouched.
func (m *SurfelMap) renderPass(r *renderMaps, intr imgproc.Intrinsics, pose geom.Pose, keep surfelFilter, fillOnly bool) int64 {
	inv := pose.Inverse()
	var ops int64
	for si := range m.Surfels {
		s := &m.Surfels[si]
		if keep != nil && !keep(s) {
			continue
		}
		ops++
		pc := inv.Apply(s.Pos)
		if pc.Z <= 0.05 {
			continue
		}
		x, y, ok := intr.Project(pc)
		if !ok {
			continue
		}
		z := float32(pc.Z)
		// Splat into a single pixel; hole filling is handled by the
		// fallback pass and the merge association tolerates misses.
		for dy := 0; dy < 1; dy++ {
			for dx := 0; dx < 1; dx++ {
				xx, yy := x+dx, y+dy
				if xx >= intr.W || yy >= intr.H {
					continue
				}
				pi := yy*intr.W + xx
				if r.index[pi] >= 0 && (fillOnly || r.depth[pi] <= z) {
					continue
				}
				r.index[pi] = int32(si)
				r.depth[pi] = z
				r.vertex.Set(xx, yy, s.Pos)
				r.normal.Set(xx, yy, s.Normal)
				r.intensity.Set(xx, yy, s.Color)
			}
		}
	}
	return ops
}

// fuseStats reports what one fusion pass did.
type fuseStats struct {
	merged int64
	added  int64
	culled int64
	ops    int64
}

// Fuse integrates one frame (camera-frame vertex/normal maps plus
// intensity) into the map given the estimated pose. assoc is the render of
// the current model from the same pose, used for projective association.
// Surfels that have stayed below confThreshold for longer than
// unstableWindow frames are culled.
func (m *SurfelMap) Fuse(
	vertex, normal *imgproc.VecMap,
	intensity *imgproc.Map,
	intr imgproc.Intrinsics,
	pose geom.Pose,
	assoc *renderMaps,
	frame int32,
	confThreshold float32,
	unstableWindow int32,
) fuseStats {
	var st fuseStats
	const (
		mergeDist   = 0.05 // meters
		mergeNormal = 0.7  // min normal dot product
	)
	for y := 0; y < vertex.H; y++ {
		for x := 0; x < vertex.W; x++ {
			if !vertex.ValidAt(x, y) || !normal.ValidAt(x, y) {
				continue
			}
			st.ops++
			vWorld := pose.Apply(vertex.At(x, y))
			nWorld := pose.Rotate(normal.At(x, y))
			col := intensity.At(x, y)
			pi := y*assoc.vertex.W + x

			if si := assoc.index[pi]; si >= 0 {
				s := &m.Surfels[si]
				if s.Pos.Sub(vWorld).Norm() < mergeDist && s.Normal.Dot(nWorld) > mergeNormal {
					// Confidence-weighted running average.
					w := float64(s.Conf)
					t := 1 / (w + 1)
					s.Pos = geom.Lerp(s.Pos, vWorld, t)
					s.Normal = geom.Lerp(s.Normal, nWorld, t).Normalized()
					s.Color = s.Color + (col-s.Color)*float32(t)
					s.Conf++
					s.LastSeen = frame
					st.merged++
					continue
				}
			}
			// New surfel: radius from pixel footprint at this depth.
			depth := vertex.At(x, y).Z
			m.Surfels = append(m.Surfels, Surfel{
				Pos:       vWorld,
				Normal:    nWorld,
				Color:     col,
				Radius:    float32(depth / intr.Fx * 1.5),
				Conf:      1,
				LastSeen:  frame,
				CreatedAt: frame,
			})
			st.added++
		}
	}
	// Cull stale unstable surfels.
	if unstableWindow > 0 {
		keep := m.Surfels[:0]
		for _, s := range m.Surfels {
			if s.Conf < confThreshold && frame-s.LastSeen > unstableWindow {
				st.culled++
				continue
			}
			keep = append(keep, s)
		}
		m.Surfels = keep
	}
	return st
}
