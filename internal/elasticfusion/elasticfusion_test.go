package elasticfusion

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/sensor"
)

// testDataset renders once for the package: 30 frames with the per-frame
// motion of the nominal 100-frame sweep.
var testDataset = sensor.Generate(sensor.Options{
	Width: 80, Height: 60, Frames: 30,
	Noise:      sensor.KinectNoise(1),
	Trajectory: sensor.TrajectorySlice(sensor.LivingRoomTrajectory2, 100),
})

func meanATE(traj, gt []geom.Pose) float64 {
	sum := 0.0
	for i := range traj {
		sum += geom.Distance(traj[i], gt[i])
	}
	return sum / float64(len(traj))
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{ICPWeight: -1, DepthCutoff: 3, Confidence: 10},
		{ICPWeight: 10, DepthCutoff: 0, Confidence: 10},
		{ICPWeight: 10, DepthCutoff: 3, Confidence: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	d := DefaultConfig()
	if d.ICPWeight != 10 || d.DepthCutoff != 3 || d.Confidence != 10 {
		t.Fatalf("default = %+v, want Table I row (10, 3, 10)", d)
	}
	if !d.SO3 || d.OpenLoop || !d.Reloc || d.FastOdom || d.FrameToFrameRGB {
		t.Fatalf("default flags = %+v, want SO3=1, loops on, reloc on", d)
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != testDataset.NumFrames() {
		t.Fatalf("trajectory length %d", len(res.Trajectory))
	}
	ate := meanATE(res.Trajectory, testDataset.GroundTruth)
	if ate > 0.12 {
		t.Fatalf("mean ATE %v m too large — tracking broken", ate)
	}
	c := res.Counters
	if c.Frames != 30 || c.TrackedFrames == 0 {
		t.Fatalf("counters: %+v", c)
	}
	if c.ICPOps == 0 || c.RGBOps == 0 || c.RenderOps == 0 || c.FuseOps == 0 {
		t.Fatalf("work not counted: %+v", c)
	}
	if c.SurfelsFinal == 0 {
		t.Fatal("map is empty")
	}
}

func TestSO3FlagCostsWork(t *testing.T) {
	on := DefaultConfig()
	off := DefaultConfig()
	off.SO3 = false
	ron, err := Run(testDataset, on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Run(testDataset, off)
	if err != nil {
		t.Fatal(err)
	}
	if ron.Counters.SO3Ops == 0 {
		t.Fatal("SO3 enabled but no work counted")
	}
	if roff.Counters.SO3Ops != 0 {
		t.Fatal("SO3 disabled but work counted")
	}
}

func TestOpenLoopSkipsLoopClosure(t *testing.T) {
	open := DefaultConfig()
	open.OpenLoop = true
	r, err := Run(testDataset, open)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.LoopOps != 0 || r.Counters.LoopClosures != 0 {
		t.Fatalf("open loop ran loop closure: %+v", r.Counters)
	}
	closed, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if closed.Counters.LoopOps == 0 {
		t.Fatal("closed loop did no loop-closure work")
	}
}

func TestFastOdomReducesTrackingWork(t *testing.T) {
	fast := DefaultConfig()
	fast.FastOdom = true
	rf, err := Run(testDataset, fast)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rf.Counters.ICPOps+rf.Counters.RGBOps >= rd.Counters.ICPOps+rd.Counters.RGBOps {
		t.Fatalf("fast odometry should reduce tracking work: %d vs %d",
			rf.Counters.ICPOps+rf.Counters.RGBOps, rd.Counters.ICPOps+rd.Counters.RGBOps)
	}
}

func TestDepthCutoffLimitsData(t *testing.T) {
	shallow := DefaultConfig()
	shallow.DepthCutoff = 1.2
	rs, err := Run(testDataset, shallow)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Counters.FuseOps >= rd.Counters.FuseOps {
		t.Fatalf("shallow cutoff should fuse fewer points: %d vs %d",
			rs.Counters.FuseOps, rd.Counters.FuseOps)
	}
	if rs.Counters.SurfelsFinal >= rd.Counters.SurfelsFinal {
		t.Fatal("shallow cutoff should build a smaller map")
	}
}

func TestLowConfidenceBuildsNoisierBiggerStableSet(t *testing.T) {
	low := DefaultConfig()
	low.Confidence = 1
	rl, err := Run(testDataset, low)
	if err != nil {
		t.Fatal(err)
	}
	// With threshold 1 every surviving surfel is "stable": the map keeps
	// more (unculled) surfels than the default run.
	rd, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rl.Counters.SurfelsFinal <= rd.Counters.SurfelsFinal {
		t.Fatalf("confidence 1 map (%d) should exceed default map (%d)",
			rl.Counters.SurfelsFinal, rd.Counters.SurfelsFinal)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(nil, DefaultConfig()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	bad := DefaultConfig()
	bad.DepthCutoff = 0
	if _, err := Run(testDataset, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDeterministicRun(t *testing.T) {
	a, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testDataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trajectory {
		if a.Trajectory[i].T != b.Trajectory[i].T {
			t.Fatal("run not deterministic")
		}
	}
	if a.Counters != b.Counters {
		t.Fatal("counters not deterministic")
	}
}

func TestDebugAlignConvergesBothTerms(t *testing.T) {
	// Both the geometric and the photometric term must individually shrink
	// the initial pose error between consecutive frames.
	for _, w := range []float64{0, 10, 100} {
		res := DebugAlign(testDataset, 0, 1, w)
		if res.Err != nil {
			t.Fatalf("weight %v: %v", w, res.Err)
		}
		if res.EndErr > res.StartErr*0.6 {
			t.Fatalf("weight %v: %v -> %v (no convergence)", w, res.StartErr, res.EndErr)
		}
	}
}

func TestSurfelMapFuseMergesRevisits(t *testing.T) {
	intr := imgproc.StandardIntrinsics(32, 24)
	depth := imgproc.NewMap(32, 24)
	for i := range depth.Pix {
		depth.Pix[i] = 2
	}
	intensity := imgproc.NewMap(32, 24)
	vertex := imgproc.DepthToVertex(depth, intr)
	normal := imgproc.VertexToNormal(vertex)
	pose := geom.IdentityPose()

	m := &SurfelMap{}
	empty := newRenderMaps(32, 24)
	st1 := m.Fuse(vertex, normal, intensity, intr, pose, empty, 0, 5, 0)
	if st1.added == 0 || st1.merged != 0 {
		t.Fatalf("first fuse: %+v", st1)
	}
	n1 := m.Len()

	assoc, _ := m.Render(intr, pose, nil)
	st2 := m.Fuse(vertex, normal, intensity, intr, pose, assoc, 1, 5, 0)
	if st2.merged == 0 {
		t.Fatalf("second fuse should merge: %+v", st2)
	}
	if m.Len() > n1+n1/5 {
		t.Fatalf("revisit nearly doubled the map: %d -> %d", n1, m.Len())
	}
}

func TestSurfelCulling(t *testing.T) {
	m := &SurfelMap{Surfels: []Surfel{
		{Conf: 1, LastSeen: 0},
		{Conf: 20, LastSeen: 0},
	}}
	intr := imgproc.StandardIntrinsics(8, 8)
	empty := newRenderMaps(8, 8)
	vertex := imgproc.NewVecMap(8, 8) // all invalid: fuse only culls
	normal := imgproc.NewVecMap(8, 8)
	intensity := imgproc.NewMap(8, 8)
	st := m.Fuse(vertex, normal, intensity, intr, geom.IdentityPose(), empty, 100, 10, 25)
	if st.culled != 1 || m.Len() != 1 {
		t.Fatalf("culling: %+v, len %d", st, m.Len())
	}
	if m.Surfels[0].Conf != 20 {
		t.Fatal("culled the wrong surfel")
	}
}

func TestCountStable(t *testing.T) {
	m := &SurfelMap{Surfels: []Surfel{{Conf: 5}, {Conf: 15}, {Conf: 10}}}
	if got := m.CountStable(10); got != 2 {
		t.Fatalf("CountStable = %d", got)
	}
}

func TestFernEncodeAndMatch(t *testing.T) {
	db := newFernDB(32, 16, 12, 1)
	f0 := testDataset.Frames[0]
	f1 := testDataset.Frames[1]
	fLast := testDataset.Frames[testDataset.NumFrames()-1]

	c0, ops := db.encode(f0.Depth, f0.Intensity)
	if ops != 32 || len(c0) != 32 {
		t.Fatalf("encode: %d ops, %d code", ops, len(c0))
	}
	c1, _ := db.encode(f1.Depth, f1.Intensity)
	cLast, _ := db.encode(fLast.Depth, fLast.Intensity)

	dNear := dissimilarity(c0, c1)
	dFar := dissimilarity(c0, cLast)
	if dNear > dFar {
		t.Fatalf("adjacent frames more dissimilar (%v) than distant (%v)", dNear, dFar)
	}
	db.add(c0, testDataset.GroundTruth[0], 0)
	db.add(cLast, testDataset.GroundTruth[testDataset.NumFrames()-1], 29)
	e, score, ok := db.best(c1, 28)
	if !ok || e.frame != 0 {
		t.Fatalf("best match frame %d (score %v, ok %v), want 0", e.frame, score, ok)
	}
	// maxFrame excludes newer entries.
	if _, _, ok := db.best(c1, -1); ok {
		t.Fatal("maxFrame filter ignored")
	}
}

func TestDissimilarityEdgeCases(t *testing.T) {
	if dissimilarity(nil, nil) != 1 {
		t.Fatal("empty codes should be maximally dissimilar")
	}
	if dissimilarity([]uint8{1, 2}, []uint8{1}) != 1 {
		t.Fatal("length mismatch should be maximally dissimilar")
	}
	if dissimilarity([]uint8{1, 2}, []uint8{1, 2}) != 0 {
		t.Fatal("identical codes should have zero dissimilarity")
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(testDataset, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
