package elasticfusion

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// fernDB is the randomized-fern keyframe encoder ElasticFusion uses for
// relocalisation and global loop-closure candidate retrieval (Glocker et
// al.): each fern thresholds the frame's intensity and depth at a few
// random probe locations, producing a short binary code; frames with small
// code (Hamming) dissimilarity are loop candidates.
type fernDB struct {
	probesX []int // probe pixel coordinates in the downsampled frame
	probesY []int
	thInt   []float32 // intensity thresholds per probe
	thDep   []float32 // depth thresholds per probe
	w, h    int
	entries []fernEntry
}

type fernEntry struct {
	code  []uint8
	pose  geom.Pose
	frame int32
}

// newFernDB builds a database of n fern probes over w×h downsampled frames,
// deterministically from seed.
func newFernDB(n, w, h int, seed int64) *fernDB {
	rng := rand.New(rand.NewSource(seed))
	db := &fernDB{
		probesX: make([]int, n),
		probesY: make([]int, n),
		thInt:   make([]float32, n),
		thDep:   make([]float32, n),
		w:       w, h: h,
	}
	for i := 0; i < n; i++ {
		db.probesX[i] = rng.Intn(w)
		db.probesY[i] = rng.Intn(h)
		db.thInt[i] = float32(0.2 + 0.6*rng.Float64())
		db.thDep[i] = float32(0.8 + 2.8*rng.Float64())
	}
	return db
}

// encode computes the fern code of a frame (downsampled internally to the
// database resolution) and returns it with the number of operations.
func (db *fernDB) encode(depth, intensity *imgproc.Map) ([]uint8, int64) {
	code := make([]uint8, len(db.probesX))
	sx := float64(depth.W) / float64(db.w)
	sy := float64(depth.H) / float64(db.h)
	var ops int64
	for i := range db.probesX {
		ops++
		x := int(float64(db.probesX[i]) * sx)
		y := int(float64(db.probesY[i]) * sy)
		var bits uint8
		if intensity.At(x, y) > db.thInt[i] {
			bits |= 1
		}
		if d := depth.At(x, y); d > 0 && d > db.thDep[i] {
			bits |= 2
		}
		code[i] = bits
	}
	return code, ops
}

// add stores a keyframe.
func (db *fernDB) add(code []uint8, pose geom.Pose, frame int32) {
	db.entries = append(db.entries, fernEntry{code: code, pose: pose, frame: frame})
}

// dissimilarity returns the fraction of differing probes between two codes.
func dissimilarity(a, b []uint8) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 1
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a))
}

// best returns the stored entry most similar to code, excluding entries
// newer than maxFrame, plus the dissimilarity score; ok is false when the
// database has no eligible entry.
func (db *fernDB) best(code []uint8, maxFrame int32) (fernEntry, float64, bool) {
	bestScore := 2.0
	var bestEntry fernEntry
	found := false
	for _, e := range db.entries {
		if e.frame > maxFrame {
			continue
		}
		if s := dissimilarity(code, e.code); s < bestScore {
			bestScore = s
			bestEntry = e
			found = true
		}
	}
	return bestEntry, bestScore, found
}
