package slambench

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/param"
	"repro/internal/sensor"
)

func testKF(t testing.TB) *KFusionBench {
	t.Helper()
	return NewKFusionBench(CachedDataset("test"))
}

func testEF(t testing.TB) *ElasticFusionBench {
	t.Helper()
	return NewElasticFusionBench(CachedDataset("test"))
}

func TestATE(t *testing.T) {
	gt := []geom.Pose{geom.IdentityPose(), {R: geom.Identity3(), T: geom.V3(1, 0, 0)}}
	est := []geom.Pose{geom.IdentityPose(), {R: geom.Identity3(), T: geom.V3(1, 0.1, 0)}}
	mean, max, err := ATE(est, gt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.05) > 1e-12 || math.Abs(max-0.1) > 1e-12 {
		t.Fatalf("ATE = %v, %v", mean, max)
	}
	if _, _, err := ATE(est, gt[:1]); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, _, err := ATE(nil, nil); err == nil {
		t.Fatal("empty trajectories not detected")
	}
}

func TestSpaceCardinalities(t *testing.T) {
	if got := KFusionSpace().Size(); got != 1_800_000 {
		t.Fatalf("KFusion space = %d, want 1800000 (paper §III-B)", got)
	}
	if got := ElasticFusionSpace().Size(); got != 442_368 {
		t.Fatalf("ElasticFusion space = %d, want 442368 (paper ≈450k, §III-C)", got)
	}
}

func TestKFusionDefaultConfigDecodes(t *testing.T) {
	b := testKF(t)
	cfg := b.DefaultConfig()
	kc := b.ToConfig(cfg)
	if kc.VolumeResolution != 256 || kc.Mu != 0.1 || kc.ComputeRatio != 1 ||
		kc.TrackingRate != 1 || kc.IntegrationRate != 2 ||
		kc.ICPThreshold != 1e-5 || kc.PyramidIters != [3]int{10, 5, 4} {
		t.Fatalf("default decoded to %+v", kc)
	}
}

func TestEFDefaultConfigDecodes(t *testing.T) {
	b := testEF(t)
	ec := b.ToConfig(b.DefaultConfig())
	if ec.ICPWeight != 10 || ec.DepthCutoff != 3 || ec.Confidence != 10 {
		t.Fatalf("default decoded to %+v", ec)
	}
	if !ec.SO3 || ec.OpenLoop || !ec.Reloc || ec.FastOdom || ec.FrameToFrameRGB {
		t.Fatalf("default flags decoded to %+v", ec)
	}
}

func TestTableIRowsLieInSpace(t *testing.T) {
	// The winning configurations of Table I (ICP 5/4/2/1, depth 6/10,
	// confidence 9/4) must be expressible in our space grid.
	s := ElasticFusionSpace()
	for _, row := range [][3]float64{{5, 6, 9}, {4, 6, 9}, {2, 10, 4}, {1, 10, 4}} {
		cfg := s.AtIndex(0)
		cfg = s.With(cfg, EFICPWeight, row[0])
		cfg = s.With(cfg, EFDepthCut, row[1])
		cfg = s.With(cfg, EFConfidence, row[2])
		if s.Get(cfg, EFICPWeight) != row[0] || s.Get(cfg, EFDepthCut) != row[1] ||
			s.Get(cfg, EFConfidence) != row[2] {
			t.Fatalf("Table I row %v not on the space grid", row)
		}
	}
}

func TestKFusionEvaluate(t *testing.T) {
	b := testKF(t)
	m, err := b.Evaluate(b.DefaultConfig(), device.ODROIDXU3())
	if err != nil {
		t.Fatal(err)
	}
	if m.SecPerFrame <= 0 || m.FPS <= 0 || m.MaxATE < 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.MaxATE < m.MeanATE {
		t.Fatal("max ATE below mean ATE")
	}
	if m.TotalSeconds != m.SecPerFrame*NominalFrames {
		t.Fatal("total runtime inconsistent")
	}
	if b.Accuracy(m) != m.MaxATE {
		t.Fatal("KFusion accuracy objective must be max ATE")
	}
	if m.PowerW <= 0 {
		t.Fatal("power not modeled")
	}
}

func TestEFEvaluate(t *testing.T) {
	b := testEF(t)
	m, err := b.Evaluate(b.DefaultConfig(), device.GTX780Ti())
	if err != nil {
		t.Fatal(err)
	}
	if m.SecPerFrame <= 0 || m.MeanATE <= 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if b.Accuracy(m) != m.MeanATE {
		t.Fatal("EF accuracy objective must be mean ATE")
	}
}

func TestCheaperConfigIsFaster(t *testing.T) {
	b := testKF(t)
	s := b.Space()
	dev := device.ODROIDXU3()
	def := b.DefaultConfig()
	cheap := s.With(def, KFVolume, 64)
	cheap = s.With(cheap, KFRatio, 2)
	cheap = s.With(cheap, KFIntegRate, 5)

	md, err := b.Evaluate(def, dev)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := b.Evaluate(cheap, dev)
	if err != nil {
		t.Fatal(err)
	}
	if mc.SecPerFrame >= md.SecPerFrame/3 {
		t.Fatalf("cheap config %.1fms not ≪ default %.1fms",
			mc.SecPerFrame*1e3, md.SecPerFrame*1e3)
	}
}

func TestCalibrationKFusionODROID(t *testing.T) {
	// §IV-B: the default KFusion configuration runs at ≈ 6 FPS on the
	// ODROID-XU3. The "test" dataset is smaller but work is rescaled to
	// paper pixels, so the modeled FPS must stay in the band.
	b := NewKFusionBench(CachedDataset("full"))
	if testing.Short() {
		t.Skip("full dataset evaluation in -short mode")
	}
	m, err := b.Evaluate(b.DefaultConfig(), device.ODROIDXU3())
	if err != nil {
		t.Fatal(err)
	}
	if m.FPS < 4.5 || m.FPS > 7.5 {
		t.Fatalf("default KFusion on ODROID = %.2f FPS, want ≈6 (paper §IV-B)", m.FPS)
	}
}

func TestCalibrationEFGTX(t *testing.T) {
	// Table I: default ElasticFusion ≈ 22.2 s total, error ≈ 0.0558 m.
	if testing.Short() {
		t.Skip("full dataset evaluation in -short mode")
	}
	b := NewElasticFusionBench(CachedDataset("full"))
	m, err := b.Evaluate(b.DefaultConfig(), device.GTX780Ti())
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalSeconds < 18 || m.TotalSeconds > 27 {
		t.Fatalf("default EF total = %.1f s, want ≈22.2 (Table I)", m.TotalSeconds)
	}
	if m.MeanATE < 0.02 || m.MeanATE > 0.10 {
		t.Fatalf("default EF error = %.4f m, want ≈0.0558 band (Table I)", m.MeanATE)
	}
}

func TestEvaluatorAdapterObjectives(t *testing.T) {
	b := testKF(t)
	dev := device.ODROIDXU3()
	ev2 := Evaluator(b, dev, RuntimeAccuracy)
	objs := ev2.Evaluate(b.DefaultConfig())
	if len(objs) != 2 {
		t.Fatalf("2-objective evaluator returned %d values", len(objs))
	}
	ev3 := Evaluator(b, dev, RuntimeAccuracyPower)
	objs = ev3.Evaluate(b.DefaultConfig())
	if len(objs) != 3 {
		t.Fatalf("3-objective evaluator returned %d values", len(objs))
	}
	if RuntimeAccuracy.Count() != 2 || RuntimeAccuracyPower.Count() != 3 {
		t.Fatal("Objectives.Count wrong")
	}
}

func TestEvaluatorPenalizesBrokenConfigs(t *testing.T) {
	// Ratio 8 on a 24×18 dataset leaves a 3×2 image — Run errors, and the
	// evaluator must return a penalty vector, not crash.
	tiny := sensor.Generate(sensor.Options{
		Width: 24, Height: 18, Frames: 3,
		Noise:      sensor.KinectNoise(1),
		Trajectory: sensor.TrajectorySlice(sensor.LivingRoomTrajectory2, 100),
	})
	b := NewKFusionBench(tiny)
	ev := Evaluator(b, device.ODROIDXU3(), RuntimeAccuracy)
	bad := b.Space().With(b.DefaultConfig(), KFRatio, 8)
	objs := ev.Evaluate(bad)
	if objs[0] < 5 || objs[1] < 5 {
		t.Fatalf("broken config not penalized: %v", objs)
	}
}

func TestCachedDatasetSharing(t *testing.T) {
	a := CachedDataset("test")
	b := CachedDataset("test")
	if a != b {
		t.Fatal("cache returned different instances")
	}
	if a.Intrinsics.W != 80 {
		t.Fatalf("test dataset width %d", a.Intrinsics.W)
	}
}

func TestSmallDSEOnKFusion(t *testing.T) {
	// End-to-end smoke test: a tiny HyperMapper run over the real KFusion
	// space must produce a non-empty front of valid samples.
	if testing.Short() {
		t.Skip("DSE smoke test in -short mode")
	}
	b := testKF(t)
	res, err := core.Run(b.Space(), Evaluator(b, device.ODROIDXU3(), RuntimeAccuracy), core.Options{
		Objectives:    2,
		RandomSamples: 12,
		MaxIterations: 1,
		MaxBatch:      6,
		PoolCap:       3000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, p := range res.Front {
		cfg := b.Space().AtIndex(p.ID)
		if err := b.Space().Validate(cfg); err != nil {
			t.Fatal(err)
		}
	}
}

var sinkMetrics Metrics

func BenchmarkKFusionEvaluate(b *testing.B) {
	bench := testKF(b)
	dev := device.ODROIDXU3()
	cfg := bench.Space().With(bench.DefaultConfig(), KFVolume, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.Evaluate(cfg, dev)
		if err != nil {
			b.Fatal(err)
		}
		sinkMetrics = m
	}
}

func BenchmarkEFEvaluate(b *testing.B) {
	bench := testEF(b)
	dev := device.GTX780Ti()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.Evaluate(bench.DefaultConfig(), dev)
		if err != nil {
			b.Fatal(err)
		}
		sinkMetrics = m
	}
}

var _ param.Config // keep param import if assertions change
