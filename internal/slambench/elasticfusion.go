package slambench

import (
	"repro/internal/device"
	"repro/internal/elasticfusion"
	"repro/internal/param"
	"repro/internal/sensor"
)

// ElasticFusion parameter names (paper §III-C / Table I).
const (
	EFICPWeight  = "icp-rgb-weight"
	EFDepthCut   = "depth-cutoff"
	EFConfidence = "confidence"
	EFSO3        = "so3"
	EFOpenLoop   = "open-loop"
	EFReloc      = "reloc"
	EFFastOdom   = "fast-odom"
	EFFTFRGB     = "ftf-rgb"
)

// ElasticFusionSpace builds the paper's ElasticFusion design space:
// 24³·2⁵ = 442,368 configurations ("roughly 450,000", §III-C).
func ElasticFusionSpace() *param.Space {
	return param.MustSpace(
		param.Grid(EFICPWeight, 0.5, 12, 24),
		param.Grid(EFDepthCut, 0.5, 12, 24),
		param.Grid(EFConfidence, 0.5, 12, 24),
		param.Bool(EFSO3),
		param.Bool(EFOpenLoop),
		param.Bool(EFReloc),
		param.Bool(EFFastOdom),
		param.Bool(EFFTFRGB),
	)
}

// ElasticFusionBench runs ElasticFusion configurations on a dataset.
type ElasticFusionBench struct {
	DS    *sensor.Dataset
	space *param.Space
}

// NewElasticFusionBench builds the benchmark over the given dataset.
func NewElasticFusionBench(ds *sensor.Dataset) *ElasticFusionBench {
	return &ElasticFusionBench{DS: ds, space: ElasticFusionSpace()}
}

// Name implements Benchmark.
func (b *ElasticFusionBench) Name() string { return "elasticfusion" }

// Space implements Benchmark.
func (b *ElasticFusionBench) Space() *param.Space { return b.space }

// DefaultConfig implements Benchmark: Table I's default row
// (ICP 10, depth 3, confidence 10, SO3 on, loops on, reloc on).
func (b *ElasticFusionBench) DefaultConfig() param.Config {
	d := elasticfusion.DefaultConfig()
	return param.Config{
		d.ICPWeight,
		d.DepthCutoff,
		d.Confidence,
		boolTo01(d.SO3),
		boolTo01(d.OpenLoop),
		boolTo01(d.Reloc),
		boolTo01(d.FastOdom),
		boolTo01(d.FrameToFrameRGB),
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ToConfig decodes a parameter vector into the pipeline configuration.
func (b *ElasticFusionBench) ToConfig(cfg param.Config) elasticfusion.Config {
	s := b.space
	return elasticfusion.Config{
		ICPWeight:       s.Get(cfg, EFICPWeight),
		DepthCutoff:     s.Get(cfg, EFDepthCut),
		Confidence:      s.Get(cfg, EFConfidence),
		SO3:             s.Get(cfg, EFSO3) != 0,
		OpenLoop:        s.Get(cfg, EFOpenLoop) != 0,
		Reloc:           s.Get(cfg, EFReloc) != 0,
		FastOdom:        s.Get(cfg, EFFastOdom) != 0,
		FrameToFrameRGB: s.Get(cfg, EFFTFRGB) != 0,
	}
}

// Evaluate implements Benchmark. The accuracy objective for ElasticFusion
// is the mean ATE (Table I "Error"), unlike KFusion's max-ATE axis.
func (b *ElasticFusionBench) Evaluate(cfg param.Config, dev device.Model) (Metrics, error) {
	res, err := elasticfusion.Run(b.DS, b.ToConfig(cfg))
	if err != nil {
		return Metrics{}, fmtErr(b, err)
	}
	meanATE, maxATE, err := ATE(res.Trajectory, b.DS.GroundTruth)
	if err != nil {
		return Metrics{}, fmtErr(b, err)
	}
	work := efWork(res.Counters, pixelScale(b.DS))
	frames := float64(res.Counters.Frames)
	spf := dev.SecondsPerFrame(work, frames)
	return Metrics{
		MeanATE:      meanATE,
		MaxATE:       maxATE,
		SecPerFrame:  spf,
		FPS:          1 / spf,
		TotalSeconds: spf * NominalFrames,
		PowerW:       dev.AveragePowerW(work, frames),
		Work:         work,
		Frames:       int(res.Counters.Frames),
	}, nil
}

// efWork converts pipeline counters to paper-scale work. Surfel counts are
// proportional to processed pixels, so render/fuse scale with the pixel
// ratio like the image kernels.
func efWork(c elasticfusion.Counters, px float64) device.Work {
	return device.Work{
		device.KernelPreprocess: float64(c.PreprocessOps) * px,
		device.KernelPyramid:    float64(c.PyramidOps) * px,
		device.KernelSO3:        float64(c.SO3Ops) * px,
		device.KernelICP:        float64(c.ICPOps) * px,
		device.KernelRGB:        float64(c.RGBOps) * px,
		device.KernelRender:     float64(c.RenderOps) * px,
		device.KernelFuse:       float64(c.FuseOps) * px,
		device.KernelLoop:       float64(c.LoopOps) * px,
		device.KernelFern:       float64(c.FernOps) * px,
	}
}

// Accuracy implements Benchmark: ElasticFusion experiments report the mean
// ATE (Table I "Error").
func (b *ElasticFusionBench) Accuracy(m Metrics) float64 { return m.MeanATE }
