package slambench

import (
	"repro/internal/device"
	"repro/internal/kfusion"
	"repro/internal/param"
	"repro/internal/sensor"
)

// KFusion parameter names (paper §III-B).
const (
	KFVolume    = "volume-resolution"
	KFMu        = "mu"
	KFRatio     = "compute-size-ratio"
	KFTrackRate = "tracking-rate"
	KFIntegRate = "integration-rate"
	KFICPThresh = "icp-threshold"
	KFPyramidL0 = "pyramid-l0"
	KFPyramidL1 = "pyramid-l1"
	KFPyramidL2 = "pyramid-l2"
)

// KFusionSpace builds the paper's KFusion algorithmic design space: exactly
// 1,800,000 configurations (§III-B).
func KFusionSpace() *param.Space {
	return param.MustSpace(
		param.Levels(KFVolume, 64, 128, 256),
		param.Grid(KFMu, 0.025, 0.5, 8),
		param.Levels(KFRatio, 1, 2, 4, 8),
		param.Levels(KFTrackRate, 1, 2, 3, 4, 5),
		param.Levels(KFIntegRate, 1, 2, 3, 4, 5),
		param.LogGrid(KFICPThresh, 1e-6, 1e-1, 6),
		param.Levels(KFPyramidL0, 2, 4, 6, 8, 10),
		param.Levels(KFPyramidL1, 2, 4, 6, 8, 10),
		param.Levels(KFPyramidL2, 2, 4, 6, 8, 10),
	)
}

// KFusionBench runs KFusion configurations on a dataset.
type KFusionBench struct {
	DS    *sensor.Dataset
	Sim   kfusion.SimOptions
	space *param.Space
}

// NewKFusionBench builds the benchmark over the given dataset.
func NewKFusionBench(ds *sensor.Dataset) *KFusionBench {
	return &KFusionBench{DS: ds, space: KFusionSpace()}
}

// Name implements Benchmark.
func (b *KFusionBench) Name() string { return "kfusion" }

// Space implements Benchmark.
func (b *KFusionBench) Space() *param.Space { return b.space }

// DefaultConfig implements Benchmark: the expert defaults (SLAMBench ships
// volume 256³, µ 0.1, full resolution, track every frame, integrate every
// other frame, ICP threshold 1e-5, pyramid iterations (10, 5, 4)). Note
// µ=0.1 and the (10,5,4) pyramid lie off the space grid, as in the paper,
// where the default is plotted as a separate reference point.
func (b *KFusionBench) DefaultConfig() param.Config {
	def := kfusion.DefaultConfig()
	return param.Config{
		float64(def.VolumeResolution),
		def.Mu,
		float64(def.ComputeRatio),
		float64(def.TrackingRate),
		float64(def.IntegrationRate),
		def.ICPThreshold,
		float64(def.PyramidIters[0]),
		float64(def.PyramidIters[1]),
		float64(def.PyramidIters[2]),
	}
}

// ToConfig decodes a parameter vector into the pipeline configuration.
func (b *KFusionBench) ToConfig(cfg param.Config) kfusion.Config {
	s := b.space
	return kfusion.Config{
		VolumeResolution: int(s.Get(cfg, KFVolume)),
		Mu:               s.Get(cfg, KFMu),
		ComputeRatio:     int(s.Get(cfg, KFRatio)),
		TrackingRate:     int(s.Get(cfg, KFTrackRate)),
		IntegrationRate:  int(s.Get(cfg, KFIntegRate)),
		ICPThreshold:     s.Get(cfg, KFICPThresh),
		PyramidIters: [3]int{
			int(s.Get(cfg, KFPyramidL0)),
			int(s.Get(cfg, KFPyramidL1)),
			int(s.Get(cfg, KFPyramidL2)),
		},
	}
}

// Evaluate implements Benchmark.
func (b *KFusionBench) Evaluate(cfg param.Config, dev device.Model) (Metrics, error) {
	res, err := kfusion.Run(b.DS, b.ToConfig(cfg), b.Sim)
	if err != nil {
		return Metrics{}, fmtErr(b, err)
	}
	meanATE, maxATE, err := ATE(res.Trajectory, b.DS.GroundTruth)
	if err != nil {
		return Metrics{}, fmtErr(b, err)
	}
	work := kfusionWork(res.Counters, pixelScale(b.DS))
	frames := float64(res.Counters.Frames)
	spf := dev.SecondsPerFrame(work, frames)
	return Metrics{
		MeanATE:      meanATE,
		MaxATE:       maxATE,
		SecPerFrame:  spf,
		FPS:          1 / spf,
		TotalSeconds: spf * NominalFrames,
		PowerW:       dev.AveragePowerW(work, frames),
		Work:         work,
		Frames:       int(res.Counters.Frames),
	}, nil
}

// kfusionWork converts pipeline counters to paper-scale work: image kernels
// scale with the pixel ratio; integration is already billed as the full
// res³ frustum sweep.
func kfusionWork(c kfusion.Counters, px float64) device.Work {
	return device.Work{
		device.KernelResize:    float64(c.ResizeOps) * px,
		device.KernelBilateral: float64(c.BilateralOps) * px,
		device.KernelPyramid:   float64(c.PyramidOps) * px,
		device.KernelTrack:     float64(c.TrackOps) * px,
		device.KernelIntegrate: float64(c.IntegrateFullSweep),
		device.KernelRaycast:   float64(c.RaycastSteps) * px,
	}
}

// Accuracy implements Benchmark: KFusion experiments report the max ATE
// (the Fig. 3 y-axis and the 5 cm validity bound).
func (b *KFusionBench) Accuracy(m Metrics) float64 { return m.MaxATE }
