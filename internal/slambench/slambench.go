// Package slambench is the SLAMBench-style measurement harness (Nardi et
// al., ICRA 2015) wiring the SLAM pipelines, the synthetic dataset, and the
// device models together: it defines the paper's two algorithmic design
// spaces, runs a configuration, computes the absolute trajectory error
// (ATE) metric and the modeled device runtime, and adapts benchmarks to the
// HyperMapper optimizer.
package slambench

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/param"
	"repro/internal/sensor"
)

// Metrics are the performance measurements of one run (paper §I: accuracy
// of estimated trajectory, lower is better, and runtime, lower is better;
// plus modeled power for the three-objective extension).
type Metrics struct {
	MeanATE      float64 // meters
	MaxATE       float64 // meters
	SecPerFrame  float64 // modeled device seconds per frame
	FPS          float64 // 1 / SecPerFrame
	TotalSeconds float64 // modeled seconds over NominalFrames
	PowerW       float64 // modeled average power
	Work         device.Work
	Frames       int
}

// AccuracyLimit is the paper's validity bound: configurations with max ATE
// below 5 cm count as valid (Fig. 3).
const AccuracyLimit = 0.05

// NominalFrames is the sequence length runtime totals are reported over
// (the full ICL-NUIM living-room kt2 sequence the Table I totals refer to).
const NominalFrames = 880

// PaperPixels is the pixel count of the sensors the paper's platforms
// process (640×480); counted image-kernel work is rescaled to it.
const PaperPixels = 640 * 480

// ATE computes the mean and max absolute trajectory error between an
// estimated trajectory and ground truth (both camera-to-world; SLAMBench
// aligns sequences at the first frame, which Run already guarantees).
func ATE(traj, gt []geom.Pose) (mean, max float64, err error) {
	if len(traj) != len(gt) || len(traj) == 0 {
		return 0, 0, errors.New("slambench: trajectory/ground-truth length mismatch")
	}
	for i := range traj {
		d := geom.Distance(traj[i], gt[i])
		mean += d
		if d > max {
			max = d
		}
	}
	return mean / float64(len(traj)), max, nil
}

// Benchmark is one SLAM application under measurement.
type Benchmark interface {
	// Name returns the benchmark identifier ("kfusion", "elasticfusion").
	Name() string
	// Space returns the paper's algorithmic design space.
	Space() *param.Space
	// DefaultConfig returns the expert default configuration, expressed in
	// Space parameter order (values need not lie on the space grid).
	DefaultConfig() param.Config
	// Evaluate runs one configuration on the device model and returns its
	// metrics. Implementations are safe for concurrent use.
	Evaluate(cfg param.Config, dev device.Model) (Metrics, error)
	// Accuracy extracts the benchmark's accuracy objective from metrics:
	// max ATE for KFusion (Fig. 3 y-axis), mean ATE for ElasticFusion
	// (Table I "Error").
	Accuracy(m Metrics) float64
}

// Objectives enumerates evaluator outputs.
type Objectives int

const (
	// RuntimeAccuracy is the paper's two-objective setting:
	// (seconds per frame, max ATE).
	RuntimeAccuracy Objectives = iota
	// RuntimeAccuracyPower adds modeled power as a third objective
	// (the PACT'16 predecessor's setting).
	RuntimeAccuracyPower
)

// Count returns the number of objective values.
func (o Objectives) Count() int {
	if o == RuntimeAccuracyPower {
		return 3
	}
	return 2
}

// Evaluator adapts a benchmark+device to the optimizer. Evaluation errors
// (degenerate configurations) are mapped to a heavily penalized objective
// vector rather than aborting the exploration, mirroring how broken
// configurations show up on real hardware (timeouts/garbage output).
func Evaluator(b Benchmark, dev device.Model, obj Objectives) core.Evaluator {
	return core.EvaluatorFunc(func(cfg param.Config) []float64 {
		m, err := b.Evaluate(cfg, dev)
		if err != nil {
			bad := []float64{10, 10}
			if obj == RuntimeAccuracyPower {
				bad = append(bad, 1000)
			}
			return bad
		}
		out := []float64{m.SecPerFrame, b.Accuracy(m)}
		if obj == RuntimeAccuracyPower {
			out = append(out, m.PowerW)
		}
		return out
	})
}

// DatasetOptions returns the sensor options for the named dataset scale:
//
//   - "full": 160×120, 100 frames — the reference dataset standing in for
//     the lr kt2 sequence; calibration tests use it.
//   - "dse": 120×90, the first 60 frames — the exploration workload. The
//     paper applies the same trick ("we halved the original sequence in
//     order to reduce the overall execution time of the benchmark",
//     §III-A); modeled runtime is unaffected because image-kernel work is
//     rescaled to paper pixels.
//   - "test": 80×60, 30 frames, for unit tests.
func DatasetOptions(scale string) sensor.Options {
	switch scale {
	case "test":
		return sensor.Options{
			Width: 80, Height: 60, Frames: 30,
			Noise:      sensor.KinectNoise(2),
			Trajectory: sensor.TrajectorySlice(sensor.LivingRoomTrajectory2, 100),
			Name:       "living-room-traj2-test",
		}
	case "dse":
		return sensor.Options{
			Width: 120, Height: 90, Frames: 60,
			Noise:      sensor.KinectNoise(2),
			Trajectory: sensor.TrajectorySlice(sensor.LivingRoomTrajectory2, 100),
			Name:       "living-room-traj2-halved",
		}
	default:
		return sensor.Options{
			Width: 160, Height: 120, Frames: 100,
			Noise: sensor.KinectNoise(2),
			Name:  "living-room-traj2",
		}
	}
}

var (
	dsCache   = map[string]*sensor.Dataset{}
	dsCacheMu sync.Mutex
)

// CachedDataset generates (once per process) and returns the named dataset
// scale. Rendering takes seconds; every benchmark and experiment shares the
// cached instance.
func CachedDataset(scale string) *sensor.Dataset {
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if ds, ok := dsCache[scale]; ok {
		return ds
	}
	ds := sensor.Generate(DatasetOptions(scale))
	dsCache[scale] = ds
	return ds
}

// pixelScale returns the factor mapping image-kernel work counted at the
// dataset resolution to paper-scale (640×480) work.
func pixelScale(ds *sensor.Dataset) float64 {
	return PaperPixels / float64(ds.Intrinsics.W*ds.Intrinsics.H)
}

func fmtErr(b Benchmark, err error) error {
	return fmt.Errorf("slambench: %s: %w", b.Name(), err)
}
