// Package scene provides the analytic signed-distance-field world the
// synthetic RGB-D sensor observes: SDF primitives, a textured albedo model,
// and the procedural living room that stands in for the ICL-NUIM living
// room sequence (see DESIGN.md §1 for the substitution rationale).
package scene

import (
	"math"

	"repro/internal/geom"
)

// Object is one solid in the scene: a signed distance function plus a
// surface albedo (intensity in [0,1], possibly procedurally textured).
type Object interface {
	// Dist returns the signed distance from p to the object surface
	// (negative inside).
	Dist(p geom.Vec3) float64
	// Albedo returns the surface reflectance at p (only meaningful for
	// points on or near the surface).
	Albedo(p geom.Vec3) float64
}

// Sphere is a solid ball.
type Sphere struct {
	Center geom.Vec3
	Radius float64
	Shade  float64
}

// Dist implements Object.
func (s Sphere) Dist(p geom.Vec3) float64 { return p.Sub(s.Center).Norm() - s.Radius }

// Albedo implements Object.
func (s Sphere) Albedo(geom.Vec3) float64 { return s.Shade }

// Box is an axis-aligned solid box with optional corner rounding.
type Box struct {
	Center geom.Vec3
	Half   geom.Vec3 // half-extents
	Round  float64
	Shade  float64
	// Stripes > 0 adds procedural stripes of the given spatial frequency
	// along x+z, giving the photometric tracker gradients to lock onto.
	Stripes float64
}

// Dist implements Object.
func (b Box) Dist(p geom.Vec3) float64 {
	q := p.Sub(b.Center).Abs().Sub(b.Half)
	outside := geom.V3(math.Max(q.X, 0), math.Max(q.Y, 0), math.Max(q.Z, 0)).Norm()
	inside := math.Min(q.MaxComponent(), 0)
	return outside + inside - b.Round
}

// Albedo implements Object.
func (b Box) Albedo(p geom.Vec3) float64 {
	if b.Stripes <= 0 {
		return b.Shade
	}
	s := math.Sin(p.X*b.Stripes) + math.Sin(p.Z*b.Stripes+p.Y*b.Stripes*0.7)
	return clamp01(b.Shade + 0.09*s)
}

// CylinderY is a vertical capped cylinder.
type CylinderY struct {
	Center geom.Vec3 // center of the axis segment
	Radius float64
	Half   float64 // half-height
	Shade  float64
}

// Dist implements Object.
func (c CylinderY) Dist(p geom.Vec3) float64 {
	q := p.Sub(c.Center)
	dXZ := math.Hypot(q.X, q.Z) - c.Radius
	dY := math.Abs(q.Y) - c.Half
	outX := math.Max(dXZ, 0)
	outY := math.Max(dY, 0)
	return math.Min(math.Max(dXZ, dY), 0) + math.Hypot(outX, outY)
}

// Albedo implements Object.
func (c CylinderY) Albedo(geom.Vec3) float64 { return c.Shade }

// Checker is a box with a checkerboard albedo (floors and rugs).
type Checker struct {
	Box
	CheckSize float64
	Shade2    float64
}

// Albedo implements Object.
func (c Checker) Albedo(p geom.Vec3) float64 {
	ix := int(math.Floor(p.X / c.CheckSize))
	iz := int(math.Floor(p.Z / c.CheckSize))
	if (ix+iz)%2 == 0 {
		return c.Box.Shade
	}
	return c.Shade2
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Scene is a union of objects.
type Scene struct {
	Objects []Object
	// Bounds is an axis-aligned bounding box of the whole scene used by
	// renderers to bound ray marching.
	BoundsMin, BoundsMax geom.Vec3
}

// Dist returns the signed distance to the nearest object surface.
func (s *Scene) Dist(p geom.Vec3) float64 {
	d := math.Inf(1)
	for _, o := range s.Objects {
		if od := o.Dist(p); od < d {
			d = od
		}
	}
	return d
}

// DistAlbedo returns the distance to the nearest surface and the albedo of
// the nearest object.
func (s *Scene) DistAlbedo(p geom.Vec3) (float64, float64) {
	d := math.Inf(1)
	a := 0.5
	for _, o := range s.Objects {
		if od := o.Dist(p); od < d {
			d = od
			a = o.Albedo(p)
		}
	}
	return d, a
}

// Normal estimates the outward surface normal at p via central differences
// of the SDF.
func (s *Scene) Normal(p geom.Vec3) geom.Vec3 {
	const h = 1e-4
	dx := s.Dist(p.Add(geom.V3(h, 0, 0))) - s.Dist(p.Sub(geom.V3(h, 0, 0)))
	dy := s.Dist(p.Add(geom.V3(0, h, 0))) - s.Dist(p.Sub(geom.V3(0, h, 0)))
	dz := s.Dist(p.Add(geom.V3(0, 0, h))) - s.Dist(p.Sub(geom.V3(0, 0, h)))
	return geom.V3(dx, dy, dz).Normalized()
}

// LivingRoom builds the procedural living room: a 5×2.6×4 m room (floor at
// y=0) furnished with a sofa, a table with legs, a lamp, shelves and decor
// spheres. Surfaces carry procedural texture so photometric tracking has
// gradients to use.
func LivingRoom() *Scene {
	const (
		roomX = 2.5 // half-width  (x ∈ [-2.5, 2.5])
		roomZ = 2.0 // half-depth  (z ∈ [-2, 2])
		roomH = 2.6 // height      (y ∈ [0, 2.6])
		wall  = 0.1
	)
	s := &Scene{
		BoundsMin: geom.V3(-roomX-wall, -wall, -roomZ-wall),
		BoundsMax: geom.V3(roomX+wall, roomH+wall, roomZ+wall),
	}
	add := func(o Object) { s.Objects = append(s.Objects, o) }

	// Shell: floor (checkered), ceiling, four striped walls.
	add(Checker{
		Box:       Box{Center: geom.V3(0, -wall/2, 0), Half: geom.V3(roomX, wall/2, roomZ), Shade: 0.55},
		CheckSize: 0.5, Shade2: 0.3,
	})
	add(Box{Center: geom.V3(0, roomH+wall/2, 0), Half: geom.V3(roomX, wall/2, roomZ), Shade: 0.85})
	add(Box{Center: geom.V3(-roomX-wall/2, roomH/2, 0), Half: geom.V3(wall/2, roomH/2, roomZ), Shade: 0.7, Stripes: 6})
	add(Box{Center: geom.V3(roomX+wall/2, roomH/2, 0), Half: geom.V3(wall/2, roomH/2, roomZ), Shade: 0.65, Stripes: 5})
	add(Box{Center: geom.V3(0, roomH/2, -roomZ-wall/2), Half: geom.V3(roomX, roomH/2, wall/2), Shade: 0.75, Stripes: 7})
	add(Box{Center: geom.V3(0, roomH/2, roomZ+wall/2), Half: geom.V3(roomX, roomH/2, wall/2), Shade: 0.6, Stripes: 4})

	// Sofa against the -x wall: seat, back, two arms.
	add(Box{Center: geom.V3(-2.0, 0.25, 0), Half: geom.V3(0.45, 0.25, 0.9), Round: 0.03, Shade: 0.35, Stripes: 9})
	add(Box{Center: geom.V3(-2.32, 0.75, 0), Half: geom.V3(0.13, 0.45, 0.9), Round: 0.03, Shade: 0.32, Stripes: 9})
	add(Box{Center: geom.V3(-2.0, 0.62, 0.98), Half: geom.V3(0.45, 0.18, 0.1), Round: 0.03, Shade: 0.3})
	add(Box{Center: geom.V3(-2.0, 0.62, -0.98), Half: geom.V3(0.45, 0.18, 0.1), Round: 0.03, Shade: 0.3})

	// Coffee table: top plus four legs, with a decor sphere and a pot.
	add(Box{Center: geom.V3(0.3, 0.48, 0.1), Half: geom.V3(0.55, 0.03, 0.4), Round: 0.01, Shade: 0.45, Stripes: 14})
	for _, dx := range []float64{-0.48, 0.48} {
		for _, dz := range []float64{-0.33, 0.33} {
			add(CylinderY{Center: geom.V3(0.3+dx, 0.24, 0.1+dz), Radius: 0.035, Half: 0.24, Shade: 0.25})
		}
	}
	add(Sphere{Center: geom.V3(0.12, 0.61, 0.0), Radius: 0.1, Shade: 0.8})
	add(CylinderY{Center: geom.V3(0.62, 0.58, 0.3), Radius: 0.07, Half: 0.07, Shade: 0.5})

	// Floor lamp in the far corner.
	add(CylinderY{Center: geom.V3(1.9, 0.7, -1.5), Radius: 0.03, Half: 0.7, Shade: 0.2})
	add(Sphere{Center: geom.V3(1.9, 1.55, -1.5), Radius: 0.18, Shade: 0.95})

	// Wall shelves on the +x wall.
	add(Box{Center: geom.V3(2.3, 1.2, 0.8), Half: geom.V3(0.15, 0.02, 0.4), Shade: 0.5})
	add(Box{Center: geom.V3(2.3, 1.6, 0.8), Half: geom.V3(0.15, 0.02, 0.4), Shade: 0.5})
	add(Box{Center: geom.V3(2.3, 1.28, 0.65), Half: geom.V3(0.12, 0.06, 0.04), Shade: 0.7})
	add(Box{Center: geom.V3(2.3, 1.3, 0.9), Half: geom.V3(0.12, 0.08, 0.05), Shade: 0.25})

	// Sideboard cabinet near the +z wall.
	add(Box{Center: geom.V3(-0.6, 0.4, 1.7), Half: geom.V3(0.6, 0.4, 0.22), Round: 0.02, Shade: 0.42, Stripes: 11})
	add(Sphere{Center: geom.V3(-0.9, 0.93, 1.7), Radius: 0.12, Shade: 0.15})

	// Wall relief: without 3-D structure on the walls, wall-facing views
	// leave point-to-plane ICP free to slide tangentially (a real failure
	// mode of geometric trackers in empty rooms). Door and window frames,
	// a radiator, a bookcase and pilasters constrain every viewing
	// direction.

	// Door frame on the +z wall.
	add(Box{Center: geom.V3(1.3, 1.0, 1.97), Half: geom.V3(0.06, 1.0, 0.07), Shade: 0.35})
	add(Box{Center: geom.V3(2.1, 1.0, 1.97), Half: geom.V3(0.06, 1.0, 0.07), Shade: 0.35})
	add(Box{Center: geom.V3(1.7, 2.0, 1.97), Half: geom.V3(0.46, 0.06, 0.07), Shade: 0.35})

	// Window frame and sill on the -z wall, with a radiator below.
	add(Box{Center: geom.V3(-0.9, 1.5, -1.97), Half: geom.V3(0.07, 0.55, 0.06), Shade: 0.9})
	add(Box{Center: geom.V3(0.3, 1.5, -1.97), Half: geom.V3(0.07, 0.55, 0.06), Shade: 0.9})
	add(Box{Center: geom.V3(-0.3, 2.02, -1.97), Half: geom.V3(0.67, 0.06, 0.06), Shade: 0.9})
	add(Box{Center: geom.V3(-0.3, 0.98, -1.96), Half: geom.V3(0.67, 0.06, 0.09), Shade: 0.9})
	add(Box{Center: geom.V3(-0.3, 0.45, -1.9), Half: geom.V3(0.5, 0.3, 0.06), Shade: 0.55, Stripes: 40})

	// Bookcase on the -x wall (opposite end from the sofa).
	add(Box{Center: geom.V3(-2.35, 0.9, -1.4), Half: geom.V3(0.15, 0.9, 0.45), Shade: 0.38})
	add(Box{Center: geom.V3(-2.28, 1.45, -1.4), Half: geom.V3(0.1, 0.1, 0.35), Shade: 0.68})
	add(Box{Center: geom.V3(-2.28, 0.95, -1.25), Half: geom.V3(0.1, 0.14, 0.12), Shade: 0.22})
	add(Box{Center: geom.V3(-2.28, 0.5, -1.55), Half: geom.V3(0.1, 0.12, 0.18), Shade: 0.75})

	// Pilasters (vertical ribs) breaking up the long walls.
	add(Box{Center: geom.V3(0.9, 1.3, -1.95), Half: geom.V3(0.09, 1.3, 0.08), Shade: 0.7})
	add(Box{Center: geom.V3(-1.6, 1.3, 1.95), Half: geom.V3(0.09, 1.3, 0.08), Shade: 0.62})
	add(Box{Center: geom.V3(2.44, 1.3, -0.6), Half: geom.V3(0.08, 1.3, 0.09), Shade: 0.66})

	// A potted plant in the -x/-z corner region and a floor box.
	add(CylinderY{Center: geom.V3(-1.7, 0.18, -1.6), Radius: 0.14, Half: 0.18, Shade: 0.3})
	add(Sphere{Center: geom.V3(-1.7, 0.55, -1.6), Radius: 0.22, Shade: 0.45})
	add(Box{Center: geom.V3(1.5, 0.16, 1.2), Half: geom.V3(0.25, 0.16, 0.2), Round: 0.02, Shade: 0.5, Stripes: 16})

	return s
}
