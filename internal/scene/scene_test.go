package scene

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestSphereSDF(t *testing.T) {
	s := Sphere{Center: geom.V3(1, 0, 0), Radius: 0.5, Shade: 0.8}
	if d := s.Dist(geom.V3(1, 0, 0)); math.Abs(d+0.5) > 1e-12 {
		t.Fatalf("center dist = %v, want -0.5", d)
	}
	if d := s.Dist(geom.V3(2, 0, 0)); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("outside dist = %v, want 0.5", d)
	}
	if d := s.Dist(geom.V3(1.5, 0, 0)); math.Abs(d) > 1e-12 {
		t.Fatalf("surface dist = %v, want 0", d)
	}
	if s.Albedo(geom.V3(0, 0, 0)) != 0.8 {
		t.Fatal("albedo wrong")
	}
}

func TestBoxSDF(t *testing.T) {
	b := Box{Center: geom.Vec3{}, Half: geom.V3(1, 1, 1), Shade: 0.5}
	if d := b.Dist(geom.V3(0, 0, 0)); math.Abs(d+1) > 1e-12 {
		t.Fatalf("center = %v, want -1", d)
	}
	if d := b.Dist(geom.V3(2, 0, 0)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("face dist = %v, want 1", d)
	}
	// Corner distance: point (2,2,2) to corner (1,1,1) = √3.
	if d := b.Dist(geom.V3(2, 2, 2)); math.Abs(d-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("corner dist = %v", d)
	}
}

func TestBoxRounding(t *testing.T) {
	sharp := Box{Half: geom.V3(1, 1, 1)}
	round := Box{Half: geom.V3(1, 1, 1), Round: 0.1}
	p := geom.V3(1.5, 0, 0)
	if round.Dist(p) >= sharp.Dist(p) {
		t.Fatal("rounding must inflate the surface")
	}
}

func TestCylinderSDF(t *testing.T) {
	c := CylinderY{Center: geom.Vec3{}, Radius: 0.5, Half: 1, Shade: 0.5}
	if d := c.Dist(geom.V3(1, 0, 0)); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("radial dist = %v", d)
	}
	if d := c.Dist(geom.V3(0, 2, 0)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("axial dist = %v", d)
	}
	if d := c.Dist(geom.V3(0, 0, 0)); d >= 0 {
		t.Fatalf("inside dist = %v, want negative", d)
	}
}

func TestCheckerAlbedoAlternates(t *testing.T) {
	c := Checker{
		Box:       Box{Half: geom.V3(5, 0.1, 5), Shade: 0.6},
		CheckSize: 1, Shade2: 0.2,
	}
	a := c.Albedo(geom.V3(0.5, 0, 0.5))
	b := c.Albedo(geom.V3(1.5, 0, 0.5))
	if a == b {
		t.Fatal("checker does not alternate")
	}
}

func TestStripedAlbedoVaries(t *testing.T) {
	b := Box{Half: geom.V3(1, 1, 1), Shade: 0.5, Stripes: 8}
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		seen[b.Albedo(geom.V3(float64(i)*0.1, 0, 0))] = true
	}
	if len(seen) < 5 {
		t.Fatal("striped albedo should vary across the surface")
	}
}

func TestSceneDistIsMinOfObjects(t *testing.T) {
	s := &Scene{Objects: []Object{
		Sphere{Center: geom.V3(0, 0, 0), Radius: 1, Shade: 0.2},
		Sphere{Center: geom.V3(5, 0, 0), Radius: 1, Shade: 0.9},
	}}
	p := geom.V3(3, 0, 0)
	want := math.Min(p.Norm()-1, p.Sub(geom.V3(5, 0, 0)).Norm()-1)
	if d := s.Dist(p); math.Abs(d-want) > 1e-12 {
		t.Fatalf("scene dist = %v, want %v", d, want)
	}
	d, a := s.DistAlbedo(geom.V3(4.5, 0, 0))
	if a != 0.9 {
		t.Fatalf("nearest albedo = %v (d=%v)", a, d)
	}
}

func TestSceneNormalSphere(t *testing.T) {
	s := &Scene{Objects: []Object{Sphere{Radius: 1, Shade: 0.5}}}
	n := s.Normal(geom.V3(1, 0, 0))
	if n.Sub(geom.V3(1, 0, 0)).Norm() > 1e-3 {
		t.Fatalf("sphere normal = %v", n)
	}
}

// Property: any SDF in the living room is 1-Lipschitz (|d(p)-d(q)| <= |p-q|),
// which sphere tracing depends on for correctness.
func TestLivingRoomLipschitz(t *testing.T) {
	room := LivingRoom()
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := geom.V3(r.Float64()*6-3, r.Float64()*3, r.Float64()*5-2.5)
		q := p.Add(geom.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Scale(0.1))
		dp := room.Dist(p)
		dq := room.Dist(q)
		return math.Abs(dp-dq) <= p.Sub(q).Norm()+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLivingRoomCameraRegionIsFree(t *testing.T) {
	// The trajectory orbits at radius ≈1.0–1.3, height ≈1.1–1.45; that
	// region must be free space with clearance for the camera.
	room := LivingRoom()
	for ang := 0.0; ang < 2*math.Pi; ang += 0.2 {
		for _, r := range []float64{0.8, 1.05, 1.3} {
			for _, h := range []float64{1.05, 1.25, 1.45} {
				p := geom.V3(r*math.Cos(ang), h, r*math.Sin(ang))
				if d := room.Dist(p); d < 0.05 {
					t.Fatalf("camera region blocked at %v (d=%v)", p, d)
				}
			}
		}
	}
}

func TestLivingRoomEnclosed(t *testing.T) {
	room := LivingRoom()
	// Rays from the center must hit something within the room bounds in
	// every direction (the room is a closed box).
	rng := rand.New(rand.NewSource(4))
	origin := geom.V3(0, 1.3, 0)
	for i := 0; i < 50; i++ {
		dir := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
		t0 := 0.0
		hit := false
		for step := 0; step < 200; step++ {
			p := origin.Add(dir.Scale(t0))
			d := room.Dist(p)
			if d < 1e-3 {
				hit = true
				break
			}
			t0 += d
			if t0 > 20 {
				break
			}
		}
		if !hit {
			t.Fatalf("ray %v escaped the room", dir)
		}
	}
}

func TestLivingRoomBounds(t *testing.T) {
	room := LivingRoom()
	if room.BoundsMin.X >= room.BoundsMax.X ||
		room.BoundsMin.Y >= room.BoundsMax.Y ||
		room.BoundsMin.Z >= room.BoundsMax.Z {
		t.Fatal("degenerate bounds")
	}
}

func BenchmarkLivingRoomDist(b *testing.B) {
	room := LivingRoom()
	p := geom.V3(0.3, 1.2, 0.4)
	for i := 0; i < b.N; i++ {
		_ = room.Dist(p)
	}
}
