package experiments

import (
	"io"
	"math"

	"repro/internal/device"
	"repro/internal/slambench"
)

// Fig1Result is the KFusion runtime response surface of Figure 1: modeled
// frame runtime (ms) on the ODROID-XU3 over µ × icp-threshold with every
// other parameter at its default.
type Fig1Result struct {
	MuValues  []float64
	ICPValues []float64
	// RuntimeMs[i][j] is the frame runtime at MuValues[i], ICPValues[j].
	RuntimeMs [][]float64
	// MaxATE[i][j] is the corresponding accuracy (not plotted in the
	// paper's figure but recorded for inspection).
	MaxATE [][]float64
}

// Fig1 sweeps the µ × icp-threshold plane (Fig. 1: "non-convex, multi-modal
// and non-smooth runtime response surface").
func Fig1(opts Options) (*Fig1Result, error) {
	opts = opts.withDefaults()
	ds := slambench.CachedDataset(opts.datasetScale())
	bench := slambench.NewKFusionBench(ds)
	dev := device.ODROIDXU3()

	var mus, icps []float64
	switch opts.Scale {
	case ScaleTest:
		mus = []float64{0.05, 0.2, 0.4}
		icps = []float64{1e-6, 1e-3, 1}
	case ScaleFull:
		mus = linspace(0.025, 0.5, 12)
		icps = logspace(1e-7, 1e2, 12)
	default:
		mus = linspace(0.025, 0.5, 6)
		icps = logspace(1e-6, 1e1, 6)
	}

	res := &Fig1Result{MuValues: mus, ICPValues: icps}
	def := bench.DefaultConfig()
	space := bench.Space()
	for _, mu := range mus {
		rtRow := make([]float64, len(icps))
		ateRow := make([]float64, len(icps))
		for j, icp := range icps {
			cfg := def.Clone()
			cfg[space.IndexOfName(slambench.KFMu)] = mu
			cfg[space.IndexOfName(slambench.KFICPThresh)] = icp
			m, err := bench.Evaluate(cfg, dev)
			if err != nil {
				return nil, err
			}
			rtRow[j] = m.SecPerFrame * 1e3
			ateRow[j] = m.MaxATE
		}
		res.RuntimeMs = append(res.RuntimeMs, rtRow)
		res.MaxATE = append(res.MaxATE, ateRow)
		opts.logf("fig1: mu=%.3f done", mu)
	}

	rows := make([][]string, 0, len(mus)*len(icps))
	for i, mu := range mus {
		for j, icp := range icps {
			rows = append(rows, []string{f2s(mu), f2s(icp),
				f2s(res.RuntimeMs[i][j]), f2s(res.MaxATE[i][j])})
		}
	}
	if err := opts.writeCSV("fig1_response_surface.csv",
		[]string{"mu_m", "icp_threshold", "frame_runtime_ms", "max_ate_m"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the surface as a value grid (µ rows × threshold columns).
func (r *Fig1Result) Render(w io.Writer) {
	fprintfIgnore(w, "Fig. 1 — KFusion frame runtime (ms) on ODROID-XU3, mu × icp-threshold\n")
	fprintfIgnore(w, "%10s", "mu\\icp")
	for _, icp := range r.ICPValues {
		fprintfIgnore(w, " %9.1e", icp)
	}
	fprintfIgnore(w, "\n")
	for i, mu := range r.MuValues {
		fprintfIgnore(w, "%10.3f", mu)
		for j := range r.ICPValues {
			fprintfIgnore(w, " %9.1f", r.RuntimeMs[i][j])
		}
		fprintfIgnore(w, "\n")
	}
}

// IsNonTrivial reports whether the surface shows real runtime variation in
// both axes (the property Fig. 1 illustrates).
func (r *Fig1Result) IsNonTrivial() bool {
	return r.rangeOverRows() > 1.05 && r.rangeOverCols() > 1.05
}

func (r *Fig1Result) rangeOverRows() float64 {
	worst := 1.0
	for _, row := range r.RuntimeMs {
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo > 0 && hi/lo > worst {
			worst = hi / lo
		}
	}
	return worst
}

func (r *Fig1Result) rangeOverCols() float64 {
	worst := 1.0
	for j := range r.ICPValues {
		lo, hi := r.RuntimeMs[0][j], r.RuntimeMs[0][j]
		for i := range r.MuValues {
			v := r.RuntimeMs[i][j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo > 0 && hi/lo > worst {
			worst = hi / lo
		}
	}
	return worst
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
