package experiments

import (
	"fmt"
	"io"

	"repro/internal/param"
	"repro/internal/pareto"
	"repro/internal/slambench"
)

// Table1Row is one row of Table I: an ElasticFusion configuration with its
// measured error and runtime.
type Table1Row struct {
	Label      string
	ErrorM     float64 // mean ATE (Table I "Error (m)")
	RuntimeS   float64 // total seconds over the nominal sequence
	ICP        float64
	Depth      float64
	Confidence float64
	SO3        int
	CloseLoops int // the paper's "Close-Loops" column (open-loop flag)
	Reloc      int
	FastOdom   int
	FTFRGB     int
}

// Table1Result is the reproduced Table I: the default configuration plus
// Pareto-efficiency points from the ElasticFusion exploration on the
// GTX 780 Ti.
type Table1Result struct {
	Rows []Table1Row
	// SpeedupBestSpeed is default/best-speed runtime (paper: 1.52×).
	SpeedupBestSpeed float64
	// AccuracyGain is default/best-accuracy error (paper: 2.07×).
	AccuracyGain float64
	// SpeedupBestAccuracy is the speedup of the best-accuracy row
	// (paper: 1.25–1.29×).
	SpeedupBestAccuracy float64
}

// Table1 reruns (or reuses) the Figure 4 exploration and formats the Pareto
// efficiency points as the paper's Table I.
func Table1(opts Options, dse *DSEResult) (*Table1Result, error) {
	opts = opts.withDefaults()
	if dse == nil {
		var err error
		dse, err = Fig4(opts)
		if err != nil {
			return nil, err
		}
	}
	bench := slambench.NewElasticFusionBench(slambench.CachedDataset(opts.datasetScale()))
	space := bench.Space()

	res := &Table1Result{}
	defM := dse.DefaultMetrics
	res.Rows = append(res.Rows, rowFrom("Default", bench, space, bench.DefaultConfig(),
		defM.MeanATE, defM.TotalSeconds))

	// Select up to 4 front rows: fastest, most accurate, and two evenly
	// spaced knees (the paper lists exactly this set). Only configurations
	// in the usable-accuracy band qualify — every Table I row of the paper
	// has error at or below ~the validity limit; the raw front's ultra-fast
	// garbage-accuracy extreme is not a deployable configuration.
	var front []pareto.Point
	for _, p := range dse.Run.Front {
		if p.Objs[1] < slambench.AccuracyLimit {
			front = append(front, p)
		}
	}
	picks := pickFrontRows(len(front), 4)
	for i, fi := range picks {
		p := front[fi]
		s, ok := dse.Run.ByIndex(p.ID)
		if !ok {
			continue
		}
		label := ""
		switch {
		case i == 0:
			label = "Best speed"
		case fi == picks[len(picks)-1] && i == len(picks)-1:
			label = "Best accuracy"
		}
		res.Rows = append(res.Rows, rowFrom(label, bench, space, s.Config,
			p.Objs[1], p.Objs[0]*slambench.NominalFrames))
	}

	if len(res.Rows) > 1 {
		def := res.Rows[0]
		best := res.Rows[1]
		last := res.Rows[len(res.Rows)-1]
		if best.RuntimeS > 0 {
			res.SpeedupBestSpeed = def.RuntimeS / best.RuntimeS
		}
		if last.ErrorM > 0 {
			res.AccuracyGain = def.ErrorM / last.ErrorM
		}
		if last.RuntimeS > 0 {
			res.SpeedupBestAccuracy = def.RuntimeS / last.RuntimeS
		}
	}

	rows := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = []string{r.Label, f2s(r.ErrorM), f2s(r.RuntimeS),
			f2s(r.ICP), f2s(r.Depth), f2s(r.Confidence),
			fmt.Sprintf("%d", r.SO3), fmt.Sprintf("%d", r.CloseLoops),
			fmt.Sprintf("%d", r.Reloc), fmt.Sprintf("%d", r.FastOdom),
			fmt.Sprintf("%d", r.FTFRGB)}
	}
	if err := opts.writeCSV("table1_elasticfusion_pareto.csv",
		[]string{"label", "error_m", "runtime_s", "icp", "depth", "confidence",
			"so3", "close_loops", "reloc", "fast_odom", "ftf_rgb"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}

// pickFrontRows selects up to n indices across a front of size frontLen:
// always the two extremes, plus evenly spaced interior points.
func pickFrontRows(frontLen, n int) []int {
	if frontLen == 0 {
		return nil
	}
	if frontLen <= n {
		out := make([]int, frontLen)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i*(frontLen-1)/(n-1))
	}
	// De-duplicate (possible for tiny fronts).
	uniq := out[:0]
	seen := map[int]bool{}
	for _, v := range out {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	return uniq
}

func rowFrom(label string, bench *slambench.ElasticFusionBench, space *param.Space, cfg param.Config, errM, runtimeS float64) Table1Row {
	ec := bench.ToConfig(cfg)
	return Table1Row{
		Label:      label,
		ErrorM:     errM,
		RuntimeS:   runtimeS,
		ICP:        ec.ICPWeight,
		Depth:      ec.DepthCutoff,
		Confidence: ec.Confidence,
		SO3:        b2i(ec.SO3),
		CloseLoops: b2i(ec.OpenLoop),
		Reloc:      b2i(ec.Reloc),
		FastOdom:   b2i(ec.FastOdom),
		FTFRGB:     b2i(ec.FrameToFrameRGB),
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Render prints the table in the paper's column layout.
func (t *Table1Result) Render(w io.Writer) {
	fprintfIgnore(w, "Table I — ElasticFusion Pareto efficiency points (GTX 780 Ti)\n")
	fprintfIgnore(w, "%-14s %-9s %-10s %5s %6s %11s %4s %11s %6s %9s %7s\n",
		"", "Error(m)", "Runtime(s)", "ICP", "Depth", "Confidence", "SO3", "Close-Loops", "Reloc", "Fast-Odom", "FTF-RGB")
	for _, r := range t.Rows {
		fprintfIgnore(w, "%-14s %-9.4f %-10.1f %5.1f %6.1f %11.1f %4d %11d %6d %9d %7d\n",
			r.Label, r.ErrorM, r.RuntimeS, r.ICP, r.Depth, r.Confidence,
			r.SO3, r.CloseLoops, r.Reloc, r.FastOdom, r.FTFRGB)
	}
	fprintfIgnore(w, "best-speed speedup %.2fx (paper 1.52x); accuracy gain %.2fx (paper 2.07x); best-accuracy speedup %.2fx (paper 1.29x)\n",
		t.SpeedupBestSpeed, t.AccuracyGain, t.SpeedupBestAccuracy)
}
