// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV): the Fig. 1 response surface, the Fig. 3/4
// design-space explorations, the Fig. 5 crowd-sourcing study, Table I, and
// the §IV-D cross-device transfer analysis. Each generator returns a
// structured result and can write CSV files and ASCII plots.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/journal"
)

// randFor returns a deterministic RNG for the given seed.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Scale selects the experiment budget.
type Scale string

const (
	// ScaleTest is a minutes-free budget for unit tests.
	ScaleTest Scale = "test"
	// ScaleQuick regenerates figure shapes in minutes (default).
	ScaleQuick Scale = "quick"
	// ScaleFull approximates the paper's sample budgets (hours).
	ScaleFull Scale = "full"
)

// Options configures a generator run.
type Options struct {
	// Scale selects the budget (default ScaleQuick).
	Scale Scale
	// OutDir, when non-empty, receives CSV outputs.
	OutDir string
	// Seed drives all sampling.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Caches, when non-nil, shares evaluation memo-caches across the
	// generators of one process, keyed per (benchmark, platform) pair so
	// different evaluators never mix. Re-running an exploration (e.g.
	// Fig5 without a precomputed Fig3 result) then skips re-measurement.
	Caches map[string]*core.EvalCache
	// BackendFor, when non-nil, supplies a remote evaluation backend for
	// the given benchmark × platform problem (named "bench/platform",
	// matching the catalog) — e.g. worker.Pool.Backend over a fleet of
	// hypermapper-worker daemons, which is exactly the paper's Fig. 5
	// many-machines setup. Returning nil falls back to in-process
	// evaluation for that problem; seeded results are identical either
	// way.
	BackendFor func(benchmark, platform string) core.Backend
}

// cacheFor returns the shared cache for one (benchmark, platform) pair,
// or nil when cache sharing is disabled.
func (o Options) cacheFor(bench, platform string) *core.EvalCache {
	if o.Caches == nil {
		return nil
	}
	key := bench + "/" + platform
	c, ok := o.Caches[key]
	if !ok {
		c = core.NewEvalCache()
		o.Caches[key] = c
	}
	return c
}

func (o Options) withDefaults() Options {
	if o.Scale == "" {
		o.Scale = ScaleQuick
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// datasetScale maps the experiment scale to the dataset cache key: the
// quick scale explores the halved sequence (as the paper itself does for
// DSE, §III-A); the full scale uses the reference dataset.
func (o Options) datasetScale() string {
	switch o.Scale {
	case ScaleTest:
		return "test"
	case ScaleFull:
		return "full"
	default:
		return "dse"
	}
}

// dseBudget returns HyperMapper options for the scale (§IV-C: 3,000 random
// samples and ≈6 AL iterations of 100–300 evaluations for KFusion; 2,400 +
// 999 for ElasticFusion).
func (o Options) dseBudget(ef bool) core.Options {
	var opts core.Options
	switch o.Scale {
	case ScaleTest:
		opts = core.Options{RandomSamples: 16, MaxIterations: 1, MaxBatch: 8, PoolCap: 2000}
	case ScaleFull:
		if ef {
			opts = core.Options{RandomSamples: 2400, MaxIterations: 6, MaxBatch: 300, PoolCap: 442368}
		} else {
			opts = core.Options{RandomSamples: 3000, MaxIterations: 6, MaxBatch: 300, PoolCap: 400000}
		}
	default: // quick
		if ef {
			opts = core.Options{RandomSamples: 120, MaxIterations: 3, MaxBatch: 60, PoolCap: 60000}
		} else {
			opts = core.Options{RandomSamples: 120, MaxIterations: 3, MaxBatch: 60, PoolCap: 60000}
		}
	}
	opts.Objectives = 2
	opts.Seed = o.Seed
	opts.Forest = forest.Options{Trees: 24}
	opts.Logf = o.Logf
	return opts
}

// writeCSV writes rows to OutDir/name atomically, creating the directory
// as needed. It is a no-op when OutDir is empty.
func (o Options) writeCSV(name string, header []string, rows [][]string) error {
	if o.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return err
	}
	return journal.WriteFileAtomic(filepath.Join(o.OutDir, name), func(out io.Writer) error {
		w := csv.NewWriter(out)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	})
}

func f2s(v float64) string { return fmt.Sprintf("%g", v) }

// fprintfIgnore writes formatted output, ignoring errors (terminal
// rendering only).
func fprintfIgnore(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}
