package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testOpts(t *testing.T) Options {
	t.Helper()
	return Options{Scale: ScaleTest, Seed: 1, OutDir: t.TempDir()}
}

func TestFig1TestScale(t *testing.T) {
	opts := testOpts(t)
	res, err := Fig1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MuValues) != 3 || len(res.ICPValues) != 3 {
		t.Fatalf("grid %dx%d", len(res.MuValues), len(res.ICPValues))
	}
	if len(res.RuntimeMs) != 3 || len(res.RuntimeMs[0]) != 3 {
		t.Fatal("surface shape wrong")
	}
	for i := range res.RuntimeMs {
		for j := range res.RuntimeMs[i] {
			if res.RuntimeMs[i][j] <= 0 {
				t.Fatalf("runtime[%d][%d] = %v", i, j, res.RuntimeMs[i][j])
			}
		}
	}
	// Fig. 1's whole point: the surface varies in both axes.
	if !res.IsNonTrivial() {
		t.Fatal("response surface is flat — µ and icp-threshold have no effect")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 1") {
		t.Fatal("render missing title")
	}
	assertCSV(t, opts.OutDir, "fig1_response_surface.csv")
}

func TestFig3TestScale(t *testing.T) {
	opts := testOpts(t)
	res, err := Fig3(opts, "ODROID-XU3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "kfusion" || res.Platform != "ODROID-XU3" {
		t.Fatalf("identity: %s/%s", res.Benchmark, res.Platform)
	}
	if res.FrontSize == 0 {
		t.Fatal("empty front")
	}
	if res.DefaultRuntime <= 0 || res.DefaultAccuracy <= 0 {
		t.Fatal("default point missing")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "kfusion on ODROID-XU3") {
		t.Fatalf("render:\n%s", buf.String())
	}
	assertCSV(t, opts.OutDir, "fig3a_kfusion_ODROID-XU3_samples.csv")
	assertCSV(t, opts.OutDir, "fig3a_kfusion_ODROID-XU3_front.csv")
}

func TestFig3UnknownPlatform(t *testing.T) {
	if _, err := Fig3(testOpts(t), "nope"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestFig4AndTable1TestScale(t *testing.T) {
	opts := testOpts(t)
	res, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "elasticfusion" {
		t.Fatal("wrong benchmark")
	}
	tab, err := Table1(opts, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("table has %d rows", len(tab.Rows))
	}
	if tab.Rows[0].Label != "Default" {
		t.Fatal("first row must be the default")
	}
	if tab.Rows[0].ICP != 10 || tab.Rows[0].Depth != 3 || tab.Rows[0].Confidence != 10 {
		t.Fatalf("default row wrong: %+v", tab.Rows[0])
	}
	// Front rows must be sorted by runtime ascending (front ordering).
	for i := 2; i < len(tab.Rows); i++ {
		if tab.Rows[i].RuntimeS < tab.Rows[i-1].RuntimeS {
			t.Fatal("front rows out of order")
		}
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("render missing title")
	}
	assertCSV(t, opts.OutDir, "table1_elasticfusion_pareto.csv")
}

func TestFig5TestScale(t *testing.T) {
	opts := testOpts(t)
	res, err := Fig5(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Speedups) != 12 { // test scale uses 12 devices
		t.Fatalf("%d devices", len(res.Speedups))
	}
	for i := 1; i < len(res.Speedups); i++ {
		if res.Speedups[i] < res.Speedups[i-1] {
			t.Fatal("speedups not sorted")
		}
	}
	if res.MinSpeedup <= 0 || res.MaxSpeedup < res.MinSpeedup {
		t.Fatalf("speedup range [%v, %v]", res.MinSpeedup, res.MaxSpeedup)
	}
	// §IV-D: strong rank correlation across similar (ARM) devices.
	if res.SpearmanToODROID < 0.5 {
		t.Fatalf("Spearman %v too weak — transfer argument broken", res.SpearmanToODROID)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Fatal("render missing title")
	}
	assertCSV(t, opts.OutDir, "fig5_crowdsourcing.csv")
}

func TestPickFrontRows(t *testing.T) {
	if got := pickFrontRows(0, 4); got != nil {
		t.Fatalf("empty front: %v", got)
	}
	if got := pickFrontRows(3, 4); len(got) != 3 {
		t.Fatalf("small front: %v", got)
	}
	got := pickFrontRows(100, 4)
	if len(got) != 4 || got[0] != 0 || got[3] != 99 {
		t.Fatalf("extremes not kept: %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != ScaleQuick || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if (Options{Scale: ScaleTest}).withDefaults().datasetScale() != "test" {
		t.Fatal("test scale should use the test dataset")
	}
	if (Options{Scale: ScaleQuick}).withDefaults().datasetScale() != "dse" {
		t.Fatal("quick scale should use the halved DSE dataset")
	}
	if (Options{Scale: ScaleFull}).withDefaults().datasetScale() != "full" {
		t.Fatal("full scale should use the reference dataset")
	}
}

func TestDSEBudgetScaling(t *testing.T) {
	full := (Options{Scale: ScaleFull}).withDefaults().dseBudget(false)
	if full.RandomSamples != 3000 || full.MaxIterations != 6 || full.MaxBatch != 300 {
		t.Fatalf("full KF budget: %+v", full)
	}
	fullEF := (Options{Scale: ScaleFull}).withDefaults().dseBudget(true)
	if fullEF.RandomSamples != 2400 {
		t.Fatalf("full EF budget: %+v", fullEF)
	}
	testB := (Options{Scale: ScaleTest}).withDefaults().dseBudget(false)
	if testB.RandomSamples >= 100 {
		t.Fatalf("test budget too large: %+v", testB)
	}
}

func TestWriteCSVNoDir(t *testing.T) {
	o := Options{} // no OutDir: writes are no-ops
	if err := o.writeCSV("x.csv", []string{"a"}, nil); err != nil {
		t.Fatal(err)
	}
}

func assertCSV(t *testing.T, dir, name string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("missing CSV %s: %v", name, err)
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
		t.Fatalf("CSV %s has no data rows", name)
	}
}
