package experiments

import (
	"cmp"
	"fmt"
	"io"
	"slices"

	"repro/internal/device"
	"repro/internal/plot"
	"repro/internal/slambench"
	"repro/internal/stats"
)

// Fig5Result is the crowd-sourcing study of Figure 5: the speedup of the
// ODROID-Pareto best-runtime configuration over the default configuration
// on each of the 83 market devices, plus the §IV-D cross-device transfer
// correlations.
type Fig5Result struct {
	Devices  []string
	SoCs     []string
	Speedups []float64 // sorted ascending, aligned with Devices

	MinSpeedup, MaxSpeedup, MedianSpeedup float64

	// PearsonToODROID and SpearmanToODROID are the correlations between
	// per-configuration runtimes on the ODROID and on each market device,
	// averaged over the population — the zero-shot-transfer argument of
	// §IV-D (Roy et al. [43]).
	PearsonToODROID  float64
	SpearmanToODROID float64
}

// Fig5 reproduces the crowd-sourcing experiment. If dse is non-nil its
// best-valid-speed configuration is deployed; otherwise a Fig. 3a
// exploration runs first at the same scale.
func Fig5(opts Options, dse *DSEResult) (*Fig5Result, error) {
	opts = opts.withDefaults()
	if dse == nil {
		var err error
		dse, err = Fig3(opts, "ODROID-XU3")
		if err != nil {
			return nil, err
		}
	}
	bench := slambench.NewKFusionBench(slambench.CachedDataset(opts.datasetScale()))
	space := bench.Space()

	best := dse.BestValidSpeed
	if best == nil {
		// Fall back to the fastest front point when nothing met the
		// accuracy limit at this scale.
		if s, ok := dse.Run.ByIndex(dse.BestSpeed.Index); ok {
			best = &s
		} else {
			return nil, fmt.Errorf("experiments: exploration produced no deployable configuration")
		}
	}
	bestCfg := space.AtIndex(best.Index)
	defCfg := bench.DefaultConfig()

	// The SLAM pipelines are device-independent: run each configuration
	// once and re-price the counted work per device.
	bestM, err := bench.Evaluate(bestCfg, device.ODROIDXU3())
	if err != nil {
		return nil, err
	}
	defM, err := bench.Evaluate(defCfg, device.ODROIDXU3())
	if err != nil {
		return nil, err
	}

	n := 83
	if opts.Scale == ScaleTest {
		n = 12
	}
	devices := device.MarketDevices(n, opts.Seed)
	res := &Fig5Result{}
	frames := float64(bestM.Frames)
	for _, d := range devices {
		sBest := d.SecondsPerFrame(bestM.Work, frames)
		sDef := d.SecondsPerFrame(defM.Work, frames)
		res.Devices = append(res.Devices, d.Name)
		res.SoCs = append(res.SoCs, d.SoC)
		res.Speedups = append(res.Speedups, sDef/sBest)
	}
	// Sort ascending by speedup (the paper's bar chart ordering).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(res.Speedups[a], res.Speedups[b]) })
	res.Devices = permuteS(res.Devices, idx)
	res.SoCs = permuteS(res.SoCs, idx)
	res.Speedups = permuteF(res.Speedups, idx)

	res.MinSpeedup = res.Speedups[0]
	res.MaxSpeedup = res.Speedups[len(res.Speedups)-1]
	res.MedianSpeedup, _ = stats.Median(res.Speedups)

	// Transfer analysis: runtime of a probe set of configurations on the
	// ODROID vs each market device.
	probes := probeConfigs(bench, opts)
	odroidRt := make([]float64, len(probes))
	for i, pm := range probes {
		odroidRt[i] = device.ODROIDXU3().SecondsPerFrame(pm.Work, float64(pm.Frames))
	}
	var sumP, sumS float64
	for _, d := range devices {
		rt := make([]float64, len(probes))
		for i, pm := range probes {
			rt[i] = d.SecondsPerFrame(pm.Work, float64(pm.Frames))
		}
		p, err := stats.Pearson(odroidRt, rt)
		if err != nil {
			return nil, err
		}
		s, err := stats.Spearman(odroidRt, rt)
		if err != nil {
			return nil, err
		}
		sumP += p
		sumS += s
	}
	res.PearsonToODROID = sumP / float64(len(devices))
	res.SpearmanToODROID = sumS / float64(len(devices))

	rows := make([][]string, len(res.Devices))
	for i := range res.Devices {
		rows[i] = []string{res.Devices[i], res.SoCs[i], f2s(res.Speedups[i])}
	}
	if err := opts.writeCSV("fig5_crowdsourcing.csv",
		[]string{"device", "soc", "speedup_vs_default"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}

// probeConfigs evaluates a small spread of configurations once (on the
// simulator) for the transfer-correlation analysis.
func probeConfigs(bench *slambench.KFusionBench, opts Options) []slambench.Metrics {
	space := bench.Space()
	n := 10
	if opts.Scale == ScaleTest {
		n = 4
	}
	idxs := space.SampleIndices(randFor(opts.Seed+77), n)
	var out []slambench.Metrics
	for _, idx := range idxs {
		m, err := bench.Evaluate(space.AtIndex(idx), device.ODROIDXU3())
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	return out
}

// Render draws the sorted speedup bars and the headline statistics.
func (r *Fig5Result) Render(w io.Writer) {
	// Histogram-style summary first (83 bars overflow a terminal).
	counts := stats.Histogram(r.Speedups, 0, 14, 14)
	plot.Histogram(w, fmt.Sprintf(
		"Fig. 5 — speedup of the ODROID-Pareto best config vs default on %d market devices",
		len(r.Devices)), 0, 14, counts, 40)
	fprintfIgnore(w, "speedup: min %.2fx, median %.2fx, max %.2fx\n",
		r.MinSpeedup, r.MedianSpeedup, r.MaxSpeedup)
	fprintfIgnore(w, "transfer correlation to ODROID: Pearson %.3f, Spearman %.3f\n",
		r.PearsonToODROID, r.SpearmanToODROID)
}

func permuteS(in []string, idx []int) []string {
	out := make([]string, len(in))
	for i, j := range idx {
		out[i] = in[j]
	}
	return out
}

func permuteF(in []float64, idx []int) []float64 {
	out := make([]float64, len(in))
	for i, j := range idx {
		out[i] = in[j]
	}
	return out
}
