package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/plot"
	"repro/internal/slambench"
)

// DSEResult is one design-space exploration (the content of one Fig. 3/4
// panel): the random-sampling baseline, the active-learning result, and the
// default-configuration reference point.
type DSEResult struct {
	Benchmark string
	Platform  string

	Run *core.Result

	// DefaultRuntime/DefaultAccuracy locate the expert default.
	DefaultRuntime  float64
	DefaultAccuracy float64
	DefaultMetrics  slambench.Metrics

	// ValidRandom and ValidAL count configurations under the 5 cm
	// accuracy limit found by each phase (§IV-C: 333 random vs 642 new AL
	// points on the ODROID).
	ValidRandom int
	ValidAL     int

	// FrontSize is the number of measured Pareto points (§IV-C: 36 on the
	// ODROID, 167 on the ASUS).
	FrontSize int

	// BestSpeed and BestAccuracy are the front extremes; BestValidSpeed
	// is the fastest configuration under the accuracy limit (the §IV-B
	// "29.09 FPS within 4.47 cm" claim and the crowd-sourcing config).
	BestSpeed      core.Sample
	BestAccuracy   core.Sample
	BestValidSpeed *core.Sample

	// SpeedupVsDefault is DefaultRuntime / BestValidSpeed runtime (§IV-C:
	// 6.35× on the ODROID; 1.52× for ElasticFusion on the GTX).
	SpeedupVsDefault float64
	// AccuracyGainVsDefault is DefaultAccuracy / BestAccuracy accuracy
	// (Table I: 2.07× for ElasticFusion).
	AccuracyGainVsDefault float64

	// CacheHits/CacheMisses report evaluator memo-cache traffic when the
	// exploration ran with a shared cache (both zero otherwise).
	CacheHits   int
	CacheMisses int

	// FitTime/EncodeTime/PredictTime/EvalTime total the engine's per-phase
	// wall-clock over the whole exploration (bootstrap included), splitting
	// optimizer-side compute from hardware evaluation.
	FitTime     time.Duration
	EncodeTime  time.Duration
	PredictTime time.Duration
	EvalTime    time.Duration
}

// runDSE executes one exploration and derives the figure statistics.
func runDSE(opts Options, bench slambench.Benchmark, dev device.Model) (*DSEResult, error) {
	opts = opts.withDefaults()
	space := bench.Space()
	eval := slambench.Evaluator(bench, dev, slambench.RuntimeAccuracy)

	budget := opts.dseBudget(bench.Name() == "elasticfusion")
	budget.Cache = opts.cacheFor(bench.Name(), dev.Name)
	if opts.BackendFor != nil {
		budget.Backend = opts.BackendFor(bench.Name(), dev.Name)
	}
	// Collect per-phase timings over every event, bootstrap included (the
	// bootstrap stats are streamed but not recorded in Result.Iterations).
	var fitT, encT, predT, evalT time.Duration
	budget.OnIteration = func(s core.IterationStats) {
		fitT += s.FitTime
		encT += s.EncodeTime
		predT += s.PredictTime
		evalT += s.EvalTime
	}
	run, err := core.Run(space, eval, budget)
	if err != nil {
		return nil, err
	}

	defM, err := bench.Evaluate(bench.DefaultConfig(), dev)
	if err != nil {
		return nil, err
	}

	res := &DSEResult{
		Benchmark:       bench.Name(),
		Platform:        dev.Name,
		Run:             run,
		DefaultMetrics:  defM,
		DefaultRuntime:  defM.SecPerFrame,
		DefaultAccuracy: bench.Accuracy(defM),
		FrontSize:       len(run.Front),
		CacheHits:       run.CacheHits,
		CacheMisses:     run.CacheMisses,
		FitTime:         fitT,
		EncodeTime:      encT,
		PredictTime:     predT,
		EvalTime:        evalT,
	}
	for _, s := range run.Samples {
		if s.Objs[1] < slambench.AccuracyLimit {
			if s.ActiveLearning {
				res.ValidAL++
			} else {
				res.ValidRandom++
			}
		}
	}
	if best, ok := pareto.BestBy(run.Front, 0); ok {
		if s, found := run.ByIndex(best.ID); found {
			res.BestSpeed = s
		}
	}
	if best, ok := pareto.BestBy(run.Front, 1); ok {
		if s, found := run.ByIndex(best.ID); found {
			res.BestAccuracy = s
		}
	}
	if best, ok := pareto.BestUnderConstraint(run.Front, 0, 1, slambench.AccuracyLimit); ok {
		if s, found := run.ByIndex(best.ID); found {
			res.BestValidSpeed = &s
			res.SpeedupVsDefault = res.DefaultRuntime / s.Objs[0]
		}
	}
	if len(res.BestAccuracy.Objs) > 0 && res.BestAccuracy.Objs[1] > 0 {
		res.AccuracyGainVsDefault = res.DefaultAccuracy / res.BestAccuracy.Objs[1]
	}
	return res, nil
}

// writeDSE dumps the exploration samples and front to CSV.
func writeDSE(opts Options, name string, res *DSEResult) error {
	var rows [][]string
	for _, s := range res.Run.Samples {
		phase := "random"
		if s.ActiveLearning {
			phase = "active-learning"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Index), phase,
			fmt.Sprintf("%d", s.Iteration),
			f2s(s.Objs[0]), f2s(s.Objs[1]),
		})
	}
	if err := opts.writeCSV(name+"_samples.csv",
		[]string{"config_index", "phase", "iteration", "runtime_s_per_frame", "accuracy_ate_m"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	space := (res.Run.Samples)[0].Config
	_ = space
	for _, p := range res.Run.Front {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.ID), f2s(p.Objs[0]), f2s(p.Objs[1]),
		})
	}
	return opts.writeCSV(name+"_front.csv",
		[]string{"config_index", "runtime_s_per_frame", "accuracy_ate_m"}, rows)
}

// Render draws the Fig. 3/4-style scatter: random samples, active-learning
// samples, front, and the default configuration.
func (r *DSEResult) Render(w io.Writer) {
	var rndX, rndY, alX, alY []float64
	for _, s := range r.Run.Samples {
		// Clip to the plot window the paper uses (accuracy < 2× limit)
		// so the catastrophic configurations do not flatten the band.
		if s.Objs[1] > 2*slambench.AccuracyLimit {
			continue
		}
		if s.ActiveLearning {
			alX = append(alX, s.Objs[0])
			alY = append(alY, s.Objs[1])
		} else {
			rndX = append(rndX, s.Objs[0])
			rndY = append(rndY, s.Objs[1])
		}
	}
	var frontX, frontY []float64
	for _, p := range r.Run.Front {
		if p.Objs[1] > 2*slambench.AccuracyLimit {
			continue
		}
		frontX = append(frontX, p.Objs[0])
		frontY = append(frontY, p.Objs[1])
	}
	plot.Scatter(w, fmt.Sprintf("%s on %s — random (r) vs active learning (a), front (#), default (D)",
		r.Benchmark, r.Platform),
		[]plot.Series{
			{Name: "random sampling", Marker: 'r', X: rndX, Y: rndY},
			{Name: "active learning", Marker: 'a', X: alX, Y: alY},
			{Name: "pareto front", Marker: '#', X: frontX, Y: frontY},
			{Name: "default", Marker: 'D', X: []float64{r.DefaultRuntime}, Y: []float64{r.DefaultAccuracy}},
		}, 68, 20, "runtime (s/frame)", "ATE (m)")
	fprintfIgnore(w, "valid configs (<%.2gm): random %d, active-learning %d; front size %d\n",
		slambench.AccuracyLimit, r.ValidRandom, r.ValidAL, r.FrontSize)
	if r.CacheHits+r.CacheMisses > 0 {
		fprintfIgnore(w, "evaluation cache: %d hits, %d misses\n", r.CacheHits, r.CacheMisses)
	}
	if total := r.FitTime + r.EncodeTime + r.PredictTime + r.EvalTime; total > 0 {
		fprintfIgnore(w, "time: fit %v, encode %v, predict %v, evaluate %v\n",
			r.FitTime.Round(time.Millisecond), r.EncodeTime.Round(time.Millisecond),
			r.PredictTime.Round(time.Millisecond), r.EvalTime.Round(time.Millisecond))
	}
	if r.BestValidSpeed != nil {
		fprintfIgnore(w, "default %.3fs/frame -> best valid %.3fs/frame: speedup %.2fx (accuracy %.4fm)\n",
			r.DefaultRuntime, r.BestValidSpeed.Objs[0], r.SpeedupVsDefault, r.BestValidSpeed.Objs[1])
	}
	if len(r.BestAccuracy.Objs) > 0 {
		fprintfIgnore(w, "best accuracy %.4fm vs default %.4fm: gain %.2fx\n",
			r.BestAccuracy.Objs[1], r.DefaultAccuracy, r.AccuracyGainVsDefault)
	}
}

// Fig3 runs the KFusion exploration of Figure 3 on the named platform
// ("ODROID-XU3" for 3a, "ASUS-T200TA" for 3b).
func Fig3(opts Options, platform string) (*DSEResult, error) {
	opts = opts.withDefaults()
	dev, ok := device.ByName(platform)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown platform %q", platform)
	}
	bench := slambench.NewKFusionBench(slambench.CachedDataset(opts.datasetScale()))
	res, err := runDSE(opts, bench, dev)
	if err != nil {
		return nil, err
	}
	suffix := "a"
	if platform == "ASUS-T200TA" {
		suffix = "b"
	}
	if err := writeDSE(opts, "fig3"+suffix+"_kfusion_"+platform, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig4 runs the ElasticFusion exploration of Figure 4 on the GTX 780 Ti.
func Fig4(opts Options) (*DSEResult, error) {
	opts = opts.withDefaults()
	bench := slambench.NewElasticFusionBench(slambench.CachedDataset(opts.datasetScale()))
	res, err := runDSE(opts, bench, device.GTX780Ti())
	if err != nil {
		return nil, err
	}
	if err := writeDSE(opts, "fig4_elasticfusion_GTX-780Ti", res); err != nil {
		return nil, err
	}
	return res, nil
}
