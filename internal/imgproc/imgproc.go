// Package imgproc provides the image containers and kernels shared by the
// SLAM pipelines: depth and intensity maps, the bilateral filter of the
// KFusion preprocessing stage, block-average resizing ("compute size
// ratio"), image pyramids, and vertex/normal map computation.
//
// Depth maps use 0 to mean "invalid" (no measurement), matching the Kinect
// convention; every kernel propagates invalidity.
package imgproc

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Map is a single-channel float32 image (depth in meters or intensity in
// [0,1]).
type Map struct {
	W, H int
	Pix  []float32
}

// NewMap allocates a w×h map of zeros.
func NewMap(w, h int) *Map {
	return &Map{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y) without bounds checking beyond the slice's.
func (m *Map) At(x, y int) float32 { return m.Pix[y*m.W+x] }

// Set stores v at (x, y).
func (m *Map) Set(x, y int, v float32) { m.Pix[y*m.W+x] = v }

// Clone returns a deep copy of m.
func (m *Map) Clone() *Map {
	out := NewMap(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Valid reports whether (x, y) is inside the image and holds a valid
// (non-zero) sample.
func (m *Map) Valid(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H && m.Pix[y*m.W+x] > 0
}

// VecMap is a three-channel image of 3-D vectors (vertex or normal maps).
// The zero vector marks invalid entries.
type VecMap struct {
	W, H int
	Pix  []geom.Vec3
}

// NewVecMap allocates a w×h vector map.
func NewVecMap(w, h int) *VecMap {
	return &VecMap{W: w, H: h, Pix: make([]geom.Vec3, w*h)}
}

// At returns the vector at (x, y).
func (m *VecMap) At(x, y int) geom.Vec3 { return m.Pix[y*m.W+x] }

// Set stores v at (x, y).
func (m *VecMap) Set(x, y int, v geom.Vec3) { m.Pix[y*m.W+x] = v }

// ValidAt reports whether the entry at (x, y) is inside the image and
// non-zero.
func (m *VecMap) ValidAt(x, y int) bool {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return false
	}
	v := m.Pix[y*m.W+x]
	return v.X != 0 || v.Y != 0 || v.Z != 0
}

// Intrinsics is a pinhole camera model.
type Intrinsics struct {
	W, H           int
	Fx, Fy, Cx, Cy float64
}

// StandardIntrinsics returns Kinect-like intrinsics for a w×h image
// (58° horizontal field of view).
func StandardIntrinsics(w, h int) Intrinsics {
	f := float64(w) / (2 * math.Tan(58.0/2*math.Pi/180))
	return Intrinsics{
		W: w, H: h,
		Fx: f, Fy: f,
		Cx: float64(w)/2 - 0.5,
		Cy: float64(h)/2 - 0.5,
	}
}

// Scaled returns the intrinsics of the image downscaled by integer factor r.
func (k Intrinsics) Scaled(r int) Intrinsics {
	if r <= 1 {
		return k
	}
	fr := float64(r)
	return Intrinsics{
		W: k.W / r, H: k.H / r,
		Fx: k.Fx / fr, Fy: k.Fy / fr,
		Cx: (k.Cx+0.5)/fr - 0.5,
		Cy: (k.Cy+0.5)/fr - 0.5,
	}
}

// Halved returns the intrinsics of the next pyramid level.
func (k Intrinsics) Halved() Intrinsics { return k.Scaled(2) }

// Unproject returns the camera-frame ray direction through pixel (x, y)
// at unit depth (z = 1).
func (k Intrinsics) Unproject(x, y int) geom.Vec3 {
	return geom.V3(
		(float64(x)-k.Cx)/k.Fx,
		(float64(y)-k.Cy)/k.Fy,
		1,
	)
}

// Project maps a camera-frame point to pixel coordinates; ok is false when
// the point is behind the camera or lands outside the image.
func (k Intrinsics) Project(p geom.Vec3) (x, y int, ok bool) {
	if p.Z <= 1e-9 {
		return 0, 0, false
	}
	u := p.X/p.Z*k.Fx + k.Cx
	v := p.Y/p.Z*k.Fy + k.Cy
	x = int(math.Round(u))
	y = int(math.Round(v))
	return x, y, x >= 0 && x < k.W && y >= 0 && y < k.H
}

// BlockAverage downsamples depth src by integer factor r using the mean of
// the valid samples in each r×r block (invalid when the whole block is
// invalid). It returns the number of pixel operations performed, which
// feeds the runtime model.
func BlockAverage(src *Map, r int) (*Map, int64) {
	if r <= 1 {
		return src.Clone(), int64(src.W * src.H)
	}
	w, h := src.W/r, src.H/r
	dst := NewMap(w, h)
	var ops int64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := float32(0)
			n := 0
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					v := src.At(x*r+dx, y*r+dy)
					ops++
					if v > 0 {
						sum += v
						n++
					}
				}
			}
			if n > 0 {
				dst.Set(x, y, sum/float32(n))
			}
		}
	}
	return dst, ops
}

// HalfSampleDepth builds the next pyramid level of a depth map: 2×2 block
// average that ignores samples deviating more than maxDiff from the
// top-left sample (edge-preserving, as in KFusion's mm-threshold variant).
func HalfSampleDepth(src *Map, maxDiff float32) (*Map, int64) {
	w, h := src.W/2, src.H/2
	dst := NewMap(w, h)
	var ops int64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			center := src.At(2*x, 2*y)
			if center <= 0 {
				ops += 4
				continue
			}
			sum := float32(0)
			n := 0
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					v := src.At(2*x+dx, 2*y+dy)
					ops++
					if v > 0 && abs32(v-center) <= maxDiff {
						sum += v
						n++
					}
				}
			}
			if n > 0 {
				dst.Set(x, y, sum/float32(n))
			}
		}
	}
	return dst, ops
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// BilateralFilter denoises a depth map with an edge-preserving bilateral
// kernel of the given radius: spatial Gaussian σs (pixels) and range
// Gaussian σr (meters). Invalid pixels stay invalid. Returns the filtered
// map and the number of tap operations.
func BilateralFilter(src *Map, radius int, sigmaSpace, sigmaRange float64) (*Map, int64) {
	dst := NewMap(src.W, src.H)
	if radius < 1 {
		copy(dst.Pix, src.Pix)
		return dst, int64(src.W * src.H)
	}
	// Precompute the spatial weights.
	size := 2*radius + 1
	spatial := make([]float64, size*size)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			d2 := float64(dx*dx + dy*dy)
			spatial[(dy+radius)*size+(dx+radius)] = math.Exp(-d2 / (2 * sigmaSpace * sigmaSpace))
		}
	}
	inv2r2 := 1 / (2 * sigmaRange * sigmaRange)
	var ops int64
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			center := src.At(x, y)
			if center <= 0 {
				continue
			}
			sum, wsum := 0.0, 0.0
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy < 0 || yy >= src.H {
					continue
				}
				for dx := -radius; dx <= radius; dx++ {
					xx := x + dx
					if xx < 0 || xx >= src.W {
						continue
					}
					v := src.At(xx, yy)
					ops++
					if v <= 0 {
						continue
					}
					diff := float64(v - center)
					w := spatial[(dy+radius)*size+(dx+radius)] * math.Exp(-diff*diff*inv2r2)
					sum += w * float64(v)
					wsum += w
				}
			}
			if wsum > 0 {
				dst.Set(x, y, float32(sum/wsum))
			}
		}
	}
	return dst, ops
}

// DepthToVertex converts a depth map to a camera-frame vertex map.
func DepthToVertex(depth *Map, k Intrinsics) *VecMap {
	out := NewVecMap(depth.W, depth.H)
	for y := 0; y < depth.H; y++ {
		for x := 0; x < depth.W; x++ {
			d := float64(depth.At(x, y))
			if d <= 0 {
				continue
			}
			out.Set(x, y, k.Unproject(x, y).Scale(d))
		}
	}
	return out
}

// VertexToNormal computes per-pixel normals from a vertex map by central
// differences (cross product of the image-space tangents). Normals point
// toward the camera (negative Z half-space in camera frame).
func VertexToNormal(vertex *VecMap) *VecMap {
	out := NewVecMap(vertex.W, vertex.H)
	for y := 0; y < vertex.H; y++ {
		for x := 0; x < vertex.W; x++ {
			if !vertex.ValidAt(x, y) {
				continue
			}
			xl, xr := x-1, x+1
			yu, yd := y-1, y+1
			if xl < 0 {
				xl = x
			}
			if xr >= vertex.W {
				xr = x
			}
			if yu < 0 {
				yu = y
			}
			if yd >= vertex.H {
				yd = y
			}
			if !vertex.ValidAt(xl, y) || !vertex.ValidAt(xr, y) ||
				!vertex.ValidAt(x, yu) || !vertex.ValidAt(x, yd) {
				continue
			}
			du := vertex.At(xr, y).Sub(vertex.At(xl, y))
			dv := vertex.At(x, yd).Sub(vertex.At(x, yu))
			n := du.Cross(dv).Normalized()
			if n == (geom.Vec3{}) {
				continue
			}
			// Orient toward the camera (origin): n·v must be negative.
			if n.Dot(vertex.At(x, y)) > 0 {
				n = n.Scale(-1)
			}
			out.Set(x, y, n)
		}
	}
	return out
}

// HalfSampleIntensity builds the next pyramid level of an intensity image
// by plain 2×2 averaging.
func HalfSampleIntensity(src *Map) (*Map, int64) {
	w, h := src.W/2, src.H/2
	dst := NewMap(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := src.At(2*x, 2*y) + src.At(2*x+1, 2*y) +
				src.At(2*x, 2*y+1) + src.At(2*x+1, 2*y+1)
			dst.Set(x, y, s/4)
		}
	}
	return dst, int64(w * h * 4)
}

// Gradient computes central-difference image gradients (gx, gy) of an
// intensity image.
func Gradient(src *Map) (gx, gy *Map) {
	gx = NewMap(src.W, src.H)
	gy = NewMap(src.W, src.H)
	for y := 1; y < src.H-1; y++ {
		for x := 1; x < src.W-1; x++ {
			gx.Set(x, y, (src.At(x+1, y)-src.At(x-1, y))/2)
			gy.Set(x, y, (src.At(x, y+1)-src.At(x, y-1))/2)
		}
	}
	return gx, gy
}

// SampleBilinear samples src at floating-point position (u, v) with
// bilinear interpolation; ok is false outside the image.
func SampleBilinear(src *Map, u, v float64) (float32, bool) {
	if u < 0 || v < 0 || u > float64(src.W-1) || v > float64(src.H-1) {
		return 0, false
	}
	x0, y0 := int(u), int(v)
	x1, y1 := x0+1, y0+1
	if x1 >= src.W {
		x1 = x0
	}
	if y1 >= src.H {
		y1 = y0
	}
	fx := float32(u - float64(x0))
	fy := float32(v - float64(y0))
	top := src.At(x0, y0)*(1-fx) + src.At(x1, y0)*fx
	bot := src.At(x0, y1)*(1-fx) + src.At(x1, y1)*fx
	return top*(1-fy) + bot*fy, true
}

// CheckSameSize returns an error when the two maps differ in size.
func CheckSameSize(a, b *Map) error {
	if a.W != b.W || a.H != b.H {
		return fmt.Errorf("imgproc: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	return nil
}
