package imgproc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBilateralMaximumPrinciple: each filtered pixel is a convex
// combination of valid input pixels in its window, so it must lie within
// the [min, max] of the whole valid input.
func TestBilateralMaximumPrinciple(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NewMap(12, 12)
		lo, hi := float32(1e9), float32(-1e9)
		for i := range src.Pix {
			if rng.Float64() < 0.85 {
				v := float32(0.5 + rng.Float64()*3)
				src.Pix[i] = v
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		dst, _ := BilateralFilter(src, 2, 1.5, 0.2)
		for i, v := range dst.Pix {
			if src.Pix[i] == 0 {
				if v != 0 {
					return false // invalid must stay invalid
				}
				continue
			}
			if v < lo-1e-5 || v > hi+1e-5 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBlockAverageMeanPreserved: for fully valid images, downsampling
// preserves the global mean exactly (it partitions the pixels).
func TestBlockAverageMeanPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NewMap(16, 16)
		for i := range src.Pix {
			src.Pix[i] = float32(1 + rng.Float64())
		}
		dst, _ := BlockAverage(src, 4)
		var meanSrc, meanDst float64
		for _, v := range src.Pix {
			meanSrc += float64(v)
		}
		meanSrc /= float64(len(src.Pix))
		for _, v := range dst.Pix {
			meanDst += float64(v)
		}
		meanDst /= float64(len(dst.Pix))
		return abs64(meanSrc-meanDst) < 1e-5
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestPyramidChainDimensions: repeated halving keeps dimensions and
// intrinsics consistent.
func TestPyramidChainDimensions(t *testing.T) {
	k := StandardIntrinsics(160, 120)
	m := NewMap(160, 120)
	for i := range m.Pix {
		m.Pix[i] = 2
	}
	for level := 0; level < 3; level++ {
		if m.W != k.W || m.H != k.H {
			t.Fatalf("level %d: map %dx%d vs intrinsics %dx%d", level, m.W, m.H, k.W, k.H)
		}
		m2, _ := HalfSampleDepth(m, 0.05)
		m = m2
		k = k.Halved()
	}
}

// TestVertexNormalUnitLength: all valid normals are unit length.
func TestVertexNormalUnitLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := StandardIntrinsics(32, 24)
	depth := NewMap(32, 24)
	for i := range depth.Pix {
		depth.Pix[i] = float32(1.5 + 0.3*rng.Float64())
	}
	n := VertexToNormal(DepthToVertex(depth, k))
	for y := 0; y < n.H; y++ {
		for x := 0; x < n.W; x++ {
			if !n.ValidAt(x, y) {
				continue
			}
			l := n.At(x, y).Norm()
			if abs64(l-1) > 1e-9 {
				t.Fatalf("normal at (%d,%d) has length %v", x, y, l)
			}
		}
	}
}
