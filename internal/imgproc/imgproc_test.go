package imgproc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func constantMap(w, h int, v float32) *Map {
	m := NewMap(w, h)
	for i := range m.Pix {
		m.Pix[i] = v
	}
	return m
}

func TestMapBasics(t *testing.T) {
	m := NewMap(4, 3)
	m.Set(2, 1, 5)
	if m.At(2, 1) != 5 {
		t.Fatal("Set/At broken")
	}
	if !m.Valid(2, 1) || m.Valid(0, 0) || m.Valid(-1, 0) || m.Valid(4, 0) {
		t.Fatal("Valid broken")
	}
	c := m.Clone()
	c.Set(2, 1, 9)
	if m.At(2, 1) != 5 {
		t.Fatal("Clone aliases source")
	}
}

func TestIntrinsicsProjectUnprojectRoundtrip(t *testing.T) {
	k := StandardIntrinsics(160, 120)
	for _, px := range [][2]int{{0, 0}, {80, 60}, {159, 119}, {10, 100}} {
		d := 2.5
		p := k.Unproject(px[0], px[1]).Scale(d)
		x, y, ok := k.Project(p)
		if !ok || x != px[0] || y != px[1] {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d,%v)", px[0], px[1], x, y, ok)
		}
	}
}

func TestProjectBehindCamera(t *testing.T) {
	k := StandardIntrinsics(64, 48)
	if _, _, ok := k.Project(geom.V3(0, 0, -1)); ok {
		t.Fatal("point behind camera projected")
	}
}

func TestScaledIntrinsics(t *testing.T) {
	k := StandardIntrinsics(160, 120)
	s := k.Scaled(2)
	if s.W != 80 || s.H != 60 {
		t.Fatalf("scaled dims %dx%d", s.W, s.H)
	}
	if math.Abs(s.Fx-k.Fx/2) > 1e-12 {
		t.Fatal("scaled focal length wrong")
	}
	if got := k.Scaled(1); got != k {
		t.Fatal("Scaled(1) must be identity")
	}
	if got := k.Halved(); got != k.Scaled(2) {
		t.Fatal("Halved != Scaled(2)")
	}
	// A ray through the center of a 2x2 block should unproject consistently.
	p := k.Unproject(10, 10)
	ps := s.Unproject(5, 5)
	if p.Sub(ps).Norm() > 0.02 {
		t.Fatalf("unprojection drift after scaling: %v vs %v", p, ps)
	}
}

func TestBlockAverage(t *testing.T) {
	src := NewMap(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			src.Set(x, y, float32(1+x/2+2*(y/2))) // 2x2 blocks of 1,2,3,4
		}
	}
	dst, ops := BlockAverage(src, 2)
	if dst.W != 2 || dst.H != 2 {
		t.Fatalf("dims %dx%d", dst.W, dst.H)
	}
	want := []float32{1, 2, 3, 4}
	for i, v := range want {
		if dst.Pix[i] != v {
			t.Fatalf("block %d = %v, want %v", i, dst.Pix[i], v)
		}
	}
	if ops != 16 {
		t.Fatalf("ops = %d", ops)
	}
}

func TestBlockAverageInvalidHandling(t *testing.T) {
	src := NewMap(2, 2)
	src.Set(0, 0, 4) // other three invalid
	dst, _ := BlockAverage(src, 2)
	if dst.At(0, 0) != 4 {
		t.Fatal("mean of valid samples only")
	}
	empty := NewMap(2, 2)
	dst, _ = BlockAverage(empty, 2)
	if dst.At(0, 0) != 0 {
		t.Fatal("all-invalid block must stay invalid")
	}
}

func TestBlockAverageRatio1Clones(t *testing.T) {
	src := constantMap(3, 3, 2)
	dst, _ := BlockAverage(src, 1)
	dst.Set(0, 0, 9)
	if src.At(0, 0) != 2 {
		t.Fatal("ratio-1 must not alias the source")
	}
}

func TestHalfSampleDepthEdgePreserving(t *testing.T) {
	src := NewMap(4, 2)
	// Left block: 1.0 and a far outlier 3.0 — outlier must be excluded.
	src.Set(0, 0, 1.0)
	src.Set(1, 0, 3.0)
	src.Set(0, 1, 1.02)
	src.Set(1, 1, 0.98)
	dst, _ := HalfSampleDepth(src, 0.1)
	got := dst.At(0, 0)
	if math.Abs(float64(got)-1.0) > 0.03 {
		t.Fatalf("edge-preserving mean = %v, want ≈1.0", got)
	}
}

func TestBilateralPreservesConstant(t *testing.T) {
	src := constantMap(16, 16, 2.0)
	dst, ops := BilateralFilter(src, 2, 1.5, 0.1)
	for i, v := range dst.Pix {
		if math.Abs(float64(v)-2.0) > 1e-6 {
			t.Fatalf("pixel %d = %v", i, v)
		}
	}
	if ops <= 0 {
		t.Fatal("ops not counted")
	}
}

func TestBilateralPreservesEdges(t *testing.T) {
	// Step edge 1m/3m with small noise: the filter must not blur across it.
	rng := rand.New(rand.NewSource(1))
	src := NewMap(20, 20)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			base := float32(1.0)
			if x >= 10 {
				base = 3.0
			}
			src.Set(x, y, base+float32(rng.NormFloat64())*0.01)
		}
	}
	dst, _ := BilateralFilter(src, 2, 2.0, 0.05)
	if v := dst.At(9, 10); math.Abs(float64(v)-1.0) > 0.05 {
		t.Fatalf("left of edge = %v", v)
	}
	if v := dst.At(10, 10); math.Abs(float64(v)-3.0) > 0.05 {
		t.Fatalf("right of edge = %v", v)
	}
}

func TestBilateralReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewMap(24, 24)
	for i := range src.Pix {
		src.Pix[i] = 2.0 + float32(rng.NormFloat64())*0.03
	}
	dst, _ := BilateralFilter(src, 2, 1.5, 0.3)
	varIn, varOut := 0.0, 0.0
	for i := range src.Pix {
		varIn += (float64(src.Pix[i]) - 2) * (float64(src.Pix[i]) - 2)
		varOut += (float64(dst.Pix[i]) - 2) * (float64(dst.Pix[i]) - 2)
	}
	if varOut >= varIn/2 {
		t.Fatalf("filter did not denoise: %v -> %v", varIn, varOut)
	}
}

func TestBilateralInvalidStaysInvalid(t *testing.T) {
	src := constantMap(8, 8, 1)
	src.Set(3, 3, 0)
	dst, _ := BilateralFilter(src, 1, 1, 0.1)
	if dst.At(3, 3) != 0 {
		t.Fatal("invalid pixel became valid")
	}
}

func TestDepthToVertexGeometry(t *testing.T) {
	k := StandardIntrinsics(32, 24)
	depth := constantMap(32, 24, 2)
	v := DepthToVertex(depth, k)
	// Center pixel: vertex ≈ (0, 0, 2).
	c := v.At(16, 12)
	if math.Abs(c.Z-2) > 1e-6 || math.Abs(c.X) > 0.1 || math.Abs(c.Y) > 0.1 {
		t.Fatalf("center vertex = %v", c)
	}
	// Invalid depth gives zero vertex.
	depth.Set(5, 5, 0)
	v = DepthToVertex(depth, k)
	if v.ValidAt(5, 5) {
		t.Fatal("invalid depth produced a vertex")
	}
}

func TestVertexToNormalPlane(t *testing.T) {
	// A fronto-parallel plane at z=2 must give normals ≈ (0,0,-1)
	// (pointing back at the camera).
	k := StandardIntrinsics(32, 24)
	depth := constantMap(32, 24, 2)
	v := DepthToVertex(depth, k)
	n := VertexToNormal(v)
	c := n.At(16, 12)
	if math.Abs(c.Z+1) > 1e-6 {
		t.Fatalf("plane normal = %v, want (0,0,-1)", c)
	}
}

func TestVertexToNormalInvalidNeighbor(t *testing.T) {
	k := StandardIntrinsics(8, 8)
	depth := constantMap(8, 8, 1)
	depth.Set(4, 4, 0)
	n := VertexToNormal(DepthToVertex(depth, k))
	if n.ValidAt(4, 4) || n.ValidAt(3, 4) {
		t.Fatal("normals near invalid vertices must be invalid")
	}
}

func TestHalfSampleIntensity(t *testing.T) {
	src := NewMap(4, 2)
	for i := range src.Pix {
		src.Pix[i] = float32(i)
	}
	dst, _ := HalfSampleIntensity(src)
	// Block (0,0) holds pixels 0,1,4,5 -> mean 2.5.
	if dst.At(0, 0) != 2.5 {
		t.Fatalf("half sample = %v", dst.At(0, 0))
	}
}

func TestGradient(t *testing.T) {
	src := NewMap(5, 5)
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			src.Set(x, y, float32(2*x+3*y))
		}
	}
	gx, gy := Gradient(src)
	if gx.At(2, 2) != 2 || gy.At(2, 2) != 3 {
		t.Fatalf("gradient = (%v, %v), want (2, 3)", gx.At(2, 2), gy.At(2, 2))
	}
}

func TestSampleBilinear(t *testing.T) {
	src := NewMap(2, 2)
	src.Set(0, 0, 0)
	src.Set(1, 0, 1)
	src.Set(0, 1, 2)
	src.Set(1, 1, 3)
	v, ok := SampleBilinear(src, 0.5, 0.5)
	if !ok || v != 1.5 {
		t.Fatalf("bilinear = %v, %v", v, ok)
	}
	if _, ok := SampleBilinear(src, -0.1, 0); ok {
		t.Fatal("out of bounds accepted")
	}
	if _, ok := SampleBilinear(src, 1.2, 0); ok {
		t.Fatal("out of bounds accepted")
	}
}

func TestCheckSameSize(t *testing.T) {
	if err := CheckSameSize(NewMap(2, 2), NewMap(2, 3)); err == nil {
		t.Fatal("size mismatch not detected")
	}
	if err := CheckSameSize(NewMap(2, 2), NewMap(2, 2)); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBilateral160x120(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := NewMap(160, 120)
	for i := range src.Pix {
		src.Pix[i] = 2 + float32(rng.NormFloat64())*0.02
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BilateralFilter(src, 2, 1.5, 0.1)
	}
}

func BenchmarkDepthToVertex(b *testing.B) {
	k := StandardIntrinsics(160, 120)
	src := constantMap(160, 120, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DepthToVertex(src, k)
	}
}
