package forest

import (
	"errors"
	"fmt"
	"slices"
)

// Columns is the presorted column-major design matrix tree training runs
// on: one contiguous value slice per feature plus, per feature, the row
// indices sorted by (value, row). The composite key makes each order a
// strict total order, so it is unique — incrementally merging appended
// batches yields bit-for-bit the same orders as re-sorting from scratch,
// which is what lets the active-learning loop warm-start refits: encode a
// batch once, append it, and every subsequent fit reuses the merged orders
// instead of re-sorting the node segment per candidate feature per node.
//
// A Columns may be shared read-only by concurrent fits (the engine fits one
// forest per objective over the same matrix); AppendRows must not run
// concurrently with a fit.
type Columns struct {
	dim  int
	n    int
	vals [][]float64 // vals[f][row]
	sort [][]int32   // sort[f]: rows ordered by (vals[f][row], row)

	batch []int32 // scratch: sorted indices of the freshly appended rows
}

// NewColumns returns an empty matrix with the given feature count.
func NewColumns(dim int) *Columns {
	return &Columns{
		dim:  dim,
		vals: make([][]float64, dim),
		sort: make([][]int32, dim),
	}
}

// ColumnsFromRows transposes a row-major matrix in one shot. It rejects
// empty feature vectors and ragged rows.
func ColumnsFromRows(x [][]float64) (*Columns, error) {
	if len(x) == 0 {
		return nil, errors.New("forest: no training samples")
	}
	d := len(x[0])
	if d == 0 {
		return nil, errors.New("forest: zero-dimensional features")
	}
	c := NewColumns(d)
	if err := c.AppendRows(x); err != nil {
		return nil, err
	}
	return c, nil
}

// NumRows returns the number of rows appended so far.
func (c *Columns) NumRows() int { return c.n }

// Dim returns the feature count.
func (c *Columns) Dim() int { return c.dim }

// AppendRows adds a batch of feature vectors, extending each column and
// merging the batch into the per-feature sorted orders. The merge costs
// O(d·(n + b log b)) for b new rows over n existing ones, versus the
// O(d·n log n) a from-scratch argsort would pay every refit.
func (c *Columns) AppendRows(rows [][]float64) error {
	b := len(rows)
	if b == 0 {
		return nil
	}
	for i, r := range rows {
		if len(r) != c.dim {
			return fmt.Errorf("forest: row %d has %d features, want %d", i, len(r), c.dim)
		}
	}
	n := c.n
	if cap(c.batch) < b {
		c.batch = make([]int32, b)
	}
	for f := 0; f < c.dim; f++ {
		col := c.vals[f]
		for _, r := range rows {
			col = append(col, r[f])
		}
		c.vals[f] = col

		// Sort the batch indices by (value, row); row indices are already
		// increasing, so equal values stay in row order under any sort.
		batch := c.batch[:b]
		for i := range batch {
			batch[i] = int32(n + i)
		}
		slices.SortFunc(batch, func(a, bb int32) int { return cmpValRow(col, a, bb) })

		// Backward in-place merge: grow the order to n+b, then fill from the
		// tail taking the larger of the old order's tail and the batch's tail
		// (the batch lives in its own scratch, so nothing is clobbered).
		ord := append(c.sort[f], batch...)
		i, j, k := n-1, b-1, n+b-1
		for j >= 0 {
			if i >= 0 && cmpValRow(col, ord[i], batch[j]) > 0 {
				ord[k] = ord[i]
				i--
			} else {
				ord[k] = batch[j]
				j--
			}
			k--
		}
		c.sort[f] = ord
	}
	c.n = n + b
	return nil
}

// cmpValRow is THE ordering of this package: rows compared by
// (column value, row index), a strict total order. Every sorted structure —
// the global per-feature orders, batch merges, and the reference builder's
// per-node sorts — must use it, and only it, or the byte-identical
// equivalence between the presorted and reference builders breaks.
func cmpValRow(col []float64, a, b int32) int {
	va, vb := col[a], col[b]
	if va != vb {
		if va < vb {
			return -1
		}
		return 1
	}
	return int(a - b)
}
