package forest

import (
	"math/rand"
	"testing"
)

// classifierData labels points in the unit square by a hidden rule
// (feasible iff x0+x1 < 1) — linearly separable, so a forest with enough
// trees should rank in-region points far above out-of-region ones.
func classifierData(n int, seed int64) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		x = append(x, p)
		if p[0]+p[1] < 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return x, y
}

func TestFitClassifierRejectsNonBinaryLabels(t *testing.T) {
	x := [][]float64{{0}, {1}}
	if _, err := FitClassifier(x, []float64{0, 0.5}, Options{Trees: 2}); err == nil {
		t.Fatal("fractional label accepted")
	}
	if _, err := FitClassifier(x, []float64{0, 2}, Options{Trees: 2}); err == nil {
		t.Fatal("label 2 accepted")
	}
}

func TestClassifierLearnsSeparableRegion(t *testing.T) {
	x, y := classifierData(400, 1)
	c, err := FitClassifier(x, y, Options{Trees: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	deepIn := c.PredictProb([]float64{0.1, 0.1})
	deepOut := c.PredictProb([]float64{0.9, 0.9})
	if deepIn < 0.9 {
		t.Fatalf("P(feasible) deep inside the region = %v, want ≥ 0.9", deepIn)
	}
	if deepOut > 0.1 {
		t.Fatalf("P(feasible) deep outside the region = %v, want ≤ 0.1", deepOut)
	}
	if b := c.OOBBrier(); b < 0 || b > 0.25 {
		t.Fatalf("OOB Brier = %v, want within (0, 0.25] for a separable problem", b)
	}
}

func TestClassifierProbabilitiesInRange(t *testing.T) {
	x, y := classifierData(100, 2)
	c, err := FitClassifier(x, y, Options{Trees: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := classifierData(50, 4)
	for _, p := range c.PredictProbs(probe) {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
}

func TestClassifierDeterministicBySeed(t *testing.T) {
	x, y := classifierData(200, 5)
	a, err := FitClassifier(x, y, Options{Trees: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitClassifier(x, y, Options{Trees: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := classifierData(40, 6)
	pa := a.PredictProbs(probe)
	pb := b.PredictProbs(probe)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same seed, different prediction at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}
