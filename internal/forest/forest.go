// Package forest implements the randomized decision forests (Breiman-style
// regression random forests) that HyperMapper fits, one per objective, to
// predict performance metrics over the whole design space (paper §III-E).
//
// Go has no mature ML ecosystem, so the forests are built from scratch:
// CART variance-reduction trees, bootstrap bagging, per-node feature
// subsampling, out-of-bag error estimation and impurity-based feature
// importance (used for the paper's feature/metric correlation analysis).
// Training runs over a presorted column-major matrix (Columns) in the
// sklearn/XGBoost style: each feature's rows are argsorted once and kept
// sorted through splits by stable partitioning, so split search never
// sorts. Fitting and batch prediction parallelize across trees and across
// input chunks respectively, with all per-tree scratch pooled across trees,
// objectives, and active-learning refits.
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/par"
)

// Options configures forest training. The zero value selects the defaults
// documented on each field.
type Options struct {
	// Trees is the number of trees in the ensemble (default 32).
	Trees int
	// MaxDepth caps tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf (default 2).
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split;
	// 0 selects max(1, d/3), the standard regression-forest heuristic.
	MaxFeatures int
	// SampleRatio is the bootstrap sample size as a fraction of the
	// training set (default 1.0, drawn with replacement).
	SampleRatio float64
	// Seed makes training deterministic. Trees are seeded independently
	// from it, so results do not depend on scheduling.
	Seed int64
	// Workers bounds fitting/prediction parallelism; 0 = GOMAXPROCS.
	Workers int
	// Reference selects the legacy re-sorting tree builder (sort the node
	// segment per candidate feature per node) instead of the presorted
	// column-major fast path. Both produce byte-identical forests for the
	// same seed; the reference is retained as the equivalence baseline for
	// regression tests and as the benchmark comparison point.
	Reference bool
}

func (o Options) withDefaults(d int) Options {
	if o.Trees <= 0 {
		o.Trees = 32
	}
	if o.MinSamplesLeaf <= 0 {
		o.MinSamplesLeaf = 2
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = d / 3
		if o.MaxFeatures < 1 {
			o.MaxFeatures = 1
		}
	}
	if o.SampleRatio <= 0 || o.SampleRatio > 1 {
		o.SampleRatio = 1
	}
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	return o
}

// Forest is a fitted regression forest.
type Forest struct {
	trees      []*tree
	nFeatures  int
	opts       Options
	oobError   float64
	oobSamples int
	importance []float64
}

// fitScratch is the per-worker training state: the builder's index lists,
// partition buffers, node arrays, and the bag draw. One scratch serves every
// tree a worker grows, and the pool recycles it across fits — so steady-state
// active-learning refits allocate only the right-sized persistent trees.
type fitScratch struct {
	order    []int32 // bag draw (and the reference builder's node segment)
	cnt      []int32 // per-row bag multiplicity, zeroed again after each tree
	lists    []int32 // fast path: d presorted per-feature lists, flattened
	refSeg   []int32 // reference path: per-call sort buffer
	tmp      []int32 // stable-partition spill
	goesLeft []bool
	featBuf  []int

	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	value   []float64
}

func (sc *fitScratch) ensure(n, d, bagSize int, reference bool) {
	if cap(sc.order) < bagSize {
		sc.order = make([]int32, bagSize)
	}
	sc.order = sc.order[:bagSize]
	if cap(sc.tmp) < bagSize {
		sc.tmp = make([]int32, bagSize)
	}
	sc.tmp = sc.tmp[:bagSize]
	if cap(sc.goesLeft) < n {
		sc.goesLeft = make([]bool, n)
	}
	sc.goesLeft = sc.goesLeft[:n]
	if reference {
		if cap(sc.refSeg) < bagSize {
			sc.refSeg = make([]int32, bagSize)
		}
		sc.refSeg = sc.refSeg[:bagSize]
	} else {
		if cap(sc.cnt) < n {
			sc.cnt = make([]int32, n) // zeroed by make; kept zeroed after use
		}
		sc.cnt = sc.cnt[:n]
		if cap(sc.lists) < d*bagSize {
			sc.lists = make([]int32, d*bagSize)
		}
		sc.lists = sc.lists[:d*bagSize]
	}
}

var scratchPool = sync.Pool{New: func() any { return new(fitScratch) }}

// fitBuffers is the per-fit aggregation state: per-tree out-of-bag
// predictions, bag-membership bitsets, and importance rows, kept as three
// block allocations (instead of four fresh slices per tree) and pooled
// across fits.
type fitBuffers struct {
	oobPred []float64 // Trees × n, filled only at out-of-bag positions
	bags    []uint64  // Trees × bagWords bitset of in-bag rows
	imp     []float64 // Trees × d per-tree importance rows
	oobSum  []float64 // n, aggregation scratch
	oobCnt  []int32   // n, aggregation scratch
}

func (fb *fitBuffers) ensure(trees, n, d, bagWords int) {
	if cap(fb.oobPred) < trees*n {
		fb.oobPred = make([]float64, trees*n)
	}
	fb.oobPred = fb.oobPred[:trees*n]
	if cap(fb.bags) < trees*bagWords {
		fb.bags = make([]uint64, trees*bagWords)
	}
	fb.bags = fb.bags[:trees*bagWords]
	if cap(fb.imp) < trees*d {
		fb.imp = make([]float64, trees*d)
	}
	fb.imp = fb.imp[:trees*d]
	if cap(fb.oobSum) < n {
		fb.oobSum = make([]float64, n)
	}
	fb.oobSum = fb.oobSum[:n]
	if cap(fb.oobCnt) < n {
		fb.oobCnt = make([]int32, n)
	}
	fb.oobCnt = fb.oobCnt[:n]
}

var bufPool = sync.Pool{New: func() any { return new(fitBuffers) }}

// Fit trains a forest on rows x (one feature vector per sample) and targets
// y. It returns an error on empty or inconsistent input. One-shot callers
// get the presorted fast path too; the active-learning loop instead keeps a
// shared Columns and calls Refit so the transpose and argsort amortize
// across iterations and objectives.
func Fit(x [][]float64, y []float64, opts Options) (*Forest, error) {
	if len(x) == 0 {
		return nil, errors.New("forest: no training samples")
	}
	c, err := ColumnsFromRows(x)
	if err != nil {
		return nil, err
	}
	return Refit(c, y, opts)
}

// Refit trains a forest over a presorted column matrix — the warm-started
// entry point of the active-learning loop: the caller appends each measured
// batch to one shared Columns (per-feature orders merge incrementally) and
// refits every objective's forest from it without re-sorting anything.
// Multiple Refit calls may run concurrently over the same Columns; the
// matrix is only read.
func Refit(c *Columns, y []float64, opts Options) (*Forest, error) {
	n := c.NumRows()
	if n == 0 {
		return nil, errors.New("forest: no training samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("forest: %d samples but %d targets", n, len(y))
	}
	d := c.Dim()
	if d == 0 {
		return nil, errors.New("forest: zero-dimensional features")
	}
	o := opts.withDefaults(d)

	f := &Forest{
		trees:      make([]*tree, o.Trees),
		nFeatures:  d,
		opts:       o,
		importance: make([]float64, d),
	}

	bootSize := int(float64(n) * o.SampleRatio)
	if bootSize < 1 {
		bootSize = 1
	}
	bagWords := (n + 63) / 64

	fb := bufPool.Get().(*fitBuffers)
	fb.ensure(o.Trees, n, d, bagWords)

	par.ForWorkersScratch(o.Trees, o.Workers,
		func() *fitScratch { return scratchPool.Get().(*fitScratch) },
		func(sc *fitScratch) { scratchPool.Put(sc) },
		func(sc *fitScratch, ti int) {
			rng := rand.New(rand.NewSource(o.Seed + int64(ti)*1_000_003 + 17))
			sc.ensure(n, d, bootSize, o.Reference)

			bag := fb.bags[ti*bagWords : (ti+1)*bagWords]
			for i := range bag {
				bag[i] = 0
			}
			for i := 0; i < bootSize; i++ {
				s := int32(rng.Intn(n))
				sc.order[i] = s
				bag[s>>6] |= 1 << (uint(s) & 63)
			}

			imp := fb.imp[ti*d : (ti+1)*d]
			for i := range imp {
				imp[i] = 0
			}
			b := &treeBuilder{
				cols:       c,
				y:          y,
				opts:       o,
				rng:        rng,
				reference:  o.Reference,
				bagSize:    bootSize,
				importance: imp,
				lists:      sc.lists,
				order:      sc.order,
				refSeg:     sc.refSeg,
				goesLeft:   sc.goesLeft,
				tmp:        sc.tmp,
				featBuf:    sc.featBuf,
				feature:    sc.feature,
				thresh:     sc.thresh,
				left:       sc.left,
				right:      sc.right,
				value:      sc.value,
			}
			if !o.Reference {
				// Filter the matrix's global per-feature orders down to the
				// bag (with multiplicity): each list stays sorted by
				// (value, row), duplicates adjacent.
				for _, s := range sc.order {
					sc.cnt[s]++
				}
				for fi := 0; fi < d; fi++ {
					dst := sc.lists[fi*bootSize : (fi+1)*bootSize]
					pos := 0
					for _, row := range c.sort[fi] {
						for k := int32(0); k < sc.cnt[row]; k++ {
							dst[pos] = row
							pos++
						}
					}
				}
				for _, s := range sc.order {
					sc.cnt[s] = 0 // restore the all-zero invariant
				}
			}
			f.trees[ti] = b.grow()
			// Hand the (possibly grown) scratch buffers back for the
			// worker's next tree.
			sc.featBuf = b.featBuf
			sc.feature = b.feature
			sc.thresh = b.thresh
			sc.left = b.left
			sc.right = b.right
			sc.value = b.value

			// Out-of-bag predictions for this tree, straight off the columns.
			pred := fb.oobPred[ti*n : (ti+1)*n]
			for s := 0; s < n; s++ {
				if bag[s>>6]&(1<<(uint(s)&63)) == 0 {
					pred[s] = f.trees[ti].predictCols(c, s)
				}
			}
		})

	// Aggregate OOB error and importance sequentially in tree order:
	// deterministic regardless of worker count or scheduling.
	oobSum, oobCnt := fb.oobSum, fb.oobCnt
	for s := 0; s < n; s++ {
		oobSum[s] = 0
		oobCnt[s] = 0
	}
	for ti := 0; ti < o.Trees; ti++ {
		imp := fb.imp[ti*d : (ti+1)*d]
		for i := range f.importance {
			f.importance[i] += imp[i]
		}
		bag := fb.bags[ti*bagWords : (ti+1)*bagWords]
		pred := fb.oobPred[ti*n : (ti+1)*n]
		for s := 0; s < n; s++ {
			if bag[s>>6]&(1<<(uint(s)&63)) == 0 {
				oobSum[s] += pred[s]
				oobCnt[s]++
			}
		}
	}
	totImp := 0.0
	for _, v := range f.importance {
		totImp += v
	}
	if totImp > 0 {
		for i := range f.importance {
			f.importance[i] /= totImp
		}
	}
	sse, cnt := 0.0, 0
	for s := 0; s < n; s++ {
		if oobCnt[s] > 0 {
			e := y[s] - oobSum[s]/float64(oobCnt[s])
			sse += e * e
			cnt++
		}
	}
	f.oobSamples = cnt
	if cnt > 0 {
		f.oobError = sse / float64(cnt)
	} else {
		// No sample was ever out of bag (tiny training sets): the estimate
		// is undefined, not zero — zero would read as a perfect fit.
		f.oobError = math.NaN()
	}
	bufPool.Put(fb)
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumFeatures returns the feature dimensionality the forest was fitted on.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// OOBError returns the out-of-bag mean squared error estimated during
// fitting. It is NaN when no sample was out of bag (OOBSamples() == 0),
// which on tiny training sets is the honest answer — a literal 0 would be
// indistinguishable from a perfect fit.
func (f *Forest) OOBError() float64 { return f.oobError }

// OOBSamples returns how many training samples the out-of-bag estimate
// aggregates over (0 means OOBError is NaN/undefined).
func (f *Forest) OOBSamples() int { return f.oobSamples }

// FeatureImportance returns the normalized impurity-decrease importance of
// each feature (sums to 1 when any split occurred).
func (f *Forest) FeatureImportance() []float64 {
	return append([]float64(nil), f.importance...)
}

// Predict returns the forest prediction (mean of tree predictions) for one
// feature vector.
func (f *Forest) Predict(x []float64) float64 {
	sum := 0.0
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

// PredictBatch predicts rows in parallel and returns predictions in input
// order. Used by the active-learning loop to sweep the whole configuration
// pool.
func (f *Forest) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	par.ForChunked(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(x[i])
		}
	})
	return out
}

// PredictInto is PredictBatch writing into a caller-provided slice, avoiding
// allocation in the active-learning hot loop.
func (f *Forest) PredictInto(x [][]float64, out []float64) {
	par.ForChunked(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(x[i])
		}
	})
}

// PredictFlat predicts over a row-major flat feature matrix (len(flat) =
// n*dim, row i at flat[i*dim:(i+1)*dim]) writing the n predictions into out.
// It is the allocation-free pool-sweep path: no per-row slice headers, and
// chunks are traversed tree-major so each tree's node arrays stay cache-hot
// across the whole chunk instead of being re-walked per point. Results are
// bit-identical to Predict on the same rows.
func (f *Forest) PredictFlat(flat []float64, dim int, out []float64) {
	if dim != f.nFeatures {
		panic(fmt.Sprintf("forest: PredictFlat dim %d, forest fitted on %d features", dim, f.nFeatures))
	}
	if dim <= 0 || len(flat)%dim != 0 {
		panic(fmt.Sprintf("forest: PredictFlat matrix length %d not a multiple of dim %d", len(flat), dim))
	}
	n := len(flat) / dim
	if len(out) < n {
		panic(fmt.Sprintf("forest: PredictFlat out length %d for %d rows", len(out), n))
	}
	par.ForChunked(n, func(lo, hi int) {
		f.PredictFlatRange(flat, dim, lo, hi, out)
	})
}

// PredictFlatRange is the serial building block of PredictFlat: it fills
// out[lo:hi] with predictions for rows [lo, hi) of the flat matrix. Callers
// that fuse several forests into one parallel sweep (one chunk pass filling
// every objective) invoke it directly from their own worker loop. dim must
// equal NumFeatures and out must have length ≥ hi; neither is re-validated
// here.
func (f *Forest) PredictFlatRange(flat []float64, dim, lo, hi int, out []float64) {
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	for _, t := range f.trees {
		feature, thresh := t.feature, t.thresh
		left, right, value := t.left, t.right, t.value
		for i := lo; i < hi; i++ {
			base := i * dim
			j := int32(0)
			for {
				fj := feature[j]
				if fj < 0 {
					break
				}
				if flat[base+int(fj)] <= thresh[j] {
					j = left[j]
				} else {
					j = right[j]
				}
			}
			out[i] += value[j]
		}
	}
	// Same accumulation order (tree 0..T-1) and final division as Predict,
	// so the flat path is bit-identical to the row path.
	nt := float64(len(f.trees))
	for i := lo; i < hi; i++ {
		out[i] /= nt
	}
}
