// Package forest implements the randomized decision forests (Breiman-style
// regression random forests) that HyperMapper fits, one per objective, to
// predict performance metrics over the whole design space (paper §III-E).
//
// Go has no mature ML ecosystem, so the forests are built from scratch:
// CART variance-reduction trees, bootstrap bagging, per-node feature
// subsampling, out-of-bag error estimation and impurity-based feature
// importance (used for the paper's feature/metric correlation analysis).
// Fitting and batch prediction parallelize across trees and across input
// chunks respectively.
package forest

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/par"
)

// Options configures forest training. The zero value selects the defaults
// documented on each field.
type Options struct {
	// Trees is the number of trees in the ensemble (default 32).
	Trees int
	// MaxDepth caps tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf (default 2).
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split;
	// 0 selects max(1, d/3), the standard regression-forest heuristic.
	MaxFeatures int
	// SampleRatio is the bootstrap sample size as a fraction of the
	// training set (default 1.0, drawn with replacement).
	SampleRatio float64
	// Seed makes training deterministic. Trees are seeded independently
	// from it, so results do not depend on scheduling.
	Seed int64
	// Workers bounds fitting/prediction parallelism; 0 = GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults(d int) Options {
	if o.Trees <= 0 {
		o.Trees = 32
	}
	if o.MinSamplesLeaf <= 0 {
		o.MinSamplesLeaf = 2
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = d / 3
		if o.MaxFeatures < 1 {
			o.MaxFeatures = 1
		}
	}
	if o.SampleRatio <= 0 || o.SampleRatio > 1 {
		o.SampleRatio = 1
	}
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	return o
}

// Forest is a fitted regression forest.
type Forest struct {
	trees      []*tree
	nFeatures  int
	opts       Options
	oobError   float64
	importance []float64
}

// Fit trains a forest on rows x (one feature vector per sample) and targets
// y. It returns an error on empty or inconsistent input.
func Fit(x [][]float64, y []float64, opts Options) (*Forest, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("forest: no training samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("forest: %d samples but %d targets", n, len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, errors.New("forest: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("forest: row %d has %d features, want %d", i, len(row), d)
		}
	}
	o := opts.withDefaults(d)

	f := &Forest{
		trees:      make([]*tree, o.Trees),
		nFeatures:  d,
		opts:       o,
		importance: make([]float64, d),
	}

	bootSize := int(float64(n) * o.SampleRatio)
	if bootSize < 1 {
		bootSize = 1
	}

	type fitResult struct {
		imp     []float64
		oobSum  []float64 // per-sample OOB prediction sum
		oobCnt  []int
		treeIdx int
	}
	results := make([]fitResult, o.Trees)

	par.ForWorkers(o.Trees, o.Workers, func(ti int) {
		rng := rand.New(rand.NewSource(o.Seed + int64(ti)*1_000_003 + 17))
		inBag := make([]bool, n)
		order := make([]int, bootSize)
		for i := range order {
			s := rng.Intn(n)
			order[i] = s
			inBag[s] = true
		}
		b := &treeBuilder{
			x:          x,
			y:          y,
			opts:       o,
			rng:        rng,
			importance: make([]float64, d),
			order:      order,
		}
		t := b.grow()
		f.trees[ti] = t

		oobSum := make([]float64, n)
		oobCnt := make([]int, n)
		for s := 0; s < n; s++ {
			if !inBag[s] {
				oobSum[s] = t.predict(x[s])
				oobCnt[s] = 1
			}
		}
		results[ti] = fitResult{imp: b.importance, oobSum: oobSum, oobCnt: oobCnt, treeIdx: ti}
	})

	// Aggregate OOB error and importance (sequentially: deterministic).
	oobSum := make([]float64, n)
	oobCnt := make([]int, n)
	for _, r := range results {
		for i := range f.importance {
			f.importance[i] += r.imp[i]
		}
		for s := 0; s < n; s++ {
			oobSum[s] += r.oobSum[s]
			oobCnt[s] += r.oobCnt[s]
		}
	}
	totImp := 0.0
	for _, v := range f.importance {
		totImp += v
	}
	if totImp > 0 {
		for i := range f.importance {
			f.importance[i] /= totImp
		}
	}
	sse, cnt := 0.0, 0
	for s := 0; s < n; s++ {
		if oobCnt[s] > 0 {
			e := y[s] - oobSum[s]/float64(oobCnt[s])
			sse += e * e
			cnt++
		}
	}
	if cnt > 0 {
		f.oobError = sse / float64(cnt)
	}
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumFeatures returns the feature dimensionality the forest was fitted on.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// OOBError returns the out-of-bag mean squared error estimated during
// fitting (0 if every sample ended up in every bag).
func (f *Forest) OOBError() float64 { return f.oobError }

// FeatureImportance returns the normalized impurity-decrease importance of
// each feature (sums to 1 when any split occurred).
func (f *Forest) FeatureImportance() []float64 {
	return append([]float64(nil), f.importance...)
}

// Predict returns the forest prediction (mean of tree predictions) for one
// feature vector.
func (f *Forest) Predict(x []float64) float64 {
	sum := 0.0
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

// PredictBatch predicts rows in parallel and returns predictions in input
// order. Used by the active-learning loop to sweep the whole configuration
// pool.
func (f *Forest) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	par.ForChunked(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(x[i])
		}
	})
	return out
}

// PredictInto is PredictBatch writing into a caller-provided slice, avoiding
// allocation in the active-learning hot loop.
func (f *Forest) PredictInto(x [][]float64, out []float64) {
	par.ForChunked(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(x[i])
		}
	})
}

// PredictFlat predicts over a row-major flat feature matrix (len(flat) =
// n*dim, row i at flat[i*dim:(i+1)*dim]) writing the n predictions into out.
// It is the allocation-free pool-sweep path: no per-row slice headers, and
// chunks are traversed tree-major so each tree's node arrays stay cache-hot
// across the whole chunk instead of being re-walked per point. Results are
// bit-identical to Predict on the same rows.
func (f *Forest) PredictFlat(flat []float64, dim int, out []float64) {
	if dim != f.nFeatures {
		panic(fmt.Sprintf("forest: PredictFlat dim %d, forest fitted on %d features", dim, f.nFeatures))
	}
	if dim <= 0 || len(flat)%dim != 0 {
		panic(fmt.Sprintf("forest: PredictFlat matrix length %d not a multiple of dim %d", len(flat), dim))
	}
	n := len(flat) / dim
	if len(out) < n {
		panic(fmt.Sprintf("forest: PredictFlat out length %d for %d rows", len(out), n))
	}
	par.ForChunked(n, func(lo, hi int) {
		f.PredictFlatRange(flat, dim, lo, hi, out)
	})
}

// PredictFlatRange is the serial building block of PredictFlat: it fills
// out[lo:hi] with predictions for rows [lo, hi) of the flat matrix. Callers
// that fuse several forests into one parallel sweep (one chunk pass filling
// every objective) invoke it directly from their own worker loop. dim must
// equal NumFeatures and out must have length ≥ hi; neither is re-validated
// here.
func (f *Forest) PredictFlatRange(flat []float64, dim, lo, hi int, out []float64) {
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	for _, t := range f.trees {
		feature, thresh := t.feature, t.thresh
		left, right, value := t.left, t.right, t.value
		for i := lo; i < hi; i++ {
			base := i * dim
			j := int32(0)
			for {
				fj := feature[j]
				if fj < 0 {
					break
				}
				if flat[base+int(fj)] <= thresh[j] {
					j = left[j]
				} else {
					j = right[j]
				}
			}
			out[i] += value[j]
		}
	}
	// Same accumulation order (tree 0..T-1) and final division as Predict,
	// so the flat path is bit-identical to the row path.
	nt := float64(len(f.trees))
	for i := lo; i < hi; i++ {
		out[i] /= nt
	}
}
