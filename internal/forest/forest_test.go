package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeRegression builds a noisy non-linear regression problem.
func makeRegression(rng *rand.Rand, n int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := rng.Float64() * 4
		b := rng.Float64() * 4
		c := rng.Float64() // irrelevant feature
		x[i] = []float64{a, b, c}
		y[i] = math.Sin(a)*3 + b*b + rng.NormFloat64()*0.05
	}
	return x, y
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, Options{}); err == nil {
		t.Fatal("expected error on zero-dim features")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	f, err := Fit(x, y, Options{Trees: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{2.5}); got != 5 {
		t.Fatalf("Predict = %v, want 5", got)
	}
}

func TestSingleSample(t *testing.T) {
	f, err := Fit([][]float64{{1, 2}}, []float64{7}, Options{Trees: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0, 0}); got != 7 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	// A single split at x=0.5 should be learned almost perfectly.
	rng := rand.New(rand.NewSource(2))
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64()
		x[i] = []float64{v}
		if v <= 0.5 {
			y[i] = 1
		} else {
			y[i] = 10
		}
	}
	f, err := Fit(x, y, Options{Trees: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0.2}); math.Abs(got-1) > 0.5 {
		t.Fatalf("Predict(0.2) = %v, want ≈1", got)
	}
	if got := f.Predict([]float64{0.8}); math.Abs(got-10) > 0.5 {
		t.Fatalf("Predict(0.8) = %v, want ≈10", got)
	}
}

func TestFitReducesErrorVsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xTrain, yTrain := makeRegression(rng, 600)
	xTest, yTest := makeRegression(rng, 200)

	f, err := Fit(xTrain, yTrain, Options{Trees: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range yTrain {
		mean += v
	}
	mean /= float64(len(yTrain))

	mseForest, mseMean := 0.0, 0.0
	for i, xv := range xTest {
		p := f.Predict(xv)
		mseForest += (p - yTest[i]) * (p - yTest[i])
		mseMean += (mean - yTest[i]) * (mean - yTest[i])
	}
	if mseForest >= mseMean/4 {
		t.Fatalf("forest MSE %v not ≪ mean-predictor MSE %v", mseForest, mseMean)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := makeRegression(rng, 200)
	f1, err := Fit(x, y, Options{Trees: 8, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fit(x, y, Options{Trees: 8, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.5, 2.5, 0.5}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("same seed must give identical forests regardless of workers")
	}
	f3, err := Fit(x, y, Options{Trees: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if f1.Predict(probe) == f3.Predict(probe) {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

// Property: forest predictions always lie within [min(y), max(y)] — tree
// leaves are averages of training targets.
func TestPredictionBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := makeRegression(rng, 300)
	f, err := Fit(x, y, Options{Trees: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := y[0], y[0]
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	prop := func(a, b, c float64) bool {
		q := []float64{math.Mod(math.Abs(a), 4), math.Mod(math.Abs(b), 4), math.Mod(math.Abs(c), 1)}
		p := f.Predict(q)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := makeRegression(rng, 250)
	f, err := Fit(x, y, Options{Trees: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	batch := f.PredictBatch(x)
	for i := range x {
		if batch[i] != f.Predict(x[i]) {
			t.Fatalf("batch[%d] = %v != %v", i, batch[i], f.Predict(x[i]))
		}
	}
	into := make([]float64, len(x))
	f.PredictInto(x, into)
	for i := range into {
		if into[i] != batch[i] {
			t.Fatal("PredictInto disagrees with PredictBatch")
		}
	}
}

func TestPredictFlatMatchesPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := makeRegression(rng, 250)
	f, err := Fit(x, y, Options{Trees: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dim := len(x[0])
	flat := make([]float64, len(x)*dim)
	for i, row := range x {
		copy(flat[i*dim:(i+1)*dim], row)
	}
	batch := f.PredictBatch(x)
	out := make([]float64, len(x))
	f.PredictFlat(flat, dim, out)
	for i := range out {
		// Bit-identical, not approximately equal: the engine's determinism
		// guarantee depends on the flat path matching the row path exactly.
		if out[i] != batch[i] {
			t.Fatalf("PredictFlat[%d] = %v, PredictBatch = %v", i, out[i], batch[i])
		}
	}
	// The serial range building block must agree on partial sweeps too.
	partial := make([]float64, len(x))
	f.PredictFlatRange(flat, dim, 10, 40, partial)
	for i := 10; i < 40; i++ {
		if partial[i] != batch[i] {
			t.Fatalf("PredictFlatRange[%d] = %v, want %v", i, partial[i], batch[i])
		}
	}
}

func TestPredictFlatValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := makeRegression(rng, 50)
	f, err := Fit(x, y, Options{Trees: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("wrong dim", func() { f.PredictFlat(make([]float64, 8), 2, make([]float64, 4)) })
	mustPanic("ragged matrix", func() { f.PredictFlat(make([]float64, 7), 3, make([]float64, 3)) })
	mustPanic("short out", func() { f.PredictFlat(make([]float64, 9), 3, make([]float64, 2)) })
}

func TestOOBErrorReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := makeRegression(rng, 500)
	f, err := Fit(x, y, Options{Trees: 32, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	variance := 0.0
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(y))
	if f.OOBError() <= 0 {
		t.Fatal("OOB error should be positive on noisy data")
	}
	if f.OOBError() >= variance {
		t.Fatalf("OOB MSE %v not better than target variance %v", f.OOBError(), variance)
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x, y := makeRegression(rng, 500) // features 0,1 carry signal; 2 is noise
	f, err := Fit(x, y, Options{Trees: 32, Seed: 15, MaxFeatures: 3})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	total := imp[0] + imp[1] + imp[2]
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importance not normalized: %v", imp)
	}
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Fatalf("noise feature ranked above signal: %v", imp)
	}
}

func TestMaxDepthLimitsTreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x, y := makeRegression(rng, 300)
	shallow, err := Fit(x, y, Options{Trees: 4, Seed: 17, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range shallow.trees {
		// Depth-2 binary tree has at most 7 nodes.
		if len(tr.feature) > 7 {
			t.Fatalf("depth-2 tree has %d nodes", len(tr.feature))
		}
	}
}

func TestMinSamplesLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	x, y := makeRegression(rng, 200)
	f, err := Fit(x, y, Options{Trees: 4, Seed: 19, MinSamplesLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	// With min leaf 50 on 200 samples, trees must be tiny.
	for _, tr := range f.trees {
		if len(tr.feature) > 15 {
			t.Fatalf("min-leaf-50 tree has %d nodes", len(tr.feature))
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults(9)
	if o.Trees != 32 || o.MinSamplesLeaf != 2 || o.MaxFeatures != 3 || o.SampleRatio != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{}.withDefaults(2)
	if o.MaxFeatures != 1 {
		t.Fatalf("MaxFeatures floor = %d", o.MaxFeatures)
	}
}

func TestAccessors(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y := []float64{1, 2, 3, 4}
	f, err := Fit(x, y, Options{Trees: 5, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 5 || f.NumFeatures() != 2 {
		t.Fatalf("accessors: %d trees, %d features", f.NumTrees(), f.NumFeatures())
	}
	imp := f.FeatureImportance()
	imp[0] = 99
	if f.FeatureImportance()[0] == 99 {
		t.Fatal("FeatureImportance must return a copy")
	}
}

func BenchmarkFit1000x9(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, d := 1000, 9
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = row[0]*row[1] + math.Sin(row[2]*6)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Options{Trees: 20, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeRegression(rng, 800)
	f, err := Fit(x, y, Options{Trees: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pool := make([][]float64, 10000)
	for i := range pool {
		pool[i] = []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64()}
	}
	out := make([]float64, len(pool))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictInto(pool, out)
	}
}

// BenchmarkPredictPool compares a design-space-pool sweep through the
// row-slice path (PredictBatch over [][]float64, what the engine did before
// the flat-matrix path) against PredictFlat over the same encodings.
func BenchmarkPredictPool(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeRegression(rng, 800)
	f, err := Fit(x, y, Options{Trees: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const n, dim = 50_000, 3
	flat := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := flat[i*dim : (i+1)*dim]
		row[0], row[1], row[2] = rng.Float64()*4, rng.Float64()*4, rng.Float64()
		rows[i] = row
	}
	b.Run("rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.PredictBatch(rows)
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		out := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.PredictFlat(flat, dim, out)
		}
	})
}
