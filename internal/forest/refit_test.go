package forest

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// makeTieHeavy builds a dataset shaped like the paper's KFusion space:
// every feature takes a handful of discrete levels (volume resolution,
// pyramid iterations, ...), so sorted columns are dominated by runs of
// equal values — the regime where tie handling in split search and
// partitioning must agree exactly between builder strategies.
func makeTieHeavy(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	levels := []float64{64, 128, 256, 512}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = levels[rng.Intn(len(levels))]
		}
		x[i] = row
		y[i] = row[0]/64 + row[d-1]/512 + rng.NormFloat64()*0.1
	}
	return x, y
}

func makeContinuous(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * 4
		}
		x[i] = row
		y[i] = math.Sin(row[0])*3 + row[1]*row[1] + rng.NormFloat64()*0.05
	}
	return x, y
}

// forestsIdentical compares two fitted forests bit for bit: every tree's
// flat arrays, the importance vector, and the OOB estimate (NaN == NaN).
func forestsIdentical(t *testing.T, fast, ref *Forest) {
	t.Helper()
	if len(fast.trees) != len(ref.trees) {
		t.Fatalf("tree counts differ: %d vs %d", len(fast.trees), len(ref.trees))
	}
	for i := range fast.trees {
		if !reflect.DeepEqual(fast.trees[i], ref.trees[i]) {
			t.Fatalf("tree %d differs between presorted and reference builders", i)
		}
	}
	if !reflect.DeepEqual(fast.importance, ref.importance) {
		t.Fatalf("importance differs: %v vs %v", fast.importance, ref.importance)
	}
	fe, re := fast.OOBError(), ref.OOBError()
	if fe != re && !(math.IsNaN(fe) && math.IsNaN(re)) {
		t.Fatalf("OOB error differs: %v vs %v", fe, re)
	}
	if fast.OOBSamples() != ref.OOBSamples() {
		t.Fatalf("OOB samples differ: %d vs %d", fast.OOBSamples(), ref.OOBSamples())
	}
}

// TestFitMatchesLegacyPath locks the presorted column-major fast path to
// the retained legacy re-sorting builder: same seed, byte-identical
// forests, across continuous and tie-heavy integer feature distributions,
// training sizes from degenerate to AL-representative, subsampled bags,
// depth caps, and full-mtry settings.
func TestFitMatchesLegacyPath(t *testing.T) {
	type dataset struct {
		name string
		make func(*rand.Rand, int, int) ([][]float64, []float64)
	}
	datasets := []dataset{
		{"continuous", makeContinuous},
		{"tie-heavy", makeTieHeavy},
	}
	optVariants := []Options{
		{Trees: 16, Seed: 1},
		{Trees: 8, Seed: 2, MaxDepth: 3},
		{Trees: 8, Seed: 3, SampleRatio: 0.6, MinSamplesLeaf: 4},
		{Trees: 8, Seed: 4, MaxFeatures: 9}, // mtry = d: every feature scanned
	}
	for _, ds := range datasets {
		for _, n := range []int{1, 2, 7, 50, 300} {
			for vi, base := range optVariants {
				t.Run(fmt.Sprintf("%s/n=%d/v%d", ds.name, n, vi), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(n)*100 + int64(vi)))
					x, y := ds.make(rng, n, 9)
					fast, err := Fit(x, y, base)
					if err != nil {
						t.Fatal(err)
					}
					legacy := base
					legacy.Reference = true
					ref, err := Fit(x, y, legacy)
					if err != nil {
						t.Fatal(err)
					}
					forestsIdentical(t, fast, ref)
					// And through the prediction path, for good measure.
					probe := make([]float64, 9)
					for i := range probe {
						probe[i] = rng.Float64() * 4
					}
					if fast.Predict(probe) != ref.Predict(probe) {
						t.Fatal("predictions diverged despite identical trees")
					}
				})
			}
		}
	}
}

// TestRefitMatchesFreshFit drives the warm-started seam the AL loop uses:
// appending batches to one shared Columns and refitting must equal a
// from-scratch Fit over the accumulated rows, bit for bit, at every step.
func TestRefitMatchesFreshFit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	x, y := makeTieHeavy(rng, 240, 9)
	cols := NewColumns(9)
	opts := Options{Trees: 8, Seed: 5}
	consumed := 0
	for _, batch := range []int{40, 1, 60, 139} {
		if err := cols.AppendRows(x[consumed : consumed+batch]); err != nil {
			t.Fatal(err)
		}
		consumed += batch
		warm, err := Refit(cols, y[:consumed], opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Fit(x[:consumed], y[:consumed], opts)
		if err != nil {
			t.Fatal(err)
		}
		forestsIdentical(t, warm, fresh)
	}
}

// TestColumnsIncrementalMatchesBulk: merged per-feature orders after
// arbitrary batch splits must equal the bulk-built orders exactly — the
// (value, row) key is a strict total order, so there is only one answer.
func TestColumnsIncrementalMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, _ := makeTieHeavy(rng, 200, 5)
	bulk, err := ColumnsFromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewColumns(5)
	for lo := 0; lo < len(x); {
		hi := lo + 1 + rng.Intn(37)
		if hi > len(x) {
			hi = len(x)
		}
		if err := inc.AppendRows(x[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if !reflect.DeepEqual(bulk.vals, inc.vals) {
		t.Fatal("column values diverged between bulk and incremental builds")
	}
	if !reflect.DeepEqual(bulk.sort, inc.sort) {
		t.Fatal("sorted orders diverged between bulk and incremental builds")
	}
	for f := 0; f < inc.dim; f++ {
		assertSortedByValRow(t, inc.vals[f], inc.sort[f])
	}
}

func TestColumnsValidation(t *testing.T) {
	if _, err := ColumnsFromRows(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := ColumnsFromRows([][]float64{{}}); err == nil {
		t.Fatal("expected error on zero-dim rows")
	}
	c := NewColumns(2)
	if err := c.AppendRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error on ragged batch")
	}
	if err := c.AppendRows(nil); err != nil {
		t.Fatalf("empty append should be a no-op, got %v", err)
	}
	if _, err := Refit(NewColumns(3), nil, Options{}); err == nil {
		t.Fatal("expected error on refit over an empty matrix")
	}
}

func assertSortedByValRow(t *testing.T, col []float64, order []int32) {
	t.Helper()
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if col[a] > col[b] || (col[a] == col[b] && a >= b) {
			t.Fatalf("order violates (value, row) at %d: (%v,%d) then (%v,%d)",
				i, col[a], a, col[b], b)
		}
	}
}

// TestPresortedListsStaySorted is the structural property behind the whole
// fast path: at every node the builder visits, every feature's index-list
// segment must still be ordered by (value, row) — i.e. stable partitioning
// preserved the presorted invariant through arbitrarily deep recursions.
// Tie-heavy data makes the partitions maximally degenerate.
func TestPresortedListsStaySorted(t *testing.T) {
	checked := 0
	debugCheckSorted = func(b *treeBuilder, lo, hi int) {
		checked++
		for f := 0; f < b.cols.dim; f++ {
			seg := b.lists[f*b.bagSize+lo : f*b.bagSize+hi]
			col := b.cols.vals[f]
			for i := 1; i < len(seg); i++ {
				a, bb := seg[i-1], seg[i]
				if col[a] > col[bb] || (col[a] == col[bb] && a > bb) {
					t.Errorf("node [%d,%d) feature %d: segment out of order at %d", lo, hi, f, i)
					return
				}
			}
		}
	}
	defer func() { debugCheckSorted = nil }()

	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var x [][]float64
		var y []float64
		if seed%2 == 0 {
			x, y = makeTieHeavy(rng, 80+int(seed)*13, 6)
		} else {
			x, y = makeContinuous(rng, 80+int(seed)*13, 6)
		}
		// Workers 1 keeps the unsynchronized `checked` counter race-free.
		if _, err := Fit(x, y, Options{Trees: 4, Seed: seed, Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if checked == 0 {
		t.Fatal("invariant hook never ran")
	}
}

// TestOOBUndefinedIsNaN: with a single training sample the bootstrap always
// contains it, so no out-of-bag estimate exists — that must surface as NaN
// plus a zero OOBSamples count, not as a "perfect" 0.
func TestOOBUndefinedIsNaN(t *testing.T) {
	f, err := Fit([][]float64{{1, 2}}, []float64{7}, Options{Trees: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.OOBError()) {
		t.Fatalf("OOBError with no OOB samples = %v, want NaN", f.OOBError())
	}
	if f.OOBSamples() != 0 {
		t.Fatalf("OOBSamples = %d, want 0", f.OOBSamples())
	}

	rng := rand.New(rand.NewSource(3))
	x, y := makeContinuous(rng, 300, 3)
	f, err = Fit(x, y, Options{Trees: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.OOBSamples() == 0 || math.IsNaN(f.OOBError()) {
		t.Fatalf("large fit lost its OOB estimate: err=%v samples=%d", f.OOBError(), f.OOBSamples())
	}
}

// BenchmarkForestFit compares the presorted fast path against the retained
// re-sorting reference builder at active-learning-representative shapes:
// training sets the size X_out reaches across iterations, paper-scale
// dimensionality, a 32-tree ensemble.
func BenchmarkForestFit(b *testing.B) {
	for _, shape := range []struct{ n, d int }{{50, 12}, {200, 12}, {500, 12}} {
		rng := rand.New(rand.NewSource(int64(shape.n)))
		x, y := makeTieHeavy(rng, shape.n, shape.d)
		for _, mode := range []struct {
			name      string
			reference bool
		}{
			{"presorted", false},
			{"reference", true},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, shape.n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opts := Options{Trees: 32, Seed: int64(i), Reference: mode.reference}
					if _, err := Fit(x, y, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
