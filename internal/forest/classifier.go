package forest

import "fmt"

// Classifier is the package's classification mode: a random forest over
// binary {0, 1} labels whose averaged tree output is read as the
// probability of class 1. It reuses the regression machinery unchanged —
// for a binary target, the variance reduction of a split equals the Gini
// impurity decrease up to a constant factor, so the CART regression
// splitter is already a CART classification splitter; only the
// interpretation of the leaf values changes.
//
// The engine uses it as the feasibility model of the search-strategy
// pipeline: trained on observed valid/invalid outcomes, consulted to
// filter or down-weight candidates predicted infeasible.
type Classifier struct {
	f *Forest
}

// FitClassifier trains a classifier on rows x with labels y, one 0-or-1
// label per row (any other value is an error — a fractional "label" is
// almost always a bug in the caller's labeling, not a soft target).
// Options are interpreted exactly as in Fit; equal seeds yield identical
// classifiers.
func FitClassifier(x [][]float64, y []float64, opts Options) (*Classifier, error) {
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("forest: classification label %v at row %d (want 0 or 1)", v, i)
		}
	}
	f, err := Fit(x, y, opts)
	if err != nil {
		return nil, err
	}
	return &Classifier{f: f}, nil
}

// PredictProb returns the predicted probability that x is class 1,
// clamped to [0, 1].
func (c *Classifier) PredictProb(x []float64) float64 {
	return clamp01(c.f.Predict(x))
}

// PredictProbs predicts class-1 probabilities for a batch of rows.
func (c *Classifier) PredictProbs(x [][]float64) []float64 {
	out := c.f.PredictBatch(x)
	for i, p := range out {
		out[i] = clamp01(p)
	}
	return out
}

// OOBBrier returns the out-of-bag Brier score — the mean squared error
// between predicted probability and true label, the proper scoring rule
// that is exactly the regression OOB MSE on 0/1 targets. NaN when no
// sample was ever out of bag.
func (c *Classifier) OOBBrier() float64 { return c.f.OOBError() }

// NumTrees returns the number of trees in the ensemble.
func (c *Classifier) NumTrees() int { return c.f.NumTrees() }

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
