package forest

import (
	"math"
	"math/rand"
	"sort"
)

// tree is a CART regression tree stored in flat arrays (structure-of-arrays
// layout keeps prediction cache-friendly). Node 0 is the root. feature[i] is
// -1 for leaves, whose prediction is value[i]; internal nodes route samples
// with x[feature] <= thresh to left, else right.
type tree struct {
	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	value   []float64
}

// predict routes x through the tree to a leaf mean.
func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for t.feature[i] >= 0 {
		if x[t.feature[i]] <= t.thresh[i] {
			i = t.left[i]
		} else {
			i = t.right[i]
		}
	}
	return t.value[i]
}

// treeBuilder holds the working state for growing one tree.
type treeBuilder struct {
	x          [][]float64 // training features, row-major samples
	y          []float64
	opts       Options
	rng        *rand.Rand
	t          *tree
	importance []float64 // impurity-decrease accumulator per feature
	order      []int     // scratch: sample indices, partitioned in place
	featBuf    []int     // scratch: candidate feature indices
}

// grow builds the tree over the sample indices in b.order and returns it.
func (b *treeBuilder) grow() *tree {
	b.t = &tree{}
	b.buildNode(0, len(b.order), 0)
	return b.t
}

// addNode appends a node and returns its index.
func (b *treeBuilder) addNode() int32 {
	i := int32(len(b.t.feature))
	b.t.feature = append(b.t.feature, -1)
	b.t.thresh = append(b.t.thresh, 0)
	b.t.left = append(b.t.left, -1)
	b.t.right = append(b.t.right, -1)
	b.t.value = append(b.t.value, 0)
	return i
}

// buildNode grows the subtree over b.order[lo:hi] and returns its node index.
func (b *treeBuilder) buildNode(lo, hi, depth int) int32 {
	node := b.addNode()
	n := hi - lo

	// Node statistics.
	sum, sum2 := 0.0, 0.0
	for _, idx := range b.order[lo:hi] {
		v := b.y[idx]
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	sse := sum2 - sum*sum/float64(n) // total squared error around the mean
	b.t.value[node] = mean

	if n < 2*b.opts.MinSamplesLeaf || sse <= 1e-12 ||
		(b.opts.MaxDepth > 0 && depth >= b.opts.MaxDepth) {
		return node
	}

	feat, thresh, gain, split := b.bestSplit(lo, hi, sum)
	if feat < 0 {
		return node
	}

	// Partition b.order[lo:hi] in place around the split.
	i, j := lo, hi-1
	for i <= j {
		if b.x[b.order[i]][feat] <= thresh {
			i++
		} else {
			b.order[i], b.order[j] = b.order[j], b.order[i]
			j--
		}
	}
	// i is now the first right-side element; must match the split size.
	mid := lo + split
	if i != mid {
		// Ties on the threshold can shift the boundary; use the partition
		// point actually produced (it is consistent with predict's <=).
		mid = i
	}
	if mid == lo || mid == hi {
		return node // degenerate partition; keep as leaf
	}

	b.importance[feat] += gain
	b.t.feature[node] = int32(feat)
	b.t.thresh[node] = thresh
	b.t.left[node] = b.buildNode(lo, mid, depth+1)
	b.t.right[node] = b.buildNode(mid, hi, depth+1)
	return node
}

// bestSplit searches a random subset of features for the split with the
// largest SSE reduction. It returns the chosen feature (-1 if none), the
// threshold, the impurity decrease, and the number of samples that go left.
func (b *treeBuilder) bestSplit(lo, hi int, sum float64) (feat int, thresh float64, gain float64, split int) {
	n := hi - lo
	d := len(b.x[0])
	mtry := b.opts.MaxFeatures
	if mtry <= 0 || mtry > d {
		mtry = d
	}

	// Draw mtry distinct candidate features.
	b.featBuf = b.featBuf[:0]
	for i := 0; i < d; i++ {
		b.featBuf = append(b.featBuf, i)
	}
	b.rng.Shuffle(d, func(i, j int) { b.featBuf[i], b.featBuf[j] = b.featBuf[j], b.featBuf[i] })
	candidates := b.featBuf[:mtry]

	feat = -1
	bestScore := math.Inf(-1)
	seg := b.order[lo:hi]
	minLeaf := b.opts.MinSamplesLeaf

	for _, f := range candidates {
		sort.Slice(seg, func(i, j int) bool { return b.x[seg[i]][f] < b.x[seg[j]][f] })
		// Prefix scan: evaluate every boundary between distinct values.
		leftSum := 0.0
		for i := 0; i < n-1; i++ {
			leftSum += b.y[seg[i]]
			nl := i + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			xv, xn := b.x[seg[i]][f], b.x[seg[i+1]][f]
			if xv == xn {
				continue // cannot split between equal values
			}
			rightSum := sum - leftSum
			// Maximizing SSE reduction == maximizing
			// leftSum²/nl + rightSum²/nr (parent term is constant).
			score := leftSum*leftSum/float64(nl) + rightSum*rightSum/float64(nr)
			if score > bestScore {
				bestScore = score
				feat = f
				thresh = (xv + xn) / 2
				split = nl
			}
		}
	}
	if feat < 0 {
		return -1, 0, 0, 0
	}
	parentScore := sum * sum / float64(n)
	gain = bestScore - parentScore
	if gain <= 1e-12 {
		return -1, 0, 0, 0
	}
	return feat, thresh, gain, split
}
