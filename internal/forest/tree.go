package forest

import (
	"math"
	"math/rand"
	"slices"
)

// tree is a CART regression tree stored in flat arrays (structure-of-arrays
// layout keeps prediction cache-friendly). Node 0 is the root. feature[i] is
// -1 for leaves, whose prediction is value[i]; internal nodes route samples
// with x[feature] <= thresh to left, else right.
type tree struct {
	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	value   []float64
}

// predict routes x through the tree to a leaf mean.
func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for t.feature[i] >= 0 {
		if x[t.feature[i]] <= t.thresh[i] {
			i = t.left[i]
		} else {
			i = t.right[i]
		}
	}
	return t.value[i]
}

// predictCols routes training row s through the tree reading straight from
// the column-major matrix — the out-of-bag pass needs no row gather.
func (t *tree) predictCols(c *Columns, s int) float64 {
	i := int32(0)
	for t.feature[i] >= 0 {
		if c.vals[t.feature[i]][s] <= t.thresh[i] {
			i = t.left[i]
		} else {
			i = t.right[i]
		}
	}
	return t.value[i]
}

// debugCheckSorted, when set by tests, is invoked at every node entry of the
// presorted builder to assert the per-feature index lists are still ordered
// by (value, row) after the stable partitions above this node.
var debugCheckSorted func(b *treeBuilder, lo, hi int)

// treeBuilder grows one tree over a bootstrap sample of a Columns matrix.
//
// Two interchangeable strategies produce byte-identical trees:
//
//   - the presorted fast path (reference == false): per-feature index lists
//     over the bag, each ordered by (value, row), built once per tree from
//     the matrix's global orders and kept sorted through splits by stable
//     partitioning — so every split search is a pure O(mtry·n) prefix scan
//     with zero sorting;
//   - the reference path (reference == true): the legacy re-sorting builder,
//     which sorts the node segment by (value, row) for every candidate
//     feature at every node, exactly the O(nodes·mtry·n log n) pattern the
//     fast path eliminates. It is retained as the equivalence baseline for
//     tests and benchmarks.
//
// Byte-identical means identical: both paths visit candidate features in the
// same shuffled order and scan each candidate's rows in the same
// (value, row) total order, so every floating-point accumulation happens in
// the same sequence and every split decision, threshold, leaf mean, and
// importance increment matches bit for bit.
type treeBuilder struct {
	cols      *Columns
	y         []float64
	opts      Options
	rng       *rand.Rand
	reference bool

	bagSize    int
	importance []float64 // impurity-decrease accumulator per feature (d)

	// Fast path: lists[f*bagSize+i] is the i-th bag entry of feature f's
	// sorted list; node [lo,hi) owns lists[f*bagSize+lo : f*bagSize+hi).
	lists []int32

	// Reference path: the node segment (bag entries, order irrelevant —
	// every use re-sorts a copy into refSeg).
	order  []int32
	refSeg []int32

	goesLeft []bool  // per-row split side, written then read at each split
	tmp      []int32 // stable-partition spill buffer

	featBuf []int // candidate feature scratch

	// Tree under construction; backed by reusable scratch, copied out by
	// finish().
	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	value   []float64
}

// grow builds the tree over the bag and returns a right-sized copy.
func (b *treeBuilder) grow() *tree {
	b.feature = b.feature[:0]
	b.thresh = b.thresh[:0]
	b.left = b.left[:0]
	b.right = b.right[:0]
	b.value = b.value[:0]
	b.buildNode(0, b.bagSize, 0)
	return b.finish()
}

// finish copies the scratch-backed node arrays into exactly-sized persistent
// storage: two backing allocations per tree instead of the append-growth
// churn of building in place.
func (b *treeBuilder) finish() *tree {
	n := len(b.feature)
	i32 := make([]int32, 3*n)
	f64 := make([]float64, 2*n)
	t := &tree{
		feature: i32[:n:n],
		left:    i32[n : 2*n : 2*n],
		right:   i32[2*n : 3*n : 3*n],
		thresh:  f64[:n:n],
		value:   f64[n : 2*n : 2*n],
	}
	copy(t.feature, b.feature)
	copy(t.left, b.left)
	copy(t.right, b.right)
	copy(t.thresh, b.thresh)
	copy(t.value, b.value)
	return t
}

// addNode appends a node and returns its index.
func (b *treeBuilder) addNode() int32 {
	i := int32(len(b.feature))
	b.feature = append(b.feature, -1)
	b.thresh = append(b.thresh, 0)
	b.left = append(b.left, -1)
	b.right = append(b.right, -1)
	b.value = append(b.value, 0)
	return i
}

// nodeRows returns the node's bag entries ordered by (value of feature f,
// row). The fast path reads its presorted list segment for free; the
// reference path copies the segment and sorts it — the per-node, per-feature
// O(n log n) the presorted layout exists to avoid.
func (b *treeBuilder) nodeRows(f, lo, hi int) []int32 {
	if !b.reference {
		return b.lists[f*b.bagSize+lo : f*b.bagSize+hi]
	}
	seg := b.refSeg[:hi-lo]
	copy(seg, b.order[lo:hi])
	col := b.cols.vals[f]
	slices.SortFunc(seg, func(a, bb int32) int { return cmpValRow(col, a, bb) })
	return seg
}

// buildNode grows the subtree over bag entries [lo, hi) and returns its
// node index.
func (b *treeBuilder) buildNode(lo, hi, depth int) int32 {
	if debugCheckSorted != nil && !b.reference {
		debugCheckSorted(b, lo, hi)
	}
	node := b.addNode()
	n := hi - lo

	// Node statistics, accumulated in the canonical (feature-0 value, row)
	// order so both builder strategies round identically.
	sum, sum2 := 0.0, 0.0
	for _, row := range b.nodeRows(0, lo, hi) {
		v := b.y[row]
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	sse := sum2 - sum*sum/float64(n) // total squared error around the mean
	b.value[node] = mean

	if n < 2*b.opts.MinSamplesLeaf || sse <= 1e-12 ||
		(b.opts.MaxDepth > 0 && depth >= b.opts.MaxDepth) {
		return node
	}

	feat, thresh, gain := b.bestSplit(lo, hi, sum)
	if feat < 0 {
		return node
	}

	// Mark each row's side and count the entries going left. The partition
	// predicate is the same `<=` predict uses, so midpoints that round onto
	// a boundary value stay consistent with inference.
	col := b.cols.vals[feat]
	nl := 0
	for _, row := range b.nodeRows(feat, lo, hi) {
		if left := col[row] <= thresh; left {
			b.goesLeft[row] = true
			nl++
		} else {
			b.goesLeft[row] = false
		}
	}
	mid := lo + nl
	if mid == lo || mid == hi {
		return node // degenerate partition; keep as leaf
	}

	// Stable partition: relative order within each side is preserved, so the
	// fast path's per-feature lists remain sorted by (value, row) in both
	// children.
	if b.reference {
		stablePartition(b.order[lo:hi], b.goesLeft, b.tmp)
	} else {
		for f := 0; f < b.cols.dim; f++ {
			stablePartition(b.lists[f*b.bagSize+lo:f*b.bagSize+hi], b.goesLeft, b.tmp)
		}
	}

	b.importance[feat] += gain
	b.feature[node] = int32(feat)
	b.thresh[node] = thresh
	b.left[node] = b.buildNode(lo, mid, depth+1)
	b.right[node] = b.buildNode(mid, hi, depth+1)
	return node
}

// stablePartition moves seg entries whose row is marked goesLeft to the
// front, preserving relative order on both sides. tmp must hold len(seg).
func stablePartition(seg []int32, goesLeft []bool, tmp []int32) {
	w, k := 0, 0
	for _, row := range seg {
		if goesLeft[row] {
			seg[w] = row
			w++
		} else {
			tmp[k] = row
			k++
		}
	}
	copy(seg[w:], tmp[:k])
}

// bestSplit searches a random subset of features for the split with the
// largest SSE reduction: one prefix scan per candidate over the node's rows
// in (value, row) order, evaluating every boundary between distinct values.
// It returns the chosen feature (-1 if none), the threshold, and the
// impurity decrease.
func (b *treeBuilder) bestSplit(lo, hi int, sum float64) (feat int, thresh float64, gain float64) {
	n := hi - lo
	d := b.cols.dim
	mtry := b.opts.MaxFeatures
	if mtry <= 0 || mtry > d {
		mtry = d
	}

	// Draw mtry distinct candidate features.
	b.featBuf = b.featBuf[:0]
	for i := 0; i < d; i++ {
		b.featBuf = append(b.featBuf, i)
	}
	b.rng.Shuffle(d, func(i, j int) { b.featBuf[i], b.featBuf[j] = b.featBuf[j], b.featBuf[i] })
	candidates := b.featBuf[:mtry]

	feat = -1
	bestScore := math.Inf(-1)
	minLeaf := b.opts.MinSamplesLeaf

	for _, f := range candidates {
		seg := b.nodeRows(f, lo, hi)
		col := b.cols.vals[f]
		leftSum := 0.0
		for i := 0; i < n-1; i++ {
			leftSum += b.y[seg[i]]
			nl := i + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			xv, xn := col[seg[i]], col[seg[i+1]]
			if xv == xn {
				continue // cannot split between equal values
			}
			rightSum := sum - leftSum
			// Maximizing SSE reduction == maximizing
			// leftSum²/nl + rightSum²/nr (parent term is constant).
			score := leftSum*leftSum/float64(nl) + rightSum*rightSum/float64(nr)
			if score > bestScore {
				bestScore = score
				feat = f
				thresh = (xv + xn) / 2
			}
		}
	}
	if feat < 0 {
		return -1, 0, 0
	}
	parentScore := sum * sum / float64(n)
	gain = bestScore - parentScore
	if gain <= 1e-12 {
		return -1, 0, 0
	}
	return feat, thresh, gain
}
