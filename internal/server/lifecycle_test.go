package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServerConfig(t *testing.T, cfg Config, problems ...Problem) (*Manager, *httptest.Server) {
	t.Helper()
	mgr := NewManagerConfig(cfg, problems...)
	ts := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
	})
	return mgr, ts
}

// waitEvicted polls until the id is gone from the store.
func waitEvicted(t *testing.T, mgr *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := mgr.Get(id); !ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session %s was never evicted", id)
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStatusesOrderPastMillionSequence(t *testing.T) {
	// Ids compared as strings break at the run-%06d padding boundary:
	// "run-1000000" < "run-999999" lexicographically. Ordering must follow
	// the numeric sequence.
	mgr, ts := newTestServer(t, testProblem("toy", 0))
	mgr.seq.Store(999_998)
	req := RunRequest{Problem: "toy", Seed: 1, RandomSamples: 10, MaxIterations: 1}
	first := postRun(t, ts, req)  // run-999999
	second := postRun(t, ts, req) // run-1000000
	if first.ID != "run-999999" || second.ID != "run-1000000" {
		t.Fatalf("unexpected ids %q, %q", first.ID, second.ID)
	}
	waitTerminal(t, ts, first.ID)
	waitTerminal(t, ts, second.ID)

	sts := mgr.Statuses()
	if len(sts) != 2 {
		t.Fatalf("Statuses returned %d sessions", len(sts))
	}
	if sts[0].ID != "run-1000000" || sts[1].ID != "run-999999" {
		t.Fatalf("order = [%s, %s], want newest (run-1000000) first", sts[0].ID, sts[1].ID)
	}
}

func TestTTLEvictsTerminalSessions(t *testing.T) {
	mgr, ts := newTestServerConfig(t, Config{
		SessionTTL:      200 * time.Millisecond,
		JanitorInterval: 10 * time.Millisecond,
	}, testProblem("toy", 0))

	st := postRun(t, ts, RunRequest{Problem: "toy", Seed: 1, RandomSamples: 10, MaxIterations: 1})
	waitTerminal(t, ts, st.ID)
	waitEvicted(t, mgr, st.ID)

	// An evicted id is a clean 404 on every per-run endpoint, not a crash.
	for _, path := range []string{"", "/front", "/events"} {
		resp, err := http.Get(ts.URL + "/runs/" + st.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /runs/{id}%s after eviction = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE after eviction = %d, want 404", resp.StatusCode)
	}

	stats := getStats(t, ts)
	if stats.EvictedTTL == 0 {
		t.Fatalf("stats report no TTL evictions: %+v", stats)
	}
	if stats.Sessions != 0 {
		t.Fatalf("stats still count %d sessions", stats.Sessions)
	}
	if stats.TotalStarted != 1 {
		t.Fatalf("total_started = %d", stats.TotalStarted)
	}
}

func TestMaxSessionsEvictsOldestTerminalFirst(t *testing.T) {
	const maxKeep = 3
	mgr, ts := newTestServerConfig(t, Config{MaxSessions: maxKeep}, testProblem("toy", 0))

	// Six sessions run to completion one after another; the store must
	// never retain more than the cap, dropping the oldest finished runs.
	var ids []string
	for i := 0; i < 6; i++ {
		st := postRun(t, ts, RunRequest{
			Problem: "toy", Seed: int64(i), RandomSamples: 10, MaxIterations: 1,
		})
		ids = append(ids, st.ID)
		waitTerminal(t, ts, st.ID)
	}

	if n := mgr.store.Len(); n > maxKeep {
		t.Fatalf("store retains %d sessions, cap is %d", n, maxKeep)
	}
	// The newest maxKeep sessions survive; the oldest were evicted.
	for _, id := range ids[len(ids)-maxKeep:] {
		if _, ok := mgr.Get(id); !ok {
			t.Fatalf("recent session %s was evicted", id)
		}
	}
	for _, id := range ids[:len(ids)-maxKeep] {
		if _, ok := mgr.Get(id); ok {
			t.Fatalf("old terminal session %s survived past the cap", id)
		}
	}
	stats := getStats(t, ts)
	if want := int64(len(ids) - maxKeep); stats.EvictedCap != want {
		t.Fatalf("evicted_cap = %d, want %d", stats.EvictedCap, want)
	}
}

func TestRunningSessionsNeverEvicted(t *testing.T) {
	// Aggressive TTL and a cap of 1, with a long-running session started
	// first: the running session must survive every eviction pass while
	// newer sessions finish and expire around it.
	mgr, ts := newTestServerConfig(t, Config{
		SessionTTL:      20 * time.Millisecond,
		MaxSessions:     1,
		JanitorInterval: 10 * time.Millisecond,
	}, testProblem("toy", 0), testProblem("slow", 5*time.Millisecond))

	running := postRun(t, ts, RunRequest{
		Problem: "slow", Seed: 1, RandomSamples: 100, MaxIterations: 500, MaxBatch: 50, Workers: 1,
	})
	// Eviction is the only wait needed: a session can be evicted only
	// after it turns terminal, and the aggressive TTL + cap guarantee the
	// janitor reclaims each fast session shortly after it finishes.
	for i := 0; i < 3; i++ {
		st := postRun(t, ts, RunRequest{
			Problem: "toy", Seed: int64(i), RandomSamples: 10, MaxIterations: 1,
		})
		waitEvicted(t, mgr, st.ID)
	}

	// All passes ran (everything else was evicted), yet the in-flight
	// session is still there and still running.
	st := getStatus(t, ts, running.ID)
	if st.State != StateRunning {
		t.Fatalf("running session state = %s", st.State)
	}
	stats := getStats(t, ts)
	if stats.Running != 1 || stats.Sessions != 1 {
		t.Fatalf("stats = %+v, want exactly the running session", stats)
	}

	// Cancel it; once terminal it becomes eligible and the janitor must
	// reclaim it, leaving the store empty.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+running.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled RunStatus
	err = json.NewDecoder(resp.Body).Decode(&cancelled)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, err %v", resp.StatusCode, err)
	}
	// The DELETE response is the atomic post-cancel status — no second
	// lookup that eviction could invalidate.
	if cancelled.ID != running.ID {
		t.Fatalf("cancel returned status for %q", cancelled.ID)
	}
	waitEvicted(t, mgr, running.ID)
}

func TestBoundedMemoryUnderChurn(t *testing.T) {
	// The acceptance scenario: a daemon with both -session-ttl and
	// -max-sessions set, sequence seeded past the 10^6 rollover, one
	// in-flight session, and more finished sessions than the cap. The
	// retained count stays bounded, the in-flight session survives, and
	// Statuses orders numerically.
	const maxKeep = 4
	mgr, ts := newTestServerConfig(t, Config{
		SessionTTL:      10 * time.Second, // long: only the cap evicts here
		MaxSessions:     maxKeep,
		Shards:          8,
		JanitorInterval: 10 * time.Millisecond,
	}, testProblem("toy", 0), testProblem("slow", 5*time.Millisecond))
	mgr.seq.Store(999_997)

	running := postRun(t, ts, RunRequest{ // run-999998
		Problem: "slow", Seed: 1, RandomSamples: 100, MaxIterations: 500, MaxBatch: 50, Workers: 1,
	})
	const churn = 10
	for i := 0; i < churn; i++ {
		st := postRun(t, ts, RunRequest{
			Problem: "toy", Seed: int64(i), RandomSamples: 10, MaxIterations: 1,
		})
		waitTerminal(t, ts, st.ID)
	}

	if n := mgr.store.Len(); n > maxKeep {
		t.Fatalf("store retains %d sessions after churn, cap is %d", n, maxKeep)
	}
	if st := getStatus(t, ts, running.ID); st.State != StateRunning {
		t.Fatalf("in-flight session did not survive churn: %s", st.State)
	}

	sts := mgr.Statuses()
	for i := 1; i < len(sts); i++ {
		prev, _ := parseSeq(sts[i-1].ID)
		cur, _ := parseSeq(sts[i].ID)
		if cur >= prev {
			t.Fatalf("Statuses not newest-first numerically: %s before %s", sts[i-1].ID, sts[i].ID)
		}
	}
	// The listing spans the rollover: churn pushed ids past run-1000000
	// while the running session holds run-999998.
	last := sts[len(sts)-1]
	if last.ID != running.ID {
		t.Fatalf("oldest retained = %s, want the running session %s", last.ID, running.ID)
	}
	stats := getStats(t, ts)
	if stats.EvictedCap == 0 || stats.Shards != 8 || stats.MaxSessions != maxKeep {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.TotalStarted != 999_997+1+churn {
		t.Fatalf("total_started = %d", stats.TotalStarted)
	}
}

func TestEmptyCollectionsMarshalAsArrays(t *testing.T) {
	// Strict clients reject null where a collection is expected: an empty
	// problem registry and a pre-first-event status must both say [].
	_, ts := newTestServer(t) // no problems registered
	resp, err := http.Get(ts.URL + "/problems")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Fatalf("GET /problems with no problems = %q, want []", got)
	}

	// A slow bootstrap means the first status precedes the first event.
	_, ts2 := newTestServer(t, testProblem("slow", 10*time.Millisecond))
	st := postRun(t, ts2, RunRequest{Problem: "slow", Seed: 1, RandomSamples: 200, Workers: 1})
	r, err := http.Get(ts2.URL + "/runs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw["iterations"])); got != "[]" {
		t.Fatalf(`"iterations" before the first event = %s, want []`, got)
	}
}

func TestEventTimingFieldsAlwaysPresent(t *testing.T) {
	// The phase timings must not be dropped by omitempty: the bootstrap
	// event has no fit/encode/predict phase, and those fields must still
	// appear (as 0) so consumers can tell "zero" from "missing".
	var ev IterationEvent
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"fit_ms", "encode_ms", "predict_ms", "eval_ms"} {
		if !strings.Contains(string(b), fmt.Sprintf("%q:0", field)) {
			t.Fatalf("marshalled zero event %s is missing %q", b, field)
		}
	}
}
