package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/param"
	"repro/internal/sched"
)

// gatedProblem returns a problem whose evaluator blocks until gate is
// closed, so tests can hold a run mid-evaluation while asserting queue
// behavior around it.
func gatedProblem(name string, gate chan struct{}) Problem {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
	)
	eval := core.EvaluatorFunc(func(cfg param.Config) []float64 {
		<-gate
		return []float64{cfg[0] + 1, cfg[1] + 1}
	})
	return Problem{Name: name, Space: space, Eval: eval, Objectives: []string{"f0", "f1"}}
}

var schedReq = RunRequest{
	Problem: "toy", Seed: 3, RandomSamples: 4, MaxIterations: 1, MaxBatch: 4,
}

func schedCfg(dir string) Config {
	return Config{
		DataDir: dir,
		Sched: &sched.Config{
			MaxRunning: 1,
			Quota:      sched.TenantQuota{MaxQueued: 1},
		},
	}
}

func runDirExists(t *testing.T, dataDir, id string) bool {
	t.Helper()
	_, err := os.Stat(filepath.Join(dataDir, "runs", id))
	if err == nil {
		return true
	}
	if !os.IsNotExist(err) {
		t.Fatalf("stat run dir %s: %v", id, err)
	}
	return false
}

func waitState(t *testing.T, m *Manager, id string, want State) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("run %s not found while waiting for %s", id, want)
		}
		if st := s.status(); st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached state %s", id, want)
	return RunStatus{}
}

// TestSchedQueueCancelLeavesNoRunDir is the S6 regression: a run cancelled
// while still queued must leave no trace in the data directory —
// persistence happens at dispatch, after admission, never at submission.
func TestSchedQueueCancelLeavesNoRunDir(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m := NewManagerConfig(schedCfg(dir), gatedProblem("toy", gate))

	st1, err := m.Start(schedReq)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if st1.State != StateRunning {
		t.Fatalf("run 1 state = %s, want running (immediate admission)", st1.State)
	}
	if !runDirExists(t, dir, st1.ID) {
		t.Fatal("admitted run has no run directory")
	}

	req2 := schedReq
	req2.Tenant, req2.Priority = "team-b", 7
	st2, err := m.Start(req2)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if st2.State != StateQueued {
		t.Fatalf("run 2 state = %s, want queued (slot held by run 1)", st2.State)
	}
	if st2.Tenant != "team-b" || st2.Priority != 7 {
		t.Fatalf("queued status does not echo identity: %+v", st2)
	}
	if runDirExists(t, dir, st2.ID) {
		t.Fatal("queued run already has a run directory (S6: persistence must wait for dispatch)")
	}

	cst, ok := m.Cancel(st2.ID)
	if !ok || cst.State != StateCancelled {
		t.Fatalf("cancel queued run = %+v, %v", cst, ok)
	}
	if runDirExists(t, dir, st2.ID) {
		t.Fatal("queue-cancelled run leaked a run directory")
	}

	close(gate)
	if st := waitManagerTerminal(t, m, st1.ID); st.State != StateDone {
		t.Fatalf("run 1 final state = %s", st.State)
	}
	shutdownManager(t, m)
	if runDirExists(t, dir, st2.ID) {
		t.Fatal("cancelled run directory appeared after shutdown")
	}
	if !runDirExists(t, dir, st1.ID) {
		t.Fatal("completed run lost its directory")
	}
}

// TestSchedRejectLeavesNoSessionOrDir: a submission past the tenant queue
// bound is rejected atomically — no session in the store, no run directory,
// no waitgroup leak.
func TestSchedRejectLeavesNoSessionOrDir(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m := NewManagerConfig(schedCfg(dir), gatedProblem("toy", gate))

	st1, err := m.Start(schedReq)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Start(schedReq)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Start(schedReq)
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("third submit error = %v, want ErrQueueFull", err)
	}
	if got := len(m.Statuses()); got != 2 {
		t.Fatalf("store holds %d sessions after rejection, want 2", got)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != st1.ID {
		t.Fatalf("runs dir = %v, want exactly [%s]", entries, st1.ID)
	}

	if _, ok := m.Cancel(st2.ID); !ok {
		t.Fatal("cancelling queued run 2")
	}
	close(gate)
	waitManagerTerminal(t, m, st1.ID)
	shutdownManager(t, m)
}

// TestSchedShutdownDropsQueuedNoDir: Shutdown aborts still-queued runs —
// they finish cancelled, never start an engine, and leave no directory.
func TestSchedShutdownDropsQueuedNoDir(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m := NewManagerConfig(schedCfg(dir), gatedProblem("toy", gate))

	st1, err := m.Start(schedReq)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Start(schedReq)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	// Shutdown drops the queued ticket before waiting on live runs.
	waitState(t, m, st2.ID, StateCancelled)
	close(gate) // let run 1's blocked evaluation drain
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if runDirExists(t, dir, st2.ID) {
		t.Fatal("shutdown-dropped run leaked a run directory")
	}
	if !runDirExists(t, dir, st1.ID) {
		t.Fatal("dispatched run lost its directory across shutdown")
	}
}

// TestSchedHTTP429RetryAfter drives the whole backpressure path over real
// HTTP: tenant identity via the X-Tenant header, 429 + Retry-After on a
// full queue, queued-state visibility in /stats, and DELETE of a queued
// run.
func TestSchedHTTP429RetryAfter(t *testing.T) {
	gate := make(chan struct{})
	m := NewManagerConfig(Config{
		Sched: &sched.Config{
			MaxRunning: 1,
			Quota:      sched.TenantQuota{MaxQueued: 1},
			RetryAfter: 3 * time.Second,
		},
	}, gatedProblem("toy", gate))
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	post := func(tenant string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(schedReq)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/runs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp1 := post("alpha")
	var st1 RunStatus
	if err := json.NewDecoder(resp1.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusCreated || st1.Tenant != "alpha" {
		t.Fatalf("run 1: code %d, status %+v (header tenant not applied)", resp1.StatusCode, st1)
	}

	resp2 := post("alpha")
	var st2 RunStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated || st2.State != StateQueued {
		t.Fatalf("run 2: code %d, state %s, want created+queued", resp2.StatusCode, st2.State)
	}

	resp3 := post("alpha")
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run 3 code = %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}

	// A different tenant is not affected by alpha's full queue.
	resp4 := post("beta")
	var st4 RunStatus
	if err := json.NewDecoder(resp4.Body).Decode(&st4); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusCreated {
		t.Fatalf("beta submit code = %d, want 201 (independent quota)", resp4.StatusCode)
	}

	var stats Stats
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Sched == nil || stats.Sched.Rejected != 1 || stats.Queued != 2 {
		t.Fatalf("stats missing scheduler accounting: queued=%d sched=%+v", stats.Queued, stats.Sched)
	}

	// DELETE a queued run resolves it to cancelled without ever running.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+st2.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	var dst RunStatus
	if err := json.NewDecoder(dresp.Body).Decode(&dst); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dst.State != StateCancelled {
		t.Fatalf("deleted queued run state = %s, want cancelled", dst.State)
	}

	close(gate)
	waitTerminal(t, ts, st1.ID)
	waitTerminal(t, ts, st4.ID)
	shutdownManager(t, m)
}

// TestSchedQueuedRunDispatchesAndCompletes: the plain happy path — a
// queued run dispatches when the slot frees and finishes done, with the
// scheduler's stats reflecting both dispatches.
func TestSchedQueuedRunDispatchesAndCompletes(t *testing.T) {
	gate := make(chan struct{})
	m := NewManagerConfig(Config{
		Sched: &sched.Config{MaxRunning: 1},
	}, gatedProblem("toy", gate))

	st1, err := m.Start(schedReq)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Start(schedReq)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateQueued {
		t.Fatalf("run 2 state = %s, want queued", st2.State)
	}
	close(gate)
	if st := waitManagerTerminal(t, m, st1.ID); st.State != StateDone {
		t.Fatalf("run 1 final state = %s", st.State)
	}
	if st := waitManagerTerminal(t, m, st2.ID); st.State != StateDone {
		t.Fatalf("run 2 final state = %s", st.State)
	}
	stats := m.Stats()
	if stats.Sched == nil || stats.Sched.Dispatched != 2 || stats.Sched.Running != 0 {
		t.Fatalf("scheduler stats after drain: %+v", stats.Sched)
	}
	shutdownManager(t, m)
}
