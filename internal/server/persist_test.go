package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/param"
)

// persistReq is the run request used across the persistence tests: big
// enough to exercise bootstrap + AL rounds, small enough to stay fast.
var persistReq = RunRequest{
	Problem: "toy", Seed: 11, RandomSamples: 25, MaxIterations: 3, MaxBatch: 12,
}

func shutdownManager(t *testing.T, mgr *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func getFrontBytes(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id + "/front")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s/front = %d: %s", id, resp.StatusCode, data)
	}
	return string(data)
}

func waitManagerTerminal(t *testing.T, mgr *Manager, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("run %s not found while waiting", id)
		}
		if st := s.status(); st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not reach a terminal state", id)
	return RunStatus{}
}

// A finished run must survive a daemon restart: status, error-free state,
// and the exact front keep serving from the persisted artifacts.
func TestPersistRestartServesTerminalRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir}

	m1 := NewManagerConfig(cfg, testProblem("toy", 0))
	ts1 := httptest.NewServer(m1.Handler())
	st := postRun(t, ts1, persistReq)
	final := waitTerminal(t, ts1, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	front1 := getFrontBytes(t, ts1, st.ID)
	ts1.Close()
	shutdownManager(t, m1)

	m2 := NewManagerConfig(cfg, testProblem("toy", 0))
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()
	defer shutdownManager(t, m2)

	restored := getStatus(t, ts2, st.ID)
	if restored.State != StateDone {
		t.Errorf("restored state = %s, want done", restored.State)
	}
	if restored.Samples != final.Samples || restored.FrontSize != final.FrontSize {
		t.Errorf("restored status %d samples/%d front, want %d/%d",
			restored.Samples, restored.FrontSize, final.Samples, final.FrontSize)
	}
	if len(restored.Iterations) != len(final.Iterations) {
		t.Errorf("restored %d iteration events, want %d", len(restored.Iterations), len(final.Iterations))
	}
	if front2 := getFrontBytes(t, ts2, st.ID); front2 != front1 {
		t.Error("restored front differs from the front served before restart")
	}
	// New runs on the restarted daemon must not collide with restored ids.
	st2 := postRun(t, ts2, persistReq)
	if st2.ID == st.ID {
		t.Fatalf("restarted daemon reissued id %s", st.ID)
	}
	waitTerminal(t, ts2, st2.ID)
}

// Graceful shutdown mid-run leaves the run resumable; a restart with
// Resume replays the journal and finishes with a front byte-identical to
// an uninterrupted run of the same seed.
func TestPersistShutdownResumeByteIdentical(t *testing.T) {
	// Uninterrupted reference, memory-only.
	ref, tsRef := newTestServer(t, testProblem("toy", 0))
	_ = ref
	refSt := postRun(t, tsRef, persistReq)
	if st := waitTerminal(t, tsRef, refSt.ID); st.State != StateDone {
		t.Fatalf("reference run: %s (%s)", st.State, st.Error)
	}
	refFront := getFrontBytes(t, tsRef, refSt.ID)

	dir := t.TempDir()
	cfg := Config{DataDir: dir, Resume: true, Logf: t.Logf}
	// Slow evaluator: the run cannot finish before the shutdown below.
	m1 := NewManagerConfig(cfg, testProblem("toy", 3*time.Millisecond))
	ts1 := httptest.NewServer(m1.Handler())
	st := postRun(t, ts1, persistReq)

	// Wait for at least the bootstrap to be journaled, then shut down.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Samples < persistReq.RandomSamples {
		if time.Now().After(deadline) {
			t.Fatal("bootstrap never journaled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	shutdownManager(t, m1)

	if _, err := os.Stat(filepath.Join(dir, "runs", st.ID, "result.json")); !os.IsNotExist(err) {
		t.Fatalf("shutdown-cancelled run has a result.json (err=%v); it would not be resumable", err)
	}
	rec, err := journal.Recover(filepath.Join(dir, "runs", st.ID, "journal.jsonl"))
	if err != nil {
		t.Fatalf("recovering journal: %v", err)
	}
	if len(rec.Checkpoints) == 0 || rec.Checkpoints[0].Reason != "shutdown" {
		t.Fatalf("journal has no shutdown checkpoint: %+v", rec.Checkpoints)
	}
	if rec.Done != nil {
		t.Fatal("journal has a done marker; run would not be resumable")
	}

	m2 := NewManagerConfig(cfg, testProblem("toy", 0))
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()
	defer shutdownManager(t, m2)

	final := waitTerminal(t, ts2, st.ID)
	if final.State != StateDone {
		t.Fatalf("resumed run: %s (%s)", final.State, final.Error)
	}
	if got := getFrontBytes(t, ts2, st.ID); got != refFront {
		t.Errorf("resumed front differs from uninterrupted reference:\n resumed: %s\n reference: %s", got, refFront)
	}
	if !m2.Ready() {
		t.Error("manager not ready after resume completed")
	}
}

// An evicted persistent session's files are deleted, and the 404 survives
// a restart — eviction must not resurrect as a zombie at the next
// recovery scan.
func TestPersistEvictionUnlinksAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, MaxSessions: 1, JanitorInterval: time.Hour}

	m1 := NewManagerConfig(cfg, testProblem("toy", 0))
	ts1 := httptest.NewServer(m1.Handler())
	first := postRun(t, ts1, persistReq)
	waitTerminal(t, ts1, first.ID)
	firstDir := filepath.Join(dir, "runs", first.ID)
	if _, err := os.Stat(firstDir); err != nil {
		t.Fatalf("run dir missing before eviction: %v", err)
	}

	// The second Start enforces the cap synchronously and evicts the first
	// (terminal) session.
	second := postRun(t, ts1, persistReq)
	if _, ok := m1.Get(first.ID); ok {
		t.Fatal("first session not evicted by cap")
	}
	if _, err := os.Stat(firstDir); !os.IsNotExist(err) {
		t.Fatalf("evicted session's run dir still on disk (err=%v)", err)
	}
	waitTerminal(t, ts1, second.ID)
	ts1.Close()
	shutdownManager(t, m1)

	m2 := NewManagerConfig(cfg, testProblem("toy", 0))
	defer shutdownManager(t, m2)
	if _, ok := m2.Get(first.ID); ok {
		t.Error("evicted session resurrected after restart")
	}
	if _, ok := m2.Get(second.ID); !ok {
		t.Error("retained session lost after restart")
	}
}

// A user DELETE persists as terminal: the cancelled run must not restart
// as running (or recovering) after a daemon restart.
func TestPersistUserCancelStaysCancelled(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Resume: true}

	m1 := NewManagerConfig(cfg, testProblem("toy", 3*time.Millisecond))
	ts1 := httptest.NewServer(m1.Handler())
	st := postRun(t, ts1, persistReq)
	if _, ok := m1.Cancel(st.ID); !ok {
		t.Fatal("cancel missed")
	}
	if got := waitTerminal(t, ts1, st.ID); got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	ts1.Close()
	shutdownManager(t, m1)

	m2 := NewManagerConfig(cfg, testProblem("toy", 0))
	defer shutdownManager(t, m2)
	s, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("cancelled run gone after restart")
	}
	if got := s.status(); got.State != StateCancelled {
		t.Errorf("state after restart = %s, want cancelled (no zombie resurrection)", got.State)
	}
}

// Starting without Resume restores interrupted runs as failed — with an
// error telling the operator how to continue them — and leaves their
// directories intact so a later Resume restart still can.
func TestPersistInterruptedWithoutResume(t *testing.T) {
	dir := t.TempDir()

	m1 := NewManagerConfig(Config{DataDir: dir}, testProblem("toy", 3*time.Millisecond))
	ts1 := httptest.NewServer(m1.Handler())
	st := postRun(t, ts1, persistReq)
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Samples < persistReq.RandomSamples {
		if time.Now().After(deadline) {
			t.Fatal("bootstrap never journaled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	shutdownManager(t, m1)

	m2 := NewManagerConfig(Config{DataDir: dir}, testProblem("toy", 0))
	s, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("interrupted run gone after restart")
	}
	got := s.status()
	if got.State != StateFailed || !strings.Contains(got.Error, "-resume") {
		t.Fatalf("status = %s (%q), want failed with -resume hint", got.State, got.Error)
	}
	shutdownManager(t, m2)
	if _, err := os.Stat(filepath.Join(dir, "runs", st.ID, "journal.jsonl")); err != nil {
		t.Fatalf("journal deleted by no-resume restart: %v", err)
	}

	// Third start, with Resume: the run completes after all.
	m3 := NewManagerConfig(Config{DataDir: dir, Resume: true}, testProblem("toy", 0))
	defer shutdownManager(t, m3)
	if final := waitManagerTerminal(t, m3, st.ID); final.State != StateDone {
		t.Fatalf("resumed run: %s (%s)", final.State, final.Error)
	}
}

// Resume refuses a journal whose fingerprint does not match the relaunched
// run (here: meta.json tampered to a different seed) instead of silently
// replaying mismatched measurements.
func TestPersistResumeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Resume: true}

	m1 := NewManagerConfig(cfg, testProblem("toy", 3*time.Millisecond))
	ts1 := httptest.NewServer(m1.Handler())
	st := postRun(t, ts1, persistReq)
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Samples < persistReq.RandomSamples {
		if time.Now().After(deadline) {
			t.Fatal("bootstrap never journaled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	shutdownManager(t, m1)

	metaPath := filepath.Join(dir, "runs", st.ID, "meta.json")
	var meta runMeta
	if err := journal.ReadJSON(metaPath, &meta); err != nil {
		t.Fatal(err)
	}
	meta.Request.Seed++
	if err := journal.WriteJSONAtomic(metaPath, meta); err != nil {
		t.Fatal(err)
	}

	m2 := NewManagerConfig(cfg, testProblem("toy", 0))
	defer shutdownManager(t, m2)
	final := waitManagerTerminal(t, m2, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "fingerprint") {
		t.Fatalf("status = %s (%q), want failed with fingerprint refusal", final.State, final.Error)
	}
}

// While a resumed run is replaying, /readyz answers 503; once it reaches
// live measurement, 200. The evaluator gate makes the window deterministic.
func TestPersistReadyzDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Resume: true}

	// gate, when set, blocks every evaluation until released.
	var gate atomic.Pointer[chan struct{}]
	problem := testProblem("toy", 0)
	inner := problem.Eval
	problem.Eval = core.EvaluatorFunc(func(cfg param.Config) []float64 {
		if ch := gate.Load(); ch != nil {
			<-*ch
		}
		return inner.Evaluate(cfg)
	})

	m1 := NewManagerConfig(cfg, problem)
	ts1 := httptest.NewServer(m1.Handler())
	if getReadyz(t, ts1) != http.StatusOK {
		t.Fatal("fresh daemon not ready")
	}
	st := postRun(t, ts1, persistReq)
	if final := waitManagerTerminal(t, m1, st.ID); final.State != StateDone {
		t.Fatalf("reference run: %s (%s)", final.State, final.Error)
	}
	ts1.Close()
	shutdownManager(t, m1)

	// Rewind the run to mid-exploration: drop the result and cut the
	// journal back to the bootstrap batch, exactly what a crash right
	// after the random phase leaves behind. Resume must then measure live
	// batches, which the gate holds closed — so the recovery window stays
	// open for as long as this test wants to observe it.
	truncateToFirstBatch(t, cfg, st.ID)
	ch := make(chan struct{})
	gate.Store(&ch)
	m2 := NewManagerConfig(cfg, problem)
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()
	defer shutdownManager(t, m2)

	if code := getReadyz(t, ts2); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery = %d, want 503", code)
	}
	if m2.Stats().Recovering != 1 {
		t.Errorf("stats recovering = %d, want 1", m2.Stats().Recovering)
	}
	s, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("recovering run not visible")
	}
	if got := s.status().State; got != StateRecovering {
		t.Errorf("state during recovery = %s, want recovering", got)
	}

	close(ch)
	gate.Store(nil)
	readyDeadline := time.Now().Add(60 * time.Second)
	for getReadyz(t, ts2) != http.StatusOK {
		if time.Now().After(readyDeadline) {
			t.Fatal("daemon never became ready after the gate opened")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final := waitManagerTerminal(t, m2, st.ID); final.State != StateDone {
		t.Fatalf("resumed run: %s (%s)", final.State, final.Error)
	}
}

// truncateToFirstBatch deletes a finished run's result and cuts its
// journal back to the header plus the first batch record, leaving on disk
// what a crash after the bootstrap phase would have left. The spilled
// evaluation cache goes too — it holds the full run's measurements, and a
// restarted daemon would happily serve the "live" batches from it without
// ever touching the evaluator (exactly what production wants, exactly what
// a test gating the evaluator does not).
func truncateToFirstBatch(t *testing.T, cfg Config, id string) {
	t.Helper()
	if err := os.RemoveAll(filepath.Join(cfg.DataDir, "cache")); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(cfg.DataDir, "runs", id)
	if err := os.Remove(filepath.Join(dir, "result.json")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var keep []string
	for _, line := range strings.Split(string(data), "\n") {
		keep = append(keep, line)
		if strings.Contains(line, `"t":"batch"`) {
			break
		}
	}
	if len(keep) < 2 {
		t.Fatalf("journal has no batch record:\n%s", data)
	}
	if err := os.WriteFile(path, []byte(strings.Join(keep, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func getReadyz(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Ready bool `json:"ready"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Ready != (resp.StatusCode == http.StatusOK) {
		t.Fatalf("readyz body %+v inconsistent with code %d", body, resp.StatusCode)
	}
	return resp.StatusCode
}

// A torn trailing journal record (crash mid-append) is truncated and the
// run resumes from the last intact batch — recovery must not crash-loop
// or refuse the journal.
func TestPersistResumeTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Resume: true, Logf: t.Logf}

	m1 := NewManagerConfig(cfg, testProblem("toy", 3*time.Millisecond))
	ts1 := httptest.NewServer(m1.Handler())
	st := postRun(t, ts1, persistReq)
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Samples < persistReq.RandomSamples {
		if time.Now().After(deadline) {
			t.Fatal("bootstrap never journaled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	shutdownManager(t, m1)

	jpath := filepath.Join(dir, "runs", st.ID, "journal.jsonl")
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"t":"batch","batch":{"iteration":9,"samples":[{"i":12,"o":[0.1`)
	f.Close()

	m2 := NewManagerConfig(cfg, testProblem("toy", 0))
	defer shutdownManager(t, m2)
	if final := waitManagerTerminal(t, m2, st.ID); final.State != StateDone {
		t.Fatalf("resumed run after torn tail: %s (%s)", final.State, final.Error)
	}
}
