package server

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
)

// This file is the manager's durability layer. With Config.DataDir set,
// every run owns a directory:
//
//	<data-dir>/runs/<id>/meta.json     run identity + originating request
//	<data-dir>/runs/<id>/journal.jsonl fsync'd evaluation journal
//	<data-dir>/runs/<id>/result.json   terminal status + front, once finished
//	<data-dir>/cache/<problem>/        evaluator memo-cache spill files
//
// meta.json is written before the first evaluation, result.json after the
// last; both atomically (temp file + rename). Between the two the journal
// is the single source of truth: a directory with meta and journal but no
// result is by definition an interrupted run, which -resume replays.
// Resume works by relaunching the deterministic engine with the journaled
// measurements pre-loaded (core.Options.Replay) — every random draw, pool,
// and forest fit is recomputed identically, only the evaluator calls are
// skipped, so a resumed run is byte-identical to an uninterrupted one.

// runMeta is meta.json: enough to rebuild the session and its engine
// options after a restart.
type runMeta struct {
	ID      string     `json:"id"`
	Seq     int64      `json:"seq"`
	Problem string     `json:"problem"`
	Created time.Time  `json:"created"`
	Request RunRequest `json:"request"`
}

// storedResult is result.json: everything a restarted daemon needs to keep
// serving a finished run's status and front without the live result.
type storedResult struct {
	Status   RunStatus         `json:"status"`
	Finished time.Time         `json:"finished"`
	Front    *core.StoredFront `json:"front,omitempty"`
}

func (m *Manager) runDir(id string) string {
	return filepath.Join(m.cfg.DataDir, "runs", id)
}

func (m *Manager) journalPath(id string) string {
	return filepath.Join(m.runDir(id), "journal.jsonl")
}

// cacheDirName maps a problem name to a filesystem-safe directory name: a
// readable prefix plus a hash so distinct names never collide after
// sanitizing.
func cacheDirName(problem string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, problem)
	if len(clean) > 24 {
		clean = clean[:24]
	}
	sum := sha256.Sum256([]byte(problem))
	return fmt.Sprintf("%s-%x", clean, sum[:4])
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// persistStart creates the run directory, writes meta.json, and opens the
// run's journal with its fingerprint header. On failure the directory is
// removed so a rejected launch leaves no on-disk trace.
func (m *Manager) persistStart(s *session, fingerprint string) error {
	dir := m.runDir(s.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := runMeta{ID: s.id, Seq: s.seq, Problem: s.problem.Name, Created: s.created, Request: s.req}
	if err := journal.WriteJSONAtomic(filepath.Join(dir, "meta.json"), meta); err != nil {
		os.RemoveAll(dir)
		return err
	}
	jw, err := journal.Create(m.journalPath(s.id), journal.Header{
		RunID:       s.id,
		Problem:     s.problem.Name,
		Fingerprint: fingerprint,
		Seed:        s.req.Seed,
		Created:     s.created,
	})
	if err != nil {
		os.RemoveAll(dir)
		return err
	}
	s.jw = jw
	return nil
}

// persistTerminal runs after a session's engine goroutine finishes: it
// journals the terminal marker and writes result.json — unless the run was
// stopped by daemon shutdown, in which case the journal keeps only its
// shutdown checkpoint and the directory stays in the interrupted
// (resumable) shape. A user DELETE is different: it persists as terminal,
// so a restart cannot resurrect a run its owner ended.
func (m *Manager) persistTerminal(s *session) {
	if m.cfg.DataDir == "" || s.jw == nil {
		return
	}
	defer s.closeJournal()
	state, finished := s.terminalInfo()
	if state == StateCancelled && m.isClosed() {
		return // graceful shutdown: leave the run resumable
	}
	st := s.status()
	_ = s.jw.Done(journal.Done{State: string(state), Error: st.Error})
	res := storedResult{Status: st, Finished: finished}
	s.mu.Lock()
	r := s.result
	s.mu.Unlock()
	if r != nil {
		res.Front = core.NewStoredFront(s.problem.Space, r, s.problem.Name, "", s.problem.Objectives)
	}
	if err := journal.WriteJSONAtomic(filepath.Join(m.runDir(s.id), "result.json"), &res); err != nil {
		m.logf("run %s: persisting result: %v", s.id, err)
	}
}

// sessionRecorder adapts a session's journal to the engine's BatchRecorder
// hook: each measured batch — and any indices it tolerated away unmeasured
// under MaxUnmeasuredFraction — is durably appended before the engine
// proceeds. A successful append also flips a recovering session to running
// — replayed batches are never re-journaled, so an append means the run is
// past its recovered history and measuring live again.
type sessionRecorder struct{ s *session }

// RecordBatch implements core.BatchRecorder.
func (r sessionRecorder) RecordBatch(batch core.RecordedBatch) error {
	b := journal.Batch{
		Iteration:  batch.Iteration,
		Active:     batch.Active,
		Unmeasured: batch.Unmeasured,
	}
	for _, s := range batch.Samples {
		b.Samples = append(b.Samples, journal.SampleRecord{Index: s.Index, Objs: s.Objs})
	}
	if err := r.s.jw.Batch(b); err != nil {
		return err
	}
	r.s.journaled.Add(int64(len(batch.Samples)))
	r.s.leaveRecovering()
	return nil
}

// restoreDataDir scans <data-dir>/runs after a restart: terminal runs are
// restored as read-only sessions (their status and front keep serving, and
// TTL/cap eviction keeps applying to them), interrupted runs are returned
// for the resume pass, and the sequence counter is advanced past
// everything on disk so newly minted ids never collide with old ones.
func (m *Manager) restoreDataDir() []runMeta {
	root := filepath.Join(m.cfg.DataDir, "runs")
	entries, err := os.ReadDir(root)
	if err != nil {
		if !os.IsNotExist(err) {
			m.logf("scanning %s: %v", root, err)
		}
		return nil
	}
	var interrupted []runMeta
	var maxSeq int64
	for _, e := range entries {
		id := e.Name()
		seq, ok := parseSeq(id)
		if !e.IsDir() || !ok {
			continue
		}
		dir := filepath.Join(root, id)
		var meta runMeta
		if err := journal.ReadJSON(filepath.Join(dir, "meta.json"), &meta); err != nil {
			m.logf("run %s: unreadable meta.json, skipping: %v", id, err)
			continue
		}
		maxSeq = max(maxSeq, seq)
		var res storedResult
		err := journal.ReadJSON(filepath.Join(dir, "result.json"), &res)
		switch {
		case err == nil:
			m.restoreTerminal(meta, &res)
		case errors.Is(err, os.ErrNotExist):
			interrupted = append(interrupted, meta)
		default:
			// The run finished but its result artifact is unreadable; surface
			// that as a failed session rather than replaying a finished run.
			m.logf("run %s: unreadable result.json: %v", id, err)
			m.restoreFailed(meta, fmt.Errorf("stored result unreadable: %w", err))
		}
	}
	if maxSeq > m.seq.Load() {
		m.seq.Store(maxSeq)
	}
	return interrupted
}

// restoreTerminal places a finished run back in the store from its
// persisted artifacts.
func (m *Manager) restoreTerminal(meta runMeta, res *storedResult) {
	finished := res.Finished
	if finished.IsZero() {
		finished = time.Now()
	}
	s := &session{
		id:       meta.ID,
		seq:      meta.Seq,
		problem:  Problem{Name: meta.Problem},
		created:  meta.Created,
		cancel:   func() {},
		req:      meta.Request,
		state:    res.Status.State,
		finished: finished,
		events:   res.Status.Iterations,
		stored:   res,
	}
	if p, ok := m.problem(meta.Problem); ok {
		s.problem = p
	}
	if res.Status.Error != "" {
		s.err = errors.New(res.Status.Error)
	}
	m.store.Put(s)
}

// restoreFailed places a run back in the store as failed, without touching
// its directory — a later restart under a fixed configuration can still
// resume it.
func (m *Manager) restoreFailed(meta runMeta, err error) {
	s := &session{
		id:       meta.ID,
		seq:      meta.Seq,
		problem:  Problem{Name: meta.Problem},
		created:  meta.Created,
		cancel:   func() {},
		req:      meta.Request,
		state:    StateFailed,
		finished: time.Now(),
		err:      err,
	}
	if p, ok := m.problem(meta.Problem); ok {
		s.problem = p
	}
	m.store.Put(s)
}

// failInterrupted handles interrupted runs when the daemon starts without
// resume enabled: each id still resolves (as failed, with an explanatory
// error) and its directory stays intact for a future -resume restart.
func (m *Manager) failInterrupted(metas []runMeta) {
	for _, meta := range metas {
		m.restoreFailed(meta, errors.New("interrupted by daemon restart; start with -resume to continue it"))
	}
}

// resumeInterrupted relaunches every interrupted run from its journal.
// Sessions appear in the store immediately (state "recovering") and
// GET /readyz stays not-ready until each one has either reached live
// measurement or gone terminal. Resume failures (missing problem,
// fingerprint mismatch, unrecoverable journal) mark the session failed in
// memory but leave its directory untouched.
func (m *Manager) resumeInterrupted(metas []runMeta) {
	m.recovering.Add(int64(len(metas)))
	for _, meta := range metas {
		ctx, cancel := context.WithCancel(m.baseCtx)
		s := &session{
			id:      meta.ID,
			seq:     meta.Seq,
			problem: Problem{Name: meta.Problem},
			created: meta.Created,
			cancel:  cancel,
			req:     meta.Request,
			state:   StateRecovering,
		}
		s.recoverDone = func() { m.recovering.Add(-1) }
		if p, ok := m.problem(meta.Problem); ok {
			s.problem = p
		}
		m.store.Put(s)
		m.wg.Add(1)
		go func(meta runMeta) {
			defer m.wg.Done()
			defer cancel()
			m.resumeRun(ctx, s, meta)
		}(meta)
	}
}

// resumeRun replays one interrupted run's journal through the engine and
// continues it from the first unmeasured configuration.
func (m *Manager) resumeRun(ctx context.Context, s *session, meta runMeta) {
	fail := func(err error) {
		m.logf("resume %s: %v", s.id, err)
		s.finish(nil, err)
	}
	p, ok := m.problem(meta.Problem)
	if !ok {
		fail(fmt.Errorf("%w: %q (re-register it and restart to resume)", ErrUnknownProblem, meta.Problem))
		return
	}
	rec, err := journal.Recover(m.journalPath(s.id))
	if err != nil {
		fail(err)
		return
	}
	if rec.TruncatedBytes > 0 {
		m.logf("resume %s: dropped a %d-byte torn journal tail", s.id, rec.TruncatedBytes)
	}
	cache, _ := m.Cache(meta.Problem)
	if meta.Request.NoCache {
		cache = nil
	}
	opts := m.buildOpts(p, meta.Request, cache, s)
	if fp := core.RunFingerprint(p.Space, opts); fp != rec.Header.Fingerprint {
		fail(fmt.Errorf("journal fingerprint mismatch (journal %q, relaunch %q); refusing to replay", rec.Header.Fingerprint, fp))
		return
	}
	if rec.Done != nil && rec.Done.State != string(StateDone) {
		// The run was cancelled or failed but crashed before result.json:
		// persist the terminal state now instead of resurrecting the run.
		m.restoreDone(s, rec)
		return
	}
	// A journal with a done(done) marker replays to the identical finished
	// result (the engine stops at the same converged/budget point), which
	// regenerates the missing result.json without any evaluator calls.
	m.logf("resume %s: replaying %d measured evaluations across %d batches", s.id, rec.Samples(), len(rec.Batches))
	jw, err := journal.OpenAppendWriter(m.journalPath(s.id))
	if err != nil {
		fail(err)
		return
	}
	s.jw = jw
	s.journaled.Store(int64(rec.Samples()))
	opts.Replay = rec.Replay()
	opts.ReplaySkips = rec.Skips()
	opts.Journal = sessionRecorder{s}
	res, err := core.RunContext(ctx, p.Space, p.Eval, opts)
	s.finish(res, err)
	m.persistTerminal(s)
}

// restoreDone finalizes a run whose journal already carries a non-done
// terminal marker (cancelled or failed) but whose result.json was lost to
// the crash: the terminal status is rebuilt from the journal and persisted
// so the next restart restores it directly.
func (m *Manager) restoreDone(s *session, rec *journal.Recovered) {
	st := RunStatus{
		ID:         s.id,
		Problem:    s.problem.Name,
		State:      State(rec.Done.State),
		Created:    s.created,
		Samples:    rec.Samples(),
		Error:      rec.Done.Error,
		Iterations: []IterationEvent{},
	}
	res := &storedResult{Status: st, Finished: time.Now()}
	s.mu.Lock()
	s.stored = res
	s.state = st.State
	s.finished = res.Finished
	if st.Error != "" {
		s.err = errors.New(st.Error)
	}
	s.wakeLocked()
	s.mu.Unlock()
	s.recoverExit()
	if err := journal.WriteJSONAtomic(filepath.Join(m.runDir(s.id), "result.json"), res); err != nil {
		m.logf("run %s: persisting restored result: %v", s.id, err)
	}
}
