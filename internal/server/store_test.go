package server

import (
	"fmt"
	"sync"
	"testing"
)

func storeSession(seq int64) *session {
	return &session{id: fmt.Sprintf("run-%06d", seq), seq: seq, state: StateRunning}
}

func TestParseSeq(t *testing.T) {
	for _, tc := range []struct {
		id  string
		seq int64
		ok  bool
	}{
		{"run-000001", 1, true},
		{"run-999999", 999999, true},
		{"run-1000000", 1000000, true}, // past the %06d padding width
		{"run-0", 0, true},
		{"run--5", 0, false},
		{"run-abc", 0, false},
		{"job-000001", 0, false},
		{"", 0, false},
	} {
		seq, ok := parseSeq(tc.id)
		if ok != tc.ok || seq != tc.seq {
			t.Errorf("parseSeq(%q) = (%d, %v), want (%d, %v)", tc.id, seq, ok, tc.seq, tc.ok)
		}
	}
}

func TestShardedStoreBasics(t *testing.T) {
	for _, shards := range []int{1, 4, 16, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := newShardedStore(shards)
			const n = 100
			for i := int64(1); i <= n; i++ {
				st.Put(storeSession(i))
			}
			if st.Len() != n {
				t.Fatalf("Len = %d, want %d", st.Len(), n)
			}
			for i := int64(1); i <= n; i++ {
				s, ok := st.Get(fmt.Sprintf("run-%06d", i))
				if !ok || s.seq != i {
					t.Fatalf("Get(run-%06d) = %v, %v", i, s, ok)
				}
			}
			if _, ok := st.Get("run-000000"); ok {
				t.Fatal("Get found a session never put")
			}
			if _, ok := st.Get("not-an-id"); ok {
				t.Fatal("Get found a session under an unparsable id")
			}
			// Non-canonical spellings of a live sequence must not resolve:
			// "run-7" naming another client's "run-000007" would let a
			// guessed short id read — or Delete, i.e. cancel — it.
			for _, alias := range []string{"run-7", "run-+7", "run-0000007"} {
				if _, ok := st.Get(alias); ok {
					t.Fatalf("Get(%q) resolved run-000007", alias)
				}
				if st.Delete(alias) {
					t.Fatalf("Delete(%q) removed run-000007", alias)
				}
			}
			if snap := st.Snapshot(); len(snap) != n {
				t.Fatalf("Snapshot returned %d sessions", len(snap))
			}
			if !st.Delete("run-000042") {
				t.Fatal("Delete missed a present session")
			}
			if st.Delete("run-000042") {
				t.Fatal("Delete reported a second removal")
			}
			if st.Delete("not-an-id") {
				t.Fatal("Delete accepted an unparsable id")
			}
			if st.Len() != n-1 {
				t.Fatalf("Len after delete = %d", st.Len())
			}
		})
	}
}

func TestShardedStoreDefaultShardCount(t *testing.T) {
	for _, n := range []int{0, -3} {
		if got := len(newShardedStore(n).shards); got != defaultShards {
			t.Fatalf("newShardedStore(%d) built %d shards, want %d", n, got, defaultShards)
		}
	}
}

func TestShardedStoreConcurrent(t *testing.T) {
	// Hammer all operations from many goroutines; the race detector is the
	// real assertion here.
	st := newShardedStore(8)
	const (
		workers = 16
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				seq := int64(w*perW + i + 1)
				id := fmt.Sprintf("run-%06d", seq)
				st.Put(storeSession(seq))
				if _, ok := st.Get(id); !ok {
					t.Errorf("lost session %s", id)
					return
				}
				st.Snapshot()
				st.Len()
				if i%3 == 0 {
					st.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
}
