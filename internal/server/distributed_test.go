package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/worker"
)

// newWorkerFleet starts n httptest worker daemons all serving the given
// problem and returns a pool over them.
func newWorkerFleet(t *testing.T, n int, p Problem) *worker.Pool {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ws := worker.NewServer(2)
		if err := ws.Register(worker.Problem{
			Name:       p.Name,
			Space:      p.Space,
			Eval:       p.Eval,
			Objectives: len(p.Objectives),
		}); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(ws.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	pool, err := worker.NewPool(urls, worker.Options{ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestDistributedSessionMatchesLocalAndReportsWorkerHealth(t *testing.T) {
	// End to end through the REST API: a daemon configured with a worker
	// fleet must run sessions to the same result as an in-process daemon,
	// and GET /stats must expose per-worker health counters.
	prob := testProblem("toy", 0)
	req := RunRequest{Problem: "toy", Seed: 5, RandomSamples: 30, MaxIterations: 2, MaxBatch: 20}

	_, localTS := newTestServer(t, prob)
	localSt := postRun(t, localTS, req)
	localDone := waitTerminal(t, localTS, localSt.ID)

	pool := newWorkerFleet(t, 2, prob)
	mgr, remoteTS := newTestServerConfig(t, Config{EvalPool: pool}, prob)
	remoteSt := postRun(t, remoteTS, req)
	remoteDone := waitTerminal(t, remoteTS, remoteSt.ID)

	if localDone.State != StateDone || remoteDone.State != StateDone {
		t.Fatalf("states: local %s, remote %s (remote err: %s)", localDone.State, remoteDone.State, remoteDone.Error)
	}
	if localDone.Samples != remoteDone.Samples || localDone.FrontSize != remoteDone.FrontSize {
		t.Fatalf("distributed run diverged: local %d samples/%d front, remote %d/%d",
			localDone.Samples, localDone.FrontSize, remoteDone.Samples, remoteDone.FrontSize)
	}

	// Both fronts, point by point.
	localFront := getFrontJSON(t, localTS, localSt.ID)
	remoteFront := getFrontJSON(t, remoteTS, remoteSt.ID)
	if localFront != remoteFront {
		t.Fatal("distributed front differs from the local front")
	}

	// Worker health in /stats: both workers took traffic.
	st := mgr.Stats()
	if len(st.Workers) != 2 {
		t.Fatalf("stats workers = %+v, want 2 entries", st.Workers)
	}
	var total int64
	for _, w := range st.Workers {
		total += w.Requests
	}
	if total == 0 {
		t.Fatal("no worker requests recorded in stats")
	}

	// The JSON body carries them too; a local daemon omits the field.
	var raw map[string]json.RawMessage
	resp, err := http.Get(remoteTS.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := raw["workers"]; !ok {
		t.Fatal("remote daemon /stats lacks workers")
	}
	resp, err = http.Get(localTS.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw = nil // decoding into a non-nil map merges; start clean
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := raw["workers"]; ok {
		t.Fatal("in-process daemon /stats should omit workers")
	}
}

// getFrontJSON fetches a run's front as its raw JSON body.
func getFrontJSON(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id + "/front")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET front = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDistributedSessionUnknownWorkerProblemFailsCleanly(t *testing.T) {
	// The coordinator serves a problem its workers don't have: the session
	// must fail with the worker's 404 surfaced in the run error rather
	// than hang or crash the daemon.
	prob := testProblem("toy", 0)
	other := testProblem("elsewhere", 0)
	pool := newWorkerFleet(t, 1, other)
	_, ts := newTestServerConfig(t, Config{EvalPool: pool}, prob)
	st := postRun(t, ts, RunRequest{Problem: "toy", Seed: 1, RandomSamples: 10, MaxIterations: 1})
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if done.Error == "" {
		t.Fatal("failed session carries no error")
	}
}
