package server

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestEventMarshalsUndefinedOOB: a fit with no out-of-bag samples reports
// OOB error NaN, which encoding/json cannot represent — the event stream
// must emit null for those entries (and carry the oob_samples counts that
// explain them) instead of failing the whole NDJSON write.
func TestEventMarshalsUndefinedOOB(t *testing.T) {
	ev := toEvent(core.IterationStats{
		Iteration:  1,
		OOBError:   []float64{0.25, math.NaN()},
		OOBSamples: []int{17, 0},
		FitTime:    3 * time.Millisecond,
	})
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatalf("marshal with NaN OOB: %v", err)
	}
	s := string(data)
	if !strings.Contains(s, `"oob_error":[0.25,null]`) {
		t.Fatalf("NaN not mapped to null: %s", s)
	}
	if !strings.Contains(s, `"oob_samples":[17,0]`) {
		t.Fatalf("oob_samples missing: %s", s)
	}

	// Round trip: null comes back as NaN, defined values bit-exact.
	var back IterationEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.OOBError[0] != 0.25 || !math.IsNaN(back.OOBError[1]) {
		t.Fatalf("round trip lost the undefined marker: %v", back.OOBError)
	}
}

// TestEventOmitsEmptyOOB: the bootstrap event carries no OOB data; the
// fields must stay omitted rather than marshaling as [] noise.
func TestEventOmitsEmptyOOB(t *testing.T) {
	data, err := json.Marshal(toEvent(core.IterationStats{NewSamples: 40}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "oob_") {
		t.Fatalf("empty OOB fields marshaled: %s", data)
	}
}
