package server

import (
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SessionStore holds the manager's live and retained sessions. The manager
// owns session lifecycle (creation, eviction policy); the store only
// provides concurrent-safe placement and lookup. Implementations must be
// safe for concurrent use from many HTTP handlers at once.
//
// This indirection is what the roadmap's persistent-store and multi-daemon
// items build on: handlers never assume a session lives forever in one
// process-local map — any Get can miss, and every handler must treat a
// missing id as "gone", not "bug".
type SessionStore interface {
	// Put places a session; the key is the session's numeric sequence.
	Put(s *session)
	// Get returns the session with the given id, if retained.
	Get(id string) (*session, bool)
	// Delete removes a session and reports whether it was present.
	Delete(id string) bool
	// Snapshot returns all retained sessions in no particular order.
	Snapshot() []*session
	// Len reports the number of retained sessions.
	Len() int
}

const (
	runIDPrefix   = "run-"
	defaultShards = 16
)

// parseSeq extracts the numeric sequence from a "run-%06d" id. Ids the
// manager never minted (wrong prefix, non-numeric) report ok=false.
func parseSeq(id string) (int64, bool) {
	rest, found := strings.CutPrefix(id, runIDPrefix)
	if !found {
		return 0, false
	}
	seq, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// shardedStore is the in-memory SessionStore: N independently locked
// shards keyed by the run sequence, so concurrent POST/GET/DELETE traffic
// spreads across locks instead of serializing on one mutex. Run sequences
// are assigned round-robin by the manager, so consecutive sessions land on
// consecutive shards.
type shardedStore struct {
	shards []storeShard
}

type storeShard struct {
	mu   sync.RWMutex
	runs map[int64]*session
}

// newShardedStore returns a store with n shards (n < 1 selects the
// default).
func newShardedStore(n int) *shardedStore {
	if n < 1 {
		n = defaultShards
	}
	st := &shardedStore{shards: make([]storeShard, n)}
	for i := range st.shards {
		st.shards[i].runs = make(map[int64]*session)
	}
	return st
}

func (st *shardedStore) shardFor(seq int64) *storeShard {
	return &st.shards[int(seq%int64(len(st.shards)))]
}

// Put implements SessionStore.
func (st *shardedStore) Put(s *session) {
	sh := st.shardFor(s.seq)
	sh.mu.Lock()
	sh.runs[s.seq] = s
	sh.mu.Unlock()
}

// Get implements SessionStore.
func (st *shardedStore) Get(id string) (*session, bool) {
	seq, ok := parseSeq(id)
	if !ok {
		return nil, false
	}
	sh := st.shardFor(seq)
	sh.mu.RLock()
	s, ok := sh.runs[seq]
	sh.mu.RUnlock()
	if !ok || s.id != id {
		// Only the exact minted id resolves: a non-canonical spelling of
		// the same sequence ("run-7", "run-+7") must not reach — let alone
		// cancel — another client's "run-000007".
		return nil, false
	}
	return s, true
}

// Delete implements SessionStore.
func (st *shardedStore) Delete(id string) bool {
	seq, ok := parseSeq(id)
	if !ok {
		return false
	}
	sh := st.shardFor(seq)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.runs[seq]
	if !ok || s.id != id {
		return false
	}
	delete(sh.runs, seq)
	return true
}

// Snapshot implements SessionStore.
func (st *shardedStore) Snapshot() []*session {
	out := make([]*session, 0, st.Len())
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.runs {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len implements SessionStore.
func (st *shardedStore) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.runs)
		sh.mu.RUnlock()
	}
	return n
}

// persistentStore couples the sharded in-memory store to a data
// directory: deleting a session (explicit eviction, TTL, or cap) also
// unlinks its on-disk run directory, so an evicted id stays 404 across
// restarts instead of resurrecting as a zombie at the next recovery scan.
// The unlink happens only after the in-memory delete succeeded, which
// requires the canonical minted id — a hostile id never reaches the
// filesystem.
type persistentStore struct {
	*shardedStore
	dataDir string
}

// newPersistentStore returns a store over dataDir with n shards.
func newPersistentStore(n int, dataDir string) *persistentStore {
	return &persistentStore{shardedStore: newShardedStore(n), dataDir: dataDir}
}

// Delete implements SessionStore; it also removes the run's directory.
func (st *persistentStore) Delete(id string) bool {
	if !st.shardedStore.Delete(id) {
		return false
	}
	_ = os.RemoveAll(filepath.Join(st.dataDir, "runs", id))
	return true
}

// --- lifecycle: TTL and cap eviction ---------------------------------------

// evictExpired removes terminal sessions whose TTL has lapsed. Running
// sessions are never evicted: their goroutine is still producing events
// and their cancel handle must stay reachable.
func (m *Manager) evictExpired(now time.Time) {
	if m.cfg.SessionTTL <= 0 {
		return
	}
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	for _, s := range m.store.Snapshot() {
		state, finished := s.terminalInfo()
		if state.Terminal() && now.Sub(finished) >= m.cfg.SessionTTL {
			if m.store.Delete(s.id) {
				m.evictedTTL.Add(1)
			}
		}
	}
}

// enforceCap evicts oldest-terminal-first until the store is back under
// MaxSessions. If every excess session is still running, nothing is
// evicted — the store temporarily exceeds the cap rather than killing
// in-flight work.
func (m *Manager) enforceCap() {
	if m.cfg.MaxSessions <= 0 {
		return
	}
	// Serialized with evictExpired: two concurrent passes (Start's
	// synchronous call racing a janitor tick) would each compute excess
	// from the same Len and together evict below the cap.
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	excess := m.store.Len() - m.cfg.MaxSessions
	if excess <= 0 {
		return
	}
	var terminal []*session
	for _, s := range m.store.Snapshot() {
		if state, _ := s.terminalInfo(); state.Terminal() {
			terminal = append(terminal, s)
		}
	}
	// Oldest first by creation sequence, so retained history is always the
	// newest runs.
	slices.SortFunc(terminal, func(a, b *session) int { return int(a.seq - b.seq) })
	for _, s := range terminal {
		if excess <= 0 {
			return
		}
		if m.store.Delete(s.id) {
			m.evictedCap.Add(1)
			excess--
		}
	}
}

// janitor periodically applies TTL and cap eviction until the manager's
// base context is cancelled (Shutdown). Cap pressure is also relieved
// synchronously on Start; the janitor catches sessions that turned
// terminal since, and is the only driver of TTL expiry.
func (m *Manager) janitor(interval time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case now := <-t.C:
			m.evictExpired(now)
			m.enforceCap()
		}
	}
}
