package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/worker"
)

// TestHelperSpecObjective is not a test: it is the exec-bridge objective
// program for the acceptance test below, re-invoked from this test binary.
func TestHelperSpecObjective(t *testing.T) {
	if os.Getenv("SPEC_BRIDGE_HELPER") == "" {
		return
	}
	in := bufio.NewScanner(os.Stdin)
	out := json.NewEncoder(os.Stdout)
	for in.Scan() {
		var req worker.ExecRequest
		if err := json.Unmarshal(in.Bytes(), &req); err != nil {
			out.Encode(worker.ExecResponse{Error: err.Error()})
			continue
		}
		x, y := req.Config["x"], req.Config["y"]
		out.Encode(worker.ExecResponse{Objectives: []float64{
			(x-3)*(x-3) + (y-1)*(y-1),
			x + 0.8*y,
		}})
	}
	os.Exit(0)
}

// specDoc is a complete declarative problem: a constrained space bound to
// this test binary through the exec bridge.
func specDoc(t *testing.T) []byte {
	t.Helper()
	t.Setenv("SPEC_BRIDGE_HELPER", "1")
	return []byte(fmt.Sprintf(`{
  "version": 1,
  "name": "spec-e2e",
  "description": "acceptance problem for spec-defined exec evaluation",
  "parameters": [
    {"name": "x", "kind": "grid", "low": 0, "high": 5, "points": 26},
    {"name": "y", "kind": "grid", "low": 0, "high": 5, "points": 26}
  ],
  "constraints": [{"then": "y <= x"}],
  "objectives": ["distance", "cost"],
  "evaluator": "exec:%s -test.run=^TestHelperSpecObjective$"
}`, os.Args[0]))
}

// specLoader is the same adapter cmd/hypermapperd wires into its Config.
func specLoader(data []byte) (Problem, error) {
	p, err := catalog.FromSpecData(data)
	if err != nil {
		return Problem{}, err
	}
	return Problem{
		Name:        p.Name,
		Description: p.Description,
		Space:       p.Space,
		Eval:        p.Eval,
		Objectives:  p.Objectives,
	}, nil
}

func TestSpecProblemEndToEndByteIdentical(t *testing.T) {
	// The acceptance criterion of the declarative problem layer: a seeded
	// run over a spec-loaded problem with an exec-bridge evaluator must
	// produce a byte-identical front whether the spec was registered at
	// startup, registered at runtime via POST /problems, or evaluated
	// remotely across a worker fleet that had the spec POSTed to it.
	doc := specDoc(t)
	req := RunRequest{Problem: "spec-e2e", Seed: 77, RandomSamples: 20, MaxIterations: 2, MaxBatch: 10}

	// Startup registration (the -problems path).
	startupProb, err := specLoader(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, startupProb)
	front := getFrontJSON(t, ts, runToDone(t, ts, req))

	// Runtime registration over the API.
	_, ts2 := newTestServerConfig(t, Config{SpecLoader: specLoader})
	resp, err := http.Post(ts2.URL+"/problems", "application/json", strings.NewReader(string(doc)))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Name        string `json:"name"`
		Constrained bool   `json:"constrained"`
		Parameters  []struct {
			Name   string    `json:"name"`
			Kind   string    `json:"kind"`
			Values []float64 `json:"values"`
		} `json:"parameters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /problems = %d", resp.StatusCode)
	}
	if created.Name != "spec-e2e" || !created.Constrained || len(created.Parameters) != 2 {
		t.Fatalf("registration reply = %+v", created)
	}
	if created.Parameters[0].Kind != "real" || len(created.Parameters[0].Values) != 26 {
		t.Fatalf("parameter detail = %+v", created.Parameters[0])
	}
	if front2 := getFrontJSON(t, ts2, runToDone(t, ts2, req)); front2 != front {
		t.Fatalf("runtime-registered front differs from startup-registered:\n%s\nvs\n%s", front2, front)
	}

	// Distributed: every worker gets the spec at runtime, the coordinator
	// fans evaluation out to them (its own evaluator is bypassed).
	urls := make([]string, 2)
	for i := range urls {
		ws := worker.NewServer(2)
		ws.SetSpecLoader(func(data []byte) (worker.Problem, error) {
			p, err := catalog.FromSpecData(data)
			if err != nil {
				return worker.Problem{}, err
			}
			return worker.Problem{Name: p.Name, Space: p.Space, Eval: p.Eval, Objectives: len(p.Objectives)}, nil
		})
		srv := httptest.NewServer(ws.Handler())
		t.Cleanup(srv.Close)
		resp, err := http.Post(srv.URL+"/problems", "application/json", strings.NewReader(string(doc)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("worker %d spec registration = %d", i, resp.StatusCode)
		}
		urls[i] = srv.URL
	}
	pool, err := worker.NewPool(urls, worker.Options{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	coordProb, err := specLoader(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServerConfig(t, Config{EvalPool: pool}, coordProb)
	if front3 := getFrontJSON(t, ts3, runToDone(t, ts3, req)); front3 != front {
		t.Fatalf("distributed front differs from local:\n%s\nvs\n%s", front3, front)
	}
}

// runToDone starts a run and waits for successful completion.
func runToDone(t *testing.T, ts *httptest.Server, req RunRequest) string {
	t.Helper()
	st := postRun(t, ts, req)
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("run %s finished %s: %s", st.ID, done.State, done.Error)
	}
	return st.ID
}

func TestSpecRegistrationWithoutLoaderIs501(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/problems", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("POST /problems without loader = %d, want 501", resp.StatusCode)
	}
}

func TestSpecRegistrationRejectsBadSpec(t *testing.T) {
	_, ts := newTestServerConfig(t, Config{SpecLoader: specLoader})
	for name, doc := range map[string]string{
		"malformed json": `{`,
		"unknown field":  `{"version":1,"name":"x","bogus":true}`,
		"bad constraint": `{"version":1,"name":"x","parameters":[{"name":"a","kind":"bool"}],"constraints":[{"then":"zzz == 1"}],"objectives":["f"],"evaluator":"http://h/e"}`,
	} {
		resp, err := http.Post(ts.URL+"/problems", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestProblemsEndpointParameterDetail(t *testing.T) {
	// The builtin problems advertise per-parameter detail too, with
	// non-null values arrays and no constraint flag.
	_, ts := newTestServer(t, testProblem("toy", 0))
	resp, err := http.Get(ts.URL + "/problems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var probs []struct {
		Name        string `json:"name"`
		Constrained bool   `json:"constrained"`
		Parameters  []struct {
			Name     string    `json:"name"`
			Kind     string    `json:"kind"`
			Values   []float64 `json:"values"`
			LogScale bool      `json:"log_scale"`
		} `json:"parameters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&probs); err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || len(probs[0].Parameters) != 2 {
		t.Fatalf("problems = %+v", probs)
	}
	p := probs[0].Parameters[0]
	if p.Name != "a" || p.Kind != "real" || len(p.Values) != 40 || p.LogScale {
		t.Fatalf("parameter detail = %+v", p)
	}
	if probs[0].Constrained {
		t.Fatal("unconstrained problem advertised a constraint")
	}
}
