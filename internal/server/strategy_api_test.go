package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// TestStrategyRequestEcho: a run's resolved strategy — defaults filled in —
// must be visible on the created status and on every later GET /runs/{id},
// for the default request and for a fully non-default pipeline alike.
func TestStrategyRequestEcho(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", 0))

	st := postRun(t, ts, RunRequest{
		Problem: "toy", Seed: 1, RandomSamples: 20, MaxIterations: 1, MaxBatch: 10,
	})
	want := StrategyInfo{Sampler: "uniform", Modeler: "forest", Selector: "even-thin"}
	if st.Strategy != want {
		t.Fatalf("default strategy echoed as %+v, want %+v", st.Strategy, want)
	}
	if final := waitTerminal(t, ts, st.ID); final.Strategy != want {
		t.Fatalf("terminal strategy = %+v, want %+v", final.Strategy, want)
	}

	st = postRun(t, ts, RunRequest{
		Problem: "toy", Seed: 2, RandomSamples: 20, MaxIterations: 1, MaxBatch: 10,
		Strategy: StrategyRequest{Sampler: "prior", Feasibility: true, Selector: "acquisition"},
	})
	want = StrategyInfo{Sampler: "prior", Modeler: "feasibility", Selector: "acquisition"}
	if st.Strategy != want {
		t.Fatalf("advanced strategy echoed as %+v, want %+v", st.Strategy, want)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("advanced-strategy run ended %s (error %q)", final.State, final.Error)
	}
	if final.Strategy != want {
		t.Fatalf("terminal strategy = %+v, want %+v", final.Strategy, want)
	}
}

// TestStrategyBadNamesRejected: unknown stage names are a 400 at request
// time, not an engine failure later.
func TestStrategyBadNamesRejected(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", 0))
	for _, body := range []string{
		`{"problem":"toy","strategy":{"sampler":"sobol"}}`,
		`{"problem":"toy","strategy":{"selector":"greedy"}}`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestEventStreamCarriesHypervolume: every /events NDJSON line must carry a
// hypervolume field, and once the bootstrap has measured a real front the
// value is a positive number (null is reserved for "undefined", mirroring
// oob_error's NaN handling).
func TestEventStreamCarriesHypervolume(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", 0))
	st := postRun(t, ts, RunRequest{
		Problem: "toy", Seed: 7, RandomSamples: 30, MaxIterations: 2, MaxBatch: 20,
	})
	waitTerminal(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []IterationEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if _, ok := raw["hypervolume"]; !ok {
			t.Fatalf("event line %q has no hypervolume field", sc.Text())
		}
		var ev IterationEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events", len(events))
	}
	// 30 bootstrap samples on the toy problem always span a real range, so
	// the hypervolume is defined from the first event on and never shrinks
	// under the tightening reference.
	for i, ev := range events {
		hv := float64(ev.Hypervolume)
		if math.IsNaN(hv) || hv <= 0 {
			t.Fatalf("event %d hypervolume = %v, want a positive number", i, hv)
		}
	}
}

// TestJSONFloatRoundTrip pins the scalar null mapping both ways.
func TestJSONFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, err := json.Marshal(jsonFloat(f))
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != "null" {
			t.Fatalf("jsonFloat(%v) marshaled %s, want null", f, b)
		}
	}
	b, err := json.Marshal(jsonFloat(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "2.5" {
		t.Fatalf("jsonFloat(2.5) marshaled %s", b)
	}
	var v jsonFloat
	if err := json.Unmarshal([]byte("null"), &v); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(v)) {
		t.Fatalf("null unmarshaled to %v, want NaN", float64(v))
	}
	if err := json.Unmarshal([]byte("3.25"), &v); err != nil {
		t.Fatal(err)
	}
	if float64(v) != 3.25 {
		t.Fatalf("3.25 unmarshaled to %v", float64(v))
	}
}
