package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/sched"
)

// State enumerates a session's lifecycle.
type State string

const (
	// StateQueued marks a session admitted by the scheduler but waiting for
	// a free slot: its tenant is at quota or the fleet is saturated. The
	// engine has not started; nothing is persisted yet.
	StateQueued State = "queued"
	// StateRunning marks a session whose exploration is still in progress.
	StateRunning State = "running"
	// StateRecovering marks an interrupted session the daemon is rebuilding
	// from its evaluation journal after a restart: the engine is replaying
	// measured batches (no evaluator calls) until it reaches the first
	// configuration the crash lost, at which point the session transitions
	// to running. GET /readyz reports not-ready while any session is in
	// this state.
	StateRecovering State = "recovering"
	// StateDone marks a session that completed its budget or converged.
	StateDone State = "done"
	// StateCancelled marks a session stopped by DELETE /runs/{id} or
	// daemon shutdown; its partial result remains fetchable.
	StateCancelled State = "cancelled"
	// StateFailed marks a session whose run returned an error (e.g. its
	// evaluation backend exhausted retries); see RunStatus.Error.
	StateFailed State = "failed"
)

// Terminal reports whether no further progress events can arrive.
func (s State) Terminal() bool {
	return s != StateRunning && s != StateRecovering && s != StateQueued
}

// IterationEvent is one progress record: the bootstrap (iteration 0) or an
// active-learning round. The *_ms fields are the engine's per-phase
// wall-clock timings (forest fit, pool encode, pool predict, hardware
// evaluation) in milliseconds, so dashboards tailing /events can see where
// optimizer time goes in production. They are never omitted: a phase that
// measured 0 ms (or was skipped, like fit during the bootstrap) still
// reports 0, so sub-millisecond timings and true zeros are
// distinguishable from "field missing" by strict consumers.
type IterationEvent struct {
	// Iteration is 0 for the bootstrap, i ≥ 1 for the i-th AL round.
	Iteration int `json:"iteration"`
	// PredictedFrontSize is |P|, the model-predicted front size.
	PredictedFrontSize int `json:"predicted_front_size,omitempty"`
	// NewSamples, TotalSamples, and FrontSize mirror the engine's
	// IterationStats: configurations measured this round, measured in
	// total, and the measured-front size after the round.
	NewSamples   int `json:"new_samples"`
	TotalSamples int `json:"total_samples"`
	FrontSize    int `json:"front_size"`
	// OOBError is the per-objective forest OOB MSE (null = undefined).
	OOBError jsonFloats `json:"oob_error,omitempty"`
	// OOBSamples mirrors the engine's per-objective OOB sample counts: a 0
	// marks the matching oob_error as null/undefined (no sample was ever out
	// of bag), not as a perfect fit.
	OOBSamples []int `json:"oob_samples,omitempty"`
	// CacheHits and CacheMisses count this round's memo-cache lookups.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Unmeasured counts configurations this round tolerated away
	// unmeasured under the run's max_unmeasured_fraction (0 on strict
	// runs).
	Unmeasured int `json:"unmeasured,omitempty"`
	// Hypervolume is the measured front's hypervolume after this round
	// (reference point: per-objective nadir padded by 10% of the observed
	// range). It marshals as null while undefined — before any valid
	// measurement, or on a degenerate single-point range.
	Hypervolume jsonFloat `json:"hypervolume"`
	// FitMS, EncodeMS, PredictMS, and EvalMS are the per-phase wall-clock
	// timings described above.
	FitMS     float64 `json:"fit_ms"`
	EncodeMS  float64 `json:"encode_ms"`
	PredictMS float64 `json:"predict_ms"`
	EvalMS    float64 `json:"eval_ms"`
}

// jsonFloats is a float slice whose non-finite entries marshal as null.
// JSON has no NaN/Inf literals and encoding/json fails the whole write on
// one, but the engine legitimately reports NaN for an undefined OOB error
// (no out-of-bag samples on a tiny training set) and an evaluator with
// extreme objective values can overflow the MSE to +Inf — the event stream
// must carry "undefined" instead of crashing the NDJSON feed.
type jsonFloats []float64

// MarshalJSON renders the slice with null in place of NaN/±Inf.
func (v jsonFloats) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 2+16*len(v))
	buf = append(buf, '[')
	for i, f := range v {
		if i > 0 {
			buf = append(buf, ',')
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			buf = append(buf, "null"...)
			continue
		}
		buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
	}
	return append(buf, ']'), nil
}

// jsonFloat is the scalar sibling of jsonFloats: a float64 that marshals
// NaN/±Inf as null, for per-event values (like the hypervolume) that are
// legitimately undefined early in a run.
type jsonFloat float64

// MarshalJSON renders the value, with null in place of NaN/±Inf.
func (v jsonFloat) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, f, 'g', -1, 64), nil
}

// UnmarshalJSON accepts the null MarshalJSON writes, mapping it back to
// NaN so a round-trip preserves "undefined".
func (v *jsonFloat) UnmarshalJSON(data []byte) error {
	var p *float64
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	if p == nil {
		*v = jsonFloat(math.NaN())
	} else {
		*v = jsonFloat(*p)
	}
	return nil
}

// UnmarshalJSON accepts the null entries MarshalJSON writes, mapping them
// back to NaN so a round-trip preserves "undefined".
func (v *jsonFloats) UnmarshalJSON(data []byte) error {
	var raw []*float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(jsonFloats, len(raw))
	for i, p := range raw {
		if p == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *p
		}
	}
	*v = out
	return nil
}

// RunStatus is the GET /runs/{id} body: one session's identity, lifecycle
// state, and progress summary.
type RunStatus struct {
	ID      string    `json:"id"`
	Problem string    `json:"problem"`
	State   State     `json:"state"`
	Created time.Time `json:"created"`
	// Tenant and Priority echo the admission identity the run was
	// scheduled under (empty/0 on unscheduled managers).
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Samples and FrontSize summarize progress: evaluated configurations
	// and the current measured-front size (from the final result once
	// terminal, else from the latest progress event).
	Samples   int  `json:"samples"`
	FrontSize int  `json:"front_size"`
	Converged bool `json:"converged"`
	// CacheHits and CacheMisses total the session's memo-cache lookups.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Unmeasured totals the configurations tolerated away unmeasured
	// across the run (graceful degradation; 0 on strict runs).
	Unmeasured int `json:"unmeasured,omitempty"`
	// Error carries the failure reason when State is "failed".
	Error string `json:"error,omitempty"`
	// Strategy echoes the resolved search-strategy pipeline this run
	// executes with (request defaults filled in).
	Strategy StrategyInfo `json:"strategy"`
	// Iterations is the full progress-event history, bootstrap first.
	Iterations []IterationEvent `json:"iterations"`
}

// session is one managed exploration.
type session struct {
	id      string
	seq     int64 // numeric run sequence; orders sessions and picks the store shard
	problem Problem
	created time.Time
	cancel  context.CancelFunc

	// req is the originating run request, persisted in meta.json so a
	// restarted daemon can rebuild identical engine options for resume.
	req RunRequest
	// runCtx is the run's context (a child of the manager's base context)
	// and cache the memo-cache resolved at submission; both are fixed
	// before the session becomes visible. ticket is the scheduler admission
	// handle — nil on unscheduled managers and on resumed runs, which
	// relaunch outside the scheduler. It is written once before store.Put
	// publishes the session, so readers see it safely.
	runCtx context.Context
	cache  *core.EvalCache
	ticket *sched.Ticket
	// jw is the run's evaluation journal; nil when the manager has no data
	// directory, and for sessions restored already-terminal.
	jw *journal.Writer
	// journaled counts evaluations durably recorded in the journal,
	// including replayed history on resume; checkpoints persist it.
	journaled atomic.Int64
	// recoverDone fires exactly once when the session leaves
	// StateRecovering (first live measurement, or terminal); the manager
	// uses it to drive the /readyz recovering counter.
	recoverDone func()
	recoverOnce sync.Once

	mu       sync.Mutex
	state    State
	finished time.Time // when state went terminal; zero while running
	events   []IterationEvent
	subs     map[chan struct{}]struct{} // wake signals for event streamers
	result   *core.Result
	err      error
	// stored, when non-nil, is the terminal payload restored from disk
	// after a restart: status and front are served from it, because the
	// live *core.Result did not survive the process.
	stored *storedResult
}

func toEvent(s core.IterationStats) IterationEvent {
	return IterationEvent{
		Iteration:          s.Iteration,
		PredictedFrontSize: s.PredictedFrontSize,
		NewSamples:         s.NewSamples,
		TotalSamples:       s.TotalSamples,
		FrontSize:          s.FrontSize,
		OOBError:           jsonFloats(s.OOBError),
		OOBSamples:         s.OOBSamples,
		CacheHits:          s.CacheHits,
		CacheMisses:        s.CacheMisses,
		Unmeasured:         s.Unmeasured,
		Hypervolume:        jsonFloat(s.Hypervolume),
		FitMS:              durationMS(s.FitTime),
		EncodeMS:           durationMS(s.EncodeTime),
		PredictMS:          durationMS(s.PredictTime),
		EvalMS:             durationMS(s.EvalTime),
	}
}

func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// publish records a progress event and wakes event streamers. Streamers
// read from the shared history by cursor, so a stalled subscriber misses
// wake-ups (they coalesce) but never events.
func (s *session) publish(ev IterationEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
	s.wakeLocked()
}

func (s *session) wakeLocked() {
	for ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
}

// finish moves the session to a terminal state. A run stopped by
// cancellation reports context.Canceled from RunContext; a nil error means
// the run completed even if its context was cancelled moments later.
func (s *session) finish(res *core.Result, err error) {
	s.mu.Lock()
	s.result = res
	switch {
	case errors.Is(err, context.Canceled):
		s.state = StateCancelled
	case err != nil:
		s.state = StateFailed
		s.err = err
	default:
		s.state = StateDone
	}
	s.finished = time.Now()
	s.wakeLocked()
	s.mu.Unlock()
	s.recoverExit()
}

// setRunning flips a queued session to running at dispatch; a no-op once
// terminal (a shutdown abort can beat the dispatch goroutine here).
func (s *session) setRunning() {
	s.mu.Lock()
	if s.state == StateQueued {
		s.state = StateRunning
	}
	s.mu.Unlock()
}

// leaveRecovering flips a recovering session to running — called on the
// first journal append past the replayed history, when the engine starts
// measuring configurations the crash lost.
func (s *session) leaveRecovering() {
	s.mu.Lock()
	if s.state == StateRecovering {
		s.state = StateRunning
	}
	s.mu.Unlock()
	s.recoverExit()
}

// recoverExit fires the one-shot leave-recovering hook, if any.
func (s *session) recoverExit() {
	if s.recoverDone != nil {
		s.recoverOnce.Do(s.recoverDone)
	}
}

// checkpoint journals a clean-shutdown marker; the run stays resumable.
// Best-effort: the journal's batch records alone are enough to resume.
func (s *session) checkpoint(reason string) {
	if s.jw == nil {
		return
	}
	_ = s.jw.Checkpoint(journal.Checkpoint{
		Reason:  reason,
		Samples: int(s.journaled.Load()),
		Time:    time.Now(),
	})
}

// closeJournal releases the journal file, if one is open. Appends that
// race a close (a shutdown checkpoint against a finishing run) fail with
// os.ErrClosed, which every caller tolerates.
func (s *session) closeJournal() {
	if s.jw != nil {
		_ = s.jw.Close()
	}
}

// terminalInfo returns the state and, if terminal, when it became so.
func (s *session) terminalInfo() (State, time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.finished
}

// subscribe registers a wake channel for the event stream.
func (s *session) subscribe() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{}, 1)
	if s.subs == nil {
		s.subs = make(map[chan struct{}]struct{})
	}
	s.subs[ch] = struct{}{}
	return ch
}

func (s *session) unsubscribe(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, ch)
}

// eventsSince returns the events recorded past the cursor, the new cursor,
// and whether the session is terminal — one consistent snapshot, so a
// streamer that sees (no new events, terminal) can stop knowing it missed
// nothing.
func (s *session) eventsSince(cursor int) ([]IterationEvent, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor > len(s.events) {
		cursor = len(s.events)
	}
	fresh := append([]IterationEvent(nil), s.events[cursor:]...)
	return fresh, len(s.events), s.state.Terminal()
}

func (s *session) status() RunStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stored != nil {
		// Restored after a restart: the persisted status is the status.
		return s.stored.Status
	}
	st := RunStatus{
		ID:       s.id,
		Problem:  s.problem.Name,
		State:    s.state,
		Created:  s.created,
		Tenant:   s.req.Tenant,
		Priority: s.req.Priority,
		Strategy: resolveStrategy(s.req.Strategy),
		// Never nil: before the first event this must marshal as [], not
		// null, for strict clients.
		Iterations: append(make([]IterationEvent, 0, len(s.events)), s.events...),
	}
	if s.result != nil {
		st.Samples = len(s.result.Samples)
		st.FrontSize = len(s.result.Front)
		st.Converged = s.result.Converged
		st.CacheHits = s.result.CacheHits
		st.CacheMisses = s.result.CacheMisses
		st.Unmeasured = s.result.Unmeasured
	} else if n := len(s.events); n > 0 {
		st.Samples = s.events[n-1].TotalSamples
		st.FrontSize = s.events[n-1].FrontSize
		for _, ev := range s.events {
			st.CacheHits += ev.CacheHits
			st.CacheMisses += ev.CacheMisses
			st.Unmeasured += ev.Unmeasured
		}
	}
	if s.err != nil {
		st.Error = s.err.Error()
	}
	return st
}
