package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// FuzzRunRequestDecode fuzzes the POST /runs decoder — the daemon's most
// attacker-exposed parser — across body bytes and the two tenant-identity
// headers. Invariants:
//
//   - the decoder never panics, whatever the bytes;
//   - a decode error yields the zero RunRequest (nothing half-parsed leaks
//     into admission);
//   - a decoded request always has a usable effective tenant, and the
//     header fallback order (body field, X-Tenant, X-API-Key) holds;
//   - validate and a JSON round-trip are safe on whatever decoded.
//
// Run with `go test -fuzz FuzzRunRequestDecode ./internal/server` to
// explore; the committed corpus under testdata/fuzz keeps the interesting
// seeds in CI's regular `go test` runs.
func FuzzRunRequestDecode(f *testing.F) {
	f.Add([]byte(`{"problem":"synthetic","seed":7,"random_samples":12,"max_iterations":3,"max_batch":8,"pool_cap":2000,"trees":4,"strategy":{"sampler":"sobol","selector":"hypervolume"},"tenant":"team-a","priority":2}`), "", "")
	f.Add([]byte(`{}`), "", "")
	f.Add([]byte(`{"problem":"x"`), "", "")
	f.Add([]byte(`null`), "hdr-tenant", "key-123")
	f.Add([]byte(`{"seed":9223372036854775807,"priority":-9999999,"max_unmeasured_fraction":1e308}`), "", "")
	f.Add([]byte("{\"tenant\":\"\x00evil\"}"), "other", "")
	f.Add([]byte(`{"problem":"p","tenant":""}`), "", "api-key-fallback")
	f.Add([]byte(`[1,2,3]`), "", "")
	f.Add([]byte(`{"strategy":{"sampler":"nope"}}`), "", "")

	f.Fuzz(func(t *testing.T, body []byte, xTenant, xAPIKey string) {
		hdr := http.Header{}
		if xTenant != "" {
			hdr.Set("X-Tenant", xTenant)
		}
		if xAPIKey != "" {
			hdr.Set("X-API-Key", xAPIKey)
		}

		req, err := decodeRunRequest(bytes.NewReader(body), hdr)
		if err != nil {
			if req != (RunRequest{}) {
				t.Fatalf("decode error %v returned a non-zero request: %+v", err, req)
			}
			return
		}

		// validate must be total on anything that decoded.
		verr := req.validate()

		if req.tenant() == "" {
			t.Fatal("decoded request has no effective tenant (anonymous fallback broken)")
		}

		// Header fallback property, checked against an independent decode
		// of the same bytes.
		var plain RunRequest
		if derr := json.NewDecoder(bytes.NewReader(body)).Decode(&plain); derr == nil {
			want := plain.Tenant
			if want == "" {
				if xTenant != "" {
					want = xTenant
				} else {
					want = xAPIKey
				}
			}
			if req.Tenant != want {
				t.Fatalf("tenant = %q, want %q (body %q, X-Tenant %q, X-API-Key %q)",
					req.Tenant, want, body, xTenant, xAPIKey)
			}
		}

		// A request the server would accept must survive a JSON round-trip
		// byte-identically: the status endpoint echoes these fields back.
		// (Rejected requests may carry invalid UTF-8, which json.Marshal
		// sanitizes to U+FFFD — exactly why validate refuses them.)
		if verr != nil {
			return
		}
		enc, merr := json.Marshal(req)
		if merr != nil {
			t.Fatalf("re-encoding decoded request: %v", merr)
		}
		var again RunRequest
		if uerr := json.Unmarshal(enc, &again); uerr != nil {
			t.Fatalf("round-trip decode: %v", uerr)
		}
		if again.Tenant != req.Tenant || again.Priority != req.Priority {
			t.Fatalf("round-trip changed identity: %+v vs %+v", again, req)
		}
	})
}
