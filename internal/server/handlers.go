package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/worker"
)

// decodeRunRequest parses a POST /runs body and applies the tenant-header
// fallback: a tenant set in the body wins; otherwise the X-Tenant header,
// then the X-API-Key header, identify the submitter. A request with no
// identity at all runs under the shared anonymous tenant (see
// RunRequest.tenant). Split out of the handler so the decoder — the daemon's
// most attacker-exposed parser — is directly fuzzable.
func decodeRunRequest(body io.Reader, hdr http.Header) (RunRequest, error) {
	var req RunRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return RunRequest{}, fmt.Errorf("parsing request: %w", err)
	}
	if req.Tenant == "" {
		if t := hdr.Get("X-Tenant"); t != "" {
			req.Tenant = t
		} else if k := hdr.Get("X-API-Key"); k != "" {
			req.Tenant = k
		}
	}
	return req, nil
}

// retryAfterSeconds renders the scheduler's backoff hint for the
// Retry-After header (integer seconds, minimum 1).
func (m *Manager) retryAfterSeconds() string {
	d := sched.DefaultRetryAfter
	if m.cfg.Sched != nil {
		d = m.cfg.Sched.RetryAfterHint()
	}
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// probJSON is one GET /problems entry (and the POST /problems success
// body): identity plus enough per-parameter detail for a client to render
// the space without the problem's spec. Parameter details reuse the worker
// protocol's shape so a coordinator and its workers advertise problems
// identically.
type probJSON struct {
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	SpaceSize   int64              `json:"space_size"`
	Parameters  []worker.ParamInfo `json:"parameters"`
	Constrained bool               `json:"constrained,omitempty"`
	Objectives  []string           `json:"objectives"`
}

func toProbJSON(p Problem) probJSON {
	return probJSON{
		Name:        p.Name,
		Description: p.Description,
		SpaceSize:   p.Space.Size(),
		Parameters:  worker.ParamInfos(p.Space),
		Constrained: p.Space.Constrained(),
		Objectives:  p.Objectives,
	}
}

// validateProblem guards runtime registration: Manager.Register trusts its
// caller, but a spec loader's output crosses a network boundary and must
// be complete before it can back sessions.
func validateProblem(p Problem) error {
	switch {
	case p.Name == "":
		return errors.New("problem with an empty name")
	case p.Space == nil:
		return fmt.Errorf("problem %q has no space", p.Name)
	case p.Eval == nil:
		return fmt.Errorf("problem %q has no evaluator", p.Name)
	case len(p.Objectives) == 0:
		return fmt.Errorf("problem %q has no objectives", p.Name)
	}
	return nil
}

// Handler returns the REST API for the manager.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /problems", func(w http.ResponseWriter, r *http.Request) {
		probs := m.Problems()
		// Non-nil even with no registered problems: strict clients expect
		// [], not null.
		out := make([]probJSON, 0, len(probs))
		for _, p := range probs {
			out = append(out, toProbJSON(p))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /problems", func(w http.ResponseWriter, r *http.Request) {
		if m.cfg.SpecLoader == nil {
			writeError(w, http.StatusNotImplemented,
				errors.New("this daemon was started without spec support"))
			return
		}
		// A spec is human-written JSON, kilobytes at most.
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		data, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading spec: %w", err))
			return
		}
		p, err := m.cfg.SpecLoader(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := validateProblem(p); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m.Register(p)
		writeJSON(w, http.StatusCreated, toProbJSON(p))
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	// Liveness: the process is serving. Always 200 — a daemon mid-recovery
	// is alive, and restarting it on a failed liveness probe would loop.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(m.started).Seconds(),
		})
	})

	// Readiness: 503 while resumed sessions are still replaying their
	// journals, so load balancers hold traffic until recovery completes.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if n := m.recovering.Load(); n > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ready":      false,
				"recovering": n,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})

	mux.HandleFunc("POST /runs", func(w http.ResponseWriter, r *http.Request) {
		// A RunRequest is a handful of scalars; cap the body so one client
		// cannot buffer gigabytes into the shared daemon.
		r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
		req, err := decodeRunRequest(r.Body, r.Header)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Start returns the created status directly: re-fetching it from
		// the store could miss if eviction raced the creation.
		st, err := m.Start(req)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrUnknownProblem):
				code = http.StatusNotFound
			case errors.Is(err, ErrShuttingDown):
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrStorage):
				code = http.StatusInternalServerError
			case errors.Is(err, sched.ErrQueueFull):
				// Backpressure: the tenant's admission queue is full. The
				// Retry-After hint tells well-behaved clients when to come
				// back; nothing was created or persisted.
				w.Header().Set("Retry-After", m.retryAfterSeconds())
				code = http.StatusTooManyRequests
			}
			writeError(w, code, err)
			return
		}
		w.Header().Set("Location", "/runs/"+st.ID)
		writeJSON(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Statuses())
	})

	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		writeJSON(w, http.StatusOK, s.status())
	})

	mux.HandleFunc("GET /runs/{id}/front", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		s.mu.Lock()
		res, state, stored := s.result, s.state, s.stored
		s.mu.Unlock()
		if res == nil && stored != nil {
			// Restored after a restart: the live result did not survive the
			// process, but the persisted front did.
			if stored.Front == nil {
				writeError(w, http.StatusConflict,
					fmt.Errorf("run is %s; no front was persisted", state))
				return
			}
			writeJSON(w, http.StatusOK, stored.Front)
			return
		}
		if res == nil {
			writeError(w, http.StatusConflict,
				fmt.Errorf("run is %s; front not available yet", state))
			return
		}
		sf := core.NewStoredFront(s.problem.Space, res, s.problem.Name, "", s.problem.Objectives)
		writeJSON(w, http.StatusOK, sf)
	})

	mux.HandleFunc("GET /runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			// Push the headers out now: the first event may be minutes
			// away (real SLAM bootstraps), and clients with response-header
			// timeouts would otherwise abort before seeing anything.
			flusher.Flush()
		}
		enc := json.NewEncoder(w)
		wake := s.subscribe()
		defer s.unsubscribe(wake)
		cursor := 0
		for {
			fresh, next, terminal := s.eventsSince(cursor)
			cursor = next
			for _, ev := range fresh {
				if enc.Encode(ev) != nil {
					return
				}
			}
			if flusher != nil && len(fresh) > 0 {
				flusher.Flush()
			}
			if terminal {
				return
			}
			select {
			case <-wake:
			case <-r.Context().Done():
				return
			}
		}
	})

	mux.HandleFunc("DELETE /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		// Cancel returns the post-cancel status atomically: a second
		// lookup here could miss (eviction, concurrent delete) and the old
		// two-step cancel-then-get dereferenced that miss.
		st, ok := m.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
