// Package server lifts the HyperMapper engine into a long-running service:
// a session manager that launches, monitors, and cancels concurrent
// design-space explorations behind a JSON REST API. This is the
// infrastructure the paper's crowd-sourcing experiment (Fig. 5) implies —
// many users sharing one exploration service — and the first step toward
// the roadmap's heavy-traffic deployment.
//
// Endpoints:
//
//	GET    /problems         list the registered optimization problems
//	POST   /runs             start a DSE session           → 201 + status
//	GET    /runs             list sessions
//	GET    /runs/{id}        poll one session's status and progress
//	GET    /runs/{id}/front  fetch the (partial or final) Pareto front
//	GET    /runs/{id}/events stream per-iteration progress as NDJSON
//	DELETE /runs/{id}        cancel a running session
//
// Sessions over the same problem share one evaluator memo-cache, so
// repeated explorations of a space skip re-measurement.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/param"
)

// Problem is one named optimization target: a design space plus an
// evaluator. Evaluators must be safe for concurrent use; one problem can
// back many simultaneous sessions.
type Problem struct {
	Name        string
	Description string
	Space       *param.Space
	Eval        core.Evaluator
	// Objectives names the evaluator's outputs, in order; its length is
	// the objective count passed to the engine.
	Objectives []string
}

// State enumerates a session's lifecycle.
type State string

const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether no further progress events can arrive.
func (s State) Terminal() bool { return s != StateRunning }

// RunRequest is the POST /runs body. Zero-valued budget fields select the
// engine defaults.
type RunRequest struct {
	Problem       string `json:"problem"`
	Seed          int64  `json:"seed"`
	RandomSamples int    `json:"random_samples,omitempty"`
	MaxIterations int    `json:"max_iterations,omitempty"`
	MaxBatch      int    `json:"max_batch,omitempty"`
	PoolCap       int    `json:"pool_cap,omitempty"`
	Trees         int    `json:"trees,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	// NoCache opts this session out of the problem's shared memo-cache
	// (e.g. when the evaluator is noisy and fresh measurements matter).
	NoCache bool `json:"no_cache,omitempty"`
}

// IterationEvent is one progress record: the bootstrap (iteration 0) or an
// active-learning round. The *_ms fields are the engine's per-phase
// wall-clock timings (forest fit, pool encode, pool predict, hardware
// evaluation) in milliseconds, so dashboards tailing /events can see where
// optimizer time goes in production; the bootstrap event carries only
// eval_ms.
type IterationEvent struct {
	Iteration          int       `json:"iteration"`
	PredictedFrontSize int       `json:"predicted_front_size,omitempty"`
	NewSamples         int       `json:"new_samples"`
	TotalSamples       int       `json:"total_samples"`
	FrontSize          int       `json:"front_size"`
	OOBError           []float64 `json:"oob_error,omitempty"`
	CacheHits          int       `json:"cache_hits"`
	CacheMisses        int       `json:"cache_misses"`
	FitMS              float64   `json:"fit_ms,omitempty"`
	EncodeMS           float64   `json:"encode_ms,omitempty"`
	PredictMS          float64   `json:"predict_ms,omitempty"`
	EvalMS             float64   `json:"eval_ms,omitempty"`
}

// RunStatus is the GET /runs/{id} body.
type RunStatus struct {
	ID          string           `json:"id"`
	Problem     string           `json:"problem"`
	State       State            `json:"state"`
	Created     time.Time        `json:"created"`
	Samples     int              `json:"samples"`
	FrontSize   int              `json:"front_size"`
	Converged   bool             `json:"converged"`
	CacheHits   int              `json:"cache_hits"`
	CacheMisses int              `json:"cache_misses"`
	Error       string           `json:"error,omitempty"`
	Iterations  []IterationEvent `json:"iterations"`
}

// session is one managed exploration.
type session struct {
	id      string
	problem Problem
	created time.Time
	cancel  context.CancelFunc

	mu     sync.Mutex
	state  State
	events []IterationEvent
	subs   map[chan struct{}]struct{} // wake signals for event streamers
	result *core.Result
	err    error
}

func toEvent(s core.IterationStats) IterationEvent {
	return IterationEvent{
		Iteration:          s.Iteration,
		PredictedFrontSize: s.PredictedFrontSize,
		NewSamples:         s.NewSamples,
		TotalSamples:       s.TotalSamples,
		FrontSize:          s.FrontSize,
		OOBError:           s.OOBError,
		CacheHits:          s.CacheHits,
		CacheMisses:        s.CacheMisses,
		FitMS:              durationMS(s.FitTime),
		EncodeMS:           durationMS(s.EncodeTime),
		PredictMS:          durationMS(s.PredictTime),
		EvalMS:             durationMS(s.EvalTime),
	}
}

func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// publish records a progress event and wakes event streamers. Streamers
// read from the shared history by cursor, so a stalled subscriber misses
// wake-ups (they coalesce) but never events.
func (s *session) publish(ev IterationEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
	s.wakeLocked()
}

func (s *session) wakeLocked() {
	for ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
}

// finish moves the session to a terminal state. A run stopped by
// cancellation reports context.Canceled from RunContext; a nil error means
// the run completed even if its context was cancelled moments later.
func (s *session) finish(res *core.Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.result = res
	switch {
	case errors.Is(err, context.Canceled):
		s.state = StateCancelled
	case err != nil:
		s.state = StateFailed
		s.err = err
	default:
		s.state = StateDone
	}
	s.wakeLocked()
}

// subscribe registers a wake channel for the event stream.
func (s *session) subscribe() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{}, 1)
	if s.subs == nil {
		s.subs = make(map[chan struct{}]struct{})
	}
	s.subs[ch] = struct{}{}
	return ch
}

func (s *session) unsubscribe(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, ch)
}

// eventsSince returns the events recorded past the cursor, the new cursor,
// and whether the session is terminal — one consistent snapshot, so a
// streamer that sees (no new events, terminal) can stop knowing it missed
// nothing.
func (s *session) eventsSince(cursor int) ([]IterationEvent, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor > len(s.events) {
		cursor = len(s.events)
	}
	fresh := append([]IterationEvent(nil), s.events[cursor:]...)
	return fresh, len(s.events), s.state.Terminal()
}

func (s *session) status() RunStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := RunStatus{
		ID:         s.id,
		Problem:    s.problem.Name,
		State:      s.state,
		Created:    s.created,
		Iterations: append([]IterationEvent(nil), s.events...),
	}
	if s.result != nil {
		st.Samples = len(s.result.Samples)
		st.FrontSize = len(s.result.Front)
		st.Converged = s.result.Converged
		st.CacheHits = s.result.CacheHits
		st.CacheMisses = s.result.CacheMisses
	} else if n := len(s.events); n > 0 {
		st.Samples = s.events[n-1].TotalSamples
		st.FrontSize = s.events[n-1].FrontSize
		for _, ev := range s.events {
			st.CacheHits += ev.CacheHits
			st.CacheMisses += ev.CacheMisses
		}
	}
	if s.err != nil {
		st.Error = s.err.Error()
	}
	return st
}

// ErrUnknownProblem reports a RunRequest naming an unregistered problem.
var ErrUnknownProblem = errors.New("unknown problem")

// ErrShuttingDown reports a RunRequest arriving after Shutdown began.
var ErrShuttingDown = errors.New("server is shutting down")

// Request budget ceilings: hypermapperd is a shared multi-user service, so
// one request must not be able to exhaust the process (e.g. a huge tree
// count is allocated verbatim by forest.Fit).
const (
	maxRequestTrees      = 1024
	maxRequestIterations = 1000
	maxRequestSamples    = 1_000_000
	maxRequestPoolCap    = 10_000_000
	maxRequestWorkers    = 256
)

func (r RunRequest) validate() error {
	for _, f := range []struct {
		name string
		v    int
		max  int
	}{
		{"trees", r.Trees, maxRequestTrees},
		{"max_iterations", r.MaxIterations, maxRequestIterations},
		{"random_samples", r.RandomSamples, maxRequestSamples},
		{"max_batch", r.MaxBatch, maxRequestSamples},
		{"pool_cap", r.PoolCap, maxRequestPoolCap},
		{"workers", r.Workers, maxRequestWorkers},
	} {
		if f.v < 0 {
			return fmt.Errorf("%s must be ≥ 0 (0 selects the default)", f.name)
		}
		if f.v > f.max {
			return fmt.Errorf("%s %d exceeds the limit %d", f.name, f.v, f.max)
		}
	}
	return nil
}

// Manager owns the problem registry and the live sessions.
type Manager struct {
	mu       sync.Mutex
	problems map[string]Problem
	caches   map[string]*core.EvalCache // shared per problem
	runs     map[string]*session
	closed   bool // Shutdown has begun; no new sessions
	seq      atomic.Int64
	wg       sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc
}

// NewManager returns a manager with the given problems registered.
func NewManager(problems ...Problem) *Manager {
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		problems: make(map[string]Problem),
		caches:   make(map[string]*core.EvalCache),
		runs:     make(map[string]*session),
		baseCtx:  ctx,
		baseStop: stop,
	}
	for _, p := range problems {
		m.Register(p)
	}
	return m
}

// Register adds or replaces a problem. Replacing always resets the
// problem's memo-cache: the space fingerprint cannot detect an evaluator
// change, and serving the old evaluator's measurements to the new one
// would silently corrupt results.
func (m *Manager) Register(p Problem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.problems[p.Name] = p
	m.caches[p.Name] = core.NewEvalCache()
}

// Problems lists the registered problems sorted by name.
func (m *Manager) Problems() []Problem {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Problem, 0, len(m.problems))
	for _, p := range m.problems {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Cache returns the shared memo-cache for a problem.
func (m *Manager) Cache(problem string) (*core.EvalCache, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.caches[problem]
	return c, ok
}

// Start launches one exploration session and returns its id.
func (m *Manager) Start(req RunRequest) (string, error) {
	if err := req.validate(); err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrShuttingDown
	}
	p, ok := m.problems[req.Problem]
	if !ok {
		m.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrUnknownProblem, req.Problem)
	}
	cache := m.caches[req.Problem]
	if req.NoCache {
		cache = nil
	}
	id := fmt.Sprintf("run-%06d", m.seq.Add(1))
	ctx, cancel := context.WithCancel(m.baseCtx)
	s := &session{
		id:      id,
		problem: p,
		created: time.Now(),
		cancel:  cancel,
		state:   StateRunning,
	}
	m.runs[id] = s
	m.wg.Add(1)
	m.mu.Unlock()

	opts := core.Options{
		Objectives:    len(p.Objectives),
		RandomSamples: req.RandomSamples,
		MaxIterations: req.MaxIterations,
		MaxBatch:      req.MaxBatch,
		PoolCap:       req.PoolCap,
		Seed:          req.Seed,
		Workers:       req.Workers,
		Cache:         cache,
		OnIteration:   func(st core.IterationStats) { s.publish(toEvent(st)) },
	}
	opts.Forest.Trees = req.Trees

	go func() {
		defer m.wg.Done()
		res, err := core.RunContext(ctx, p.Space, p.Eval, opts)
		s.finish(res, err)
		cancel()
	}()
	return id, nil
}

// Get returns a session by id.
func (m *Manager) Get(id string) (*session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.runs[id]
	return s, ok
}

// Statuses lists every session, newest first.
func (m *Manager) Statuses() []RunStatus {
	m.mu.Lock()
	sessions := make([]*session, 0, len(m.runs))
	for _, s := range m.runs {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	out := make([]RunStatus, len(sessions))
	for i, s := range sessions {
		out[i] = s.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Cancel requests cancellation of a session. It reports whether the id
// exists; cancelling a terminal session is a no-op.
func (m *Manager) Cancel(id string) bool {
	s, ok := m.Get(id)
	if !ok {
		return false
	}
	s.cancel()
	return true
}

// Shutdown refuses new sessions, cancels every running one, and waits (up
// to the context deadline) for their goroutines to drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true // every wg.Add happened-before this; Wait is now safe
	m.mu.Unlock()
	m.baseStop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the REST API for the manager.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /problems", func(w http.ResponseWriter, r *http.Request) {
		type probJSON struct {
			Name        string   `json:"name"`
			Description string   `json:"description,omitempty"`
			SpaceSize   int64    `json:"space_size"`
			Parameters  []string `json:"parameters"`
			Objectives  []string `json:"objectives"`
		}
		var out []probJSON
		for _, p := range m.Problems() {
			out = append(out, probJSON{
				Name:        p.Name,
				Description: p.Description,
				SpaceSize:   p.Space.Size(),
				Parameters:  p.Space.Names(),
				Objectives:  p.Objectives,
			})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /runs", func(w http.ResponseWriter, r *http.Request) {
		// A RunRequest is a handful of scalars; cap the body so one client
		// cannot buffer gigabytes into the shared daemon.
		r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
			return
		}
		id, err := m.Start(req)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrUnknownProblem):
				code = http.StatusNotFound
			case errors.Is(err, ErrShuttingDown):
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, err)
			return
		}
		s, _ := m.Get(id)
		w.Header().Set("Location", "/runs/"+id)
		writeJSON(w, http.StatusCreated, s.status())
	})

	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Statuses())
	})

	mux.HandleFunc("GET /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		writeJSON(w, http.StatusOK, s.status())
	})

	mux.HandleFunc("GET /runs/{id}/front", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		s.mu.Lock()
		res, state := s.result, s.state
		s.mu.Unlock()
		if res == nil {
			writeError(w, http.StatusConflict,
				fmt.Errorf("run is %s; front not available yet", state))
			return
		}
		sf := core.NewStoredFront(s.problem.Space, res, s.problem.Name, "", s.problem.Objectives)
		writeJSON(w, http.StatusOK, sf)
	})

	mux.HandleFunc("GET /runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			// Push the headers out now: the first event may be minutes
			// away (real SLAM bootstraps), and clients with response-header
			// timeouts would otherwise abort before seeing anything.
			flusher.Flush()
		}
		enc := json.NewEncoder(w)
		wake := s.subscribe()
		defer s.unsubscribe(wake)
		cursor := 0
		for {
			fresh, next, terminal := s.eventsSince(cursor)
			cursor = next
			for _, ev := range fresh {
				if enc.Encode(ev) != nil {
					return
				}
			}
			if flusher != nil && len(fresh) > 0 {
				flusher.Flush()
			}
			if terminal {
				return
			}
			select {
			case <-wake:
			case <-r.Context().Done():
				return
			}
		}
	})

	mux.HandleFunc("DELETE /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !m.Cancel(id) {
			writeError(w, http.StatusNotFound, errors.New("no such run"))
			return
		}
		s, _ := m.Get(id)
		writeJSON(w, http.StatusAccepted, s.status())
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
