// Package server lifts the HyperMapper engine into a long-running service:
// a session manager that launches, monitors, and cancels concurrent
// design-space explorations behind a JSON REST API. This is the
// infrastructure the paper's crowd-sourcing experiment (Fig. 5) implies —
// many users sharing one exploration service — and the first step toward
// the roadmap's heavy-traffic deployment.
//
// Endpoints:
//
//	GET    /problems         list the registered optimization problems
//	POST   /problems         register a declarative problem spec at runtime
//	GET    /stats            session-store and eviction counters
//	GET    /healthz          liveness (always 200 while serving)
//	GET    /readyz           readiness (503 until journal recovery finishes)
//	POST   /runs             start a DSE session           → 201 + status
//	GET    /runs             list sessions
//	GET    /runs/{id}        poll one session's status and progress
//	GET    /runs/{id}/front  fetch the (partial or final) Pareto front
//	GET    /runs/{id}/events stream per-iteration progress as NDJSON
//	DELETE /runs/{id}        cancel a running session
//
// Sessions over the same problem share one evaluator memo-cache, so
// repeated explorations of a space skip re-measurement.
//
// The package splits along its layers: this file owns the Manager
// (registry, session launch, lifecycle policy), session.go the per-session
// state machine, store.go the sharded SessionStore and eviction,
// persist.go the data-directory durability layer (journals, crash-safe
// resume, persisted results), and handlers.go the HTTP surface.
package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/param"
	"repro/internal/sched"
	"repro/internal/worker"
)

// Problem is one named optimization target: a design space plus an
// evaluator. Evaluators must be safe for concurrent use; one problem can
// back many simultaneous sessions.
type Problem struct {
	// Name identifies the problem in run requests (and, under a remote
	// evaluation pool, on the workers — both sides must use one name).
	Name string
	// Description is the human-readable GET /problems summary.
	Description string
	// Space is the design space explored.
	Space *param.Space
	// Eval measures one configuration in-process. With a remote
	// evaluation pool configured it is bypassed, but the space is still
	// needed locally for sampling, encoding, and validation.
	Eval core.Evaluator
	// Objectives names the evaluator's outputs, in order; its length is
	// the objective count passed to the engine.
	Objectives []string
}

// StrategyRequest selects the search-strategy pipeline for one run. The
// zero value is the paper-faithful default on every axis — uniform
// sampling, plain per-objective forests, even thinning — and produces
// byte-identical results to a request with no strategy block at all.
type StrategyRequest struct {
	// Sampler names the bootstrap/pool sampler: "uniform" (default) or
	// "prior", which honors the per-parameter prior weights declared in
	// the problem spec (priorless parameters stay uniform).
	Sampler string `json:"sampler,omitempty"`
	// Feasibility enables the feasibility-classifier modeler: a forest
	// classifier trained on valid/invalid outcomes filters candidates
	// predicted infeasible before batch selection.
	Feasibility bool `json:"feasibility,omitempty"`
	// Selector names the batch selector: "even-thin" (default) or
	// "acquisition", which ranks candidates by front contribution and
	// feasibility probability instead of thinning evenly.
	Selector string `json:"selector,omitempty"`
}

// RunRequest is the POST /runs body. Zero-valued budget fields select the
// engine defaults.
type RunRequest struct {
	// Problem names a registered problem; required.
	Problem string `json:"problem"`
	// Seed drives every random choice; equal seeds reproduce runs exactly.
	Seed int64 `json:"seed"`
	// RandomSamples, MaxIterations, MaxBatch, PoolCap, Trees, and Workers
	// map onto the engine budgets of core.Options (and Forest.Trees);
	// zero selects each one's documented default.
	RandomSamples int `json:"random_samples,omitempty"`
	MaxIterations int `json:"max_iterations,omitempty"`
	MaxBatch      int `json:"max_batch,omitempty"`
	PoolCap       int `json:"pool_cap,omitempty"`
	Trees         int `json:"trees,omitempty"`
	Workers       int `json:"workers,omitempty"`
	// NoCache opts this session out of the problem's shared memo-cache
	// (e.g. when the evaluator is noisy and fresh measurements matter).
	NoCache bool `json:"no_cache,omitempty"`
	// MaxUnmeasuredFraction bounds graceful degradation under a lossy
	// evaluation fleet: the run tolerates up to this fraction of a batch
	// coming back unmeasured instead of failing (core.Options field of the
	// same name). 0 selects the daemon's configured default — a request
	// cannot ask for strict fail-fast when the daemon default is lossier;
	// it can only raise the tolerance. Clamped to [0,1].
	MaxUnmeasuredFraction float64 `json:"max_unmeasured_fraction,omitempty"`
	// Strategy selects the search-strategy pipeline; the zero value is the
	// default pipeline and changes nothing.
	Strategy StrategyRequest `json:"strategy"`
	// Tenant identifies the submitting tenant for fair-share scheduling and
	// quotas. The HTTP layer falls back to the X-Tenant and then X-API-Key
	// headers when the body leaves it empty; a run with no identity at all
	// is admitted under the shared "anonymous" tenant. Ignored (but still
	// echoed) on daemons without a scheduler.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders this run within its own tenant's admission queue
	// (higher dispatches first, FIFO within a class). Priority never crosses
	// tenant boundaries, so it cannot be used to starve other tenants.
	Priority int `json:"priority,omitempty"`
}

// anonymousTenant is the shared admission identity for requests that carry
// no tenant at all.
const anonymousTenant = "anonymous"

// tenant returns the admission identity for the request.
func (r RunRequest) tenant() string {
	if r.Tenant == "" {
		return anonymousTenant
	}
	return r.Tenant
}

// ErrUnknownProblem reports a RunRequest naming an unregistered problem.
var ErrUnknownProblem = errors.New("unknown problem")

// ErrShuttingDown reports a RunRequest arriving after Shutdown began.
var ErrShuttingDown = errors.New("server is shutting down")

// ErrStorage reports a data-directory persistence failure while launching
// a run; it maps to 500, not 400 — the request was fine, the disk was not.
var ErrStorage = errors.New("run storage failure")

// Request budget ceilings: hypermapperd is a shared multi-user service, so
// one request must not be able to exhaust the process (e.g. a huge tree
// count is allocated verbatim by forest.Fit).
const (
	maxRequestTrees      = 1024
	maxRequestIterations = 1000
	maxRequestSamples    = 1_000_000
	maxRequestPoolCap    = 10_000_000
	maxRequestWorkers    = 256
	maxTenantLen         = 128
	maxRequestPriority   = 1000
)

func (r RunRequest) validate() error {
	for _, f := range []struct {
		name string
		v    int
		max  int
	}{
		{"trees", r.Trees, maxRequestTrees},
		{"max_iterations", r.MaxIterations, maxRequestIterations},
		{"random_samples", r.RandomSamples, maxRequestSamples},
		{"max_batch", r.MaxBatch, maxRequestSamples},
		{"pool_cap", r.PoolCap, maxRequestPoolCap},
		{"workers", r.Workers, maxRequestWorkers},
	} {
		if f.v < 0 {
			return fmt.Errorf("%s must be ≥ 0 (0 selects the default)", f.name)
		}
		if f.v > f.max {
			return fmt.Errorf("%s %d exceeds the limit %d", f.name, f.v, f.max)
		}
	}
	if f := r.MaxUnmeasuredFraction; f < 0 || f > 1 {
		return fmt.Errorf("max_unmeasured_fraction %g must be in [0, 1]", f)
	}
	if len(r.Tenant) > maxTenantLen {
		return fmt.Errorf("tenant id exceeds %d bytes", maxTenantLen)
	}
	if strings.ContainsFunc(r.Tenant, func(c rune) bool { return c < 0x20 || c == 0x7f }) {
		return errors.New("tenant id must not contain control characters")
	}
	if !utf8.ValidString(r.Tenant) {
		// JSON re-encoding replaces invalid bytes with U+FFFD, so such an
		// id would not survive the status echo; refuse it outright.
		return errors.New("tenant id must be valid UTF-8")
	}
	if r.Priority < -maxRequestPriority || r.Priority > maxRequestPriority {
		return fmt.Errorf("priority %d must be in [%d, %d]", r.Priority, -maxRequestPriority, maxRequestPriority)
	}
	if _, err := core.NewSampler(r.Strategy.Sampler); err != nil {
		return err
	}
	if _, err := core.NewSelector(r.Strategy.Selector); err != nil {
		return err
	}
	return nil
}

// StrategyInfo is the resolved search-strategy pipeline echoed in
// RunStatus: the stage names the engine actually ran with, defaults
// filled in.
type StrategyInfo struct {
	Sampler  string `json:"sampler"`
	Modeler  string `json:"modeler"`
	Selector string `json:"selector"`
}

// resolveStrategy maps a request's strategy block to the stage names the
// engine resolves it to (empty = default).
func resolveStrategy(req StrategyRequest) StrategyInfo {
	info := StrategyInfo{Sampler: req.Sampler, Modeler: "forest", Selector: req.Selector}
	if info.Sampler == "" {
		info.Sampler = "uniform"
	}
	if req.Feasibility {
		info.Modeler = "feasibility"
	}
	if info.Selector == "" {
		info.Selector = "even-thin"
	}
	return info
}

// Config bounds a long-lived manager's memory. The zero value retains
// every session forever in the default shard count — the behavior small
// deployments and tests want.
type Config struct {
	// SessionTTL evicts a terminal session this long after it finishes.
	// 0 retains terminal sessions forever. Running sessions are never
	// evicted regardless of age.
	SessionTTL time.Duration
	// MaxSessions caps retained sessions; when exceeded, terminal
	// sessions are evicted oldest-first. 0 means unbounded. The cap can
	// be transiently exceeded when more than MaxSessions runs are
	// in flight, since running sessions are never evicted.
	MaxSessions int
	// Shards is the session-store shard count (< 1 selects the default,
	// 16). More shards reduce lock contention under concurrent traffic.
	Shards int
	// JanitorInterval is how often TTL/cap eviction runs in the
	// background. 0 derives it from SessionTTL (TTL/4, clamped to
	// [100ms, 30s]); with no TTL it defaults to 30s.
	JanitorInterval time.Duration
	// MaxUnmeasuredFraction is the default per-run degradation tolerance
	// (RunRequest field of the same name) applied when a request leaves it
	// 0. Keep it 0 to run the whole daemon strictly fail-fast.
	MaxUnmeasuredFraction float64
	// EvalPool, when non-nil, fans every session's evaluation batches out
	// to the given remote worker fleet instead of evaluating in-process:
	// each run gets the pool's backend bound to its problem name, so every
	// worker must serve the same problem catalog as this daemon. Per-worker
	// health counters are surfaced in GET /stats. Seeded runs produce
	// byte-identical results either way.
	EvalPool *worker.Pool
	// SpecLoader, when non-nil, materializes a problem from a raw
	// declarative spec document (internal/spec) and enables runtime
	// registration via POST /problems. The daemon wires this to the
	// catalog's spec loader; with no loader the endpoint answers 501.
	SpecLoader func(data []byte) (Problem, error)
	// DataDir, when non-empty, makes the manager durable: every run gets an
	// fsync'd evaluation journal under <DataDir>/runs/<id>/, terminal
	// results persist as atomic JSON artifacts, evaluator memo-caches spill
	// to <DataDir>/cache/, and sessions survive daemon restarts. Empty
	// keeps everything in memory.
	DataDir string
	// Resume, with DataDir set, replays interrupted runs' journals on
	// startup and continues each from its first unmeasured configuration.
	// Without it interrupted runs are restored as failed; their directories
	// are left intact, so a later restart with resume enabled can still
	// pick them up.
	Resume bool
	// Logf, when non-nil, receives durability-layer diagnostics (recovery
	// progress, resume refusals, persistence errors).
	Logf func(format string, args ...any)
	// Sched, when non-nil, puts every new run through the multi-tenant
	// fair-share scheduler: runs are admitted immediately, queued (state
	// "queued") when their tenant is at quota or the fleet is saturated, or
	// rejected with 429 + Retry-After when the tenant's queue is full. It
	// also enables cross-run evaluation-batch coalescing onto the shared
	// backend (see sched.Coalescer); with a nil EvalPool, coalesced batches
	// evaluate in-process bounded by GOMAXPROCS rather than by each run's
	// Workers field. Nil preserves the historical behavior: every accepted
	// run starts immediately, with no concurrency bound.
	//
	// Two scheduler caveats: resumed runs (Resume) relaunch outside the
	// scheduler so recovery can never deadlock behind queued work, and
	// NoCache runs still go through batch coalescing (merging dedups within
	// a dispatch, not across time, so fresh measurements stay fresh).
	Sched *sched.Config
}

func (c Config) janitorInterval() time.Duration {
	if c.JanitorInterval > 0 {
		return c.JanitorInterval
	}
	iv := 30 * time.Second
	if c.SessionTTL > 0 {
		iv = c.SessionTTL / 4
	}
	return min(max(iv, 100*time.Millisecond), 30*time.Second)
}

// Manager owns the problem registry, the session store, and the lifecycle
// policy that keeps a long-lived daemon's memory bounded.
type Manager struct {
	mu       sync.Mutex // guards problems, caches, closed
	problems map[string]Problem
	caches   map[string]*core.EvalCache // shared per problem
	closed   bool                       // Shutdown has begun; no new sessions

	cfg        Config
	sched      *sched.Scheduler // nil unless cfg.Sched is set
	coalesce   *sched.Group     // nil unless cfg.Sched is set
	store      SessionStore
	evictMu    sync.Mutex   // serializes eviction passes (janitor vs Start)
	evictedTTL atomic.Int64 // sessions evicted by TTL expiry
	evictedCap atomic.Int64 // sessions evicted by the MaxSessions cap

	seq      atomic.Int64
	wg       sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	started    time.Time
	recovering atomic.Int64 // resumed sessions still replaying their journals
}

// NewManager returns a manager with the given problems registered and no
// eviction: every session is retained until Shutdown.
func NewManager(problems ...Problem) *Manager {
	return NewManagerConfig(Config{}, problems...)
}

// NewManagerConfig returns a manager with the given lifecycle config. If
// the config enables any eviction (TTL or cap), a janitor goroutine runs
// until Shutdown. With DataDir set, the constructor also restores
// persisted sessions from disk and (with Resume) relaunches interrupted
// runs from their journals.
func NewManagerConfig(cfg Config, problems ...Problem) *Manager {
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		problems: make(map[string]Problem),
		caches:   make(map[string]*core.EvalCache),
		cfg:      cfg,
		store:    newShardedStore(cfg.Shards),
		baseCtx:  ctx,
		baseStop: stop,
		started:  time.Now(),
	}
	if cfg.DataDir != "" {
		m.store = newPersistentStore(cfg.Shards, cfg.DataDir)
	}
	if cfg.Sched != nil {
		m.sched = sched.New(*cfg.Sched)
		m.coalesce = sched.NewGroup(cfg.Sched.CoalesceWindow)
	}
	for _, p := range problems {
		m.Register(p)
	}
	var interrupted []runMeta
	if cfg.DataDir != "" {
		interrupted = m.restoreDataDir()
	}
	if cfg.SessionTTL > 0 || cfg.MaxSessions > 0 {
		m.wg.Add(1)
		go m.janitor(cfg.janitorInterval())
	}
	switch {
	case len(interrupted) == 0:
	case cfg.Resume:
		m.resumeInterrupted(interrupted)
	default:
		m.failInterrupted(interrupted)
	}
	return m
}

// Register adds or replaces a problem. Replacing always resets the
// problem's memo-cache, including its on-disk spill: the space fingerprint
// cannot detect an evaluator change, and serving the old evaluator's
// measurements to the new one would silently corrupt results.
func (m *Manager) Register(p Problem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old := m.caches[p.Name]; old != nil {
		if err := old.RemoveSpill(); err != nil {
			m.logf("problem %q: removing stale cache spill: %v", p.Name, err)
		}
	}
	if m.coalesce != nil {
		// Mirror the cache reset: the replaced problem's coalescer wraps the
		// old evaluator's backend, so in-flight merges must not be joined by
		// runs over the new one.
		if old, ok := m.problems[p.Name]; ok {
			m.coalesce.Drop(old.Space, len(old.Objectives))
		}
	}
	m.problems[p.Name] = p
	m.caches[p.Name] = m.newCache(p.Name)
}

// newCache builds a problem's memo-cache: disk-spilled under the data
// directory when the manager is persistent, memory-only otherwise. Called
// under m.mu.
func (m *Manager) newCache(problem string) *core.EvalCache {
	if m.cfg.DataDir == "" {
		return core.NewEvalCache()
	}
	return core.NewEvalCacheDir(filepath.Join(m.cfg.DataDir, "cache", cacheDirName(problem)))
}

// problem looks up one registered problem.
func (m *Manager) problem(name string) (Problem, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.problems[name]
	return p, ok
}

// isClosed reports whether Shutdown has begun.
func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Ready reports whether startup recovery has finished: every resumed
// session has either reached live measurement or gone terminal. New runs
// are accepted either way; readiness only gates load-balancer traffic.
func (m *Manager) Ready() bool { return m.recovering.Load() == 0 }

// Problems lists the registered problems sorted by name.
func (m *Manager) Problems() []Problem {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Problem, 0, len(m.problems))
	for _, p := range m.problems {
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b Problem) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// Cache returns the shared memo-cache for a problem.
func (m *Manager) Cache(problem string) (*core.EvalCache, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.caches[problem]
	return c, ok
}

// Start launches one exploration session and returns its initial status.
// The status is taken before the session enters the store: with eviction
// enabled, a later lookup by id is allowed to miss.
//
// With a scheduler configured (Config.Sched), Start is the admission path:
// the run may come back "queued" instead of "running", and a submission
// past the tenant's queue bound fails with sched.ErrQueueFull (HTTP 429).
func (m *Manager) Start(req RunRequest) (RunStatus, error) {
	if err := req.validate(); err != nil {
		return RunStatus{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return RunStatus{}, ErrShuttingDown
	}
	p, ok := m.problems[req.Problem]
	if !ok {
		m.mu.Unlock()
		return RunStatus{}, fmt.Errorf("%w: %q", ErrUnknownProblem, req.Problem)
	}
	cache := m.caches[req.Problem]
	if req.NoCache {
		cache = nil
	}
	seq := m.seq.Add(1)
	ctx, cancel := context.WithCancel(m.baseCtx)
	s := &session{
		id:      fmt.Sprintf("run-%06d", seq),
		seq:     seq,
		problem: p,
		created: time.Now(),
		cancel:  cancel,
		runCtx:  ctx,
		cache:   cache,
		req:     req,
		state:   StateRunning,
	}
	m.wg.Add(1)
	m.mu.Unlock()

	if m.sched == nil {
		// Unscheduled manager: every accepted run starts immediately
		// (the historical behavior small deployments and tests rely on).
		opts := m.buildOpts(p, req, cache, s)
		if m.cfg.DataDir != "" {
			// Persist the run's identity and open its journal before the
			// session becomes visible: once a client sees the id, a crash at
			// any later instant leaves a recoverable directory.
			if err := m.persistStart(s, core.RunFingerprint(p.Space, opts)); err != nil {
				m.wg.Done()
				cancel()
				return RunStatus{}, fmt.Errorf("%w: %v", ErrStorage, err)
			}
			opts.Journal = sessionRecorder{s}
		}
		st := s.status()
		m.store.Put(s)
		m.enforceCap()
		go m.runSession(s, opts, nil)
		return st, nil
	}

	// Scheduled admission. The session is visible immediately — queued or
	// running — but nothing touches the data directory until dispatch: a
	// rejected, queue-cancelled, or shutdown-dropped run must leave no
	// on-disk trace (persistence happens in dispatch, after admission).
	s.mu.Lock()
	s.state = StateQueued
	s.mu.Unlock()
	ticket, err := m.sched.Submit(req.tenant(), req.Priority,
		func(t *sched.Ticket) { m.dispatch(s, t) },
		func(*sched.Ticket) {
			// Dropped while queued by scheduler Close: no engine goroutine
			// ever existed, so release the waitgroup slot here.
			s.finish(nil, context.Canceled)
			cancel()
			m.wg.Done()
		})
	if err != nil {
		m.wg.Done()
		cancel()
		if errors.Is(err, sched.ErrClosed) {
			return RunStatus{}, ErrShuttingDown
		}
		return RunStatus{}, err
	}
	s.ticket = ticket
	st := s.status()
	m.store.Put(s)
	m.enforceCap()
	return st, nil
}

// dispatch launches a scheduler-admitted session: it persists the run (S6:
// only now — admission rejections never touch the disk), flips it to
// running, and starts the engine goroutine. Called synchronously from
// Submit on immediate admission, or from whatever goroutine freed the slot.
func (m *Manager) dispatch(s *session, t *sched.Ticket) {
	if m.isClosed() {
		// A slot freed during shutdown dispatched us; the engine must not
		// start now.
		s.finish(nil, context.Canceled)
		s.cancel()
		m.sched.Done(t)
		m.wg.Done()
		return
	}
	opts := m.buildOpts(s.problem, s.req, s.cache, s)
	if m.cfg.DataDir != "" {
		if err := m.persistStart(s, core.RunFingerprint(s.problem.Space, opts)); err != nil {
			s.finish(nil, fmt.Errorf("%w: %v", ErrStorage, err))
			s.cancel()
			m.sched.Done(t)
			m.wg.Done()
			return
		}
		opts.Journal = sessionRecorder{s}
	}
	s.setRunning()
	go m.runSession(s, opts, t)
}

// runSession is the engine goroutine shared by both admission paths; t is
// the scheduler ticket to release (nil on unscheduled managers).
func (m *Manager) runSession(s *session, opts core.Options, t *sched.Ticket) {
	defer m.wg.Done()
	res, err := core.RunContext(s.runCtx, s.problem.Space, s.problem.Eval, opts)
	s.finish(res, err)
	m.persistTerminal(s)
	if t != nil {
		m.sched.Done(t)
	}
	s.cancel()
}

// buildOpts assembles the engine options for a request — shared by Start
// and the resume path, which must produce an identical configuration for
// the run fingerprints to match.
func (m *Manager) buildOpts(p Problem, req RunRequest, cache *core.EvalCache, s *session) core.Options {
	// A request's 0 means "daemon default", so the resume path — which
	// rebuilds options from the persisted request under the then-current
	// daemon config — computes the same fingerprint as the original launch
	// as long as the daemon default is unchanged.
	frac := req.MaxUnmeasuredFraction
	if frac == 0 {
		frac = m.cfg.MaxUnmeasuredFraction
	}
	opts := core.Options{
		Objectives:            len(p.Objectives),
		RandomSamples:         req.RandomSamples,
		MaxIterations:         req.MaxIterations,
		MaxBatch:              req.MaxBatch,
		PoolCap:               req.PoolCap,
		Seed:                  req.Seed,
		Workers:               req.Workers,
		Cache:                 cache,
		MaxUnmeasuredFraction: frac,
		OnIteration:           func(st core.IterationStats) { s.publish(toEvent(st)) },
	}
	// validate() already resolved the strategy names, so the errors here
	// are impossible; the explicit defaults are byte-identical to leaving
	// the fields nil, and the resume path rebuilds the exact same pipeline
	// from the persisted request.
	opts.Sampler, _ = core.NewSampler(req.Strategy.Sampler)
	opts.Modeler = core.NewModeler(req.Strategy.Feasibility)
	opts.Selector, _ = core.NewSelector(req.Strategy.Selector)
	opts.Forest.Trees = req.Trees
	if m.cfg.EvalPool != nil {
		// Remote evaluation: the batch backend replaces the in-process
		// evaluator. The memo-cache sits in front of the backend inside
		// the engine, so remote results memoize exactly like local ones;
		// the objective count pins the fleet to this daemon's catalog.
		opts.Backend = m.cfg.EvalPool.Backend(p.Name, len(p.Objectives))
	}
	if m.coalesce != nil {
		// Scheduled daemons merge concurrent runs' evaluation batches onto
		// one shared backend per space (cross-run coalescing). The shared
		// local backend runs with the default worker bound (GOMAXPROCS)
		// since a merged batch serves many runs' Workers settings at once.
		inner := opts.Backend
		if inner == nil {
			inner = &core.LocalBackend{Eval: p.Eval}
		}
		opts.Backend = m.coalesce.For(p.Space, len(p.Objectives), inner)
	}
	return opts
}

// Get returns a session by id. With eviction enabled, a previously valid
// id can legitimately miss.
func (m *Manager) Get(id string) (*session, bool) {
	return m.store.Get(id)
}

// Statuses lists every retained session, newest first by run sequence.
// (Comparing ids as strings would break past run-999999: "run-1000000"
// sorts before "run-999999" lexicographically.)
func (m *Manager) Statuses() []RunStatus {
	sessions := m.store.Snapshot()
	slices.SortFunc(sessions, func(a, b *session) int { return int(b.seq - a.seq) })
	out := make([]RunStatus, len(sessions))
	for i, s := range sessions {
		out[i] = s.status()
	}
	return out
}

// Cancel requests cancellation of a session and returns its post-cancel
// status in one atomic step; ok reports whether the id exists. Cancelling
// a terminal session is a no-op. Callers must not look the id up again to
// get the status — with eviction, a second lookup can legitimately miss.
func (m *Manager) Cancel(id string) (RunStatus, bool) {
	s, ok := m.store.Get(id)
	if !ok {
		return RunStatus{}, false
	}
	if t := s.ticket; t != nil && t.Cancel() {
		// Withdrawn while still queued: the scheduler guarantees the start
		// callback will never run, so no engine goroutine and no run
		// directory exist — finish the session here and release its
		// waitgroup slot. The scheduler lock arbitrates the race with
		// dispatch; exactly one side wins.
		s.finish(nil, context.Canceled)
		s.cancel()
		m.wg.Done()
		return s.status(), true
	}
	// The session pointer stays valid even if eviction removes it from
	// the store between these two lines.
	s.cancel()
	return s.status(), true
}

// Stats is the GET /stats body: store occupancy and eviction counters.
type Stats struct {
	// Sessions is the retained count; Running and Terminal split it.
	Sessions int `json:"sessions"`
	// Running counts retained sessions still exploring.
	Running int `json:"running"`
	// Terminal counts retained sessions that finished (done, cancelled,
	// or failed) and are eligible for eviction.
	Terminal int `json:"terminal"`
	// TotalStarted counts every session ever launched, including evicted
	// ones.
	TotalStarted int64 `json:"total_started"`
	// EvictedTTL and EvictedCap count sessions dropped by TTL expiry and
	// by the MaxSessions cap.
	EvictedTTL int64 `json:"evicted_ttl"`
	EvictedCap int64 `json:"evicted_cap"`
	// Shards, MaxSessions, SessionTTLS, and Problems echo the daemon's
	// configuration so operators can confirm what it runs with:
	// session_ttl_s is 0 when TTL eviction is off, max_sessions 0 when
	// unbounded.
	Shards      int     `json:"shards"`
	MaxSessions int     `json:"max_sessions"`
	SessionTTLS float64 `json:"session_ttl_s"`
	Problems    int     `json:"problems"`
	// Workers reports the remote evaluation fleet's per-worker health
	// counters (requests, failures, hedges, in-flight, circuit-breaker
	// state and trips); absent when the daemon evaluates in-process.
	Workers []worker.WorkerStats `json:"workers,omitempty"`
	// Persistent reports whether a data directory backs this daemon;
	// Recovering counts resumed sessions still replaying their journals
	// (GET /readyz turns ready once it reaches 0), and CacheSpillErrors
	// totals degraded-to-memory spill failures across the problem
	// memo-caches.
	Persistent       bool  `json:"persistent"`
	Recovering       int64 `json:"recovering"`
	CacheSpillErrors int64 `json:"cache_spill_errors"`
	// Queued counts retained sessions waiting for scheduler admission
	// (always 0 on unscheduled daemons).
	Queued int `json:"queued"`
	// Sched reports the multi-tenant scheduler's admission accounting —
	// per-tenant running/queued/rejected counts, queue-depth high-water
	// mark, and admission-wait quantiles; absent when no scheduler is
	// configured.
	Sched *sched.Stats `json:"sched,omitempty"`
	// Coalesce reports cross-run evaluation-batch merging (calls vs
	// flushes, configs deduplicated inside merges); absent when no
	// scheduler is configured.
	Coalesce *sched.CoalesceStats `json:"coalesce,omitempty"`
	// CacheHits / CacheMisses / CacheCoalesceHits total memo-cache lookups
	// across every problem cache; CacheCoalesceHits is the subset of hits
	// resolved by waiting on another run's in-flight evaluation (cross-run
	// singleflight).
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheCoalesceHits int64 `json:"cache_coalesce_hits"`
	// PoolBatches and PoolBatchConfigs count backend-level dispatches to
	// the remote evaluation fleet and the configurations they carried;
	// absent (0) when the daemon evaluates in-process.
	PoolBatches      int64 `json:"pool_batches,omitempty"`
	PoolBatchConfigs int64 `json:"pool_batch_configs,omitempty"`
}

// Stats reports store occupancy, eviction counters, and the lifecycle
// configuration.
func (m *Manager) Stats() Stats {
	st := Stats{
		TotalStarted: m.seq.Load(),
		EvictedTTL:   m.evictedTTL.Load(),
		EvictedCap:   m.evictedCap.Load(),
		Shards:       m.cfg.Shards,
		MaxSessions:  m.cfg.MaxSessions,
		SessionTTLS:  m.cfg.SessionTTL.Seconds(),
		Problems:     len(m.Problems()),
		Persistent:   m.cfg.DataDir != "",
		Recovering:   m.recovering.Load(),
	}
	if m.cfg.EvalPool != nil {
		st.Workers = m.cfg.EvalPool.Stats()
		st.PoolBatches, st.PoolBatchConfigs = m.cfg.EvalPool.BatchStats()
	}
	if m.sched != nil {
		ss := m.sched.Stats()
		st.Sched = &ss
	}
	if m.coalesce != nil {
		cs := m.coalesce.Stats()
		st.Coalesce = &cs
	}
	m.mu.Lock()
	for _, c := range m.caches {
		st.CacheSpillErrors += c.SpillErrors()
		st.CacheHits += c.Hits()
		st.CacheMisses += c.Misses()
		st.CacheCoalesceHits += c.CoalesceHits()
	}
	m.mu.Unlock()
	if st.Shards < 1 {
		st.Shards = defaultShards
	}
	for _, s := range m.store.Snapshot() {
		st.Sessions++
		switch state, _ := s.terminalInfo(); {
		case state == StateQueued:
			st.Queued++
		case state.Terminal():
			st.Terminal++
		default:
			st.Running++
		}
	}
	return st
}

// Shutdown refuses new sessions, journals a clean-shutdown checkpoint for
// every live run (which persistTerminal then leaves in the resumable
// shape), cancels them, stops the janitor, and waits (up to the context
// deadline) for their goroutines to drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true // every wg.Add happened-before this; Wait is now safe
	m.mu.Unlock()
	if m.sched != nil {
		// Drop every queued ticket first (their abort callbacks finish the
		// sessions and release waitgroup slots); dispatched runs are
		// cancelled via the base context below, exactly like before.
		m.sched.Close()
	}
	if m.cfg.DataDir != "" {
		for _, s := range m.store.Snapshot() {
			if state, _ := s.terminalInfo(); !state.Terminal() {
				s.checkpoint("shutdown")
			}
		}
	}
	m.baseStop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.closeCaches()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeCaches releases every problem cache's spill files; called once all
// run goroutines have drained.
func (m *Manager) closeCaches() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.caches {
		_ = c.Close()
	}
}
