package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/param"
)

func testProblem(name string, delay time.Duration) Problem {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
	)
	eval := core.EvaluatorFunc(func(cfg param.Config) []float64 {
		if delay > 0 {
			time.Sleep(delay)
		}
		a, b := cfg[0], cfg[1]
		return []float64{a + 0.5*math.Sin(3*b) + 1.5, b + 0.5*math.Cos(2*a) + 1.5}
	})
	return Problem{
		Name:       name,
		Space:      space,
		Eval:       eval,
		Objectives: []string{"f0", "f1"},
	}
}

func newTestServer(t *testing.T, problems ...Problem) (*Manager, *httptest.Server) {
	t.Helper()
	mgr := NewManager(problems...)
	ts := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
	})
	return mgr, ts
}

func postRun(t *testing.T, ts *httptest.Server, req RunRequest) RunStatus {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs = %d", resp.StatusCode)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("created run has no id")
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) RunStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s = %d", id, resp.StatusCode)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s did not reach a terminal state", id)
	return RunStatus{}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", 0))

	st := postRun(t, ts, RunRequest{
		Problem: "toy", Seed: 1, RandomSamples: 30, MaxIterations: 2, MaxBatch: 20,
	})
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	if final.Samples < 30 || final.FrontSize == 0 {
		t.Fatalf("final status: %+v", final)
	}
	// Progress must include the bootstrap plus at least one AL round.
	if len(final.Iterations) < 2 || final.Iterations[0].Iteration != 0 {
		t.Fatalf("iterations = %+v", final.Iterations)
	}

	// The front endpoint returns a stored front that validates against
	// the problem's space.
	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/front")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET front = %d", resp.StatusCode)
	}
	sf, err := core.ReadFront(resp.Body, testProblem("toy", 0).Space)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Points) != final.FrontSize {
		t.Fatalf("front has %d points, status says %d", len(sf.Points), final.FrontSize)
	}
}

func TestEightConcurrentSessionsEndToEnd(t *testing.T) {
	// The acceptance bar: ≥ 8 concurrent DSE sessions, each driven through
	// create → poll progress → fetch front → cancel.
	mgr, ts := newTestServer(t, testProblem("toy", 0))

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("session %d: "+format, append([]any{i}, args...)...)
			}
			body, _ := json.Marshal(RunRequest{
				Problem: "toy", Seed: int64(i), RandomSamples: 40, MaxIterations: 3, MaxBatch: 20,
			})
			resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				fail("create: %v", err)
				return
			}
			var st RunStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusCreated {
				fail("create: code %d err %v", resp.StatusCode, err)
				return
			}

			// Poll until terminal.
			deadline := time.Now().Add(60 * time.Second)
			for {
				r, err := http.Get(ts.URL + "/runs/" + st.ID)
				if err != nil {
					fail("poll: %v", err)
					return
				}
				err = json.NewDecoder(r.Body).Decode(&st)
				r.Body.Close()
				if err != nil {
					fail("poll decode: %v", err)
					return
				}
				if st.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					fail("timed out in state %s", st.State)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st.State != StateDone {
				fail("state %s error %q", st.State, st.Error)
				return
			}

			// Fetch the front.
			r, err := http.Get(ts.URL + "/runs/" + st.ID + "/front")
			if err != nil {
				fail("front: %v", err)
				return
			}
			var sf core.StoredFront
			err = json.NewDecoder(r.Body).Decode(&sf)
			r.Body.Close()
			if err != nil || len(sf.Points) == 0 {
				fail("front: code %d err %v points %d", r.StatusCode, err, len(sf.Points))
				return
			}

			// Cancel (a no-op on a finished run, but the endpoint must
			// accept it).
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+st.ID, nil)
			dr, err := http.DefaultClient.Do(req)
			if err != nil {
				fail("cancel: %v", err)
				return
			}
			dr.Body.Close()
			if dr.StatusCode != http.StatusAccepted {
				fail("cancel: code %d", dr.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// All eight sessions ran over the same problem: the shared memo-cache
	// must have absorbed the overlap between seeds (different seeds still
	// revisit configurations in a 1600-point space).
	cache, ok := mgr.Cache("toy")
	if !ok {
		t.Fatal("no cache for problem")
	}
	if cache.Hits() == 0 {
		t.Fatal("shared cache saw no hits across 8 sessions")
	}
}

func TestCacheHitsAcrossSequentialSessions(t *testing.T) {
	// Exploring the same space twice with the same seed must serve the
	// second session entirely from the memo-cache.
	_, ts := newTestServer(t, testProblem("toy", 0))
	req := RunRequest{Problem: "toy", Seed: 9, RandomSamples: 30, MaxIterations: 2}

	first := waitTerminal(t, ts, postRun(t, ts, req).ID)
	if first.CacheHits != 0 {
		t.Fatalf("first session reported %d hits", first.CacheHits)
	}
	second := waitTerminal(t, ts, postRun(t, ts, req).ID)
	if second.CacheHits == 0 {
		t.Fatal("second session over the same space saw no cache hits")
	}
	if second.CacheHits != second.Samples {
		t.Fatalf("second session: %d hits for %d samples", second.CacheHits, second.Samples)
	}
	if second.FrontSize != first.FrontSize {
		t.Fatalf("cached replay changed the front: %d vs %d", second.FrontSize, first.FrontSize)
	}
}

func TestCancelRunningSession(t *testing.T) {
	// A slow evaluator keeps the session alive; DELETE must cancel it
	// promptly and the partial front must become available.
	_, ts := newTestServer(t, testProblem("slow", 2*time.Millisecond))
	st := postRun(t, ts, RunRequest{
		Problem: "slow", Seed: 3, RandomSamples: 100, MaxIterations: 500, MaxBatch: 50, Workers: 1,
	})

	// Wait for the bootstrap to complete so the partial result is non-empty.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, st.ID).Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	start := time.Now()
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if since := time.Since(start); since > 20*time.Second {
		t.Fatalf("cancellation took %v", since)
	}
	if final.Samples == 0 {
		t.Fatal("cancelled session lost its partial samples")
	}

	// The partial front is served after cancellation.
	r, err := http.Get(ts.URL + "/runs/" + st.ID + "/front")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET front after cancel = %d", r.StatusCode)
	}
}

func TestEventStream(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", time.Millisecond))
	st := postRun(t, ts, RunRequest{
		Problem: "toy", Seed: 5, RandomSamples: 30, MaxIterations: 2, MaxBatch: 20,
	})

	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []IterationEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev IterationEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The stream closes when the run finishes, after the bootstrap and at
	// least one AL round have been emitted.
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events", len(events))
	}
	if events[0].Iteration != 0 || events[0].NewSamples != 30 {
		t.Fatalf("first event %+v is not the bootstrap", events[0])
	}
	// Per-phase timings stream with the events: the bootstrap reports its
	// evaluation time, and every AL round that fitted a model reports a
	// positive fit and predict duration.
	if events[0].EvalMS <= 0 {
		t.Fatalf("bootstrap event carries no eval time: %+v", events[0])
	}
	for _, ev := range events[1:] {
		if ev.FitMS <= 0 || ev.PredictMS <= 0 {
			t.Fatalf("AL event missing phase timings: %+v", ev)
		}
	}
	final := waitTerminal(t, ts, st.ID)
	if got := events[len(events)-1].TotalSamples; got != final.Samples {
		t.Fatalf("last event total %d, final samples %d", got, final.Samples)
	}
}

func TestAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", 0))

	resp, _ := http.Post(ts.URL+"/runs", "application/json",
		bytes.NewReader([]byte(`{"problem":"nope"}`)))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown problem = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = http.Post(ts.URL+"/runs", "application/json",
		bytes.NewReader([]byte(`{garbage`)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown ids 404 whether or not they parse as a run sequence.
	for _, path := range []string{"/runs/run-999999", "/runs/run-999999/front", "/runs/run-999999/events", "/runs/bogus", "/runs/bogus/front"} {
		r, _ := http.Get(ts.URL + path)
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d", path, r.StatusCode)
		}
		r.Body.Close()
	}

	// Fetching the front of a run that has not finished its first phase.
	_, ts2 := newTestServer(t, testProblem("slow2", 10*time.Millisecond))
	st := postRun(t, ts2, RunRequest{Problem: "slow2", Seed: 1, RandomSamples: 200, Workers: 1})
	r, _ := http.Get(ts2.URL + "/runs/" + st.ID + "/front")
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("front of running session = %d", r.StatusCode)
	}
	r.Body.Close()
}

func TestRequestBudgetLimits(t *testing.T) {
	// One request must not be able to exhaust the shared daemon: absurd
	// budgets are rejected up front, not allocated.
	_, ts := newTestServer(t, testProblem("toy", 0))
	for _, body := range []string{
		`{"problem":"toy","trees":2000000000}`,
		`{"problem":"toy","random_samples":-5}`,
		`{"problem":"toy","workers":100000}`,
		`{"problem":"toy","pool_cap":2000000000}`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s → %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStartAfterShutdownRefused(t *testing.T) {
	mgr := NewManager(testProblem("toy", 0))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Start(RunRequest{Problem: "toy"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Start after Shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestRegisterReplacementResetsCache(t *testing.T) {
	// Replacing a problem (e.g. with a new evaluator) must not serve the
	// old evaluator's measurements from the shared cache.
	mgr, ts := newTestServer(t, testProblem("toy", 0))
	req := RunRequest{Problem: "toy", Seed: 2, RandomSamples: 20, MaxIterations: 1}
	waitTerminal(t, ts, postRun(t, ts, req).ID)
	cache, _ := mgr.Cache("toy")
	if cache.Len() == 0 {
		t.Fatal("first session populated nothing")
	}
	mgr.Register(testProblem("toy", 0)) // same space, possibly new evaluator
	second := waitTerminal(t, ts, postRun(t, ts, req).ID)
	if second.CacheHits != 0 {
		t.Fatalf("replaced problem served %d stale hits", second.CacheHits)
	}
}

func TestProblemsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testProblem("alpha", 0), testProblem("beta", 0))
	resp, err := http.Get(ts.URL + "/problems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var probs []struct {
		Name      string `json:"name"`
		SpaceSize int64  `json:"space_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&probs); err != nil {
		t.Fatal(err)
	}
	if len(probs) != 2 || probs[0].Name != "alpha" || probs[1].Name != "beta" {
		t.Fatalf("problems = %+v", probs)
	}
	if probs[0].SpaceSize != 1600 {
		t.Fatalf("space size = %d", probs[0].SpaceSize)
	}
}

func TestMaxUnmeasuredFractionValidation(t *testing.T) {
	_, ts := newTestServer(t, testProblem("toy", 0))
	for _, body := range []string{
		`{"problem":"toy","max_unmeasured_fraction":-0.1}`,
		`{"problem":"toy","max_unmeasured_fraction":1.5}`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s → %d, want 400", body, resp.StatusCode)
		}
	}
	// An in-range tolerance is accepted and the run completes.
	st := postRun(t, ts, RunRequest{Problem: "toy", Seed: 3, RandomSamples: 20,
		MaxIterations: 1, Workers: 1, MaxUnmeasuredFraction: 0.5})
	if final := waitTerminal(t, ts, st.ID); final.State != "done" {
		t.Fatalf("tolerant run ended %q: %s", final.State, final.Error)
	}
}
