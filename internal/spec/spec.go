// Package spec defines the declarative problem format that opens the
// problem layer: a versioned JSON document describing a design space
// (parameters mirroring the param.Parameter kinds, optional validity
// constraints), the objective names, and an evaluator binding that says
// how configurations are measured — a builtin Go model, a user subprocess
// speaking JSON-lines, or an HTTP endpoint.
//
// The paper's engine is a general multi-objective black-box optimizer; the
// SLAM problems it was demonstrated on are just one catalog. A spec file
// is how any other workload — compiler flags, DBMS knobs, a user binary —
// becomes a named problem both daemons can serve, loaded at startup
// (-problems <dir>) or registered at runtime (POST /problems). The format
// reference lives in docs/SCENARIOS.md.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"repro/internal/param"
)

// Version is the spec format version this package reads and writes.
const Version = 1

// Spec is one declarative problem definition.
type Spec struct {
	// Version must equal Version (1). A version the loader does not know
	// is an error, not a guess.
	Version int `json:"version"`
	// Name is the problem name both daemons register the spec under; it is
	// the contract that lets a coordinator and its workers agree on what an
	// evaluation request means.
	Name string `json:"name"`
	// Description is the human-readable summary surfaced by GET /problems.
	Description string `json:"description,omitempty"`
	// Parameters defines the design space, one entry per dimension.
	Parameters []ParamSpec `json:"parameters"`
	// Constraints, optional, restrict the space to feasible
	// configurations; a configuration is feasible when every constraint
	// holds.
	Constraints []Constraint `json:"constraints,omitempty"`
	// Objectives names the evaluator's outputs, in order; its length is
	// the objective count (all objectives are minimized).
	Objectives []string `json:"objectives"`
	// Evaluator binds the measurement function: "builtin:<name>",
	// "exec:<command>", or "http://..."/"https://..." (see ParseBinding).
	Evaluator string `json:"evaluator"`
}

// ParamSpec is one parameter definition. Kind selects which fields apply:
//
//   - "bool": no other fields; values are {0, 1}.
//   - "ordinal", "categorical": explicit Values, at least one.
//   - "grid": Points values evenly spaced over [Low, High].
//   - "log-grid": Points values geometrically spaced over [Low, High];
//     Low must be positive. Encoded as log10 for the forests.
//
// Priors, optional for every kind, carries one non-negative weight per
// value (for "bool", two: weight of 0, weight of 1; for grid kinds, Points
// entries in grid order): the relative probability the prior-guided sampler
// draws that level. They declare where the spec author expects good
// configurations; runs under the default uniform strategy ignore them
// entirely, so adding priors never perturbs existing results.
type ParamSpec struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Values []float64 `json:"values,omitempty"`
	Low    float64   `json:"low,omitempty"`
	High   float64   `json:"high,omitempty"`
	Points int       `json:"points,omitempty"`
	Priors []float64 `json:"priors,omitempty"`
}

// Constraint is one validity clause: Then must hold whenever If holds (or
// unconditionally when If is empty). Both are comparisons of the form
// "operand OP operand" with OP one of <, <=, >, >=, ==, != and operands a
// parameter name or a numeric literal, e.g.
//
//	{"then": "wal-buffer-mb <= buffer-pool-mb"}
//	{"if": "unroll == 0", "then": "unroll-factor == 1"}
type Constraint struct {
	If   string `json:"if,omitempty"`
	Then string `json:"then"`
}

// Parse decodes, validates, and returns a spec. Unknown fields are
// rejected — a typoed field name must fail loudly, not silently relax a
// constraint.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: parsing: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing content after the spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses one spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadDir parses every *.json file in dir (sorted by name, so load order —
// and therefore later-wins duplicate resolution in a registry — is
// deterministic). A directory with no spec files is an error: a daemon
// pointed at the wrong path must not silently serve an empty catalog.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("spec: no *.json spec files in %s", dir)
	}
	slices.Sort(paths)
	out := make([]*Spec, 0, len(paths))
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Marshal renders the spec as indented JSON with a trailing newline.
// Parsing the output yields an identical spec, and marshaling that spec
// reproduces the bytes — the round-trip stability the shipped catalogs are
// tested against.
func (s *Spec) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: marshaling: %w", err)
	}
	return append(b, '\n'), nil
}

// Validate checks the whole document: version, parameter definitions,
// constraint expressions (parsed and name-resolved), objectives, and the
// evaluator binding. It builds the space to do so, which catches every
// error the daemons would otherwise hit at registration time.
func (s *Spec) Validate() error {
	if _, err := s.Space(); err != nil {
		return err
	}
	if len(s.Objectives) == 0 {
		return fmt.Errorf("spec %q: no objectives", s.Name)
	}
	for i, o := range s.Objectives {
		if strings.TrimSpace(o) == "" {
			return fmt.Errorf("spec %q: objective %d has an empty name", s.Name, i)
		}
	}
	if _, err := ParseBinding(s.Evaluator); err != nil {
		return fmt.Errorf("spec %q: %w", s.Name, err)
	}
	return nil
}

// Space builds the declared design space, with the constraints compiled
// into its feasibility predicate.
func (s *Spec) Space() (*param.Space, error) {
	if s.Version != Version {
		return nil, fmt.Errorf("spec %q: version %d, this build reads version %d", s.Name, s.Version, Version)
	}
	if strings.TrimSpace(s.Name) == "" {
		return nil, fmt.Errorf("spec: empty problem name")
	}
	if len(s.Parameters) == 0 {
		return nil, fmt.Errorf("spec %q: no parameters", s.Name)
	}
	params := make([]param.Parameter, len(s.Parameters))
	for i, p := range s.Parameters {
		built, err := p.build()
		if err != nil {
			return nil, fmt.Errorf("spec %q: parameter %q: %w", s.Name, p.Name, err)
		}
		params[i] = built
	}
	space, err := param.NewSpace(params...)
	if err != nil {
		return nil, fmt.Errorf("spec %q: %w", s.Name, err)
	}
	if len(s.Constraints) > 0 {
		pred, err := CompileConstraints(s.Constraints, space)
		if err != nil {
			return nil, fmt.Errorf("spec %q: %w", s.Name, err)
		}
		space.SetConstraint(pred)
	}
	return space, nil
}

// build maps one ParamSpec onto a param.Parameter, validating the fields
// its kind requires (the hard-error counterpart of param.Grid/LogGrid's
// degenerate-input clamping).
func (p ParamSpec) build() (param.Parameter, error) {
	if strings.TrimSpace(p.Name) == "" {
		return param.Parameter{}, fmt.Errorf("empty name")
	}
	listKind := func(kind param.Kind) (param.Parameter, error) {
		if p.Points != 0 || p.Low != 0 || p.High != 0 {
			return param.Parameter{}, fmt.Errorf("kind %q takes explicit values, not low/high/points", p.Kind)
		}
		if len(p.Values) == 0 {
			return param.Parameter{}, fmt.Errorf("kind %q needs at least one value", p.Kind)
		}
		return param.Parameter{Name: p.Name, Kind: kind, Values: append([]float64(nil), p.Values...)}, nil
	}
	gridKind := func(log bool) (param.Parameter, error) {
		if len(p.Values) != 0 {
			return param.Parameter{}, fmt.Errorf("kind %q takes low/high/points, not explicit values", p.Kind)
		}
		if p.Points < 1 {
			return param.Parameter{}, fmt.Errorf("kind %q needs points ≥ 1, got %d", p.Kind, p.Points)
		}
		if p.Points > 1 && p.Low >= p.High {
			return param.Parameter{}, fmt.Errorf("kind %q needs low < high, got [%g, %g]", p.Kind, p.Low, p.High)
		}
		if log && p.Low <= 0 {
			return param.Parameter{}, fmt.Errorf("kind %q needs a positive low bound, got %g", p.Kind, p.Low)
		}
		if log {
			return param.LogGrid(p.Name, p.Low, p.High, p.Points), nil
		}
		return param.Grid(p.Name, p.Low, p.High, p.Points), nil
	}
	var built param.Parameter
	var err error
	switch p.Kind {
	case "bool":
		if len(p.Values) != 0 || p.Points != 0 || p.Low != 0 || p.High != 0 {
			return param.Parameter{}, fmt.Errorf(`kind "bool" takes no values/low/high/points`)
		}
		built = param.Bool(p.Name)
	case "ordinal":
		built, err = listKind(param.Ordinal)
	case "categorical":
		built, err = listKind(param.Categorical)
	case "grid":
		built, err = gridKind(false)
	case "log-grid":
		built, err = gridKind(true)
	default:
		return param.Parameter{}, fmt.Errorf("unknown kind %q (want bool, ordinal, categorical, grid, or log-grid)", p.Kind)
	}
	if err != nil {
		return param.Parameter{}, err
	}
	if p.Priors != nil {
		// Weight-count and value checks happen in param.NewSpace, which
		// knows the expanded grid length for every kind.
		built.Priors = append([]float64(nil), p.Priors...)
	}
	return built, nil
}

// Binding is a parsed evaluator binding.
type Binding struct {
	// Kind is "builtin", "exec", or "http".
	Kind string
	// Target is the builtin evaluator name, the exec command line
	// (whitespace-split, no shell interpretation), or the full HTTP URL.
	Target string
}

// ParseBinding parses an evaluator binding string:
//
//	builtin:<name>    a Go evaluator model registered in the catalog
//	exec:<command>    a subprocess speaking JSON-lines on stdin/stdout
//	http://<url>      an HTTP endpoint accepting config batches (https too)
func ParseBinding(s string) (Binding, error) {
	switch {
	case strings.HasPrefix(s, "builtin:"):
		if t := s[len("builtin:"):]; t != "" {
			return Binding{Kind: "builtin", Target: t}, nil
		}
		return Binding{}, fmt.Errorf("spec: builtin binding with no evaluator name")
	case strings.HasPrefix(s, "exec:"):
		if t := strings.TrimSpace(s[len("exec:"):]); t != "" {
			return Binding{Kind: "exec", Target: t}, nil
		}
		return Binding{}, fmt.Errorf("spec: exec binding with no command")
	case strings.HasPrefix(s, "http://"), strings.HasPrefix(s, "https://"):
		return Binding{Kind: "http", Target: s}, nil
	case s == "":
		return Binding{}, fmt.Errorf("spec: no evaluator binding")
	default:
		return Binding{}, fmt.Errorf("spec: evaluator %q is not builtin:, exec:, or http(s)://", s)
	}
}
