package spec

import (
	"strings"
	"testing"

	"repro/internal/param"
)

const goodSpec = `{
  "version": 1,
  "name": "toy",
  "description": "two grids and a switch",
  "parameters": [
    {"name": "x", "kind": "grid", "low": 0, "high": 4, "points": 5},
    {"name": "y", "kind": "log-grid", "low": 1, "high": 16, "points": 5},
    {"name": "flag", "kind": "bool"},
    {"name": "lvl", "kind": "ordinal", "values": [1, 2, 3]}
  ],
  "constraints": [
    {"then": "x <= y"},
    {"if": "flag == 1", "then": "lvl != 2"}
  ],
  "objectives": ["f0", "f1"],
  "evaluator": "builtin:whatever"
}`

func TestParseGoodSpec(t *testing.T) {
	s, err := Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "toy" || len(s.Parameters) != 4 || len(s.Objectives) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	space, err := s.Space()
	if err != nil {
		t.Fatal(err)
	}
	if space.Dim() != 4 || space.Size() != 5*5*2*3 {
		t.Fatalf("space dim=%d size=%d", space.Dim(), space.Size())
	}
	if !space.Constrained() {
		t.Fatal("constraints did not reach the space")
	}
	// x=4 y=1 violates x <= y.
	if space.Feasible(param.Config{4, 1, 0, 1}) {
		t.Fatal("x<=y not enforced")
	}
	// flag=1 lvl=2 violates the conditional; flag=0 lvl=2 is fine.
	if space.Feasible(param.Config{0, 16, 1, 2}) {
		t.Fatal("conditional constraint not enforced")
	}
	if !space.Feasible(param.Config{0, 16, 0, 2}) {
		t.Fatal("conditional constraint fired with a false guard")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown field", `{"version":1,"name":"a","paramters":[]}`, "unknown field"},
		{"bad version", `{"version":2,"name":"a","parameters":[{"name":"x","kind":"bool"}],"objectives":["f"],"evaluator":"builtin:m"}`, "version 2"},
		{"no parameters", `{"version":1,"name":"a","parameters":[],"objectives":["f"],"evaluator":"builtin:m"}`, "no parameters"},
		{"no objectives", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"objectives":[],"evaluator":"builtin:m"}`, "no objectives"},
		{"empty name", `{"version":1,"name":"","parameters":[{"name":"x","kind":"bool"}],"objectives":["f"],"evaluator":"builtin:m"}`, "empty problem name"},
		{"bad kind", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"float"}],"objectives":["f"],"evaluator":"builtin:m"}`, "unknown kind"},
		{"bool with values", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool","values":[1]}],"objectives":["f"],"evaluator":"builtin:m"}`, "takes no values"},
		{"ordinal without values", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"ordinal"}],"objectives":["f"],"evaluator":"builtin:m"}`, "at least one value"},
		{"grid without points", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"grid","low":0,"high":1}],"objectives":["f"],"evaluator":"builtin:m"}`, "points"},
		{"grid inverted range", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"grid","low":2,"high":1,"points":3}],"objectives":["f"],"evaluator":"builtin:m"}`, "low < high"},
		{"log-grid nonpositive low", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"log-grid","low":0,"high":1,"points":3}],"objectives":["f"],"evaluator":"builtin:m"}`, "positive low"},
		{"no evaluator", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"objectives":["f"],"evaluator":""}`, "no evaluator"},
		{"bad binding", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"objectives":["f"],"evaluator":"shell:rm"}`, "not builtin:"},
		{"unknown constraint param", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"constraints":[{"then":"y == 1"}],"objectives":["f"],"evaluator":"builtin:m"}`, "unknown parameter"},
		{"constraint missing then", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"constraints":[{"if":"x == 1"}],"objectives":["f"],"evaluator":"builtin:m"}`, `empty "then"`},
		{"constraint no operator", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"constraints":[{"then":"x"}],"objectives":["f"],"evaluator":"builtin:m"}`, "no operator"},
		{"constraint double operator", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool"}],"constraints":[{"then":"x < 1 < 2"}],"objectives":["f"],"evaluator":"builtin:m"}`, "operator"},
		{"trailing content", goodSpec + `{"more": 1}`, "trailing content"},
		{"priors wrong count", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"ordinal","values":[1,2,3],"priors":[1,2]}],"objectives":["f"],"evaluator":"builtin:m"}`, "priors"},
		{"priors negative", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"bool","priors":[-1,2]}],"objectives":["f"],"evaluator":"builtin:m"}`, "prior weight"},
		{"priors all zero", `{"version":1,"name":"a","parameters":[{"name":"x","kind":"grid","low":0,"high":1,"points":2,"priors":[0,0]}],"objectives":["f"],"evaluator":"builtin:m"}`, "all-zero"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestConstraintOperators(t *testing.T) {
	space := param.MustSpace(param.Grid("a", 0, 4, 5), param.Grid("b", 0, 4, 5))
	cases := []struct {
		expr string
		cfg  param.Config
		want bool
	}{
		{"a < b", param.Config{1, 2}, true},
		{"a < b", param.Config{2, 2}, false},
		{"a <= b", param.Config{2, 2}, true},
		{"a > 1", param.Config{2, 0}, true},
		{"a >= 3", param.Config{2, 0}, false},
		{"a == 2", param.Config{2, 0}, true},
		{"a != 2", param.Config{2, 0}, false},
		{"3 <= b", param.Config{0, 4}, true},
		{"1 == 1", param.Config{0, 0}, true},
	}
	for _, tc := range cases {
		pred, err := CompileConstraint(Constraint{Then: tc.expr}, space)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if got := pred(tc.cfg); got != tc.want {
			t.Fatalf("%q on %v = %v, want %v", tc.expr, tc.cfg, got, tc.want)
		}
	}
}

func TestParseBinding(t *testing.T) {
	cases := []struct {
		in         string
		kind, tgt  string
		wantErrSub string
	}{
		{in: "builtin:model-x", kind: "builtin", tgt: "model-x"},
		{in: "exec:./objective --fast", kind: "exec", tgt: "./objective --fast"},
		{in: "http://host:9/eval", kind: "http", tgt: "http://host:9/eval"},
		{in: "https://host/eval", kind: "http", tgt: "https://host/eval"},
		{in: "builtin:", wantErrSub: "no evaluator name"},
		{in: "exec: ", wantErrSub: "no command"},
		{in: "", wantErrSub: "no evaluator binding"},
		{in: "ftp://host", wantErrSub: "not builtin:"},
	}
	for _, tc := range cases {
		b, err := ParseBinding(tc.in)
		if tc.wantErrSub != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErrSub) {
				t.Fatalf("ParseBinding(%q) err = %v, want %q", tc.in, err, tc.wantErrSub)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseBinding(%q): %v", tc.in, err)
		}
		if b.Kind != tc.kind || b.Target != tc.tgt {
			t.Fatalf("ParseBinding(%q) = %+v", tc.in, b)
		}
	}
}

func TestMarshalRoundTripStable(t *testing.T) {
	s, err := Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(m1)
	if err != nil {
		t.Fatalf("re-parsing own output: %v", err)
	}
	m2, err := s2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Fatalf("marshal not stable:\n%s\nvs\n%s", m1, m2)
	}
}

// TestPriorsReachSpaceAndRoundTrip: declared priors must survive the
// strict parse, land on the built space's parameters for weighted sampling,
// and round-trip byte-stably through Marshal.
func TestPriorsReachSpaceAndRoundTrip(t *testing.T) {
	doc := `{
  "version": 1,
  "name": "with-priors",
  "parameters": [
    {"name": "x", "kind": "grid", "low": 0, "high": 4, "points": 5, "priors": [5, 2, 1, 1, 1]},
    {"name": "flag", "kind": "bool", "priors": [1, 3]},
    {"name": "lvl", "kind": "ordinal", "values": [1, 2, 3]}
  ],
  "objectives": ["f0"],
  "evaluator": "builtin:m"
}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	space, err := s.Space()
	if err != nil {
		t.Fatal(err)
	}
	if !space.HasPriors() {
		t.Fatal("priors did not reach the space")
	}
	params := space.Params()
	if got := params[0].Priors; len(got) != 5 || got[0] != 5 {
		t.Fatalf("x priors = %v", got)
	}
	if got := params[1].Priors; len(got) != 2 || got[1] != 3 {
		t.Fatalf("flag priors = %v", got)
	}
	if params[2].Priors != nil {
		t.Fatalf("lvl grew priors %v out of nowhere", params[2].Priors)
	}
	m1, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(m1)
	if err != nil {
		t.Fatalf("re-parsing own output: %v", err)
	}
	m2, err := s2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Fatalf("priors marshal not stable:\n%s\nvs\n%s", m1, m2)
	}
}

func TestLoadDirRejectsEmptyDir(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir accepted a directory with no specs")
	}
}
