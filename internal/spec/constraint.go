package spec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/param"
)

// operand is one side of a comparison: a parameter reference or a numeric
// literal.
type operand struct {
	name    string // parameter name when isParam
	value   float64
	isParam bool
}

// comparison is one parsed "lhs OP rhs" clause.
type comparison struct {
	lhs, rhs operand
	op       string
}

// compOps lists the comparison operators, two-character ones first so
// "a <= b" is never misparsed as "<" against "= b".
var compOps = []string{"<=", ">=", "==", "!=", "<", ">"}

// parseComparison parses "operand OP operand". Exactly one operator must
// appear — chained comparisons ("a < b < c") are two clauses, not one.
func parseComparison(expr string) (comparison, error) {
	for _, op := range compOps {
		i := strings.Index(expr, op)
		if i < 0 {
			continue
		}
		lhs, err := parseOperand(expr[:i])
		if err != nil {
			return comparison{}, fmt.Errorf("in %q: %w", expr, err)
		}
		rhs, err := parseOperand(expr[i+len(op):])
		if err != nil {
			return comparison{}, fmt.Errorf("in %q: %w", expr, err)
		}
		return comparison{lhs: lhs, op: op, rhs: rhs}, nil
	}
	return comparison{}, fmt.Errorf("comparison %q has no operator (want <, <=, >, >=, ==, or !=)", expr)
}

// parseOperand parses one trimmed operand: a numeric literal if it scans
// as one, else a parameter name (resolved against the space at compile
// time).
func parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return operand{value: v}, nil
	}
	for _, op := range compOps {
		if strings.Contains(s, op) {
			return operand{}, fmt.Errorf("operand %q contains an operator; one comparison per clause", s)
		}
	}
	return operand{name: s, isParam: true}, nil
}

// compile resolves the comparison's parameter references against the space
// and returns the clause as a predicate over decoded configurations.
func (c comparison) compile(space *param.Space) (param.Predicate, error) {
	lhs, err := c.lhs.compile(space)
	if err != nil {
		return nil, err
	}
	rhs, err := c.rhs.compile(space)
	if err != nil {
		return nil, err
	}
	switch c.op {
	case "<":
		return func(cfg param.Config) bool { return lhs(cfg) < rhs(cfg) }, nil
	case "<=":
		return func(cfg param.Config) bool { return lhs(cfg) <= rhs(cfg) }, nil
	case ">":
		return func(cfg param.Config) bool { return lhs(cfg) > rhs(cfg) }, nil
	case ">=":
		return func(cfg param.Config) bool { return lhs(cfg) >= rhs(cfg) }, nil
	case "==":
		return func(cfg param.Config) bool { return lhs(cfg) == rhs(cfg) }, nil
	case "!=":
		return func(cfg param.Config) bool { return lhs(cfg) != rhs(cfg) }, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", c.op)
	}
}

func (o operand) compile(space *param.Space) (func(param.Config) float64, error) {
	if !o.isParam {
		v := o.value
		return func(param.Config) float64 { return v }, nil
	}
	i := space.IndexOfName(o.name)
	if i < 0 {
		return nil, fmt.Errorf("constraint references unknown parameter %q", o.name)
	}
	return func(cfg param.Config) float64 { return cfg[i] }, nil
}

// CompileConstraint compiles one clause against a space: the predicate
// holds when Then is satisfied or the If guard (when present) is not.
func CompileConstraint(c Constraint, space *param.Space) (param.Predicate, error) {
	if strings.TrimSpace(c.Then) == "" {
		return nil, fmt.Errorf(`constraint with empty "then" clause`)
	}
	thenCmp, err := parseComparison(c.Then)
	if err != nil {
		return nil, err
	}
	then, err := thenCmp.compile(space)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(c.If) == "" {
		return then, nil
	}
	ifCmp, err := parseComparison(c.If)
	if err != nil {
		return nil, err
	}
	guard, err := ifCmp.compile(space)
	if err != nil {
		return nil, err
	}
	return func(cfg param.Config) bool { return !guard(cfg) || then(cfg) }, nil
}

// CompileConstraints compiles a clause list into one conjunction: a
// configuration is feasible when every clause holds. The result is what a
// Spec installs as the space's feasibility predicate.
func CompileConstraints(cs []Constraint, space *param.Space) (param.Predicate, error) {
	preds := make([]param.Predicate, len(cs))
	for i, c := range cs {
		p, err := CompileConstraint(c, space)
		if err != nil {
			return nil, fmt.Errorf("constraint %d: %w", i, err)
		}
		preds[i] = p
	}
	return func(cfg param.Config) bool {
		for _, p := range preds {
			if !p(cfg) {
				return false
			}
		}
		return true
	}, nil
}
