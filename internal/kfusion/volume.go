package kfusion

import (
	"math"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// Volume is the truncated signed distance function (TSDF) voxel grid at the
// heart of KinectFusion. TSDF values are normalized to [-1, 1] (distance to
// the nearest surface divided by the truncation distance µ); weights count
// fused observations.
type Volume struct {
	Res    int       // voxels per side
	Size   float64   // edge length in meters
	Origin geom.Vec3 // world position of the (0,0,0) voxel corner
	tsdf   []float32
	weight []float32
}

// NewVolume allocates a res³ volume of the given physical size centered at
// center.
func NewVolume(res int, size float64, center geom.Vec3) *Volume {
	n := res * res * res
	v := &Volume{
		Res:    res,
		Size:   size,
		Origin: center.Sub(geom.V3(size/2, size/2, size/2)),
		tsdf:   make([]float32, n),
		weight: make([]float32, n),
	}
	for i := range v.tsdf {
		v.tsdf[i] = 1 // truncated "far" everywhere until observed
	}
	return v
}

// VoxelSize returns the edge length of one voxel in meters.
func (v *Volume) VoxelSize() float64 { return v.Size / float64(v.Res) }

// index returns the flat index of voxel (x, y, z); callers bound-check.
func (v *Volume) index(x, y, z int) int { return (z*v.Res+y)*v.Res + x }

// At returns the TSDF value and weight of voxel (x, y, z), with (1, 0) for
// out-of-grid coordinates.
func (v *Volume) At(x, y, z int) (float32, float32) {
	if x < 0 || y < 0 || z < 0 || x >= v.Res || y >= v.Res || z >= v.Res {
		return 1, 0
	}
	i := v.index(x, y, z)
	return v.tsdf[i], v.weight[i]
}

// setBlend fuses a new normalized TSDF observation into voxel (x, y, z)
// with the running weighted average, capping the weight at maxWeight.
func (v *Volume) setBlend(x, y, z int, val float32, maxWeight float32) {
	if x < 0 || y < 0 || z < 0 || x >= v.Res || y >= v.Res || z >= v.Res {
		return
	}
	i := v.index(x, y, z)
	w := v.weight[i]
	v.tsdf[i] = (v.tsdf[i]*w + val) / (w + 1)
	if w < maxWeight {
		v.weight[i] = w + 1
	}
}

// voxelOf returns the voxel coordinates containing world point p.
func (v *Volume) voxelOf(p geom.Vec3) (int, int, int) {
	inv := 1 / v.VoxelSize()
	q := p.Sub(v.Origin)
	return int(math.Floor(q.X * inv)), int(math.Floor(q.Y * inv)), int(math.Floor(q.Z * inv))
}

// Interp returns the trilinearly interpolated TSDF at world point p; ok is
// false when any contributing voxel is unobserved or out of grid.
func (v *Volume) Interp(p geom.Vec3) (float64, bool) {
	inv := 1 / v.VoxelSize()
	q := p.Sub(v.Origin).Scale(inv).Sub(geom.V3(0.5, 0.5, 0.5))
	x0 := int(math.Floor(q.X))
	y0 := int(math.Floor(q.Y))
	z0 := int(math.Floor(q.Z))
	fx := q.X - float64(x0)
	fy := q.Y - float64(y0)
	fz := q.Z - float64(z0)

	var acc, mass float64
	for dz := 0; dz < 2; dz++ {
		wz := fz
		if dz == 0 {
			wz = 1 - fz
		}
		for dy := 0; dy < 2; dy++ {
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			for dx := 0; dx < 2; dx++ {
				wx := fx
				if dx == 0 {
					wx = 1 - fx
				}
				t, w := v.At(x0+dx, y0+dy, z0+dz)
				if w == 0 {
					continue
				}
				wi := wx * wy * wz
				acc += wi * float64(t)
				mass += wi
			}
		}
	}
	// Tolerate partially-observed cells (sparse ray coverage at high
	// compute-size ratios) as long as most interpolation mass is observed.
	if mass < 0.7 {
		return 1, false
	}
	return acc / mass, true
}

// Grad returns the TSDF gradient at world point p (unnormalized surface
// normal direction); ok is false near unobserved space.
func (v *Volume) Grad(p geom.Vec3) (geom.Vec3, bool) {
	h := v.VoxelSize()
	xp, okA := v.Interp(p.Add(geom.V3(h, 0, 0)))
	xm, okB := v.Interp(p.Sub(geom.V3(h, 0, 0)))
	yp, okC := v.Interp(p.Add(geom.V3(0, h, 0)))
	ym, okD := v.Interp(p.Sub(geom.V3(0, h, 0)))
	zp, okE := v.Interp(p.Add(geom.V3(0, 0, h)))
	zm, okF := v.Interp(p.Sub(geom.V3(0, 0, h)))
	if !(okA && okB && okC && okD && okE && okF) {
		return geom.Vec3{}, false
	}
	return geom.V3(xp-xm, yp-ym, zp-zm), true
}

// Integrate fuses a depth map taken from pose (camera-to-world) into the
// volume with truncation distance mu. The implementation updates only the
// voxels within the truncation band along each pixel ray (see DESIGN.md:
// runtime is billed for the full res³ frustum sweep separately). It returns
// the number of voxel updates actually performed.
func (v *Volume) Integrate(depth *imgproc.Map, intr imgproc.Intrinsics, pose geom.Pose, mu float64, maxWeight float32) int64 {
	vs := v.VoxelSize()
	step := vs * 0.5
	band := mu + vs
	camPos := pose.Translation()
	rotT := pose.R.Transpose() // world → camera rotation
	minF := math.Min(intr.Fx, intr.Fy)
	var updates int64

	for py := 0; py < depth.H; py++ {
		for px := 0; px < depth.W; px++ {
			d := float64(depth.At(px, py))
			if d <= 0 {
				continue
			}
			// World-space ray parameterized by camera depth z:
			// X(z) = camPos + R·dirCam·z.
			dirWorld := pose.Rotate(intr.Unproject(px, py))
			z0 := d - band
			if z0 < 0.2 {
				z0 = 0.2
			}
			z1 := d + band
			// When the lateral pixel pitch at this depth exceeds the voxel
			// pitch (high compute-size ratios), splat a small neighborhood
			// so the band has no unobserved gaps between ray tubes.
			splat := int(d/minF/(2*vs) + 0.25)
			if splat > 2 {
				splat = 2
			}
			for z := z0; z <= z1; z += step {
				p := camPos.Add(dirWorld.Scale(z))
				cx, cy, cz := v.voxelOf(p)
				if splat == 0 {
					sdf := d - z // projective signed distance along the ray
					if sdf < -mu {
						continue
					}
					val := sdf / mu
					if val > 1 {
						val = 1
					}
					v.setBlend(cx, cy, cz, float32(val), maxWeight)
					updates++
					continue
				}
				for dz := -splat; dz <= splat; dz++ {
					for dy := -splat; dy <= splat; dy++ {
						for dx := -splat; dx <= splat; dx++ {
							x, y, zz := cx+dx, cy+dy, cz+dz
							if x < 0 || y < 0 || zz < 0 || x >= v.Res || y >= v.Res || zz >= v.Res {
								continue
							}
							// Correct projective SDF for the neighbor: its
							// own camera depth against this pixel's depth.
							center := v.Origin.Add(geom.V3(
								(float64(x)+0.5)*vs,
								(float64(y)+0.5)*vs,
								(float64(zz)+0.5)*vs,
							))
							zc := rotT.MulVec(center.Sub(camPos)).Z
							sdf := d - zc
							if sdf < -mu {
								continue
							}
							val := sdf / mu
							if val > 1 {
								val = 1
							}
							v.setBlend(x, y, zz, float32(val), maxWeight)
							updates++
						}
					}
				}
			}
		}
	}
	return updates
}

// Raycast renders vertex and normal maps (world coordinates) of the zero
// crossing of the TSDF as seen from pose, for the next frame's ICP
// reference. It returns the maps and the number of marching steps taken.
func (v *Volume) Raycast(intr imgproc.Intrinsics, pose geom.Pose, mu, near, far float64) (*imgproc.VecMap, *imgproc.VecMap, int64) {
	vertex := imgproc.NewVecMap(intr.W, intr.H)
	normal := imgproc.NewVecMap(intr.W, intr.H)
	camPos := pose.Translation()
	largeStep := math.Max(mu*0.75, v.VoxelSize())
	fineStep := v.VoxelSize() * 0.5
	var steps int64

	for py := 0; py < intr.H; py++ {
		for px := 0; px < intr.W; px++ {
			dirWorld := pose.Rotate(intr.Unproject(px, py))
			t := near
			prevVal := 1.0
			prevOK := false
			prevT := t
			for t < far {
				p := camPos.Add(dirWorld.Scale(t))
				val, ok := v.Interp(p)
				steps++
				if ok && prevOK && prevVal > 0 && val <= 0 {
					// Zero crossing: interpolate the exact depth.
					tHit := prevT + (t-prevT)*prevVal/(prevVal-val)
					hit := camPos.Add(dirWorld.Scale(tHit))
					if g, gok := v.Grad(hit); gok {
						n := g.Normalized()
						if n != (geom.Vec3{}) {
							vertex.Set(px, py, hit)
							normal.Set(px, py, n)
						}
					}
					break
				}
				prevVal, prevOK, prevT = val, ok, t
				// March fast through far/unknown space, slow near surfaces.
				if ok && val < 0.5 {
					t += fineStep
				} else {
					t += largeStep
				}
			}
		}
	}
	return vertex, normal, steps
}
