// Package kfusion implements the KinectFusion dense SLAM pipeline
// (Newcombe et al., ISMAR 2011) as benchmarked by SLAMBench: bilateral
// preprocessing, multi-scale projective-data-association ICP tracking, TSDF
// integration and raycasting. All seven algorithmic parameters of the
// paper's design space (§III-B) are exposed and per-kernel work counters
// feed the device runtime models.
package kfusion

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/sensor"
)

// Config holds the algorithmic parameters of the paper's KFusion design
// space (§III-B).
type Config struct {
	// VolumeResolution is the voxel count per volume side (64–256).
	VolumeResolution int
	// Mu is the TSDF truncation distance in meters.
	Mu float64
	// ComputeRatio is the fractional depth image resolution (1, 2, 4, 8).
	ComputeRatio int
	// TrackingRate localizes every TrackingRate-th frame.
	TrackingRate int
	// IntegrationRate fuses every IntegrationRate-th frame.
	IntegrationRate int
	// ICPThreshold stops ICP iterations once the pose update norm falls
	// below it (larger = faster, less accurate).
	ICPThreshold float64
	// PyramidIters bounds ICP iterations per pyramid level, finest first.
	PyramidIters [3]int
}

// DefaultConfig returns the expert defaults KFusion ships with (tuned by
// the original developers on a desktop NVIDIA GPU, as the paper notes).
func DefaultConfig() Config {
	return Config{
		VolumeResolution: 256,
		Mu:               0.1,
		ComputeRatio:     1,
		TrackingRate:     1,
		IntegrationRate:  2,
		ICPThreshold:     1e-5,
		PyramidIters:     [3]int{10, 5, 4},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VolumeResolution < 8:
		return fmt.Errorf("kfusion: volume resolution %d too small", c.VolumeResolution)
	case c.Mu <= 0:
		return errors.New("kfusion: mu must be positive")
	case c.ComputeRatio < 1:
		return errors.New("kfusion: compute ratio must be ≥ 1")
	case c.TrackingRate < 1 || c.IntegrationRate < 1:
		return errors.New("kfusion: rates must be ≥ 1")
	case c.ICPThreshold < 0:
		return errors.New("kfusion: negative ICP threshold")
	case c.PyramidIters[0] < 0 || c.PyramidIters[1] < 0 || c.PyramidIters[2] < 0:
		return errors.New("kfusion: negative pyramid iterations")
	}
	return nil
}

// SimOptions controls the simulation substrate (not part of the paper's
// design space).
type SimOptions struct {
	// VolumeScale divides the simulated voxel resolution: the runtime
	// model is billed at Config.VolumeResolution but the in-memory volume
	// uses VolumeResolution/VolumeScale voxels so that thousands of DSE
	// evaluations stay tractable (DESIGN.md §1). 0 means 2.
	VolumeScale int
	// VolumeSize is the physical edge length in meters (0 = 5.4, sized to
	// the living room).
	VolumeSize float64
	// VolumeCenter is the world-space volume center (zero value = room
	// center at (0, 1.3, 0)).
	VolumeCenter geom.Vec3
	// MaxWeight caps the TSDF running average (0 = 100).
	MaxWeight float32
}

func (s SimOptions) withDefaults() SimOptions {
	if s.VolumeScale <= 0 {
		s.VolumeScale = 2
	}
	if s.VolumeSize <= 0 {
		s.VolumeSize = 5.4
	}
	if s.VolumeCenter == (geom.Vec3{}) {
		s.VolumeCenter = geom.V3(0, 1.3, 0)
	}
	if s.MaxWeight <= 0 {
		s.MaxWeight = 100
	}
	return s
}

// Counters accumulates per-kernel work over a run. Image-kernel counts are
// in actual operations at the simulated resolution; IntegrateFullSweep is
// the res³-per-integrated-frame figure the runtime model bills (the full
// frustum sweep of the original CUDA/OpenCL kernels).
type Counters struct {
	ResizeOps          int64
	BilateralOps       int64
	PyramidOps         int64
	TrackOps           int64
	IntegrateFullSweep int64
	IntegrateActual    int64
	RaycastSteps       int64
	Frames             int64
	TrackedFrames      int64
	IntegratedFrames   int64
	TrackingFailures   int64
}

// Result is the output of one KFusion run.
type Result struct {
	// Trajectory holds the estimated camera-to-world pose per frame.
	Trajectory []geom.Pose
	Counters   Counters
}

// Run executes the full pipeline over the dataset.
func Run(ds *sensor.Dataset, cfg Config, sim SimOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds == nil || ds.NumFrames() == 0 {
		return nil, errors.New("kfusion: empty dataset")
	}
	sim = sim.withDefaults()

	simRes := cfg.VolumeResolution / sim.VolumeScale
	if simRes < 16 {
		simRes = 16
	}
	vol := NewVolume(simRes, sim.VolumeSize, sim.VolumeCenter)

	res := &Result{Trajectory: make([]geom.Pose, ds.NumFrames())}
	c := &res.Counters

	intr := ds.Intrinsics.Scaled(cfg.ComputeRatio)
	if intr.W < 4 || intr.H < 4 {
		return nil, fmt.Errorf("kfusion: compute ratio %d leaves a %dx%d image", cfg.ComputeRatio, intr.W, intr.H)
	}
	levelIntr := [3]imgproc.Intrinsics{intr, intr.Halved(), intr.Halved().Halved()}

	pose := ds.GroundTruth[0] // SLAMBench initializes from the dataset origin
	var modelVertex, modelNormal *imgproc.VecMap
	var modelPose geom.Pose

	fullSweep := int64(cfg.VolumeResolution) * int64(cfg.VolumeResolution) * int64(cfg.VolumeResolution)

	for i := 0; i < ds.NumFrames(); i++ {
		c.Frames++

		// --- Preprocessing: resize + bilateral filter ---
		scaled, rops := imgproc.BlockAverage(ds.Frames[i].Depth, cfg.ComputeRatio)
		c.ResizeOps += rops
		filtered, bops := imgproc.BilateralFilter(scaled, 2, 1.5, 0.1)
		c.BilateralOps += bops

		// --- Pyramid construction + vertex/normal maps ---
		levels := make([]icpLevel, 3)
		depths := [3]*imgproc.Map{filtered, nil, nil}
		for l := 1; l < 3; l++ {
			d, pops := imgproc.HalfSampleDepth(depths[l-1], 0.05)
			depths[l] = d
			c.PyramidOps += pops
		}
		for l := 0; l < 3; l++ {
			v := imgproc.DepthToVertex(depths[l], levelIntr[l])
			n := imgproc.VertexToNormal(v)
			c.PyramidOps += int64(depths[l].W * depths[l].H * 2)
			levels[l] = icpLevel{vertex: v, normal: n}
		}

		// --- Tracking ---
		if i > 0 && modelVertex != nil && (i%cfg.TrackingRate == 0) {
			iters := []int{cfg.PyramidIters[0], cfg.PyramidIters[1], cfg.PyramidIters[2]}
			newPose, tops, err := trackICP(
				levels, modelVertex, modelNormal, intr, modelPose,
				pose, iters, cfg.ICPThreshold,
			)
			c.TrackOps += tops
			if err != nil {
				c.TrackingFailures++
				// Keep the previous pose (constant-position model).
			} else {
				pose = newPose
				c.TrackedFrames++
			}
		}
		res.Trajectory[i] = pose

		// --- Integration ---
		if i == 0 || i%cfg.IntegrationRate == 0 {
			c.IntegrateActual += vol.Integrate(filtered, intr, pose, cfg.Mu, sim.MaxWeight)
			c.IntegrateFullSweep += fullSweep
			c.IntegratedFrames++
		}

		// --- Raycasting: the model reference for the next frame ---
		mv, mn, steps := vol.Raycast(intr, pose, cfg.Mu, 0.3, 5.0)
		c.RaycastSteps += steps
		modelVertex, modelNormal, modelPose = mv, mn, pose
	}
	return res, nil
}
