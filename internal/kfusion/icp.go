package kfusion

import (
	"errors"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// ICP tracking constants (SLAMBench values).
const (
	icpDistThreshold   = 0.1  // max point distance for a correspondence (m)
	icpNormalThreshold = 0.8  // min normal dot product for a correspondence
	minTrackedFraction = 0.10 // minimum fraction of pixels with correspondences
)

// ErrTrackingLost indicates ICP could not produce a reliable pose.
var ErrTrackingLost = errors.New("kfusion: tracking lost")

// icpLevel holds the per-pyramid-level inputs of the tracker.
type icpLevel struct {
	vertex *imgproc.VecMap // camera-frame vertices of the current frame
	normal *imgproc.VecMap // camera-frame normals of the current frame
}

// trackICP estimates the camera-to-world pose of the current frame by
// point-to-plane projective-data-association ICP against the raycasted
// model maps (world coordinates, rendered from refPose's viewpoint at the
// resolution of refIntr).
//
// levels are ordered fine-to-coarse; iterations[l] bounds the Gauss-Newton
// iterations at level l, and iteration stops early once the twist update
// norm drops below threshold (the paper's icp-threshold parameter: large
// values trade accuracy for speed). The returned ops counts point
// operations for the runtime model.
func trackICP(
	levels []icpLevel,
	modelVertex, modelNormal *imgproc.VecMap,
	refIntr imgproc.Intrinsics,
	refPose geom.Pose,
	initial geom.Pose,
	iterations []int,
	threshold float64,
) (geom.Pose, int64, error) {
	pose := initial
	refInv := refPose.Inverse()
	var ops int64
	tracked := false

	for li := len(levels) - 1; li >= 0; li-- { // coarse to fine
		lvl := levels[li]
		iters := iterations[li]
		for it := 0; it < iters; it++ {
			var h [36]float64
			var b [6]float64
			matches := 0
			valid := 0
			for y := 0; y < lvl.vertex.H; y++ {
				for x := 0; x < lvl.vertex.W; x++ {
					if !lvl.vertex.ValidAt(x, y) || !lvl.normal.ValidAt(x, y) {
						continue
					}
					valid++
					ops++
					vCam := lvl.vertex.At(x, y)
					vWorld := pose.Apply(vCam)
					// Project into the reference view to find the model
					// correspondence.
					pRef := refInv.Apply(vWorld)
					u, vv, ok := refIntr.Project(pRef)
					if !ok {
						continue
					}
					if !modelVertex.ValidAt(u, vv) || !modelNormal.ValidAt(u, vv) {
						continue
					}
					mV := modelVertex.At(u, vv)
					mN := modelNormal.At(u, vv)
					diff := vWorld.Sub(mV)
					if diff.Norm() > icpDistThreshold {
						continue
					}
					nCamWorld := pose.Rotate(lvl.normal.At(x, y))
					if nCamWorld.Dot(mN) < icpNormalThreshold {
						continue
					}
					matches++
					// Point-to-plane residual and Jacobian for the twist
					// ξ = (v, w): r(ξ) = n·(vWorld + v + w×vWorld − mV).
					r := mN.Dot(diff)
					jv := mN
					jw := vWorld.Cross(mN)
					j := [6]float64{jv.X, jv.Y, jv.Z, jw.X, jw.Y, jw.Z}
					for a := 0; a < 6; a++ {
						b[a] -= j[a] * r
						for c := a; c < 6; c++ {
							h[a*6+c] += j[a] * j[c]
						}
					}
				}
			}
			if valid == 0 || float64(matches) < minTrackedFraction*float64(valid) {
				break // not enough correspondences at this level
			}
			// Mirror the upper triangle.
			for a := 1; a < 6; a++ {
				for c := 0; c < a; c++ {
					h[a*6+c] = h[c*6+a]
				}
			}
			x, err := geom.Solve6(&h, &b)
			if err != nil {
				break
			}
			dv := geom.V3(x[0], x[1], x[2])
			dw := geom.V3(x[3], x[4], x[5])
			pose = geom.ExpSE3(dv, dw).Mul(pose).Orthonormalize()
			tracked = true
			if dv.Norm()+dw.Norm() < threshold {
				break // converged at this level (icp-threshold semantics)
			}
		}
	}
	if !tracked {
		return initial, ops, ErrTrackingLost
	}
	return pose, ops, nil
}
