package kfusion

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// planeVolume integrates a fronto-parallel plane at z=1.5 into a fresh
// volume and returns it.
func planeVolume(t *testing.T) *Volume {
	t.Helper()
	intr := imgproc.StandardIntrinsics(48, 36)
	depth := imgproc.NewMap(48, 36)
	for i := range depth.Pix {
		depth.Pix[i] = 1.5
	}
	vol := NewVolume(48, 2.4, geom.V3(0, 0, 1.5))
	for i := 0; i < 3; i++ {
		vol.Integrate(depth, intr, geom.IdentityPose(), 0.1, 100)
	}
	return vol
}

func TestExtractMeshPlane(t *testing.T) {
	vol := planeVolume(t)
	tris := vol.ExtractMesh()
	if len(tris) < 50 {
		t.Fatalf("only %d triangles extracted", len(tris))
	}
	// All vertices must lie close to the z=1.5 plane.
	for _, tri := range tris {
		for _, p := range tri {
			if math.Abs(p.Z-1.5) > 0.08 {
				t.Fatalf("vertex %v far from the surface", p)
			}
		}
	}
}

func TestExtractMeshEmptyVolume(t *testing.T) {
	vol := NewVolume(16, 1.6, geom.Vec3{})
	if tris := vol.ExtractMesh(); len(tris) != 0 {
		t.Fatalf("unobserved volume produced %d triangles", len(tris))
	}
}

func TestEvaluateMeshPlane(t *testing.T) {
	vol := planeVolume(t)
	tris := vol.ExtractMesh()
	stats := EvaluateMesh(tris, func(p geom.Vec3) float64 { return p.Z - 1.5 })
	if stats.Triangles != len(tris) {
		t.Fatal("triangle count mismatch")
	}
	if stats.MeanAbsError > 0.02 {
		t.Fatalf("mean reconstruction error %.4f m too large", stats.MeanAbsError)
	}
	if stats.MaxAbsError > 0.08 {
		t.Fatalf("max reconstruction error %.4f m too large", stats.MaxAbsError)
	}
}

func TestEvaluateMeshEmpty(t *testing.T) {
	stats := EvaluateMesh(nil, func(geom.Vec3) float64 { return 0 })
	if stats.Triangles != 0 || stats.MeanAbsError != 0 {
		t.Fatalf("empty mesh stats: %+v", stats)
	}
}

func TestMeshDegenerateTrianglesRare(t *testing.T) {
	vol := planeVolume(t)
	degenerate := 0
	tris := vol.ExtractMesh()
	for _, tri := range tris {
		a := tri[1].Sub(tri[0])
		b := tri[2].Sub(tri[0])
		if a.Cross(b).Norm() < 1e-12 {
			degenerate++
		}
	}
	if degenerate > len(tris)/10 {
		t.Fatalf("%d/%d degenerate triangles", degenerate, len(tris))
	}
}

func TestEndToEndMeshFromPipeline(t *testing.T) {
	// Run the full pipeline, then extract the room mesh and measure its
	// error against the true scene SDF.
	cfg := testConfig()
	res, err := Run(testDataset, cfg, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Re-run integration into an accessible volume (Run owns its own):
	vol := NewVolume(64, 5.4, geom.V3(0, 1.3, 0))
	for i := 0; i < testDataset.NumFrames(); i += 2 {
		filtered, _ := imgproc.BilateralFilter(testDataset.Frames[i].Depth, 2, 1.5, 0.1)
		vol.Integrate(filtered, testDataset.Intrinsics, testDataset.GroundTruth[i], 0.12, 100)
	}
	tris := vol.ExtractMesh()
	if len(tris) < 500 {
		t.Fatalf("room mesh has only %d triangles", len(tris))
	}
	stats := EvaluateMesh(tris, testDataset.Scene.Dist)
	if stats.MeanAbsError > 0.08 {
		t.Fatalf("room reconstruction error %.4f m", stats.MeanAbsError)
	}
}

func TestWriteOBJ(t *testing.T) {
	tris := []Triangle{
		{geom.V3(0, 0, 0), geom.V3(1, 0, 0), geom.V3(0, 1, 0)},
		{geom.V3(0, 0, 1), geom.V3(1, 0, 1), geom.V3(0, 1, 1)},
	}
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, tris); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\nv ") != 6 {
		t.Fatalf("expected 6 vertices:\n%s", out)
	}
	if strings.Count(out, "\nf ") != 2 {
		t.Fatalf("expected 2 faces:\n%s", out)
	}
	if !strings.Contains(out, "f 4 5 6") {
		t.Fatal("face indices must be 1-based and sequential")
	}
}

func BenchmarkExtractMesh(b *testing.B) {
	intr := imgproc.StandardIntrinsics(48, 36)
	depth := imgproc.NewMap(48, 36)
	for i := range depth.Pix {
		depth.Pix[i] = 1.5
	}
	vol := NewVolume(64, 2.4, geom.V3(0, 0, 1.5))
	vol.Integrate(depth, intr, geom.IdentityPose(), 0.1, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vol.ExtractMesh()
	}
}
