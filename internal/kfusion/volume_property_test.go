package kfusion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/sensor"
)

// TestTSDFBoundedProperty: whatever is integrated, TSDF values stay in
// [-1, 1] and weights stay non-negative and capped.
func TestTSDFBoundedProperty(t *testing.T) {
	intr := imgproc.StandardIntrinsics(24, 18)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vol := NewVolume(24, 2.4, geom.V3(0, 0, 1.2))
		for pass := 0; pass < 3; pass++ {
			depth := imgproc.NewMap(24, 18)
			for i := range depth.Pix {
				if rng.Float64() < 0.8 {
					depth.Pix[i] = float32(0.5 + rng.Float64()*1.5)
				}
			}
			pose := geom.Pose{
				R: geom.ExpSO3(geom.V3(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)),
				T: geom.V3(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2, rng.NormFloat64()*0.2),
			}
			vol.Integrate(depth, intr, pose, 0.05+rng.Float64()*0.4, 20)
		}
		for x := 0; x < vol.Res; x++ {
			for y := 0; y < vol.Res; y++ {
				for z := 0; z < vol.Res; z++ {
					tv, w := vol.At(x, y, z)
					if tv < -1-1e-6 || tv > 1+1e-6 {
						return false
					}
					if w < 0 || w > 20 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestInterpWithinVoxelBounds: trilinear interpolation never exceeds the
// extreme TSDF values of its corner voxels.
func TestInterpWithinVoxelBounds(t *testing.T) {
	vol := NewVolume(8, 0.8, geom.Vec3{})
	rng := rand.New(rand.NewSource(2))
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				vol.setBlend(x, y, z, float32(rng.Float64()*2-1), 10)
			}
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := geom.V3(r.Float64()*0.6+0.1, r.Float64()*0.6+0.1, r.Float64()*0.6+0.1)
		v, ok := vol.Interp(p)
		if !ok {
			return true
		}
		return v >= -1.000001 && v <= 1.000001
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineAllInvalidDepth: a dataset whose depth is entirely invalid
// must not crash; tracking fails gracefully and the trajectory stays at
// the initial pose.
func TestPipelineAllInvalidDepth(t *testing.T) {
	ds2 := *testDataset // shallow copy, then replace all frames with blanks
	ds2.Frames = nil
	for range testDataset.Frames {
		ds2.Frames = append(ds2.Frames, sensor.Frame{
			Depth:     imgproc.NewMap(ds2.Intrinsics.W, ds2.Intrinsics.H),
			Intensity: imgproc.NewMap(ds2.Intrinsics.W, ds2.Intrinsics.H),
		})
	}
	res, err := Run(&ds2, testConfig(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Trajectory {
		if res.Trajectory[i].T != ds2.GroundTruth[0].T {
			t.Fatal("pose should stay at the initial pose with no data")
		}
	}
	if res.Counters.TrackedFrames != 0 {
		t.Fatal("tracking should never succeed on empty frames")
	}
}
