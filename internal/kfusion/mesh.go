package kfusion

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/geom"
)

// Triangle is one mesh face in world coordinates.
type Triangle [3]geom.Vec3

// ExtractMesh polygonizes the TSDF zero crossing with marching tetrahedra
// (each cell splits into six tetrahedra; no case table needed and the
// output is watertight across cell boundaries). Cells touching unobserved
// voxels are skipped. This is KinectFusion's "highly detailed 3D model"
// output; the paper's pipelines expose it through the raycast, and tests
// use it to measure reconstruction error against the true scene.
func (v *Volume) ExtractMesh() []Triangle {
	var tris []Triangle
	vs := v.VoxelSize()

	// Corner offsets of a cell, in voxel steps.
	corners := [8][3]int{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	// Six tetrahedra around the v0–v6 diagonal.
	tets := [6][4]int{
		{0, 5, 1, 6}, {0, 1, 2, 6}, {0, 2, 3, 6},
		{0, 3, 7, 6}, {0, 7, 4, 6}, {0, 4, 5, 6},
	}

	var val [8]float64
	var pos [8]geom.Vec3
	for z := 0; z < v.Res-1; z++ {
		for y := 0; y < v.Res-1; y++ {
			for x := 0; x < v.Res-1; x++ {
				observed := true
				anyNeg, anyPos := false, false
				for i, c := range corners {
					t, w := v.At(x+c[0], y+c[1], z+c[2])
					if w == 0 {
						observed = false
						break
					}
					val[i] = float64(t)
					if val[i] < 0 {
						anyNeg = true
					} else {
						anyPos = true
					}
					pos[i] = v.Origin.Add(geom.V3(
						(float64(x+c[0])+0.5)*vs,
						(float64(y+c[1])+0.5)*vs,
						(float64(z+c[2])+0.5)*vs,
					))
				}
				if !observed || !anyNeg || !anyPos {
					continue
				}
				for _, tet := range tets {
					tris = appendTetTriangles(tris, val, pos, tet)
				}
			}
		}
	}
	return tris
}

// appendTetTriangles emits the iso-surface triangles of one tetrahedron.
func appendTetTriangles(tris []Triangle, val [8]float64, pos [8]geom.Vec3, tet [4]int) []Triangle {
	var neg, nonneg []int
	for _, ci := range tet {
		if val[ci] < 0 {
			neg = append(neg, ci)
		} else {
			nonneg = append(nonneg, ci)
		}
	}
	cross := func(a, b int) geom.Vec3 {
		va, vb := val[a], val[b]
		t := va / (va - vb) // va < 0 <= vb or vice versa, so va != vb
		return geom.Lerp(pos[a], pos[b], t)
	}
	switch len(neg) {
	case 1:
		a := neg[0]
		return append(tris, Triangle{
			cross(a, nonneg[0]), cross(a, nonneg[1]), cross(a, nonneg[2]),
		})
	case 3:
		a := nonneg[0]
		return append(tris, Triangle{
			cross(neg[0], a), cross(neg[1], a), cross(neg[2], a),
		})
	case 2:
		// Quad between the two crossing pairs, split into two triangles.
		p00 := cross(neg[0], nonneg[0])
		p01 := cross(neg[0], nonneg[1])
		p10 := cross(neg[1], nonneg[0])
		p11 := cross(neg[1], nonneg[1])
		return append(tris,
			Triangle{p00, p01, p11},
			Triangle{p00, p11, p10},
		)
	default:
		return tris
	}
}

// MeshStats summarizes a mesh against a reference signed distance field.
type MeshStats struct {
	Triangles int
	// MeanAbsError and MaxAbsError measure vertex distance to the true
	// surface (meters).
	MeanAbsError float64
	MaxAbsError  float64
}

// EvaluateMesh measures the reconstruction error of a mesh against a
// ground-truth signed distance function (the synthetic scene).
func EvaluateMesh(tris []Triangle, sdf func(geom.Vec3) float64) MeshStats {
	st := MeshStats{Triangles: len(tris)}
	n := 0
	for _, t := range tris {
		for _, p := range t {
			d := sdf(p)
			if d < 0 {
				d = -d
			}
			st.MeanAbsError += d
			if d > st.MaxAbsError {
				st.MaxAbsError = d
			}
			n++
		}
	}
	if n > 0 {
		st.MeanAbsError /= float64(n)
	}
	return st
}

// WriteOBJ streams the mesh in Wavefront OBJ format.
func WriteOBJ(w io.Writer, tris []Triangle) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d triangles, kfusion TSDF mesh\n", len(tris))
	for _, t := range tris {
		for _, p := range t {
			fmt.Fprintf(bw, "v %g %g %g\n", p.X, p.Y, p.Z)
		}
	}
	for i := range tris {
		base := 3*i + 1
		fmt.Fprintf(bw, "f %d %d %d\n", base, base+1, base+2)
	}
	return bw.Flush()
}
