package kfusion

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/sensor"
)

// testDataset is rendered once for the package tests: small but large
// enough for ICP to track.
var testDataset = sensor.Generate(sensor.Options{
	Width: 80, Height: 60, Frames: 25,
	Noise:      sensor.KinectNoise(1),
	Trajectory: sensor.TrajectorySlice(sensor.LivingRoomTrajectory2, 100),
})

// testConfig is a cheap configuration for pipeline tests.
func testConfig() Config {
	return Config{
		VolumeResolution: 128,
		Mu:               0.12,
		ComputeRatio:     1,
		TrackingRate:     1,
		IntegrationRate:  1,
		ICPThreshold:     1e-5,
		PyramidIters:     [3]int{6, 4, 3},
	}
}

func maxATE(traj, gt []geom.Pose) float64 {
	worst := 0.0
	for i := range traj {
		if d := geom.Distance(traj[i], gt[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{VolumeResolution: 4, Mu: 0.1, ComputeRatio: 1, TrackingRate: 1, IntegrationRate: 1},
		{VolumeResolution: 64, Mu: 0, ComputeRatio: 1, TrackingRate: 1, IntegrationRate: 1},
		{VolumeResolution: 64, Mu: 0.1, ComputeRatio: 0, TrackingRate: 1, IntegrationRate: 1},
		{VolumeResolution: 64, Mu: 0.1, ComputeRatio: 1, TrackingRate: 0, IntegrationRate: 1},
		{VolumeResolution: 64, Mu: 0.1, ComputeRatio: 1, TrackingRate: 1, IntegrationRate: 0},
		{VolumeResolution: 64, Mu: 0.1, ComputeRatio: 1, TrackingRate: 1, IntegrationRate: 1, ICPThreshold: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

func TestVolumeBasics(t *testing.T) {
	v := NewVolume(16, 1.6, geom.V3(0, 0, 0))
	if math.Abs(v.VoxelSize()-0.1) > 1e-12 {
		t.Fatalf("voxel size = %v", v.VoxelSize())
	}
	tv, w := v.At(0, 0, 0)
	if tv != 1 || w != 0 {
		t.Fatalf("initial voxel = (%v, %v)", tv, w)
	}
	if tv, w = v.At(-1, 0, 0); tv != 1 || w != 0 {
		t.Fatal("out-of-grid must read as far/unobserved")
	}
	v.setBlend(2, 3, 4, -0.5, 10)
	tv, w = v.At(2, 3, 4)
	if tv != -0.5 || w != 1 {
		t.Fatalf("after blend: (%v, %v)", tv, w)
	}
	v.setBlend(2, 3, 4, 0.5, 10)
	tv, _ = v.At(2, 3, 4)
	if math.Abs(float64(tv)) > 1e-6 {
		t.Fatalf("weighted mean = %v, want 0", tv)
	}
}

func TestVolumeWeightCap(t *testing.T) {
	v := NewVolume(8, 1, geom.Vec3{})
	for i := 0; i < 20; i++ {
		v.setBlend(1, 1, 1, 0, 5)
	}
	if _, w := v.At(1, 1, 1); w != 5 {
		t.Fatalf("weight = %v, want cap 5", w)
	}
}

func TestIntegrateRaycastRecoversPlane(t *testing.T) {
	// Synthetic fronto-parallel plane at z = 1.5 m from the camera: after
	// integration, raycast must recover it within ~a voxel.
	intr := imgproc.StandardIntrinsics(40, 30)
	depth := imgproc.NewMap(40, 30)
	for i := range depth.Pix {
		depth.Pix[i] = 1.5
	}
	pose := geom.IdentityPose() // camera at origin looking down +z
	vol := NewVolume(64, 3.2, geom.V3(0, 0, 1.6))
	updates := vol.Integrate(depth, intr, pose, 0.1, 100)
	if updates == 0 {
		t.Fatal("integration did nothing")
	}
	vtx, nrm, steps := vol.Raycast(intr, pose, 0.1, 0.3, 3.0)
	if steps == 0 {
		t.Fatal("raycast did nothing")
	}
	hits := 0
	for y := 8; y < 22; y++ {
		for x := 10; x < 30; x++ {
			if !vtx.ValidAt(x, y) {
				continue
			}
			hits++
			p := vtx.At(x, y)
			if math.Abs(p.Z-1.5) > 0.08 {
				t.Fatalf("recovered depth %v at (%d,%d), want 1.5±0.08", p.Z, x, y)
			}
			n := nrm.At(x, y)
			if math.Abs(math.Abs(n.Z)-1) > 0.2 {
				t.Fatalf("plane normal = %v", n)
			}
		}
	}
	if hits < 100 {
		t.Fatalf("only %d raycast hits in the central window", hits)
	}
}

func TestInterpUnobservedInvalid(t *testing.T) {
	vol := NewVolume(16, 1.6, geom.Vec3{})
	if _, ok := vol.Interp(geom.V3(0.1, 0.1, 0.1)); ok {
		t.Fatal("interp in unobserved space must be invalid")
	}
}

func TestRunEndToEndTracksWell(t *testing.T) {
	res, err := Run(testDataset, testConfig(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != testDataset.NumFrames() {
		t.Fatalf("trajectory length %d", len(res.Trajectory))
	}
	ate := maxATE(res.Trajectory, testDataset.GroundTruth)
	if ate > 0.06 {
		t.Fatalf("max ATE %v m too large — tracking broken", ate)
	}
	c := res.Counters
	if c.Frames != 25 || c.TrackedFrames == 0 || c.IntegratedFrames == 0 {
		t.Fatalf("counters: %+v", c)
	}
	if c.BilateralOps == 0 || c.TrackOps == 0 || c.RaycastSteps == 0 || c.IntegrateActual == 0 {
		t.Fatalf("work not counted: %+v", c)
	}
}

func TestFullSweepBilling(t *testing.T) {
	cfg := testConfig()
	cfg.IntegrationRate = 2
	res, err := Run(testDataset, cfg, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Counters.IntegratedFrames * int64(cfg.VolumeResolution) * int64(cfg.VolumeResolution) * int64(cfg.VolumeResolution)
	if res.Counters.IntegrateFullSweep != want {
		t.Fatalf("full sweep billed %d, want %d", res.Counters.IntegrateFullSweep, want)
	}
	// Integration rate 2 on 25 frames: frames 0,2,4,…,24 = 13.
	if res.Counters.IntegratedFrames != 13 {
		t.Fatalf("integrated %d frames, want 13", res.Counters.IntegratedFrames)
	}
}

func TestTrackingRateSkipsTracking(t *testing.T) {
	cfg := testConfig()
	cfg.TrackingRate = 5
	res, err := Run(testDataset, cfg, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Frames 5,10,15,20 tracked (frame 0 never tracks): ≤ 4 + failures.
	if res.Counters.TrackedFrames+res.Counters.TrackingFailures != 4 {
		t.Fatalf("tracked+failed = %d, want 4",
			res.Counters.TrackedFrames+res.Counters.TrackingFailures)
	}
}

func TestLargerICPThresholdIsFasterAndWorse(t *testing.T) {
	precise := testConfig()
	precise.ICPThreshold = 1e-7
	sloppy := testConfig()
	sloppy.ICPThreshold = 1e-1 // stops after the first iteration per level

	rp, err := Run(testDataset, precise, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(testDataset, sloppy, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Counters.TrackOps >= rp.Counters.TrackOps {
		t.Fatalf("sloppy threshold should do less ICP work: %d vs %d",
			rs.Counters.TrackOps, rp.Counters.TrackOps)
	}
	atePrecise := maxATE(rp.Trajectory, testDataset.GroundTruth)
	ateSloppy := maxATE(rs.Trajectory, testDataset.GroundTruth)
	if ateSloppy < atePrecise/2 {
		t.Fatalf("sloppy tracking unexpectedly much better: %v vs %v", ateSloppy, atePrecise)
	}
}

func TestComputeRatioReducesWork(t *testing.T) {
	full := testConfig()
	quarter := testConfig()
	quarter.ComputeRatio = 2

	rf, err := Run(testDataset, full, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rq, err := Run(testDataset, quarter, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rq.Counters.BilateralOps >= rf.Counters.BilateralOps/2 {
		t.Fatalf("ratio 2 should quarter bilateral work: %d vs %d",
			rq.Counters.BilateralOps, rf.Counters.BilateralOps)
	}
	if rq.Counters.TrackOps >= rf.Counters.TrackOps {
		t.Fatal("ratio 2 should reduce tracking work")
	}
}

func TestMuAffectsIntegrationWork(t *testing.T) {
	narrow := testConfig()
	narrow.Mu = 0.05
	wide := testConfig()
	wide.Mu = 0.4

	rn, err := Run(testDataset, narrow, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(testDataset, wide, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Counters.IntegrateActual <= rn.Counters.IntegrateActual {
		t.Fatalf("wider mu must touch more voxels: %d vs %d",
			rw.Counters.IntegrateActual, rn.Counters.IntegrateActual)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(nil, testConfig(), SimOptions{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	bad := testConfig()
	bad.Mu = -1
	if _, err := Run(testDataset, bad, SimOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	tooSmall := testConfig()
	tooSmall.ComputeRatio = 64
	if _, err := Run(testDataset, tooSmall, SimOptions{}); err == nil {
		t.Fatal("degenerate compute ratio accepted")
	}
}

func TestVolumeScaleReducesMemoryNotBilling(t *testing.T) {
	cfg := testConfig()
	r1, err := Run(testDataset, cfg, SimOptions{VolumeScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testDataset, cfg, SimOptions{VolumeScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counters.IntegrateFullSweep != r2.Counters.IntegrateFullSweep {
		t.Fatal("billed integration work must not depend on VolumeScale")
	}
}

func TestDeterministicRun(t *testing.T) {
	a, err := Run(testDataset, testConfig(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testDataset, testConfig(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trajectory {
		if a.Trajectory[i].T != b.Trajectory[i].T {
			t.Fatal("run not deterministic")
		}
	}
	if a.Counters != b.Counters {
		t.Fatal("counters not deterministic")
	}
}

func BenchmarkPipelineFrame(b *testing.B) {
	cfg := testConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(testDataset, cfg, SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
