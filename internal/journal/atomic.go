package journal

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via a same-directory temp file, fsync, and
// rename, so a crash at any instant leaves either the previous content or
// the complete new content — never a half-written artifact. The write
// callback streams the content (CSV encoders, JSON encoders, raw bytes all
// fit); any callback or sync error aborts the write and removes the temp
// file, leaving path untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// Sync before rename: on many filesystems an un-synced rename can
	// surface after a crash as a zero-length file at the final path.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Durably record the rename itself; best-effort on filesystems that
	// refuse directory fsync.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteJSONAtomic atomically writes v as indented JSON.
func WriteJSONAtomic(path string, v any) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// ReadJSON reads a JSON file into v; a missing file returns os.ErrNotExist.
func ReadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
