// Package journal is the durability layer of the daemon: an append-only,
// fsync'd JSON-lines evaluation journal per run, a torn-tail-tolerant
// reader that makes crash recovery total (a half-written trailing record
// is truncated and appending continues — recovery never crash-loops), and
// the temp-file+rename atomic-write helper every other persisted artifact
// in the repository goes through.
//
// A journal file is one record per line:
//
//	{"t":"header","header":{...}}     exactly once, first line
//	{"t":"batch","batch":{...}}       one per measured evaluation batch
//	{"t":"checkpoint","checkpoint":…} clean-shutdown markers
//	{"t":"done","done":{...}}         terminal-state marker, at most once
//
// Every record is written with a single write(2) call and fsync'd before
// the append returns, so after a crash the file is a strict prefix of the
// record sequence plus at most one torn tail. Measured objectives are the
// expensive thing in this system — seconds to minutes of real compute per
// configuration — and the journal is what makes them survive a SIGKILL.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record types, the "t" discriminator of each journal line.
const (
	TypeHeader     = "header"
	TypeBatch      = "batch"
	TypeCheckpoint = "checkpoint"
	TypeDone       = "done"
)

// Version is the journal format version written into new headers. Readers
// reject newer versions rather than misparse them.
const Version = 1

// Header identifies the run a journal belongs to. Fingerprint is the
// run's deterministic identity (design-space grid, seed, and every budget
// that shapes the sample sequence); resume refuses a journal whose
// fingerprint does not match the relaunched run, because replaying one
// run's measurements into a differently-shaped run would silently corrupt
// it.
type Header struct {
	Version     int       `json:"version"`
	RunID       string    `json:"run_id"`
	Problem     string    `json:"problem"`
	Fingerprint string    `json:"fingerprint"`
	Seed        int64     `json:"seed"`
	Created     time.Time `json:"created"`
}

// SampleRecord is one measured configuration inside a batch: its
// design-space index and objective vector. The configuration values are
// not stored — the index decodes deterministically against the space, and
// the header fingerprint pins the space.
type SampleRecord struct {
	Index int64     `json:"i"`
	Objs  []float64 `json:"o"`
}

// Batch is one completed evaluation batch: the bootstrap (iteration 0) or
// the measured part of an active-learning round. A batch record is only
// appended after its measurements finished, so a journal never contains a
// promise of work — only completed, replayable measurements, plus the
// indices the engine deliberately tolerated away unmeasured (graceful
// degradation under MaxUnmeasuredFraction). An interrupted batch's missing
// tail is never recorded as unmeasured: absence means "re-measure on
// resume", an Unmeasured entry means "skip again, exactly as the original
// run did".
type Batch struct {
	Iteration int            `json:"iteration"`
	Active    bool           `json:"active,omitempty"`
	Samples   []SampleRecord `json:"samples"`
	// Unmeasured lists design-space indices this batch skipped without a
	// measurement, in batch order.
	Unmeasured []int64 `json:"unmeasured,omitempty"`
}

// Checkpoint marks an orderly event mid-run — today, a graceful daemon
// shutdown that is about to cancel the run while leaving it resumable.
type Checkpoint struct {
	Reason  string    `json:"reason"`
	Samples int       `json:"samples"` // evaluations journaled so far
	Time    time.Time `json:"time"`
}

// Done marks the run terminal. A journal with a done record is never
// resumed: the run finished (its result artifact is persisted separately)
// or was deliberately cancelled, and restarting it would resurrect work
// its owner ended.
type Done struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// record is the on-disk envelope of every journal line.
type record struct {
	T          string      `json:"t"`
	Header     *Header     `json:"header,omitempty"`
	Batch      *Batch      `json:"batch,omitempty"`
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	Done       *Done       `json:"done,omitempty"`
}

// AppendFile is a concurrency-safe fsync'd JSON-lines appender: each
// Append marshals one value, writes it as a single line, and syncs the
// file before returning, so a crash at any instant leaves at most one
// torn trailing line.
type AppendFile struct {
	mu sync.Mutex
	f  *os.File
}

// OpenAppend opens (creating if needed) path for durable line appends.
func OpenAppend(path string) (*AppendFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &AppendFile{f: f}, nil
}

// Append durably writes v as one JSON line.
func (a *AppendFile) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return a.AppendRaw(data)
}

// AppendRaw durably writes one pre-marshaled JSON line (without the
// trailing newline, which AppendRaw adds). The line is written with a
// single write call so concurrent appenders never interleave records.
func (a *AppendFile) AppendRaw(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return os.ErrClosed
	}
	if _, err := a.f.Write(buf); err != nil {
		return err
	}
	return a.f.Sync()
}

// AppendAll durably writes each value as its own JSON line, with one
// write call and one sync for the whole group — the batch form callers
// use when a single evaluation batch produces many records.
func (a *AppendFile) AppendAll(vs ...any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode appends the newline per value
	for _, v := range vs {
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return os.ErrClosed
	}
	if _, err := a.f.Write(buf.Bytes()); err != nil {
		return err
	}
	return a.f.Sync()
}

// Close closes the underlying file; further appends fail.
func (a *AppendFile) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}

// ReadLines parses every intact JSON line of path through fn, stopping at
// the first malformed line (a torn tail from a crash mid-append). It
// returns the byte offset of the end of the last intact line — the length
// the file should be truncated to before appending resumes — and whether
// a malformed tail was found. A missing file reads as empty.
func ReadLines(path string, fn func(line []byte) error) (intact int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A final line without its newline is by definition torn: the
			// newline is part of the record's single durable write.
			return intact, len(line) > 0, nil
		}
		if err != nil {
			return intact, false, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && !json.Valid(trimmed) {
			return intact, true, nil
		}
		if len(trimmed) > 0 {
			if err := fn(trimmed); err != nil {
				return intact, false, err
			}
		}
		intact += int64(len(line))
	}
}

// Writer appends records to one run's journal.
type Writer struct {
	af *AppendFile
}

// Create starts a fresh journal at path, truncating any previous content,
// and durably writes the header as its first record.
func Create(path string, h Header) (*Writer, error) {
	if h.Version == 0 {
		h.Version = Version
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{af: &AppendFile{f: f}}
	if err := w.af.Append(record{T: TypeHeader, Header: &h}); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// OpenAppendWriter opens an existing journal for appending — the resume
// path, after Recover has truncated any torn tail. The header is not
// rewritten.
func OpenAppendWriter(path string) (*Writer, error) {
	af, err := OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &Writer{af: af}, nil
}

// Batch durably appends one completed evaluation batch.
func (w *Writer) Batch(b Batch) error {
	return w.af.Append(record{T: TypeBatch, Batch: &b})
}

// Checkpoint durably appends a checkpoint marker.
func (w *Writer) Checkpoint(c Checkpoint) error {
	return w.af.Append(record{T: TypeCheckpoint, Checkpoint: &c})
}

// Done durably appends the terminal-state marker.
func (w *Writer) Done(d Done) error {
	return w.af.Append(record{T: TypeDone, Done: &d})
}

// Close closes the journal file.
func (w *Writer) Close() error { return w.af.Close() }

// Recovered is the replayable content of one journal file.
type Recovered struct {
	Header      Header
	Batches     []Batch
	Checkpoints []Checkpoint
	// Done is non-nil when the run reached a terminal state before the
	// journal stopped; such a journal must not be resumed.
	Done *Done
	// TruncatedBytes counts the torn tail dropped during recovery (0 for
	// a cleanly closed journal).
	TruncatedBytes int64
}

// Samples counts the measured evaluations across all batches.
func (r *Recovered) Samples() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b.Samples)
	}
	return n
}

// Replay flattens the journal into the design-space-index → objectives
// map the engine's resume path consumes.
func (r *Recovered) Replay() map[int64][]float64 {
	m := make(map[int64][]float64, r.Samples())
	for _, b := range r.Batches {
		for _, s := range b.Samples {
			m[s.Index] = s.Objs
		}
	}
	return m
}

// Skips flattens the journal's degraded-batch history into the index →
// skip-count map the engine's resume path consumes (Options.ReplaySkips).
// Counts, not a set: an index skipped in one batch can be measured — or
// skipped again — in a later one, and resume must consume the skips in
// the same order. Nil when no batch degraded.
func (r *Recovered) Skips() map[int64]int {
	var m map[int64]int
	for _, b := range r.Batches {
		for _, idx := range b.Unmeasured {
			if m == nil {
				m = make(map[int64]int)
			}
			m[idx]++
		}
	}
	return m
}

// Recover reads a run journal, tolerating a torn or corrupt trailing
// record: everything after the last intact record is dropped and the file
// is truncated in place so appending can resume cleanly. Only a journal
// whose header is unreadable (or from a future format version) is an
// error — anything less is recovered from, never crash-looped on.
func Recover(path string) (*Recovered, error) {
	rec := &Recovered{}
	sawHeader := false
	intact, torn, err := ReadLines(path, func(line []byte) error {
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			// json.Valid passed, so this is a schema mismatch, not a torn
			// write; treat the record as opaque (forward compatibility).
			return nil
		}
		switch r.T {
		case TypeHeader:
			if r.Header != nil && !sawHeader {
				rec.Header = *r.Header
				sawHeader = true
			}
		case TypeBatch:
			if r.Batch != nil {
				rec.Batches = append(rec.Batches, *r.Batch)
			}
		case TypeCheckpoint:
			if r.Checkpoint != nil {
				rec.Checkpoints = append(rec.Checkpoints, *r.Checkpoint)
			}
		case TypeDone:
			if r.Done != nil {
				rec.Done = r.Done
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("journal: %s has no readable header", path)
	}
	if rec.Header.Version > Version {
		return nil, fmt.Errorf("journal: %s is format version %d, this build reads ≤ %d",
			path, rec.Header.Version, Version)
	}
	if torn {
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		rec.TruncatedBytes = info.Size() - intact
		if err := os.Truncate(path, intact); err != nil {
			return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	return rec, nil
}
