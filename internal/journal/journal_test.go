package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testHeader() Header {
	return Header{
		RunID:       "run-000001",
		Problem:     "synthetic",
		Fingerprint: "fp-1",
		Seed:        42,
		Created:     time.Unix(1700000000, 0).UTC(),
	}
}

func writeBatches(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b := Batch{Iteration: i, Active: i > 0}
		for j := 0; j < 3; j++ {
			b.Samples = append(b.Samples, SampleRecord{
				Index: int64(i*10 + j),
				Objs:  []float64{float64(i), float64(j)},
			})
		}
		if err := w.Batch(b); err != nil {
			t.Fatalf("Batch: %v", err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeBatches(t, w, 4)
	if err := w.Checkpoint(Checkpoint{Reason: "shutdown", Samples: 12}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := w.Done(Done{State: "done"}); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	want := testHeader()
	want.Version = Version // stamped by Create
	if rec.Header != want {
		t.Errorf("header = %+v, want %+v", rec.Header, want)
	}
	if len(rec.Batches) != 4 || rec.Samples() != 12 {
		t.Errorf("got %d batches, %d samples; want 4, 12", len(rec.Batches), rec.Samples())
	}
	if len(rec.Checkpoints) != 1 || rec.Checkpoints[0].Reason != "shutdown" {
		t.Errorf("checkpoints = %+v", rec.Checkpoints)
	}
	if rec.Done == nil || rec.Done.State != "done" {
		t.Errorf("done = %+v", rec.Done)
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("clean journal reported %d truncated bytes", rec.TruncatedBytes)
	}
	replay := rec.Replay()
	if len(replay) != 12 {
		t.Fatalf("replay has %d entries, want 12", len(replay))
	}
	if objs := replay[31]; len(objs) != 2 || objs[0] != 3 || objs[1] != 1 {
		t.Errorf("replay[31] = %v", objs)
	}
}

// A torn trailing record — a crash mid-append — must be truncated away,
// keeping every earlier record, and appending must continue cleanly.
func TestRecoverTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"half record", `{"t":"batch","batch":{"iteration":9,"sam`},
		{"no newline", `{"t":"batch","batch":{"iteration":9,"samples":[]}}`},
		{"binary garbage", "\x00\x7f\xfe garbage"},
		{"corrupt line with newline", "{\"t\":\"batch\",oops}\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			w, err := Create(path, testHeader())
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			writeBatches(t, w, 3)
			w.Close()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			rec, err := Recover(path)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if len(rec.Batches) != 3 {
				t.Fatalf("recovered %d batches, want 3", len(rec.Batches))
			}
			if rec.TruncatedBytes == 0 {
				t.Error("torn tail not reported")
			}

			// The file must now be clean: append a batch and recover again.
			w2, err := OpenAppendWriter(path)
			if err != nil {
				t.Fatalf("OpenAppendWriter: %v", err)
			}
			if err := w2.Batch(Batch{Iteration: 3}); err != nil {
				t.Fatalf("Batch after recovery: %v", err)
			}
			w2.Close()
			rec2, err := Recover(path)
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			if len(rec2.Batches) != 4 || rec2.TruncatedBytes != 0 {
				t.Errorf("after repair: %d batches, %d truncated; want 4, 0",
					len(rec2.Batches), rec2.TruncatedBytes)
			}
		})
	}
}

// Recovery is idempotent: recovering an already-recovered journal drops
// nothing further.
func TestRecoverIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, _ := Create(path, testHeader())
	writeBatches(t, w, 2)
	w.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString(`{"torn`)
	f.Close()
	first, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if second.TruncatedBytes != 0 || len(second.Batches) != len(first.Batches) {
		t.Errorf("second recovery dropped records: %+v", second)
	}
}

func TestRecoverErrors(t *testing.T) {
	dir := t.TempDir()

	// No header at all: unrecoverable, reported as an error (the caller
	// decides what to do with the run, but never replays unknown data).
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(empty); err == nil {
		t.Error("Recover(empty) succeeded, want error")
	}

	// Future format version: refuse rather than misparse.
	future := filepath.Join(dir, "future.jsonl")
	if err := os.WriteFile(future,
		[]byte(`{"t":"header","header":{"version":99,"run_id":"x"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("Recover(future) = %v, want version error", err)
	}

	// Missing file: readable as empty lines but an error from Recover
	// (no header).
	if _, err := Recover(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("Recover(missing) succeeded, want error")
	}
}

// Unknown record types must be skipped, not fatal: an older daemon must
// be able to replay a journal a newer one extended (same major version).
func TestRecoverSkipsUnknownRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, _ := Create(path, testHeader())
	writeBatches(t, w, 1)
	w.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString(`{"t":"future-metric","payload":{"x":1}}` + "\n")
	f.Close()
	w2, _ := OpenAppendWriter(path)
	writeBatches(t, w2, 1)
	w2.Close()
	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rec.Batches) != 2 {
		t.Errorf("recovered %d batches, want 2", len(rec.Batches))
	}
}

// The writer must be safe for concurrent appends: the engine journals
// batches while a graceful shutdown writes its checkpoint.
func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					_ = w.Batch(Batch{Iteration: g*100 + i})
				} else {
					_ = w.Checkpoint(Checkpoint{Reason: "tick", Samples: i})
				}
			}
		}(g)
	}
	wg.Wait()
	w.Close()
	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := len(rec.Batches) + len(rec.Checkpoints); got != 100 {
		t.Errorf("recovered %d records, want 100", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	af, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := af.Append(map[string]int{"x": 1}); !errors.Is(err, os.ErrClosed) {
		t.Errorf("Append after Close = %v, want os.ErrClosed", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Errorf("content = %q", got)
	}

	// A failing writer must leave the previous content and no temp files.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half-written")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Errorf("after failed write, content = %q, want v1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("temp files left behind: %v", names)
	}
}

func TestWriteJSONAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	in := map[string]any{"a": 1.5, "b": "x"}
	if err := WriteJSONAtomic(path, in); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := ReadJSON(path, &out); err != nil {
		t.Fatal(err)
	}
	if out["a"] != 1.5 || out["b"] != "x" {
		t.Errorf("round trip = %v", out)
	}
	if err := ReadJSON(filepath.Join(t.TempDir(), "missing.json"), &out); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("ReadJSON(missing) = %v, want ErrNotExist", err)
	}
}

// Unmeasured indices round-trip through the journal, and Skips counts
// repeat skips of the same index across batches.
func TestUnmeasuredRoundTripAndSkips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	batches := []Batch{
		{Iteration: 0, Samples: []SampleRecord{{Index: 1, Objs: []float64{1}}}, Unmeasured: []int64{7, 9}},
		{Iteration: 1, Active: true, Unmeasured: []int64{7}},
		{Iteration: 2, Active: true, Samples: []SampleRecord{{Index: 2, Objs: []float64{2}}}},
	}
	for _, b := range batches {
		if err := w.Batch(b); err != nil {
			t.Fatalf("Batch: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rec.Batches) != 3 {
		t.Fatalf("recovered %d batches, want 3", len(rec.Batches))
	}
	for i, b := range rec.Batches {
		if len(b.Unmeasured) != len(batches[i].Unmeasured) {
			t.Fatalf("batch %d unmeasured = %v, want %v", i, b.Unmeasured, batches[i].Unmeasured)
		}
	}
	skips := rec.Skips()
	if skips[7] != 2 || skips[9] != 1 || len(skips) != 2 {
		t.Fatalf("Skips() = %v, want {7:2 9:1}", skips)
	}
}

// A journal with no unmeasured entries yields a nil skip map, so resume
// paths can pass it straight through without allocation.
func TestSkipsNilWhenNoneRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeBatches(t, w, 2)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Skips() != nil {
		t.Fatalf("Skips() = %v, want nil", rec.Skips())
	}
}
