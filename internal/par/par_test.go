package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Fatal("f called for empty range")
	}
}

func TestForWorkersSingleWorkerIsSequential(t *testing.T) {
	var order []int
	ForWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential order broken at %d: %v", i, order)
		}
	}
}

func TestForChunkedCoversRangeExactly(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n)
		var covered atomic.Int64
		seen := make([]int32, size)
		ForChunked(size, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
				covered.Add(1)
			}
		})
		if covered.Load() != int64(size) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForChunkedWorkersCoversRangeExactly(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		const size = 1000
		seen := make([]int32, size)
		ForChunkedWorkers(size, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map(0) returned %d elements", len(got))
	}
}

func BenchmarkForSmallBodies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sum atomic.Int64
		For(256, func(i int) { sum.Add(int64(i)) })
	}
}

func BenchmarkForChunked(b *testing.B) {
	buf := make([]float64, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForChunked(len(buf), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				buf[j] = float64(j) * 0.5
			}
		})
	}
}

func TestForWorkersScratch(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var gets, puts atomic.Int64
		visited := make([]atomic.Int64, 300)
		ForWorkersScratch(len(visited), workers,
			func() *[]int { gets.Add(1); s := make([]int, 0, 8); return &s },
			func(*[]int) { puts.Add(1) },
			func(sc *[]int, i int) {
				*sc = append((*sc)[:0], i) // exercise the scratch
				visited[(*sc)[0]].Add(1)
			})
		for i := range visited {
			if c := visited[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		if gets.Load() != puts.Load() {
			t.Fatalf("workers=%d: %d gets but %d puts", workers, gets.Load(), puts.Load())
		}
		want := int64(workers)
		if want > int64(len(visited)) {
			want = int64(len(visited))
		}
		if gets.Load() > want {
			t.Fatalf("workers=%d: %d scratch values for %d workers", workers, gets.Load(), want)
		}
	}
}

func TestForWorkersScratchEmpty(t *testing.T) {
	ForWorkersScratch(0, 4,
		func() int { t.Fatal("get called for empty range"); return 0 },
		func(int) { t.Fatal("put called for empty range") },
		func(int, int) { t.Fatal("body called for empty range") })
}
