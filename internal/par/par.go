// Package par provides small, dependency-free parallel execution helpers
// used throughout the repository: a bounded parallel-for over index ranges
// and a work-stealing-free chunked variant for cache-friendly loops.
//
// All helpers preserve determinism of the computation they run: they only
// parallelize across disjoint index ranges, so any function whose per-index
// work is independent yields identical results regardless of GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the number of workers the helpers use by default:
// the current GOMAXPROCS setting.
func MaxWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs f(i) for every i in [0, n) using up to MaxWorkers goroutines.
// Each index is dispatched individually; use ForChunked when per-index work
// is tiny.
func For(n int, f func(i int)) {
	ForWorkers(n, MaxWorkers(), f)
}

// ForWorkers is For with an explicit worker count. workers <= 1 runs inline.
func ForWorkers(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked splits [0, n) into contiguous chunks, one per worker, and runs
// f(lo, hi) on each. It suits loops whose per-index cost is small and uniform
// (image rows, voxel slabs).
func ForChunked(n int, f func(lo, hi int)) {
	ForChunkedWorkers(n, MaxWorkers(), f)
}

// ForChunkedWorkers is ForChunked with an explicit worker count; workers <= 0
// selects MaxWorkers. It lets callers with their own concurrency budget (the
// active-learning loop's Workers option) bound chunked sweeps too.
func ForChunkedWorkers(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				f(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies f to every index in [0, n) in parallel and collects results
// in order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}
