// Package par provides small, dependency-free parallel execution helpers
// used throughout the repository: a bounded parallel-for over index ranges
// and a work-stealing-free chunked variant for cache-friendly loops.
//
// All helpers preserve determinism of the computation they run: they only
// parallelize across disjoint index ranges, so any function whose per-index
// work is independent yields identical results regardless of GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the number of workers the helpers use by default:
// the current GOMAXPROCS setting.
func MaxWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs f(i) for every i in [0, n) using up to MaxWorkers goroutines.
// Each index is dispatched individually; use ForChunked when per-index work
// is tiny.
func For(n int, f func(i int)) {
	ForWorkers(n, MaxWorkers(), f)
}

// ForWorkers is For with an explicit worker count. workers <= 1 runs inline.
func ForWorkers(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForWorkersScratch is ForWorkers for loops whose iterations want reusable
// per-worker scratch: each worker acquires one scratch value via get before
// its first index and releases it via put after its last, so n iterations
// touch at most `workers` scratch values no matter how large n is. Callers
// typically back get/put with a sync.Pool so scratch also survives across
// calls (the forest trainer reuses builder state across trees, objectives,
// and active-learning refits this way).
//
// The index→worker assignment is scheduling-dependent, so f must overwrite
// any scratch state it reads — determinism of the results then follows from
// f being a pure function of its index, exactly as with ForWorkers.
func ForWorkersScratch[T any](n, workers int, get func() T, put func(T), f func(sc T, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := get()
		for i := 0; i < n; i++ {
			f(sc, i)
		}
		put(sc)
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := get()
			defer put(sc)
			for i := range next {
				f(sc, i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked splits [0, n) into contiguous chunks, one per worker, and runs
// f(lo, hi) on each. It suits loops whose per-index cost is small and uniform
// (image rows, voxel slabs).
func ForChunked(n int, f func(lo, hi int)) {
	ForChunkedWorkers(n, MaxWorkers(), f)
}

// ForChunkedWorkers is ForChunked with an explicit worker count; workers <= 0
// selects MaxWorkers. It lets callers with their own concurrency budget (the
// active-learning loop's Workers option) bound chunked sweeps too.
func ForChunkedWorkers(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				f(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies f to every index in [0, n) in parallel and collects results
// in order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}
