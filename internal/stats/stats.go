// Package stats provides the small statistical toolbox used by the
// HyperMapper reproduction: moments, quantiles, and the Pearson and Spearman
// correlation coefficients used in the cross-device transfer analysis
// (paper §IV-D, following Roy et al. [43]).
package stats

import (
	"errors"
	"math"
	"slices"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (division by n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on empty input by design: callers
// in this repository always operate on non-empty evaluation sets.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Pearson returns the Pearson linear correlation coefficient between xs and
// ys. It returns an error if the lengths differ or fewer than two samples are
// given; it returns 0 when either input has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient between xs and
// ys (Pearson correlation of the rank transforms, with average ranks for
// ties).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs, assigning tied values the average
// of the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Unstable sort is fine: tied values receive the average rank of the
	// whole tie group below, so their relative order cannot matter.
	slices.SortFunc(idx, func(a, b int) int {
		if xs[a] != xs[b] {
			if xs[a] < xs[b] {
				return -1
			}
			return 1
		}
		return 0
	})
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i) + float64(j)) / 2.0
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg + 1
		}
		i = j + 1
	}
	return ranks
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the per-bin counts. Values outside [lo, hi] are clamped into the end bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
