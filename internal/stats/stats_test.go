package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty mean/variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if Min(xs) != -9 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Max(xs) != 6 {
		t.Fatalf("Max = %v", Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected error for empty quantile")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("expected error for q > 1")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("Pearson const = %v, %v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform must have Spearman exactly 1.
	xs := []float64{1, 5, 2, 8, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone, wildly non-linear
	}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		ranks := Ranks(xs)
		// Sum of ranks is always n(n+1)/2 regardless of ties.
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		return almostEqual(sum, float64(n*(n+1))/2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Spearman(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -1, 2}
	counts := Histogram(xs, 0, 1, 2)
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("Histogram = %v", counts)
	}
	if got := Histogram(xs, 1, 0, 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("degenerate histogram = %v", got)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{3, 1, 2})
	if err != nil || m != 2 {
		t.Fatalf("Median = %v, %v", m, err)
	}
}
