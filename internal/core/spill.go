package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/journal"
)

// NewEvalCacheDir returns a cache that spills every memoized measurement
// to a JSON-lines file per space namespace under dir (created on demand),
// and that pre-loads each namespace from its file on first use — so
// daemon restarts, re-runs, and replicas pointed at shared storage all
// reuse measured objectives instead of re-paying for them.
//
// Each namespace file is named by a hash of the space fingerprint and
// begins with a header line carrying the full fingerprint; a file whose
// header does not match is left untouched and the namespace runs
// memory-only (never serve one space's objectives to another). Spill I/O
// degrades, it never breaks a run: a load failure starts the namespace
// empty, an append failure disables further spilling for that namespace,
// and both are counted in SpillErrors.
//
// The usual EvalCache caveat applies with more force once entries
// persist: the evaluator cannot be fingerprinted, so a directory must
// be dedicated to one (space, evaluator) pair — the daemon keys spill
// directories by problem name and deletes them when a problem is
// re-registered with a new evaluator.
func NewEvalCacheDir(dir string) *EvalCache {
	c := NewEvalCache()
	c.dir = dir
	return c
}

// spillHeader is the first line of a namespace spill file.
type spillHeader struct {
	Fingerprint string `json:"fingerprint"`
}

// spillRecord is one memoized measurement.
type spillRecord struct {
	Index int64     `json:"i"`
	Objs  []float64 `json:"o"`
}

// spillPath maps a space fingerprint to its namespace file.
func spillPath(dir, fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return filepath.Join(dir, fmt.Sprintf("%x.jsonl", sum[:8]))
}

// openSpill loads the namespace's persisted measurements into s.objs and
// returns the appender for new ones. Called under c.mu, once per
// namespace; any failure is reported through the returned error and the
// namespace runs memory-only.
func (c *EvalCache) openSpill(fingerprint string, s *spaceCache) (*journal.AppendFile, error) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, err
	}
	path := spillPath(c.dir, fingerprint)
	first := true
	foreign := false
	_, _, err := journal.ReadLines(path, func(line []byte) error {
		if first {
			first = false
			var h spillHeader
			if json.Unmarshal(line, &h) != nil || h.Fingerprint != fingerprint {
				foreign = true
			}
			return nil
		}
		if foreign {
			return nil
		}
		var r spillRecord
		if json.Unmarshal(line, &r) != nil {
			return nil // schema drift: skip the record, keep the rest
		}
		s.objs[r.Index] = r.Objs
		return nil
	})
	if err != nil {
		return nil, err
	}
	if foreign {
		return nil, fmt.Errorf("core: spill file %s belongs to a different space", path)
	}
	af, err := journal.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	if first {
		// Fresh file: stamp the namespace identity before any record.
		if err := af.Append(spillHeader{Fingerprint: fingerprint}); err != nil {
			af.Close()
			return nil, err
		}
	}
	return af, nil
}

// spill durably appends newly memoized entries to the namespace file.
// Called outside c.mu (the appender has its own lock, and fsyncs must not
// serialize unrelated runs); a failure disables the namespace's spill so
// one sick disk degrades to memory-only caching instead of failing every
// future batch.
func (c *EvalCache) spill(s *spaceCache, recs []spillRecord) {
	if len(recs) == 0 {
		return
	}
	c.mu.Lock()
	af := s.spill
	c.mu.Unlock()
	if af == nil {
		return
	}
	vs := make([]any, len(recs))
	for i := range recs {
		vs[i] = &recs[i]
	}
	if err := af.AppendAll(vs...); err != nil {
		c.spillErrors.Add(1)
		c.mu.Lock()
		if s.spill == af {
			s.spill = nil
		}
		c.mu.Unlock()
		af.Close()
	}
}

// SpillErrors counts spill I/O failures since the cache was created (0 on
// a healthy disk, and always 0 for a memory-only cache).
func (c *EvalCache) SpillErrors() int64 { return c.spillErrors.Load() }

// Close releases every namespace's spill file. The cache remains usable
// memory-only afterwards.
func (c *EvalCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, s := range c.spaces {
		if s.spill != nil {
			if err := s.spill.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.spill = nil
		}
	}
	return firstErr
}

// RemoveSpill deletes the cache's spill directory from disk — the reset
// path when a problem is re-registered with a new evaluator and its
// persisted measurements would corrupt future runs. The receiver may be
// nil or memory-only; both are no-ops.
func (c *EvalCache) RemoveSpill() error {
	if c == nil || c.dir == "" {
		return nil
	}
	c.Close()
	return os.RemoveAll(c.dir)
}
