package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/param"
	"repro/internal/pareto"
)

func storedFixture(t *testing.T) (*param.Space, *StoredFront) {
	t.Helper()
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives: 2, RandomSamples: 40, MaxIterations: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sf := NewStoredFront(space, res, "bench", "test-device", []string{"runtime", "accuracy"})
	if len(sf.Points) == 0 {
		t.Fatal("empty stored front")
	}
	return space, sf
}

func TestStoredFrontRoundtrip(t *testing.T) {
	space, sf := storedFixture(t)
	var buf bytes.Buffer
	if err := sf.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFront(&buf, space)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "bench" || back.Platform != "test-device" {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.Points) != len(sf.Points) {
		t.Fatalf("points: %d vs %d", len(back.Points), len(sf.Points))
	}
	for i := range back.Points {
		if back.Points[i].Index != sf.Points[i].Index {
			t.Fatal("point order changed")
		}
		for j := range back.Points[i].Config {
			if back.Points[i].Config[j] != sf.Points[i].Config[j] {
				t.Fatal("config values changed")
			}
		}
	}
}

func TestStoredFrontFileRoundtrip(t *testing.T) {
	space, sf := storedFixture(t)
	path := filepath.Join(t.TempDir(), "front.json")
	if err := SaveFront(path, sf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFront(path, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(sf.Points) {
		t.Fatal("file roundtrip lost points")
	}
	if _, err := LoadFront(filepath.Join(t.TempDir(), "missing.json"), space); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestReadFrontValidation(t *testing.T) {
	space, sf := storedFixture(t)

	// Wrong parameter names.
	other := param.MustSpace(param.Bool("x"), param.Bool("y"), param.Bool("z"))
	var buf bytes.Buffer
	if err := sf.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFront(&buf, other); err == nil {
		t.Fatal("mismatched space accepted")
	}

	// Corrupt JSON.
	if _, err := ReadFront(strings.NewReader("{nope"), space); err == nil {
		t.Fatal("corrupt JSON accepted")
	}

	// Truncated config.
	buf.Reset()
	mangled := *sf
	mangled.Points = append([]StoredPoint(nil), sf.Points...)
	mangled.Points[0].Config = mangled.Points[0].Config[:1]
	if err := mangled.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFront(&buf, space); err == nil {
		t.Fatal("truncated config accepted")
	}

	// nil space skips validation.
	buf.Reset()
	if err := sf.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFront(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoredFrontSelectors(t *testing.T) {
	_, sf := storedFixture(t)
	front := sf.Front()
	best, ok := pareto.BestBy(front, 0)
	if !ok {
		t.Fatal("no best point")
	}
	cfg, ok := sf.ConfigByIndex(best.ID)
	if !ok || len(cfg) == 0 {
		t.Fatal("ConfigByIndex failed for a front point")
	}
	if _, ok := sf.ConfigByIndex(-42); ok {
		t.Fatal("bogus index found")
	}
	// Points are sorted by first objective (FrontSamples contract).
	for i := 1; i < len(sf.Points); i++ {
		if sf.Points[i].Objs[0] < sf.Points[i-1].Objs[0] {
			t.Fatal("stored points not sorted by runtime")
		}
	}
}
