package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/param"
)

// dropBackend evaluates through fn but leaves configurations selected by
// drop unmeasured (nil), returning a partial-batch error alongside the
// completed results — the shape a lossy worker fleet produces.
type dropBackend struct {
	fn    func(cfg param.Config) []float64
	drop  func(cfg param.Config) bool
	calls atomic.Int64
}

func (b *dropBackend) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	b.calls.Add(1)
	out := make([][]float64, len(cfgs))
	dropped := 0
	for i, cfg := range cfgs {
		if b.drop != nil && b.drop(cfg) {
			dropped++
			continue
		}
		out[i] = b.fn(cfg)
	}
	if dropped > 0 {
		return out, fmt.Errorf("drop backend: %d of %d configurations lost", dropped, len(cfgs))
	}
	return out, nil
}

// degradeEval mirrors resumeEval as a plain function for the backend.
func degradeEval(cfg param.Config) []float64 {
	return []float64{
		cfg[0] + 0.3*math.Sin(4*cfg[1]) + 0.1*cfg[2],
		cfg[1] + 0.3*math.Cos(3*cfg[0]),
	}
}

// lossyDrop deterministically loses ~10% of configurations by value, so
// the same configurations vanish in every run over the space.
func lossyDrop(cfg param.Config) bool {
	_, frac := math.Modf((cfg[0] + cfg[1] + cfg[2]) * 7.31)
	return frac < 0.1
}

func degradeOpts(rec *memRecorder, frac float64, b Backend) Options {
	o := resumeOpts(rec)
	o.MaxUnmeasuredFraction = frac
	o.Backend = b
	return o
}

// MaxUnmeasuredFraction = 0 keeps the historical strict behavior: any
// unmeasured configuration fails the run.
func TestUnmeasuredFractionZeroFailsFast(t *testing.T) {
	space := resumeSpace(t)
	b := &dropBackend{fn: degradeEval, drop: lossyDrop}
	res, err := Run(space, nil, degradeOpts(&memRecorder{}, 0, b))
	if err == nil {
		t.Fatal("strict run over a lossy backend succeeded")
	}
	if res == nil || len(res.Samples) == 0 {
		t.Fatal("completed measurements of the failed batch were discarded")
	}
	// The counter still reports what was lost — diagnostic even on failure.
	if res.Unmeasured == 0 {
		t.Fatal("failed strict run did not report its unmeasured configurations")
	}
}

// A tolerant run completes over the same lossy backend, counts its skips,
// and journals them.
func TestUnmeasuredFractionToleratesLossyBackend(t *testing.T) {
	space := resumeSpace(t)
	b := &dropBackend{fn: degradeEval, drop: lossyDrop}
	rec := &memRecorder{}
	res, err := Run(space, nil, degradeOpts(rec, 0.9, b))
	if err != nil {
		t.Fatalf("tolerant run failed: %v", err)
	}
	if res.Unmeasured == 0 {
		t.Fatal("lossy backend produced no unmeasured configurations; the scenario is not exercised")
	}
	sum := 0
	for _, ev := range res.Iterations {
		sum += ev.Unmeasured
	}
	// The bootstrap's stats are not in res.Iterations; count its skips via
	// the journal instead.
	journaled := 0
	for _, batch := range rec.batches {
		journaled += len(batch.Unmeasured)
	}
	if journaled != res.Unmeasured {
		t.Fatalf("journal records %d skips, result says %d", journaled, res.Unmeasured)
	}
	// No skipped index may appear among the measured samples of its own
	// batch, and every measured sample must carry objectives.
	for _, s := range res.Samples {
		if s.Objs == nil {
			t.Fatalf("sample %d has nil objectives", s.Index)
		}
	}
}

// Degradation boundaries at the batch level: unmeasured/batch ≤ fraction
// degrades, anything above fails; fraction 1 tolerates a fully lost batch.
func TestEvaluateBatchDegradationBoundaries(t *testing.T) {
	space := resumeSpace(t)
	idxs := []int64{0, 1, 2, 3}
	run := func(frac float64, dropN int) ([]Sample, batchOutcome, error, *memRecorder) {
		t.Helper()
		seen := 0
		b := &dropBackend{fn: degradeEval, drop: func(param.Config) bool {
			seen++
			return seen <= dropN
		}}
		rec := &memRecorder{}
		o := Options{Objectives: 2, MaxUnmeasuredFraction: frac, Journal: rec, Backend: b}
		out, bo, err := evaluateBatch(context.Background(), space, idxs, o, nil, 1, true)
		return out, bo, err, rec
	}

	// Exactly at the threshold: 2 of 4 unmeasured, fraction 0.5 → degraded.
	out, bo, err, rec := run(0.5, 2)
	if err != nil {
		t.Fatalf("at-threshold batch failed: %v", err)
	}
	if len(out) != 2 || bo.unmeasured != 2 {
		t.Fatalf("at-threshold: %d measured, %d unmeasured", len(out), bo.unmeasured)
	}
	if len(rec.batches) != 1 || len(rec.batches[0].Unmeasured) != 2 {
		t.Fatalf("at-threshold journal = %+v", rec.batches)
	}

	// Just below: same loss, fraction 0.49 → the batch fails, and the
	// journal must NOT record skips (resume re-measures).
	_, _, err, rec = run(0.49, 2)
	if err == nil {
		t.Fatal("over-threshold batch succeeded")
	}
	if len(rec.batches) != 1 || len(rec.batches[0].Unmeasured) != 0 {
		t.Fatalf("failed batch journaled skips: %+v", rec.batches)
	}

	// Fraction 1 tolerates a fully lost batch.
	out, bo, err, rec = run(1, len(idxs))
	if err != nil {
		t.Fatalf("fraction-1 fully-lost batch failed: %v", err)
	}
	if len(out) != 0 || bo.unmeasured != len(idxs) {
		t.Fatalf("fully-lost: %d measured, %d unmeasured", len(out), bo.unmeasured)
	}
	if len(rec.batches) != 1 || len(rec.batches[0].Unmeasured) != len(idxs) || len(rec.batches[0].Samples) != 0 {
		t.Fatalf("fully-lost journal = %+v", rec.batches)
	}
}

// A bootstrap tolerated away entirely must still fail: there is nothing
// to train on.
func TestFullyUnmeasuredBootstrapFails(t *testing.T) {
	space := resumeSpace(t)
	b := &dropBackend{fn: degradeEval, drop: func(param.Config) bool { return true }}
	_, err := Run(space, nil, degradeOpts(&memRecorder{}, 1, b))
	if err == nil || !strings.Contains(err.Error(), "bootstrap") {
		t.Fatalf("err = %v, want a bootstrap-unmeasured failure", err)
	}
}

// Resuming a degraded run from its journal (Replay + ReplaySkips) must be
// byte-identical — same samples, same front, same skip history — without
// a single backend call.
func TestDegradedResumeByteIdentical(t *testing.T) {
	space := resumeSpace(t)
	ref := &memRecorder{}
	refRes, err := Run(space, nil, degradeOpts(ref, 0.9, &dropBackend{fn: degradeEval, drop: lossyDrop}))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if refRes.Unmeasured == 0 {
		t.Fatal("reference run skipped nothing; the scenario is not exercised")
	}

	replay := make(map[int64][]float64)
	for _, s := range ref.samples() {
		replay[s.Index] = s.Objs
	}
	dead := &dropBackend{fn: degradeEval}
	rec := &memRecorder{}
	opts := degradeOpts(rec, 0.9, dead)
	opts.Replay = replay
	opts.ReplaySkips = ref.skips()
	res, err := Run(space, nil, opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if dead.calls.Load() != 0 {
		t.Fatalf("full replay called the backend %d times", dead.calls.Load())
	}
	if len(rec.batches) != 0 {
		t.Fatalf("full replay journaled %d batches", len(rec.batches))
	}
	if !reflect.DeepEqual(sampleKeys(res.Samples), sampleKeys(refRes.Samples)) {
		t.Fatal("resumed sample order differs from reference")
	}
	if !reflect.DeepEqual(res.Front, refRes.Front) {
		t.Fatal("resumed front differs from reference")
	}
	if res.Unmeasured != refRes.Unmeasured {
		t.Fatalf("resumed Unmeasured = %d, reference %d", res.Unmeasured, refRes.Unmeasured)
	}
	if res.Converged != refRes.Converged {
		t.Fatalf("converged = %v, want %v", res.Converged, refRes.Converged)
	}
}

// The degradation tolerance is part of the run's deterministic identity:
// runs with different fractions skip different work, so their journals
// must never be replay-compatible.
func TestFingerprintCoversUnmeasuredFraction(t *testing.T) {
	space := resumeSpace(t)
	a := resumeOpts(nil)
	b := resumeOpts(nil)
	b.MaxUnmeasuredFraction = 0.25
	if RunFingerprint(space, a) == RunFingerprint(space, b) {
		t.Fatal("fingerprint ignores MaxUnmeasuredFraction")
	}
	c := resumeOpts(nil)
	c.MaxUnmeasuredFraction = 0.25
	if RunFingerprint(space, b) != RunFingerprint(space, c) {
		t.Fatal("equal options produced different fingerprints")
	}
}

// Options clamping: out-of-range fractions normalize into [0, 1].
func TestUnmeasuredFractionClamped(t *testing.T) {
	o := Options{Objectives: 1, MaxUnmeasuredFraction: -0.5}.withDefaults()
	if o.MaxUnmeasuredFraction != 0 {
		t.Fatalf("negative fraction clamped to %g, want 0", o.MaxUnmeasuredFraction)
	}
	o = Options{Objectives: 1, MaxUnmeasuredFraction: 7}.withDefaults()
	if o.MaxUnmeasuredFraction != 1 {
		t.Fatalf("oversized fraction clamped to %g, want 1", o.MaxUnmeasuredFraction)
	}
}
