package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/forest"
	"repro/internal/param"
)

// fingerprintRun renders every sample and front point of a result into one
// string, so two runs can be compared byte-for-byte.
func fingerprintRun(res *Result) string {
	out := ""
	for _, s := range res.Samples {
		out += fmt.Sprintf("s %d %v %v %d\n", s.Index, s.Config, s.Objs, s.Iteration)
	}
	for _, p := range res.Front {
		out += fmt.Sprintf("f %d %v\n", p.ID, p.Objs)
	}
	for _, p := range res.RandomFront {
		out += fmt.Sprintf("r %d %v\n", p.ID, p.Objs)
	}
	return out
}

func TestSeededRunsAreByteIdentical(t *testing.T) {
	// Regression test for the predictionPool map-iteration bug: identical
	// seeds must yield identical sample sequences and fronts, including on
	// the subsampled-pool path where evaluated indices are appended.
	space := benchSpace(t)
	for _, poolCap := range []int{0, 100} { // exhaustive and subsampled pools
		opts := Options{
			Objectives:    2,
			RandomSamples: 40,
			MaxIterations: 3,
			MaxBatch:      30,
			PoolCap:       poolCap,
			Seed:          23,
		}
		var first string
		for trial := 0; trial < 3; trial++ {
			res, err := Run(space, benchEval(space), opts)
			if err != nil {
				t.Fatal(err)
			}
			fp := fingerprintRun(res)
			if trial == 0 {
				first = fp
			} else if fp != first {
				t.Fatalf("poolCap=%d: run %d differs from run 0 with identical seed", poolCap, trial)
			}
		}
	}
}

func TestIncrementalMatchesLegacyPath(t *testing.T) {
	// The incremental poolState path (pool encoded once, append-only
	// training matrix, fused flat-matrix prediction) must be byte-identical
	// to the pre-optimization engine — same sample order, same fronts —
	// on both the enumerable- and subsampled-pool paths, and for more than
	// two objectives (which exercises frontKD instead of the 2-D sweep).
	space := benchSpace(t)
	threeObj := EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b, c := cfg[0], cfg[1], cfg[2]
		return []float64{a + 1, b + 1, c + a*b*0.1}
	})
	cases := []struct {
		name       string
		objectives int
		eval       Evaluator
		poolCap    int
		sampler    Sampler
		modeler    Modeler
		selector   Selector
	}{
		{"2obj-enumerable", 2, benchEval(space), 0, nil, nil, nil},
		{"2obj-subsampled", 2, benchEval(space), 100, nil, nil, nil},
		{"3obj-subsampled", 3, threeObj, 400, nil, nil, nil},
		// The non-default pipeline stages must agree across the two engine
		// paths too: the pipeline sits above the pool/training
		// representation, so strategy choice and path choice are orthogonal.
		{"2obj-enumerable-strategy", 2, benchEval(space), 0,
			PriorSampler{}, FeasibilityModeler{Probes: 64}, AcquisitionSelector{}},
		{"2obj-subsampled-strategy", 2, benchEval(space), 100,
			PriorSampler{}, FeasibilityModeler{Probes: 64}, AcquisitionSelector{}},
		{"3obj-subsampled-strategy", 3, threeObj, 400,
			UniformSampler{}, FeasibilityModeler{Probes: 64}, AcquisitionSelector{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{
				Objectives:    tc.objectives,
				RandomSamples: 40,
				MaxIterations: 3,
				MaxBatch:      30,
				PoolCap:       tc.poolCap,
				Seed:          23,
				Sampler:       tc.sampler,
				Modeler:       tc.modeler,
				Selector:      tc.selector,
			}
			incremental, err := Run(space, tc.eval, opts)
			if err != nil {
				t.Fatal(err)
			}
			legacy := opts
			legacy.legacyState = true
			reference, err := Run(space, tc.eval, legacy)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprintRun(incremental) != fingerprintRun(reference) {
				t.Fatal("incremental path diverged from the legacy reference path with an identical seed")
			}
			if len(incremental.Iterations) != len(reference.Iterations) {
				t.Fatalf("iteration counts differ: %d vs %d",
					len(incremental.Iterations), len(reference.Iterations))
			}
			for i := range incremental.Iterations {
				a, b := incremental.Iterations[i], reference.Iterations[i]
				if a.PredictedFrontSize != b.PredictedFrontSize || a.NewSamples != b.NewSamples {
					t.Fatalf("iteration %d stats diverged: %+v vs %+v", i, a, b)
				}
			}
		})
	}
}

func TestIterationTimingsPopulated(t *testing.T) {
	space := benchSpace(t)
	var bootstrap IterationStats
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 2,
		Seed:          29,
		OnIteration: func(s IterationStats) {
			if s.Iteration == 0 {
				bootstrap = s
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bootstrap.EvalTime <= 0 {
		t.Fatalf("bootstrap EvalTime = %v, want > 0", bootstrap.EvalTime)
	}
	if bootstrap.FitTime != 0 || bootstrap.PredictTime != 0 {
		t.Fatalf("bootstrap carries AL-phase timings: %+v", bootstrap)
	}
	for _, it := range res.Iterations {
		if it.FitTime <= 0 {
			t.Fatalf("iteration %d FitTime = %v, want > 0", it.Iteration, it.FitTime)
		}
		if it.PredictTime <= 0 {
			t.Fatalf("iteration %d PredictTime = %v, want > 0", it.Iteration, it.PredictTime)
		}
	}
}

func TestByIndexLazyMap(t *testing.T) {
	res := &Result{Samples: []Sample{
		{Index: 7, Objs: []float64{1}},
		{Index: 3, Objs: []float64{2}},
		{Index: 11, Objs: []float64{3}},
	}}
	if s, ok := res.ByIndex(3); !ok || s.Objs[0] != 2 {
		t.Fatalf("ByIndex(3) = %+v, %v", s, ok)
	}
	if _, ok := res.ByIndex(99); ok {
		t.Fatal("ByIndex found a missing index")
	}
	// The map must refresh when samples are appended after the first call.
	res.Samples = append(res.Samples, Sample{Index: 42, Objs: []float64{4}})
	if s, ok := res.ByIndex(42); !ok || s.Objs[0] != 4 {
		t.Fatalf("ByIndex missed an appended sample: %+v, %v", s, ok)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	space := benchSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, space, benchEval(space), Options{Objectives: 2, RandomSamples: 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run should still return the (empty) partial result")
	}
	if len(res.Samples) != 0 {
		t.Fatalf("cancelled-before-start run evaluated %d samples", len(res.Samples))
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// Cancel from inside the evaluator after a handful of calls: RunContext
	// must return promptly with the partial result rather than running the
	// remaining iterations.
	space := benchSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		if calls.Add(1) == 50 {
			cancel()
		}
		return benchEval(space).Evaluate(cfg)
	})
	start := time.Now()
	res, err := RunContext(ctx, space, eval, Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 50,
		MaxBatch:      30,
		Seed:          5,
		Workers:       2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("expected partial result")
	}
	// The bootstrap (40 calls) completes; cancellation lands in an AL
	// batch, whose completed evaluations are retained — so the partial
	// result has at least the bootstrap plus whatever finished.
	if len(res.Samples) < 40 {
		t.Fatalf("partial result has %d samples, want ≥ the 40 bootstrap samples", len(res.Samples))
	}
	if int(calls.Load()) < len(res.Samples) {
		t.Fatalf("%d samples from %d evaluator calls", len(res.Samples), calls.Load())
	}
	for _, s := range res.Samples {
		if len(s.Objs) != 2 {
			t.Fatalf("retained sample %d has objectives %v", s.Index, s.Objs)
		}
	}
	if len(res.Front) == 0 {
		t.Fatal("partial result should still carry a front over completed samples")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestRunContextCancelSkipsRemainingEvaluations(t *testing.T) {
	// Once cancelled, no further evaluator calls may start: with a single
	// worker and a cancel on the very first call, the call count must stay
	// far below the requested bootstrap size.
	space := benchSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		if calls.Add(1) == 1 {
			cancel()
		}
		return benchEval(space).Evaluate(cfg)
	})
	_, err := RunContext(ctx, space, eval, Options{
		Objectives: 2, RandomSamples: 200, Workers: 1, Seed: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n > 2 {
		t.Fatalf("evaluator called %d times after cancellation", n)
	}
}

func TestEvalCacheHitsAcrossRuns(t *testing.T) {
	space := benchSpace(t)
	cache := NewEvalCache()
	var calls atomic.Int64
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		calls.Add(1)
		return benchEval(space).Evaluate(cfg)
	})
	opts := Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 2,
		Seed:          31,
		Cache:         cache,
	}
	r1, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHits != 0 {
		t.Fatalf("cold cache reported %d hits", r1.CacheHits)
	}
	if r1.CacheMisses != len(r1.Samples) {
		t.Fatalf("cold cache misses = %d, want %d", r1.CacheMisses, len(r1.Samples))
	}
	callsAfterFirst := calls.Load()

	// Same space, same seed: every evaluation must come from the cache.
	r2, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHits != len(r2.Samples) {
		t.Fatalf("warm cache hits = %d, want %d", r2.CacheHits, len(r2.Samples))
	}
	if calls.Load() != callsAfterFirst {
		t.Fatalf("warm run called the evaluator %d more times", calls.Load()-callsAfterFirst)
	}
	if fingerprintRun(r1) != fingerprintRun(r2) {
		t.Fatal("cached run diverged from the uncached run")
	}

	// Per-iteration counters must total the run counters.
	hits := 0
	for _, it := range r2.Iterations {
		hits += it.CacheHits
	}
	if bootHits := r2.CacheHits - hits; bootHits != 40 {
		t.Fatalf("bootstrap cache hits = %d, want 40", bootHits)
	}

	// A different seed still reuses overlapping configurations.
	opts.Seed = 32
	r3, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHits == 0 {
		t.Fatal("expected some cache hits on a different seed over the same space")
	}
}

func TestEvalCacheCopiesObjectives(t *testing.T) {
	ctx := context.Background()
	cache := NewEvalCache()
	v := cache.view("test-space")
	objs := []float64{1, 2}
	got, hit, err := v.fetch(ctx, 7, func() []float64 { return objs })
	if err != nil || hit {
		t.Fatalf("first fetch: hit=%v err=%v", hit, err)
	}
	objs[0] = 99 // caller mutates its slice after the cache stored it
	got, hit, err = v.fetch(ctx, 7, func() []float64 { t.Fatal("re-evaluated"); return nil })
	if err != nil || !hit {
		t.Fatalf("second fetch: hit=%v err=%v", hit, err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("cache returned mutated objectives %v", got)
	}
	got[1] = -5 // caller mutates the returned slice
	again, _, _ := v.fetch(ctx, 7, func() []float64 { t.Fatal("re-evaluated"); return nil })
	if again[1] != 2 {
		t.Fatalf("cache content corrupted via returned slice: %v", again)
	}
	if cache.Hits() != 2 || cache.Misses() != 1 || cache.Len() != 1 {
		t.Fatalf("counter state hits=%d misses=%d len=%d", cache.Hits(), cache.Misses(), cache.Len())
	}

	// Entries are namespaced per space: the same index in another space
	// misses and stays isolated.
	w := cache.view("other-space")
	if _, hit, _ := w.fetch(ctx, 7, func() []float64 { return []float64{8} }); hit {
		t.Fatal("index leaked across space namespaces")
	}
	if back, _, _ := v.fetch(ctx, 7, nil); back[0] != 1 {
		t.Fatalf("other-space store clobbered the entry: %v", back)
	}
	if cache.Len() != 2 {
		t.Fatalf("Len = %d, want one entry per namespace", cache.Len())
	}
}

func TestEvalCacheSingleflight(t *testing.T) {
	// Concurrent sessions missing on the same configuration must evaluate
	// it once: followers wait for the leader's measurement.
	cache := NewEvalCache()
	space := param.MustSpace(param.Grid("x", 0, 1, 25))
	var calls atomic.Int64
	perIdx := make([]atomic.Int64, 25)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		calls.Add(1)
		idx, _ := space.IndexOf(cfg)
		perIdx[idx].Add(1)
		time.Sleep(time.Millisecond) // widen the race window
		return []float64{cfg[0]}
	})
	opts := Options{Objectives: 1, RandomSamples: 25, MaxIterations: 1, Cache: cache, Seed: 1, Workers: 4}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(space, eval, opts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i := range perIdx {
		if n := perIdx[i].Load(); n > 1 {
			t.Fatalf("configuration %d evaluated %d times across concurrent sessions", i, n)
		}
	}
	if calls.Load() > 25 {
		t.Fatalf("%d evaluator calls for a 25-point space across 4 concurrent sessions", calls.Load())
	}

	// A waiter whose context is cancelled must not hang on the leader.
	ctx, cancel := context.WithCancel(context.Background())
	v := cache.view("sf-space")
	started := make(chan struct{})
	release := make(chan struct{})
	go v.fetch(context.Background(), 3, func() []float64 {
		close(started)
		<-release
		return []float64{1}
	})
	<-started
	cancel()
	if _, _, err := v.fetch(ctx, 3, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestEvalCacheIsolatesSpaces(t *testing.T) {
	// A cache carried to a run over a different space must not serve the
	// old space's objectives for coinciding indices.
	cache := NewEvalCache()
	spaceA := param.MustSpace(param.Grid("x", 0, 1, 10))
	spaceB := param.MustSpace(param.Grid("x", 10, 20, 10))
	evalA := EvaluatorFunc(func(cfg param.Config) []float64 { return []float64{cfg[0]} })
	evalB := EvaluatorFunc(func(cfg param.Config) []float64 { return []float64{cfg[0]} })

	if _, err := Run(spaceA, evalA, Options{Objectives: 1, RandomSamples: 10, MaxIterations: 1, Cache: cache, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	resB, err := Run(spaceB, evalB, Options{Objectives: 1, RandomSamples: 10, MaxIterations: 1, Cache: cache, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resB.CacheHits != 0 {
		t.Fatalf("stale cache served %d hits across spaces", resB.CacheHits)
	}
	for _, s := range resB.Samples {
		if s.Objs[0] < 10 {
			t.Fatalf("sample %d carries spaceA objective %v", s.Index, s.Objs)
		}
	}
}

func TestEvalCacheConcurrentRunsDifferentSpaces(t *testing.T) {
	// The contamination scenario: two runs over different spaces share one
	// cache concurrently. Namespacing must keep every sample's objectives
	// consistent with its own space's evaluator.
	cache := NewEvalCache()
	spaceA := param.MustSpace(param.Grid("x", 0, 1, 50))
	spaceB := param.MustSpace(param.Grid("x", 100, 200, 50))
	evalFor := func(space *param.Space) Evaluator {
		return EvaluatorFunc(func(cfg param.Config) []float64 { return []float64{cfg[0]} })
	}
	var wg sync.WaitGroup
	check := func(space *param.Space, lo, hi float64, seed int64) {
		defer wg.Done()
		for r := 0; r < 3; r++ {
			res, err := Run(space, evalFor(space), Options{
				Objectives: 1, RandomSamples: 30, MaxIterations: 2, Cache: cache, Seed: seed,
			})
			if err != nil {
				t.Error(err)
				return
			}
			for _, s := range res.Samples {
				if s.Objs[0] < lo || s.Objs[0] > hi {
					t.Errorf("space [%g,%g] sample %d got foreign objective %v", lo, hi, s.Index, s.Objs)
					return
				}
			}
		}
	}
	wg.Add(2)
	go check(spaceA, 0, 1, 1)
	go check(spaceB, 100, 200, 1)
	wg.Wait()
}

func TestZeroValueOptionsDefaults(t *testing.T) {
	// A zero-valued Options (Objectives aside) must not stall the loop or
	// panic thin: MaxBatch, PoolCap, RandomSamples, and Workers all default.
	o := Options{MaxBatch: -3, PoolCap: -1, Workers: -2}.withDefaults()
	if o.MaxBatch != 300 || o.PoolCap != 200_000 || o.RandomSamples != 200 || o.MaxIterations != 6 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if o.Workers < 1 {
		t.Fatalf("Workers defaulted to %d", o.Workers)
	}

	space := param.MustSpace(param.Levels("x", 1, 2, 3), param.Bool("y"))
	eval := EvaluatorFunc(func(cfg param.Config) []float64 { return []float64{cfg[0] + cfg[1]} })
	res, err := Run(space, eval, Options{Objectives: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("zero-valued options produced no samples")
	}
}

func TestThinGuards(t *testing.T) {
	if got := thin([]int64{1, 2, 3}, 0); len(got) != 0 {
		t.Fatalf("thin(_, 0) = %v", got)
	}
	if got := thin([]int64{1, 2, 3}, -1); len(got) != 0 {
		t.Fatalf("thin(_, -1) = %v", got)
	}
}

// BenchmarkALIteration measures the active-learning loop on an enumerable
// pool near the default PoolCap: a 192 000-point space swept exhaustively
// every iteration, the regime the incremental exploration state targets.
// The "legacy" sub-benchmark runs the retained pre-optimization reference
// path, so one bench run shows the speedup and alloc reduction directly.
func BenchmarkALIteration(b *testing.B) {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 80),
		param.Grid("b", 0, 4, 80),
		param.Grid("c", 0, 1, 30),
	) // 192 000 points, enumerable under the default 200 000 PoolCap
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		a, bb := cfg[0], cfg[1]
		return []float64{a + 0.5*bb + cfg[2], bb + 0.25*a}
	})
	for _, mode := range []struct {
		name   string
		legacy bool
	}{
		{"incremental", false},
		{"legacy", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var fit time.Duration
			for i := 0; i < b.N; i++ {
				opts := Options{
					Objectives:    2,
					RandomSamples: 100,
					MaxIterations: 2,
					MaxBatch:      30,
					Seed:          int64(i + 1),
				}
				opts.legacyState = mode.legacy
				res, err := Run(space, eval, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, it := range res.Iterations {
					fit += it.FitTime
				}
			}
			// Per-run forest-fitting wall clock, so the bench logs track the
			// fit path (warm-started presorted refits vs the legacy rebuild)
			// alongside the whole-iteration timing.
			b.ReportMetric(fit.Seconds()*1e3/float64(b.N), "fit-ms")
		})
	}
}

// BenchmarkALIterationFit isolates fitForests across a growing
// active-learning run — the exact call pattern of the engine's fit phase:
// bootstrap-sized training set, then one refit per objective per iteration
// as measured batches append. The incremental mode reuses one shared
// presorted Columns (the poolState seam); the legacy mode re-encodes and
// rebuilds the matrix every iteration and trains with the retained
// re-sorting reference builder, like the pre-presorted engine did.
func BenchmarkALIterationFit(b *testing.B) {
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3),
	)
	eval := benchEval(space)
	const bootstrap, batch, iters, objectives = 50, 75, 6, 2
	rng := rand.New(rand.NewSource(1))
	total := bootstrap + batch*(iters-1)
	idxs := space.SampleIndices(rng, total)
	samples := make([]Sample, total)
	for i, idx := range idxs {
		cfg := space.AtIndex(idx)
		samples[i] = Sample{Index: idx, Config: cfg, Objs: eval.Evaluate(cfg)}
	}
	ctx := context.Background()

	for _, mode := range []struct {
		name   string
		legacy bool
	}{
		{"incremental", false},
		{"legacy", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := Options{Objectives: objectives, Seed: int64(i + 1)}.withDefaults()
				o.legacyState = mode.legacy
				o.Forest.Reference = mode.legacy
				st := newPoolState(space, o)
				n := 0
				for iter := 1; iter <= iters; iter++ {
					grow := batch
					if iter == 1 {
						grow = bootstrap
					}
					for _, s := range samples[n : n+grow] {
						if err := st.addSample(s); err != nil {
							b.Fatal(err)
						}
					}
					n += grow
					var err error
					if mode.legacy {
						// Re-encode and re-transpose everything, like
						// trainingMatrix + ColumnsFromRows per iteration.
						var x, ys [][]float64
						x, ys, err = trainingMatrix(space, samples[:n], objectives)
						if err == nil {
							var cols *forest.Columns
							cols, err = forest.ColumnsFromRows(x)
							if err == nil {
								_, _, _, err = fitForests(ctx, cols, ys, o, iter)
							}
						}
					} else {
						var cols *forest.Columns
						cols, err = st.columns()
						if err == nil {
							_, _, _, err = fitForests(ctx, cols, st.ys, o, iter)
						}
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func TestOnIterationStream(t *testing.T) {
	space := benchSpace(t)
	var events []IterationStats
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 30,
		MaxIterations: 2,
		Seed:          41,
		OnIteration:   func(s IterationStats) { events = append(events, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Iterations)+1 {
		t.Fatalf("got %d events for %d iterations (+bootstrap)", len(events), len(res.Iterations))
	}
	if events[0].Iteration != 0 || events[0].NewSamples != 30 {
		t.Fatalf("first event is not the bootstrap: %+v", events[0])
	}
	for i, it := range res.Iterations {
		if events[i+1].Iteration != it.Iteration || events[i+1].TotalSamples != it.TotalSamples {
			t.Fatalf("event %d does not match recorded stats", i+1)
		}
	}
}
