package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/journal"
	"repro/internal/param"
)

// EvalCache memoizes evaluator results keyed by design-space index so that
// repeated explorations of the same (space, evaluator) pair skip
// re-measurement. It is safe for concurrent use and may be shared across
// any number of simultaneous Run/RunContext calls; concurrent runs that
// miss on the same configuration are deduplicated in flight, so each
// configuration is measured once no matter how many sessions want it.
//
// Entries are namespaced by a fingerprint of the design space's parameter
// grid, so concurrent or sequential runs over different spaces are fully
// isolated from each other — an index in one space can never be served
// another space's objectives. The evaluator itself cannot be
// fingerprinted: reusing one cache across different evaluators over the
// same space (e.g. the same benchmark on two devices) would conflate their
// measurements, so keep one cache per (space, evaluator) pair.
type EvalCache struct {
	mu     sync.Mutex
	spaces map[string]*spaceCache
	hits   atomic.Int64
	misses atomic.Int64
	// coalesced counts the subset of hits that were resolved by waiting on
	// another run's in-flight evaluation of the same configuration — the
	// cross-run singleflight dedup the scheduler's coalescing exploits.
	coalesced atomic.Int64

	// dir, when non-empty, spills memoized entries to one JSON-lines file
	// per space namespace and pre-loads them on first use; see
	// NewEvalCacheDir. spillErrors counts degraded-to-memory failures.
	dir         string
	spillErrors atomic.Int64
}

// spaceCache is one space's namespace: memoized objectives plus the
// in-flight evaluations being computed right now.
type spaceCache struct {
	objs     map[int64][]float64
	inflight map[int64]chan struct{}
	spill    *journal.AppendFile // nil when memory-only (or degraded)
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{spaces: make(map[string]*spaceCache)}
}

// spaceFingerprint identifies a design space by its parameter names and
// grids, so a cache cannot serve index-keyed results across unrelated
// spaces.
func spaceFingerprint(space *param.Space, objectives int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "objs=%d;size=%d", objectives, space.Size())
	for _, p := range space.Params() {
		fmt.Fprintf(&b, ";%s=%v", p.Name, p.Values)
	}
	return b.String()
}

// SpaceFingerprint exposes the cache's space identity key: callers that
// persist index-keyed measurements (the disk spill, the evaluation
// journal) use it to guarantee a stored index is only ever decoded against
// the space it was measured in.
func SpaceFingerprint(space *param.Space, objectives int) string {
	return spaceFingerprint(space, objectives)
}

// RunFingerprint identifies a run's deterministic identity: the space
// grid and objective count plus the seed, every budget that shapes the
// sample sequence, and the search strategy (a non-default sampler, modeler,
// or selector consumes the RNG differently, so strategies are never
// replay-compatible with each other). Two runs with equal fingerprints draw
// identical bootstraps, pools, and forests, which is what makes journal
// replay byte-identical — and why resume refuses a journal whose
// fingerprint differs from the relaunched run's.
func RunFingerprint(space *param.Space, opts Options) string {
	o := opts.withDefaults()
	return fmt.Sprintf("%s;seed=%d;rs=%d;iters=%d;batch=%d;pool=%d;trees=%d;depth=%d;leaf=%d;mtry=%d;ratio=%g;sampler=%s;modeler=%s;selector=%s;maxunmeas=%g",
		spaceFingerprint(space, o.Objectives), o.Seed, o.RandomSamples,
		o.MaxIterations, o.MaxBatch, o.PoolCap,
		o.Forest.Trees, o.Forest.MaxDepth, o.Forest.MinSamplesLeaf,
		o.Forest.MaxFeatures, o.Forest.SampleRatio,
		samplerName(o.Sampler), modelerName(o.Modeler), selectorName(o.Selector),
		o.MaxUnmeasuredFraction)
}

// evalCacheView is a cache handle bound to one space namespace; the engine
// obtains one per run so every lookup and store lands in the right space.
type evalCacheView struct {
	c *EvalCache
	s *spaceCache
}

// view returns the handle for the given space fingerprint, creating the
// namespace on first use.
func (c *EvalCache) view(fingerprint string) *evalCacheView {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.spaces[fingerprint]
	if !ok {
		s = &spaceCache{
			objs:     make(map[int64][]float64),
			inflight: make(map[int64]chan struct{}),
		}
		if c.dir != "" {
			// Rehydrate the namespace from its spill file and keep the
			// appender; on any failure the namespace degrades to
			// memory-only rather than failing the run.
			af, err := c.openSpill(fingerprint, s)
			if err != nil {
				c.spillErrors.Add(1)
			}
			s.spill = af
		}
		c.spaces[fingerprint] = s
	}
	return &evalCacheView{c: c, s: s}
}

// backendFunc adapts a function to the Backend interface.
type backendFunc func(ctx context.Context, cfgs []param.Config) ([][]float64, error)

// EvaluateBatch implements Backend.
func (f backendFunc) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	return f(ctx, cfgs)
}

// fetch returns the memoized objectives for idx, or computes them via fn —
// the single-index convenience over fetchBatch, with the same singleflight
// guarantee: concurrent fetches of the same index are deduplicated, one
// caller runs fn while the others wait for its result (or for ctx
// cancellation). hit reports whether the value came from the cache rather
// than this caller's own fn run. The returned slice is always a private
// copy.
func (v *evalCacheView) fetch(ctx context.Context, idx int64, fn func() []float64) (objs []float64, hit bool, err error) {
	res, hits, _, err := v.fetchBatch(ctx, []int64{idx}, []param.Config{nil},
		backendFunc(func(context.Context, []param.Config) ([][]float64, error) {
			return [][]float64{fn()}, nil
		}))
	if err != nil {
		return nil, false, err
	}
	return res[0], hits == 1, nil
}

// fetchBatch resolves one evaluation batch against the cache: cached
// indices are served directly, misses are evaluated through the backend in
// a single batched call, and indices another run is already evaluating are
// waited on rather than re-measured. It is the batch generalization of
// fetch with the same singleflight guarantee — across any number of
// concurrent runs, each configuration is measured at most once.
//
// objs has len(idxs), position-matched; nil entries mark configurations
// that could not be resolved (cancellation, backend failure), in which
// case err is non-nil. hits and misses count this call's cache outcomes:
// an index resolved by waiting on another run's in-flight evaluation
// counts as a hit, exactly as the per-index fetch loop did.
func (v *evalCacheView) fetchBatch(ctx context.Context, idxs []int64, cfgs []param.Config, backend Backend) (objs [][]float64, hits, misses int, err error) {
	objs = make([][]float64, len(idxs))
	pending := make([]int, len(idxs)) // positions still unresolved
	for i := range pending {
		pending[i] = i
	}
	var waited map[int]bool // positions that waited on another run's in-flight eval
	for len(pending) > 0 {
		var lead []int // positions this call evaluates
		var waits []int
		var waitCh []chan struct{}
		v.c.mu.Lock()
		for _, i := range pending {
			idx := idxs[i]
			if cached, ok := v.s.objs[idx]; ok {
				objs[i] = append([]float64(nil), cached...)
				hits++
				v.c.hits.Add(1)
				if waited[i] {
					// Served by the evaluation another run had in flight
					// when we first looked: a cross-run coalesce hit.
					v.c.coalesced.Add(1)
				}
				continue
			}
			if ch, inflight := v.s.inflight[idx]; inflight {
				waits = append(waits, i)
				waitCh = append(waitCh, ch)
				if waited == nil {
					waited = make(map[int]bool)
				}
				waited[i] = true
				continue
			}
			v.s.inflight[idx] = make(chan struct{})
			lead = append(lead, i)
			misses++
			v.c.misses.Add(1)
		}
		v.c.mu.Unlock()

		if len(lead) > 0 {
			batch := make([]param.Config, len(lead))
			for j, i := range lead {
				batch[j] = cfgs[i]
			}
			var res [][]float64
			var evalErr error
			func() {
				// Release the in-flight registrations even if the backend
				// panics, so waiters elect a new leader instead of hanging;
				// store whatever completed first.
				defer func() {
					var stored []spillRecord
					v.c.mu.Lock()
					for j, i := range lead {
						idx := idxs[i]
						if j < len(res) && res[j] != nil {
							v.s.objs[idx] = append([]float64(nil), res[j]...)
							objs[i] = append([]float64(nil), res[j]...)
							stored = append(stored, spillRecord{Index: idx, Objs: objs[i]})
						}
						if ch, ok := v.s.inflight[idx]; ok {
							delete(v.s.inflight, idx)
							close(ch)
						}
					}
					v.c.mu.Unlock()
					// Persist outside the cache lock: the appender has its
					// own mutex and fsyncs must not serialize other runs.
					v.c.spill(v.s, stored)
				}()
				res, evalErr = backend.EvaluateBatch(ctx, batch)
			}()
			if evalErr != nil {
				return objs, hits, misses, evalErr
			}
		}

		for j := range waits {
			select {
			case <-waitCh[j]:
				// The leader stored the value (next round hits the cache)
				// or aborted (next round elects a new leader).
			case <-ctx.Done():
				return objs, hits, misses, ctx.Err()
			}
		}
		pending = waits
	}
	return objs, hits, misses, nil
}

// Hits returns the number of lookups served from memoized entries.
func (c *EvalCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of lookups that had to evaluate.
func (c *EvalCache) Misses() int64 { return c.misses.Load() }

// CoalesceHits returns the subset of Hits resolved by waiting on another
// run's in-flight evaluation of the same configuration (the cross-run
// singleflight path), rather than from an already memoized entry.
func (c *EvalCache) CoalesceHits() int64 { return c.coalesced.Load() }

// Len returns the number of memoized configurations across all spaces.
func (c *EvalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.spaces {
		n += len(s.objs)
	}
	return n
}
