package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/param"
)

// EvalCache memoizes evaluator results keyed by design-space index so that
// repeated explorations of the same (space, evaluator) pair skip
// re-measurement. It is safe for concurrent use and may be shared across
// any number of simultaneous Run/RunContext calls; concurrent runs that
// miss on the same configuration are deduplicated in flight, so each
// configuration is measured once no matter how many sessions want it.
//
// Entries are namespaced by a fingerprint of the design space's parameter
// grid, so concurrent or sequential runs over different spaces are fully
// isolated from each other — an index in one space can never be served
// another space's objectives. The evaluator itself cannot be
// fingerprinted: reusing one cache across different evaluators over the
// same space (e.g. the same benchmark on two devices) would conflate their
// measurements, so keep one cache per (space, evaluator) pair.
type EvalCache struct {
	mu     sync.Mutex
	spaces map[string]*spaceCache
	hits   atomic.Int64
	misses atomic.Int64
}

// spaceCache is one space's namespace: memoized objectives plus the
// in-flight evaluations being computed right now.
type spaceCache struct {
	objs     map[int64][]float64
	inflight map[int64]chan struct{}
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{spaces: make(map[string]*spaceCache)}
}

// spaceFingerprint identifies a design space by its parameter names and
// grids, so a cache cannot serve index-keyed results across unrelated
// spaces.
func spaceFingerprint(space *param.Space, objectives int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "objs=%d;size=%d", objectives, space.Size())
	for _, p := range space.Params() {
		fmt.Fprintf(&b, ";%s=%v", p.Name, p.Values)
	}
	return b.String()
}

// evalCacheView is a cache handle bound to one space namespace; the engine
// obtains one per run so every lookup and store lands in the right space.
type evalCacheView struct {
	c *EvalCache
	s *spaceCache
}

// view returns the handle for the given space fingerprint, creating the
// namespace on first use.
func (c *EvalCache) view(fingerprint string) *evalCacheView {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.spaces[fingerprint]
	if !ok {
		s = &spaceCache{
			objs:     make(map[int64][]float64),
			inflight: make(map[int64]chan struct{}),
		}
		c.spaces[fingerprint] = s
	}
	return &evalCacheView{c: c, s: s}
}

// fetch returns the memoized objectives for idx, or computes them via fn.
// Concurrent fetches of the same index are deduplicated: one caller runs
// fn while the others wait for its result (or for ctx cancellation). hit
// reports whether the value came from the cache rather than this caller's
// own fn run. The returned slice is always a private copy.
func (v *evalCacheView) fetch(ctx context.Context, idx int64, fn func() []float64) (objs []float64, hit bool, err error) {
	for {
		v.c.mu.Lock()
		if cached, ok := v.s.objs[idx]; ok {
			cp := append([]float64(nil), cached...)
			v.c.mu.Unlock()
			v.c.hits.Add(1)
			return cp, true, nil
		}
		wait, inflight := v.s.inflight[idx]
		if !inflight {
			done := make(chan struct{})
			v.s.inflight[idx] = done
			v.c.mu.Unlock()
			v.c.misses.Add(1)
			// Leader: even if fn panics, release the waiters so they can
			// take over rather than hang.
			stored := ([]float64)(nil)
			defer func() {
				v.c.mu.Lock()
				if stored != nil {
					v.s.objs[idx] = stored
				}
				delete(v.s.inflight, idx)
				v.c.mu.Unlock()
				close(done)
			}()
			out := fn()
			stored = append([]float64(nil), out...)
			return append([]float64(nil), out...), false, nil
		}
		v.c.mu.Unlock()
		select {
		case <-wait:
			// The leader stored the value (loop will hit the cache) or
			// aborted (loop elects a new leader).
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Hits returns the number of lookups served from memoized entries.
func (c *EvalCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of lookups that had to evaluate.
func (c *EvalCache) Misses() int64 { return c.misses.Load() }

// Len returns the number of memoized configurations across all spaces.
func (c *EvalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.spaces {
		n += len(s.objs)
	}
	return n
}
