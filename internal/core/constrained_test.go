package core

import (
	"testing"

	"repro/internal/param"
)

// constrainedSpace is benchSpace with a feasibility predicate: roughly a
// quarter of the 4800 configurations survive a + b <= 4 with c != 2.
func constrainedSpace(t testing.TB) *param.Space {
	t.Helper()
	s := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3),
	)
	s.SetConstraint(func(cfg param.Config) bool {
		return cfg[0]+cfg[1] <= 4 && cfg[2] != 2
	})
	return s
}

func TestConstrainedRunNeverEvaluatesInfeasible(t *testing.T) {
	for _, poolCap := range []int{0, 200} { // enumerable and subsampled pools
		space := constrainedSpace(t)
		res, err := Run(space, benchEval(space), Options{
			Objectives:    2,
			RandomSamples: 40,
			MaxIterations: 3,
			MaxBatch:      30,
			PoolCap:       poolCap,
			Seed:          9,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Samples {
			if !space.Feasible(s.Config) {
				t.Fatalf("poolCap=%d evaluated infeasible config %v (index %d)",
					poolCap, s.Config, s.Index)
			}
		}
		for _, p := range res.Front {
			if !space.Feasible(space.AtIndex(p.ID)) {
				t.Fatalf("poolCap=%d front nominates infeasible index %d", poolCap, p.ID)
			}
		}
	}
}

func TestConstrainedLegacyIncrementalEquivalence(t *testing.T) {
	for _, poolCap := range []int{0, 200} {
		space := constrainedSpace(t)
		opts := Options{
			Objectives:    2,
			RandomSamples: 40,
			MaxIterations: 3,
			MaxBatch:      30,
			PoolCap:       poolCap,
			Seed:          31,
		}
		incremental, err := Run(space, benchEval(space), opts)
		if err != nil {
			t.Fatal(err)
		}
		legacy := opts
		legacy.legacyState = true
		reference, err := Run(space, benchEval(space), legacy)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprintRun(incremental) != fingerprintRun(reference) {
			t.Fatalf("poolCap=%d: incremental path diverged from legacy on a constrained space", poolCap)
		}
	}
}

func TestConstrainedRunDeterministicAcrossWorkers(t *testing.T) {
	space := constrainedSpace(t)
	opts := Options{Objectives: 2, RandomSamples: 30, MaxIterations: 2, Seed: 17}
	r1, err := Run(space, benchEval(space), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 3
	r2, err := Run(space, benchEval(space), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintRun(r1) != fingerprintRun(r2) {
		t.Fatal("constrained run depends on worker count")
	}
}
