package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/param"
)

var errTest = errors.New("journal write failed")

// memRecorder is an in-memory BatchRecorder capturing what the engine
// would journal.
type memRecorder struct {
	mu      sync.Mutex
	batches []RecordedBatch
	fail    error // when non-nil, RecordBatch returns it
}

func (r *memRecorder) RecordBatch(b RecordedBatch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil {
		return r.fail
	}
	cp := b
	cp.Samples = append([]Sample(nil), b.Samples...)
	cp.Unmeasured = append([]int64(nil), b.Unmeasured...)
	r.batches = append(r.batches, cp)
	return nil
}

func (r *memRecorder) samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, b := range r.batches {
		out = append(out, b.Samples...)
	}
	return out
}

// skips flattens the recorded unmeasured history into the ReplaySkips map
// shape, mirroring journal.Recovered.Skips.
func (r *memRecorder) skips() map[int64]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[int64]int)
	for _, b := range r.batches {
		for _, idx := range b.Unmeasured {
			m[idx]++
		}
	}
	return m
}

func resumeSpace(t *testing.T) *param.Space {
	t.Helper()
	space, err := param.NewSpace(
		param.Grid("x", 0, 3, 25),
		param.Grid("y", 0, 3, 25),
		param.Levels("z", 1, 2, 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func resumeEval() Evaluator {
	return EvaluatorFunc(func(cfg param.Config) []float64 {
		return []float64{
			cfg[0] + 0.3*math.Sin(4*cfg[1]) + 0.1*cfg[2],
			cfg[1] + 0.3*math.Cos(3*cfg[0]),
		}
	})
}

func resumeOpts(rec *memRecorder) Options {
	return Options{
		Objectives:    2,
		RandomSamples: 30,
		MaxIterations: 3,
		MaxBatch:      15,
		PoolCap:       400, // below the space size, so pool draws consume the rng
		Seed:          7,
		Workers:       2,
		Journal:       rec,
	}
}

func sampleKeys(samples []Sample) []int64 {
	out := make([]int64, len(samples))
	for i, s := range samples {
		out[i] = s.Index
	}
	return out
}

// A run resumed from a replay of any journaled prefix must be
// byte-identical to the uninterrupted run — same sample order, same
// objectives, same front — and must journal exactly the suffix it
// actually measured.
func TestResumeReplayByteIdentical(t *testing.T) {
	space := resumeSpace(t)
	ref := &memRecorder{}
	refRes, err := Run(space, resumeEval(), resumeOpts(ref))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(ref.batches) < 2 {
		t.Fatalf("reference journaled %d batches; test needs ≥ 2", len(ref.batches))
	}
	refSamples := ref.samples()
	if !reflect.DeepEqual(sampleKeys(refSamples), sampleKeys(refRes.Samples)) {
		t.Fatal("journal order differs from result sample order")
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		// Cut the journal at a random evaluation count — including
		// mid-batch, which models a partially journaled batch (the
		// cancellation path journals completed samples of an interrupted
		// batch).
		cut := 1 + rng.Intn(len(refSamples)-1)
		replay := make(map[int64][]float64, cut)
		for _, s := range refSamples[:cut] {
			replay[s.Index] = s.Objs
		}
		rec := &memRecorder{}
		opts := resumeOpts(rec)
		opts.Replay = replay
		res, err := Run(space, resumeEval(), opts)
		if err != nil {
			t.Fatalf("cut=%d: resumed run: %v", cut, err)
		}
		if !reflect.DeepEqual(sampleKeys(res.Samples), sampleKeys(refRes.Samples)) {
			t.Fatalf("cut=%d: resumed sample order differs from reference", cut)
		}
		for i, s := range res.Samples {
			if !reflect.DeepEqual(s.Objs, refRes.Samples[i].Objs) {
				t.Fatalf("cut=%d: sample %d objectives differ: %v vs %v",
					cut, i, s.Objs, refRes.Samples[i].Objs)
			}
		}
		if !reflect.DeepEqual(res.Front, refRes.Front) {
			t.Fatalf("cut=%d: resumed front differs from reference", cut)
		}
		if res.Converged != refRes.Converged {
			t.Fatalf("cut=%d: converged = %v, want %v", cut, res.Converged, refRes.Converged)
		}
		// The resumed run must have journaled exactly the measurements the
		// reference made after the cut: replayed ones are never re-recorded.
		wantSuffix := sampleKeys(refSamples[cut:])
		gotSuffix := sampleKeys(rec.samples())
		if !reflect.DeepEqual(gotSuffix, wantSuffix) {
			t.Fatalf("cut=%d: resumed run journaled %d samples, want the %d-sample suffix",
				cut, len(gotSuffix), len(wantSuffix))
		}
	}
}

// A fully replayed journal reconstructs the run without a single backend
// call.
func TestResumeFullReplayNeverEvaluates(t *testing.T) {
	space := resumeSpace(t)
	ref := &memRecorder{}
	refRes, err := Run(space, resumeEval(), resumeOpts(ref))
	if err != nil {
		t.Fatal(err)
	}
	replay := make(map[int64][]float64)
	for _, s := range ref.samples() {
		replay[s.Index] = s.Objs
	}
	rec := &memRecorder{}
	opts := resumeOpts(rec)
	opts.Replay = replay
	calls := 0
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		calls++
		return resumeEval().Evaluate(cfg)
	})
	res, err := Run(space, eval, opts)
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	if calls != 0 {
		t.Errorf("full replay called the evaluator %d times", calls)
	}
	if len(rec.batches) != 0 {
		t.Errorf("full replay journaled %d batches, want 0", len(rec.batches))
	}
	if !reflect.DeepEqual(res.Front, refRes.Front) {
		t.Error("fully replayed front differs from reference")
	}
}

// Replay composes with the memo-cache: replayed indices bypass it (no
// hits, no misses), live ones still memoize.
func TestResumeWithCache(t *testing.T) {
	space := resumeSpace(t)
	ref := &memRecorder{}
	refRes, err := Run(space, resumeEval(), resumeOpts(ref))
	if err != nil {
		t.Fatal(err)
	}
	refSamples := ref.samples()
	cut := len(refSamples) / 2
	replay := make(map[int64][]float64)
	for _, s := range refSamples[:cut] {
		replay[s.Index] = s.Objs
	}
	opts := resumeOpts(&memRecorder{})
	opts.Replay = replay
	opts.Cache = NewEvalCache()
	res, err := Run(space, resumeEval(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, refRes.Front) {
		t.Error("resumed-with-cache front differs from reference")
	}
	if res.CacheMisses != len(refSamples)-cut {
		t.Errorf("cache misses = %d, want %d (live evaluations only)",
			res.CacheMisses, len(refSamples)-cut)
	}
}

// A journal write failure must fail the run rather than silently dropping
// durability, while retaining the measurements of the failed batch.
func TestJournalFailureFailsRun(t *testing.T) {
	space := resumeSpace(t)
	rec := &memRecorder{fail: errTest}
	res, err := Run(space, resumeEval(), resumeOpts(rec))
	if err == nil {
		t.Fatal("run with failing journal succeeded")
	}
	if res == nil || len(res.Samples) == 0 {
		t.Error("measurements of the failed batch were discarded")
	}
}
