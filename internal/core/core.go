// Package core implements HyperMapper, the multi-objective random-forest
// active-learning design-space-exploration framework of the paper
// (Algorithm 1):
//
//	X_out ← rs distinct random configurations;  evaluate them
//	repeat
//	    fit one random forest per objective on (X_out, Y)
//	    predict all objectives over the configuration pool X
//	    P ← predicted Pareto front
//	    evaluate P − X_out on the real system;  add to X_out
//	until P − X_out = ∅ (or iteration/batch budget exhausted)
//
// The package is objective-count agnostic: the paper explores
// (runtime, accuracy) and its predecessor adds power as a third objective;
// both work unchanged.
package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/forest"
	"repro/internal/par"
	"repro/internal/param"
	"repro/internal/pareto"
)

// Evaluator runs one configuration "on hardware" and returns its objective
// vector (all objectives minimized). Implementations must be safe for
// concurrent use: the optimizer evaluates batches in parallel.
type Evaluator interface {
	Evaluate(cfg param.Config) []float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(cfg param.Config) []float64

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(cfg param.Config) []float64 { return f(cfg) }

// Options configures a HyperMapper run. The zero value of optional fields
// selects the documented defaults; Objectives is required.
type Options struct {
	// Objectives is the number of objective values the evaluator returns.
	Objectives int
	// RandomSamples is rs of Algorithm 1: the size of the uniform random
	// bootstrap phase (default 200).
	RandomSamples int
	// MaxIterations caps the number of active-learning iterations
	// (default 6, the count reported for the ODROID experiment).
	MaxIterations int
	// MaxBatch caps the number of new evaluations per iteration; the
	// paper observes 100–300 per iteration (default 300). Excess
	// predicted-front points are thinned evenly along the front.
	MaxBatch int
	// PoolCap bounds the prediction pool X. Spaces up to PoolCap are
	// enumerated exhaustively (the paper predicts over the entire
	// space); larger spaces are re-subsampled to PoolCap points each
	// iteration (default 200000).
	PoolCap int
	// Forest configures the per-objective regressors.
	Forest forest.Options
	// Seed drives every random choice (sampling, pools, forests).
	Seed int64
	// Workers bounds concurrent evaluator calls; 0 = GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives one progress line per phase.
	Logf func(format string, args ...any)
	// Cache, when non-nil, memoizes evaluator results across runs over the
	// same (space, evaluator) pair; see EvalCache. Hit/miss counts are
	// surfaced in IterationStats and Result. The cache sits in front of
	// the evaluation Backend, so local and remote measurements memoize
	// identically.
	Cache *EvalCache
	// Backend, when non-nil, evaluates each batch instead of the run's
	// Evaluator — e.g. a worker.Pool backend that fans batches out to
	// remote worker daemons. When set, the Evaluator argument of
	// Run/RunContext may be nil. When nil, batches run in-process through
	// a LocalBackend over the Evaluator, bounded by Workers.
	Backend Backend
	// OnIteration, when non-nil, receives the statistics of every phase as
	// it completes: first the bootstrap (Iteration 0), then each
	// active-learning round. It is called from the run's goroutine;
	// implementations should return quickly.
	OnIteration func(IterationStats)
	// Journal, when non-nil, durably records every measured batch as it
	// completes inside the evaluation step — the hook the daemon's
	// crash-safe evaluation journal plugs into. Only genuinely measured
	// samples are recorded (replay-served ones are already journaled); a
	// recording failure fails the run, because continuing would silently
	// drop the durability the caller asked for. Measurements that
	// completed before the failure are still returned.
	Journal BatchRecorder
	// Replay, when non-nil, serves previously measured objectives by
	// design-space index before the cache and backend are consulted — the
	// resume half of the journal: replaying a crashed run's journal through
	// a run with identical space, seed, and budgets reconstructs its exact
	// exploration state (same RNG draws, same forest fits, same pools)
	// without re-measuring anything, and continues live at the first
	// unjournaled configuration. Entries are objective vectors of length
	// Objectives; the map is only read.
	Replay map[int64][]float64
	// ReplaySkips complements Replay with the degraded-batch history: a
	// map from design-space index to how many batches of the journaled run
	// skipped that index unmeasured (journal Batch.Unmeasured entries).
	// During replay a pending skip is consumed before Replay is consulted,
	// so a resumed run reproduces the original's degraded batches exactly
	// — an index skipped in one iteration and measured in a later one
	// replays in that same order. The map is copied, never mutated.
	ReplaySkips map[int64]int
	// MaxUnmeasuredFraction bounds graceful degradation. When a batch
	// comes back partially unmeasured — the evaluation backend exhausted
	// its retries on some chunk, or returned fewer results than asked —
	// the run continues without the missing configurations as long as
	// unmeasured/batch ≤ this fraction; above it the run fails as it
	// always has. 0, the default, keeps strict fail-fast behavior; 1
	// tolerates any partial batch (a bootstrap with zero measurements
	// still fails — there would be nothing to train on). Values are
	// clamped to [0,1]. Skipped configurations stay eligible for later
	// rounds, are counted in IterationStats.Unmeasured and
	// Result.Unmeasured, and are journaled (Batch.Unmeasured) so a
	// resumed run degrades byte-identically; the fraction participates in
	// RunFingerprint for the same reason.
	MaxUnmeasuredFraction float64

	// Sampler, Modeler, and Selector plug the three stages of the
	// search-strategy pipeline (see strategy.go). Nil selects the
	// paper-faithful defaults — UniformSampler, ForestModeler,
	// EvenThinSelector — which are byte-identical on the same seed to the
	// engine before the pipeline existed. Non-default stages change the
	// run's random sequence, so runs are only comparable (and journals only
	// replayable) across equal strategies; RunFingerprint captures this.
	Sampler  Sampler
	Modeler  Modeler
	Selector Selector

	// cache is the run's space-bound view of Cache, set by RunContext.
	cache *evalCacheView

	// legacyState forces the pre-incremental per-iteration path: re-encode
	// the training matrix before every fit, rebuild and re-encode the whole
	// prediction pool every round, and predict each objective in its own
	// batch pass. It is the reference implementation the regression tests
	// and benchmarks compare the incremental poolState path against; both
	// paths are byte-identical on the same seed.
	legacyState bool
}

// withDefaults fills every optional field so a zero-valued Options (apart
// from the required Objectives) yields a working run: a non-positive
// MaxBatch would stall the loop at zero new evaluations per iteration and a
// non-positive PoolCap would empty the prediction pool, so both are
// defaulted alongside the sampling and worker budgets.
func (o Options) withDefaults() Options {
	if o.RandomSamples <= 0 {
		o.RandomSamples = 200
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 6
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 300
	}
	if o.PoolCap <= 0 {
		o.PoolCap = 200_000
	}
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	if o.MaxUnmeasuredFraction < 0 {
		o.MaxUnmeasuredFraction = 0
	} else if o.MaxUnmeasuredFraction > 1 {
		o.MaxUnmeasuredFraction = 1
	}
	if o.Sampler == nil {
		o.Sampler = UniformSampler{}
	}
	if o.Modeler == nil {
		o.Modeler = ForestModeler{}
	}
	if o.Selector == nil {
		o.Selector = EvenThinSelector{}
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// RecordedBatch is one completed evaluation batch as handed to a
// BatchRecorder: the phase identity, the genuinely measured samples
// (replay-served ones are excluded — they are already journaled), and
// the design-space indices the batch skipped unmeasured under
// MaxUnmeasuredFraction, in batch order. At least one of Samples and
// Unmeasured is non-empty.
type RecordedBatch struct {
	Iteration int
	Active    bool
	Samples   []Sample
	// Unmeasured lists only live, tolerated skips: an interrupted batch's
	// missing tail is deliberately NOT recorded here, so resume
	// re-measures it instead of skipping it.
	Unmeasured []int64
}

// BatchRecorder receives each measured evaluation batch as it completes —
// see Options.Journal. Implementations must be safe for concurrent use
// with whatever else writes the same journal (e.g. a shutdown checkpoint).
type BatchRecorder interface {
	// RecordBatch records one completed batch (bootstrap or
	// active-learning round).
	RecordBatch(b RecordedBatch) error
}

// Sample is one evaluated configuration.
type Sample struct {
	Index  int64        // design-space index
	Config param.Config // decoded parameter values
	Objs   []float64    // measured objectives
	// ActiveLearning is false for bootstrap (random) samples and true for
	// samples chosen by the predictive model.
	ActiveLearning bool
	// Iteration is 0 for the random phase, i ≥ 1 for the i-th AL round.
	Iteration int
}

// IterationStats summarizes one active-learning round.
type IterationStats struct {
	Iteration          int       // 0 for the bootstrap, i ≥ 1 for AL rounds
	PredictedFrontSize int       // |P|
	NewSamples         int       // |P − X_out| actually evaluated
	TotalSamples       int       // |X_out| after the round
	FrontSize          int       // measured front size after the round
	OOBError           []float64 // per-objective forest OOB MSE (NaN when undefined)
	// OOBSamples counts, per objective, how many training samples the OOB
	// estimate aggregates over. 0 means the matching OOBError is NaN — no
	// sample ever fell out of bag (tiny training sets) — which is distinct
	// from a measured error of zero.
	OOBSamples []int
	// CacheHits/CacheMisses count evaluator memo-cache lookups for this
	// round's batch (both zero when Options.Cache is nil).
	CacheHits   int
	CacheMisses int
	// Unmeasured counts this round's configurations that came back without
	// a measurement and were tolerated under MaxUnmeasuredFraction
	// (replayed skips of a resumed run included). Always 0 when the
	// fraction is 0: strict runs fail instead of degrading.
	Unmeasured int
	// Hypervolume is the hypervolume indicator of the measured front after
	// the phase, with respect to a reference at the measured nadir padded
	// by 10% of the measured per-objective range (both over every valid
	// sample so far). The reference tightens as measurements accumulate, so
	// compare the values as a progress signal, not an absolute indicator
	// against a fixed box (the quality harness computes that one). NaN
	// while undefined — no valid samples yet.
	Hypervolume float64
	// Per-phase wall-clock durations of the round, in loop order: forest
	// fitting, pool construction/encoding, pool prediction (including the
	// predicted-front filter), and hardware evaluation of the new batch.
	// The bootstrap event carries only EvalTime. They make the
	// optimizer-side cost observable end to end (they stream out over the
	// server's /events NDJSON feed).
	FitTime     time.Duration
	EncodeTime  time.Duration
	PredictTime time.Duration
	EvalTime    time.Duration
}

// Result is the outcome of a HyperMapper run.
type Result struct {
	// Samples holds every evaluated configuration in evaluation order:
	// first the random phase, then each AL round. Invalid measurements are
	// kept apart in Invalid, so Samples is always safe to train on.
	Samples []Sample
	// Invalid holds measurements the evaluator marked invalid by returning
	// NaN in any objective — configurations that violate a constraint only
	// the real system knows about. They are only collected under a
	// feasibility-aware strategy (Options.Modeler implementing
	// FeasibilityLabeler): there they feed the feasibility classifier and
	// are excluded from training matrices and fronts. Under the default
	// strategy NaN objectives flow into Samples untouched, preserving the
	// engine's historical behavior.
	Invalid []Sample
	// RandomFront is the measured Pareto front using only the random
	// bootstrap samples (the red curve of Figs. 3–4).
	RandomFront []pareto.Point
	// Front is the final measured Pareto front over all samples (the
	// black curve of Figs. 3–4).
	Front []pareto.Point
	// Iterations records per-round statistics.
	Iterations []IterationStats
	// Forests holds the final per-objective models (e.g. for feature
	// importance inspection).
	Forests []*forest.Forest
	// Converged reports whether the loop stopped because P − X_out = ∅
	// rather than by exhausting MaxIterations.
	Converged bool
	// CacheHits/CacheMisses total the evaluator memo-cache lookups across
	// the whole run, bootstrap included (zero when Options.Cache is nil).
	CacheHits   int
	CacheMisses int
	// Unmeasured totals the configurations tolerated away unmeasured under
	// Options.MaxUnmeasuredFraction across the whole run.
	Unmeasured int

	// byIndex lazily maps design-space index → position in Samples, built
	// on first ByIndex call (and rebuilt if Samples grew since), so
	// FrontSamples is O(samples + front) instead of O(samples × front).
	byIndexMu sync.Mutex
	byIndex   map[int64]int
}

// ByIndex returns the sample with the given design-space index, if present.
// Concurrent readers of a completed Result are safe (the lazy map build is
// locked); it must not race with code that is still appending to Samples.
func (r *Result) ByIndex(idx int64) (Sample, bool) {
	r.byIndexMu.Lock()
	if r.byIndex == nil || len(r.byIndex) != len(r.Samples) {
		m := make(map[int64]int, len(r.Samples))
		for i, s := range r.Samples {
			if _, dup := m[s.Index]; !dup { // keep the first, like the linear scan did
				m[s.Index] = i
			}
		}
		r.byIndex = m
	}
	i, ok := r.byIndex[idx]
	r.byIndexMu.Unlock()
	if !ok {
		return Sample{}, false
	}
	return r.Samples[i], true
}

// ActiveSamples returns only the samples chosen by active learning.
func (r *Result) ActiveSamples() []Sample {
	var out []Sample
	for _, s := range r.Samples {
		if s.ActiveLearning {
			out = append(out, s)
		}
	}
	return out
}

// Run executes Algorithm 1 on the given space and evaluator. It is a thin
// wrapper over RunContext with a background context.
func Run(space *param.Space, eval Evaluator, opts Options) (*Result, error) {
	return RunContext(context.Background(), space, eval, opts)
}

// RunContext executes Algorithm 1 with cooperative cancellation: the
// context is checked after the bootstrap, around every forest fit, and
// before and inside every evaluation batch. On cancellation it returns the
// partial result accumulated so far together with the context's error, so
// callers can inspect or persist what an interrupted exploration did find.
// Evaluations that completed inside an interrupted batch are retained —
// measurements are too expensive to discard — with fronts recomputed over
// everything measured.
func RunContext(ctx context.Context, space *param.Space, eval Evaluator, opts Options) (*Result, error) {
	if space == nil || space.Size() == 0 {
		return nil, errors.New("core: empty design space")
	}
	if eval == nil && opts.Backend == nil {
		return nil, errors.New("core: nil evaluator and no backend")
	}
	if opts.Objectives < 1 {
		return nil, errors.New("core: Objectives must be ≥ 1")
	}
	o := opts.withDefaults()
	if o.Backend == nil {
		o.Backend = &LocalBackend{Eval: eval, Workers: o.Workers}
	}
	if o.Cache != nil {
		o.cache = o.Cache.view(spaceFingerprint(space, o.Objectives))
	}
	if o.legacyState {
		// The reference path re-sorts every node segment during tree
		// training, exactly like the pre-presorted engine; forests stay
		// byte-identical to the fast builder, so the equivalence tests can
		// compare whole runs.
		o.Forest.Reference = true
	}
	rng := rand.New(rand.NewSource(o.Seed))

	res := &Result{}
	evaluated := make(map[int64]int) // space index → position in res.Samples
	finish := func(err error) (*Result, error) {
		res.Front = measuredFront(res.Samples)
		return res, err
	}
	var st *poolState // incremental state; nil on the legacy reference path
	if !o.legacyState {
		st = newPoolState(space, o)
	}
	// addSample appends one measured sample to the result (and, on the
	// incremental path, encodes it into the append-only training matrix).
	addSample := func(s Sample) error {
		if st != nil {
			if err := st.addSample(s); err != nil {
				return err
			}
		}
		res.Samples = append(res.Samples, s)
		evaluated[s.Index] = len(res.Samples) - 1
		return nil
	}

	// Feasibility labeling is active only when the modeler asks for it: the
	// default strategy must not encode extra rows or draw extra RNG values.
	labeler, _ := o.Modeler.(FeasibilityLabeler)
	wantFeas := labeler != nil && labeler.WantsFeasibilityLabels()
	var feasX [][]float64
	var feasY []float64
	addLabel := func(cfg param.Config, valid bool) {
		row := make([]float64, space.Dim())
		space.Encode(cfg, row)
		feasX = append(feasX, row)
		if valid {
			feasY = append(feasY, 1)
		} else {
			feasY = append(feasY, 0)
		}
	}

	// Running per-objective bounds over valid measurements, feeding the
	// per-phase hypervolume stat: reference = nadir + 10% of the range.
	nadir := make([]float64, o.Objectives)
	ideal := make([]float64, o.Objectives)
	for k := range nadir {
		nadir[k] = math.Inf(-1)
		ideal[k] = math.Inf(1)
	}
	frontHypervolume := func(front []pareto.Point) float64 {
		if len(front) == 0 {
			return math.NaN()
		}
		ref := make([]float64, o.Objectives)
		for k := range ref {
			if math.IsInf(nadir[k], -1) {
				return math.NaN()
			}
			ref[k] = nadir[k] + 0.1*(nadir[k]-ideal[k])
		}
		return pareto.Hypervolume(front, ref)
	}

	// ingest routes one measured batch into the run state: valid samples
	// into the training set and result; NaN-marked ones — evaluator-side
	// constraint violations, recognized only under a feasibility-aware
	// strategy — into Result.Invalid and the classifier's labels.
	ingest := func(batch []Sample) error {
		for _, s := range batch {
			if wantFeas {
				invalid := slices.ContainsFunc(s.Objs, math.IsNaN)
				addLabel(s.Config, !invalid)
				if invalid {
					res.Invalid = append(res.Invalid, s)
					if st != nil {
						st.noteInvalid(s)
					}
					evaluated[s.Index] = -1 // measured, but not in res.Samples
					continue
				}
			}
			if err := addSample(s); err != nil {
				return err
			}
			for k, v := range s.Objs {
				if math.IsNaN(v) {
					continue // keep the hypervolume bounds defined
				}
				if v > nadir[k] {
					nadir[k] = v
				}
				if v < ideal[k] {
					ideal[k] = v
				}
			}
		}
		return nil
	}

	// Pending journaled skips of a resumed run, consumed as batches replay.
	// The copy keeps Options.ReplaySkips read-only for the caller.
	var skips map[int64]int
	if len(o.ReplaySkips) > 0 {
		skips = make(map[int64]int, len(o.ReplaySkips))
		for idx, n := range o.ReplaySkips {
			skips[idx] = n
		}
	}

	// ---- Random sampling bootstrap (X_out ← rs samples) ----
	n := o.RandomSamples
	if int64(n) > space.Size() {
		n = int(space.Size())
	}
	bootstrap := o.Sampler.Draw(space, rng, n)
	o.logf("random sampling: evaluating %d configurations", len(bootstrap))
	evalStart := time.Now()
	batch, bo, err := evaluateBatch(ctx, space, bootstrap, o, skips, 0, false)
	evalTime := time.Since(evalStart)
	res.CacheHits += bo.hits
	res.CacheMisses += bo.misses
	res.Unmeasured += bo.unmeasured
	if err := ingest(batch); err != nil {
		return nil, err
	}
	res.RandomFront = measuredFront(res.Samples)
	if err != nil {
		return finish(err)
	}
	if len(batch) == 0 && bo.unmeasured > 0 {
		// Degradation tolerated away the whole bootstrap — there is nothing
		// to train on, and every later fit would fail obscurely.
		return finish(fmt.Errorf("core: bootstrap batch fully unmeasured (%d configurations); cannot train", bo.unmeasured))
	}
	if wantFeas {
		// Probe the space's declared constraint predicate: uniform index
		// draws labeled feasible/infeasible without touching the evaluator.
		// They give the classifier a view of the infeasible region that
		// measured samples alone (drawn feasible by construction) cannot.
		probes := labeler.FeasibilityProbes()
		cfg := make(param.Config, space.Dim())
		for i := 0; i < probes; i++ {
			space.AtIndexInto(rng.Int63n(space.Size()), cfg)
			addLabel(cfg, space.Feasible(cfg))
		}
	}
	o.logf("random sampling: front size %d", len(res.RandomFront))
	o.onIteration(IterationStats{
		NewSamples:   len(batch),
		TotalSamples: len(res.Samples),
		FrontSize:    len(res.RandomFront),
		Hypervolume:  frontHypervolume(res.RandomFront),
		CacheHits:    bo.hits,
		CacheMisses:  bo.misses,
		Unmeasured:   bo.unmeasured,
		EvalTime:     evalTime,
	})

	// ---- Active learning loop ----
	for iter := 1; iter <= o.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		fitStart := time.Now()
		var models *Models
		if st != nil {
			// Warm path: append the fresh batch to the shared presorted
			// matrix and fit from it.
			var cols *forest.Columns
			cols, err = st.columns()
			if err == nil {
				models, err = o.Modeler.Fit(ctx, Training{Cols: cols, Ys: st.ys, FeasX: feasX, FeasY: feasY}, o, iter)
			}
		} else {
			// Legacy reference path: re-encode the training matrix and
			// rebuild the column transpose from scratch, every iteration.
			var x, ys [][]float64
			x, ys, err = trainingMatrix(space, res.Samples, o.Objectives)
			if err == nil {
				var cols *forest.Columns
				cols, err = forest.ColumnsFromRows(x)
				if err == nil {
					models, err = o.Modeler.Fit(ctx, Training{Cols: cols, Ys: ys, FeasX: feasX, FeasY: feasY}, o, iter)
				}
			}
		}
		fitTime := time.Since(fitStart)
		if err != nil {
			if ctx.Err() != nil {
				return finish(ctx.Err())
			}
			return nil, err
		}
		forests := models.Objectives
		oob, oobN := models.OOBError, models.OOBSamples
		res.Forests = forests

		// Predict every objective over the pool and filter the predicted
		// front P. The incremental path reuses the pool encodings and fuses
		// the per-objective sweeps into one pass; the legacy path rebuilds
		// everything per round.
		var predicted []pareto.Point
		var encodeTime, predictTime time.Duration
		if st != nil {
			encStart := time.Now()
			st.pool(rng, evaluated, o.Workers)
			encodeTime = time.Since(encStart)
			predStart := time.Now()
			points := st.predict(forests, o.Workers)
			predicted = pareto.FrontInPlace(points)
			predictTime = time.Since(predStart)
		} else {
			predicted, encodeTime, predictTime = legacyPredict(space, rng, o, evaluated, forests)
		}

		// P − X_out: predicted-front candidates not yet measured, run
		// through the feasibility filter (when a classifier was fit) and
		// handed to the selector to pick this round's batch.
		cands := make([]pareto.Point, 0, len(predicted))
		for _, p := range predicted {
			if _, done := evaluated[p.ID]; !done {
				cands = append(cands, p)
			}
		}
		var feasProbs []float64
		if models.Feasibility != nil && len(cands) > 0 {
			selStart := time.Now()
			feasProbs = predictFeasibility(space, models.Feasibility, cands)
			cands, feasProbs = filterFeasible(cands, feasProbs, labeler.FeasibilityThreshold())
			predictTime += time.Since(selStart)
		}
		todo := o.Selector.Select(Selection{
			Space:       space,
			Candidates:  cands,
			Feasibility: feasProbs,
			MaxBatch:    o.MaxBatch,
		})
		if len(todo) > o.MaxBatch {
			todo = todo[:o.MaxBatch] // clamp custom selectors to the contract
		}
		o.logf("iteration %d: predicted front %d, new configurations %d",
			iter, len(predicted), len(todo))

		if len(todo) == 0 {
			res.Converged = true
			front := measuredFront(res.Samples)
			stats := IterationStats{
				Iteration:          iter,
				PredictedFrontSize: len(predicted),
				TotalSamples:       len(res.Samples),
				FrontSize:          len(front),
				Hypervolume:        frontHypervolume(front),
				OOBError:           oob,
				OOBSamples:         oobN,
				FitTime:            fitTime,
				EncodeTime:         encodeTime,
				PredictTime:        predictTime,
			}
			res.Iterations = append(res.Iterations, stats)
			o.onIteration(stats)
			break
		}

		evalStart := time.Now()
		newSamples, bo, err := evaluateBatch(ctx, space, todo, o, skips, iter, true)
		evalTime := time.Since(evalStart)
		res.CacheHits += bo.hits
		res.CacheMisses += bo.misses
		res.Unmeasured += bo.unmeasured
		if err := ingest(newSamples); err != nil {
			return nil, err
		}
		if err != nil {
			return finish(err)
		}
		front := measuredFront(res.Samples)
		stats := IterationStats{
			Iteration:          iter,
			PredictedFrontSize: len(predicted),
			NewSamples:         len(newSamples),
			TotalSamples:       len(res.Samples),
			FrontSize:          len(front),
			Hypervolume:        frontHypervolume(front),
			OOBError:           oob,
			OOBSamples:         oobN,
			CacheHits:          bo.hits,
			CacheMisses:        bo.misses,
			Unmeasured:         bo.unmeasured,
			FitTime:            fitTime,
			EncodeTime:         encodeTime,
			PredictTime:        predictTime,
			EvalTime:           evalTime,
		}
		res.Iterations = append(res.Iterations, stats)
		o.onIteration(stats)
	}

	res.Front = measuredFront(res.Samples)
	o.logf("done: %d samples, final front size %d", len(res.Samples), len(res.Front))
	return res, nil
}

// legacyPredict is the pre-incremental prediction step, kept as the
// reference the regression tests and BenchmarkALIteration compare against:
// rebuild the pool, decode and encode every pool configuration, run one
// batch prediction per objective, and transpose into per-point objective
// vectors.
func legacyPredict(space *param.Space, rng *rand.Rand, o Options, evaluated map[int64]int, forests []*forest.Forest) (predicted []pareto.Point, encodeTime, predictTime time.Duration) {
	dim := space.Dim()
	encStart := time.Now()
	poolIdx, _ := predictionPool(space, rng, o.Sampler, o.PoolCap, evaluated)
	feats := make([][]float64, len(poolIdx))
	flat := make([]float64, len(poolIdx)*dim)
	cfg := make(param.Config, dim)
	for i, idx := range poolIdx {
		row := flat[i*dim : (i+1)*dim]
		space.AtIndexInto(idx, cfg)
		space.Encode(cfg, row)
		feats[i] = row
	}
	encodeTime = time.Since(encStart)

	predStart := time.Now()
	preds := make([][]float64, o.Objectives)
	for k, f := range forests {
		preds[k] = f.PredictBatch(feats)
	}
	points := make([]pareto.Point, len(poolIdx))
	for i, idx := range poolIdx {
		objs := make([]float64, o.Objectives)
		for k := range preds {
			objs[k] = preds[k][i]
		}
		points[i] = pareto.Point{ID: idx, Objs: objs}
	}
	predicted = pareto.Front(points)
	predictTime = time.Since(predStart)
	return predicted, encodeTime, predictTime
}

func (o Options) onIteration(stats IterationStats) {
	if o.OnIteration != nil {
		o.OnIteration(stats)
	}
}

// predictFeasibility encodes each candidate and asks the classifier for its
// validity probability. Candidate sets are front-sized (tens to hundreds of
// points), so a serial pass is cheap next to the pool prediction.
func predictFeasibility(space *param.Space, cls *forest.Classifier, cands []pareto.Point) []float64 {
	dim := space.Dim()
	cfg := make(param.Config, dim)
	rows := make([][]float64, len(cands))
	flat := make([]float64, len(cands)*dim)
	for i, p := range cands {
		row := flat[i*dim : (i+1)*dim]
		space.AtIndexInto(p.ID, cfg)
		space.Encode(cfg, row)
		rows[i] = row
	}
	return cls.PredictProbs(rows)
}

// filterFeasible drops candidates whose predicted validity probability falls
// below threshold — unless that would drop all of them, in which case the
// classifier is overruled (a stalled run teaches it nothing; measuring its
// least-implausible candidates does).
func filterFeasible(cands []pareto.Point, probs []float64, threshold float64) ([]pareto.Point, []float64) {
	keptC := cands[:0]
	keptP := probs[:0]
	for i, p := range probs {
		if p >= threshold {
			keptC = append(keptC, cands[i])
			keptP = append(keptP, p)
		}
	}
	if len(keptC) == 0 {
		return cands, probs
	}
	return keptC, keptP
}

// batchOutcome carries one evaluateBatch's accounting: memo-cache hit and
// miss counts, plus how many of the batch's configurations ended
// unmeasured (live skips tolerated under MaxUnmeasuredFraction and
// replayed skips of a resumed run alike).
type batchOutcome struct {
	hits, misses int
	unmeasured   int
}

// evaluateBatch measures the given configuration indices through the run's
// Backend, returning samples in the order of idxs plus the batch's
// accounting. skips holds the resumed run's pending journaled skips by
// index (a mutable copy of Options.ReplaySkips, owned by the run loop); a
// pending skip is consumed before Replay is consulted, so an index the
// original run skipped in one batch and measured in a later one replays in
// that same order. Indices present in Options.Replay are served from the
// journal replay and never reach the cache or backend; the rest resolve as
// before: with a cache the batch goes through fetchBatch (cached indices
// served, the miss set evaluated in one backend call, in-flight indices of
// concurrent runs waited on), without one the whole batch goes to the
// backend directly. Genuinely measured samples — and only those — are
// recorded to Options.Journal before returning, so a resumed run never
// re-journals what it replayed.
//
// A batch that comes back partially unmeasured normally fails the run;
// with MaxUnmeasuredFraction > 0 and the unmeasured share within it the
// batch instead degrades: the backend error is swallowed, the live skips
// are journaled (RecordedBatch.Unmeasured) so a resumed run degrades
// byte-identically, and the skipped indices stay eligible for later
// rounds. Cancellation never degrades — on cancellation or intolerable
// backend failure only the evaluations that did complete are returned,
// together with the error (measurements are expensive — an interrupted
// batch must not throw finished ones away); completed measurements are
// still journaled on the way out, without skip entries, so resume
// re-measures the interrupted tail instead of skipping it.
func evaluateBatch(ctx context.Context, space *param.Space, idxs []int64, o Options, skips map[int64]int, iter int, active bool) ([]Sample, batchOutcome, error) {
	var bo batchOutcome
	if err := ctx.Err(); err != nil {
		return nil, bo, err
	}
	cfgs := make([]param.Config, len(idxs))
	for i, idx := range idxs {
		cfgs[i] = space.AtIndex(idx)
	}
	objs := make([][]float64, len(idxs))
	skipped := make([]bool, len(idxs)) // replayed a journaled skip here
	live := make([]int, 0, len(idxs))  // positions not served by replay
	for i, idx := range idxs {
		if n := skips[idx]; n > 0 {
			skips[idx] = n - 1
			skipped[i] = true
			continue
		}
		if rec, ok := o.Replay[idx]; ok {
			objs[i] = append([]float64(nil), rec...)
			continue
		}
		live = append(live, i)
	}
	var err error
	if len(live) > 0 {
		liveIdxs := make([]int64, len(live))
		liveCfgs := make([]param.Config, len(live))
		for j, i := range live {
			liveIdxs[j] = idxs[i]
			liveCfgs[j] = cfgs[i]
		}
		var liveObjs [][]float64
		if o.cache != nil {
			liveObjs, bo.hits, bo.misses, err = o.cache.fetchBatch(ctx, liveIdxs, liveCfgs, o.Backend)
		} else {
			liveObjs, err = o.Backend.EvaluateBatch(ctx, liveCfgs)
		}
		if len(liveObjs) > len(liveIdxs) {
			// A contract violation must fail like the under-length case
			// below, not index past idxs.
			return nil, bo, fmt.Errorf("core: backend returned %d results for a %d-configuration batch", len(liveObjs), len(liveIdxs))
		}
		for j, ob := range liveObjs {
			objs[live[j]] = ob
		}
	}
	out := make([]Sample, 0, len(idxs))
	var measured []Sample   // the live completions, for the journal
	var liveSkipped []int64 // live positions without a measurement, batch order
	for i, ob := range objs {
		if ob == nil {
			bo.unmeasured++
			if !skipped[i] {
				liveSkipped = append(liveSkipped, idxs[i])
			}
			continue // not evaluated: skipped, cancelled, or failed mid-batch
		}
		s := Sample{Index: idxs[i], Config: cfgs[i], Objs: ob, Iteration: iter, ActiveLearning: active}
		out = append(out, s)
		if _, replayed := o.Replay[s.Index]; !replayed {
			measured = append(measured, s)
		}
	}
	// Decide degradation before journaling: a tolerated batch journals its
	// skips, an intolerable or cancelled one must not (its missing tail is
	// re-measured on resume). The fraction is taken over the whole batch,
	// replayed skips included, so a resumed run reaches the same verdict.
	degraded := len(liveSkipped) > 0 && ctx.Err() == nil && o.MaxUnmeasuredFraction > 0 &&
		float64(bo.unmeasured) <= o.MaxUnmeasuredFraction*float64(len(idxs))
	if o.Journal != nil && (len(measured) > 0 || degraded) {
		rec := RecordedBatch{Iteration: iter, Active: active, Samples: measured}
		if degraded {
			rec.Unmeasured = liveSkipped
		}
		if jerr := o.Journal.RecordBatch(rec); jerr != nil {
			return out, bo, fmt.Errorf("core: journaling evaluation batch: %w", jerr)
		}
	}
	if degraded {
		o.logf("batch degraded: %d of %d configurations unmeasured (tolerating ≤ %.3g)",
			bo.unmeasured, len(idxs), o.MaxUnmeasuredFraction)
		err = nil
	} else if err == nil && len(liveSkipped) > 0 {
		err = fmt.Errorf("core: backend returned %d results for a %d-configuration batch", len(out), len(idxs))
	}
	return out, bo, err
}

// trainingMatrix encodes every sample from scratch — the legacy reference
// path; the incremental path keeps the matrix append-only in poolState.
func trainingMatrix(space *param.Space, samples []Sample, objectives int) (x, ys [][]float64, err error) {
	dim := space.Dim()
	x = make([][]float64, len(samples))
	ys = make([][]float64, objectives)
	for k := range ys {
		ys[k] = make([]float64, len(samples))
	}
	for i, s := range samples {
		if len(s.Objs) != objectives {
			return nil, nil, fmt.Errorf("core: evaluator returned %d objectives, want %d", len(s.Objs), objectives)
		}
		row := make([]float64, dim)
		space.Encode(s.Config, row)
		x[i] = row
		for k := 0; k < objectives; k++ {
			ys[k][i] = s.Objs[k]
		}
	}
	return x, ys, nil
}

// fitForests trains one regressor per objective over the shared presorted
// column matrix with per-objective target columns ys. The per-objective
// fits are independent, only read cols, and run in parallel, with the
// worker budget split between them so the tree-level parallelism inside
// each forest.Refit does not oversubscribe the machine by a factor of
// Objectives. Cancellation is checked before each fit starts. Alongside the
// forests it returns each one's OOB error and the sample count behind it
// (0 ⇒ the error is NaN/undefined, not perfect).
func fitForests(ctx context.Context, cols *forest.Columns, ys [][]float64, o Options, iter int) ([]*forest.Forest, []float64, []int, error) {
	// Forest.Workers (or, unset, the run's Workers) bounds the TOTAL
	// tree-fitting parallelism; divide it across the concurrent
	// per-objective fits.
	totalFitWorkers := o.Forest.Workers
	if totalFitWorkers <= 0 {
		totalFitWorkers = o.Workers
	}
	innerWorkers := (totalFitWorkers + o.Objectives - 1) / o.Objectives
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	forests := make([]*forest.Forest, o.Objectives)
	oob := make([]float64, o.Objectives)
	oobN := make([]int, o.Objectives)
	errs := make([]error, o.Objectives)
	par.ForWorkers(o.Objectives, o.Workers, func(k int) {
		if err := ctx.Err(); err != nil {
			errs[k] = err
			return
		}
		fo := o.Forest
		fo.Workers = innerWorkers
		fo.Seed = o.Seed + int64(k)*7_919 + int64(iter)*104_729
		f, err := forest.Refit(cols, ys[k], fo)
		if err != nil {
			errs[k] = err
			return
		}
		forests[k] = f
		oob[k] = f.OOBError()
		oobN[k] = f.OOBSamples()
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return forests, oob, oobN, nil
}

// predictionPool returns the pool X of Algorithm 1: every feasible index
// when the space fits under cap, otherwise up to cap fresh indices drawn by
// the run's sampler plus every evaluated index (so the predicted front can
// stabilize onto measured points and the loop can converge). fresh is the
// length of the leading enumerated-or-drawn segment — on a constrained
// space the sampler can return fewer than poolCap draws, so callers that
// encode the fresh segment separately must not assume it is poolCap long.
func predictionPool(space *param.Space, rng *rand.Rand, sampler Sampler, poolCap int, evaluated map[int64]int) (pool []int64, fresh int) {
	if space.Size() <= int64(poolCap) {
		pool = space.FeasibleIndices()
		return pool, len(pool)
	}
	pool = sampler.Draw(space, rng, poolCap)
	fresh = len(pool)
	seen := make(map[int64]struct{}, len(pool))
	for _, idx := range pool {
		seen[idx] = struct{}{}
	}
	// Append the evaluated indices in sorted order: ranging over the map
	// directly would make pool order — and therefore tie-breaking in the
	// predicted front — vary across runs with an identical seed.
	extra := make([]int64, 0, len(evaluated))
	for idx := range evaluated {
		if _, dup := seen[idx]; !dup {
			extra = append(extra, idx)
		}
	}
	slices.Sort(extra)
	return append(pool, extra...), fresh
}

// measuredFront computes the Pareto front of the measured samples.
func measuredFront(samples []Sample) []pareto.Point {
	points := make([]pareto.Point, len(samples))
	for i, s := range samples {
		points[i] = pareto.Point{ID: s.Index, Objs: s.Objs}
	}
	return pareto.Front(points)
}

// thin reduces idxs to at most n entries spread evenly (idxs keeps the
// predicted-front order, which front construction sorts by the first
// objective, so even striding preserves coverage along the front).
func thin(idxs []int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	if len(idxs) <= n {
		return idxs
	}
	out := make([]int64, 0, n)
	step := float64(len(idxs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, idxs[int(float64(i)*step)])
	}
	return out
}

// FrontSamples maps front points back to their full samples.
func FrontSamples(res *Result) []Sample {
	var out []Sample
	for _, p := range res.Front {
		if s, ok := res.ByIndex(p.ID); ok {
			out = append(out, s)
		}
	}
	slices.SortFunc(out, func(a, b Sample) int { return cmp.Compare(a.Objs[0], b.Objs[0]) })
	return out
}
