// Package core implements HyperMapper, the multi-objective random-forest
// active-learning design-space-exploration framework of the paper
// (Algorithm 1):
//
//	X_out ← rs distinct random configurations;  evaluate them
//	repeat
//	    fit one random forest per objective on (X_out, Y)
//	    predict all objectives over the configuration pool X
//	    P ← predicted Pareto front
//	    evaluate P − X_out on the real system;  add to X_out
//	until P − X_out = ∅ (or iteration/batch budget exhausted)
//
// The package is objective-count agnostic: the paper explores
// (runtime, accuracy) and its predecessor adds power as a third objective;
// both work unchanged.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/forest"
	"repro/internal/par"
	"repro/internal/param"
	"repro/internal/pareto"
)

// Evaluator runs one configuration "on hardware" and returns its objective
// vector (all objectives minimized). Implementations must be safe for
// concurrent use: the optimizer evaluates batches in parallel.
type Evaluator interface {
	Evaluate(cfg param.Config) []float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(cfg param.Config) []float64

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(cfg param.Config) []float64 { return f(cfg) }

// Options configures a HyperMapper run. The zero value of optional fields
// selects the documented defaults; Objectives is required.
type Options struct {
	// Objectives is the number of objective values the evaluator returns.
	Objectives int
	// RandomSamples is rs of Algorithm 1: the size of the uniform random
	// bootstrap phase (default 200).
	RandomSamples int
	// MaxIterations caps the number of active-learning iterations
	// (default 6, the count reported for the ODROID experiment).
	MaxIterations int
	// MaxBatch caps the number of new evaluations per iteration; the
	// paper observes 100–300 per iteration (default 300). Excess
	// predicted-front points are thinned evenly along the front.
	MaxBatch int
	// PoolCap bounds the prediction pool X. Spaces up to PoolCap are
	// enumerated exhaustively (the paper predicts over the entire
	// space); larger spaces are re-subsampled to PoolCap points each
	// iteration (default 200000).
	PoolCap int
	// Forest configures the per-objective regressors.
	Forest forest.Options
	// Seed drives every random choice (sampling, pools, forests).
	Seed int64
	// Workers bounds concurrent evaluator calls; 0 = GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives one progress line per phase.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.RandomSamples <= 0 {
		o.RandomSamples = 200
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 6
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 300
	}
	if o.PoolCap <= 0 {
		o.PoolCap = 200_000
	}
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Sample is one evaluated configuration.
type Sample struct {
	Index  int64        // design-space index
	Config param.Config // decoded parameter values
	Objs   []float64    // measured objectives
	// ActiveLearning is false for bootstrap (random) samples and true for
	// samples chosen by the predictive model.
	ActiveLearning bool
	// Iteration is 0 for the random phase, i ≥ 1 for the i-th AL round.
	Iteration int
}

// IterationStats summarizes one active-learning round.
type IterationStats struct {
	Iteration          int
	PredictedFrontSize int       // |P|
	NewSamples         int       // |P − X_out| actually evaluated
	TotalSamples       int       // |X_out| after the round
	FrontSize          int       // measured front size after the round
	OOBError           []float64 // per-objective forest OOB MSE
}

// Result is the outcome of a HyperMapper run.
type Result struct {
	// Samples holds every evaluated configuration in evaluation order:
	// first the random phase, then each AL round.
	Samples []Sample
	// RandomFront is the measured Pareto front using only the random
	// bootstrap samples (the red curve of Figs. 3–4).
	RandomFront []pareto.Point
	// Front is the final measured Pareto front over all samples (the
	// black curve of Figs. 3–4).
	Front []pareto.Point
	// Iterations records per-round statistics.
	Iterations []IterationStats
	// Forests holds the final per-objective models (e.g. for feature
	// importance inspection).
	Forests []*forest.Forest
	// Converged reports whether the loop stopped because P − X_out = ∅
	// rather than by exhausting MaxIterations.
	Converged bool
}

// ByIndex returns the sample with the given design-space index, if present.
func (r *Result) ByIndex(idx int64) (Sample, bool) {
	for _, s := range r.Samples {
		if s.Index == idx {
			return s, true
		}
	}
	return Sample{}, false
}

// ActiveSamples returns only the samples chosen by active learning.
func (r *Result) ActiveSamples() []Sample {
	var out []Sample
	for _, s := range r.Samples {
		if s.ActiveLearning {
			out = append(out, s)
		}
	}
	return out
}

// Run executes Algorithm 1 on the given space and evaluator.
func Run(space *param.Space, eval Evaluator, opts Options) (*Result, error) {
	if space == nil || space.Size() == 0 {
		return nil, errors.New("core: empty design space")
	}
	if eval == nil {
		return nil, errors.New("core: nil evaluator")
	}
	if opts.Objectives < 1 {
		return nil, errors.New("core: Objectives must be ≥ 1")
	}
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	res := &Result{}
	evaluated := make(map[int64]int) // space index → position in res.Samples

	// ---- Random sampling bootstrap (X_out ← rs samples) ----
	n := o.RandomSamples
	if int64(n) > space.Size() {
		n = int(space.Size())
	}
	bootstrap := space.SampleIndices(rng, n)
	o.logf("random sampling: evaluating %d configurations", len(bootstrap))
	batch := evaluateBatch(space, eval, bootstrap, o.Workers)
	for _, s := range batch {
		s.Iteration = 0
		res.Samples = append(res.Samples, s)
		evaluated[s.Index] = len(res.Samples) - 1
	}
	res.RandomFront = measuredFront(res.Samples)
	o.logf("random sampling: front size %d", len(res.RandomFront))

	// ---- Active learning loop ----
	dim := space.Dim()
	for iter := 1; iter <= o.MaxIterations; iter++ {
		forests, oob, err := fitForests(space, res.Samples, o, iter)
		if err != nil {
			return nil, err
		}
		res.Forests = forests

		poolIdx := predictionPool(space, rng, o.PoolCap, evaluated)
		feats := make([][]float64, len(poolIdx))
		flat := make([]float64, len(poolIdx)*dim)
		cfg := make(param.Config, dim)
		for i, idx := range poolIdx {
			row := flat[i*dim : (i+1)*dim]
			space.AtIndexInto(idx, cfg)
			space.Encode(cfg, row)
			feats[i] = row
		}

		// Predict every objective over the pool.
		preds := make([][]float64, o.Objectives)
		for k, f := range forests {
			preds[k] = f.PredictBatch(feats)
		}
		points := make([]pareto.Point, len(poolIdx))
		for i, idx := range poolIdx {
			objs := make([]float64, o.Objectives)
			for k := range preds {
				objs[k] = preds[k][i]
			}
			points[i] = pareto.Point{ID: idx, Objs: objs}
		}
		predicted := pareto.Front(points)

		// P − X_out: predicted-front configurations not yet measured.
		var todo []int64
		for _, p := range predicted {
			if _, done := evaluated[p.ID]; !done {
				todo = append(todo, p.ID)
			}
		}
		if len(todo) > o.MaxBatch {
			todo = thin(todo, o.MaxBatch)
		}
		o.logf("iteration %d: predicted front %d, new configurations %d",
			iter, len(predicted), len(todo))

		if len(todo) == 0 {
			res.Converged = true
			res.Iterations = append(res.Iterations, IterationStats{
				Iteration:          iter,
				PredictedFrontSize: len(predicted),
				TotalSamples:       len(res.Samples),
				FrontSize:          len(measuredFront(res.Samples)),
				OOBError:           oob,
			})
			break
		}

		newSamples := evaluateBatch(space, eval, todo, o.Workers)
		for _, s := range newSamples {
			s.ActiveLearning = true
			s.Iteration = iter
			res.Samples = append(res.Samples, s)
			evaluated[s.Index] = len(res.Samples) - 1
		}
		front := measuredFront(res.Samples)
		res.Iterations = append(res.Iterations, IterationStats{
			Iteration:          iter,
			PredictedFrontSize: len(predicted),
			NewSamples:         len(newSamples),
			TotalSamples:       len(res.Samples),
			FrontSize:          len(front),
			OOBError:           oob,
		})
	}

	res.Front = measuredFront(res.Samples)
	o.logf("done: %d samples, final front size %d", len(res.Samples), len(res.Front))
	return res, nil
}

// evaluateBatch measures the given configuration indices in parallel,
// returning samples in the order of idxs.
func evaluateBatch(space *param.Space, eval Evaluator, idxs []int64, workers int) []Sample {
	out := make([]Sample, len(idxs))
	par.ForWorkers(len(idxs), workers, func(i int) {
		cfg := space.AtIndex(idxs[i])
		objs := eval.Evaluate(cfg)
		out[i] = Sample{
			Index:  idxs[i],
			Config: cfg,
			Objs:   append([]float64(nil), objs...),
		}
	})
	return out
}

// fitForests trains one regressor per objective on all samples so far.
func fitForests(space *param.Space, samples []Sample, o Options, iter int) ([]*forest.Forest, []float64, error) {
	dim := space.Dim()
	x := make([][]float64, len(samples))
	for i, s := range samples {
		row := make([]float64, dim)
		space.Encode(s.Config, row)
		x[i] = row
	}
	forests := make([]*forest.Forest, o.Objectives)
	oob := make([]float64, o.Objectives)
	for k := 0; k < o.Objectives; k++ {
		y := make([]float64, len(samples))
		for i, s := range samples {
			if len(s.Objs) != o.Objectives {
				return nil, nil, fmt.Errorf("core: evaluator returned %d objectives, want %d", len(s.Objs), o.Objectives)
			}
			y[i] = s.Objs[k]
		}
		fo := o.Forest
		fo.Seed = o.Seed + int64(k)*7_919 + int64(iter)*104_729
		f, err := forest.Fit(x, y, fo)
		if err != nil {
			return nil, nil, err
		}
		forests[k] = f
		oob[k] = f.OOBError()
	}
	return forests, oob, nil
}

// predictionPool returns the pool X of Algorithm 1: the whole space when it
// fits under cap, otherwise cap fresh random indices plus every evaluated
// index (so the predicted front can stabilize onto measured points and the
// loop can converge).
func predictionPool(space *param.Space, rng *rand.Rand, poolCap int, evaluated map[int64]int) []int64 {
	if space.Size() <= int64(poolCap) {
		pool := make([]int64, space.Size())
		for i := range pool {
			pool[i] = int64(i)
		}
		return pool
	}
	pool := space.SampleIndices(rng, poolCap)
	seen := make(map[int64]struct{}, len(pool))
	for _, idx := range pool {
		seen[idx] = struct{}{}
	}
	for idx := range evaluated {
		if _, dup := seen[idx]; !dup {
			pool = append(pool, idx)
		}
	}
	return pool
}

// measuredFront computes the Pareto front of the measured samples.
func measuredFront(samples []Sample) []pareto.Point {
	points := make([]pareto.Point, len(samples))
	for i, s := range samples {
		points[i] = pareto.Point{ID: s.Index, Objs: s.Objs}
	}
	return pareto.Front(points)
}

// thin reduces idxs to at most n entries spread evenly (idxs keeps the
// predicted-front order, which front construction sorts by the first
// objective, so even striding preserves coverage along the front).
func thin(idxs []int64, n int) []int64 {
	if len(idxs) <= n {
		return idxs
	}
	out := make([]int64, 0, n)
	step := float64(len(idxs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, idxs[int(float64(i)*step)])
	}
	return out
}

// FrontSamples maps front points back to their full samples.
func FrontSamples(res *Result) []Sample {
	var out []Sample
	for _, p := range res.Front {
		if s, ok := res.ByIndex(p.ID); ok {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objs[0] < out[j].Objs[0] })
	return out
}
