package core

import (
	"fmt"
	"math/rand"

	"repro/internal/forest"
	"repro/internal/par"
	"repro/internal/param"
	"repro/internal/pareto"
)

// poolState carries the exploration state that is stable across
// active-learning iterations, so the loop stops redoing work the paper's
// Algorithm 1 only needs once:
//
//   - the prediction pool: spaces that fit under PoolCap are encoded into a
//     flat row-major matrix exactly once and reused every iteration; for
//     subsampled spaces only the fresh random draws are encoded per round,
//     with the evaluated-index suffix served from cached encodings;
//   - the training matrix: samples are encoded when they are measured and
//     appended, instead of re-encoding all of X_out before every forest fit;
//   - the prediction scratch: per-objective output columns, the point slice
//     and its objective backing array are reused across iterations, so a
//     steady-state round performs no pool-sized allocations.
//
// The state is bound to one run (one space, one objective count) and is not
// safe for concurrent use; RunContext drives it from a single goroutine.
type poolState struct {
	space   *param.Space
	dim     int
	k       int // objective count
	sampler Sampler

	poolCap    int
	enumerable bool // the whole space fits under poolCap

	poolIdx  []int64   // current pool; for enumerable spaces, built once
	poolFlat []float64 // row-major encodings of poolIdx (len(poolIdx)*dim)

	enc map[int64][]float64 // design-space index → encoded row (evaluated points)

	// Append-only training matrix: one encoded row per measured sample, in
	// evaluation order, plus the per-objective target columns.
	xRows [][]float64
	ys    [][]float64

	// Presorted column-major view of xRows, shared by every objective's
	// forest fit and warm-started across iterations: rows measured since the
	// last fit are appended and their per-feature sorted orders merged
	// incrementally (forest.Columns), so refits never re-transpose or
	// re-argsort the accumulated training set.
	cols     *forest.Columns
	colsRows int // prefix of xRows already appended to cols

	// Prediction scratch, grown on demand and reused.
	pred   [][]float64    // per-objective prediction columns over the pool
	objs   []float64      // point-major objective backing (len(poolIdx)*k)
	points []pareto.Point // pool points handed to the front filter
}

func newPoolState(space *param.Space, o Options) *poolState {
	return &poolState{
		space:      space,
		dim:        space.Dim(),
		k:          o.Objectives,
		sampler:    o.Sampler,
		poolCap:    o.PoolCap,
		enumerable: space.Size() <= int64(o.PoolCap),
		enc:        make(map[int64][]float64),
		ys:         make([][]float64, o.Objectives),
		pred:       make([][]float64, o.Objectives),
	}
}

// addSample encodes the measured configuration once and appends it to the
// training matrix; the row doubles as the cached pool encoding for the
// subsampled evaluated-index suffix.
func (st *poolState) addSample(s Sample) error {
	if len(s.Objs) != st.k {
		return fmt.Errorf("core: evaluator returned %d objectives, want %d", len(s.Objs), st.k)
	}
	row := make([]float64, st.dim)
	st.space.Encode(s.Config, row)
	st.enc[s.Index] = row
	st.xRows = append(st.xRows, row)
	for j := 0; j < st.k; j++ {
		st.ys[j] = append(st.ys[j], s.Objs[j])
	}
	return nil
}

// noteInvalid caches the encoding of a measured-but-invalid configuration
// (NaN objectives under a feasibility strategy): it never joins the
// training matrix, but on subsampled spaces its index sits in the
// evaluated-pool suffix, which is served from these cached rows.
func (st *poolState) noteInvalid(s Sample) {
	row := make([]float64, st.dim)
	st.space.Encode(s.Config, row)
	st.enc[s.Index] = row
}

// columns returns the shared presorted training matrix, first appending any
// rows measured since the previous fit — the warm-start seam of the
// active-learning loop: only the fresh batch is transposed and merged.
func (st *poolState) columns() (*forest.Columns, error) {
	if st.cols == nil {
		st.cols = forest.NewColumns(st.dim)
	}
	if err := st.cols.AppendRows(st.xRows[st.colsRows:]); err != nil {
		return nil, err
	}
	st.colsRows = len(st.xRows)
	return st.cols, nil
}

// pool returns this iteration's prediction pool X with st.poolFlat holding
// its encodings. Enumerable spaces build both exactly once; subsampled
// spaces draw poolCap fresh indices (consuming the rng exactly like
// predictionPool, so seeded runs stay byte-identical across engine
// versions), encode only those, and copy the cached rows for the sorted
// evaluated suffix.
func (st *poolState) pool(rng *rand.Rand, evaluated map[int64]int, workers int) []int64 {
	if st.enumerable {
		if st.poolFlat == nil {
			// For a constrained space the pool is the feasible subset only:
			// the predicted front must never nominate a configuration the
			// evaluator would reject.
			st.poolIdx = st.space.FeasibleIndices()
			st.poolFlat = make([]float64, len(st.poolIdx)*st.dim)
			st.encodeRange(0, len(st.poolIdx), workers)
		}
		return st.poolIdx
	}

	// Same draw (and rng consumption) as the legacy path; on this branch the
	// space exceeds poolCap, so the leading fresh entries are the random
	// draws (poolCap of them, fewer on a tightly constrained space) and the
	// rest is the sorted evaluated suffix, whose encodings are cached.
	pool, fresh := predictionPool(st.space, rng, st.sampler, st.poolCap, evaluated)

	if cap(st.poolFlat) < len(pool)*st.dim {
		st.poolFlat = make([]float64, len(pool)*st.dim)
	}
	st.poolFlat = st.poolFlat[:len(pool)*st.dim]
	st.poolIdx = pool
	st.encodeRange(0, fresh, workers)
	for i, idx := range pool[fresh:] {
		copy(st.poolFlat[(fresh+i)*st.dim:(fresh+i+1)*st.dim], st.enc[idx])
	}
	return pool
}

// encodeRange decodes and encodes pool rows [lo, hi) into poolFlat in
// parallel chunks.
func (st *poolState) encodeRange(lo, hi, workers int) {
	par.ForChunkedWorkers(hi-lo, workers, func(clo, chi int) {
		cfg := make(param.Config, st.dim)
		for i := lo + clo; i < lo+chi; i++ {
			row := st.poolFlat[i*st.dim : (i+1)*st.dim]
			st.space.AtIndexInto(st.poolIdx[i], cfg)
			st.space.Encode(cfg, row)
		}
	})
}

// predict sweeps every objective's forest over the pool in one
// worker-bounded pass: each chunk is predicted tree-major per objective via
// PredictFlatRange and immediately transposed into the point-major backing
// array while the chunk is cache-hot, so no [objectives][pool] intermediate
// is materialized and no per-point Objs slice is allocated. The returned
// points (and any front filtered from them) alias reusable buffers that are
// overwritten by the next call.
func (st *poolState) predict(forests []*forest.Forest, workers int) []pareto.Point {
	n := len(st.poolIdx)
	for j := range st.pred {
		if cap(st.pred[j]) < n {
			st.pred[j] = make([]float64, n)
		}
		st.pred[j] = st.pred[j][:n]
	}
	if cap(st.objs) < n*st.k {
		st.objs = make([]float64, n*st.k)
	}
	st.objs = st.objs[:n*st.k]
	if cap(st.points) < n {
		st.points = make([]pareto.Point, n)
	}
	st.points = st.points[:n]

	par.ForChunkedWorkers(n, workers, func(lo, hi int) {
		for j, f := range forests {
			f.PredictFlatRange(st.poolFlat, st.dim, lo, hi, st.pred[j])
		}
		for i := lo; i < hi; i++ {
			objs := st.objs[i*st.k : (i+1)*st.k : (i+1)*st.k]
			for j := 0; j < st.k; j++ {
				objs[j] = st.pred[j][i]
			}
			st.points[i] = pareto.Point{ID: st.poolIdx[i], Objs: objs}
		}
	})
	return st.points
}
