package core

import (
	"context"
	"errors"

	"repro/internal/par"
	"repro/internal/param"
)

// Backend evaluates one batch of configurations. It is the seam every
// evaluation transport plugs into: the default LocalBackend calls the
// run's Evaluator in-process, worker.Pool fans batches out to remote
// worker daemons over HTTP, and future backends (SSH fleets, k8s jobs,
// device farms) implement the same contract.
//
// The engine resolves its memo-cache *before* calling the backend and
// stores results *after* it returns, so remote and local evaluations
// memoize identically; a backend only ever sees genuine cache misses.
type Backend interface {
	// EvaluateBatch evaluates cfgs and returns exactly one objective
	// vector per configuration, at the matching position. The result
	// order is the contract that keeps seeded runs deterministic across
	// backends: however a batch is sharded, retried, or hedged, position
	// i of the result must hold the objectives of cfgs[i].
	//
	// On cancellation or partial failure implementations return the
	// results that did complete — nil entries mark configurations that
	// were not evaluated — together with a non-nil error. Measurements
	// are too expensive to discard, so the engine retains every non-nil
	// entry even on an error return.
	EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error)
}

// LocalBackend is the default in-process Backend: it evaluates a batch by
// calling Eval for each configuration, bounded to Workers concurrent calls
// (the engine passes its own Workers budget when it wraps a bare
// Evaluator). The Evaluator must be safe for concurrent use.
type LocalBackend struct {
	// Eval measures one configuration; required.
	Eval Evaluator
	// Workers bounds concurrent Eval calls; ≤ 0 selects GOMAXPROCS.
	Workers int
}

// EvaluateBatch implements Backend. Cancellation is checked before each
// evaluation: once the context is done no further Eval calls start, and the
// evaluations that did complete are returned alongside the context error.
func (b *LocalBackend) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	if b.Eval == nil {
		return nil, errors.New("core: LocalBackend with nil Evaluator")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := b.Workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	out := make([][]float64, len(cfgs))
	par.ForWorkers(len(cfgs), workers, func(i int) {
		if ctx.Err() != nil {
			return
		}
		out[i] = append([]float64(nil), b.Eval.Evaluate(cfgs[i])...)
	})
	return out, ctx.Err()
}
