package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/param"
)

func TestBackendOptionMatchesEvaluatorPath(t *testing.T) {
	// An explicit Backend that computes the same objectives must yield a
	// byte-identical seeded run: the backend seam may not perturb sample
	// order, fronts, or rng consumption.
	space := benchSpace(t)
	eval := benchEval(space)
	opts := Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 3,
		MaxBatch:      30,
		Seed:          23,
	}
	plain, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	withBackend := opts
	withBackend.Backend = &LocalBackend{Eval: eval, Workers: 3}
	viaBackend, err := Run(space, nil, withBackend) // nil Evaluator: Backend suffices
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintRun(plain) != fingerprintRun(viaBackend) {
		t.Fatal("explicit Backend diverged from the Evaluator path with an identical seed")
	}
}

func TestNilEvaluatorWithoutBackendErrors(t *testing.T) {
	space := benchSpace(t)
	if _, err := Run(space, nil, Options{Objectives: 2}); err == nil {
		t.Fatal("nil evaluator with no backend should error")
	}
}

// failAfterBackend evaluates normally for the first n configurations across
// all batches, then reports every further configuration as failed.
type failAfterBackend struct {
	eval  Evaluator
	n     int64
	calls atomic.Int64
}

var errBackendDown = errors.New("backend down")

func (b *failAfterBackend) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	var failed bool
	for i, cfg := range cfgs {
		if b.calls.Add(1) > b.n {
			failed = true
			continue
		}
		out[i] = b.eval.Evaluate(cfg)
	}
	if failed {
		return out, errBackendDown
	}
	return out, nil
}

func TestBackendFailurePreservesPartialResults(t *testing.T) {
	// A backend that dies mid-run must surface its error while the engine
	// retains every evaluation that completed, with the front recomputed
	// over them — the same partial-result contract cancellation has.
	space := benchSpace(t)
	backend := &failAfterBackend{eval: benchEval(space), n: 55}
	opts := Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 4,
		MaxBatch:      30,
		Seed:          7,
		Backend:       backend,
	}
	res, err := Run(space, nil, opts)
	if !errors.Is(err, errBackendDown) {
		t.Fatalf("err = %v, want errBackendDown", err)
	}
	if res == nil {
		t.Fatal("failed run should still return the partial result")
	}
	// The bootstrap (40 evaluations) completed; the failure landed inside
	// an AL batch whose finished evaluations are retained.
	if len(res.Samples) < 40 || len(res.Samples) > 55 {
		t.Fatalf("partial result has %d samples, want within [40,55]", len(res.Samples))
	}
	for _, s := range res.Samples {
		if len(s.Objs) != 2 {
			t.Fatalf("retained sample %d has objectives %v", s.Index, s.Objs)
		}
	}
	if len(res.Front) == 0 {
		t.Fatal("partial result should carry a front over completed samples")
	}
}

// shortBackend silently drops the last configuration of every batch.
type shortBackend struct{ eval Evaluator }

func (b shortBackend) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	for i, cfg := range cfgs[:len(cfgs)-1] {
		out[i] = b.eval.Evaluate(cfg)
	}
	return out, nil
}

// longBackend appends a spurious extra objective vector to every batch.
type longBackend struct{ eval Evaluator }

func (b longBackend) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	out := make([][]float64, 0, len(cfgs)+1)
	for _, cfg := range cfgs {
		out = append(out, b.eval.Evaluate(cfg))
	}
	return append(out, []float64{0, 0}), nil
}

func TestBackendOverLongResultIsAnError(t *testing.T) {
	// More results than configurations is the same contract violation as
	// fewer: it must fail the run cleanly, not index past the batch.
	space := benchSpace(t)
	_, err := Run(space, nil, Options{
		Objectives:    2,
		RandomSamples: 20,
		MaxIterations: 1,
		Seed:          3,
		Backend:       longBackend{eval: benchEval(space)},
	})
	if err == nil {
		t.Fatal("over-long backend result should error the run")
	}
}

func TestBackendShortResultIsAnError(t *testing.T) {
	// A backend claiming success while returning fewer results than
	// configurations is a protocol violation the engine must refuse rather
	// than silently under-sample.
	space := benchSpace(t)
	_, err := Run(space, nil, Options{
		Objectives:    2,
		RandomSamples: 20,
		MaxIterations: 1,
		Seed:          3,
		Backend:       shortBackend{eval: benchEval(space)},
	})
	if err == nil {
		t.Fatal("short backend result should error the run")
	}
}

// countingBackend counts how many configurations it evaluated.
type countingBackend struct {
	eval  Evaluator
	evals atomic.Int64
}

func (b *countingBackend) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	out := make([][]float64, len(cfgs))
	for i, cfg := range cfgs {
		b.evals.Add(1)
		out[i] = b.eval.Evaluate(cfg)
	}
	return out, nil
}

func TestBackendResultsMemoizeInCache(t *testing.T) {
	// The memo-cache sits in front of the backend: a warm rerun must be
	// served entirely from cache with zero backend evaluations, and the
	// backend must only ever see genuine misses.
	space := benchSpace(t)
	backend := &countingBackend{eval: benchEval(space)}
	cache := NewEvalCache()
	opts := Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 2,
		Seed:          31,
		Cache:         cache,
		Backend:       backend,
	}
	r1, err := Run(space, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int(backend.evals.Load()) != len(r1.Samples) {
		t.Fatalf("cold run: %d backend evaluations for %d samples", backend.evals.Load(), len(r1.Samples))
	}
	cold := backend.evals.Load()
	r2, err := Run(space, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if backend.evals.Load() != cold {
		t.Fatalf("warm run reached the backend %d times", backend.evals.Load()-cold)
	}
	if r2.CacheHits != len(r2.Samples) {
		t.Fatalf("warm run hits = %d, want %d", r2.CacheHits, len(r2.Samples))
	}
	if fingerprintRun(r1) != fingerprintRun(r2) {
		t.Fatal("cached run diverged from the cold run")
	}
}

func TestLocalBackendCopiesObjectives(t *testing.T) {
	// LocalBackend must copy the evaluator's returned slice: evaluators
	// that reuse an output buffer across calls would otherwise corrupt
	// earlier results in the batch.
	shared := make([]float64, 1)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		shared[0] = cfg[0]
		return shared
	})
	b := &LocalBackend{Eval: eval, Workers: 1}
	out, err := b.EvaluateBatch(context.Background(), []param.Config{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if out[i][0] != want {
			t.Fatalf("out[%d] = %v, want [%g]", i, out[i], want)
		}
	}
}
