package core

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/param"
)

func spillSpace(t *testing.T) *param.Space {
	t.Helper()
	space, err := param.NewSpace(
		param.Grid("x", 0, 1, 8),
		param.Levels("y", 1, 2, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// A second cache over the same directory must serve every measurement the
// first one made, without touching the evaluator.
func TestEvalCacheSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	space := spillSpace(t)
	var calls atomic.Int64
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		calls.Add(1)
		return []float64{cfg[0] + cfg[1], cfg[0] - cfg[1]}
	})
	opts := Options{Objectives: 2, RandomSamples: 10, MaxIterations: 1, MaxBatch: 5, Seed: 3}

	c1 := NewEvalCacheDir(dir)
	opts.Cache = c1
	res1, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	measured := calls.Load()
	if measured == 0 || res1.CacheMisses != int(measured) {
		t.Fatalf("first run: %d evaluator calls, %d misses", measured, res1.CacheMisses)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Restart": a fresh cache over the same directory.
	c2 := NewEvalCacheDir(dir)
	opts.Cache = c2
	res2, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != measured {
		t.Errorf("second run re-measured: %d calls, want %d", calls.Load(), measured)
	}
	if res2.CacheMisses != 0 {
		t.Errorf("second run misses = %d, want 0", res2.CacheMisses)
	}
	if c2.SpillErrors() != 0 {
		t.Errorf("spill errors = %d", c2.SpillErrors())
	}
	if len(res2.Front) != len(res1.Front) {
		t.Errorf("fronts differ across restart: %d vs %d points", len(res2.Front), len(res1.Front))
	}
}

// A torn trailing record in the spill file (crash mid-append) must not
// poison the namespace: intact entries load, the torn one re-measures.
func TestEvalCacheSpillTornTail(t *testing.T) {
	dir := t.TempDir()
	space := spillSpace(t)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 { return []float64{cfg[0], cfg[1]} })
	opts := Options{Objectives: 2, RandomSamples: 8, MaxIterations: 1, MaxBatch: 4, Seed: 5}

	c1 := NewEvalCacheDir(dir)
	opts.Cache = c1
	if _, err := Run(space, eval, opts); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (%v)", files, err)
	}
	f, err := os.OpenFile(files[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"i":999,"o":[1.`)
	f.Close()

	c2 := NewEvalCacheDir(dir)
	opts.Cache = c2
	res, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 {
		t.Errorf("after torn tail, misses = %d, want 0 (intact entries must load)", res.CacheMisses)
	}
	c2.Close()
}

// A spill file from a different space must be refused, leaving the
// namespace memory-only — never serve foreign objectives.
func TestEvalCacheSpillForeignFile(t *testing.T) {
	dir := t.TempDir()
	space := spillSpace(t)
	fp := SpaceFingerprint(space, 2)
	path := spillPath(dir, fp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path,
		[]byte(`{"fingerprint":"some-other-space"}`+"\n"+`{"i":0,"o":[1,2]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewEvalCacheDir(dir)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 { return []float64{cfg[0], cfg[1]} })
	opts := Options{Objectives: 2, RandomSamples: 6, MaxIterations: 1, MaxBatch: 3, Seed: 9, Cache: c}
	res, err := Run(space, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Errorf("foreign spill produced %d hits", res.CacheHits)
	}
	if c.SpillErrors() == 0 {
		t.Error("foreign spill not counted as an error")
	}
	// The foreign file must be untouched.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:34]) != `{"fingerprint":"some-other-space"}` {
		t.Error("foreign spill file was overwritten")
	}
	c.Close()
}

// RemoveSpill deletes the directory so a replaced evaluator cannot be
// served stale measurements; nil and memory-only receivers are no-ops.
func TestEvalCacheRemoveSpill(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "cache")
	c := NewEvalCacheDir(dir)
	space := spillSpace(t)
	v := c.view(SpaceFingerprint(space, 1))
	if _, _, err := v.fetch(context.Background(), 0, func() []float64 { return []float64{1} }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("spill dir not created: %v", err)
	}
	if err := c.RemoveSpill(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("spill dir survived RemoveSpill")
	}
	var nilCache *EvalCache
	if err := nilCache.RemoveSpill(); err != nil {
		t.Errorf("nil RemoveSpill: %v", err)
	}
	if err := NewEvalCache().RemoveSpill(); err != nil {
		t.Errorf("memory-only RemoveSpill: %v", err)
	}
}
