package core

import (
	"math"
	"testing"

	"repro/internal/param"
	"repro/internal/pareto"
)

// TestFrontMonotoneAcrossIterations: the measured front's hypervolume must
// never shrink as iterations add samples (fronts are monotone under set
// growth).
func TestFrontMonotoneAcrossIterations(t *testing.T) {
	space := param.MustSpace(
		param.Grid("a", 0, 5, 50),
		param.Grid("b", 0, 5, 50),
	)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b := cfg[0], cfg[1]
		return []float64{a + 0.3*math.Sin(4*b) + 1, b + 0.3*math.Cos(3*a) + 1}
	})
	res, err := Run(space, eval, Options{
		Objectives:    2,
		RandomSamples: 30,
		MaxIterations: 4,
		MaxBatch:      20,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := [2]float64{8, 8}
	prev := pareto.Hypervolume2D(res.RandomFront, ref)
	// Rebuild the front as of each iteration boundary and check monotone
	// hypervolume growth.
	count := 0
	for _, s := range res.Samples {
		if !s.ActiveLearning {
			count++
		}
	}
	for _, it := range res.Iterations {
		upto := it.TotalSamples
		pts := make([]pareto.Point, 0, upto)
		for _, s := range res.Samples[:upto] {
			pts = append(pts, pareto.Point{ID: s.Index, Objs: s.Objs})
		}
		hv := pareto.Hypervolume2D(pareto.Front(pts), ref)
		if hv+1e-12 < prev {
			t.Fatalf("hypervolume shrank at iteration %d: %v -> %v", it.Iteration, prev, hv)
		}
		prev = hv
	}
	_ = count
}

// TestPredictedParetoTargetsFront: the configurations chosen by active
// learning should on average be closer to the final front than random ones
// were — the mechanism of Algorithm 1.
func TestPredictedParetoTargetsFront(t *testing.T) {
	space := param.MustSpace(
		param.Grid("a", 0, 5, 60),
		param.Grid("b", 0, 5, 60),
	)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b := cfg[0], cfg[1]
		return []float64{a + 1, b + 1}
	})
	res, err := Run(space, eval, Options{
		Objectives:    2,
		RandomSamples: 50,
		MaxIterations: 3,
		MaxBatch:      40,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActiveSamples()) == 0 {
		t.Skip("no AL samples drawn on this seed")
	}
	// Distance of a point to the ideal corner (1,1) in this separable
	// problem is a good front-proximity proxy.
	dist := func(o []float64) float64 {
		return math.Hypot(o[0]-1, o[1]-1)
	}
	sumR, nR, sumA, nA := 0.0, 0, 0.0, 0
	for _, s := range res.Samples {
		if s.ActiveLearning {
			sumA += dist(s.Objs)
			nA++
		} else {
			sumR += dist(s.Objs)
			nR++
		}
	}
	if sumA/float64(nA) >= sumR/float64(nR) {
		t.Fatalf("AL samples (%d, mean dist %.3f) not closer to the ideal than random (%d, %.3f)",
			nA, sumA/float64(nA), nR, sumR/float64(nR))
	}
}

// TestConvergedFlagFalseWhenBudgetExhausted: with a tiny iteration budget
// on a big space the loop must report non-convergence.
func TestConvergedFlagFalseWhenBudgetExhausted(t *testing.T) {
	space := param.MustSpace(
		param.Grid("a", 0, 5, 100),
		param.Grid("b", 0, 5, 100),
		param.Grid("c", 0, 5, 10),
	)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		return []float64{cfg[0] + cfg[2]*0.01, cfg[1]}
	})
	res, err := Run(space, eval, Options{
		Objectives:    2,
		RandomSamples: 20,
		MaxIterations: 1,
		MaxBatch:      5,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot have converged after one capped iteration on a 100k space")
	}
}
