package core

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/forest"
	"repro/internal/param"
	"repro/internal/pareto"
)

// This file defines the search-strategy pipeline: the three pluggable
// stages RunContext's loop is factored into. Algorithm 1 is a composition
// of exactly these decisions —
//
//   - Sampler: which configurations seed the run and populate the
//     prediction pool (the paper draws uniformly);
//   - Modeler: what models are fit on the measurements (the paper fits one
//     regression forest per objective);
//   - Selector: which predicted-front candidates are measured next (the
//     paper takes all of P − X_out, thinned evenly when over budget).
//
// The defaults (UniformSampler, ForestModeler, EvenThinSelector) ARE the
// paper's loop, byte-identical on the same seed to the engine before the
// pipeline existed — they call the same code in the same order with the
// same RNG. The alternates implement the authors' follow-up ("Practical
// design space exploration", MASCOTS 2019): prior-guided sampling, a
// feasibility classifier, and acquisition-ranked batch selection.
//
// Determinism contract: every implementation must be a pure function of
// its inputs (including the RNG state it is handed). Non-default stages
// may consume the run RNG differently than the default — runs are only
// byte-comparable across engine versions when their whole strategy
// matches, which is why RunFingerprint includes the strategy identity.

// ---- Sampler ----

// Sampler draws design-space indices for the run's random phases: the
// bootstrap and, on spaces too large to enumerate under PoolCap, each
// iteration's fresh prediction-pool draw.
type Sampler interface {
	// Draw returns up to n distinct feasible configuration indices, using
	// rng for every random choice. On heavily constrained spaces it may
	// return fewer than n — there may not be n feasible configurations.
	Draw(space *param.Space, rng *rand.Rand, n int) []int64
}

// UniformSampler draws uniformly at random — Algorithm 1's sampling and
// the default. It delegates to Space.SampleIndices with the run RNG,
// consuming it exactly as the pre-pipeline engine did, which is what keeps
// default-strategy runs byte-identical across engine versions.
type UniformSampler struct{}

// Draw implements Sampler.
func (UniformSampler) Draw(space *param.Space, rng *rand.Rand, n int) []int64 {
	return space.SampleIndices(rng, n)
}

// PriorSampler draws from the per-parameter prior weights declared in the
// problem spec (param.Parameter.Priors): levels the spec author believes
// in are sampled proportionally more often, so the bootstrap and the
// prediction pool concentrate where good configurations are expected. On
// a space without priors it degrades to the uniform draw.
type PriorSampler struct{}

// Draw implements Sampler.
func (PriorSampler) Draw(space *param.Space, rng *rand.Rand, n int) []int64 {
	return space.SampleIndicesWeighted(rng, n)
}

// ---- Modeler ----

// Training is one iteration's model-fitting input.
type Training struct {
	// Cols is the presorted column-major training matrix: one row per
	// valid measured sample, in evaluation order (warm-started across
	// iterations on the incremental path).
	Cols *forest.Columns
	// Ys holds the per-objective target columns, aligned with Cols rows.
	Ys [][]float64
	// FeasX/FeasY are encoded feasibility observations — rows labeled 1
	// (valid) or 0 (invalid) — collected by the engine only when the
	// modeler implements FeasibilityLabeler. They accumulate across
	// iterations: constraint probes drawn after the bootstrap, plus every
	// measured outcome.
	FeasX [][]float64
	FeasY []float64
}

// Models is a Modeler's output: the per-objective regressors Algorithm 1
// predicts the pool with, their OOB diagnostics, and an optional
// feasibility classifier.
type Models struct {
	// Objectives holds one fitted forest per objective, in order.
	Objectives []*forest.Forest
	// OOBError/OOBSamples are the per-objective OOB MSE (NaN when
	// undefined) and the sample counts behind them.
	OOBError   []float64
	OOBSamples []int
	// Feasibility, when non-nil, predicts the probability a configuration
	// is valid; the engine filters predicted-front candidates whose
	// probability falls below the modeler's threshold, and selectors may
	// down-weight scores by it.
	Feasibility *forest.Classifier
}

// Modeler fits one iteration's models from the accumulated measurements.
type Modeler interface {
	Fit(ctx context.Context, tr Training, o Options, iter int) (*Models, error)
}

// FeasibilityLabeler marks modelers that want feasibility observations
// collected. The engine then draws constraint probes after the bootstrap
// and labels every measured outcome — extra RNG consumption, so enabling
// it (like any non-default stage) changes the run's random sequence.
type FeasibilityLabeler interface {
	// WantsFeasibilityLabels reports whether Training.FeasX/FeasY should
	// be populated.
	WantsFeasibilityLabels() bool
	// FeasibilityProbes is how many constraint observations to draw right
	// after the bootstrap (uniform index draws labeled by the space's
	// predicate, no evaluator calls).
	FeasibilityProbes() int
	// FeasibilityThreshold is the candidate-filter cutoff: predicted-front
	// points whose predicted validity probability falls below it are
	// dropped before selection — unless that would drop every candidate,
	// in which case the filter stands aside rather than stall the run.
	FeasibilityThreshold() float64
}

// ForestModeler fits one regression forest per objective — Algorithm 1's
// models, and the default.
type ForestModeler struct{}

// Fit implements Modeler.
func (ForestModeler) Fit(ctx context.Context, tr Training, o Options, iter int) (*Models, error) {
	forests, oob, oobN, err := fitForests(ctx, tr.Cols, tr.Ys, o, iter)
	if err != nil {
		return nil, err
	}
	return &Models{Objectives: forests, OOBError: oob, OOBSamples: oobN}, nil
}

// feasibilitySeedOffset places the feasibility forest's seed stream away
// from the per-objective streams (o.Seed + k·7919 + iter·104729).
const feasibilitySeedOffset = 611_953

// FeasibilityModeler fits the per-objective forests plus a third forest in
// classification mode (forest.Classifier), trained on observed
// valid/invalid outcomes. It complements declared param.Space constraint
// predicates: the classifier learns the feasible region from observations,
// so predicted-front candidates that smell infeasible are filtered (and
// down-weighted by acquisition selectors) even where the predicate is too
// expensive to enumerate — or where invalidity only shows up as a failed
// measurement. The zero value selects the documented defaults.
type FeasibilityModeler struct {
	// Probes is the number of constraint observations drawn after the
	// bootstrap (default 512).
	Probes int
	// Threshold is the candidate-filter cutoff (default 0.5).
	Threshold float64
}

// WantsFeasibilityLabels implements FeasibilityLabeler.
func (FeasibilityModeler) WantsFeasibilityLabels() bool { return true }

// FeasibilityProbes implements FeasibilityLabeler.
func (m FeasibilityModeler) FeasibilityProbes() int {
	if m.Probes > 0 {
		return m.Probes
	}
	return 512
}

// FeasibilityThreshold implements FeasibilityLabeler.
func (m FeasibilityModeler) FeasibilityThreshold() float64 {
	if m.Threshold > 0 {
		return m.Threshold
	}
	return 0.5
}

// Fit implements Modeler: the default per-objective fit, plus the
// feasibility classifier when both classes have been observed (a one-class
// training set would yield a constant classifier that filters nothing but
// still costs a fit).
func (m FeasibilityModeler) Fit(ctx context.Context, tr Training, o Options, iter int) (*Models, error) {
	models, err := ForestModeler{}.Fit(ctx, tr, o, iter)
	if err != nil {
		return nil, err
	}
	if len(tr.FeasX) > 0 && hasBothClasses(tr.FeasY) {
		fo := o.Forest
		fo.Workers = o.Workers
		fo.Seed = o.Seed + feasibilitySeedOffset + int64(iter)*104_729
		cls, err := forest.FitClassifier(tr.FeasX, tr.FeasY, fo)
		if err != nil {
			return nil, err
		}
		models.Feasibility = cls
	}
	return models, nil
}

func hasBothClasses(y []float64) bool {
	var saw0, saw1 bool
	for _, v := range y {
		if v == 0 {
			saw0 = true
		} else {
			saw1 = true
		}
		if saw0 && saw1 {
			return true
		}
	}
	return false
}

// ---- Selector ----

// Selection is a Selector's input: one iteration's unevaluated
// predicted-front candidates.
type Selection struct {
	// Space is the run's design space.
	Space *param.Space
	// Candidates are the predicted-front points not yet measured, in front
	// order (ascending first objective). Their Objs slices alias engine
	// buffers that the next iteration overwrites — selectors must not
	// retain them past Select.
	Candidates []pareto.Point
	// Feasibility, when non-nil, is the per-candidate predicted validity
	// probability from the feasibility classifier, aligned with
	// Candidates.
	Feasibility []float64
	// MaxBatch caps how many indices Select may return.
	MaxBatch int
}

// Selector chooses which predicted-front candidates to measure.
type Selector interface {
	// Select returns at most MaxBatch candidate IDs to evaluate, drawn
	// from Selection.Candidates. Implementations must be deterministic.
	Select(sel Selection) []int64
}

// EvenThinSelector is Algorithm 1's batch choice and the default: measure
// every candidate, thinning evenly along the front when over budget —
// byte-identical to the engine's historical thinning.
type EvenThinSelector struct{}

// Select implements Selector.
func (EvenThinSelector) Select(sel Selection) []int64 {
	todo := pareto.IDs(sel.Candidates)
	if len(todo) > sel.MaxBatch {
		todo = thin(todo, sel.MaxBatch)
	}
	return todo
}

// AcquisitionSelector ranks candidates by their contribution to the
// predicted front instead of taking an even slice: with two objectives
// each candidate is scored by its exclusive hypervolume contribution
// within the candidate set (how much front area only it covers), with
// three or more by its NSGA-II crowding distance (boundary candidates
// score +Inf, so the extremes always survive). When a feasibility
// classifier is active, scores are down-weighted by the predicted validity
// probability. The MaxBatch highest-scoring candidates are returned in
// front order; ties break by ascending index, so selection is
// deterministic.
type AcquisitionSelector struct{}

// Select implements Selector.
func (AcquisitionSelector) Select(sel Selection) []int64 {
	cands := sel.Candidates
	if len(cands) <= sel.MaxBatch {
		return pareto.IDs(cands)
	}
	scores := contributionScores(cands)
	for i, p := range sel.Feasibility {
		if p <= 0 {
			scores[i] = 0 // not scores[i] *= 0: Inf·0 would poison the sort with NaN
		} else {
			scores[i] *= p
		}
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if scores[a] != scores[b] {
			return cmp.Compare(scores[b], scores[a]) // highest score first
		}
		return cmp.Compare(cands[a].ID, cands[b].ID)
	})
	order = order[:sel.MaxBatch]
	// Evaluate in front order, like even thinning does, so downstream
	// order-sensitive artifacts (journal records, cache walks) stay
	// front-ordered regardless of the selector.
	slices.Sort(order)
	ids := make([]int64, len(order))
	for i, j := range order {
		ids[i] = cands[j].ID
	}
	return ids
}

// contributionScores scores each candidate of a predicted front by how
// much of the front only it covers.
func contributionScores(cands []pareto.Point) []float64 {
	if len(cands) == 0 {
		return nil
	}
	if len(cands[0].Objs) == 2 {
		return hvContributions2D(cands)
	}
	return crowdingDistances(cands)
}

// hvContributions2D computes exclusive hypervolume contributions of
// front-ordered 2-objective candidates (ascending obj0, descending obj1)
// against a local reference: the candidate nadir padded by 10% of the
// candidate range, so boundary candidates keep a finite positive score.
func hvContributions2D(cands []pareto.Point) []float64 {
	n := len(cands)
	max0, max1 := cands[0].Objs[0], cands[0].Objs[1]
	min0, min1 := max0, max1
	for _, p := range cands[1:] {
		max0 = math.Max(max0, p.Objs[0])
		min0 = math.Min(min0, p.Objs[0])
		max1 = math.Max(max1, p.Objs[1])
		min1 = math.Min(min1, p.Objs[1])
	}
	ref0 := max0 + 0.1*(max0-min0)
	ref1 := max1 + 0.1*(max1-min1)
	if ref0 == max0 {
		ref0 = max0 + 1 // degenerate range: any positive pad works
	}
	if ref1 == max1 {
		ref1 = max1 + 1
	}
	out := make([]float64, n)
	for i, p := range cands {
		xNext := ref0
		if i+1 < n {
			xNext = cands[i+1].Objs[0]
		}
		yPrev := ref1
		if i > 0 {
			yPrev = cands[i-1].Objs[1]
		}
		w := xNext - p.Objs[0]
		h := yPrev - p.Objs[1]
		if w < 0 || h < 0 {
			// Defensive: candidates that are not in strict front order
			// contribute nothing rather than a negative area.
			continue
		}
		out[i] = w * h
	}
	return out
}

// crowdingDistances is the NSGA-II density estimate for k ≥ 3 objectives:
// per objective, the normalized gap between each candidate's neighbors,
// summed; boundary candidates get +Inf.
func crowdingDistances(cands []pareto.Point) []float64 {
	n := len(cands)
	k := len(cands[0].Objs)
	out := make([]float64, n)
	order := make([]int, n)
	for j := 0; j < k; j++ {
		for i := range order {
			order[i] = i
		}
		slices.SortFunc(order, func(a, b int) int {
			if cands[a].Objs[j] != cands[b].Objs[j] {
				return cmp.Compare(cands[a].Objs[j], cands[b].Objs[j])
			}
			return cmp.Compare(cands[a].ID, cands[b].ID)
		})
		out[order[0]] = math.Inf(1)
		out[order[n-1]] = math.Inf(1)
		span := cands[order[n-1]].Objs[j] - cands[order[0]].Objs[j]
		if span <= 0 {
			continue
		}
		for i := 1; i < n-1; i++ {
			oi := order[i]
			if math.IsInf(out[oi], 1) {
				continue
			}
			out[oi] += (cands[order[i+1]].Objs[j] - cands[order[i-1]].Objs[j]) / span
		}
	}
	return out
}

// ---- Strategy resolution (the wire names the server and tools speak) ----

// NewSampler resolves a sampler by name: "" or "uniform" selects
// UniformSampler, "prior" selects PriorSampler.
func NewSampler(name string) (Sampler, error) {
	switch name {
	case "", "uniform":
		return UniformSampler{}, nil
	case "prior":
		return PriorSampler{}, nil
	default:
		return nil, fmt.Errorf(`core: unknown sampler %q (want "uniform" or "prior")`, name)
	}
}

// NewSelector resolves a selector by name: "" or "even-thin" selects
// EvenThinSelector, "acquisition" selects AcquisitionSelector.
func NewSelector(name string) (Selector, error) {
	switch name {
	case "", "even-thin":
		return EvenThinSelector{}, nil
	case "acquisition":
		return AcquisitionSelector{}, nil
	default:
		return nil, fmt.Errorf(`core: unknown selector %q (want "even-thin" or "acquisition")`, name)
	}
}

// NewModeler returns the modeler for a strategy request: the default
// per-objective forests, with the feasibility classifier stacked on when
// asked.
func NewModeler(feasibility bool) Modeler {
	if feasibility {
		return FeasibilityModeler{}
	}
	return ForestModeler{}
}

// samplerName / modelerName / selectorName give each stage a stable wire
// name for RunFingerprint: resume must refuse a journal recorded under a
// different strategy, because the RNG sequences would diverge. Custom
// implementations share the name "custom" — close enough for a refusal,
// which is the safe direction.
func samplerName(s Sampler) string {
	switch s.(type) {
	case nil, UniformSampler, *UniformSampler:
		return "uniform"
	case PriorSampler, *PriorSampler:
		return "prior"
	default:
		return "custom"
	}
}

func modelerName(m Modeler) string {
	switch m.(type) {
	case nil, ForestModeler, *ForestModeler:
		return "forest"
	case FeasibilityModeler, *FeasibilityModeler:
		return "feasibility"
	default:
		return "custom"
	}
}

func selectorName(s Selector) string {
	switch s.(type) {
	case nil, EvenThinSelector, *EvenThinSelector:
		return "even-thin"
	case AcquisitionSelector, *AcquisitionSelector:
		return "acquisition"
	default:
		return "custom"
	}
}
