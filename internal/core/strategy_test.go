package core

import (
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/param"
	"repro/internal/pareto"
)

// TestDefaultStrategyByteIdentical locks the refactor's core promise: a run
// with explicitly wired default stages is byte-identical to a run with nil
// strategy fields — the pipeline seams add no RNG draws and change no
// ordering. PriorSampler on a space without declared priors degrades to the
// uniform draw, so it is byte-identical too.
func TestDefaultStrategyByteIdentical(t *testing.T) {
	space := benchSpace(t)
	opts := Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 3,
		MaxBatch:      30,
		Seed:          23,
	}
	base, err := Run(space, benchEval(space), opts)
	if err != nil {
		t.Fatal(err)
	}
	explicit := opts
	explicit.Sampler = UniformSampler{}
	explicit.Modeler = ForestModeler{}
	explicit.Selector = EvenThinSelector{}
	wired, err := Run(space, benchEval(space), explicit)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintRun(base) != fingerprintRun(wired) {
		t.Fatal("explicit default stages diverged from nil strategy fields")
	}

	priorless := opts
	priorless.Sampler = PriorSampler{}
	viaPriors, err := Run(space, benchEval(space), priorless)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintRun(base) != fingerprintRun(viaPriors) {
		t.Fatal("PriorSampler on a priorless space diverged from the uniform draw")
	}
}

// TestPriorSamplerConcentratesBootstrap checks the prior-guided stage end to
// end: with priors pinning parameter "c" to level 1, every bootstrap draw
// lands there, and the run still completes normally.
func TestPriorSamplerConcentratesBootstrap(t *testing.T) {
	s := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3),
	)
	params := s.Params()
	params[2].Priors = []float64{1, 0, 0}
	space, err := param.NewSpace(params...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 60,
		MaxIterations: 1,
		MaxBatch:      20,
		Seed:          7,
		Sampler:       PriorSampler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range res.Samples {
		if !smp.ActiveLearning && smp.Config[2] != 1 {
			t.Fatalf("bootstrap drew c=%v despite a zero prior", smp.Config[2])
		}
	}
}

// nanBelt wraps an evaluator with a hidden validity rule the space's
// predicate does not know: configurations with a+b in (3, 4] fail at
// measurement time and come back as NaN.
func nanBelt(inner Evaluator) Evaluator {
	return EvaluatorFunc(func(cfg param.Config) []float64 {
		if s := cfg[0] + cfg[1]; s > 3 && s <= 4 {
			return []float64{math.NaN(), math.NaN()}
		}
		return inner.Evaluate(cfg)
	})
}

// TestFeasibilityStrategySegregatesInvalid runs the feasibility modeler
// against an evaluator with a hidden infeasible belt: NaN measurements must
// land in Result.Invalid (never in Samples or the fronts), and the run must
// still converge on the valid region.
func TestFeasibilityStrategySegregatesInvalid(t *testing.T) {
	space := benchSpace(t)
	res, err := Run(space, nanBelt(benchEval(space)), Options{
		Objectives:    2,
		RandomSamples: 60,
		MaxIterations: 3,
		MaxBatch:      40,
		Seed:          11,
		Modeler:       FeasibilityModeler{Probes: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invalid) == 0 {
		t.Fatal("the NaN belt produced no invalid samples — the test lost its teeth")
	}
	for _, smp := range res.Samples {
		if slices.ContainsFunc(smp.Objs, math.IsNaN) {
			t.Fatalf("NaN objectives leaked into Samples at index %d", smp.Index)
		}
	}
	for _, smp := range res.Invalid {
		if !slices.ContainsFunc(smp.Objs, math.IsNaN) {
			t.Fatalf("valid measurement misfiled into Invalid at index %d", smp.Index)
		}
	}
	if len(res.Front) == 0 {
		t.Fatal("no front over the valid region")
	}
	for _, p := range res.Front {
		if slices.ContainsFunc(p.Objs, math.IsNaN) {
			t.Fatalf("front carries a NaN point (index %d)", p.ID)
		}
	}
	// An invalid index must never be measured twice.
	seen := make(map[int64]int)
	for _, smp := range res.Invalid {
		seen[smp.Index]++
		if seen[smp.Index] > 1 {
			t.Fatalf("index %d measured invalid %d times", smp.Index, seen[smp.Index])
		}
		if _, ok := res.ByIndex(smp.Index); ok {
			t.Fatalf("index %d is in both Samples and Invalid", smp.Index)
		}
	}
}

// TestDefaultStrategyIgnoresNaN pins the compatibility contract: without a
// feasibility-aware modeler, NaN objectives flow into Samples exactly as the
// engine always let them — Result.Invalid stays empty.
func TestDefaultStrategyIgnoresNaN(t *testing.T) {
	space := benchSpace(t)
	res, err := Run(space, nanBelt(benchEval(space)), Options{
		Objectives:    2,
		RandomSamples: 60,
		MaxIterations: 1,
		MaxBatch:      20,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invalid) != 0 {
		t.Fatalf("default strategy filed %d samples as invalid", len(res.Invalid))
	}
	sawNaN := false
	for _, smp := range res.Samples {
		if slices.ContainsFunc(smp.Objs, math.IsNaN) {
			sawNaN = true
			break
		}
	}
	if !sawNaN {
		t.Fatal("expected NaN measurements among the bootstrap samples")
	}
}

// TestSelectorsNeverEmitInfeasible is the constrained-run regression test of
// the pipeline: on a space with a declared predicate, no selector — old or
// new, with or without the feasibility classifier, on enumerable and
// subsampled pools — may ever hand an infeasible configuration to the
// evaluator.
func TestSelectorsNeverEmitInfeasible(t *testing.T) {
	cases := []struct {
		name     string
		selector Selector
		modeler  Modeler
	}{
		{"even-thin", EvenThinSelector{}, nil},
		{"acquisition", AcquisitionSelector{}, nil},
		{"even-thin-feasibility", EvenThinSelector{}, FeasibilityModeler{Probes: 64}},
		{"acquisition-feasibility", AcquisitionSelector{}, FeasibilityModeler{Probes: 64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, poolCap := range []int{0, 200} {
				space := constrainedSpace(t)
				checked := 0
				guard := EvaluatorFunc(func(cfg param.Config) []float64 {
					if !space.Feasible(cfg) {
						t.Errorf("poolCap=%d: evaluator handed infeasible config %v", poolCap, cfg)
					}
					checked++
					return benchEval(space).Evaluate(cfg)
				})
				res, err := Run(space, guard, Options{
					Objectives:    2,
					RandomSamples: 40,
					MaxIterations: 3,
					MaxBatch:      30,
					PoolCap:       poolCap,
					Seed:          9,
					Selector:      tc.selector,
					Modeler:       tc.modeler,
					Workers:       1, // serialize so `checked` needs no lock
				})
				if err != nil {
					t.Fatal(err)
				}
				if checked == 0 || len(res.Samples) == 0 {
					t.Fatalf("poolCap=%d: nothing evaluated", poolCap)
				}
			}
		})
	}
}

func selPoint(id int64, objs ...float64) pareto.Point { return pareto.Point{ID: id, Objs: objs} }

// frontCands is a strictly front-ordered candidate set (ascending obj0,
// descending obj1) for selector unit tests.
func frontCands() []pareto.Point {
	return []pareto.Point{
		selPoint(10, 0, 10),
		selPoint(11, 1, 6),
		selPoint(12, 2, 5.5), // tiny exclusive area: crowded between 11 and 13
		selPoint(13, 3, 5),
		selPoint(14, 9, 0),
	}
}

func TestAcquisitionSelectorUnderBudgetTakesAll(t *testing.T) {
	got := AcquisitionSelector{}.Select(Selection{Candidates: frontCands(), MaxBatch: 5})
	want := []int64{10, 11, 12, 13, 14}
	if !slices.Equal(got, want) {
		t.Fatalf("Select = %v, want all of %v", got, want)
	}
}

func TestAcquisitionSelectorRanksByContribution(t *testing.T) {
	got := AcquisitionSelector{}.Select(Selection{Candidates: frontCands(), MaxBatch: 3})
	if len(got) != 3 {
		t.Fatalf("Select returned %d ids, want 3", len(got))
	}
	// The crowded point 12 has the smallest exclusive contribution; the
	// extremes (10, 14) dominate the scores. Output stays front-ordered.
	if slices.Contains(got, 12) {
		t.Fatalf("Select = %v kept the lowest-contribution candidate", got)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("Select = %v is not in front order", got)
	}
	// Determinism: same input, same output.
	again := AcquisitionSelector{}.Select(Selection{Candidates: frontCands(), MaxBatch: 3})
	if !slices.Equal(got, again) {
		t.Fatalf("Select is not deterministic: %v vs %v", got, again)
	}
}

func TestAcquisitionSelectorFeasibilityDownweights(t *testing.T) {
	// Candidate 14 owns the largest corner area but is predicted almost
	// surely infeasible — the feasibility weight must push it out.
	feas := []float64{1, 1, 0.9, 1, 0}
	got := AcquisitionSelector{}.Select(Selection{
		Candidates:  frontCands(),
		Feasibility: feas,
		MaxBatch:    3,
	})
	if slices.Contains(got, 14) {
		t.Fatalf("Select = %v kept a zero-feasibility candidate over viable ones", got)
	}
}

func TestAcquisitionSelectorCrowdingForThreeObjectives(t *testing.T) {
	cands := []pareto.Point{
		selPoint(1, 0, 5, 5),
		selPoint(2, 5, 0, 5),
		selPoint(3, 5, 5, 0),
		selPoint(4, 2.5, 2.5, 4.9), // interior: finite crowding distance
	}
	got := AcquisitionSelector{}.Select(Selection{Candidates: cands, MaxBatch: 3})
	want := []int64{1, 2, 3} // the boundary points score +Inf per objective
	if !slices.Equal(got, want) {
		t.Fatalf("Select = %v, want the boundary candidates %v", got, want)
	}
}

func TestEvenThinSelectorMatchesThin(t *testing.T) {
	cands := frontCands()
	got := EvenThinSelector{}.Select(Selection{Candidates: cands, MaxBatch: 2})
	want := thin(pareto.IDs(cands), 2)
	if !slices.Equal(got, want) {
		t.Fatalf("Select = %v, want thin's %v", got, want)
	}
	all := EvenThinSelector{}.Select(Selection{Candidates: cands, MaxBatch: 10})
	if !slices.Equal(all, pareto.IDs(cands)) {
		t.Fatalf("under budget Select = %v, want every candidate", all)
	}
}

// TestThinEdgeCases covers the guards and the stride rounding: n ≤ 0, n ≥
// len, and large len/n ratios where naive rounding could emit duplicates or
// run past the slice.
func TestThinEdgeCases(t *testing.T) {
	idxs := make([]int64, 1000)
	for i := range idxs {
		idxs[i] = int64(i)
	}
	if got := thin(idxs, 0); got != nil {
		t.Fatalf("thin(_, 0) = %v, want nil", got)
	}
	if got := thin(idxs, -5); got != nil {
		t.Fatalf("thin(_, -5) = %v, want nil", got)
	}
	if got := thin(idxs, len(idxs)); len(got) != len(idxs) {
		t.Fatalf("thin(_, len) dropped entries: %d", len(got))
	}
	if got := thin(idxs, len(idxs)+1); len(got) != len(idxs) {
		t.Fatalf("thin(_, len+1) changed the slice: %d", len(got))
	}
	for _, n := range []int{1, 2, 3, 7, 333, 999} {
		got := thin(idxs, n)
		if len(got) != n {
			t.Fatalf("thin(1000, %d) returned %d entries", n, len(got))
		}
		if got[0] != idxs[0] {
			t.Fatalf("thin(1000, %d) dropped the front's first point", n)
		}
		if !slices.IsSorted(got) {
			t.Fatalf("thin(1000, %d) broke front order", n)
		}
		seen := make(map[int64]bool, n)
		for _, id := range got {
			if seen[id] {
				t.Fatalf("thin(1000, %d) emitted duplicate %d", n, id)
			}
			seen[id] = true
		}
	}
	// Step rounding at an awkward ratio: 10 from 13 must stay in bounds and
	// unique (step 1.3 exercises the float stride).
	short := idxs[:13]
	got := thin(short, 10)
	if len(got) != 10 {
		t.Fatalf("thin(13, 10) returned %d entries", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("thin(13, 10) not strictly increasing: %v", got)
		}
	}
}

// TestHypervolumeStatPopulated checks the per-iteration hypervolume signal:
// defined from the bootstrap on (2-objective runs always measure a spread),
// and carried on every AL round event.
func TestHypervolumeStatPopulated(t *testing.T) {
	space := benchSpace(t)
	var events []IterationStats
	_, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 2,
		MaxBatch:      30,
		Seed:          13,
		OnIteration:   func(s IterationStats) { events = append(events, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events", len(events))
	}
	for i, ev := range events {
		if math.IsNaN(ev.Hypervolume) || ev.Hypervolume <= 0 {
			t.Fatalf("event %d hypervolume = %v, want > 0", i, ev.Hypervolume)
		}
	}
}

func TestStrategyResolution(t *testing.T) {
	for _, name := range []string{"", "uniform", "prior"} {
		if _, err := NewSampler(name); err != nil {
			t.Fatalf("NewSampler(%q): %v", name, err)
		}
	}
	if _, err := NewSampler("bogus"); err == nil {
		t.Fatal("NewSampler accepted an unknown name")
	}
	for _, name := range []string{"", "even-thin", "acquisition"} {
		if _, err := NewSelector(name); err != nil {
			t.Fatalf("NewSelector(%q): %v", name, err)
		}
	}
	if _, err := NewSelector("bogus"); err == nil {
		t.Fatal("NewSelector accepted an unknown name")
	}
	if _, ok := NewModeler(true).(FeasibilityModeler); !ok {
		t.Fatal("NewModeler(true) is not a FeasibilityModeler")
	}
	if _, ok := NewModeler(false).(ForestModeler); !ok {
		t.Fatal("NewModeler(false) is not a ForestModeler")
	}
}

// TestRunFingerprintEncodesStrategy: fingerprints gate journal resume, and
// strategies are never replay-compatible — so the default fingerprint must
// match an explicitly wired default, and differ from every non-default
// stage.
func TestRunFingerprintEncodesStrategy(t *testing.T) {
	space := benchSpace(t)
	base := Options{Objectives: 2, Seed: 1}
	def := RunFingerprint(space, base)
	if !strings.Contains(def, "sampler=uniform;modeler=forest;selector=even-thin") {
		t.Fatalf("default fingerprint missing strategy identity: %s", def)
	}
	explicit := base
	explicit.Sampler = UniformSampler{}
	explicit.Modeler = ForestModeler{}
	explicit.Selector = EvenThinSelector{}
	if RunFingerprint(space, explicit) != def {
		t.Fatal("explicit defaults changed the fingerprint")
	}
	variants := []Options{
		{Objectives: 2, Seed: 1, Sampler: PriorSampler{}},
		{Objectives: 2, Seed: 1, Modeler: FeasibilityModeler{}},
		{Objectives: 2, Seed: 1, Selector: AcquisitionSelector{}},
	}
	for i, v := range variants {
		if RunFingerprint(space, v) == def {
			t.Fatalf("variant %d has the default fingerprint", i)
		}
	}
}
