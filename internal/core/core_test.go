package core

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/param"
	"repro/internal/pareto"
)

// benchSpace is a 2-D synthetic design space with a known Pareto structure:
// objective 0 favours small a, objective 1 favours small b, with non-linear
// interaction terms making the surface multi-modal (like Fig. 1).
func benchSpace(t testing.TB) *param.Space {
	t.Helper()
	return param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
		param.Levels("c", 1, 2, 3), // weakly relevant
	)
}

func benchEval(space *param.Space) Evaluator {
	return EvaluatorFunc(func(cfg param.Config) []float64 {
		a := space.Get(cfg, "a")
		b := space.Get(cfg, "b")
		c := space.Get(cfg, "c")
		runtime := a + 0.5*math.Sin(3*b) + 0.05*c + 1.5
		accuracy := b + 0.5*math.Cos(2*a) + 1.5
		return []float64{runtime, accuracy}
	})
}

func TestRunValidation(t *testing.T) {
	space := benchSpace(t)
	if _, err := Run(nil, benchEval(space), Options{Objectives: 2}); err == nil {
		t.Fatal("expected error for nil space")
	}
	if _, err := Run(space, nil, Options{Objectives: 2}); err == nil {
		t.Fatal("expected error for nil evaluator")
	}
	if _, err := Run(space, benchEval(space), Options{}); err == nil {
		t.Fatal("expected error for missing Objectives")
	}
}

func TestObjectiveCountMismatch(t *testing.T) {
	space := benchSpace(t)
	bad := EvaluatorFunc(func(param.Config) []float64 { return []float64{1} })
	if _, err := Run(space, bad, Options{Objectives: 2, RandomSamples: 10, MaxIterations: 1}); err == nil {
		t.Fatal("expected error when evaluator returns wrong objective count")
	}
}

func TestRunBasicInvariants(t *testing.T) {
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 80,
		MaxIterations: 3,
		MaxBatch:      60,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No duplicate evaluations.
	seen := map[int64]bool{}
	for _, s := range res.Samples {
		if seen[s.Index] {
			t.Fatalf("configuration %d evaluated twice", s.Index)
		}
		seen[s.Index] = true
		if err := space.Validate(s.Config); err != nil {
			t.Fatalf("invalid config in samples: %v", err)
		}
		if len(s.Objs) != 2 {
			t.Fatalf("sample has %d objectives", len(s.Objs))
		}
	}

	// The random phase has exactly RandomSamples non-AL samples.
	randomCount := 0
	for _, s := range res.Samples {
		if !s.ActiveLearning {
			randomCount++
			if s.Iteration != 0 {
				t.Fatal("random sample with non-zero iteration")
			}
		}
	}
	if randomCount != 80 {
		t.Fatalf("random samples = %d, want 80", randomCount)
	}

	// Front points must be measured samples and mutually non-dominated.
	for _, p := range res.Front {
		if _, ok := res.ByIndex(p.ID); !ok {
			t.Fatalf("front point %d was never measured", p.ID)
		}
	}
	for i, p := range res.Front {
		for j, q := range res.Front {
			if i != j && pareto.Dominates(q.Objs, p.Objs) {
				t.Fatal("front contains dominated point")
			}
		}
	}

	if len(res.Iterations) == 0 {
		t.Fatal("no iteration stats recorded")
	}
	if len(res.Forests) != 2 {
		t.Fatalf("expected 2 final forests, got %d", len(res.Forests))
	}
}

func TestActiveLearningImprovesFront(t *testing.T) {
	// The AL front must dominate-or-match the random-only front in
	// hypervolume — the central claim of Figs. 3 and 4.
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 60,
		MaxIterations: 4,
		MaxBatch:      80,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := [2]float64{10, 10}
	hvRandom := pareto.Hypervolume2D(res.RandomFront, ref)
	hvFinal := pareto.Hypervolume2D(res.Front, ref)
	if hvFinal < hvRandom {
		t.Fatalf("active learning lost hypervolume: %v -> %v", hvRandom, hvFinal)
	}
	if len(res.ActiveSamples()) == 0 {
		t.Fatal("active learning evaluated nothing")
	}
	if hvFinal == hvRandom {
		t.Log("warning: AL did not strictly improve hypervolume on this seed")
	}
}

func TestDeterminism(t *testing.T) {
	space := benchSpace(t)
	opts := Options{Objectives: 2, RandomSamples: 40, MaxIterations: 2, Seed: 11}
	r1, err := Run(space, benchEval(space), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2
	r2, err := Run(space, benchEval(space), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Samples) != len(r2.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(r1.Samples), len(r2.Samples))
	}
	for i := range r1.Samples {
		if r1.Samples[i].Index != r2.Samples[i].Index {
			t.Fatalf("sample order differs at %d", i)
		}
	}
	if len(r1.Front) != len(r2.Front) {
		t.Fatal("fronts differ across worker counts")
	}
}

func TestSmallSpaceExhaustiveConvergence(t *testing.T) {
	// A tiny space: the bootstrap phase evaluates everything, so the first
	// AL iteration must find P − X_out = ∅ and report convergence.
	space := param.MustSpace(param.Levels("x", 1, 2, 3), param.Bool("y"))
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		return []float64{cfg[0], 1 - cfg[1]}
	})
	res, err := Run(space, eval, Options{
		Objectives:    2,
		RandomSamples: 100, // > space size
		MaxIterations: 3,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != int(space.Size()) {
		t.Fatalf("evaluated %d, want %d", len(res.Samples), space.Size())
	}
	if !res.Converged {
		t.Fatal("expected convergence on exhausted space")
	}
}

func TestMaxBatchRespected(t *testing.T) {
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 30,
		MaxIterations: 3,
		MaxBatch:      10,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.NewSamples > 10 {
			t.Fatalf("iteration %d evaluated %d > MaxBatch", it.Iteration, it.NewSamples)
		}
	}
}

func TestPoolCapPath(t *testing.T) {
	// Force the subsampled-pool path with a small cap.
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives:    2,
		RandomSamples: 40,
		MaxIterations: 2,
		PoolCap:       100, // far below the 4800-point space
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActiveSamples()) == 0 {
		t.Fatal("subsampled pool produced no AL samples")
	}
}

func TestParallelEvaluatorUsage(t *testing.T) {
	space := benchSpace(t)
	var calls atomic.Int64
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		calls.Add(1)
		return benchEval(space).Evaluate(cfg)
	})
	res, err := Run(space, eval, Options{
		Objectives: 2, RandomSamples: 50, MaxIterations: 2, Seed: 13, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(res.Samples) {
		t.Fatalf("evaluator called %d times for %d samples", calls.Load(), len(res.Samples))
	}
}

func TestThreeObjectives(t *testing.T) {
	// The optimizer is objective-count agnostic (runtime, accuracy, power).
	space := benchSpace(t)
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b, c := cfg[0], cfg[1], cfg[2]
		return []float64{a + 1, b + 1, c + a*b*0.1}
	})
	res, err := Run(space, eval, Options{
		Objectives: 3, RandomSamples: 60, MaxIterations: 2, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty 3-objective front")
	}
	for _, p := range res.Front {
		if len(p.Objs) != 3 {
			t.Fatalf("front point has %d objectives", len(p.Objs))
		}
	}
}

func TestSingleObjective(t *testing.T) {
	space := param.MustSpace(param.Grid("x", -2, 2, 41))
	eval := EvaluatorFunc(func(cfg param.Config) []float64 {
		x := cfg[0]
		return []float64{x * x} // minimum at x = 0
	})
	res, err := Run(space, eval, Options{
		Objectives: 1, RandomSamples: 10, MaxIterations: 4, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != 1 {
		t.Fatalf("single-objective front has %d points", len(res.Front))
	}
	best := res.Front[0].Objs[0]
	if best > 0.05 {
		t.Fatalf("optimizer found %v, want ≈0", best)
	}
}

func TestThin(t *testing.T) {
	in := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := thin(in, 4)
	if len(out) != 4 {
		t.Fatalf("thin -> %v", out)
	}
	if out[0] != 0 {
		t.Fatal("thin should keep the first point")
	}
	if got := thin(in, 20); len(got) != 10 {
		t.Fatal("thin should be identity when n >= len")
	}
}

func TestFrontSamplesSorted(t *testing.T) {
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives: 2, RandomSamples: 50, MaxIterations: 2, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := FrontSamples(res)
	if len(fs) != len(res.Front) {
		t.Fatalf("FrontSamples lost points: %d vs %d", len(fs), len(res.Front))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Objs[0] < fs[i-1].Objs[0] {
			t.Fatal("FrontSamples not sorted by first objective")
		}
	}
}

func TestIterationStatsConsistent(t *testing.T) {
	space := benchSpace(t)
	res, err := Run(space, benchEval(space), Options{
		Objectives: 2, RandomSamples: 40, MaxIterations: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 40
	for _, it := range res.Iterations {
		total += it.NewSamples
		if it.TotalSamples != total {
			t.Fatalf("iteration %d: TotalSamples %d, want %d", it.Iteration, it.TotalSamples, total)
		}
		if len(it.OOBError) != 2 {
			t.Fatalf("OOB errors per objective = %v", it.OOBError)
		}
		if len(it.OOBSamples) != 2 {
			t.Fatalf("OOB sample counts per objective = %v", it.OOBSamples)
		}
		for k := range it.OOBError {
			// The undefined marker is consistent: NaN exactly when no
			// sample was out of bag.
			if math.IsNaN(it.OOBError[k]) != (it.OOBSamples[k] == 0) {
				t.Fatalf("iteration %d objective %d: OOB error %v with %d OOB samples",
					it.Iteration, k, it.OOBError[k], it.OOBSamples[k])
			}
		}
	}
	if total != len(res.Samples) {
		t.Fatalf("stats total %d != samples %d", total, len(res.Samples))
	}
}

func BenchmarkRunSmallDSE(b *testing.B) {
	space := benchSpace(b)
	eval := benchEval(space)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(space, eval, Options{
			Objectives: 2, RandomSamples: 60, MaxIterations: 2, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
