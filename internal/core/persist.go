package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/journal"
	"repro/internal/param"
	"repro/internal/pareto"
)

// StoredFront is the on-device artifact of an exploration (paper §I: "a
// two dimensional performance Pareto-optimal configurations curve that can
// be then stored on the machine to support dynamic adaptation"). It holds
// the front's configurations with their measured objectives plus enough
// metadata to validate against the design space at load time.
type StoredFront struct {
	// Benchmark and Platform identify where the front was measured.
	Benchmark string `json:"benchmark,omitempty"`
	Platform  string `json:"platform,omitempty"`
	// Objectives names the objective columns, in order.
	Objectives []string `json:"objectives"`
	// Parameters names the configuration columns, in order (must match
	// the design space used at load time).
	Parameters []string `json:"parameters"`
	// Points holds the front, sorted by the first objective.
	Points []StoredPoint `json:"points"`
}

// StoredPoint is one front configuration: its design-space index, decoded
// parameter values (in Parameters order), and measured objectives (in
// Objectives order).
type StoredPoint struct {
	Index  int64     `json:"index"`
	Config []float64 `json:"config"`
	Objs   []float64 `json:"objectives"`
}

// NewStoredFront packages a result's front for persistence.
func NewStoredFront(space *param.Space, res *Result, benchmark, platform string, objectives []string) *StoredFront {
	sf := &StoredFront{
		Benchmark:  benchmark,
		Platform:   platform,
		Objectives: append([]string(nil), objectives...),
		Parameters: space.Names(),
	}
	for _, s := range FrontSamples(res) {
		sf.Points = append(sf.Points, StoredPoint{
			Index:  s.Index,
			Config: append([]float64(nil), s.Config...),
			Objs:   append([]float64(nil), s.Objs...),
		})
	}
	return sf
}

// Front returns the stored points as pareto.Points for the selector
// helpers (BestUnderConstraint etc.).
func (sf *StoredFront) Front() []pareto.Point {
	out := make([]pareto.Point, len(sf.Points))
	for i, p := range sf.Points {
		out[i] = pareto.Point{ID: p.Index, Objs: p.Objs}
	}
	return out
}

// ConfigByIndex returns the stored configuration with the given index.
func (sf *StoredFront) ConfigByIndex(idx int64) (param.Config, bool) {
	for _, p := range sf.Points {
		if p.Index == idx {
			return param.Config(p.Config), true
		}
	}
	return nil, false
}

// Write serializes the front as indented JSON.
func (sf *StoredFront) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sf)
}

// SaveFront writes the front to a file atomically (temp file + rename): a
// crash mid-write leaves the previous front or the new one, never a
// half-written artifact — the stored front is what a device loads at
// runtime to adapt, so a torn file is an outage, not an inconvenience.
func SaveFront(path string, sf *StoredFront) error {
	return journal.WriteFileAtomic(path, func(w io.Writer) error {
		return sf.Write(w)
	})
}

// ReadFront parses a stored front and validates it against the design
// space: parameter names must match and every configuration must decode.
func ReadFront(r io.Reader, space *param.Space) (*StoredFront, error) {
	var sf StoredFront
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("core: parsing stored front: %w", err)
	}
	if space != nil {
		names := space.Names()
		if len(names) != len(sf.Parameters) {
			return nil, fmt.Errorf("core: stored front has %d parameters, space has %d",
				len(sf.Parameters), len(names))
		}
		for i, n := range names {
			if sf.Parameters[i] != n {
				return nil, fmt.Errorf("core: stored parameter %q at position %d, space has %q",
					sf.Parameters[i], i, n)
			}
		}
		for _, p := range sf.Points {
			if len(p.Config) != len(names) {
				return nil, fmt.Errorf("core: stored point %d has %d values, want %d",
					p.Index, len(p.Config), len(names))
			}
			if len(p.Objs) != len(sf.Objectives) {
				return nil, fmt.Errorf("core: stored point %d has %d objectives, want %d",
					p.Index, len(p.Objs), len(sf.Objectives))
			}
		}
	}
	return &sf, nil
}

// LoadFront reads a stored front from a file.
func LoadFront(path string, space *param.Space) (*StoredFront, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFront(f, space)
}
