package quality

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/param"
)

func sweepProblemFixture(t *testing.T) Problem {
	t.Helper()
	space := param.MustSpace(
		param.Grid("a", 0, 4, 40),
		param.Grid("b", 0, 4, 40),
	)
	eval := core.EvaluatorFunc(func(cfg param.Config) []float64 {
		a, b := cfg[0], cfg[1]
		return []float64{a + 0.5*math.Sin(3*b) + 1.5, b + 0.5*math.Cos(2*a) + 1.5}
	})
	return Problem{Name: "toy", Space: space, Eval: eval, Objectives: 2}
}

func TestSweepShapeAndDeterminism(t *testing.T) {
	problems := []Problem{sweepProblemFixture(t)}
	strategies := []Strategy{
		{Name: "default"},
		{Name: "acquisition", Selector: "acquisition"},
	}
	budgets := []int{40, 20} // deliberately unsorted
	seeds := []int64{1, 2}

	r1, err := Sweep(context.Background(), problems, strategies, budgets, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Curves) != 2 {
		t.Fatalf("got %d curves", len(r1.Curves))
	}
	if got := r1.Budgets; got[0] != 20 || got[1] != 40 {
		t.Fatalf("budgets not sorted: %v", got)
	}
	ref := r1.Reference["toy"]
	if len(ref) != 2 {
		t.Fatalf("reference = %v", ref)
	}
	for _, c := range r1.Curves {
		if len(c.Points) != 2 {
			t.Fatalf("curve %s/%s has %d points", c.Problem, c.Strategy, len(c.Points))
		}
		for _, p := range c.Points {
			if !(p.Hypervolume > 0) {
				t.Fatalf("curve %s/%s budget %d hypervolume %v", c.Problem, c.Strategy, p.Budget, p.Hypervolume)
			}
			if p.Samples < float64(p.Budget)/2 {
				t.Fatalf("budget %d measured only %v samples", p.Budget, p.Samples)
			}
		}
		// Against the shared reference, more budget can only grow the
		// union front's quality on this smooth problem.
		if c.Points[1].Hypervolume < c.Points[0].Hypervolume*0.99 {
			t.Fatalf("curve %s/%s shrinks with budget: %+v", c.Problem, c.Strategy, c.Points)
		}
	}

	r2, err := Sweep(context.Background(), problems, strategies, budgets, seeds)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatal("sweep is not deterministic for fixed inputs")
	}
}

// twoCurveReport builds a report with a default and a candidate curve on
// one problem for the gate/check tests.
func twoCurveReport(defHV, candHV []float64, ref []float64) *Report {
	mk := func(name string, hv []float64) Curve {
		c := Curve{Problem: "p", Strategy: name}
		for i, v := range hv {
			c.Points = append(c.Points, Point{Budget: (i + 1) * 10, Hypervolume: v})
		}
		return c
	}
	return &Report{
		Budgets:   []int{10, 20},
		Reference: map[string][]float64{"p": ref},
		Curves:    []Curve{mk("default", defHV), mk("cand", candHV)},
	}
}

func TestGate(t *testing.T) {
	r := twoCurveReport([]float64{100, 110}, []float64{101, 109}, []float64{1, 1})
	if err := r.Gate("p", "cand", "default", 0.02); err != nil {
		t.Fatalf("within-tolerance gate failed: %v", err)
	}
	if err := r.Gate("p", "cand", "default", 0); err == nil {
		t.Fatal("zero-tolerance gate accepted 109 < 110")
	}
	if err := r.Gate("p", "missing", "default", 0.02); err == nil {
		t.Fatal("gate accepted a missing strategy")
	}
}

func TestCheck(t *testing.T) {
	base := twoCurveReport([]float64{100, 110}, []float64{100, 110}, []float64{1, 1})
	cur := twoCurveReport([]float64{99.5, 110}, []float64{0, 0}, []float64{1, 1})
	if err := Check(cur, base, "default", 0.02); err != nil {
		t.Fatalf("within-tolerance check failed: %v", err)
	}
	cur = twoCurveReport([]float64{90, 110}, []float64{0, 0}, []float64{1, 1})
	if err := Check(cur, base, "default", 0.02); err == nil {
		t.Fatal("check accepted a 10% regression")
	}
	// A drifted reference point means the hypervolumes are incomparable.
	cur = twoCurveReport([]float64{100, 110}, []float64{0, 0}, []float64{2, 2})
	if err := Check(cur, base, "default", 0.02); err == nil {
		t.Fatal("check compared against a drifted reference")
	}
	if err := Check(cur, base, "nonexistent", 0.02); err == nil {
		t.Fatal("check passed with no curves to compare")
	}
}
