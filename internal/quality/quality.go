// Package quality measures search quality, not speed: it sweeps evaluation
// budgets over analytic problems and reports the hypervolume each search
// strategy reaches at each budget. The resulting curves are the
// optimization-quality counterpart of the performance benchmarks — CI runs
// them (cmd/qualitybench) to publish BENCH_quality.json and to fail when a
// change makes the default strategy reach less hypervolume for the same
// evaluation budget.
//
// Comparability is the whole design: every run of one problem is scored
// against a single shared reference point, the per-objective nadir of the
// union of all valid measurements across every strategy, budget, and seed,
// padded by 10% of the union's range. A per-run reference would let a
// strategy "win" by sampling badly (pushing its own nadir out); the shared
// one makes hypervolume monotone in genuine front quality. Seeded runs are
// deterministic, so the report is byte-stable for fixed inputs and can be
// committed as a regression baseline.
package quality

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/param"
	"repro/internal/pareto"
)

// Strategy names one search-strategy pipeline to sweep. Empty stage names
// select the engine defaults, so the zero value (with a Name) is the
// paper-faithful baseline pipeline.
type Strategy struct {
	// Name labels the curve in the report (e.g. "default",
	// "feasibility+acquisition").
	Name string `json:"name"`
	// Sampler and Selector are core stage names ("uniform"/"prior",
	// "even-thin"/"acquisition"); Feasibility enables the classifier
	// modeler.
	Sampler     string `json:"sampler,omitempty"`
	Feasibility bool   `json:"feasibility,omitempty"`
	Selector    string `json:"selector,omitempty"`
}

// Problem is one optimization target to sweep — typically a shipped
// declarative spec materialized by the catalog, so the evaluator is an
// analytic surrogate cheap enough to run hundreds of times.
type Problem struct {
	Name       string
	Space      *param.Space
	Eval       core.Evaluator
	Objectives int
}

// Point is one measured curve point: the evaluation budget requested and
// the mean-over-seeds outcome at that budget.
type Point struct {
	// Budget is the requested evaluation budget.
	Budget int `json:"budget"`
	// Samples is the mean number of valid configurations actually
	// measured (a converged run stops under budget).
	Samples float64 `json:"samples"`
	// Hypervolume is the mean measured-front hypervolume against the
	// problem's shared reference point.
	Hypervolume float64 `json:"hypervolume"`
}

// Curve is one (problem, strategy) hypervolume-vs-budget curve.
type Curve struct {
	Problem  string  `json:"problem"`
	Strategy string  `json:"strategy"`
	Points   []Point `json:"points"`
}

// Report is the whole sweep artifact (BENCH_quality.json).
type Report struct {
	Budgets    []int      `json:"budgets"`
	Seeds      []int64    `json:"seeds"`
	Strategies []Strategy `json:"strategies"`
	// Reference is the shared per-problem reference point the
	// hypervolumes are computed against, keyed by problem name — recorded
	// so curves from different sweeps are only compared when their
	// references agree.
	Reference map[string][]float64 `json:"reference"`
	Curves    []Curve              `json:"curves"`
}

// budgetOptions maps an evaluation budget onto engine budgets: a third of
// it bootstraps (≥ 10), a tenth sizes each active-learning batch (≥ 5),
// and the iteration cap spends the remainder.
func budgetOptions(p Problem, s Strategy, budget int, seed int64) (core.Options, error) {
	rs := max(10, budget/3)
	batch := max(5, budget/10)
	iters := max(1, (budget-rs+batch-1)/batch)
	sampler, err := core.NewSampler(s.Sampler)
	if err != nil {
		return core.Options{}, fmt.Errorf("strategy %q: %w", s.Name, err)
	}
	selector, err := core.NewSelector(s.Selector)
	if err != nil {
		return core.Options{}, fmt.Errorf("strategy %q: %w", s.Name, err)
	}
	return core.Options{
		Objectives:    p.Objectives,
		RandomSamples: rs,
		MaxBatch:      batch,
		MaxIterations: iters,
		Seed:          seed,
		Sampler:       sampler,
		Modeler:       core.NewModeler(s.Feasibility),
		Selector:      selector,
	}, nil
}

// run is one finished exploration, held until the problem's shared
// reference point is known.
type run struct {
	strategy int
	budget   int
	front    []pareto.Point
	samples  int
}

// Sweep runs every (problem, strategy, budget, seed) combination and
// assembles the curves. Runs of one problem share a memo-cache, so
// overlapping configurations across budgets and strategies are measured
// once.
func Sweep(ctx context.Context, problems []Problem, strategies []Strategy, budgets []int, seeds []int64) (*Report, error) {
	if len(problems) == 0 || len(strategies) == 0 || len(budgets) == 0 || len(seeds) == 0 {
		return nil, fmt.Errorf("quality: sweep needs problems, strategies, budgets, and seeds")
	}
	budgets = append([]int(nil), budgets...)
	sort.Ints(budgets)
	rep := &Report{
		Budgets:    budgets,
		Seeds:      append([]int64(nil), seeds...),
		Strategies: append([]Strategy(nil), strategies...),
		Reference:  make(map[string][]float64, len(problems)),
	}
	for _, p := range problems {
		runs, ref, err := sweepProblem(ctx, p, strategies, budgets, seeds)
		if err != nil {
			return nil, err
		}
		rep.Reference[p.Name] = ref
		for si, s := range strategies {
			curve := Curve{Problem: p.Name, Strategy: s.Name}
			for _, b := range budgets {
				var pt Point
				pt.Budget = b
				n := 0
				for _, r := range runs {
					if r.strategy != si || r.budget != b {
						continue
					}
					pt.Samples += float64(r.samples)
					pt.Hypervolume += pareto.Hypervolume(r.front, ref)
					n++
				}
				pt.Samples /= float64(n)
				pt.Hypervolume /= float64(n)
				curve.Points = append(curve.Points, pt)
			}
			rep.Curves = append(rep.Curves, curve)
		}
	}
	return rep, nil
}

// sweepProblem runs one problem's full grid and derives its shared
// reference point from the union of every run's valid measurements.
func sweepProblem(ctx context.Context, p Problem, strategies []Strategy, budgets []int, seeds []int64) ([]run, []float64, error) {
	cache := core.NewEvalCache()
	nadir := make([]float64, p.Objectives)
	ideal := make([]float64, p.Objectives)
	for k := range nadir {
		nadir[k] = math.Inf(-1)
		ideal[k] = math.Inf(1)
	}
	var runs []run
	for si, s := range strategies {
		for _, b := range budgets {
			for _, seed := range seeds {
				opts, err := budgetOptions(p, s, b, seed)
				if err != nil {
					return nil, nil, err
				}
				opts.Cache = cache
				res, err := core.RunContext(ctx, p.Space, p.Eval, opts)
				if err != nil {
					return nil, nil, fmt.Errorf("quality: %s/%s budget %d seed %d: %w", p.Name, s.Name, b, seed, err)
				}
				for _, smp := range res.Samples {
					for k, v := range smp.Objs {
						if math.IsNaN(v) {
							continue
						}
						nadir[k] = math.Max(nadir[k], v)
						ideal[k] = math.Min(ideal[k], v)
					}
				}
				runs = append(runs, run{strategy: si, budget: b, front: res.Front, samples: len(res.Samples)})
			}
		}
	}
	ref := make([]float64, p.Objectives)
	for k := range ref {
		if math.IsInf(nadir[k], -1) {
			return nil, nil, fmt.Errorf("quality: %s: no valid measurement for objective %d", p.Name, k)
		}
		ref[k] = nadir[k] + 0.1*(nadir[k]-ideal[k])
	}
	return runs, ref, nil
}

// curve finds one (problem, strategy) curve in the report.
func (r *Report) curve(problem, strategy string) (Curve, error) {
	for _, c := range r.Curves {
		if c.Problem == problem && c.Strategy == strategy {
			return c, nil
		}
	}
	return Curve{}, fmt.Errorf("quality: no curve for problem %q strategy %q", problem, strategy)
}

// Gate requires the candidate strategy to reach at least the baseline
// strategy's hypervolume — within a relative tolerance tol — at every
// measured budget of the given problem. This is the shipped acceptance
// gate: the advanced pipeline must never buy its features with front
// quality.
func (r *Report) Gate(problem, candidate, baseline string, tol float64) error {
	cand, err := r.curve(problem, candidate)
	if err != nil {
		return err
	}
	base, err := r.curve(problem, baseline)
	if err != nil {
		return err
	}
	if len(cand.Points) != len(base.Points) {
		return fmt.Errorf("quality: curve shapes differ (%d vs %d points)", len(cand.Points), len(base.Points))
	}
	for i, bp := range base.Points {
		cp := cand.Points[i]
		if cp.Hypervolume < bp.Hypervolume*(1-tol) {
			return fmt.Errorf("quality: %s: strategy %q hypervolume %.6g at budget %d below baseline %q %.6g (tolerance %g)",
				problem, candidate, cp.Hypervolume, cp.Budget, baseline, bp.Hypervolume, tol)
		}
	}
	return nil
}

// Check compares one strategy's curves in the current report against a
// committed baseline report: every (problem, budget) hypervolume must
// reach the baseline within a relative tolerance. Problems present only on
// one side are ignored — adding a spec must not invalidate the baseline —
// but a baseline problem the current sweep still ships must appear.
func Check(current, baseline *Report, strategy string, tol float64) error {
	checked := 0
	for _, bc := range baseline.Curves {
		if bc.Strategy != strategy {
			continue
		}
		cc, err := current.curve(bc.Problem, strategy)
		if err != nil {
			continue // problem no longer swept
		}
		// Hypervolumes are only comparable against one reference point.
		// Seeded runs are deterministic, so any drift means the sweep's
		// sampling behavior changed — the baseline must be regenerated
		// (and the change reviewed), not silently compared.
		if err := sameReference(current.Reference[bc.Problem], baseline.Reference[bc.Problem], tol); err != nil {
			return fmt.Errorf("quality: %s: %w; regenerate the committed baseline", bc.Problem, err)
		}
		byBudget := make(map[int]float64, len(cc.Points))
		for _, p := range cc.Points {
			byBudget[p.Budget] = p.Hypervolume
		}
		for _, bp := range bc.Points {
			hv, ok := byBudget[bp.Budget]
			if !ok {
				return fmt.Errorf("quality: %s: current sweep has no budget %d to compare", bc.Problem, bp.Budget)
			}
			if hv < bp.Hypervolume*(1-tol) {
				return fmt.Errorf("quality: %s: strategy %q hypervolume %.6g at budget %d regressed from baseline %.6g (tolerance %g)",
					bc.Problem, strategy, hv, bp.Budget, bp.Hypervolume, tol)
			}
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("quality: baseline has no %q curves to check against", strategy)
	}
	return nil
}

// sameReference reports whether two reference points agree within a
// relative tolerance per coordinate.
func sameReference(cur, base []float64, tol float64) error {
	if len(cur) != len(base) {
		return fmt.Errorf("reference point dimension changed (%d vs %d)", len(cur), len(base))
	}
	for k := range cur {
		if math.Abs(cur[k]-base[k]) > tol*math.Max(math.Abs(base[k]), 1) {
			return fmt.Errorf("reference point drifted: objective %d is %.6g, baseline %.6g", k, cur[k], base[k])
		}
	}
	return nil
}
