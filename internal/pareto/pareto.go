// Package pareto implements the multi-objective machinery of HyperMapper:
// dominance tests, non-dominated (Pareto) filtering, front merging, the 2-D
// hypervolume indicator, and the selectors used for dynamic adaptation
// ("fastest configuration whose accuracy stays under the 5 cm limit").
//
// All objectives are minimized. Points carry the configuration index of the
// design space they came from so fronts can be mapped back to parameter
// settings.
package pareto

import (
	"cmp"
	"math"
	"slices"
)

// Point is one evaluated configuration: its design-space index and its
// objective vector (all objectives minimized).
type Point struct {
	ID   int64
	Objs []float64
}

// Dominates reports whether objective vector a Pareto-dominates b: a is no
// worse in every objective and strictly better in at least one. Vectors must
// have equal length.
func Dominates(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// Front returns the non-dominated subset of points. Duplicate objective
// vectors are kept once (the first occurrence by ID order wins). The result
// is sorted by the first objective, then the second, for deterministic
// output.
//
// A 2-objective fast path runs in O(n log n); the general k-objective path
// is the O(n²) pairwise filter, fine for the set sizes HyperMapper produces.
func Front(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	if len(points[0].Objs) == 2 {
		return front2D(points)
	}
	return frontKD(points)
}

// FrontInPlace is Front, but it may reorder points instead of copying them.
// The active-learning loop uses it to filter 10⁵-point prediction pools
// without duplicating the pool slice every iteration; callers that need the
// input order preserved must use Front.
func FrontInPlace(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	if len(points[0].Objs) == 2 {
		return front2DInPlace(points)
	}
	return frontKD(points)
}

func front2D(points []Point) []Point {
	return front2DInPlace(append([]Point(nil), points...))
}

// front2DInPlace sorts its argument and sweeps it once: after ordering by
// (obj0, obj1, ID), a point is non-dominated exactly when its obj1 strictly
// improves on everything before it. Duplicate objective vectors fail the
// strict test, so only the first occurrence (lowest ID) is kept. The sort is
// unstable but the comparator is a total order (IDs break every tie), so the
// output is deterministic; slices.SortFunc beats sort.Slice's reflection-
// based swaps by a wide margin on the 10⁵-point prediction pools.
func front2DInPlace(sorted []Point) []Point {
	slices.SortFunc(sorted, func(a, b Point) int {
		if a.Objs[0] != b.Objs[0] {
			return cmp.Compare(a.Objs[0], b.Objs[0])
		}
		if a.Objs[1] != b.Objs[1] {
			return cmp.Compare(a.Objs[1], b.Objs[1])
		}
		return cmp.Compare(a.ID, b.ID)
	})
	var out []Point
	best1 := math.Inf(1)
	for _, p := range sorted {
		if p.Objs[1] < best1 {
			out = append(out, p)
			best1 = p.Objs[1]
		}
	}
	return out
}

func frontKD(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q.Objs, p.Objs) {
				dominated = true
				break
			}
			// Duplicate objective vectors: keep only the first.
			if j < i && equalObjs(q.Objs, p.Objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	slices.SortFunc(out, func(a, b Point) int {
		for k := range a.Objs {
			if a.Objs[k] != b.Objs[k] {
				return cmp.Compare(a.Objs[k], b.Objs[k])
			}
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

func equalObjs(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge returns the Pareto front of the union of a and b.
func Merge(a, b []Point) []Point {
	all := make([]Point, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	return Front(all)
}

// Hypervolume2D returns the hypervolume indicator of a 2-objective front with
// respect to reference point ref (both objectives minimized; ref must be
// dominated by every front point for the result to be meaningful). Points at
// or beyond the reference contribute nothing.
func Hypervolume2D(front []Point, ref [2]float64) float64 {
	f := front2D(front)
	hv := 0.0
	prevX := ref[0]
	// front2D sorts ascending in obj0 and strictly descending in obj1; sweep
	// from the right (largest obj0) to accumulate rectangles.
	for i := len(f) - 1; i >= 0; i-- {
		p := f[i]
		x := math.Min(p.Objs[0], ref[0])
		y := math.Min(p.Objs[1], ref[1])
		w := prevX - x
		h := ref[1] - y
		if w > 0 && h > 0 {
			hv += w * h
		}
		if x < prevX {
			prevX = x
		}
	}
	return hv
}

// Filter returns the points satisfying keep.
func Filter(points []Point, keep func(Point) bool) []Point {
	var out []Point
	for _, p := range points {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// CountValid returns how many points have Objs[obj] < bound — the paper's
// "valid configurations" metric (max ATE < 5 cm).
func CountValid(points []Point, obj int, bound float64) int {
	n := 0
	for _, p := range points {
		if p.Objs[obj] < bound {
			n++
		}
	}
	return n
}

// BestBy returns the point minimizing objective obj, and false if points is
// empty.
func BestBy(points []Point, obj int) (Point, bool) {
	if len(points) == 0 {
		return Point{}, false
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Objs[obj] < best.Objs[obj] {
			best = p
		}
	}
	return best, true
}

// BestUnderConstraint returns the point minimizing objective obj among those
// with Objs[cObj] < bound — e.g. "fastest configuration with max ATE under
// 5 cm", the selection rule used for the crowd-sourced app and for dynamic
// adaptation. ok is false if no point satisfies the constraint.
func BestUnderConstraint(points []Point, obj, cObj int, bound float64) (best Point, ok bool) {
	for _, p := range points {
		if p.Objs[cObj] >= bound {
			continue
		}
		if !ok || p.Objs[obj] < best.Objs[obj] {
			best, ok = p, true
		}
	}
	return best, ok
}

// Contains reports whether the front contains a point with the given ID.
func Contains(points []Point, id int64) bool {
	for _, p := range points {
		if p.ID == id {
			return true
		}
	}
	return false
}

// IDs returns the configuration IDs of points, in order.
func IDs(points []Point) []int64 {
	out := make([]int64, len(points))
	for i, p := range points {
		out[i] = p.ID
	}
	return out
}
