package pareto

import (
	"math"
	"math/rand"
	"testing"
)

func pt3(id int64, objs ...float64) Point { return Point{ID: id, Objs: objs} }

func TestHypervolumeMatches2D(t *testing.T) {
	fronts := [][]Point{
		{pt(0, 1, 1)},
		{pt(0, 1, 2), pt(1, 2, 1)},
		{pt(0, 4, 4)},
		{pt(0, 1, 2), pt(1, 2, 1), pt(2, 1.5, 1.5), pt(3, 0.5, 2.9)},
	}
	for _, f := range fronts {
		want := Hypervolume2D(f, [2]float64{3, 3})
		got := Hypervolume(f, []float64{3, 3})
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Hypervolume = %v, Hypervolume2D = %v for %v", got, want, f)
		}
	}
}

func TestHypervolume1D(t *testing.T) {
	f := []Point{pt3(0, 4), pt3(1, 2.5), pt3(2, 9)}
	if hv := Hypervolume(f, []float64{5}); math.Abs(hv-2.5) > 1e-12 {
		t.Fatalf("1-D hv = %v, want 2.5", hv)
	}
	if hv := Hypervolume([]Point{pt3(0, 7)}, []float64{5}); hv != 0 {
		t.Fatalf("point beyond ref: hv = %v, want 0", hv)
	}
}

func TestHypervolume3DKnownVolumes(t *testing.T) {
	ref := []float64{3, 3, 3}
	// Single point (1,1,1): cube 2³ = 8.
	if hv := Hypervolume([]Point{pt3(0, 1, 1, 1)}, ref); math.Abs(hv-8) > 1e-12 {
		t.Fatalf("single-point hv = %v, want 8", hv)
	}
	// Two points whose dominated boxes overlap:
	// (1,2,2) box 2·1·1 = 2, (2,1,1) box 1·2·2 = 4, overlap 1·1·1 = 1 → 5.
	f := []Point{pt3(0, 1, 2, 2), pt3(1, 2, 1, 1)}
	if hv := Hypervolume(f, ref); math.Abs(hv-5) > 1e-12 {
		t.Fatalf("two-point hv = %v, want 5", hv)
	}
	// A dominated extra point must change nothing.
	withDominated := append(append([]Point(nil), f...), pt3(2, 2.5, 2.5, 2.5))
	if hv := Hypervolume(withDominated, ref); math.Abs(hv-5) > 1e-12 {
		t.Fatalf("dominated point changed hv: %v", hv)
	}
}

// TestHypervolumeMonotoneUnderImprovementKD mirrors the 2-D monotonicity
// test for the k-objective implementation: adding a non-dominated point
// strictly grows the indicator, for k = 2 and k = 3.
func TestHypervolumeMonotoneUnderImprovementKD(t *testing.T) {
	ref2 := []float64{10, 10}
	base2 := []Point{pt(0, 4, 4)}
	better2 := []Point{pt(0, 4, 4), pt(1, 2, 6)}
	if Hypervolume(better2, ref2) <= Hypervolume(base2, ref2) {
		t.Fatal("2-D: adding a non-dominated point must increase hypervolume")
	}

	ref3 := []float64{10, 10, 10}
	base3 := []Point{pt3(0, 4, 4, 4)}
	better3 := []Point{pt3(0, 4, 4, 4), pt3(1, 2, 6, 5)}
	if Hypervolume(better3, ref3) <= Hypervolume(base3, ref3) {
		t.Fatal("3-D: adding a non-dominated point must increase hypervolume")
	}
}

// TestHypervolume3DMonotoneRandom fuzzes monotonicity: growing a random
// 3-D point set never decreases the indicator.
func TestHypervolume3DMonotoneRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := []float64{1, 1, 1}
	for trial := 0; trial < 20; trial++ {
		var pts []Point
		prev := 0.0
		for i := 0; i < 12; i++ {
			pts = append(pts, pt3(int64(i), rng.Float64(), rng.Float64(), rng.Float64()))
			hv := Hypervolume(pts, ref)
			if hv < prev-1e-12 {
				t.Fatalf("trial %d: hv decreased from %v to %v after adding a point", trial, prev, hv)
			}
			if hv > 1+1e-12 {
				t.Fatalf("trial %d: hv %v exceeds the reference box volume", trial, hv)
			}
			prev = hv
		}
	}
}
