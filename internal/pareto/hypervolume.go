package pareto

import (
	"cmp"
	"fmt"
	"slices"
)

// Hypervolume returns the hypervolume indicator of a front with any
// objective count k ≥ 1 with respect to reference point ref (len(ref) = k,
// all objectives minimized): the volume of the region dominated by the
// front and dominating ref. Points at or beyond the reference in any
// objective contribute nothing. For k = 2 it matches Hypervolume2D
// exactly; k = 1 degenerates to ref[0] minus the best value.
//
// The k ≥ 3 path is the classic "hypervolume by slicing objectives"
// recursion: sort by the last objective, sweep its slabs, and multiply
// each slab's thickness by the (k−1)-dimensional hypervolume of the points
// reaching it. O(n² log n) per level — exact, and comfortably fast for the
// front sizes the engine produces (the quality harness measures fronts of
// tens to hundreds of points). Every point's Objs must have length k; a
// mismatch panics, as it would in Dominates.
func Hypervolume(front []Point, ref []float64) float64 {
	k := len(ref)
	if k == 0 {
		panic("pareto: Hypervolume with an empty reference point")
	}
	// Drop points that fail to strictly improve on the reference in every
	// objective: their dominated region inside the reference box is empty.
	var pts []Point
	for _, p := range front {
		if len(p.Objs) != k {
			panic(fmt.Sprintf("pareto: point has %d objectives, reference has %d", len(p.Objs), k))
		}
		inside := true
		for j, r := range ref {
			if p.Objs[j] >= r {
				inside = false
				break
			}
		}
		if inside {
			pts = append(pts, p)
		}
	}
	return hvRec(pts, ref)
}

// hvRec computes the hypervolume of pts (all strictly inside the reference
// box) against ref; it tolerates dominated and duplicate points, which the
// slicing recursion naturally produces in its projections.
func hvRec(pts []Point, ref []float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	k := len(ref)
	switch k {
	case 1:
		best := pts[0].Objs[0]
		for _, p := range pts[1:] {
			if p.Objs[0] < best {
				best = p.Objs[0]
			}
		}
		return ref[0] - best
	case 2:
		return Hypervolume2D(pts, [2]float64{ref[0], ref[1]})
	}
	// Slice along the last objective: ascending in obj[k-1], each slab
	// [z_i, z_{i+1}) is reached exactly by the points sorted before it.
	sorted := append([]Point(nil), pts...)
	slices.SortFunc(sorted, func(a, b Point) int {
		if a.Objs[k-1] != b.Objs[k-1] {
			return cmp.Compare(a.Objs[k-1], b.Objs[k-1])
		}
		return cmp.Compare(a.ID, b.ID)
	})
	proj := make([]Point, 0, len(sorted))
	hv := 0.0
	for i, p := range sorted {
		proj = append(proj, Point{ID: p.ID, Objs: p.Objs[:k-1]})
		next := ref[k-1]
		if i+1 < len(sorted) {
			next = sorted[i+1].Objs[k-1]
		}
		if thickness := next - p.Objs[k-1]; thickness > 0 {
			hv += thickness * hvRec(proj, ref[:k-1])
		}
	}
	return hv
}
