package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(id int64, objs ...float64) Point { return Point{ID: id, Objs: objs} }

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{1, 1, 1}, []float64{1, 1, 2}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Fatalf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFront2DSimple(t *testing.T) {
	points := []Point{
		pt(0, 1, 5),
		pt(1, 2, 4),
		pt(2, 3, 3),
		pt(3, 2, 6),  // dominated by (1)
		pt(4, 10, 1), // corner
		pt(5, 1, 6),  // dominated by (0)
	}
	f := Front(points)
	wantIDs := []int64{0, 1, 2, 4}
	if len(f) != len(wantIDs) {
		t.Fatalf("front size = %d (%v), want %d", len(f), f, len(wantIDs))
	}
	for i, id := range wantIDs {
		if f[i].ID != id {
			t.Fatalf("front = %v, want IDs %v", f, wantIDs)
		}
	}
}

func TestFront2DDuplicateHandling(t *testing.T) {
	// Locks the duplicate semantics of the 2-D sweep: points with identical
	// objective vectors are kept exactly once, lowest ID first, regardless
	// of input order — including repeated entries of the same ID.
	points := []Point{
		pt(9, 1, 5),
		pt(2, 1, 5), // duplicate vector, lower ID: this one survives
		pt(5, 1, 5), // duplicate vector
		pt(2, 1, 5), // exact duplicate entry of the kept point
		pt(4, 3, 2),
		pt(4, 3, 2), // exact duplicate entry
		pt(7, 2, 6), // dominated by (2, 1 5)
	}
	for trial := 0; trial < 5; trial++ {
		f := Front(points)
		wantIDs := []int64{2, 4}
		if len(f) != len(wantIDs) {
			t.Fatalf("front = %v, want IDs %v", f, wantIDs)
		}
		for i, id := range wantIDs {
			if f[i].ID != id {
				t.Fatalf("front = %v, want IDs %v", f, wantIDs)
			}
		}
		// Shift input order; the output must not depend on it.
		points = append(points[1:], points[0])
	}
}

func TestFrontInPlaceMatchesFront(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([]Point, 500)
	for i := range points {
		points[i] = pt(int64(i), math.Round(rng.Float64()*20), math.Round(rng.Float64()*20))
	}
	want := Front(points) // copies: points keeps its order
	scratch := append([]Point(nil), points...)
	got := FrontInPlace(scratch)
	if len(got) != len(want) {
		t.Fatalf("FrontInPlace size %d, Front size %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("front %d: ID %d vs %d", i, got[i].ID, want[i].ID)
		}
	}
	// Front must have left its input untouched even though FrontInPlace may
	// reorder.
	for i := range points {
		if points[i].ID != int64(i) {
			t.Fatal("Front reordered its input")
		}
	}
}

func TestFrontEmpty(t *testing.T) {
	if got := Front(nil); got != nil {
		t.Fatalf("Front(nil) = %v", got)
	}
}

func TestFrontSinglePoint(t *testing.T) {
	f := Front([]Point{pt(7, 3, 3)})
	if len(f) != 1 || f[0].ID != 7 {
		t.Fatalf("Front single = %v", f)
	}
}

func TestFrontDuplicateObjectives(t *testing.T) {
	f := Front([]Point{pt(1, 2, 2), pt(2, 2, 2), pt(3, 2, 2)})
	if len(f) != 1 {
		t.Fatalf("duplicates should collapse to one, got %v", f)
	}
}

func TestFront3D(t *testing.T) {
	points := []Point{
		pt(0, 1, 2, 3),
		pt(1, 3, 2, 1),
		pt(2, 2, 2, 2),
		pt(3, 3, 3, 3), // dominated by 2
		pt(4, 1, 2, 3), // duplicate of 0
	}
	f := Front(points)
	if len(f) != 3 {
		t.Fatalf("3D front = %v", f)
	}
	for _, p := range f {
		if p.ID == 3 || p.ID == 4 {
			t.Fatalf("dominated/duplicate point %d kept", p.ID)
		}
	}
}

// Property: no point in the front is dominated by any input point, and
// every input point is dominated-or-equal by some front point.
func TestFrontInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		points := make([]Point, n)
		for i := range points {
			points[i] = pt(int64(i), math.Round(rng.Float64()*10), math.Round(rng.Float64()*10))
		}
		front := Front(points)
		for _, fp := range front {
			for _, p := range points {
				if Dominates(p.Objs, fp.Objs) {
					return false // front point dominated
				}
			}
		}
		for _, p := range points {
			covered := false
			for _, fp := range front {
				if Dominates(fp.Objs, p.Objs) || equalObjs(fp.Objs, p.Objs) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		// Idempotence.
		return len(Front(front)) == len(front)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFront2DMatchesKD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 40
		points := make([]Point, n)
		for i := range points {
			points[i] = pt(int64(i), math.Round(rng.Float64()*8), math.Round(rng.Float64()*8))
		}
		a := front2D(points)
		b := frontKD(points)
		if len(a) != len(b) {
			t.Fatalf("2D fast path disagrees with k-D: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("front mismatch at %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestMerge(t *testing.T) {
	a := []Point{pt(0, 1, 5), pt(1, 5, 1)}
	b := []Point{pt(2, 0.5, 6), pt(3, 3, 3)}
	m := Merge(a, b)
	// (2) has best obj0, (0) then (3) then (1).
	wantIDs := map[int64]bool{0: true, 1: true, 2: true, 3: true}
	if len(m) != 4 {
		t.Fatalf("merge = %v", m)
	}
	for _, p := range m {
		if !wantIDs[p.ID] {
			t.Fatalf("unexpected point %v", p)
		}
	}
	// Now a front that dominates part of the other.
	c := []Point{pt(9, 0.1, 0.1)}
	m = Merge(a, c)
	if len(m) != 1 || m[0].ID != 9 {
		t.Fatalf("dominating merge = %v", m)
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point (1,1) with ref (3,3): rectangle 2x2 = 4.
	hv := Hypervolume2D([]Point{pt(0, 1, 1)}, [2]float64{3, 3})
	if math.Abs(hv-4) > 1e-12 {
		t.Fatalf("hv = %v, want 4", hv)
	}
	// Two points staircase: (1,2) and (2,1), ref (3,3):
	// area = 2x1 + 1x2 ... union = 3? Compute: region dominated =
	// [1,3]x[2,3] ∪ [2,3]x[1,3] = 2 + 2 - 1 = 3.
	hv = Hypervolume2D([]Point{pt(0, 1, 2), pt(1, 2, 1)}, [2]float64{3, 3})
	if math.Abs(hv-3) > 1e-12 {
		t.Fatalf("hv = %v, want 3", hv)
	}
	// Point beyond the reference contributes nothing.
	hv = Hypervolume2D([]Point{pt(0, 4, 4)}, [2]float64{3, 3})
	if hv != 0 {
		t.Fatalf("hv = %v, want 0", hv)
	}
}

func TestHypervolumeMonotoneUnderImprovement(t *testing.T) {
	ref := [2]float64{10, 10}
	base := []Point{pt(0, 4, 4)}
	better := []Point{pt(0, 4, 4), pt(1, 2, 6)}
	if Hypervolume2D(better, ref) <= Hypervolume2D(base, ref) {
		t.Fatal("adding a non-dominated point must increase hypervolume")
	}
}

func TestCountValidAndFilter(t *testing.T) {
	points := []Point{pt(0, 1, 0.04), pt(1, 2, 0.06), pt(2, 3, 0.049)}
	if got := CountValid(points, 1, 0.05); got != 2 {
		t.Fatalf("CountValid = %d", got)
	}
	f := Filter(points, func(p Point) bool { return p.Objs[0] > 1 })
	if len(f) != 2 {
		t.Fatalf("Filter = %v", f)
	}
}

func TestBestBy(t *testing.T) {
	if _, ok := BestBy(nil, 0); ok {
		t.Fatal("BestBy(nil) should report !ok")
	}
	points := []Point{pt(0, 5, 1), pt(1, 2, 9), pt(2, 7, 0.5)}
	best, ok := BestBy(points, 0)
	if !ok || best.ID != 1 {
		t.Fatalf("BestBy obj0 = %v", best)
	}
	best, _ = BestBy(points, 1)
	if best.ID != 2 {
		t.Fatalf("BestBy obj1 = %v", best)
	}
}

func TestBestUnderConstraint(t *testing.T) {
	points := []Point{
		pt(0, 0.10, 0.044), // runtime, ATE
		pt(1, 0.05, 0.060), // fast but invalid
		pt(2, 0.07, 0.049),
	}
	best, ok := BestUnderConstraint(points, 0, 1, 0.05)
	if !ok || best.ID != 2 {
		t.Fatalf("BestUnderConstraint = %v, %v", best, ok)
	}
	_, ok = BestUnderConstraint(points, 0, 1, 0.01)
	if ok {
		t.Fatal("no point should satisfy ATE < 0.01")
	}
}

func TestContainsAndIDs(t *testing.T) {
	points := []Point{pt(3, 1, 1), pt(9, 2, 2)}
	if !Contains(points, 9) || Contains(points, 4) {
		t.Fatal("Contains broken")
	}
	ids := IDs(points)
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 9 {
		t.Fatalf("IDs = %v", ids)
	}
}

func BenchmarkFront2D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([]Point, 4000)
	for i := range points {
		points[i] = pt(int64(i), rng.Float64(), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Front(points)
	}
}

func BenchmarkFront3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([]Point, 500)
	for i := range points {
		points[i] = pt(int64(i), rng.Float64(), rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Front(points)
	}
}
