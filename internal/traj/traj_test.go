package traj

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/sensor"
)

func samplePoses(n int) []geom.Pose {
	return sensor.LivingRoomTrajectory2(n)
}

func TestWriteReadRoundtrip(t *testing.T) {
	orig := FromPoses(samplePoses(25), 30)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("lengths: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if math.Abs(back[i].Time-orig[i].Time) > 1e-6 {
			t.Fatalf("time %d changed", i)
		}
		if geom.Distance(back[i].Pose, orig[i].Pose) > 1e-6 {
			t.Fatalf("translation %d changed", i)
		}
		if geom.RotationAngle(back[i].Pose, orig[i].Pose) > 1e-6 {
			t.Fatalf("rotation %d changed by %v", i, geom.RotationAngle(back[i].Pose, orig[i].Pose))
		}
	}
}

func TestReadSkipsCommentsAndSorts(t *testing.T) {
	in := `# comment
1.0 0 0 0 0 0 0 1

0.5 1 0 0 0 0 0 1
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || tr[0].Time != 0.5 || tr[1].Time != 1.0 {
		t.Fatalf("parsed %+v", tr)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1.0 0 0 0 0 0 1",         // 7 fields
		"1.0 0 0 0 0 0 0 nope",    // bad float
		"1.0 0 0 0 0.9 0.9 0.9 2", // non-unit quaternion
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestFromPosesDefaults(t *testing.T) {
	tr := FromPoses(samplePoses(3), 0) // fps 0 -> 30
	if math.Abs(tr[1].Time-1.0/30) > 1e-12 {
		t.Fatalf("default fps wrong: %v", tr[1].Time)
	}
	if len(tr.Poses()) != 3 {
		t.Fatal("Poses() length wrong")
	}
}

func TestAssociate(t *testing.T) {
	ref := FromPoses(samplePoses(10), 30)
	est := make(Trajectory, 0, 5)
	for i := 0; i < 10; i += 2 {
		s := ref[i]
		s.Time += 0.001 // slight clock offset
		est = append(est, s)
	}
	e, r := Associate(est, ref, 0.01)
	if len(e) != 5 || len(r) != 5 {
		t.Fatalf("associated %d/%d pairs", len(e), len(r))
	}
	// Too-tight tolerance pairs nothing.
	e, _ = Associate(est, ref, 1e-6)
	if len(e) != 0 {
		t.Fatalf("tolerance ignored: %d pairs", len(e))
	}
}

func TestATEStats(t *testing.T) {
	ref := samplePoses(10)
	est := make([]geom.Pose, len(ref))
	copy(est, ref)
	// Offset one pose by 10 cm.
	est[4].T = est[4].T.Add(geom.V3(0.1, 0, 0))
	st, err := ATE(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 10 || math.Abs(st.Max-0.1) > 1e-12 {
		t.Fatalf("stats: %+v", st)
	}
	if math.Abs(st.Mean-0.01) > 1e-12 {
		t.Fatalf("mean: %v", st.Mean)
	}
	if st.Median != 0 {
		t.Fatalf("median: %v", st.Median)
	}
	if _, err := ATE(est[:2], ref); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ATE(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRPEPerfectTrajectory(t *testing.T) {
	ref := samplePoses(20)
	st, err := RPE(ref, ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.TransMean > 1e-12 || st.RotMeanDeg > 1e-9 {
		t.Fatalf("self-RPE nonzero: %+v", st)
	}
	if st.Pairs != 19 {
		t.Fatalf("pairs: %d", st.Pairs)
	}
}

func TestRPEDetectsDrift(t *testing.T) {
	ref := samplePoses(20)
	est := make([]geom.Pose, len(ref))
	// Constant per-frame drift of 5 mm in x.
	for i, p := range ref {
		q := p
		q.T = q.T.Add(geom.V3(0.005*float64(i), 0, 0))
		est[i] = q
	}
	st, err := RPE(est, ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.TransMean-0.005) > 1e-9 {
		t.Fatalf("drift not detected: %+v", st)
	}
	// A global offset, in contrast, is invisible to RPE.
	for i := range est {
		est[i] = ref[i]
		est[i].T = est[i].T.Add(geom.V3(5, 0, 0))
	}
	st, _ = RPE(est, ref, 1)
	if st.TransMean > 1e-9 {
		t.Fatalf("global offset leaked into RPE: %+v", st)
	}
}

func TestRPEValidation(t *testing.T) {
	ref := samplePoses(5)
	if _, err := RPE(ref, ref[:3], 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RPE(ref, ref, 0); err == nil {
		t.Fatal("delta 0 accepted")
	}
	if _, err := RPE(ref, ref, 5); err == nil {
		t.Fatal("delta >= len accepted")
	}
}
