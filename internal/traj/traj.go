// Package traj reads, writes and evaluates camera trajectories in the TUM
// RGB-D format ("timestamp tx ty tz qx qy qz qw" per line) — the
// interchange format of the SLAM evaluation ecosystem the paper's ATE
// metric comes from (Sturm et al., IROS 2012). It lets trajectories
// estimated by this repository be compared against external tools, and
// external trajectories be scored with our metrics.
package traj

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Stamped is one trajectory sample.
type Stamped struct {
	Time float64
	Pose geom.Pose
}

// Trajectory is a time-ordered pose sequence.
type Trajectory []Stamped

// FromPoses wraps poses with synthetic timestamps at the given frame rate.
func FromPoses(poses []geom.Pose, fps float64) Trajectory {
	if fps <= 0 {
		fps = 30
	}
	out := make(Trajectory, len(poses))
	for i, p := range poses {
		out[i] = Stamped{Time: float64(i) / fps, Pose: p}
	}
	return out
}

// Poses strips the timestamps.
func (t Trajectory) Poses() []geom.Pose {
	out := make([]geom.Pose, len(t))
	for i, s := range t {
		out[i] = s.Pose
	}
	return out
}

// Write emits the trajectory in TUM format. Rotations are serialized as
// unit quaternions.
func Write(w io.Writer, t Trajectory) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# timestamp tx ty tz qx qy qz qw")
	for _, s := range t {
		q := geom.QuatFromMat(s.Pose.R)
		p := s.Pose.T
		fmt.Fprintf(bw, "%.6f %.9f %.9f %.9f %.9f %.9f %.9f %.9f\n",
			s.Time, p.X, p.Y, p.Z, q.X, q.Y, q.Z, q.W)
	}
	return bw.Flush()
}

// Read parses a TUM-format trajectory. Blank lines and '#' comments are
// skipped; lines must have exactly 8 fields. The result is sorted by
// timestamp.
func Read(r io.Reader) (Trajectory, error) {
	var out Trajectory
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 8 {
			return nil, fmt.Errorf("traj: line %d has %d fields, want 8", lineNo, len(fields))
		}
		vals := make([]float64, 8)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("traj: line %d field %d: %w", lineNo, i+1, err)
			}
			vals[i] = v
		}
		q := geom.Quat{W: vals[7], X: vals[4], Y: vals[5], Z: vals[6]}
		if math.Abs(q.Norm()-1) > 0.01 {
			return nil, fmt.Errorf("traj: line %d quaternion norm %.3f", lineNo, q.Norm())
		}
		out = append(out, Stamped{
			Time: vals[0],
			Pose: geom.Pose{R: q.Normalized().Mat(), T: geom.V3(vals[1], vals[2], vals[3])},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	slices.SortFunc(out, func(a, b Stamped) int { return cmp.Compare(a.Time, b.Time) })
	return out, nil
}

// Associate pairs samples of est and ref whose timestamps differ by at
// most maxDt, greedily in time order. It returns the paired poses.
func Associate(est, ref Trajectory, maxDt float64) (e, r []geom.Pose) {
	j := 0
	for _, s := range est {
		for j+1 < len(ref) && math.Abs(ref[j+1].Time-s.Time) <= math.Abs(ref[j].Time-s.Time) {
			j++
		}
		if j < len(ref) && math.Abs(ref[j].Time-s.Time) <= maxDt {
			e = append(e, s.Pose)
			r = append(r, ref[j].Pose)
		}
	}
	return e, r
}

// ATEStats summarizes absolute trajectory error.
type ATEStats struct {
	Mean, Median, Max, RMSE float64
	Pairs                   int
}

// ATE computes translational absolute trajectory error over paired poses
// (no alignment: this repository's trajectories share the ground-truth
// origin, matching SLAMBench's absolute metric).
func ATE(est, ref []geom.Pose) (ATEStats, error) {
	if len(est) != len(ref) || len(est) == 0 {
		return ATEStats{}, fmt.Errorf("traj: %d est vs %d ref poses", len(est), len(ref))
	}
	errs := make([]float64, len(est))
	st := ATEStats{Pairs: len(est)}
	sum2 := 0.0
	for i := range est {
		d := geom.Distance(est[i], ref[i])
		errs[i] = d
		st.Mean += d
		sum2 += d * d
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean /= float64(len(est))
	st.RMSE = math.Sqrt(sum2 / float64(len(est)))
	slices.Sort(errs)
	st.Median = errs[len(errs)/2]
	return st, nil
}

// RPEStats summarizes relative pose error over a fixed frame delta.
type RPEStats struct {
	TransMean, TransRMSE float64 // meters per delta
	RotMeanDeg           float64 // degrees per delta
	Pairs                int
}

// RPE computes the relative pose error with the given frame delta: the
// discrepancy between estimated and reference motion over delta-frame
// windows (Sturm et al.'s drift metric; insensitive to global alignment).
func RPE(est, ref []geom.Pose, delta int) (RPEStats, error) {
	if len(est) != len(ref) {
		return RPEStats{}, fmt.Errorf("traj: %d est vs %d ref poses", len(est), len(ref))
	}
	if delta < 1 || delta >= len(est) {
		return RPEStats{}, fmt.Errorf("traj: delta %d out of range for %d poses", delta, len(est))
	}
	var st RPEStats
	sum2 := 0.0
	for i := 0; i+delta < len(est); i++ {
		dEst := est[i].Inverse().Mul(est[i+delta])
		dRef := ref[i].Inverse().Mul(ref[i+delta])
		err := dRef.Inverse().Mul(dEst)
		tErr := err.T.Norm()
		rErr := geom.LogSO3(err.R).Norm()
		st.TransMean += tErr
		sum2 += tErr * tErr
		st.RotMeanDeg += rErr * 180 / math.Pi
		st.Pairs++
	}
	if st.Pairs > 0 {
		st.TransMean /= float64(st.Pairs)
		st.TransRMSE = math.Sqrt(sum2 / float64(st.Pairs))
		st.RotMeanDeg /= float64(st.Pairs)
	}
	return st, nil
}
