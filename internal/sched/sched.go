// Package sched is the fleet-wide run scheduler of the coordinator: it sits
// between the server's session manager and the engine and decides, for every
// POST /runs, whether the run starts now, waits in a bounded per-tenant
// queue, or is rejected with backpressure.
//
// The paper's crowd-sourcing scenario (Fig. 5) implies many independent
// clients feeding one DSE coordinator. Without a scheduler every accepted
// run spawns an engine goroutine immediately and they all compete blindly
// for the worker fleet: one aggressive tenant can occupy every evaluation
// slot and starve the rest. The scheduler enforces three policies:
//
//   - Fair-share admission: when a slot frees, the next run is taken from
//     the tenant with the lowest weighted running count, so concurrent
//     capacity divides evenly (or by configured weight) across tenants with
//     pending work, regardless of how fast each one submits. Within one
//     tenant, higher Priority runs dispatch first, FIFO within a priority
//     class — priority never crosses tenant boundaries, so a tenant cannot
//     starve others by marking everything urgent.
//   - Quotas: per-tenant concurrent-run and queue-depth caps bound what any
//     single tenant can hold, and MaxRunning bounds the fleet.
//   - Backpressure: a submission past a full tenant queue fails with
//     ErrQueueFull, which the HTTP layer maps to 429 + Retry-After. Clients
//     are expected to back off and retry; nothing is buffered unboundedly.
//
// Starvation-freedom follows from the dispatch rule: a tenant with queued
// work and zero running runs has the minimum possible load, so it is always
// among the first picked when a slot frees.
//
// The scheduler is deliberately engine-agnostic: it hands out start
// callbacks and is told via Done when a run finished. coalesce.go is the
// second half of the package — cross-run evaluation-batch coalescing onto a
// shared backend.
package sched

import (
	"errors"
	"slices"
	"strings"
	"sync"
	"time"
)

// ErrQueueFull reports a submission rejected because the tenant's admission
// queue is at capacity. The HTTP layer maps it to 429 Too Many Requests
// with a Retry-After header.
var ErrQueueFull = errors.New("tenant admission queue is full")

// ErrClosed reports a submission after Close.
var ErrClosed = errors.New("scheduler is closed")

// TenantQuota bounds one tenant's footprint on the coordinator.
type TenantQuota struct {
	// MaxRunning caps the tenant's concurrently running runs; 0 means the
	// tenant is bounded only by the fleet-wide MaxRunning.
	MaxRunning int
	// MaxQueued caps the tenant's admission queue; 0 selects the default
	// (DefaultMaxQueued). Submissions past the cap fail with ErrQueueFull.
	MaxQueued int
	// Weight scales the tenant's fair share; 0 selects 1. A tenant with
	// weight 2 is offered slots as if it were running half as much.
	Weight float64
}

// Defaults for the zero Config; see Config.
const (
	DefaultMaxRunning = 64
	DefaultMaxQueued  = 64
	DefaultRetryAfter = time.Second
)

// Config configures a Scheduler. The zero value runs with the documented
// defaults.
type Config struct {
	// MaxRunning bounds concurrently running runs across all tenants
	// (default DefaultMaxRunning).
	MaxRunning int
	// Quota is the default per-tenant quota; Quotas overrides it for named
	// tenants.
	Quota  TenantQuota
	Quotas map[string]TenantQuota
	// RetryAfter is the backoff hint attached to ErrQueueFull rejections
	// (the HTTP Retry-After header value; default DefaultRetryAfter).
	RetryAfter time.Duration
	// CoalesceWindow bounds how long a run's evaluation batch may wait to
	// be merged with other runs' batches; see Coalescer. 0 selects
	// DefaultCoalesceWindow; negative disables merging (batches pass
	// through unmerged, still deduplicated within themselves).
	CoalesceWindow time.Duration
}

func (c Config) maxRunning() int {
	if c.MaxRunning <= 0 {
		return DefaultMaxRunning
	}
	return c.MaxRunning
}

func (c Config) quota(tenant string) TenantQuota {
	q := c.Quota
	if o, ok := c.Quotas[tenant]; ok {
		q = o
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = DefaultMaxQueued
	}
	if q.Weight <= 0 {
		q.Weight = 1
	}
	return q
}

// RetryAfterHint returns the configured backoff hint for rejections.
func (c Config) RetryAfterHint() time.Duration {
	if c.RetryAfter <= 0 {
		return DefaultRetryAfter
	}
	return c.RetryAfter
}

// ticketState is a Ticket's lifecycle; transitions are guarded by the
// scheduler mutex so exactly one of dispatch and cancel wins.
type ticketState int

const (
	ticketQueued ticketState = iota
	ticketRunning
	ticketDone
	ticketCancelled
)

// Ticket is one submitted run's handle: the scheduler dispatches it (calls
// its start callback) when admission succeeds, and the owner reports
// completion via Done or withdraws it via Cancel.
type Ticket struct {
	tenant   string
	priority int
	start    func(*Ticket) // invoked exactly once, off the scheduler lock
	abort    func(*Ticket) // invoked exactly once if Close drops the ticket while queued
	enqueued time.Time

	s     *Scheduler
	state ticketState
}

// Tenant returns the ticket's tenant id.
func (t *Ticket) Tenant() string { return t.tenant }

// Cancel withdraws a still-queued ticket. It reports true when the ticket
// was dequeued before dispatch — the caller owns the cleanup (the start
// callback will never run). False means the ticket already dispatched (or
// was already cancelled); the run must be stopped through its own context.
func (t *Ticket) Cancel() bool {
	s := t.s
	s.mu.Lock()
	if t.state != ticketQueued {
		s.mu.Unlock()
		return false
	}
	t.state = ticketCancelled
	ts := s.tenants[t.tenant]
	if i := slices.Index(ts.queue, t); i >= 0 {
		ts.queue = slices.Delete(ts.queue, i, i+1)
	}
	s.cancelled++
	s.mu.Unlock()
	return true
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	name       string
	quota      TenantQuota
	queue      []*Ticket // priority-ordered, FIFO within a priority class
	running    int
	dispatched int64
	rejected   int64
}

// Scheduler implements fair-share admission across tenants. Safe for
// concurrent use.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenantState
	running  int
	closed   bool
	maxDepth int // high-water mark of the total queued count

	submitted  int64
	dispatched int64
	rejected   int64
	cancelled  int64

	waits waitRing
}

// New returns a scheduler over cfg.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg, tenants: make(map[string]*tenantState)}
}

// Submit asks to admit one run for tenant. If capacity allows, the run is
// dispatched before Submit returns: start runs synchronously in the caller.
// Otherwise the run waits in the tenant's queue and start runs later, on
// whatever goroutine frees the slot. abort runs instead of start if Close
// drops the ticket while still queued. Both callbacks receive the ticket —
// on the immediate path it runs before Submit has returned it.
//
// The caller must call Done(ticket) when a dispatched run finishes (however
// it ends); a queued ticket withdrawn via Cancel must NOT be Done'd.
func (s *Scheduler) Submit(tenant string, priority int, start, abort func(*Ticket)) (*Ticket, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.submitted++
	ts := s.tenant(tenant)
	t := &Ticket{tenant: tenant, priority: priority, start: start, abort: abort, enqueued: time.Now(), s: s}
	if s.running < s.cfg.maxRunning() && s.tenantCanRun(ts) && len(ts.queue) == 0 {
		// Immediate admission. The queue-empty condition keeps FIFO order
		// within the tenant: free slots with a non-empty tenant queue can
		// only coexist transiently (dispatch drains queues whenever slots
		// free), but a fresh submission must still not overtake it.
		s.admitLocked(ts, t)
		s.mu.Unlock()
		t.start(t)
		return t, nil
	}
	if len(ts.queue) >= ts.quota.MaxQueued {
		ts.rejected++
		s.rejected++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.enqueueLocked(ts, t)
	s.mu.Unlock()
	return t, nil
}

// Done releases a dispatched run's slot and dispatches queued work that the
// freed capacity admits. Must be called exactly once per dispatched ticket.
func (s *Scheduler) Done(t *Ticket) {
	s.mu.Lock()
	if t.state == ticketRunning {
		t.state = ticketDone
		s.running--
		if ts := s.tenants[t.tenant]; ts != nil {
			ts.running--
		}
	}
	next := s.dispatchLocked()
	s.mu.Unlock()
	for _, n := range next {
		go n.start(n)
	}
}

// Close refuses further submissions and drops every queued ticket, running
// each one's abort callback. Dispatched runs are untouched — stopping them
// is the owner's job; their Done calls remain valid.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var dropped []*Ticket
	for _, ts := range s.tenants {
		for _, t := range ts.queue {
			t.state = ticketCancelled
			s.cancelled++
			dropped = append(dropped, t)
		}
		ts.queue = nil
	}
	s.mu.Unlock()
	for _, t := range dropped {
		if t.abort != nil {
			t.abort(t)
		}
	}
}

// tenant returns (creating if needed) a tenant's state. Called under mu.
func (s *Scheduler) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{name: name, quota: s.cfg.quota(name)}
		s.tenants[name] = ts
	}
	return ts
}

// tenantCanRun reports whether the tenant is under its concurrent cap.
// Called under mu.
func (s *Scheduler) tenantCanRun(ts *tenantState) bool {
	return ts.quota.MaxRunning <= 0 || ts.running < ts.quota.MaxRunning
}

// admitLocked moves a ticket to running and records its wait.
func (s *Scheduler) admitLocked(ts *tenantState, t *Ticket) {
	t.state = ticketRunning
	s.running++
	ts.running++
	ts.dispatched++
	s.dispatched++
	s.waits.record(time.Since(t.enqueued))
}

// enqueueLocked inserts a ticket into its tenant's queue: higher priority
// first, FIFO within a priority class.
func (s *Scheduler) enqueueLocked(ts *tenantState, t *Ticket) {
	i := len(ts.queue)
	for i > 0 && ts.queue[i-1].priority < t.priority {
		i--
	}
	ts.queue = slices.Insert(ts.queue, i, t)
	if d := s.queuedLocked(); d > s.maxDepth {
		s.maxDepth = d
	}
}

func (s *Scheduler) queuedLocked() int {
	n := 0
	for _, ts := range s.tenants {
		n += len(ts.queue)
	}
	return n
}

// dispatchLocked fills free slots from the queues: repeatedly pick, among
// tenants with queued work and headroom under their own cap, the one with
// the lowest weighted running count (ties: longest-waiting head first, then
// tenant name, for determinism). Returns the tickets to start — the caller
// invokes their callbacks off the lock.
func (s *Scheduler) dispatchLocked() []*Ticket {
	if s.closed {
		return nil
	}
	var out []*Ticket
	for s.running < s.cfg.maxRunning() {
		var pick *tenantState
		for _, ts := range s.tenants {
			if len(ts.queue) == 0 || !s.tenantCanRun(ts) {
				continue
			}
			if pick == nil || less(ts, pick) {
				pick = ts
			}
		}
		if pick == nil {
			return out
		}
		t := pick.queue[0]
		pick.queue = slices.Delete(pick.queue, 0, 1)
		s.admitLocked(pick, t)
		out = append(out, t)
	}
	return out
}

// less orders candidate tenants for the next free slot.
func less(a, b *tenantState) bool {
	la, lb := float64(a.running)/a.quota.Weight, float64(b.running)/b.quota.Weight
	if la != lb {
		return la < lb
	}
	ea, eb := a.queue[0].enqueued, b.queue[0].enqueued
	if !ea.Equal(eb) {
		return ea.Before(eb)
	}
	return strings.Compare(a.name, b.name) < 0
}

// waitRing is a fixed-size ring of recent admission waits (submit →
// dispatch), the basis of the p50/p99 admission-latency stats.
type waitRing struct {
	buf  [1024]time.Duration
	n    int // total recorded
	next int
}

func (r *waitRing) record(d time.Duration) {
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	r.n++
}

// quantiles returns the q-quantiles over the retained window; nil when
// nothing was recorded.
func (r *waitRing) quantiles(qs ...float64) []time.Duration {
	n := min(r.n, len(r.buf))
	if n == 0 {
		return nil
	}
	window := make([]time.Duration, n)
	copy(window, r.buf[:n])
	slices.Sort(window)
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		j := int(q * float64(n-1))
		out[i] = window[j]
	}
	return out
}

// TenantStats is one tenant's line in Stats.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Running and Queued are the tenant's current counts; Dispatched and
	// Rejected total its admitted and backpressured submissions.
	Running    int   `json:"running"`
	Queued     int   `json:"queued"`
	Dispatched int64 `json:"dispatched"`
	Rejected   int64 `json:"rejected"`
}

// Stats is the scheduler's observable state, surfaced through GET /stats.
type Stats struct {
	// MaxRunning echoes the fleet-wide concurrency bound.
	MaxRunning int `json:"max_running"`
	// Running and Queued are current totals; MaxQueueDepth is the queued
	// high-water mark since the scheduler was built.
	Running       int `json:"running"`
	Queued        int `json:"queued"`
	MaxQueueDepth int `json:"max_queue_depth"`
	// Submitted, Dispatched, Rejected, and Cancelled total the lifecycle
	// outcomes (Submitted counts rejections too).
	Submitted  int64 `json:"submitted"`
	Dispatched int64 `json:"dispatched"`
	Rejected   int64 `json:"rejected"`
	Cancelled  int64 `json:"cancelled"`
	// WaitP50MS and WaitP99MS are admission-wait quantiles (submit to
	// dispatch) over a sliding window of recent dispatches.
	WaitP50MS float64 `json:"wait_p50_ms"`
	WaitP99MS float64 `json:"wait_p99_ms"`
	// Tenants lists per-tenant accounting, sorted by tenant id.
	Tenants []TenantStats `json:"tenants"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		MaxRunning:    s.cfg.maxRunning(),
		Running:       s.running,
		Queued:        s.queuedLocked(),
		MaxQueueDepth: s.maxDepth,
		Submitted:     s.submitted,
		Dispatched:    s.dispatched,
		Rejected:      s.rejected,
		Cancelled:     s.cancelled,
	}
	if q := s.waits.quantiles(0.50, 0.99); q != nil {
		st.WaitP50MS = float64(q[0]) / float64(time.Millisecond)
		st.WaitP99MS = float64(q[1]) / float64(time.Millisecond)
	}
	for _, ts := range s.tenants {
		st.Tenants = append(st.Tenants, TenantStats{
			Tenant:     ts.name,
			Running:    ts.running,
			Queued:     len(ts.queue),
			Dispatched: ts.dispatched,
			Rejected:   ts.rejected,
		})
	}
	slices.SortFunc(st.Tenants, func(a, b TenantStats) int { return strings.Compare(a.Tenant, b.Tenant) })
	return st
}
