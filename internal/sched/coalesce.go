package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/param"
)

// DefaultCoalesceWindow is how long the first batch of a merge waits for
// company before flushing; see Coalescer.
const DefaultCoalesceWindow = 2 * time.Millisecond

// defaultCoalesceMaxConfigs flushes a merge early once this many unique
// configurations have accumulated, bounding both the wait and the combined
// request size.
const defaultCoalesceMaxConfigs = 4096

// Coalescer merges the evaluation batches of concurrent runs over one
// design space into combined calls on a shared backend, deduplicating
// identical configurations across runs in the process. It implements
// core.Backend and wraps another Backend (a worker.Pool backend, or a
// LocalBackend), so the fleet sees fewer, larger, duplicate-free dispatches
// while every run still receives its results position-matched and
// byte-identical to an unmerged evaluation.
//
// A Coalescer is bound to exactly one (space, objectives) pair: every
// incoming configuration is resolved to its design-space index, which is
// the deduplication key. A configuration that does not belong to the space
// fails the call — batches from runs over different spaces must go through
// different Coalescers (Group hands them out keyed by the space
// fingerprint, so results can never mix across spaces whose configs happen
// to look alike).
//
// Merging is time-bounded: the first batch to arrive opens a merge window
// (Window); batches arriving within it join the merge, and the combined
// call flushes when the window lapses or the merge reaches its size bound.
// The engine consults its memo-cache before the backend, so a Coalescer
// only ever sees genuine misses — cross-tenant duplicates of already
// measured configurations never even reach it.
type Coalescer struct {
	space      *param.Space
	inner      core.Backend
	window     time.Duration
	maxConfigs int

	mu  sync.Mutex
	cur *merge

	stats CoalesceStats
}

// CoalesceStats counts a Coalescer's (or a Group's aggregated) traffic.
type CoalesceStats struct {
	// Calls counts EvaluateBatch calls accepted; Flushes counts combined
	// backend dispatches. Flushes ≤ Calls, and the gap is the merging win.
	Calls   int64 `json:"calls"`
	Flushes int64 `json:"flushes"`
	// MergedCalls counts calls that shared their flush with at least one
	// other call.
	MergedCalls int64 `json:"merged_calls"`
	// Configs counts configurations submitted; Deduped counts the subset
	// served by another configuration identical to them inside the same
	// merge (evaluated once, fanned out to every requester).
	Configs int64 `json:"configs"`
	Deduped int64 `json:"deduped"`
}

// NewCoalescer returns a coalescer for one space over inner. window ≤ 0
// disables time-based merging (each call flushes immediately, still
// deduplicated within itself); use DefaultCoalesceWindow for the standard
// setting.
func NewCoalescer(space *param.Space, inner core.Backend, window time.Duration) *Coalescer {
	return &Coalescer{space: space, inner: inner, window: window, maxConfigs: defaultCoalesceMaxConfigs}
}

// merge is one in-progress combination of calls.
type merge struct {
	cfgs       []param.Config // unique configurations, arrival order
	pos        map[int64]int  // design-space index → position in cfgs
	calls      int
	dispatched bool // guarded by Coalescer.mu; the single-flush invariant

	done    chan struct{} // closed when results and err are set
	results [][]float64
	err     error
}

// mcall is one caller's membership in a merge: where each of its
// configurations landed in the combined batch.
type mcall struct {
	m   *merge
	pos []int
}

// EvaluateBatch implements core.Backend. Each caller blocks until its
// merge flushes (or its own context is done) and receives exactly its
// configurations' results, position-matched per the Backend contract.
func (c *Coalescer) EvaluateBatch(ctx context.Context, cfgs []param.Config) ([][]float64, error) {
	idxs := make([]int64, len(cfgs))
	for i, cfg := range cfgs {
		idx, err := c.space.IndexOf(cfg)
		if err != nil {
			// A config from another space: refuse the whole call rather
			// than guess. This is the isolation guarantee — indices from
			// unrelated spaces never key into this coalescer's merges.
			return nil, fmt.Errorf("sched: configuration %d not in this coalescer's space: %w", i, err)
		}
		idxs[i] = idx
	}

	call, flushNow := c.join(idxs, cfgs)
	if flushNow != nil {
		c.flush(flushNow)
	}
	m := call.m
	select {
	case <-m.done:
	case <-ctx.Done():
		// The run is cancelled; the merge continues for its other members.
		return make([][]float64, len(cfgs)), ctx.Err()
	}
	out := make([][]float64, len(cfgs))
	for i, p := range call.pos {
		if p < len(m.results) && m.results[p] != nil {
			out[i] = append([]float64(nil), m.results[p]...)
		}
	}
	return out, m.err
}

// join adds one call to the current merge (opening one if needed) and
// returns the membership plus, when this call filled the merge or merging
// is disabled, the merge to flush synchronously.
func (c *Coalescer) join(idxs []int64, cfgs []param.Config) (mcall, *merge) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Calls++
	c.stats.Configs += int64(len(cfgs))

	m := c.cur
	if m == nil {
		m = &merge{pos: make(map[int64]int), done: make(chan struct{})}
		if c.window > 0 {
			c.cur = m
			mm := m
			time.AfterFunc(c.window, func() { c.flush(mm) })
		}
	}
	m.calls++
	call := mcall{m: m, pos: make([]int, len(cfgs))}
	for i, idx := range idxs {
		if p, ok := m.pos[idx]; ok {
			call.pos[i] = p
			c.stats.Deduped++
			continue
		}
		p := len(m.cfgs)
		m.cfgs = append(m.cfgs, cfgs[i])
		m.pos[idx] = p
		call.pos[i] = p
	}
	if c.cur != m {
		return call, m // merging disabled: caller flushes immediately
	}
	if len(m.cfgs) >= c.maxConfigs {
		c.cur = nil
		return call, m // full: caller flushes without waiting for the timer
	}
	return call, nil
}

// flush dispatches a merge's combined batch exactly once (the timer and a
// size-triggered caller can race here) and publishes the results.
func (c *Coalescer) flush(m *merge) {
	c.mu.Lock()
	if c.cur == m {
		c.cur = nil
	}
	if m.dispatched {
		c.mu.Unlock()
		return
	}
	m.dispatched = true
	c.stats.Flushes++
	if m.calls > 1 {
		c.stats.MergedCalls += int64(m.calls)
	}
	c.mu.Unlock()

	// The combined call runs on the flusher's goroutine with its own
	// context: member runs observe their own cancellation independently,
	// and one cancelled member must not abort the others' evaluations.
	res, err := c.inner.EvaluateBatch(context.Background(), m.cfgs)
	m.results, m.err = res, err
	if m.results == nil {
		m.results = make([][]float64, len(m.cfgs))
	}
	close(m.done)
}

// Stats snapshots the coalescer's counters.
func (c *Coalescer) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Group hands out one Coalescer per space fingerprint. The fingerprint —
// not the problem name — is the key: replacing a problem with a different
// space under the same name yields a fresh coalescer, and two spaces whose
// configurations happen to encode alike still merge separately. This is
// the same isolation rule the engine's memo-cache applies to its
// singleflight namespaces.
type Group struct {
	window time.Duration

	mu sync.Mutex
	m  map[string]*Coalescer
}

// NewGroup returns a group whose coalescers merge within window
// (0 selects DefaultCoalesceWindow, negative disables merging).
func NewGroup(window time.Duration) *Group {
	if window == 0 {
		window = DefaultCoalesceWindow
	}
	return &Group{window: window, m: make(map[string]*Coalescer)}
}

// For returns the coalescer for the given space and objective count over
// inner, creating it on first use. Callers must pass the same inner
// backend for equal fingerprints; the first registration wins.
func (g *Group) For(space *param.Space, objectives int, inner core.Backend) *Coalescer {
	key := core.SpaceFingerprint(space, objectives)
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.m[key]
	if !ok {
		c = NewCoalescer(space, inner, g.window)
		g.m[key] = c
	}
	return c
}

// Drop removes the coalescer for a space, if present — called when a
// problem is re-registered with a new evaluator, mirroring the memo-cache
// reset.
func (g *Group) Drop(space *param.Space, objectives int) {
	key := core.SpaceFingerprint(space, objectives)
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

// Stats aggregates every member coalescer's counters.
func (g *Group) Stats() CoalesceStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var agg CoalesceStats
	for _, c := range g.m {
		st := c.Stats()
		agg.Calls += st.Calls
		agg.Flushes += st.Flushes
		agg.MergedCalls += st.MergedCalls
		agg.Configs += st.Configs
		agg.Deduped += st.Deduped
	}
	return agg
}
