package sched

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/param"
)

// fakeBackend records every combined batch it receives and answers with a
// deterministic, space-identifying value per configuration.
type fakeBackend struct {
	tag   float64 // added to every objective, identifies which backend answered
	mu    sync.Mutex
	calls [][]param.Config
}

func (b *fakeBackend) EvaluateBatch(_ context.Context, cfgs []param.Config) ([][]float64, error) {
	b.mu.Lock()
	b.calls = append(b.calls, cfgs)
	b.mu.Unlock()
	out := make([][]float64, len(cfgs))
	for i, cfg := range cfgs {
		sum := b.tag
		for _, v := range cfg {
			sum += v
		}
		out[i] = []float64{sum}
	}
	return out, nil
}

func (b *fakeBackend) callCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.calls)
}

func coalesceSpace(t *testing.T) *param.Space {
	t.Helper()
	space, err := param.NewSpace(
		param.Grid("x", 0, 3, 4),
		param.Levels("z", 1, 2, 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// TestCoalescerMergesAndDedups: two concurrent calls sharing a config land
// in one combined backend dispatch, the shared config is evaluated once,
// and each caller gets position-matched results as if it ran alone.
func TestCoalescerMergesAndDedups(t *testing.T) {
	space := coalesceSpace(t)
	inner := &fakeBackend{}
	c := NewCoalescer(space, inner, 50*time.Millisecond)

	shared := space.AtIndex(0)
	a := []param.Config{shared, space.AtIndex(1)}
	b := []param.Config{space.AtIndex(2), shared}

	var (
		wg         sync.WaitGroup
		resA, resB [][]float64
		errA, errB error
	)
	wg.Add(2)
	go func() { defer wg.Done(); resA, errA = c.EvaluateBatch(context.Background(), a) }()
	go func() { defer wg.Done(); resB, errB = c.EvaluateBatch(context.Background(), b) }()
	wg.Wait()

	if errA != nil || errB != nil {
		t.Fatalf("errors: %v / %v", errA, errB)
	}
	if n := inner.callCount(); n != 1 {
		t.Fatalf("backend calls = %d, want 1 merged dispatch", n)
	}
	inner.mu.Lock()
	combined := len(inner.calls[0])
	inner.mu.Unlock()
	if combined != 3 {
		t.Fatalf("combined batch has %d configs, want 3 (4 submitted, 1 deduped)", combined)
	}
	// Position-matched results: each slot equals the caller's own config sum.
	check := func(name string, cfgs []param.Config, res [][]float64) {
		t.Helper()
		for i, cfg := range cfgs {
			want := 0.0
			for _, v := range cfg {
				want += v
			}
			if len(res[i]) != 1 || res[i][0] != want {
				t.Fatalf("%s result %d = %v, want [%v]", name, i, res[i], want)
			}
		}
	}
	check("a", a, resA)
	check("b", b, resB)

	st := c.Stats()
	if st.Calls != 2 || st.Flushes != 1 || st.MergedCalls != 2 || st.Configs != 4 || st.Deduped != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCoalescerForeignConfigRejected: a configuration outside the
// coalescer's space fails the whole call before anything reaches the
// backend — the isolation guarantee that makes cross-space mixing
// impossible.
func TestCoalescerForeignConfigRejected(t *testing.T) {
	space := coalesceSpace(t)
	inner := &fakeBackend{}
	c := NewCoalescer(space, inner, -1)

	foreign := param.Config{99, 99} // right dimension, values not on the grid
	_, err := c.EvaluateBatch(context.Background(), []param.Config{space.AtIndex(0), foreign})
	if err == nil || !strings.Contains(err.Error(), "not in this coalescer's space") {
		t.Fatalf("foreign config error = %v", err)
	}
	if inner.callCount() != 0 {
		t.Fatal("backend was called despite the foreign config")
	}
}

// TestCoalescerDisabledWindow: window ≤ 0 flushes every call by itself —
// no cross-call merging, but within-call duplicates still collapse.
func TestCoalescerDisabledWindow(t *testing.T) {
	space := coalesceSpace(t)
	inner := &fakeBackend{}
	c := NewCoalescer(space, inner, 0)

	dup := space.AtIndex(3)
	res, err := c.EvaluateBatch(context.Background(), []param.Config{dup, dup})
	if err != nil {
		t.Fatal(err)
	}
	if res[0][0] != res[1][0] {
		t.Fatalf("duplicate slots disagree: %v", res)
	}
	if _, err := c.EvaluateBatch(context.Background(), []param.Config{space.AtIndex(1)}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Flushes != 2 || st.MergedCalls != 0 || st.Deduped != 1 {
		t.Fatalf("stats: %+v (want one flush per call, 1 within-call dedup)", st)
	}
	inner.mu.Lock()
	firstLen := len(inner.calls[0])
	inner.mu.Unlock()
	if firstLen != 1 {
		t.Fatalf("first dispatch carried %d configs, want 1 (within-call dedup)", firstLen)
	}
}

// TestCoalescerMemberCancellation: a cancelled member gets its context
// error and nil results; the other members of the same merge still get
// real results.
func TestCoalescerMemberCancellation(t *testing.T) {
	space := coalesceSpace(t)
	inner := &fakeBackend{}
	c := NewCoalescer(space, inner, 20*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the member must not block for the window
	res, err := c.EvaluateBatch(ctx, []param.Config{space.AtIndex(0)})
	if err != context.Canceled {
		t.Fatalf("cancelled member error = %v, want context.Canceled", err)
	}
	if len(res) != 1 || res[0] != nil {
		t.Fatalf("cancelled member results = %v, want [nil]", res)
	}

	// The merge the cancelled member opened still completes for a live one.
	live, err := c.EvaluateBatch(context.Background(), []param.Config{space.AtIndex(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0] == nil {
		t.Fatalf("live member got no results: %v", live)
	}
}

// TestGroupIsolationByFingerprint is the S2 regression: runs over different
// spaces (or the same space with a different objective count) must never
// share a coalescer, even when their configurations are byte-identical — so
// results cannot mix across runs whose configs happen to look alike.
func TestGroupIsolationByFingerprint(t *testing.T) {
	// Two spaces whose configurations encode identically: same dimension,
	// same grid values — only the parameter names differ.
	s1, err := param.NewSpace(param.Grid("x", 0, 3, 4), param.Levels("z", 1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := param.NewSpace(param.Grid("other", 0, 3, 4), param.Levels("w", 1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}

	g := NewGroup(-1) // merging disabled: calls resolve synchronously
	b1 := &fakeBackend{tag: 1000}
	b2 := &fakeBackend{tag: 2000}
	c1 := g.For(s1, 2, b1)
	c2 := g.For(s2, 2, b2)
	if c1 == c2 {
		t.Fatal("different spaces shared a coalescer")
	}
	if g.For(s1, 2, b2) != c1 {
		t.Fatal("same fingerprint did not reuse its coalescer (first registration wins)")
	}
	if g.For(s1, 1, b1) == c1 {
		t.Fatal("different objective count shared a coalescer")
	}

	// Byte-identical configs through each run's own coalescer come back
	// from that run's backend — the tags cannot cross.
	cfg := s1.AtIndex(0)
	r1, err := c1.EvaluateBatch(context.Background(), []param.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.EvaluateBatch(context.Background(), []param.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0][0] < 1000 || r1[0][0] >= 2000 {
		t.Fatalf("run 1 result %v did not come from backend 1", r1[0])
	}
	if r2[0][0] < 2000 {
		t.Fatalf("run 2 result %v did not come from backend 2", r2[0])
	}

	if agg := g.Stats(); agg.Calls < 2 {
		t.Fatalf("aggregated stats missing traffic: %+v", agg)
	}

	// Drop forgets the fingerprint: re-registration yields a fresh
	// coalescer bound to the new backend.
	g.Drop(s1, 2)
	if g.For(s1, 2, b2) == c1 {
		t.Fatal("Drop did not remove the coalescer")
	}
}

// TestGroupMatchesCacheFingerprint pins that Group and the engine
// memo-cache key by the same fingerprint function, so the coalescer's
// isolation boundary is exactly the cache's singleflight namespace.
func TestGroupMatchesCacheFingerprint(t *testing.T) {
	s1 := coalesceSpace(t)
	s2, err := param.NewSpace(param.Grid("x", 0, 3, 4), param.Levels("z", 1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if core.SpaceFingerprint(s1, 2) != core.SpaceFingerprint(s2, 2) {
		t.Fatal("structurally identical spaces fingerprint differently")
	}
	g := NewGroup(-1)
	if g.For(s1, 2, &fakeBackend{}) != g.For(s2, 2, &fakeBackend{}) {
		t.Fatal("structurally identical spaces got distinct coalescers")
	}
}
