package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector tracks dispatch order and completion for tests. Its start
// callback records the ticket and, unless hold is set, completes the run
// immediately (Done on a separate goroutine would race test assertions, so
// completion is explicit via release).
type collector struct {
	mu      sync.Mutex
	started []*Ticket
	aborted []*Ticket
}

func (c *collector) start(t *Ticket) {
	c.mu.Lock()
	c.started = append(c.started, t)
	c.mu.Unlock()
}

func (c *collector) abort(t *Ticket) {
	c.mu.Lock()
	c.aborted = append(c.aborted, t)
	c.mu.Unlock()
}

func (c *collector) startedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.started)
}

// waitFor polls until cond holds or the test deadline is hopeless —
// dispatch after Done happens on a fresh goroutine, so tests must wait.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestImmediateAdmission(t *testing.T) {
	s := New(Config{MaxRunning: 2})
	var c collector
	tk, err := s.Submit("a", 0, c.start, c.abort)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Immediate admission runs start synchronously, before Submit returns.
	if c.startedCount() != 1 || c.started[0] != tk {
		t.Fatalf("start not invoked synchronously with the returned ticket")
	}
	st := s.Stats()
	if st.Running != 1 || st.Dispatched != 1 || st.Submitted != 1 {
		t.Fatalf("stats after admission: %+v", st)
	}
	s.Done(tk)
	if st := s.Stats(); st.Running != 0 {
		t.Fatalf("running after Done = %d, want 0", st.Running)
	}
}

func TestQueueBoundBackpressure(t *testing.T) {
	s := New(Config{
		MaxRunning: 1,
		Quota:      TenantQuota{MaxQueued: 2},
	})
	var c collector
	run, _ := s.Submit("a", 0, c.start, c.abort)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("a", 0, c.start, c.abort); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit("a", 0, c.start, c.abort); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue submit error = %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Queued != 2 || st.Rejected != 1 || st.MaxQueueDepth != 2 {
		t.Fatalf("stats: %+v", st)
	}
	s.Done(run)
	waitFor(t, func() bool { return c.startedCount() == 2 })
}

// TestFairShareDispatch pins the core fairness rule: when a slot frees, the
// tenant with the lowest weighted running count wins, even if another
// tenant queued earlier.
func TestFairShareDispatch(t *testing.T) {
	s := New(Config{MaxRunning: 2})
	var c collector
	a1, _ := s.Submit("a", 0, c.start, c.abort)
	a2, _ := s.Submit("a", 0, c.start, c.abort)
	// Both slots are a's. Queue more of a (earlier) and one of b (later).
	if _, err := s.Submit("a", 0, c.start, c.abort); err != nil {
		t.Fatalf("queueing a3: %v", err)
	}
	b1, _ := s.Submit("b", 0, c.start, c.abort)
	s.Done(a1)
	waitFor(t, func() bool { return c.startedCount() == 3 })
	c.mu.Lock()
	third := c.started[2]
	c.mu.Unlock()
	if third != b1 {
		t.Fatalf("freed slot went to tenant %q, want b (zero running beats earlier enqueue)", third.Tenant())
	}
	s.Done(a2)
	waitFor(t, func() bool { return c.startedCount() == 4 })
}

// TestWeightedFairShare: a tenant with weight 2 is offered slots as if it
// were running half as much. With heavy and light each at 1 running run,
// heavy's weighted load (0.5) beats light's (1.0) — even though light's
// queued ticket is older, which would win the unweighted tie-break.
func TestWeightedFairShare(t *testing.T) {
	s := New(Config{
		MaxRunning: 3,
		Quotas: map[string]TenantQuota{
			"heavy": {Weight: 2},
		},
	})
	var c collector
	h1, _ := s.Submit("heavy", 0, c.start, c.abort)
	h2, _ := s.Submit("heavy", 0, c.start, c.abort)
	l1, _ := s.Submit("light", 0, c.start, c.abort)
	s.Submit("light", 0, c.start, c.abort) // queued first (older head)
	s.Submit("heavy", 0, c.start, c.abort)
	s.Done(h1)
	// Now heavy runs 1 (load 0.5), light runs 1 (load 1.0).
	waitFor(t, func() bool { return c.startedCount() == 4 })
	c.mu.Lock()
	fourth := c.started[3]
	c.mu.Unlock()
	if fourth.Tenant() != "heavy" {
		t.Fatalf("freed slot went to %q, want heavy (weighted load 0.5 < 1.0)", fourth.Tenant())
	}
	s.Done(h2)
	s.Done(l1)
}

// TestPriorityWithinTenant: higher priority dispatches first within one
// tenant, FIFO within a class — and never affects cross-tenant order.
func TestPriorityWithinTenant(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	var c collector
	run, _ := s.Submit("a", 0, c.start, c.abort)
	low, _ := s.Submit("a", 0, c.start, c.abort)
	hi, _ := s.Submit("a", 5, c.start, c.abort)
	mid, _ := s.Submit("a", 1, c.start, c.abort)
	hi2, _ := s.Submit("a", 5, c.start, c.abort)

	order := []*Ticket{hi, hi2, mid, low}
	cur := run
	for i, want := range order {
		s.Done(cur)
		waitFor(t, func() bool { return c.startedCount() == i+2 })
		c.mu.Lock()
		got := c.started[i+1]
		c.mu.Unlock()
		if got != want {
			t.Fatalf("dispatch %d: got priority %d, want %d", i+1, got.priority, want.priority)
		}
		cur = got
	}
	s.Done(cur)
}

func TestTenantRunningQuota(t *testing.T) {
	s := New(Config{
		MaxRunning: 4,
		Quota:      TenantQuota{MaxRunning: 1, MaxQueued: 8},
	})
	var c collector
	a1, _ := s.Submit("a", 0, c.start, c.abort)
	if _, err := s.Submit("a", 0, c.start, c.abort); err != nil {
		t.Fatalf("submit a2: %v", err)
	}
	// a is at its per-tenant cap even though the fleet has free slots.
	if got := c.startedCount(); got != 1 {
		t.Fatalf("started = %d, want 1 (tenant quota)", got)
	}
	// An unrelated tenant still gets a slot immediately.
	b1, _ := s.Submit("b", 0, c.start, c.abort)
	if got := c.startedCount(); got != 2 {
		t.Fatalf("started = %d, want 2", got)
	}
	s.Done(a1)
	waitFor(t, func() bool { return c.startedCount() == 3 })
	s.Done(b1)
}

func TestCancelQueued(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	var c collector
	run, _ := s.Submit("a", 0, c.start, c.abort)
	q, _ := s.Submit("a", 0, c.start, c.abort)
	if !q.Cancel() {
		t.Fatal("Cancel of a queued ticket = false, want true")
	}
	if q.Cancel() {
		t.Fatal("second Cancel = true, want false")
	}
	if run.Cancel() {
		t.Fatal("Cancel of a dispatched ticket = true, want false")
	}
	s.Done(run)
	time.Sleep(10 * time.Millisecond)
	if got := c.startedCount(); got != 1 {
		t.Fatalf("cancelled ticket was dispatched (started = %d)", got)
	}
	if st := s.Stats(); st.Cancelled != 1 || st.Queued != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCloseDropsQueued(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	var c collector
	run, _ := s.Submit("a", 0, c.start, c.abort)
	q, _ := s.Submit("a", 0, c.start, c.abort)
	s.Close()
	c.mu.Lock()
	aborted := append([]*Ticket(nil), c.aborted...)
	c.mu.Unlock()
	if len(aborted) != 1 || aborted[0] != q {
		t.Fatalf("aborted = %v, want the queued ticket", aborted)
	}
	if _, err := s.Submit("a", 0, c.start, c.abort); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	// Done on the still-running ticket stays valid and must not dispatch
	// anything new.
	s.Done(run)
	time.Sleep(10 * time.Millisecond)
	if got := c.startedCount(); got != 1 {
		t.Fatalf("started = %d after close, want 1", got)
	}
}

func TestStatsTenants(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	var c collector
	run, _ := s.Submit("b", 0, c.start, c.abort)
	s.Submit("a", 0, c.start, c.abort)
	st := s.Stats()
	if len(st.Tenants) != 2 || st.Tenants[0].Tenant != "a" || st.Tenants[1].Tenant != "b" {
		t.Fatalf("tenants not sorted: %+v", st.Tenants)
	}
	if st.Tenants[0].Queued != 1 || st.Tenants[1].Running != 1 {
		t.Fatalf("tenant accounting: %+v", st.Tenants)
	}
	s.Done(run)
}

// TestSoakFairShare is the S1 soak: three tenants with skewed offered load
// hammer one scheduler; every tenant keeps its queue non-empty (all are
// oversubscribed), so fair-share admission must split dispatches near
// evenly — and nobody starves. Run under -race in CI.
func TestSoakFairShare(t *testing.T) {
	const (
		tenants      = 3
		target       = 600 // total dispatches before the soak stops
		fleetSlots   = 8
		tolerance    = 0.35 // |share - 1/3| relative tolerance
		runMin       = time.Millisecond
		runSpread    = 2 * time.Millisecond
		backlogLimit = 32
	)
	s := New(Config{
		MaxRunning: fleetSlots,
		Quota:      TenantQuota{MaxQueued: backlogLimit},
	})
	var (
		dispatched [tenants]atomic.Int64
		total      atomic.Int64
		seq        atomic.Uint64  // per-dispatch sequence, spreads run durations
		wg         sync.WaitGroup // in-flight simulated runs
		subWG      sync.WaitGroup // submitter goroutines
	)
	names := [tenants]string{"aggressive", "steady", "meek"}
	// Offered-load skew: the aggressive tenant submits ~10× faster than the
	// meek one; with ~2ms mean runs over 8 slots, even the meek tenant's
	// offered load exceeds its 1/3 share, so every queue stays busy.
	pause := [tenants]time.Duration{50 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond}
	for i := 0; i < tenants; i++ {
		i := i
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for total.Load() < target {
				wg.Add(1)
				_, err := s.Submit(names[i], 0, func(tk *Ticket) {
					dispatched[i].Add(1)
					total.Add(1)
					n := seq.Add(1)
					go func() {
						defer wg.Done()
						time.Sleep(runMin + time.Duration((n*7919)%uint64(runSpread)))
						s.Done(tk)
					}()
				}, func(*Ticket) { wg.Done() })
				if err != nil {
					wg.Done() // rejected: the callback will never run
				}
				time.Sleep(pause[i])
			}
		}()
	}
	subWG.Wait()
	s.Close() // drop any still-queued tickets so wg can drain
	wg.Wait()

	sum := int64(0)
	for i := range dispatched {
		n := dispatched[i].Load()
		if n == 0 {
			t.Fatalf("tenant %s starved: 0 dispatches", names[i])
		}
		sum += n
	}
	for i := range dispatched {
		share := float64(dispatched[i].Load()) / float64(sum)
		if share < (1.0/tenants)*(1-tolerance) || share > (1.0/tenants)*(1+tolerance) {
			t.Errorf("tenant %s share = %.3f, want 1/3 ± %.0f%% (dispatched %d of %d)",
				names[i], share, tolerance*100, dispatched[i].Load(), sum)
		}
	}
	st := s.Stats()
	if st.Dispatched < target {
		t.Fatalf("dispatched %d < target %d", st.Dispatched, target)
	}
	t.Logf("soak: %d dispatched, shares %.3f/%.3f/%.3f, p99 wait %.2fms, max depth %d",
		sum,
		float64(dispatched[0].Load())/float64(sum),
		float64(dispatched[1].Load())/float64(sum),
		float64(dispatched[2].Load())/float64(sum),
		st.WaitP99MS, st.MaxQueueDepth)
}
