package worker

import (
	"errors"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosOptions configures the worker's fault-injection middleware — the
// harness behind cmd/hypermapper-worker's -chaos-* flags. Each
// probability is drawn independently per request from a seeded rng, so a
// chaos schedule is reproducible: the same seed and request count yield
// the same fault sequence.
type ChaosOptions struct {
	// Drop is the probability the request's connection is severed without
	// any response — what a worker process dying mid-request looks like
	// from the coordinator.
	Drop float64
	// Delay is the probability the request is stalled before handling;
	// DelayMax bounds the injected stall (uniform in (0, DelayMax],
	// default 100ms when Delay is set and DelayMax is not).
	Delay    float64
	DelayMax time.Duration
	// Err500 is the probability of answering 500 without evaluating.
	Err500 float64
	// Garbage is the probability of answering 200 with a body that is not
	// JSON — a corrupted or truncated reply.
	Garbage float64
	// CrashAfter, when positive, kills the process (Exit(3)) as evaluate
	// request CrashAfter+1 arrives — a deterministic mid-run worker death.
	CrashAfter int64
	// Seed seeds the fault schedule.
	Seed int64
	// Exit is the crash hook; nil selects os.Exit. Tests inject a
	// recorder here.
	Exit func(code int)
}

// Enabled reports whether any fault is configured.
func (o ChaosOptions) Enabled() bool {
	return o.Drop > 0 || o.Delay > 0 || o.Err500 > 0 || o.Garbage > 0 || o.CrashAfter > 0
}

// WithChaos wraps a worker handler with fault injection. Faults apply to
// POST /evaluate only: /healthz and /readyz stay truthful, so the pool's
// circuit-breaker probes measure real process liveness rather than
// injected noise (a chaos worker is alive — it is its evaluation path
// that misbehaves). With no fault configured the handler is returned
// unwrapped.
func WithChaos(next http.Handler, o ChaosOptions) http.Handler {
	if !o.Enabled() {
		return next
	}
	exit := o.Exit
	if exit == nil {
		exit = os.Exit
	}
	c := &chaos{o: o, exit: exit, rng: rand.New(rand.NewSource(o.Seed))}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/evaluate" {
			next.ServeHTTP(w, r)
			return
		}
		c.serve(next, w, r)
	})
}

// chaos is the middleware state: a request counter for CrashAfter and
// the seeded fault rng.
type chaos struct {
	o      ChaosOptions
	exit   func(int)
	served atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// draw rolls every fault once, in a fixed order, so the schedule depends
// only on the seed and the request arrival order.
func (c *chaos) draw() (drop, err500, garbage bool, stall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	drop = c.rng.Float64() < c.o.Drop
	delayed := c.rng.Float64() < c.o.Delay
	err500 = c.rng.Float64() < c.o.Err500
	garbage = c.rng.Float64() < c.o.Garbage
	if delayed {
		max := c.o.DelayMax
		if max <= 0 {
			max = 100 * time.Millisecond
		}
		stall = time.Duration(c.rng.Int63n(int64(max))) + 1
	}
	return
}

func (c *chaos) serve(next http.Handler, w http.ResponseWriter, r *http.Request) {
	if n := c.served.Add(1); c.o.CrashAfter > 0 && n > c.o.CrashAfter {
		c.exit(3)
		return // reachable only through an injected Exit hook
	}
	drop, err500, garbage, stall := c.draw()
	if stall > 0 {
		select {
		case <-time.After(stall):
		case <-r.Context().Done():
			return // client gave up during the injected stall
		}
	}
	switch {
	case drop:
		// ErrAbortHandler is net/http's sanctioned way to sever the
		// connection without a response: the client observes EOF/reset,
		// exactly like a process crash mid-request.
		panic(http.ErrAbortHandler)
	case err500:
		writeError(w, http.StatusInternalServerError, errors.New("chaos: injected failure"))
	case garbage:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, `}}chaos{{ this is not JSON`)
	default:
		next.ServeHTTP(w, r)
	}
}
