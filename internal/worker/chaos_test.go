package worker

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestChaosDisabledReturnsHandlerUnwrapped(t *testing.T) {
	next := http.NewServeMux()
	if got := WithChaos(next, ChaosOptions{}); got != http.Handler(next) {
		t.Fatal("no-fault chaos should return the handler unwrapped")
	}
}

// chaosServer wraps the standard test worker with the given faults.
func chaosServer(t *testing.T, o ChaosOptions) *httptest.Server {
	t.Helper()
	return newWorker(t, func(next http.Handler) http.Handler { return WithChaos(next, o) })
}

func evaluateOnce(t *testing.T, url string) (*http.Response, error) {
	t.Helper()
	space := testSpace(t)
	cfg, err := json.Marshal(space.AtIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	body := `{"problem":"test","configs":[` + string(cfg) + `]}`
	return http.Post(url+"/evaluate", "application/json", strings.NewReader(body))
}

func TestChaosFaultsOnlyHitEvaluate(t *testing.T) {
	t.Run("err500", func(t *testing.T) {
		srv := chaosServer(t, ChaosOptions{Err500: 1})
		resp, err := evaluateOnce(t, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("evaluate = %d, want injected 500", resp.StatusCode)
		}
		// Probes must stay truthful: the process is alive.
		h, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		h.Body.Close()
		if h.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d under chaos, want 200", h.StatusCode)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		srv := chaosServer(t, ChaosOptions{Garbage: 1})
		resp, err := evaluateOnce(t, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || json.Valid(body) {
			t.Fatalf("garbage fault: code %d, body %q (want 200 + invalid JSON)", resp.StatusCode, body)
		}
	})
	t.Run("drop", func(t *testing.T) {
		srv := chaosServer(t, ChaosOptions{Drop: 1})
		resp, err := evaluateOnce(t, srv.URL)
		if err == nil {
			resp.Body.Close()
			t.Fatal("dropped connection still produced a response")
		}
	})
	t.Run("delay", func(t *testing.T) {
		srv := chaosServer(t, ChaosOptions{Delay: 1, DelayMax: 30 * time.Millisecond})
		start := time.Now()
		resp, err := evaluateOnce(t, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delayed evaluate = %d, want 200", resp.StatusCode)
		}
		if time.Since(start) == 0 {
			t.Fatal("no measurable stall injected")
		}
	})
}

func TestChaosCrashAfter(t *testing.T) {
	var exited atomic.Int64
	srv := chaosServer(t, ChaosOptions{CrashAfter: 2, Exit: func(code int) { exited.Store(int64(code)) }})
	for i := 0; i < 2; i++ {
		resp, err := evaluateOnce(t, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d before the crash point", i, resp.StatusCode)
		}
	}
	if exited.Load() != 0 {
		t.Fatal("exited before CrashAfter requests were served")
	}
	resp, err := evaluateOnce(t, srv.URL)
	if err == nil {
		resp.Body.Close()
	}
	if exited.Load() != 3 {
		t.Fatalf("exit code = %d, want 3 on request CrashAfter+1", exited.Load())
	}
}

func TestChaosScheduleIsSeedReproducible(t *testing.T) {
	o := ChaosOptions{Drop: 0.3, Delay: 0.3, Err500: 0.3, Garbage: 0.3, Seed: 11}
	a := &chaos{o: o, rng: rand.New(rand.NewSource(o.Seed))}
	b := &chaos{o: o, rng: rand.New(rand.NewSource(o.Seed))}
	for i := 0; i < 200; i++ {
		ad, ae, ag, as := a.draw()
		bd, be, bg, bs := b.draw()
		if ad != bd || ae != be || ag != bg || as != bs {
			t.Fatalf("draw %d diverged across equal seeds", i)
		}
	}
}
