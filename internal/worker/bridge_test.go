package worker

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/param"
)

// TestHelperObjective is not a test: it is the exec-bridge subprocess,
// re-invoked from this test binary (the standard self-exec pattern). Its
// behavior is selected by BRIDGE_HELPER_MODE.
func TestHelperObjective(t *testing.T) {
	mode := os.Getenv("BRIDGE_HELPER_MODE")
	if mode == "" {
		return // normal test run, not a subprocess
	}
	in := bufio.NewScanner(os.Stdin)
	out := json.NewEncoder(os.Stdout)
	served := 0
	for in.Scan() {
		var req ExecRequest
		if err := json.Unmarshal(in.Bytes(), &req); err != nil {
			out.Encode(ExecResponse{Error: err.Error()})
			continue
		}
		switch mode {
		case "sum":
			out.Encode(ExecResponse{Objectives: []float64{
				req.Config["a"] + req.Config["b"],
				req.Config["a"] * req.Config["b"],
			}})
		case "error":
			out.Encode(ExecResponse{Error: "cannot measure this one"})
		case "short":
			out.Encode(ExecResponse{Objectives: []float64{1}})
		case "die-after-first":
			if served > 0 {
				os.Exit(1)
			}
			served++
			out.Encode(ExecResponse{Objectives: []float64{
				req.Config["a"] + req.Config["b"], 0,
			}})
		case "garbage":
			fmt.Println("this is not JSON")
		}
	}
	os.Exit(0)
}

// bridgeSpace is the two-parameter space the helper subprocess computes
// over.
func bridgeSpace(t *testing.T) *param.Space {
	t.Helper()
	return param.MustSpace(
		param.Grid("a", 0, 4, 5),
		param.Grid("b", 0, 4, 5),
	)
}

// helperEvaluator builds an ExecEvaluator that re-runs this test binary as
// the objective program in the given mode.
func helperEvaluator(t *testing.T, mode string, objectives int) *ExecEvaluator {
	t.Helper()
	t.Setenv("BRIDGE_HELPER_MODE", mode)
	cmd := os.Args[0] + " -test.run=^TestHelperObjective$"
	e, err := NewExecEvaluator(cmd, bridgeSpace(t), objectives)
	if err != nil {
		t.Fatal(err)
	}
	e.logf = t.Logf
	t.Cleanup(func() { e.Close() })
	return e
}

func TestExecEvaluatorRoundTrip(t *testing.T) {
	e := helperEvaluator(t, "sum", 2)
	cfg := param.Config{3, 2}
	for i := 0; i < 3; i++ { // same subprocess across calls
		objs := e.Evaluate(cfg)
		if len(objs) != 2 || objs[0] != 5 || objs[1] != 6 {
			t.Fatalf("call %d: objectives = %v, want [5 6]", i, objs)
		}
	}
}

func TestExecEvaluatorApplicationError(t *testing.T) {
	e := helperEvaluator(t, "error", 2)
	if objs := e.Evaluate(param.Config{1, 1}); objs != nil {
		t.Fatalf("declined configuration returned %v, want nil", objs)
	}
}

func TestExecEvaluatorObjectiveCountMismatch(t *testing.T) {
	e := helperEvaluator(t, "short", 2)
	if objs := e.Evaluate(param.Config{1, 1}); objs != nil {
		t.Fatalf("short vector returned %v, want nil", objs)
	}
}

func TestExecEvaluatorRestartsDeadSubprocess(t *testing.T) {
	e := helperEvaluator(t, "die-after-first", 2)
	if objs := e.Evaluate(param.Config{1, 2}); objs == nil || objs[0] != 3 {
		t.Fatalf("first call = %v", objs)
	}
	// The subprocess exits on the second request; the bridge must restart
	// it and succeed within the same Evaluate call.
	if objs := e.Evaluate(param.Config{2, 2}); objs == nil || objs[0] != 4 {
		t.Fatalf("post-death call = %v, want a restarted answer", objs)
	}
}

func TestExecEvaluatorGarbageOutput(t *testing.T) {
	e := helperEvaluator(t, "garbage", 2)
	if objs := e.Evaluate(param.Config{1, 1}); objs != nil {
		t.Fatalf("garbage transcript returned %v, want nil", objs)
	}
}

func TestExecEvaluatorBadCommand(t *testing.T) {
	if _, err := NewExecEvaluator("   ", bridgeSpace(t), 1); err == nil {
		t.Fatal("accepted an empty command")
	}
	e, err := NewExecEvaluator("/definitely/not/a/binary", bridgeSpace(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	e.logf = t.Logf
	if objs := e.Evaluate(param.Config{0, 0}); objs != nil {
		t.Fatalf("unstartable command returned %v, want nil", objs)
	}
}

// TestBridgeSetLogf: failure chatter must go wherever SetLogf points —
// and nowhere at all for SetLogf(nil), the -validate/-quiet contract.
func TestBridgeSetLogf(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	capture := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	e, err := NewExecEvaluator("/definitely/not/a/binary", bridgeSpace(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	e.SetLogf(capture)
	if objs := e.Evaluate(param.Config{0, 0}); objs != nil {
		t.Fatalf("unstartable command returned %v", objs)
	}
	mu.Lock()
	captured := len(lines)
	mu.Unlock()
	if captured == 0 {
		t.Fatal("SetLogf sink saw no failure report")
	}

	// nil silences: the evaluation still fails, with no panic and no output.
	e.SetLogf(nil)
	if objs := e.Evaluate(param.Config{0, 0}); objs != nil {
		t.Fatalf("silenced bridge returned %v", objs)
	}

	h := NewHTTPEvaluator("http://127.0.0.1:1/eval", bridgeSpace(t), 2)
	h.SetLogf(capture)
	if objs := h.Evaluate(param.Config{0, 0}); objs != nil {
		t.Fatalf("unreachable endpoint returned %v", objs)
	}
	mu.Lock()
	grew := len(lines) > captured
	mu.Unlock()
	if !grew {
		t.Fatal("HTTP SetLogf sink saw no failure report")
	}
	h.SetLogf(nil)
	if objs := h.Evaluate(param.Config{0, 0}); objs != nil {
		t.Fatalf("silenced http bridge returned %v", objs)
	}
}

func TestHTTPEvaluator(t *testing.T) {
	var gotPath string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		var req HTTPRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Configs) != 1 {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		c := req.Configs[0]
		json.NewEncoder(w).Encode(HTTPResponse{
			Objectives: [][]float64{{c["a"] - c["b"], c["a"] + c["b"]}},
		})
	}))
	defer srv.Close()

	e := NewHTTPEvaluator(srv.URL+"/eval", bridgeSpace(t), 2)
	e.logf = t.Logf
	objs := e.Evaluate(param.Config{3, 1})
	if len(objs) != 2 || objs[0] != 2 || objs[1] != 4 {
		t.Fatalf("objectives = %v, want [2 4]", objs)
	}
	if gotPath != "/eval" {
		t.Fatalf("posted to %q", gotPath)
	}
}

func TestHTTPEvaluatorFailures(t *testing.T) {
	cases := map[string]http.HandlerFunc{
		"non-200": func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		},
		"wrong shape": func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(HTTPResponse{Objectives: [][]float64{{1}}})
		},
		"not json": func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "hello")
		},
	}
	for name, h := range cases {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(h)
			defer srv.Close()
			e := NewHTTPEvaluator(srv.URL, bridgeSpace(t), 2)
			e.logf = t.Logf
			if objs := e.Evaluate(param.Config{0, 0}); objs != nil {
				t.Fatalf("objectives = %v, want nil", objs)
			}
		})
	}

	t.Run("unreachable", func(t *testing.T) {
		e := NewHTTPEvaluator("http://127.0.0.1:1/eval", bridgeSpace(t), 2)
		e.logf = t.Logf
		if objs := e.Evaluate(param.Config{0, 0}); objs != nil {
			t.Fatalf("objectives = %v, want nil", objs)
		}
	})
}

func TestWorkerSpecRegistration(t *testing.T) {
	s := NewServer(1)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// Without a loader the endpoint is explicitly unimplemented.
	resp, err := http.Post(srv.URL+"/problems", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("POST /problems without loader = %d, want 501", resp.StatusCode)
	}

	s.SetSpecLoader(func(data []byte) (Problem, error) {
		var doc struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(data, &doc); err != nil || doc.Name == "" {
			return Problem{}, fmt.Errorf("bad spec")
		}
		return Problem{Name: doc.Name, Space: testSpace(t), Eval: testEval(), Objectives: 2}, nil
	})

	resp, err = http.Post(srv.URL+"/problems", "application/json", strings.NewReader(`{"name":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/problems", "application/json", strings.NewReader(`{"name":"runtime-prob"}`))
	if err != nil {
		t.Fatal(err)
	}
	var info ProblemInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("good spec = %d, want 201", resp.StatusCode)
	}
	if info.Name != "runtime-prob" || len(info.Parameters) != 3 || info.Parameters[0].Kind != "real" {
		t.Fatalf("registration reply = %+v", info)
	}

	// The problem is immediately evaluable.
	body, _ := json.Marshal(EvaluateRequest{Problem: "runtime-prob", Configs: []param.Config{testSpace(t).AtIndex(7)}})
	resp, err = http.Post(srv.URL+"/evaluate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var out EvaluateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Objectives) != 1 || len(out.Objectives[0]) != 2 {
		t.Fatalf("evaluate after registration = %+v", out)
	}
}
