package worker

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/param"
)

// Problem is one evaluator a worker serves: the design space it validates
// requests against plus the measurement function. The Evaluator must be
// safe for concurrent use — one worker serves overlapping batches from any
// number of coordinator daemons.
type Problem struct {
	Name  string
	Space *param.Space
	Eval  core.Evaluator
	// Objectives is the length of the vectors Eval returns, advertised in
	// GET /problems so clients can sanity-check a fleet's configuration.
	Objectives int
}

// maxEvaluateBody caps the POST /evaluate request body. A batch of a few
// thousand configurations over a dozen parameters is well under a
// megabyte; the cap only exists so a misbehaving client cannot buffer
// gigabytes into the worker.
const maxEvaluateBody = 32 << 20

// Server hosts registered evaluators behind the worker HTTP protocol
// (docs/WORKER_PROTOCOL.md): POST /evaluate measures a batch, GET /healthz
// reports liveness and counters, GET /problems lists what this worker can
// evaluate.
type Server struct {
	mu       sync.Mutex
	problems map[string]Problem

	// specLoader, when set, materializes a problem from raw spec JSON and
	// enables POST /problems. The daemon wires this to the catalog's spec
	// loader; the seam keeps this package free of a catalog dependency.
	specLoader func(data []byte) (Problem, error)

	evalWorkers int
	started     time.Time
	evals       atomic.Int64
	inflight    atomic.Int64

	// shedLimit caps concurrent POST /evaluate requests (SetShedLimit);
	// past it the worker answers 503 + Retry-After instead of queueing.
	// 0 never sheds. shed counts shed requests; reqs the concurrent ones.
	shedLimit atomic.Int64
	shed      atomic.Int64
	reqs      atomic.Int64
	// draining flips GET /readyz to 503 (SetDraining) so load balancers
	// stop routing here ahead of shutdown; /evaluate keeps serving.
	draining atomic.Bool
}

// NewServer returns a worker with no problems registered. evalWorkers
// bounds the concurrent evaluator calls per request batch; ≤ 0 selects
// GOMAXPROCS.
func NewServer(evalWorkers int) *Server {
	if evalWorkers <= 0 {
		evalWorkers = par.MaxWorkers()
	}
	return &Server{
		problems:    make(map[string]Problem),
		evalWorkers: evalWorkers,
		started:     time.Now(),
	}
}

// SetShedLimit bounds concurrent POST /evaluate requests: past the limit
// the worker sheds load, answering 503 with a Retry-After header, which
// the pool client honors as backpressure (wait and re-dispatch) rather
// than failure. 0 — the default — never sheds. Shedding is how a worker
// stays responsive (health probes, problem registration) when a burst of
// coordinators outpaces its evaluation capacity.
func (s *Server) SetShedLimit(n int) { s.shedLimit.Store(int64(n)) }

// SetDraining flips the GET /readyz readiness signal: a draining worker
// answers 503 there so load balancers stop routing new coordinators to
// it, while /evaluate and /healthz keep serving — in-flight batches
// finish, and circuit-breaker health probes still see a live process.
// The worker daemon sets this on SIGTERM, before its drain grace period.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// SetSpecLoader enables POST /problems: fn turns a raw problem-spec
// document into a registrable Problem. With no loader the endpoint answers
// 501 Not Implemented.
func (s *Server) SetSpecLoader(fn func(data []byte) (Problem, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specLoader = fn
}

// Register adds or replaces a problem by name.
func (s *Server) Register(p Problem) error {
	if p.Name == "" {
		return errors.New("worker: problem with empty name")
	}
	if p.Space == nil || p.Eval == nil {
		return fmt.Errorf("worker: problem %q needs a space and an evaluator", p.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.problems[p.Name] = p
	return nil
}

// Problems lists the registered problems sorted by name.
func (s *Server) Problems() []Problem {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Problem, 0, len(s.problems))
	for _, p := range s.problems {
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b Problem) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// Handler returns the worker HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		probs := s.Problems()
		names := make([]string, len(probs))
		for i, p := range probs {
			names[i] = p.Name
		}
		writeJSON(w, http.StatusOK, Health{
			Status:      "ok",
			Problems:    names,
			Evaluations: s.evals.Load(),
			InFlight:    s.inflight.Load(),
			Shed:        s.shed.Load(),
			Draining:    s.draining.Load(),
			UptimeS:     time.Since(s.started).Seconds(),
		})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false, "draining": true})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})

	mux.HandleFunc("GET /problems", func(w http.ResponseWriter, r *http.Request) {
		probs := s.Problems()
		out := make([]ProblemInfo, 0, len(probs))
		for _, p := range probs {
			out = append(out, problemInfo(p))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /problems", s.handleRegisterSpec)

	mux.HandleFunc("POST /evaluate", s.handleEvaluate)

	return mux
}

func problemInfo(p Problem) ProblemInfo {
	return ProblemInfo{
		Name:        p.Name,
		SpaceSize:   p.Space.Size(),
		Parameters:  ParamInfos(p.Space),
		Constrained: p.Space.Constrained(),
		Objectives:  p.Objectives,
	}
}

// maxSpecBody caps a POST /problems body; a spec is human-written JSON,
// kilobytes at most.
const maxSpecBody = 1 << 20

// handleRegisterSpec registers a spec-defined problem at runtime: the body
// is the spec document, the materialized problem replaces any existing
// problem of the same name, and the reply mirrors a GET /problems entry.
func (s *Server) handleRegisterSpec(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	loader := s.specLoader
	s.mu.Unlock()
	if loader == nil {
		writeError(w, http.StatusNotImplemented,
			errors.New("this worker was started without spec support"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBody)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading spec: %w", err))
		return
	}
	p, err := loader(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Register(p); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, problemInfo(p))
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	// Load shedding first, before any body is read: a saturated worker's
	// cheapest move is refusing early. The check-then-add pair is racy by
	// design — admitting one or two extra requests under contention is
	// harmless; the limit is a pressure valve, not an exact quota.
	if lim := s.shedLimit.Load(); lim > 0 && s.reqs.Load() >= lim {
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("worker saturated (%d evaluate requests in flight); retry shortly", lim))
		return
	}
	s.reqs.Add(1)
	defer s.reqs.Add(-1)
	r.Body = http.MaxBytesReader(w, r.Body, maxEvaluateBody)
	var req EvaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("parsing request: %w", err))
		return
	}
	s.mu.Lock()
	p, ok := s.problems[req.Problem]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown problem %q", req.Problem))
		return
	}
	if len(req.Configs) == 0 {
		writeJSON(w, http.StatusOK, EvaluateResponse{Objectives: [][]float64{}})
		return
	}
	for i, cfg := range req.Configs {
		if err := p.Space.Validate(cfg); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
	}

	// Measure the batch, bounded to the worker's evaluation parallelism.
	// The request context covers the whole batch: when the coordinator
	// cancels (run cancelled, or this was the losing leg of a hedged pair)
	// no further evaluations start and the response is abandoned.
	ctx := r.Context()
	out := make([][]float64, len(req.Configs))
	s.inflight.Add(int64(len(req.Configs)))
	par.ForWorkers(len(req.Configs), s.evalWorkers, func(i int) {
		defer s.inflight.Add(-1)
		if ctx.Err() != nil {
			return
		}
		out[i] = p.Eval.Evaluate(req.Configs[i])
		s.evals.Add(1)
	})
	if ctx.Err() != nil {
		return // client is gone; nothing to write to
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{Objectives: out})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
