package worker

import (
	"context"
	"testing"
	"time"

	"repro/internal/param"
)

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, Options{}); err == nil {
		t.Fatal("empty pool should not construct")
	}
	if _, err := NewPool([]string{"  "}, Options{}); err == nil {
		t.Fatal("blank URL should not construct")
	}
	p, err := NewPool([]string{"http://a:1/", "http://b:2"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
	if st := p.Stats(); st[0].URL != "http://a:1" {
		t.Fatalf("trailing slash not trimmed: %q", st[0].URL)
	}
	if p.opts.ChunkSize != defaultChunkSize || p.opts.Retries != defaultRetries {
		t.Fatalf("defaults not applied: %+v", p.opts)
	}
}

func TestPickSkipsAvoidedWorkers(t *testing.T) {
	p, err := NewPool([]string{"http://a", "http://b", "http://c"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := p.pick(map[int]bool{1: true}); got == 1 {
			t.Fatal("pick returned an avoided worker")
		}
	}
	// Multiple avoided workers: the one untried worker must be chosen.
	for i := 0; i < 20; i++ {
		if got := p.pick(map[int]bool{0: true, 2: true}); got != 1 {
			t.Fatalf("pick = %d, want the only untried worker 1", got)
		}
	}
	// Fully avoided pool degrades to round-robin instead of spinning.
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		seen[p.pick(map[int]bool{0: true, 1: true, 2: true})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("fully-avoided pick covered %v, want all workers", seen)
	}
	// A single-worker pool has no alternative: avoid is ignored.
	solo, err := NewPool([]string{"http://a"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := solo.pick(map[int]bool{0: true}); got != 0 {
		t.Fatalf("solo pick = %d", got)
	}
}

func TestHedgeDelayAdaptiveQuantile(t *testing.T) {
	p, err := NewPool([]string{"http://a", "http://b"}, Options{HedgeQuantile: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if d := p.hedgeDelay("slam"); d != 0 {
		t.Fatalf("hedge with no latency samples: %v", d)
	}
	for i := 1; i <= hedgeMinSamples; i++ {
		p.window("slam").record(time.Duration(i) * time.Millisecond)
	}
	d := p.hedgeDelay("slam")
	if d <= 0 || d > hedgeMinSamples*time.Millisecond {
		t.Fatalf("adaptive hedge delay = %v, want within the observed window", d)
	}

	// Windows are per problem: a fast problem's warmed-up window must not
	// set the hedge threshold for a slow problem sharing the pool.
	if d := p.hedgeDelay("synthetic"); d != 0 {
		t.Fatalf("unwarmed problem inherited another problem's window: %v", d)
	}

	// Fixed threshold takes precedence; negative disables hedging.
	p.opts.HedgeAfter = 7 * time.Millisecond
	if d := p.hedgeDelay("slam"); d != 7*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v", d)
	}
	p.opts.HedgeAfter = -1
	if d := p.hedgeDelay("slam"); d != 0 {
		t.Fatalf("disabled hedge delay = %v", d)
	}
}

func TestLatencyWindowWraps(t *testing.T) {
	p, err := NewPool([]string{"http://a", "http://b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := p.window("x")
	for i := 0; i < latencyWindowSize+10; i++ {
		w.record(time.Millisecond)
	}
	if len(w.lat) != latencyWindowSize {
		t.Fatalf("window grew to %d", len(w.lat))
	}
	if w.n != latencyWindowSize+10 {
		t.Fatalf("n = %d", w.n)
	}
}

func TestRemoteBackendEmptyBatch(t *testing.T) {
	p, err := NewPool([]string{"http://nowhere.invalid"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Backend("test", 2).EvaluateBatch(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	// A pre-cancelled context short-circuits before any dial.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Backend("test", 2).EvaluateBatch(ctx, []param.Config{{1}}); err == nil {
		t.Fatal("pre-cancelled batch should error")
	}
}
