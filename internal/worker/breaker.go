package worker

import (
	"context"
	"io"
	"net/http"
	"time"
)

// This file is the pool's circuit-breaker layer. The retry loop in
// client.go reacts per chunk: a flapping worker keeps receiving primaries
// until each individual chunk fails on it, burning a retry (and a backoff
// pause) every time. The breaker reacts per worker: after
// BreakerThreshold consecutive failures the worker is tripped out of
// primary and hedge dispatch entirely, a background loop probes its
// GET /healthz at ProbeInterval, and the first healthy probe (or a
// successful stray request) readmits it. Breaker state rides along in
// WorkerStats, so GET /stats on the coordinator shows which workers are
// out and why.

// BreakerState is one worker's circuit-breaker position.
type BreakerState int32

const (
	// BreakerClosed is the healthy state: the worker receives traffic.
	BreakerClosed BreakerState = iota
	// BreakerOpen marks a tripped worker: excluded from dispatch while an
	// alternative exists, awaiting its next health probe.
	BreakerOpen
	// BreakerHalfOpen marks a tripped worker whose health probe is in
	// flight; the probe's outcome decides readmission or re-opening.
	BreakerHalfOpen
)

// String returns the stats-facing name of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// probeTimeout caps one health probe's HTTP exchange; a wedged worker
// must fail its probe, not hang the probe loop.
const probeTimeout = 2 * time.Second

// breakerEnabled reports whether breakers are active (a negative
// threshold disables them).
func (p *Pool) breakerEnabled() bool { return p.opts.BreakerThreshold > 0 }

// tripped reports whether worker i's breaker is anything but closed.
func (p *Pool) tripped(i int) bool {
	w := p.workers[i]
	w.brkMu.Lock()
	defer w.brkMu.Unlock()
	return w.brk != BreakerClosed
}

// recordSuccess resets worker i's breaker on any completed exchange —
// including a hedge loser's, and including traffic that reached an open
// worker because the whole fleet was tripped: a real success is better
// evidence of health than any probe.
func (p *Pool) recordSuccess(i int) {
	w := p.workers[i]
	w.brkMu.Lock()
	w.consec = 0
	if w.brk != BreakerClosed {
		w.brk = BreakerClosed
		w.lastErr = ""
	}
	w.brkMu.Unlock()
}

// recordFailure notes a transient request failure against worker i's
// breaker, tripping it at the threshold. Permanent (4xx) rejections and
// backpressure (503) replies never reach here — they say nothing about
// the worker's health.
func (p *Pool) recordFailure(i int, err error) {
	w := p.workers[i]
	w.brkMu.Lock()
	w.lastErr = err.Error()
	if p.breakerEnabled() {
		switch w.brk {
		case BreakerClosed:
			w.consec++
			if w.consec >= p.opts.BreakerThreshold {
				w.brk = BreakerOpen
				w.trips.Add(1)
			}
		case BreakerHalfOpen:
			// Live traffic failed while a probe was deciding: back to open
			// without counting a fresh trip.
			w.brk = BreakerOpen
		}
	}
	tripped := w.brk != BreakerClosed
	w.brkMu.Unlock()
	if tripped {
		p.ensureProbing()
	}
}

// ensureProbing starts the background health-probe loop if it is not
// already running. The loop is lazy: a pool with no tripped workers has
// no probe goroutine at all.
func (p *Pool) ensureProbing() {
	p.probeMu.Lock()
	defer p.probeMu.Unlock()
	if p.probing {
		return
	}
	p.probing = true
	go p.probeLoop()
}

// probeLoop ticks at ProbeInterval, probing every non-closed worker's
// GET /healthz: a 200 readmits it (open → half-open → closed), anything
// else re-opens it. The loop exits once every breaker is closed — the
// exit re-checks under probeMu so a trip racing the shutdown restarts a
// fresh loop instead of being orphaned — or when the pool is closed.
func (p *Pool) probeLoop() {
	t := time.NewTicker(p.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			p.probeMu.Lock()
			p.probing = false
			p.probeMu.Unlock()
			return
		case <-t.C:
		}
		anyOpen := false
		for i := range p.workers {
			if p.probeWorker(i) {
				anyOpen = true
			}
		}
		if anyOpen {
			continue
		}
		p.probeMu.Lock()
		if !p.anyTrippedLocked() {
			p.probing = false
			p.probeMu.Unlock()
			return
		}
		p.probeMu.Unlock()
	}
}

// anyTrippedLocked scans for a non-closed breaker; called with probeMu
// held, so a recordFailure that just tripped a worker either sees
// probing=true (loop continues) or runs ensureProbing after the exit.
func (p *Pool) anyTrippedLocked() bool {
	for _, w := range p.workers {
		w.brkMu.Lock()
		open := w.brk != BreakerClosed
		w.brkMu.Unlock()
		if open {
			return true
		}
	}
	return false
}

// probeWorker health-checks worker i if its breaker is non-closed,
// reporting whether the breaker is still open afterwards. The breaker is
// marked half-open for the probe's duration, so stats can show the
// readmission attempt in progress.
func (p *Pool) probeWorker(i int) bool {
	w := p.workers[i]
	w.brkMu.Lock()
	if w.brk == BreakerClosed {
		w.brkMu.Unlock()
		return false
	}
	w.brk = BreakerHalfOpen
	w.brkMu.Unlock()

	ok := p.probe(w.url)

	w.brkMu.Lock()
	defer w.brkMu.Unlock()
	if !ok {
		if w.brk == BreakerHalfOpen {
			w.brk = BreakerOpen
		}
		return w.brk != BreakerClosed
	}
	if w.brk == BreakerHalfOpen { // a concurrent live success may have closed it already
		w.brk = BreakerClosed
		w.consec = 0
		w.lastErr = ""
	}
	return w.brk != BreakerClosed
}

// probe performs one GET /healthz exchange, true on a 200.
func (p *Pool) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

// breakerStats snapshots worker i's breaker for WorkerStats.
func (p *Pool) breakerStats(i int) (state string, trips int64, lastErr string) {
	w := p.workers[i]
	w.brkMu.Lock()
	defer w.brkMu.Unlock()
	return w.brk.String(), w.trips.Load(), w.lastErr
}

// Close stops the pool's background health-probe loop. Dispatch remains
// usable afterwards — only probing (and with it automatic readmission of
// tripped workers) stops; a success on a tripped worker still readmits
// it. Closing twice is a no-op.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.done) })
}
