package worker

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/param"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func TestBreakerTripsAtThresholdAndSuccessReadmits(t *testing.T) {
	p, err := NewPool([]string{"http://a", "http://b"}, Options{BreakerThreshold: 3, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	boom := errors.New("boom")
	p.recordFailure(0, boom)
	p.recordFailure(0, boom)
	if p.tripped(0) {
		t.Fatal("tripped below the threshold")
	}
	// A success in between resets the consecutive count.
	p.recordSuccess(0)
	p.recordFailure(0, boom)
	p.recordFailure(0, boom)
	if p.tripped(0) {
		t.Fatal("tripped despite an interleaved success")
	}
	p.recordFailure(0, boom)
	if !p.tripped(0) {
		t.Fatal("not tripped at the threshold")
	}
	st := p.Stats()
	if st[0].Breaker != "open" || st[0].Trips != 1 || st[0].LastError != "boom" {
		t.Fatalf("open stats = %+v", st[0])
	}
	if st[1].Breaker != "closed" || st[1].Trips != 0 {
		t.Fatalf("untouched worker stats = %+v", st[1])
	}
	// A stray success on a tripped worker readmits it immediately.
	p.recordSuccess(0)
	st = p.Stats()
	if st[0].Breaker != "closed" || st[0].LastError != "" {
		t.Fatalf("post-readmission stats = %+v", st[0])
	}
	if st[0].Trips != 1 {
		t.Fatalf("trip count lost on readmission: %+v", st[0])
	}
}

func TestBreakerDisabledByNegativeThreshold(t *testing.T) {
	p, err := NewPool([]string{"http://a"}, Options{BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 50; i++ {
		p.recordFailure(0, errors.New("boom"))
	}
	if p.tripped(0) {
		t.Fatal("disabled breaker tripped")
	}
	if st := p.Stats(); st[0].LastError != "boom" {
		t.Fatalf("last error should still be recorded: %+v", st[0])
	}
}

func TestPickSkipsTrippedWorkers(t *testing.T) {
	p, err := NewPool([]string{"http://a", "http://b", "http://c"}, Options{BreakerThreshold: 1, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.recordFailure(1, errors.New("down"))
	for i := 0; i < 20; i++ {
		if got := p.pick(nil); got == 1 {
			t.Fatal("pick returned a tripped worker")
		}
	}
	// Tripped composes with the per-chunk avoid set.
	for i := 0; i < 20; i++ {
		if got := p.pick(map[int]bool{0: true}); got != 2 {
			t.Fatalf("pick = %d, want the only healthy unavoided worker 2", got)
		}
	}
	// An all-tripped fleet keeps receiving traffic (a success is what
	// readmits a worker fastest).
	p.recordFailure(0, errors.New("down"))
	p.recordFailure(2, errors.New("down"))
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		seen[p.pick(nil)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("all-tripped pick covered %v, want all workers", seen)
	}
}

func TestBreakerProbeReadmitsWhenHealthzRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	p, err := NewPool([]string{srv.URL, "http://other"}, Options{BreakerThreshold: 1, ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.recordFailure(0, errors.New("connection refused"))
	if !p.tripped(0) {
		t.Fatal("not tripped")
	}
	// Unhealthy probes must keep it open (give the loop a few cycles).
	time.Sleep(40 * time.Millisecond)
	if !p.tripped(0) {
		t.Fatal("readmitted while /healthz was failing")
	}
	healthy.Store(true)
	waitFor(t, 2*time.Second, func() bool { return !p.tripped(0) }, "probe readmission")
	st := p.Stats()
	if st[0].Breaker != "closed" || st[0].Trips != 1 || st[0].LastError != "" {
		t.Fatalf("post-probe stats = %+v", st[0])
	}
}

func TestRetryDelayJitterBoundsAndDeterminism(t *testing.T) {
	opts := Options{RetryBackoff: 10 * time.Millisecond, RetryBackoffCap: 80 * time.Millisecond}
	p, err := NewPool([]string{"http://a"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	caps := []struct {
		attempt int
		max     time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 40 * time.Millisecond},
		{4, 80 * time.Millisecond},
		{5, 80 * time.Millisecond},  // capped
		{63, 80 * time.Millisecond}, // shift-overflow guard
	}
	for _, c := range caps {
		for i := 0; i < 50; i++ {
			if d := p.retryDelay(c.attempt); d < 0 || d > c.max {
				t.Fatalf("retryDelay(%d) = %v, want within [0, %v]", c.attempt, d, c.max)
			}
		}
	}
	// Equal seeds draw equal schedules — the property the chaos e2e's
	// byte-identical comparison leans on.
	a, _ := NewPool([]string{"http://a"}, opts)
	b, _ := NewPool([]string{"http://a"}, opts)
	defer a.Close()
	defer b.Close()
	for i := 1; i < 20; i++ {
		if da, db := a.retryDelay(i), b.retryDelay(i); da != db {
			t.Fatalf("equal-seed pools diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

// Regression: a hedge leg that completed successfully but lost the race
// used to vanish from the latency window, skewing the adaptive hedge
// threshold toward the winners. Loser service times are recorded exactly
// once — successful legs only.
func TestHedgeLoserServiceTimeRecordedOnce(t *testing.T) {
	p, err := NewPool([]string{"http://a", "http://b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	replies := make(chan hedgeReply, 2)
	replies <- hedgeReply{service: 5 * time.Millisecond}                  // successful loser
	replies <- hedgeReply{err: errors.New("context canceled"), worker: 1} // cancelled loser
	p.drainLosers("prob", replies, 2)
	w := p.window("prob")
	waitFor(t, 2*time.Second, func() bool {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.n >= 1
	}, "loser latency record")
	time.Sleep(10 * time.Millisecond) // would catch a spurious second record
	w.mu.Lock()
	n := w.n
	w.mu.Unlock()
	if n != 1 {
		t.Fatalf("window recorded %d completions, want exactly the successful loser", n)
	}
}

func TestBackpressure503WaitedOutWithoutFailureOrRetryBudget(t *testing.T) {
	var calls atomic.Int64
	srv := newWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/evaluate" && calls.Add(1) <= 2 {
				w.Header().Set("Retry-After", "0")
				writeError(w, http.StatusServiceUnavailable, errors.New("saturated"))
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	// Retries: -1 means zero retries — backpressure alone must carry the
	// chunk through both 503s.
	pool, err := NewPool([]string{srv.URL}, Options{Retries: -1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	space := testSpace(t)
	cfgs := []param.Config{space.AtIndex(0), space.AtIndex(1)}
	objs, err := pool.Backend("test", 2).EvaluateBatch(t.Context(), cfgs)
	if err != nil {
		t.Fatalf("batch failed despite backpressure handling: %v", err)
	}
	for i, ob := range objs {
		if ob == nil {
			t.Fatalf("config %d unmeasured", i)
		}
	}
	st := pool.Stats()
	if st[0].Failures != 0 {
		t.Fatalf("503 shedding counted as failure: %+v", st[0])
	}
	if st[0].Breaker != "closed" {
		t.Fatalf("503 shedding reached the breaker: %+v", st[0])
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, c := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {" 3 ", 3 * time.Second},
		{"-1", 0}, {"soon", 0}, {"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	} {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWorkerShedLimitAndReadyz(t *testing.T) {
	release := make(chan struct{})
	s := NewServer(1)
	space := testSpace(t)
	err := s.Register(Problem{Name: "block", Space: space, Objectives: 1,
		Eval: core.EvaluatorFunc(func(cfg param.Config) []float64 {
			<-release
			return []float64{1}
		})})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer close(release)

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	s.SetShedLimit(1)
	cfg, err := json.Marshal(space.AtIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"problem":"block","configs":[%s]}`, cfg)
	go func() {
		resp, err := http.Post(srv.URL+"/evaluate", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, 2*time.Second, func() bool { return s.reqs.Load() == 1 }, "first request to occupy the limit")

	resp, err = http.Post(srv.URL+"/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated evaluate = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 shed reply missing Retry-After")
	}
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Draining flips readiness but not liveness.
	s.SetDraining(true)
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !h.Draining || h.Shed != 1 {
		t.Fatalf("draining healthz: code %d, body %+v", resp.StatusCode, h)
	}
}
